package main

import "testing"

// TestZipfianSkew checks the generator is actually Zipf-shaped: at
// theta 0.99 over 4096 keys the hottest key's mass is ~1/zeta(n) ≈ 11%,
// three orders of magnitude above uniform, while the tail still gets
// broad coverage.
func TestZipfianSkew(t *testing.T) {
	const n, draws = 4096, 200_000
	z := newZipfian(n, 0.99, 42)
	counts := make(map[uint64]int, n)
	for i := 0; i < draws; i++ {
		k := z.next()
		if k >= n {
			t.Fatalf("draw %d out of range", k)
		}
		counts[k]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < draws/20 {
		t.Fatalf("hottest key got %d of %d draws — not skewed (uniform would be %d)", max, draws, draws/n)
	}
	if len(counts) < n/8 {
		t.Fatalf("only %d distinct keys drawn — tail not covered", len(counts))
	}
}

// TestZipfianDeterministic pins seed-stability (workers must not
// correlate only by accident of a shared default seed).
func TestZipfianDeterministic(t *testing.T) {
	a, b := newZipfian(1024, 0.99, 7), newZipfian(1024, 0.99, 7)
	for i := 0; i < 1000; i++ {
		if a.next() != b.next() {
			t.Fatal("same seed diverged")
		}
	}
	c := newZipfian(1024, 0.99, 8)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.next() == c.next() {
			same++
		}
	}
	// Zipf streams share hot keys, so some collisions are expected — but
	// not identity.
	if same == 1000 {
		t.Fatal("different seeds produced identical streams")
	}
}
