// Command oaload drives an oaserver with pipelined load: -conns
// concurrent connections, each keeping -window requests in flight over a
// mixed GET/PUT/DEL/CAS workload, reconnecting after every -burst
// requests so session leases recycle across connections (the server-side
// behavior the load is designed to exercise: more connections over time
// than the fixed thread registry has slots).
//
// On GOAWAY (server draining) a connection stops issuing, waits for all
// its outstanding responses — counting any that never arrive as dropped —
// and exits. The final stdout line is machine-readable:
//
//	oaload: ops=N busy=N dropped=N errs=N elapsed=1.234s ops_per_sec=N
//
// Exit status is nonzero when any response was dropped, any hard error
// occurred, or no operations completed.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "server address")
		conns    = flag.Int("conns", 64, "concurrent connections")
		window   = flag.Int("window", 128, "pipelined requests in flight per connection")
		burst    = flag.Int("burst", 2000, "requests per connection before reconnecting (0 = never)")
		keys     = flag.Uint64("keys", 4096, "key space size")
		duration = flag.Duration("duration", 2*time.Second, "load duration")
	)
	flag.Parse()

	var ops, busy, dropped, errs atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	worker := func(w int) {
		defer wg.Done()
		rng := uint64(w)*0x9E3779B97F4A7C15 + 1
		next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
		for {
			select {
			case <-stop:
				return
			default:
			}
			c, err := server.Dial(*addr, *window)
			if err != nil {
				// During server drain the listener is gone; that's a clean end.
				return
			}
			calls := make([]*server.Call, 0, *window)
			settle := func() bool {
				c.Flush()
				ok := true
				for _, ca := range calls {
					if err := ca.Wait(); err != nil {
						dropped.Add(1)
						ok = false
						continue
					}
					if ca.Status == server.StBusy {
						busy.Add(1)
					} else {
						ops.Add(1)
					}
				}
				calls = calls[:0]
				return ok
			}
			sent := 0
			alive := true
			for alive {
				select {
				case <-stop:
					alive = false
					continue
				default:
				}
				if *burst > 0 && sent >= *burst {
					break // reconnect: recycle the session lease
				}
				k := next() % *keys
				var ca *server.Call
				var err error
				switch next() % 10 {
				case 0:
					ca, err = c.Del(k)
				case 1:
					ca, err = c.CAS(k, next()%3, next())
				case 2, 3, 4:
					ca, err = c.Put(k, next())
				default:
					ca, err = c.Get(k)
				}
				if err != nil {
					if errors.Is(err, server.ErrGoAway) {
						alive = false // drain announced: settle and exit
						continue
					}
					errs.Add(1)
					alive = false
					continue
				}
				calls = append(calls, ca)
				sent++
				if len(calls) >= *window {
					if !settle() {
						alive = false
					}
				}
			}
			drainExit := c.GoAway()
			settle()
			c.Close()
			if drainExit {
				return
			}
		}
	}

	start := time.Now()
	for w := 0; w < *conns; w++ {
		wg.Add(1)
		go worker(w)
	}
	workersDone := make(chan struct{})
	go func() { wg.Wait(); close(workersDone) }()
	select {
	case <-time.After(*duration):
		close(stop)
		<-workersDone
	case <-workersDone: // server drained us out before the duration
	}
	elapsed := time.Since(start)

	rate := float64(ops.Load()) / elapsed.Seconds()
	fmt.Printf("oaload: ops=%d busy=%d dropped=%d errs=%d elapsed=%s ops_per_sec=%.0f\n",
		ops.Load(), busy.Load(), dropped.Load(), errs.Load(),
		elapsed.Round(time.Millisecond), rate)
	if dropped.Load() > 0 || errs.Load() > 0 || ops.Load() == 0 {
		os.Exit(1)
	}
}
