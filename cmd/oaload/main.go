// Command oaload drives an oaserver with pipelined load: -conns
// concurrent connections, each keeping -window requests in flight over a
// mixed GET/PUT/DEL/CAS workload, reconnecting after every -burst
// requests so session leases recycle across connections (the server-side
// behavior the load is designed to exercise: more connections over time
// than the fixed thread registry has slots).
//
// -dist zipf draws keys from a YCSB-style Zipf(-theta) popularity curve
// instead of uniform, concentrating traffic on hot keys (and therefore
// hot shards on a sharded server). -resp speaks RESP2 to a -resp
// listener instead of the binary protocol, with the same mix, pipeline
// discipline and summary line.
//
// On GOAWAY (server draining) a connection stops issuing, waits for all
// its outstanding responses — counting any that never arrive as dropped —
// and exits. The final stdout line is machine-readable:
//
//	oaload: ops=N busy=N dropped=N errs=N elapsed=1.234s ops_per_sec=N
//
// -json FILE additionally writes a structured report ("-" = stdout):
// the counters above plus the client-observed latency distribution
// (send→response, including pipeline queueing on both sides) as
// count/mean/p50/p90/p99/p999/max nanoseconds. On the binary protocol
// the report also carries an "exec" section sampled live over STATS:
// the server's execution mode, peak ring queue depth, ring-full
// refusals and the batch-size distribution (batches, max, average) the
// per-shard executors achieved under this load. The SLO gate (cmd/
// slocheck) reads this report and cross-checks it against the server's
// own histograms and batching counters.
//
// Exit status is nonzero when any response was dropped, any hard error
// occurred, or no operations completed.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/trace"
)

// report is the -json document. Latency reuses the server's CmdLatency
// shape so gate tooling parses one schema for both sides.
type report struct {
	Protocol  string            `json:"protocol"`
	Conns     int               `json:"conns"`
	Window    int               `json:"window"`
	Ops       uint64            `json:"ops"`
	Busy      uint64            `json:"busy"`
	Dropped   uint64            `json:"dropped"`
	Errs      uint64            `json:"errs"`
	ElapsedNs int64             `json:"elapsed_ns"`
	OpsPerSec float64           `json:"ops_per_sec"`
	Latency   server.CmdLatency `json:"latency"`
	Exec      *execReport       `json:"exec,omitempty"`
	Health    *healthReport     `json:"health,omitempty"`
}

// execReport summarizes the server's batched-execution pipeline as seen
// over STATS polls during the load: peak ring occupancy and the batch
// size distribution the executors actually achieved. Binary protocol
// only (a RESP -addr has no STATS op); nil when the poll never landed.
type execReport struct {
	Mode          string  `json:"mode"`
	RingCap       int     `json:"ring_cap"`
	MaxQueueDepth int     `json:"max_queue_depth"`
	RingFull      uint64  `json:"ring_full"`
	Batches       uint64  `json:"batches"`
	BatchedOps    uint64  `json:"batched_ops"`
	MaxBatch      uint64  `json:"max_batch"`
	AvgBatch      float64 `json:"avg_batch"`
}

// healthReport summarizes the server's health engine as seen over the
// STATS polls: the state the system settled into after the load ended
// (the sampler keeps polling up to healthSettle past the last request
// so clear-hysteresis can run out), the server's total transition
// count, how many transitions happened during this run's polling
// window, and every distinct state the polls caught. Absent when the
// server runs without a flight recorder (-flight-interval 0) or over
// RESP (no STATS op).
// healthSettle bounds how long the sampler waits after the load stops
// for the health state to return to ok: the default engine clears a
// rule after 8 calm ticks at 250ms, so 6s covers it with margin while
// keeping a genuinely stuck degraded state from hanging the report.
const healthSettle = 6 * time.Second

type healthReport struct {
	Final       string `json:"final"`
	Transitions uint64 `json:"transitions"`
	Observed    uint64 `json:"transitions_observed"`
	StatesSeen  string `json:"states_seen"`
}

// sampleStats polls STATS on its own connection until stop closes,
// tracking the peak per-shard ring depth and the health-state
// timeline, and returns the final counters. The poll connection is
// read-only load: STATS is answered on the reader, never enqueued, so
// it does not perturb the rings.
func sampleStats(addr string, stop <-chan struct{}) (*execReport, *healthReport) {
	c, err := server.Dial(addr, 4)
	if err != nil {
		return nil, nil
	}
	defer c.Close()
	var rep *execReport
	var hrep *healthReport
	var firstTransitions uint64
	var settle time.Time
	seen := map[string]bool{}
	for final := false; ; {
		raw, err := c.Stats()
		if err != nil {
			return rep, hrep
		}
		var snap struct {
			Server struct {
				ExecMode   string `json:"exec_mode"`
				RingCap    int    `json:"ring_cap"`
				RingDepth  []int  `json:"ring_depth"`
				RingFull   uint64 `json:"ring_full"`
				Batches    uint64 `json:"exec_batches"`
				BatchedOps uint64 `json:"exec_batched_ops"`
				MaxBatch   uint64 `json:"exec_max_batch"`
			} `json:"server"`
			Health *struct {
				State       string `json:"state"`
				Transitions uint64 `json:"transitions"`
			} `json:"health"`
		}
		if json.Unmarshal(raw, &snap) != nil {
			return rep, hrep
		}
		if h := snap.Health; h != nil {
			if hrep == nil {
				hrep = &healthReport{}
				firstTransitions = h.Transitions
			}
			if !seen[h.State] {
				seen[h.State] = true
				if hrep.StatesSeen != "" {
					hrep.StatesSeen += ","
				}
				hrep.StatesSeen += h.State
			}
			hrep.Final = h.State
			hrep.Transitions = h.Transitions
			hrep.Observed = h.Transitions - firstTransitions
		}
		s := snap.Server
		if rep == nil {
			rep = &execReport{Mode: s.ExecMode, RingCap: s.RingCap}
		}
		for _, d := range s.RingDepth {
			if d > rep.MaxQueueDepth {
				rep.MaxQueueDepth = d
			}
		}
		rep.RingFull = s.RingFull
		rep.Batches, rep.BatchedOps, rep.MaxBatch = s.Batches, s.BatchedOps, s.MaxBatch
		if s.Batches > 0 {
			rep.AvgBatch = float64(s.BatchedOps) / float64(s.Batches)
		}
		if final {
			// Counters now cover the whole run. Health rules clear with
			// hysteresis (ClearTicks consecutive calm ticks), so a rule
			// legitimately firing at the last request — e.g. backlog
			// growth under a full-tilt run — needs a settle window after
			// the load stops before "final" reflects the steady state.
			if hrep == nil || hrep.Final == "ok" || time.Now().After(settle) {
				return rep, hrep
			}
			time.Sleep(20 * time.Millisecond)
			continue
		}
		select {
		case <-stop:
			final = true // one more poll so the counters cover the whole run
			settle = time.Now().Add(healthSettle)
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func latencySummary(h *metrics.Histogram) server.CmdLatency {
	snap := h.Snapshot()
	cl := server.CmdLatency{Count: snap.Count, MaxNs: snap.Max}
	if snap.Count > 0 {
		cl.MeanNs = snap.Sum / snap.Count
		cl.P50Ns = snap.QuantileNs(0.50)
		cl.P90Ns = snap.QuantileNs(0.90)
		cl.P99Ns = snap.QuantileNs(0.99)
		cl.P999Ns = snap.QuantileNs(0.999)
	}
	return cl
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "server address")
		conns    = flag.Int("conns", 64, "concurrent connections")
		window   = flag.Int("window", 128, "pipelined requests in flight per connection")
		burst    = flag.Int("burst", 2000, "requests per connection before reconnecting (0 = never)")
		keys     = flag.Uint64("keys", 4096, "key space size")
		duration = flag.Duration("duration", 2*time.Second, "load duration")
		dist     = flag.String("dist", "uniform", "key distribution: uniform or zipf")
		theta    = flag.Float64("theta", 0.99, "zipfian skew (0 < theta < 1; YCSB default 0.99)")
		resp     = flag.Bool("resp", false, "speak RESP2 instead of the binary protocol")
		jsonOut  = flag.String("json", "", `write a JSON report to this file ("-" = stdout)`)
	)
	flag.Parse()
	if *dist != "uniform" && *dist != "zipf" {
		fmt.Fprintf(os.Stderr, "oaload: unknown -dist %q (want uniform or zipf)\n", *dist)
		os.Exit(2)
	}
	if *theta <= 0 || *theta >= 1 {
		fmt.Fprintf(os.Stderr, "oaload: -theta %v out of range (0, 1)\n", *theta)
		os.Exit(2)
	}

	var ops, busy, dropped, errs atomic.Uint64
	// One shared histogram of client-observed round trips; metrics.
	// Histogram is concurrent, so every worker records into it directly.
	var lat metrics.Histogram
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// keyGen builds the per-worker key stream for the chosen distribution.
	keyGen := func(w int, next func() uint64) func() uint64 {
		if *dist == "zipf" {
			z := newZipfian(*keys, *theta, uint64(w)*0xA24BAED4963EE407+1)
			return z.next
		}
		return func() uint64 { return next() % *keys }
	}

	worker := func(w int) {
		defer wg.Done()
		rng := uint64(w)*0x9E3779B97F4A7C15 + 1
		next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
		key := keyGen(w, next)
		for {
			select {
			case <-stop:
				return
			default:
			}
			c, err := server.Dial(*addr, *window)
			if err != nil {
				// During server drain the listener is gone; that's a clean end.
				return
			}
			c.Latency = &lat
			calls := make([]*server.Call, 0, *window)
			settle := func() bool {
				c.Flush()
				ok := true
				for _, ca := range calls {
					if err := ca.Wait(); err != nil {
						dropped.Add(1)
						ok = false
						continue
					}
					if ca.Status == server.StBusy {
						busy.Add(1)
					} else {
						ops.Add(1)
					}
				}
				calls = calls[:0]
				return ok
			}
			sent := 0
			alive := true
			for alive {
				select {
				case <-stop:
					alive = false
					continue
				default:
				}
				if *burst > 0 && sent >= *burst {
					break // reconnect: recycle the session lease
				}
				k := key()
				var ca *server.Call
				var err error
				switch next() % 10 {
				case 0:
					ca, err = c.Del(k)
				case 1:
					ca, err = c.CAS(k, next()%3, next())
				case 2, 3, 4:
					ca, err = c.Put(k, next())
				default:
					ca, err = c.Get(k)
				}
				if err != nil {
					if errors.Is(err, server.ErrGoAway) {
						alive = false // drain announced: settle and exit
						continue
					}
					errs.Add(1)
					alive = false
					continue
				}
				calls = append(calls, ca)
				sent++
				if len(calls) >= *window {
					if !settle() {
						alive = false
					}
				}
			}
			drainExit := c.GoAway()
			settle()
			c.Close()
			if drainExit {
				return
			}
		}
	}

	// respWorker drives the same mix over RESP2: Send/Recv pipelining at
	// -window depth, -BUSY counted like the binary StBusy, reconnects per
	// -burst. RESP has no GOAWAY: a drain surfaces as a cut connection,
	// so in-flight replies lost to it count as dropped.
	respWorker := func(w int) {
		defer wg.Done()
		rng := uint64(w)*0x9E3779B97F4A7C15 + 1
		next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
		key := keyGen(w, next)
		val := func() string { return strconv.FormatUint(next()%1_000_000, 10) }
		for {
			select {
			case <-stop:
				return
			default:
			}
			c, err := server.DialRESP(*addr)
			if err != nil {
				return // listener gone: clean end (drain or server exit)
			}
			// Responses come back in send order, so a circular array of
			// send timestamps (inflight never exceeds the window) pairs
			// each Recv with its Send for the latency histogram.
			stamps := make([]int64, *window)
			var sendSeq, recvSeq uint64
			inflight := 0
			settle := func() bool {
				if err := c.Flush(); err != nil {
					dropped.Add(uint64(inflight))
					inflight = 0
					return false
				}
				ok := true
				for ; inflight > 0; inflight-- {
					v, err := c.Recv()
					if err != nil {
						dropped.Add(uint64(inflight))
						inflight = 0
						return false
					}
					lat.ObserveNs(uint64(trace.Now() - stamps[recvSeq%uint64(*window)]))
					recvSeq++
					switch {
					case v.IsError() && bytes.HasPrefix(v.Str, []byte("BUSY")):
						busy.Add(1)
					case v.IsError():
						errs.Add(1)
						ok = false
					default:
						ops.Add(1)
					}
				}
				return ok
			}
			sent := 0
			alive := true
			for alive {
				select {
				case <-stop:
					alive = false
					continue
				default:
				}
				if *burst > 0 && sent >= *burst {
					break // reconnect: recycle the per-shard session leases
				}
				k := strconv.FormatUint(key(), 10)
				stamps[sendSeq%uint64(*window)] = trace.Now()
				sendSeq++
				switch next() % 10 {
				case 0:
					c.Send("DEL", k)
				case 1:
					c.Send("CAS", k, val(), val())
				case 2, 3, 4:
					c.Send("SET", k, val())
				default:
					c.Send("GET", k)
				}
				inflight++
				sent++
				if inflight >= *window {
					if !settle() {
						alive = false
					}
				}
			}
			settled := settle()
			c.Close()
			if !settled {
				return
			}
		}
	}

	start := time.Now()
	for w := 0; w < *conns; w++ {
		wg.Add(1)
		if *resp {
			go respWorker(w)
		} else {
			go worker(w)
		}
	}
	// The exec sampler stops only after the workers settle so its final
	// poll covers every batched op the load produced.
	var execRep *execReport
	var healthRep *healthReport
	sampStop := make(chan struct{})
	sampDone := make(chan struct{})
	if *jsonOut != "" && !*resp {
		go func() { execRep, healthRep = sampleStats(*addr, sampStop); close(sampDone) }()
	} else {
		close(sampDone)
	}
	workersDone := make(chan struct{})
	go func() { wg.Wait(); close(workersDone) }()
	select {
	case <-time.After(*duration):
		close(stop)
		<-workersDone
	case <-workersDone: // server drained us out before the duration
	}
	elapsed := time.Since(start)
	close(sampStop)
	<-sampDone

	rate := float64(ops.Load()) / elapsed.Seconds()
	fmt.Printf("oaload: ops=%d busy=%d dropped=%d errs=%d elapsed=%s ops_per_sec=%.0f\n",
		ops.Load(), busy.Load(), dropped.Load(), errs.Load(),
		elapsed.Round(time.Millisecond), rate)
	if *jsonOut != "" {
		proto := "binary"
		if *resp {
			proto = "resp"
		}
		rep := report{
			Protocol: proto, Conns: *conns, Window: *window,
			Ops: ops.Load(), Busy: busy.Load(), Dropped: dropped.Load(), Errs: errs.Load(),
			ElapsedNs: elapsed.Nanoseconds(), OpsPerSec: rate,
			Latency: latencySummary(&lat),
			Exec:    execRep,
			Health:  healthRep,
		}
		out, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			out = append(out, '\n')
			if *jsonOut == "-" {
				_, err = os.Stdout.Write(out)
			} else {
				err = os.WriteFile(*jsonOut, out, 0o644)
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "oaload: writing -json report:", err)
			os.Exit(1)
		}
	}
	if dropped.Load() > 0 || errs.Load() > 0 || ops.Load() == 0 {
		os.Exit(1)
	}
}
