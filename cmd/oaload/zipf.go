package main

import "math"

// zipfian draws keys from a Zipf(theta) popularity distribution over
// [0, n), the YCSB generator (Gray et al.'s method): rank 0 is hottest.
// The standard library's rand.Zipf needs s > 1 and so cannot express
// YCSB's canonical theta = 0.99, which is the skew every KV benchmark
// quotes; this is the incremental-zeta construction YCSB itself uses.
type zipfian struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	rng   uint64
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zeta(n uint64, theta float64) float64 {
	var z float64
	for i := uint64(1); i <= n; i++ {
		z += 1 / math.Pow(float64(i), theta)
	}
	return z
}

func newZipfian(n uint64, theta float64, seed uint64) *zipfian {
	if n < 2 {
		n = 2
	}
	zetan := zeta(n, theta)
	z := &zipfian{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		eta:   (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/zetan),
		rng:   seed | 1,
	}
	return z
}

// next returns the following rank; ~(1-theta)-skewed toward low ranks.
func (z *zipfian) next() uint64 {
	// xorshift64 uniform in [0,1).
	z.rng ^= z.rng << 13
	z.rng ^= z.rng >> 7
	z.rng ^= z.rng << 17
	u := float64(z.rng>>11) / (1 << 53)

	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	rank := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if rank >= z.n {
		rank = z.n - 1
	}
	// Scatter ranks over the key space so the hottest keys are not
	// adjacent integers (adjacent keys share hash-table neighborhoods).
	// The odd multiplier makes this a bijection for power-of-two n; for
	// other n rare collisions merge ranks, as in YCSB's scrambled
	// generator.
	return (rank * 0x9E3779B97F4A7C15) % z.n
}
