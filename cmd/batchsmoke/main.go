// Command batchsmoke is the perf gate for batched execution, wired into
// `make batch-smoke`: it builds oaserver and oaload, then measures the
// inline-vs-batched throughput curve at 1, 2 and 4 shards with 64
// pipelined connections each run — the same population servesmoke uses.
//
// Mechanics, checked on every run and runner:
//
//   - the load completes with zero dropped responses and zero errors
//   - the drain ledger balances (requests_read == responses_sent, no
//     force-closes) in BOTH modes — batching must not trade correctness
//   - the server really ran the requested mode (exec_mode in the final
//     stats), and in batched mode the session grants equal the shard
//     count while everything flowed through the rings
//
// The perf claim — batched >= 1.15x inline at 4 shards — is enforced
// only on runners with GOMAXPROCS >= 4: below that there is no
// cross-core handoff for batching to amortize, so a starved host can
// only measure the executor indirection, not the benefit. The full
// curve is printed everywhere so regressions are visible even where the
// gate is advisory.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"syscall"
	"time"
)

const (
	conns    = 64
	slots    = 96 // inline mode leases per connection: needs conns + headroom
	loadTime = 2 * time.Second
	minGain  = 1.15 // batched/inline throughput floor at 4 shards on >= 4 cores
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "batchsmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("batchsmoke: PASS")
}

func run() error {
	tmp, err := os.MkdirTemp("", "batchsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	serverBin := filepath.Join(tmp, "oaserver")
	loadBin := filepath.Join(tmp, "oaload")
	for bin, pkg := range map[string]string{serverBin: "./cmd/oaserver", loadBin: "./cmd/oaload"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("building %s: %w", pkg, err)
		}
	}

	type point struct{ inline, batched float64 }
	curve := map[int]point{}
	for _, shards := range []int{1, 2, 4} {
		in, err := measure(serverBin, loadBin, shards, "inline")
		if err != nil {
			return fmt.Errorf("inline/%d shards: %w", shards, err)
		}
		ba, err := measure(serverBin, loadBin, shards, "batched")
		if err != nil {
			return fmt.Errorf("batched/%d shards: %w", shards, err)
		}
		curve[shards] = point{in, ba}
		fmt.Printf("batchsmoke: %d shard(s): inline %.0f ops/s, batched %.0f ops/s (%.2fx)\n",
			shards, in, ba, ba/in)
	}

	if runtime.GOMAXPROCS(0) < 4 {
		fmt.Printf("batchsmoke: GOMAXPROCS=%d < 4: no cross-core handoff for batching to win back; "+
			"the %.2fx gate is not enforced (mechanics checked on every run)\n",
			runtime.GOMAXPROCS(0), minGain)
		return nil
	}
	p := curve[4]
	if gain := p.batched / p.inline; gain < minGain {
		return fmt.Errorf("batched execution %.2fx inline at 4 shards, below the %.2fx floor "+
			"(inline %.0f ops/s, batched %.0f ops/s)", gain, minGain, p.inline, p.batched)
	}
	return nil
}

// measure serves n shards in the given exec mode, drives a 64-conn
// pipelined burst, SIGTERMs, and returns the measured rate after
// checking the run's mechanics and that the mode really ran.
func measure(serverBin, loadBin string, n int, mode string) (float64, error) {
	addr, err := freeAddr()
	if err != nil {
		return 0, err
	}
	var serverOut, serverErr bytes.Buffer
	srv := exec.Command(serverBin,
		"-addr", addr,
		"-exec", mode,
		"-shards", strconv.Itoa(n),
		"-threads", strconv.Itoa(slots),
		"-capacity", strconv.Itoa(1<<20))
	srv.Stdout = &serverOut
	srv.Stderr = &serverErr
	if err := srv.Start(); err != nil {
		return 0, err
	}
	defer srv.Process.Kill()
	if err := waitListening(addr, 10*time.Second); err != nil {
		return 0, fmt.Errorf("server never listened: %w (stderr:\n%s)", err, serverErr.String())
	}

	// -burst 0: no reconnect churn, so both modes measure steady-state
	// execution, not lease recycling (inline's known churn cost).
	loadOut, err := exec.Command(loadBin,
		"-addr", addr,
		"-conns", strconv.Itoa(conns),
		"-duration", loadTime.String(),
		"-burst", "0").CombinedOutput()
	fmt.Print(string(loadOut))
	if err != nil {
		return 0, fmt.Errorf("oaload: %w", err)
	}
	m := loadLine.FindStringSubmatch(string(loadOut))
	if m == nil {
		return 0, fmt.Errorf("no oaload summary in output:\n%s", loadOut)
	}
	dropped, _ := strconv.ParseUint(m[2], 10, 64)
	rate, _ := strconv.ParseFloat(m[3], 64)
	if dropped != 0 {
		return 0, fmt.Errorf("%d dropped responses", dropped)
	}

	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		return 0, err
	}
	if err := srv.Wait(); err != nil {
		return 0, fmt.Errorf("server exit: %w (stderr:\n%s)", err, serverErr.String())
	}
	var final struct {
		Server struct {
			RequestsRead  uint64 `json:"requests_read"`
			ResponsesSent uint64 `json:"responses_sent"`
			ForceClosed   uint64 `json:"force_closed"`
			ExecMode      string `json:"exec_mode"`
			Shards        int    `json:"shards"`
			SessionGrants uint64 `json:"session_grants"`
			BatchedOps    uint64 `json:"exec_batched_ops"`
		} `json:"server"`
	}
	if err := json.Unmarshal(serverOut.Bytes(), &final); err != nil {
		return 0, fmt.Errorf("final stats: %w (stdout %q)", err, serverOut.String())
	}
	f := final.Server
	if f.ExecMode != mode {
		return 0, fmt.Errorf("server ran exec_mode=%q, want %q", f.ExecMode, mode)
	}
	if f.ForceClosed != 0 {
		return 0, fmt.Errorf("%d connections force-closed during drain", f.ForceClosed)
	}
	if f.RequestsRead != f.ResponsesSent {
		return 0, fmt.Errorf("requests_read=%d != responses_sent=%d", f.RequestsRead, f.ResponsesSent)
	}
	if mode == "batched" {
		if f.SessionGrants != uint64(f.Shards) {
			return 0, fmt.Errorf("session_grants=%d over %d shards: connections leased in batched mode",
				f.SessionGrants, f.Shards)
		}
		if f.BatchedOps == 0 {
			return 0, errors.New("exec_batched_ops=0: the load bypassed the rings")
		}
	}
	return rate, nil
}

var loadLine = regexp.MustCompile(
	`oaload: ops=(\d+) busy=\d+ dropped=(\d+) errs=\d+ elapsed=\S+ ops_per_sec=(\d+)`)

func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	defer l.Close()
	return l.Addr().String(), nil
}

func waitListening(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			c.Close()
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return errors.New("timeout")
}
