// Command shardsmoke is the shard scaling gate wired into
// `make shard-smoke`: it builds oaserver and oaload, measures pipelined
// throughput at 1, 2 and 4 shards under the same zipfian load, prints
// the ops/s-vs-shards curve, and checks the router mechanics from each
// run's final stats (every shard saw traffic, nothing dropped, balanced
// request/response ledger).
//
// On a runner with GOMAXPROCS >= 4 the curve is also a performance
// assertion: 4 shards must deliver >= 1.8x the 1-shard rate. With fewer
// cores there is no parallelism for sharding to unlock, so the ratio
// check is skipped (stated in the output) and only the mechanics are
// enforced.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"syscall"
	"time"
)

const (
	slots    = 32
	conns    = 16
	loadTime = 2 * time.Second
	minScale = 1.8 // 4-shard vs 1-shard floor on >= 4 cores
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "shardsmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("shardsmoke: PASS")
}

func run() error {
	tmp, err := os.MkdirTemp("", "shardsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	serverBin := filepath.Join(tmp, "oaserver")
	loadBin := filepath.Join(tmp, "oaload")
	for bin, pkg := range map[string]string{serverBin: "./cmd/oaserver", loadBin: "./cmd/oaload"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("building %s: %w", pkg, err)
		}
	}

	shardCounts := []int{1, 2, 4}
	rates := make(map[int]float64, len(shardCounts))
	for _, n := range shardCounts {
		rate, err := measure(serverBin, loadBin, n)
		if err != nil {
			return fmt.Errorf("%d shards: %w", n, err)
		}
		rates[n] = rate
	}

	fmt.Println("shardsmoke: ops/s vs shards (zipfian keys, theta 0.99):")
	for _, n := range shardCounts {
		fmt.Printf("shardsmoke:   shards=%d  ops_per_sec=%.0f  (%.2fx of 1-shard)\n",
			n, rates[n], rates[n]/rates[1])
	}

	if runtime.GOMAXPROCS(0) >= 4 {
		if scale := rates[4] / rates[1]; scale < minScale {
			return fmt.Errorf("4-shard scaling %.2fx below the %.1fx floor on a %d-core runner",
				scale, minScale, runtime.GOMAXPROCS(0))
		}
	} else {
		fmt.Printf("shardsmoke: GOMAXPROCS=%d < 4: no parallelism for sharding to unlock; "+
			"scaling ratio not enforced (mechanics checked on every run)\n", runtime.GOMAXPROCS(0))
	}
	return nil
}

// measure serves with n shards, drives a zipfian load burst, SIGTERMs,
// and returns the measured rate after checking the run's mechanics.
func measure(serverBin, loadBin string, n int) (float64, error) {
	addr, err := freeAddr()
	if err != nil {
		return 0, err
	}
	var serverOut, serverErr bytes.Buffer
	srv := exec.Command(serverBin,
		"-addr", addr,
		"-shards", strconv.Itoa(n),
		"-threads", strconv.Itoa(slots),
		"-capacity", strconv.Itoa(1<<20))
	srv.Stdout = &serverOut
	srv.Stderr = &serverErr
	if err := srv.Start(); err != nil {
		return 0, err
	}
	defer srv.Process.Kill()
	if err := waitListening(addr, 10*time.Second); err != nil {
		return 0, fmt.Errorf("server never listened: %w (stderr:\n%s)", err, serverErr.String())
	}

	loadOut, err := exec.Command(loadBin,
		"-addr", addr,
		"-conns", strconv.Itoa(conns),
		"-duration", loadTime.String(),
		"-dist", "zipf", "-theta", "0.99",
		"-keys", "65536",
		"-burst", "0").CombinedOutput()
	fmt.Print(string(loadOut))
	if err != nil {
		return 0, fmt.Errorf("oaload: %w", err)
	}
	m := loadLine.FindStringSubmatch(string(loadOut))
	if m == nil {
		return 0, fmt.Errorf("no oaload summary in output:\n%s", loadOut)
	}
	dropped, _ := strconv.ParseUint(m[2], 10, 64)
	rate, _ := strconv.ParseFloat(m[3], 64)
	if dropped != 0 {
		return 0, fmt.Errorf("%d dropped responses", dropped)
	}

	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		return 0, err
	}
	if err := srv.Wait(); err != nil {
		return 0, fmt.Errorf("server exit: %w (stderr:\n%s)", err, serverErr.String())
	}
	var final struct {
		Server struct {
			RequestsRead  uint64   `json:"requests_read"`
			ResponsesSent uint64   `json:"responses_sent"`
			ForceClosed   uint64   `json:"force_closed"`
			Shards        int      `json:"shards"`
			ShardOps      []uint64 `json:"shard_ops"`
		} `json:"server"`
	}
	if err := json.Unmarshal(serverOut.Bytes(), &final); err != nil {
		return 0, fmt.Errorf("final stats: %w (stdout %q)", err, serverOut.String())
	}
	f := final.Server
	if f.Shards != n {
		return 0, fmt.Errorf("server ran %d shards, want %d", f.Shards, n)
	}
	if f.ForceClosed != 0 {
		return 0, fmt.Errorf("%d connections force-closed during drain", f.ForceClosed)
	}
	if f.RequestsRead != f.ResponsesSent {
		return 0, fmt.Errorf("requests_read=%d != responses_sent=%d", f.RequestsRead, f.ResponsesSent)
	}
	for i, ops := range f.ShardOps {
		if ops == 0 {
			return 0, fmt.Errorf("shard %d saw no traffic (shard_ops %v): router degenerate", i, f.ShardOps)
		}
	}
	return rate, nil
}

var loadLine = regexp.MustCompile(
	`oaload: ops=(\d+) busy=\d+ dropped=(\d+) errs=\d+ elapsed=\S+ ops_per_sec=(\d+)`)

func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	defer l.Close()
	return l.Addr().String(), nil
}

func waitListening(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			c.Close()
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return errors.New("timeout")
}
