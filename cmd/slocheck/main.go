// Command slocheck is the SLO gate wired into `make slo-smoke`: it
// builds oaserver and oaload, drives a pipelined mixed load, and
// asserts the service-level objectives from the server's OWN latency
// histograms (the per-(command, shard) families behind /metrics, STATS
// and INFO latency) — not just from the client's stopwatch — so the
// gate fails if either the service regresses or its instrumentation
// stops measuring.
//
// Checked on every run (mechanics):
//
//   - the load completed: ops > 0, nothing dropped, no hard errors
//   - the drain ledger balances: requests_read == responses_sent,
//     force_closed == 0
//   - the histograms saw the traffic: per-command latency counts sum to
//     ~the data ops served, and quantiles are nonzero
//   - the client report (-json) and the server's final stats agree on
//     the order of magnitude of work done
//   - the batched pipeline carried the load: the report's exec section
//     (sampled over STATS) shows batched mode, a sized ring, a queue
//     depth within the ring bound, and batch counters covering the ops
//   - the health engine signed off: the report's health block (the
//     flight recorder runs by default) must end in state `ok` — a
//     report whose final state is degraded or critical is refused
//
// Enforced only on runners with GOMAXPROCS >= 4 (like shard-smoke, a
// starved host proves nothing about the service):
//
//   - throughput floor: ops/s >= 50k
//   - server-side p99 per command <= 20ms
//   - BUSY rejections <= 0.1% of operations
//   - cross-check: server-side p99 must not exceed the client-observed
//     p99 by more than the log₂-bucket inflation allows (the server
//     excludes socket wait and pipeline queueing, so genuinely larger
//     values mean the instrumentation is broken)
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"syscall"
	"time"
)

const (
	conns      = 16
	loadTime   = 2 * time.Second
	minRate    = 50_000.0              // ops/s floor on >= 4 cores
	maxP99     = 20 * time.Millisecond // server-side per-command p99 ceiling
	maxBusyPct = 0.1                   // BUSY rejections per 100 ops
	slackNs    = int64(time.Millisecond)
)

type cmdLatency struct {
	Count  uint64 `json:"count"`
	MeanNs uint64 `json:"mean_ns"`
	P50Ns  uint64 `json:"p50_ns"`
	P90Ns  uint64 `json:"p90_ns"`
	P99Ns  uint64 `json:"p99_ns"`
	P999Ns uint64 `json:"p999_ns"`
	MaxNs  uint64 `json:"max_ns"`
}

type finalStats struct {
	Server struct {
		RequestsRead  uint64 `json:"requests_read"`
		ResponsesSent uint64 `json:"responses_sent"`
		Busy          uint64 `json:"busy"`
		ForceClosed   uint64 `json:"force_closed"`
		SlowRequests  uint64 `json:"slow_requests"`
	} `json:"server"`
	Latency map[string]cmdLatency `json:"latency"`
}

type clientReport struct {
	Ops       uint64     `json:"ops"`
	Busy      uint64     `json:"busy"`
	Dropped   uint64     `json:"dropped"`
	Errs      uint64     `json:"errs"`
	OpsPerSec float64    `json:"ops_per_sec"`
	Latency   cmdLatency `json:"latency"`
	Exec      *struct {
		Mode          string  `json:"mode"`
		RingCap       int     `json:"ring_cap"`
		MaxQueueDepth int     `json:"max_queue_depth"`
		RingFull      uint64  `json:"ring_full"`
		Batches       uint64  `json:"batches"`
		BatchedOps    uint64  `json:"batched_ops"`
		MaxBatch      uint64  `json:"max_batch"`
		AvgBatch      float64 `json:"avg_batch"`
	} `json:"exec"`
	Health *struct {
		Final       string `json:"final"`
		Transitions uint64 `json:"transitions"`
		Observed    uint64 `json:"transitions_observed"`
		StatesSeen  string `json:"states_seen"`
	} `json:"health"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "slocheck: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("slocheck: PASS")
}

func run() error {
	tmp, err := os.MkdirTemp("", "slocheck")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	serverBin := filepath.Join(tmp, "oaserver")
	loadBin := filepath.Join(tmp, "oaload")
	for bin, pkg := range map[string]string{serverBin: "./cmd/oaserver", loadBin: "./cmd/oaload"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("building %s: %w", pkg, err)
		}
	}

	addr, err := freeAddr()
	if err != nil {
		return err
	}
	var serverOut, serverErr bytes.Buffer
	srv := exec.Command(serverBin,
		"-addr", addr,
		"-threads", "32",
		"-capacity", strconv.Itoa(1<<20),
		"-slow-threshold", "5ms")
	srv.Stdout = &serverOut
	srv.Stderr = &serverErr
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Process.Kill()
	if err := waitListening(addr, 10*time.Second); err != nil {
		return fmt.Errorf("server never listened: %w (stderr:\n%s)", err, serverErr.String())
	}

	reportPath := filepath.Join(tmp, "load.json")
	loadOut, err := exec.Command(loadBin,
		"-addr", addr,
		"-conns", strconv.Itoa(conns),
		"-duration", loadTime.String(),
		"-burst", "0",
		"-json", reportPath).CombinedOutput()
	fmt.Print(string(loadOut))
	if err != nil {
		return fmt.Errorf("oaload: %w", err)
	}
	raw, err := os.ReadFile(reportPath)
	if err != nil {
		return fmt.Errorf("client report: %w", err)
	}
	var client clientReport
	if err := json.Unmarshal(raw, &client); err != nil {
		return fmt.Errorf("client report: %w\n%s", err, raw)
	}

	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := srv.Wait(); err != nil {
		return fmt.Errorf("server exit: %w (stderr:\n%s)", err, serverErr.String())
	}
	var final finalStats
	if err := json.Unmarshal(serverOut.Bytes(), &final); err != nil {
		return fmt.Errorf("final stats: %w (stdout %q)", err, serverOut.String())
	}

	// --- mechanics, enforced on every runner ---------------------------
	if client.Ops == 0 || client.Dropped != 0 || client.Errs != 0 {
		return fmt.Errorf("load mechanics: ops=%d dropped=%d errs=%d", client.Ops, client.Dropped, client.Errs)
	}
	if client.Latency.Count == 0 || client.Latency.P99Ns == 0 {
		return fmt.Errorf("client latency histogram empty: %+v", client.Latency)
	}
	f := final.Server
	if f.ForceClosed != 0 {
		return fmt.Errorf("%d connections force-closed during drain", f.ForceClosed)
	}
	if f.RequestsRead != f.ResponsesSent {
		return fmt.Errorf("requests_read=%d != responses_sent=%d", f.RequestsRead, f.ResponsesSent)
	}
	var served uint64
	for _, op := range []string{"get", "put", "del", "cas"} {
		cl, ok := final.Latency[op]
		if !ok {
			return fmt.Errorf("final stats latency block missing %q", op)
		}
		if cl.Count > 0 && cl.P99Ns == 0 {
			return fmt.Errorf("%s latency: %d samples but p99 = 0", op, cl.Count)
		}
		served += cl.Count
	}
	// The histograms must have seen the data traffic the client counted
	// (BUSY responses are excluded from the histograms by design).
	if served < client.Ops {
		return fmt.Errorf("server histograms saw %d ops, client completed %d — instrumentation is dropping requests",
			served, client.Ops)
	}
	// The server runs batched by default, and the load must actually have
	// flowed through the rings: executors reporting zero batches (or an
	// unsized ring) mean the batching pipeline silently fell back.
	ex := client.Exec
	if ex == nil {
		return fmt.Errorf("client report has no exec section — STATS sampling never landed")
	}
	if ex.Mode != "batched" || ex.RingCap == 0 {
		return fmt.Errorf("exec mode/ring_cap = %q/%d, want batched with a sized ring", ex.Mode, ex.RingCap)
	}
	if ex.Batches == 0 || ex.BatchedOps < client.Ops || ex.AvgBatch < 1 {
		return fmt.Errorf("batching counters implausible: batches=%d batched_ops=%d (client ops %d) avg=%.2f",
			ex.Batches, ex.BatchedOps, client.Ops, ex.AvgBatch)
	}
	if ex.MaxQueueDepth > ex.RingCap {
		return fmt.Errorf("max queue depth %d exceeds ring capacity %d", ex.MaxQueueDepth, ex.RingCap)
	}
	// The flight recorder runs by default, so the report must carry a
	// health block — and a run that ends anywhere but `ok` is refused:
	// an SLO pass while the health engine still says degraded would be
	// two gates disagreeing about the same histograms.
	hb := client.Health
	if hb == nil {
		return fmt.Errorf("client report has no health block — the server's flight recorder is off or STATS lost it")
	}
	if hb.Final != "ok" {
		return fmt.Errorf("final health state %q (states seen: %s, %d transitions observed) — refusing the report",
			hb.Final, hb.StatesSeen, hb.Observed)
	}
	fmt.Printf("slocheck: ops=%d ops_per_sec=%.0f busy=%d slow=%d client_p99=%s\n",
		client.Ops, client.OpsPerSec, f.Busy, f.SlowRequests, time.Duration(client.Latency.P99Ns))
	fmt.Printf("slocheck: exec=%s ring_cap=%d max_queue_depth=%d ring_full=%d batches=%d avg_batch=%.1f max_batch=%d\n",
		ex.Mode, ex.RingCap, ex.MaxQueueDepth, ex.RingFull, ex.Batches, ex.AvgBatch, ex.MaxBatch)
	fmt.Printf("slocheck: health final=%s states_seen=%s transitions_observed=%d\n",
		hb.Final, hb.StatesSeen, hb.Observed)
	for _, op := range []string{"get", "put", "del", "cas"} {
		cl := final.Latency[op]
		fmt.Printf("slocheck:   %-3s count=%-8d p50=%-10s p99=%-10s max=%s\n",
			op, cl.Count, time.Duration(cl.P50Ns), time.Duration(cl.P99Ns), time.Duration(cl.MaxNs))
	}

	// --- SLOs, enforced only where the hardware can meet them ----------
	if runtime.GOMAXPROCS(0) < 4 {
		fmt.Printf("slocheck: GOMAXPROCS=%d < 4: latency/throughput SLOs not enforced "+
			"(mechanics checked on every run)\n", runtime.GOMAXPROCS(0))
		return nil
	}
	if client.OpsPerSec < minRate {
		return fmt.Errorf("throughput %.0f ops/s below the %.0f floor", client.OpsPerSec, minRate)
	}
	for _, op := range []string{"get", "put", "del", "cas"} {
		cl := final.Latency[op]
		if cl.Count == 0 {
			continue
		}
		if cl.P99Ns > uint64(maxP99.Nanoseconds()) {
			return fmt.Errorf("server-side %s p99 %s exceeds the %s SLO", op, time.Duration(cl.P99Ns), maxP99)
		}
		// Server-side p99 excludes socket wait and client pipeline
		// queueing, so it can only exceed the client-observed p99 via
		// log₂ bucket rounding (≤ 2x per side) plus scheduling slack. A
		// larger excess means the span instrumentation is mismeasuring.
		if int64(cl.P99Ns) > 4*int64(client.Latency.P99Ns)+slackNs {
			return fmt.Errorf("server-side %s p99 %s implausibly exceeds client p99 %s",
				op, time.Duration(cl.P99Ns), time.Duration(client.Latency.P99Ns))
		}
	}
	if pct := 100 * float64(f.Busy) / float64(client.Ops); pct > maxBusyPct {
		return fmt.Errorf("BUSY rejections %.2f%% of ops exceed the %.1f%% budget", pct, maxBusyPct)
	}
	return nil
}

func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	defer l.Close()
	return l.Addr().String(), nil
}

func waitListening(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			c.Close()
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("timeout waiting for %s", addr)
}
