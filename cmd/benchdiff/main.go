// Command benchdiff joins two oabench JSON reports (BENCH_*.json) and
// prints a per-cell throughput ratio table: new mops / old mops for every
// (figure, structure, threads, scheme) cell present in both files, with
// the NoRecl baseline included as the pseudo-scheme "norecl". It exits
// nonzero when any joined cell's ratio falls below -threshold, making it
// the merge gate for perf regressions:
//
//	go run ./cmd/benchdiff -old BENCH_2.json -new BENCH_3.json -threshold 0.85
//
// Cells present in only one file are reported but never gate — a new
// scheme or thread count is not a regression. The threshold default is
// deliberately loose: single-digit-percent swings are noise on a shared
// host (see the baseline notes embedded in the reports themselves).
//
// Each report carries an environment fingerprint (host, kernel, go
// version, CPU count); when the two differ, benchdiff prints a loud
// ENVIRONMENT MISMATCH banner before the table. The mismatch never
// gates — the table may still be informative — but cross-host ratios
// must not be read as regressions. Reports written before env stamping
// get a one-line "comparability unknown" note instead.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	oldPath := flag.String("old", "", "baseline oabench JSON report")
	newPath := flag.String("new", "", "candidate oabench JSON report")
	threshold := flag.Float64("threshold", 0.85, "minimum new/old throughput ratio per cell")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "usage: benchdiff -old OLD.json -new NEW.json [-threshold R]")
		os.Exit(2)
	}
	oldRep, err := readReport(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newRep, err := readReport(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	printEnvCheck(os.Stdout, oldRep, newRep)
	d := diff(oldRep, newRep)
	d.print(os.Stdout, *oldPath, *newPath, *threshold)
	printLatency(os.Stdout, oldRep, newRep)
	if len(d.below(*threshold)) > 0 {
		os.Exit(1)
	}
}
