package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleOld = `{
  "generated": "2026-01-01T00:00:00Z",
  "figures": [{
    "name": "fig1", "structures": [{
      "structure": "list", "rows": [{
        "threads": 1, "norecl_mops": 10.0,
        "schemes": [
          {"scheme": "oa", "mops": 8.0},
          {"scheme": "hp", "mops": 4.0}
        ]
      }]
    }]
  }]
}`

const sampleNew = `{
  "generated": "2026-01-02T00:00:00Z",
  "figures": [{
    "name": "fig1", "structures": [{
      "structure": "list", "rows": [{
        "threads": 1, "norecl_mops": 10.0,
        "schemes": [
          {"scheme": "oa", "mops": 9.0},
          {"scheme": "ebr", "mops": 6.0}
        ]
      }]
    }]
  }]
}`

func parse(t *testing.T, s string) *report {
	t.Helper()
	var r report
	if err := json.Unmarshal([]byte(s), &r); err != nil {
		t.Fatal(err)
	}
	return &r
}

func TestDiffJoinsOnCellKey(t *testing.T) {
	d := diff(parse(t, sampleOld), parse(t, sampleNew))
	// Joined: norecl (10->10) and oa (8->9). hp only in old, ebr only in new.
	if len(d.joined) != 2 {
		t.Fatalf("joined %d cells, want 2", len(d.joined))
	}
	ratios := map[string]float64{}
	for _, c := range d.joined {
		ratios[c.key.scheme] = c.ratio
	}
	if ratios["norecl"] != 1.0 {
		t.Fatalf("norecl ratio = %v, want 1.0", ratios["norecl"])
	}
	if ratios["oa"] != 9.0/8.0 {
		t.Fatalf("oa ratio = %v, want 1.125", ratios["oa"])
	}
	if len(d.oldOnly) != 1 || d.oldOnly[0].scheme != "hp" {
		t.Fatalf("oldOnly = %v, want [hp]", d.oldOnly)
	}
	if len(d.newOnly) != 1 || d.newOnly[0].scheme != "ebr" {
		t.Fatalf("newOnly = %v, want [ebr]", d.newOnly)
	}
}

func TestThresholdGate(t *testing.T) {
	d := diff(parse(t, sampleOld), parse(t, sampleNew))
	if bad := d.below(0.95); len(bad) != 0 {
		t.Fatalf("no cell regressed, below = %v", bad)
	}
	// A higher bar than any ratio must flag the flat norecl cell; unmatched
	// cells (hp, ebr) never gate.
	if bad := d.below(1.05); len(bad) != 1 || bad[0].key.scheme != "norecl" {
		t.Fatalf("below(1.05) = %v, want the norecl cell only", bad)
	}
}

func TestPrintMarksRegressions(t *testing.T) {
	d := diff(parse(t, sampleOld), parse(t, sampleNew))
	var sb strings.Builder
	d.print(&sb, "old.json", "new.json", 1.05)
	out := sb.String()
	if !strings.Contains(out, "<< REGRESSION") {
		t.Fatalf("regression not flagged:\n%s", out)
	}
	if !strings.Contains(out, "1 below threshold") {
		t.Fatalf("summary missing gate count:\n%s", out)
	}
	if !strings.Contains(out, "dropped") || !strings.Contains(out, "added") {
		t.Fatalf("unmatched cells not reported:\n%s", out)
	}
}

const sampleNewWithLatency = `{
  "generated": "2026-01-03T00:00:00Z",
  "figures": [{
    "name": "fig1", "structures": [{
      "structure": "list", "rows": [{
        "threads": 1, "norecl_mops": 10.0,
        "norecl_latency": {"sample_every": 8,
          "contains": {"count": 100, "p99_ns": 2047},
          "insert": {"count": 10, "p99_ns": 4095},
          "delete": {"count": 10, "p99_ns": 4095}},
        "schemes": [
          {"scheme": "oa", "mops": 9.0,
           "latency": {"sample_every": 8,
             "contains": {"count": 90, "p99_ns": 4095},
             "insert": {"count": 9, "p99_ns": 8191},
             "delete": {"count": 9, "p99_ns": 8191}}}
        ]
      }]
    }]
  }]
}`

// An old report without latency blocks must produce a skip note, not an
// error — the back-compat contract for pre-latency baselines.
func TestLatencySkippedWhenOldLacksBlocks(t *testing.T) {
	var sb strings.Builder
	printLatency(&sb, parse(t, sampleOld), parse(t, sampleNewWithLatency))
	out := sb.String()
	if !strings.Contains(out, "old report predates latency blocks") {
		t.Fatalf("missing skip note:\n%s", out)
	}
	if strings.Contains(out, "p99 (ns)") {
		t.Fatalf("comparison table printed despite missing old data:\n%s", out)
	}
}

func TestLatencyComparisonJoins(t *testing.T) {
	var sb strings.Builder
	printLatency(&sb, parse(t, sampleNewWithLatency), parse(t, sampleNewWithLatency))
	out := sb.String()
	if !strings.Contains(out, "2 latency cells joined") {
		t.Fatalf("expected 2 joined latency cells:\n%s", out)
	}
	if !strings.Contains(out, "2047") || !strings.Contains(out, "4095") {
		t.Fatalf("p99 values missing from table:\n%s", out)
	}
}

func TestLatencyNoteWhenNewLacksBlocks(t *testing.T) {
	var sb strings.Builder
	printLatency(&sb, parse(t, sampleNewWithLatency), parse(t, sampleNew))
	if !strings.Contains(sb.String(), "new report has no latency blocks") {
		t.Fatalf("missing note:\n%s", sb.String())
	}
}

const envA = `"env": {"go_version": "go1.24.0", "os": "linux", "arch": "amd64",
  "num_cpu": 8, "gomaxprocs": 8, "kernel": "Linux 6.1.0", "hostname": "boxa"}`

const envB = `"env": {"go_version": "go1.23.5", "os": "linux", "arch": "amd64",
  "num_cpu": 4, "gomaxprocs": 4, "kernel": "Linux 6.1.0", "hostname": "boxb"}`

func withEnv(t *testing.T, sample, env string) *report {
	t.Helper()
	return parse(t, strings.Replace(sample, `"generated":`, env+`, "generated":`, 1))
}

func TestEnvMatchPrintsOneLine(t *testing.T) {
	var sb strings.Builder
	printEnvCheck(&sb, withEnv(t, sampleOld, envA), withEnv(t, sampleNew, envA))
	out := sb.String()
	if !strings.Contains(out, "# env: match") {
		t.Fatalf("matching envs not acknowledged:\n%s", out)
	}
	if strings.Contains(out, "MISMATCH") {
		t.Fatalf("false mismatch warning:\n%s", out)
	}
}

// Different hosts must trigger the loud banner with one line per
// differing field — the satellite contract: a cross-environment diff
// warns, by name, instead of silently comparing noise.
func TestEnvMismatchWarnsLoudly(t *testing.T) {
	var sb strings.Builder
	printEnvCheck(&sb, withEnv(t, sampleOld, envA), withEnv(t, sampleNew, envB))
	out := sb.String()
	if !strings.Contains(out, "ENVIRONMENT MISMATCH") {
		t.Fatalf("missing mismatch banner:\n%s", out)
	}
	for _, want := range []string{
		`go_version: old "go1.24.0" vs new "go1.23.5"`,
		"num_cpu: old 8 vs new 4",
		"gomaxprocs: old 8 vs new 4",
		`hostname: old "boxa" vs new "boxb"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing field diff %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "kernel:") {
		t.Fatalf("equal kernel field reported as mismatched:\n%s", out)
	}
}

// Reports that predate env stamping (the existing BENCH_*.json files)
// must get a note, never a mismatch banner or an error.
func TestEnvNoteWhenOldUnstamped(t *testing.T) {
	var sb strings.Builder
	printEnvCheck(&sb, parse(t, sampleOld), withEnv(t, sampleNew, envA))
	out := sb.String()
	if !strings.Contains(out, "old report predates environment stamping") {
		t.Fatalf("missing back-compat note:\n%s", out)
	}
	if strings.Contains(out, "MISMATCH") {
		t.Fatalf("unstamped report treated as mismatch:\n%s", out)
	}
}
