package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// report mirrors just the slice of the oabench JSON schema benchdiff joins
// on; unknown fields (counters, ratios, notes) are ignored so the tool
// stays compatible as reports grow new per-cell detail.
type report struct {
	Generated string `json:"generated"`
	Env       *env   `json:"env"`
	Figures   []struct {
		Name       string `json:"name"`
		Structures []struct {
			Structure string `json:"structure"`
			Rows      []struct {
				Threads       int       `json:"threads"`
				NoReclMops    float64   `json:"norecl_mops"`
				NoReclLatency *latBlock `json:"norecl_latency"`
				Schemes       []struct {
					Scheme  string    `json:"scheme"`
					Mops    float64   `json:"mops"`
					Latency *latBlock `json:"latency"`
				} `json:"schemes"`
			} `json:"rows"`
		} `json:"structures"`
	} `json:"figures"`
}

// latBlock is the slice of the per-cell latency block benchdiff compares;
// reports written before latency sampling existed simply leave it nil.
type latBlock struct {
	Contains latHist `json:"contains"`
	Insert   latHist `json:"insert"`
	Delete   latHist `json:"delete"`
}

type latHist struct {
	Count uint64 `json:"count"`
	P99Ns uint64 `json:"p99_ns"`
}

// env mirrors the report's environment fingerprint. Throughput ratios
// only mean anything between runs on the same host and toolchain, so a
// mismatch in any of these fields makes the whole comparison suspect.
type env struct {
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Kernel     string `json:"kernel"`
	Hostname   string `json:"hostname"`
}

// envMismatches compares the two fingerprints field by field and
// returns one human-readable line per differing field. Empty fields on
// either side (older partial stamps) are not counted as mismatches.
func envMismatches(oldEnv, newEnv *env) []string {
	var out []string
	strField := func(name, o, n string) {
		if o != "" && n != "" && o != n {
			out = append(out, fmt.Sprintf("%s: old %q vs new %q", name, o, n))
		}
	}
	intField := func(name string, o, n int) {
		if o != 0 && n != 0 && o != n {
			out = append(out, fmt.Sprintf("%s: old %d vs new %d", name, o, n))
		}
	}
	strField("go_version", oldEnv.GoVersion, newEnv.GoVersion)
	strField("os", oldEnv.OS, newEnv.OS)
	strField("arch", oldEnv.Arch, newEnv.Arch)
	intField("num_cpu", oldEnv.NumCPU, newEnv.NumCPU)
	intField("gomaxprocs", oldEnv.GoMaxProcs, newEnv.GoMaxProcs)
	strField("kernel", oldEnv.Kernel, newEnv.Kernel)
	strField("hostname", oldEnv.Hostname, newEnv.Hostname)
	return out
}

// printEnvCheck renders the environment comparison. A mismatch warns as
// loudly as possible without gating: the ratio table is still worth
// reading, but treating its regressions (or improvements) as real would
// be comparing different machines.
func printEnvCheck(w io.Writer, oldRep, newRep *report) {
	switch {
	case oldRep.Env == nil && newRep.Env == nil:
		fmt.Fprintf(w, "# env: both reports predate environment stamping; comparability unknown\n")
	case oldRep.Env == nil:
		fmt.Fprintf(w, "# env: old report predates environment stamping; comparability unknown\n")
	case newRep.Env == nil:
		fmt.Fprintf(w, "# env: new report lacks the environment stamp; comparability unknown\n")
	default:
		mm := envMismatches(oldRep.Env, newRep.Env)
		if len(mm) == 0 {
			fmt.Fprintf(w, "# env: match (%s, %s/%s, %d cpu, %s)\n",
				newRep.Env.GoVersion, newRep.Env.OS, newRep.Env.Arch, newRep.Env.NumCPU, newRep.Env.Hostname)
			return
		}
		fmt.Fprintf(w, "#\n# !!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!\n")
		fmt.Fprintf(w, "# !! ENVIRONMENT MISMATCH — ratios below are NOT comparable   !!\n")
		fmt.Fprintf(w, "# !!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!\n")
		for _, m := range mm {
			fmt.Fprintf(w, "# !! %s\n", m)
		}
		fmt.Fprintf(w, "# !! regenerate the baseline on this host before trusting the gate\n#\n")
	}
}

func readReport(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// key identifies one measurement cell across reports.
type key struct {
	figure, structure string
	threads           int
	scheme            string
}

func (k key) String() string {
	return fmt.Sprintf("%s/%s/t=%d/%s", k.figure, k.structure, k.threads, k.scheme)
}

// cells flattens a report into its cell map, folding the NoRecl baseline
// in as the pseudo-scheme "norecl".
func cells(r *report) map[key]float64 {
	m := map[key]float64{}
	for _, f := range r.Figures {
		for _, s := range f.Structures {
			for _, row := range s.Rows {
				m[key{f.Name, s.Structure, row.Threads, "norecl"}] = row.NoReclMops
				for _, sc := range row.Schemes {
					m[key{f.Name, s.Structure, row.Threads, sc.Scheme}] = sc.Mops
				}
			}
		}
	}
	return m
}

// latCells flattens a report into its latency map; cells without a block
// are absent.
func latCells(r *report) map[key]*latBlock {
	m := map[key]*latBlock{}
	for _, f := range r.Figures {
		for _, s := range f.Structures {
			for _, row := range s.Rows {
				if row.NoReclLatency != nil {
					m[key{f.Name, s.Structure, row.Threads, "norecl"}] = row.NoReclLatency
				}
				for _, sc := range row.Schemes {
					if sc.Latency != nil {
						m[key{f.Name, s.Structure, row.Threads, sc.Scheme}] = sc.Latency
					}
				}
			}
		}
	}
	return m
}

// printLatency renders an informational p99 comparison table. Latency never
// gates — tail percentiles on a shared host are far noisier than means —
// and when either report predates latency blocks the comparison is skipped
// with a note instead of an error, so old baselines keep working.
func printLatency(w io.Writer, oldRep, newRep *report) {
	oldLat, newLat := latCells(oldRep), latCells(newRep)
	if len(newLat) == 0 {
		fmt.Fprintf(w, "# latency: new report has no latency blocks; nothing to compare\n")
		return
	}
	if len(oldLat) == 0 {
		fmt.Fprintf(w, "# latency: old report predates latency blocks; skipping p99 comparison (%d new cells carry latency)\n",
			len(newLat))
		return
	}
	type latDiff struct {
		key      key
		old, new *latBlock
	}
	var joined []latDiff
	for k, nv := range newLat {
		if ov, ok := oldLat[k]; ok {
			joined = append(joined, latDiff{k, ov, nv})
		}
	}
	sort.Slice(joined, func(i, j int) bool { return joined[i].key.String() < joined[j].key.String() })
	fmt.Fprintf(w, "# latency p99 (ns), informational only\n")
	fmt.Fprintf(w, "%-44s %12s %12s %12s %12s\n", "cell", "old_contains", "new_contains", "old_insert", "new_insert")
	for _, d := range joined {
		fmt.Fprintf(w, "%-44s %12d %12d %12d %12d\n", d.key,
			d.old.Contains.P99Ns, d.new.Contains.P99Ns, d.old.Insert.P99Ns, d.new.Insert.P99Ns)
	}
	fmt.Fprintf(w, "# %d latency cells joined\n", len(joined))
}

// cellDiff is one joined cell.
type cellDiff struct {
	key      key
	old, new float64
	ratio    float64
}

// result holds the join: cells in both reports plus the unmatched leftovers.
type result struct {
	joined  []cellDiff
	oldOnly []key
	newOnly []key
}

// diff joins two reports cell-by-cell.
func diff(oldRep, newRep *report) *result {
	oldCells, newCells := cells(oldRep), cells(newRep)
	res := &result{}
	for k, nv := range newCells {
		ov, ok := oldCells[k]
		if !ok {
			res.newOnly = append(res.newOnly, k)
			continue
		}
		ratio := 0.0
		if ov > 0 {
			ratio = nv / ov
		}
		res.joined = append(res.joined, cellDiff{k, ov, nv, ratio})
	}
	for k := range oldCells {
		if _, ok := newCells[k]; !ok {
			res.oldOnly = append(res.oldOnly, k)
		}
	}
	sortKeys := func(ks []key) {
		sort.Slice(ks, func(i, j int) bool { return ks[i].String() < ks[j].String() })
	}
	sort.Slice(res.joined, func(i, j int) bool {
		return res.joined[i].key.String() < res.joined[j].key.String()
	})
	sortKeys(res.oldOnly)
	sortKeys(res.newOnly)
	return res
}

// below returns the joined cells whose ratio is under the threshold.
func (r *result) below(threshold float64) []cellDiff {
	var bad []cellDiff
	for _, c := range r.joined {
		if c.ratio < threshold {
			bad = append(bad, c)
		}
	}
	return bad
}

// median of the joined ratios (0 when nothing joined).
func (r *result) median() float64 {
	if len(r.joined) == 0 {
		return 0
	}
	rs := make([]float64, len(r.joined))
	for i, c := range r.joined {
		rs[i] = c.ratio
	}
	sort.Float64s(rs)
	mid := len(rs) / 2
	if len(rs)%2 == 0 {
		return (rs[mid-1] + rs[mid]) / 2
	}
	return rs[mid]
}

// print renders the ratio table and the gate summary.
func (r *result) print(w io.Writer, oldPath, newPath string, threshold float64) {
	fmt.Fprintf(w, "# benchdiff %s -> %s (threshold %.2f)\n", oldPath, newPath, threshold)
	fmt.Fprintf(w, "%-44s %10s %10s %7s\n", "cell", "old_mops", "new_mops", "ratio")
	for _, c := range r.joined {
		flag := ""
		if c.ratio < threshold {
			flag = "  << REGRESSION"
		}
		fmt.Fprintf(w, "%-44s %10.2f %10.2f %7.3f%s\n", c.key, c.old, c.new, c.ratio, flag)
	}
	for _, k := range r.oldOnly {
		fmt.Fprintf(w, "%-44s %10s %10s %7s\n", k, "-", "dropped", "")
	}
	for _, k := range r.newOnly {
		fmt.Fprintf(w, "%-44s %10s %10s %7s\n", k, "added", "-", "")
	}
	bad := r.below(threshold)
	lo, hi := 0.0, 0.0
	if len(r.joined) > 0 {
		lo, hi = r.joined[0].ratio, r.joined[0].ratio
		for _, c := range r.joined {
			if c.ratio < lo {
				lo = c.ratio
			}
			if c.ratio > hi {
				hi = c.ratio
			}
		}
	}
	fmt.Fprintf(w, "# %d cells joined, median ratio %.3f, range %.3f-%.3f, %d below threshold\n",
		len(r.joined), r.median(), lo, hi, len(bad))
}
