// Command tracecheck validates a reclamation event trace produced by
// `oastress -trace FILE` or saved from the /trace endpoint: the file must
// be a well-formed Chrome trace_event document (the format chrome://tracing
// and ui.perfetto.dev load), every event must be a properly shaped instant
// event, and the timeline must contain the event kinds a healthy OA soak
// produces. `make trace-smoke` wires it into CI so the dump format cannot
// silently rot.
//
// Usage:
//
//	tracecheck [-require phase,restart] trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

func main() {
	require := flag.String("require", "phase,restart",
		"comma-separated event kinds the trace must contain")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-require kinds] TRACE.json")
		os.Exit(2)
	}
	if err := check(flag.Arg(0), strings.Split(*require, ",")); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("tracecheck: PASS")
}

func check(path string, required []string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			S    string          `json:"s"`
			Pid  *int            `json:"pid"`
			Tid  *int            `json:"tid"`
			Ts   *float64        `json:"ts"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s is not a chrome trace document: %w", path, err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("%s contains no events — was tracing enabled?", path)
	}
	kinds := map[string]int{}
	lastTs := -1.0
	for i, e := range doc.TraceEvents {
		if e.Name == "" || e.Ph != "i" || e.S != "t" || e.Pid == nil || e.Tid == nil || e.Ts == nil {
			return fmt.Errorf("event %d is not a well-formed instant event: %+v", i, e)
		}
		if *e.Ts < lastTs {
			return fmt.Errorf("event %d breaks timestamp order: %v after %v", i, *e.Ts, lastTs)
		}
		lastTs = *e.Ts
		kinds[e.Name]++
	}
	for _, want := range required {
		want = strings.TrimSpace(want)
		if want != "" && kinds[want] == 0 {
			return fmt.Errorf("no %q events in %s (kinds present: %v)", want, path, kindList(kinds))
		}
	}
	fmt.Printf("tracecheck: %d events in %s: %s\n", len(doc.TraceEvents), path, kindList(kinds))
	return nil
}

// kindList renders the kind histogram deterministically.
func kindList(kinds map[string]int) string {
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, k := range names {
		parts[i] = fmt.Sprintf("%s=%d", k, kinds[k])
	}
	return strings.Join(parts, " ")
}
