// Command healthsmoke is the CI gate for the flight recorder's health
// engine: it builds an in-process server with a deliberately tiny
// request ring and a fast-ticking recorder, then drives the process
// into each degraded state on purpose and asserts the right rule
// fires, surfaces everywhere it should, and clears once the pressure
// is removed.
//
// Phase 1 — ring saturation: the executor is stalled through the
// server's ExecGate hook, a pipelined client fills the 16-slot shard
// ring, and the ring_saturation rule must fire (depth/capacity ≥ 0.8
// for FireTicks consecutive ticks), turn /healthz degraded, appear in
// RESP `INFO health`, then clear after the gate opens.
//
// Phase 2 — retired-backlog growth: churn workers PUT+DEL fresh keys
// so every operation allocates and retires a node while the arena is
// far from exhaustion — the OA scheme recycles lazily, so the retired
// backlog grows monotonically until the backlog_growth rule fires; the
// churn stops and the rule must clear (the backlog stays high but
// stops growing).
//
// Mechanics (endpoint shapes, rule catalog, EvHealth payloads) are
// asserted on any host. The state-transition assertions are enforced
// when GOMAXPROCS >= 4; on smaller hosts a phase that cannot starve
// its way to a transition within the timeout downgrades to a warning
// so CI boxes with one core don't fail on scheduler luck.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/kvmap"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/trace"
)

const (
	ringSize   = 16
	fireTicks  = 4
	clearTicks = 4
	interval   = 25 * time.Millisecond
	phaseWait  = 10 * time.Second
)

func main() {
	log := func(format string, args ...any) {
		fmt.Printf("healthsmoke: "+format+"\n", args...)
	}
	fail := func(format string, args ...any) {
		fmt.Printf("healthsmoke: FAIL: "+format+"\n", args...)
		os.Exit(1)
	}
	strict := runtime.GOMAXPROCS(0) >= 4

	obs.SetEnabled(true)
	trace.SetEnabled(true)

	// One shard keeps the provocations deterministic: every request
	// lands on the same ring and the same reclamation universe.
	sh := kvmap.NewSharded(core.Config{MaxThreads: 16, Capacity: 1 << 20}, 1<<16, 1)

	// gate is the executor valve: storing a channel stalls every drain
	// pass on it; closing and clearing it releases the executor.
	var gate atomic.Pointer[chan struct{}]
	srv := server.New(server.Config{
		Shards:   sh,
		RingSize: ringSize,
		RingWait: time.Millisecond,
		ExecGate: func(int) {
			if ch := gate.Load(); ch != nil {
				<-*ch
			}
		},
	})

	reg := obs.NewRegistry()
	sh.Shard(0).Manager().RegisterObs(reg)
	srv.RegisterObs(reg)
	rec := flight.New(reg, flight.Config{
		Interval:   interval,
		Window:     30 * time.Second,
		SLOP99:     time.Second, // present in the rule catalog, never firing here
		FireTicks:  fireTicks,
		ClearTicks: clearTicks,
	})
	rec.RegisterObs(reg)
	srv.SetHealth(func() any { return rec.Health() })
	rec.Start()
	for rec.Ticks() == 0 {
		time.Sleep(time.Millisecond)
	}

	bln := listen(fail)
	rln := listen(fail)
	hln := listen(fail)
	go srv.Serve(bln)
	go srv.ServeRESP(rln)
	go http.Serve(hln, reg.Handler())
	healthURL := "http://" + hln.Addr().String() + "/healthz"
	historyURL := "http://" + hln.Addr().String() + "/debug/history"

	// Mechanics: the rule catalog and endpoint shapes, on any host.
	st := getHealth(fail, healthURL)
	wantRules := []string{"backlog_growth", "ring_saturation", "phase_stalled", "slo_p99_burn"}
	for _, name := range wantRules {
		if ruleByName(st, name) == nil {
			fail("/healthz rule catalog missing %q: %+v", name, st.Rules)
		}
	}
	if st.State != "ok" {
		fail("initial state = %q, want ok", st.State)
	}
	var hist struct {
		Catalog []string `json:"catalog"`
	}
	getJSON(fail, historyURL, &hist)
	if len(hist.Catalog) == 0 {
		fail("/debug/history catalog empty")
	}
	log("mechanics ok: %d rules, %d history series", len(st.Rules), len(hist.Catalog))

	c, err := server.Dial(bln.Addr().String(), 64)
	if err != nil {
		fail("dial: %v", err)
	}

	// ---- Phase 1: ring saturation via a stalled executor ----
	ch := make(chan struct{})
	gate.Store(&ch)
	var queued []*server.Call
	for i := uint64(0); i < 64; i++ {
		ca, err := c.Put(i, i)
		if err != nil {
			fail("pipelined put: %v", err)
		}
		queued = append(queued, ca)
	}
	c.Flush()

	satFired := waitFiring(log, healthURL, "ring_saturation", true, strict, fail)
	if satFired {
		st = getHealth(fail, healthURL)
		if st.State != "degraded" {
			fail("ring saturation fired but state = %q", st.State)
		}
		assertInfoHealth(fail, rln.Addr().String(), "degraded", "ring_saturation")
		log("ring_saturation fired: value=%.2f state=degraded (INFO health agrees)",
			ruleByName(st, "ring_saturation").Value)
	}
	close(ch)
	gate.Store(nil)
	busy := 0
	for _, ca := range queued {
		if err := ca.Wait(); err != nil {
			fail("queued put after gate release: %v", err)
		}
		if ca.Status == server.StBusy {
			busy++
		}
	}
	if busy == 0 {
		fail("no BUSY responses while the ring was gated — backpressure never engaged")
	}
	if satFired {
		if !waitFiring(log, healthURL, "ring_saturation", false, strict, fail) {
			fail("ring_saturation never cleared after the gate opened")
		}
		log("ring_saturation cleared (%d of 64 puts answered BUSY while gated)", busy)
	}

	// ---- Phase 2: retired-backlog growth via PUT+DEL churn ----
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			k := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Fresh key every round: PUT allocates a node, DEL
				// retires it, and the lazily-recycling scheme lets the
				// retired backlog climb.
				put, err := c.Put(k, k)
				if err != nil {
					return
				}
				del, err := c.Del(k)
				if err != nil {
					return
				}
				put.Wait()
				del.Wait()
				k += 2
			}
		}(uint64(1e9) + uint64(w))
	}

	growFired := waitFiring(log, healthURL, "backlog_growth", true, strict, fail)
	if growFired {
		st = getHealth(fail, healthURL)
		if st.State != "degraded" {
			fail("backlog growth fired but state = %q", st.State)
		}
		assertInfoHealth(fail, rln.Addr().String(), "degraded", "backlog_growth")
		log("backlog_growth fired: value=%.0f slots/s state=degraded (INFO health agrees)",
			ruleByName(st, "backlog_growth").Value)
	}
	close(stop)
	wg.Wait()
	if growFired {
		if !waitFiring(log, healthURL, "backlog_growth", false, strict, fail) {
			fail("backlog_growth never cleared after churn stopped")
		}
		log("backlog_growth cleared")
	}

	// ---- Final contract: transitions, trace events, STATS block ----
	if satFired && growFired {
		st = getHealth(fail, healthURL)
		if st.State != "ok" {
			fail("final state = %q, want ok", st.State)
		}
		if st.Transitions < 4 {
			fail("observed %d transitions, want >= 4 (two fire/clear cycles)", st.Transitions)
		}
		evs := rec.Tracer().Events()
		health := 0
		for _, e := range evs {
			if e.Kind == trace.EvHealth {
				health++
				old, new, mask := trace.UnpackHealth(e.Arg)
				if old == new {
					fail("EvHealth with no state change: %d -> %d (mask %#x)", old, new, mask)
				}
			}
		}
		if health < 4 {
			fail("recorded %d EvHealth events, want >= 4", health)
		}
		var doc struct {
			Health flight.Status `json:"health"`
		}
		body, err := c.Stats()
		if err != nil {
			fail("STATS: %v", err)
		}
		if err := json.Unmarshal(body, &doc); err != nil {
			fail("STATS body: %v", err)
		}
		if doc.Health.State != "ok" || doc.Health.Transitions != st.Transitions {
			fail("STATS health block = %+v, want ok/%d", doc.Health, st.Transitions)
		}
		log("PASS: 2 degraded rules fired and cleared, %d transitions, %d EvHealth events",
			st.Transitions, health)
	} else {
		log("PASS (mechanics only: GOMAXPROCS=%d < 4 and transitions starved)", runtime.GOMAXPROCS(0))
	}

	c.Close()
	srv.Shutdown()
	rec.Stop()
	sh.Close()
}

func listen(fail func(string, ...any)) net.Listener {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail("listen: %v", err)
	}
	return ln
}

func getJSON(fail func(string, ...any), url string, v any) int {
	resp, err := http.Get(url)
	if err != nil {
		fail("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if err := json.Unmarshal(body, v); err != nil {
		fail("GET %s: bad JSON %v:\n%s", url, err, body)
	}
	return resp.StatusCode
}

func getHealth(fail func(string, ...any), url string) flight.Status {
	var st flight.Status
	getJSON(fail, url, &st)
	return st
}

func ruleByName(st flight.Status, name string) *flight.RuleStatus {
	for i := range st.Rules {
		if st.Rules[i].Name == name {
			return &st.Rules[i]
		}
	}
	return nil
}

// waitFiring polls /healthz until rule's firing flag equals want. On
// timeout it fails in strict mode and reports false otherwise.
func waitFiring(log func(string, ...any), url, rule string, want, strict bool, fail func(string, ...any)) bool {
	deadline := time.Now().Add(phaseWait)
	for time.Now().Before(deadline) {
		st := getHealth(fail, url)
		if rs := ruleByName(st, rule); rs != nil && rs.Firing == want {
			return true
		}
		time.Sleep(interval / 2)
	}
	if strict {
		fail("rule %s did not reach firing=%v within %v", rule, want, phaseWait)
	}
	log("warn: rule %s did not reach firing=%v within %v (non-strict host)", rule, want, phaseWait)
	return false
}

func assertInfoHealth(fail func(string, ...any), addr, state, rule string) {
	rc, err := server.DialRESP(addr)
	if err != nil {
		fail("dial RESP: %v", err)
	}
	defer rc.Close()
	v, err := rc.Do("INFO", "health")
	if err != nil {
		fail("INFO health: %v", err)
	}
	info := string(v.Str)
	if !strings.Contains(info, `health_state:"`+state+`"`) || !strings.Contains(info, rule) {
		fail("INFO health missing state %q / rule %q:\n%s", state, rule, info)
	}
}
