package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/smr"
)

// Report is the machine-readable mirror of the figure tables oabench
// prints. Tracking tools diff these files across commits, so every cell
// carries both the absolute throughput and the ratio against the NoRecl
// baseline measured in the same row — the paper's headline metric.
type Report struct {
	// Generated is the RFC 3339 wall-clock time of the run.
	Generated string `json:"generated"`
	// GoMaxProcs, Duration, Reps and Delta pin the run configuration the
	// numbers were collected under.
	GoMaxProcs int    `json:"gomaxprocs"`
	Duration   string `json:"duration"`
	Reps       int    `json:"reps"`
	Delta      int    `json:"delta"`
	// LatSample is the per-thread latency sampling period (0 = no latency
	// blocks in this report).
	LatSample int `json:"latsample,omitempty"`
	// Notes carries free-form context, e.g. the pre-change baseline the
	// run is meant to be compared against.
	Notes string `json:"notes,omitempty"`
	// Env pins the machine and toolchain the numbers came from, so a
	// diff across reports can refuse to read noise between different
	// hosts as a regression. Reports written before the field existed
	// lack it entirely.
	Env     *EnvBlock `json:"env,omitempty"`
	Figures []Figure  `json:"figures"`
}

// EnvBlock is the environment fingerprint stamped into every report.
type EnvBlock struct {
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// Kernel is `uname -sr` output; empty where uname is unavailable.
	Kernel string `json:"kernel,omitempty"`
	// Hostname identifies the box; benchmarks from different hosts are
	// never comparable at tracking-gate precision.
	Hostname string `json:"hostname,omitempty"`
	// GitSHA is the commit the benchmark binary was built from, with
	// GitDirty set when the working tree had uncommitted changes.
	GitSHA   string `json:"git_sha,omitempty"`
	GitDirty bool   `json:"git_dirty,omitempty"`
}

// captureEnv fingerprints the current process and host. Every probe is
// best-effort: a missing uname or git leaves its field empty rather
// than failing the run.
func captureEnv() *EnvBlock {
	env := &EnvBlock{
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	if out, err := exec.Command("uname", "-sr").Output(); err == nil {
		env.Kernel = strings.TrimSpace(string(out))
	}
	if hn, err := os.Hostname(); err == nil {
		env.Hostname = hn
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		env.GitSHA = strings.TrimSpace(string(out))
		if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil {
			env.GitDirty = len(strings.TrimSpace(string(st))) > 0
		}
	}
	return env
}

// Figure is one figure-family sweep (fig1, fig4, ...).
type Figure struct {
	Name         string            `json:"name"`
	Title        string            `json:"title"`
	ReadFraction float64           `json:"read_fraction"`
	Structures   []StructureResult `json:"structures"`
}

// StructureResult is the per-structure threads × schemes table.
type StructureResult struct {
	Structure string `json:"structure"`
	Rows      []Row  `json:"rows"`
}

// Row is one thread count: the NoRecl baseline plus every scheme cell.
type Row struct {
	Threads        int          `json:"threads"`
	NoReclMops     float64      `json:"norecl_mops"`
	NoReclCounters CounterBlock `json:"norecl_counters"`
	// NoReclLatency is present only when the run sampled latencies
	// (-latsample > 0); older reports lack the field entirely.
	NoReclLatency *LatencyBlock `json:"norecl_latency,omitempty"`
	Schemes       []SchemeCell  `json:"schemes"`
}

// SchemeCell is one (scheme, threads) measurement.
type SchemeCell struct {
	Scheme        string        `json:"scheme"`
	Mops          float64       `json:"mops"`
	RatioVsNoRecl float64       `json:"ratio_vs_norecl"`
	Counters      CounterBlock  `json:"counters"`
	Latency       *LatencyBlock `json:"latency,omitempty"`
}

// LatencyHist summarizes the sampled latency of one operation kind in the
// final repetition, in nanoseconds (log₂-bucket upper bounds for the
// percentiles).
type LatencyHist struct {
	Count  uint64 `json:"count"`
	MeanNs uint64 `json:"mean_ns"`
	P50Ns  uint64 `json:"p50_ns"`
	P90Ns  uint64 `json:"p90_ns"`
	P99Ns  uint64 `json:"p99_ns"`
	P999Ns uint64 `json:"p999_ns"`
	MaxNs  uint64 `json:"max_ns"`
}

// LatencyBlock carries the three per-operation histograms of one cell.
type LatencyBlock struct {
	// SampleEvery is the per-thread sampling period that produced the data
	// (one timed op in SampleEvery).
	SampleEvery int         `json:"sample_every"`
	Contains    LatencyHist `json:"contains"`
	Insert      LatencyHist `json:"insert"`
	Delete      LatencyHist `json:"delete"`
}

// latencyFrom converts the harness aggregate into the JSON block; nil in,
// nil out, so unsampled runs keep the field absent.
func latencyFrom(l *harness.OpLatency) *LatencyBlock {
	if l == nil {
		return nil
	}
	conv := func(k harness.OpKind) LatencyHist {
		s := l.Hist(k).Snapshot()
		h := LatencyHist{
			Count:  s.Count,
			MaxNs:  s.Max,
			P50Ns:  s.QuantileNs(0.50),
			P90Ns:  s.QuantileNs(0.90),
			P99Ns:  s.QuantileNs(0.99),
			P999Ns: s.QuantileNs(0.999),
		}
		if s.Count > 0 {
			h.MeanNs = s.Sum / s.Count
		}
		return h
	}
	return &LatencyBlock{
		SampleEvery: l.SampleEvery,
		Contains:    conv(harness.OpContains),
		Insert:      conv(harness.OpInsert),
		Delete:      conv(harness.OpDelete),
	}
}

// CounterBlock embeds the final repetition's aggregate SMR counters next
// to the throughput they accompanied, so a tracking diff that moves a
// ratio also shows whether reclamation behaviour (restart rate, backlog)
// moved with it.
type CounterBlock struct {
	Allocs      uint64 `json:"allocs"`
	Retires     uint64 `json:"retires"`
	Recycled    uint64 `json:"recycled"`
	ReRetired   uint64 `json:"re_retired"`
	Phases      uint64 `json:"phases"`
	Restarts    uint64 `json:"restarts"`
	Unreclaimed uint64 `json:"unreclaimed"`
}

// countersFrom converts aggregate run statistics into the JSON block.
func countersFrom(s smr.Stats) CounterBlock {
	var un uint64
	if s.Retires > s.Recycled {
		un = s.Retires - s.Recycled
	}
	return CounterBlock{
		Allocs:      s.Allocs,
		Retires:     s.Retires,
		Recycled:    s.Recycled,
		ReRetired:   s.ReRetired,
		Phases:      s.Phases,
		Restarts:    s.Restarts,
		Unreclaimed: un,
	}
}

// newReport snapshots the run configuration.
func newReport(o options, notes string) *Report {
	return &Report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Duration:   o.duration.String(),
		Reps:       o.reps,
		Delta:      o.delta,
		LatSample:  o.latsample,
		Notes:      notes,
		Env:        captureEnv(),
	}
}

// write emits the report as indented JSON at path.
func (r *Report) write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("# wrote %s (%d figures)\n", path, len(r.Figures))
	return nil
}
