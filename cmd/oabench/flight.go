package main

import (
	"sync/atomic"

	"repro/internal/flight"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/smr"
)

// flightProbe keeps the in-process flight recorder sampling for the
// whole benchmark run, so the numbers a report carries were collected
// with continuous recording on at the default interval — the
// recorder's steady-state cost is part of what the tracking gate
// measures, not an unmeasured production surprise.
//
// The smr_* families are registered once over an atomically swapped
// source: each cell's freshly built structure is published into the
// probe before its repetitions start, and the recorder's next tick
// samples that structure. Between cells the source briefly points at
// the previous (now idle) structure, which only flattens the series.
type flightProbe struct {
	cur atomic.Pointer[statHolder]
	rec *flight.Recorder
}

// statHolder gives the atomic pointer one concrete type to hold while
// the underlying sources vary across schemes and structures.
type statHolder struct{ src harness.StatSource }

func (p *flightProbe) Stats() smr.Stats {
	if h := p.cur.Load(); h != nil {
		return h.src.Stats()
	}
	return smr.Stats{}
}

// startFlightProbe builds the registry, registers the swappable smr_*
// families, and starts a recorder at the default interval and window.
//
// Deliberately does NOT call obs.SetEnabled: that global flag gates
// per-read hot-path counters inside the OA core, and flipping it would
// benchmark the instrumentation, not the recorder (measured ~35% on
// LinkedList128/OA). The smr_* aggregates sampled here are maintained
// unconditionally, so the recorder sees real data either way; what
// this probe adds to the measured run is exactly what production pays
// for recording — one goroutine sampling every 250ms.
func startFlightProbe() *flightProbe {
	p := &flightProbe{}
	reg := obs.NewRegistry()
	harness.Observe(reg, p)
	p.rec = flight.New(reg, flight.Config{})
	p.rec.RegisterObs(reg)
	p.rec.Start()
	return p
}

// observe routes the recorder's samples at src from the next tick on.
func (p *flightProbe) observe(src harness.StatSource) {
	p.cur.Store(&statHolder{src: src})
}

func (p *flightProbe) stop() { p.rec.Stop() }
