// Command oabench regenerates every figure of the paper's evaluation
// (Cohen & Petrank, SPAA 2015): throughput ratios and absolute throughput
// for the four micro-benchmarks under NoRecl/OA/HP/EBR/Anchors (Figures 1,
// 4-8), the local-pool-size sweep (Figure 2), the phase-frequency sweep
// (Figure 3), the paper's sanity checks, and this repository's extra
// ablations (Appendix E choices).
//
// Usage:
//
//	oabench -experiment fig1 [-duration 1s] [-reps 20] [-threads 1,2,4,8,16,32,64]
//	oabench -experiment all  [-quick]
//
// Absolute numbers will not match the paper's 2015 testbeds; the shapes —
// who wins, by what factor, where the crossovers fall — are the
// reproduction target (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/smr"
)

type options struct {
	experiment string
	duration   time.Duration
	reps       int
	threads    []int
	delta      int
	quick      bool
	jsonPath   string
	notes      string
	latsample  int
	flight     bool
}

// probe is the process-wide flight recorder (nil with -flight=false);
// measureFull publishes every freshly built structure into it.
var probe *flightProbe

func main() {
	var o options
	var threadsFlag string
	flag.StringVar(&o.experiment, "experiment", "fig1",
		"one of fig1..fig8, sanity, ablation, anchorsk, space, zipf, pauses, ext, all")
	flag.DurationVar(&o.duration, "duration", 200*time.Millisecond,
		"measurement duration per run (the paper uses 1s)")
	flag.IntVar(&o.reps, "reps", 3, "repetitions per configuration (the paper uses 20)")
	flag.StringVar(&threadsFlag, "threads", "1,2,4,8,16,32,64", "thread counts to sweep")
	flag.IntVar(&o.delta, "delta", 50000, "δ: allocations between reclamation phases (Figure 1 default)")
	flag.BoolVar(&o.quick, "quick", false, "tiny sweep for smoke testing")
	flag.StringVar(&o.jsonPath, "json", "",
		"also write the figure-family results as JSON to this file")
	flag.StringVar(&o.notes, "notes", "", "free-form note embedded in the JSON report")
	flag.IntVar(&o.latsample, "latsample", 64,
		"time one op in N per thread for latency percentiles (0 disables all clock reads)")
	flag.BoolVar(&o.flight, "flight", true,
		"run the in-process flight recorder during measurements, so reported numbers include its steady-state cost")
	flag.Parse()

	for _, part := range strings.Split(threadsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad -threads element %q\n", part)
			os.Exit(2)
		}
		o.threads = append(o.threads, n)
	}
	if o.quick {
		o.threads = []int{1, 2, 4}
		o.duration = 50 * time.Millisecond
		o.reps = 1
	}

	if o.flight {
		probe = startFlightProbe()
		defer probe.stop()
	}

	fmt.Printf("# oabench: GOMAXPROCS=%d, duration=%v, reps=%d, δ=%d, flight=%v\n\n",
		runtime.GOMAXPROCS(0), o.duration, o.reps, o.delta, o.flight)

	var rep *Report
	if o.jsonPath != "" {
		rep = newReport(o, o.notes)
	}
	record := func(f Figure) {
		if rep != nil {
			rep.Figures = append(rep.Figures, f)
		}
	}

	switch o.experiment {
	case "fig1":
		record(figureSweep(o, "fig1", "Figure 1: throughput ratio vs NoRecl (80% reads)", 0.8, false, 64))
	case "fig4":
		record(figureSweep(o, "fig4", "Figure 4: absolute throughput in Mops/s (80% reads)", 0.8, true, 64))
	case "fig5":
		record(figureSweep(o, "fig5", "Figure 5: second-platform ratios (sweep capped at 32 threads)", 0.8, false, 32))
	case "fig6":
		record(figureSweep(o, "fig6", "Figure 6: second-platform absolute throughput (capped at 32)", 0.8, true, 32))
	case "fig7":
		record(figureSweep(o, "fig7", "Figure 7: ratios at 40% mutation (60% reads)", 0.6, false, 64))
	case "fig8":
		record(figureSweep(o, "fig8", "Figure 8: ratios at 2/3 mutation (1/3 reads)", 1.0/3.0, false, 64))
	case "fig2":
		fig2(o)
	case "fig3":
		fig3(o)
	case "sanity":
		sanity(o)
	case "ablation":
		ablation(o)
	case "anchorsk":
		anchorsK(o)
	case "space":
		space(o)
	case "zipf":
		zipf(o)
	case "pauses":
		pauses(o)
	case "ext":
		anchorsK(o)
		space(o)
		zipf(o)
		pauses(o)
	case "all":
		record(figureSweep(o, "fig1", "Figure 1: throughput ratio vs NoRecl (80% reads)", 0.8, false, 64))
		fig2(o)
		fig3(o)
		record(figureSweep(o, "fig4", "Figure 4: absolute throughput in Mops/s (80% reads)", 0.8, true, 64))
		record(figureSweep(o, "fig5", "Figure 5: second-platform ratios (capped at 32 threads)", 0.8, false, 32))
		record(figureSweep(o, "fig6", "Figure 6: second-platform absolute throughput (capped at 32)", 0.8, true, 32))
		record(figureSweep(o, "fig7", "Figure 7: ratios at 40% mutation (60% reads)", 0.6, false, 64))
		record(figureSweep(o, "fig8", "Figure 8: ratios at 2/3 mutation (1/3 reads)", 1.0/3.0, false, 64))
		sanity(o)
		ablation(o)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", o.experiment)
		os.Exit(2)
	}

	if rep != nil {
		if len(rep.Figures) == 0 {
			fmt.Fprintf(os.Stderr,
				"-json: experiment %q records no figure tables; nothing written\n", o.experiment)
			os.Exit(2)
		}
		if err := rep.write(o.jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "-json: %v\n", err)
			os.Exit(1)
		}
	}
}

// measure runs one (structure, scheme, threads) cell.
func measure(o options, st harness.Structure, sc smr.Scheme, threads int,
	readFraction float64, delta, localPool int, warnStore bool) float64 {
	mean, _ := measureObserved(o, st, sc, threads, readFraction, delta, localPool, warnStore)
	return mean
}

// measureObserved is measure plus the final repetition's SMR counters,
// for reports that embed them next to the throughput.
func measureObserved(o options, st harness.Structure, sc smr.Scheme, threads int,
	readFraction float64, delta, localPool int, warnStore bool) (float64, smr.Stats) {
	mean, last := measureFull(o, st, sc, threads, readFraction, delta, localPool, warnStore)
	return mean, last.Stats
}

// measureFull returns the mean throughput and the final repetition's full
// Result — counters plus the latency histograms -latsample enables.
func measureFull(o options, st harness.Structure, sc smr.Scheme, threads int,
	readFraction float64, delta, localPool int, warnStore bool) (float64, harness.Result) {
	mk := func() smr.Set {
		set, err := harness.Build(harness.BuildConfig{
			Structure: st, Scheme: sc, Threads: threads,
			Delta: delta, LocalPool: localPool, WarningByStore: warnStore,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if probe != nil {
			probe.observe(set)
		}
		return set
	}
	w := harness.WorkloadFor(st, threads, readFraction)
	w.Duration = o.duration
	w.LatencySample = o.latsample
	mean, _, last := harness.RepeatFull(mk, w, o.reps)
	return mean, last
}

// figureSweep renders the Figure 1/4/5/6/7/8 family: per structure, a
// threads × schemes table of ratios (or Mops when absolute). Every cell is
// also recorded — with both Mops and ratio, regardless of which the table
// printed — into the returned Figure for the -json report.
func figureSweep(o options, name, title string, readFraction float64, absolute bool, capThreads int) Figure {
	fig := Figure{Name: name, Title: title, ReadFraction: readFraction}
	fmt.Printf("== %s ==\n", title)
	for _, st := range harness.Structures {
		schemes := []smr.Scheme{smr.OA, smr.HP, smr.EBR}
		if st.Supports(smr.Anchors) {
			schemes = append(schemes, smr.Anchors)
		}
		sr := StructureResult{Structure: string(st)}
		fmt.Printf("\n-- %s --\n", st)
		fmt.Printf("%8s %10s", "threads", "NoRecl")
		for _, sc := range schemes {
			fmt.Printf(" %10s", sc)
		}
		fmt.Println()
		for _, n := range o.threads {
			if n > capThreads {
				continue
			}
			base, baseRes := measureFull(o, st, smr.NoRecl, n, readFraction, o.delta, 126, false)
			row := Row{
				Threads: n, NoReclMops: base,
				NoReclCounters: countersFrom(baseRes.Stats),
				NoReclLatency:  latencyFrom(baseRes.Latency),
			}
			fmt.Printf("%8d %10.3f", n, base)
			for _, sc := range schemes {
				v, res := measureFull(o, st, sc, n, readFraction, o.delta, 126, false)
				ratio := 0.0
				if base > 0 {
					ratio = v / base
				}
				row.Schemes = append(row.Schemes, SchemeCell{
					Scheme: sc.String(), Mops: v, RatioVsNoRecl: ratio,
					Counters: countersFrom(res.Stats),
					Latency:  latencyFrom(res.Latency),
				})
				if absolute {
					fmt.Printf(" %10.3f", v)
				} else {
					fmt.Printf(" %10s", harness.FormatRatio(v, base))
				}
			}
			fmt.Println()
			sr.Rows = append(sr.Rows, row)
		}
		if absolute {
			fmt.Println("   (all columns in Mops/s)")
		} else {
			fmt.Println("   (NoRecl column in Mops/s; scheme columns are throughput ratios)")
		}
		fig.Structures = append(fig.Structures, sr)
	}
	fmt.Println()
	return fig
}

// fig2 sweeps the local pool size at 32 threads, phase every ~16,000
// allocations (Figure 2).
func fig2(o options) {
	fmt.Println("== Figure 2: throughput (Mops/s) vs local pool size, 32 threads, δ=16000 ==")
	threads := sweepThreads(o, 32)
	pools := []int{2, 8, 32, 64, 126}
	schemes := []smr.Scheme{smr.OA, smr.HP, smr.EBR}
	for _, st := range []harness.Structure{harness.LinkedList5K, harness.Hash} {
		fmt.Printf("\n-- %s (threads=%d) --\n", st, threads)
		fmt.Printf("%10s", "pool")
		for _, sc := range schemes {
			fmt.Printf(" %10s", sc)
		}
		fmt.Println()
		for _, p := range pools {
			fmt.Printf("%10d", p)
			for _, sc := range schemes {
				v := measure(o, st, sc, threads, 0.8, 16000, p, false)
				fmt.Printf(" %10.3f", v)
			}
			fmt.Println()
		}
	}
	fmt.Println()
}

// fig3 sweeps δ at 32 threads (Figure 3).
func fig3(o options) {
	fmt.Println("== Figure 3: throughput (Mops/s) vs phase frequency δ, 32 threads ==")
	threads := sweepThreads(o, 32)
	deltas := []int{8000, 12000, 16000, 24000, 32000}
	schemes := []smr.Scheme{smr.OA, smr.HP, smr.EBR}
	for _, st := range []harness.Structure{harness.LinkedList5K, harness.Hash} {
		fmt.Printf("\n-- %s (threads=%d) --\n", st, threads)
		fmt.Printf("%10s", "delta")
		for _, sc := range schemes {
			fmt.Printf(" %10s", sc)
		}
		fmt.Println()
		for _, d := range deltas {
			fmt.Printf("%10d", d)
			for _, sc := range schemes {
				v := measure(o, st, sc, threads, 0.8, d, 126, false)
				fmt.Printf(" %10.3f", v)
			}
			fmt.Println()
		}
	}
	fmt.Println()
}

// sanity reproduces §5's methodology checks: longer runs behave like short
// ones (steady state).
func sanity(o options) {
	fmt.Println("== Sanity: steady state (longer run ≈ short run), LinkedList5K/NoRecl ==")
	threads := sweepThreads(o, 8)
	short := o
	long := o
	long.duration = 5 * o.duration
	a := measure(short, harness.LinkedList5K, smr.NoRecl, threads, 0.8, o.delta, 126, false)
	b := measure(long, harness.LinkedList5K, smr.NoRecl, threads, 0.8, o.delta, 126, false)
	fmt.Printf("  duration %v: %.3f Mops/s\n  duration %v: %.3f Mops/s\n  ratio %.2f (expect ≈ 1)\n\n",
		o.duration, a, 5*o.duration, b, b/a)
}

// ablation measures the Appendix E design choices this repository exposes:
// setting warning bits by CAS (once per phase) vs by plain store, and
// batched block transfer vs near-unbatched.
func ablation(o options) {
	threads := sweepThreads(o, 32)
	fmt.Printf("== Ablation (threads=%d): Appendix E warning-bit protocol ==\n", threads)
	for _, st := range []harness.Structure{harness.LinkedList128, harness.Hash} {
		cas := measure(o, st, smr.OA, threads, 0.8, 16000, 126, false)
		store := measure(o, st, smr.OA, threads, 0.8, 16000, 126, true)
		fmt.Printf("  %-14s warning-by-CAS %.3f Mops/s, warning-by-store %.3f Mops/s (ratio %.2f)\n",
			st, cas, store, store/cas)
	}
	fmt.Println("\n== Ablation: block batching (local pool 126 vs 2) ==")
	for _, st := range []harness.Structure{harness.LinkedList128, harness.Hash} {
		big := measure(o, st, smr.OA, threads, 0.8, 16000, 126, false)
		tiny := measure(o, st, smr.OA, threads, 0.8, 16000, 2, false)
		fmt.Printf("  %-14s pool=126 %.3f Mops/s, pool=2 %.3f Mops/s (ratio %.2f)\n",
			st, big, tiny, tiny/big)
	}
	fmt.Println()
}

// sweepThreads picks the figure's canonical thread count, bounded by the
// sweep the user asked for.
func sweepThreads(o options, want int) int {
	best := o.threads[0]
	for _, n := range o.threads {
		if n <= want && n > best {
			best = n
		}
	}
	return best
}
