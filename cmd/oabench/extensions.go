package main

import (
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/smr"
)

// extension experiments beyond the paper's figures. Registered from main's
// experiment switch; see EXPERIMENTS.md "Extensions".

// anchorsK sweeps the anchors scheme's K (the paper fixes K = 1000 "for
// best performance"; this shows the tradeoff it bought).
func anchorsK(o options) {
	threads := sweepThreads(o, 32)
	fmt.Printf("== Extension: anchors K sweep (threads=%d, δ=16000) ==\n", threads)
	for _, st := range []harness.Structure{harness.LinkedList5K, harness.LinkedList128} {
		fmt.Printf("\n-- %s --\n%10s %10s\n", st, "K", "Mops/s")
		for _, k := range []int{10, 100, 1000, 10000} {
			mk := func() smr.Set {
				set, err := harness.Build(harness.BuildConfig{
					Structure: st, Scheme: smr.Anchors, Threads: threads,
					Delta: 16000, AnchorsK: k,
				})
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				return set
			}
			w := harness.WorkloadFor(st, threads, 0.8)
			w.Duration = o.duration
			mean, _ := harness.Repeat(mk, w, o.reps)
			fmt.Printf("%10d %10.3f\n", k, mean)
		}
	}
	fmt.Println()
}

// space reports the unreclaimed-slot backlog each scheme carries at the
// end of a run, across δ — the space half of the space/time tradeoff the
// paper's Figure 3 shows only the time half of.
func space(o options) {
	threads := sweepThreads(o, 32)
	fmt.Printf("== Extension: unreclaimed retired slots after a run (threads=%d, Hash) ==\n", threads)
	fmt.Printf("%10s %10s %10s %10s\n", "delta", "OA", "HP", "EBR")
	for _, d := range []int{8000, 16000, 32000} {
		fmt.Printf("%10d", d)
		for _, sc := range []smr.Scheme{smr.OA, smr.HP, smr.EBR} {
			set, err := harness.Build(harness.BuildConfig{
				Structure: harness.Hash, Scheme: sc, Threads: threads, Delta: d,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			w := harness.WorkloadFor(harness.Hash, threads, 0.8)
			w.Duration = o.duration
			res := harness.Run(set, w)
			fmt.Printf(" %10d", res.Stats.Unreclaimed())
		}
		fmt.Println()
	}
	fmt.Println()
}

// zipf runs the hash benchmark under a hot-key (Zipfian) distribution —
// an extension workload: contention concentrates on few keys, which
// stresses the write barriers rather than the traversals.
func zipf(o options) {
	threads := sweepThreads(o, 32)
	fmt.Printf("== Extension: Zipfian hot keys (s=1.2, Hash, threads=%d) ==\n", threads)
	fmt.Printf("%10s %10s", "dist", "NoRecl")
	schemes := []smr.Scheme{smr.OA, smr.HP, smr.EBR}
	for _, sc := range schemes {
		fmt.Printf(" %10s", sc)
	}
	fmt.Println()
	for _, zs := range []float64{0, 1.2} {
		name := "uniform"
		if zs > 0 {
			name = "zipf"
		}
		run := func(sc smr.Scheme) float64 {
			mk := func() smr.Set {
				set, err := harness.Build(harness.BuildConfig{
					Structure: harness.Hash, Scheme: sc, Threads: threads, Delta: o.delta,
				})
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				return set
			}
			w := harness.WorkloadFor(harness.Hash, threads, 0.8)
			w.Duration = o.duration
			w.ZipfS = zs
			mean, _ := harness.Repeat(mk, w, o.reps)
			return mean
		}
		base := run(smr.NoRecl)
		fmt.Printf("%10s %10.3f", name, base)
		for _, sc := range schemes {
			fmt.Printf(" %10s", harness.FormatRatio(run(sc), base))
		}
		fmt.Println()
	}
	fmt.Println()
}

// pauses prints the OA reclamation pause histogram for one configuration
// (the latency view throughput plots hide).
func pauses(o options) {
	threads := sweepThreads(o, 32)
	fmt.Printf("== Extension: OA reclamation pauses (Hash, threads=%d, δ=%d) ==\n", threads, o.delta)
	set, err := harness.Build(harness.BuildConfig{
		Structure: harness.Hash, Scheme: smr.OA, Threads: threads, Delta: o.delta,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w := harness.WorkloadFor(harness.Hash, threads, 0.8)
	w.Duration = 2 * o.duration
	res := harness.Run(set, w)
	type pauseReporter interface {
		PauseReport() string
	}
	if pr, ok := set.(pauseReporter); ok {
		fmt.Printf("  throughput %.3f Mops/s\n  pauses: %s\n\n", res.Mops(), pr.PauseReport())
	} else {
		fmt.Println("  (structure does not expose pause histograms)")
	}
}
