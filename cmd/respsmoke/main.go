// Command respsmoke is the RESP interop smoke test wired into
// `make resp-smoke`: it builds oaserver, serves the RESP2 listener next
// to the binary one, and drives it with the in-repo RESP client the way
// redis-cli and redis-benchmark would:
//
//   - GET/SET/DEL/EXISTS/PING/ECHO/INFO round-trips, including binary
//     and empty values and the CAS extension
//   - a deep SET+GET pipeline answered fully and in order
//   - protocol errors (-ERR) for arity and over-long values without
//     losing the connection
//   - -BUSY admission control surfaced as a typed error, never a hang
//   - clean SIGTERM exit afterwards with requests_read == responses_sent
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "respsmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("respsmoke: PASS")
}

func run() error {
	tmp, err := os.MkdirTemp("", "respsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	serverBin := filepath.Join(tmp, "oaserver")
	build := exec.Command("go", "build", "-o", serverBin, "./cmd/oaserver")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building oaserver: %w", err)
	}

	binAddr, err := freeAddr()
	if err != nil {
		return err
	}
	respAddr, err := freeAddr()
	if err != nil {
		return err
	}
	var serverOut, serverErr bytes.Buffer
	srv := exec.Command(serverBin,
		"-addr", binAddr,
		"-resp", respAddr,
		"-shards", "2",
		"-threads", "8",
		"-capacity", strconv.Itoa(1<<18))
	srv.Stdout = &serverOut
	srv.Stderr = &serverErr
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Process.Kill()
	if err := waitListening(respAddr, 10*time.Second); err != nil {
		return fmt.Errorf("RESP listener never came up: %w (stderr:\n%s)", err, serverErr.String())
	}

	c, err := server.DialRESP(respAddr)
	if err != nil {
		return err
	}

	// Command round-trips.
	if v, err := c.Do("PING"); err != nil || string(v.Str) != "PONG" {
		return fmt.Errorf("PING = %q (%v)", v.Str, err)
	}
	if v, err := c.Do("SET", "smoke", "ok!"); err != nil || string(v.Str) != "OK" {
		return fmt.Errorf("SET = %q (%v)", v.Str, err)
	}
	if v, err := c.Do("GET", "smoke"); err != nil || string(v.Str) != "ok!" {
		return fmt.Errorf("GET = %q (%v)", v.Str, err)
	}
	if v, err := c.Do("SET", "bin", "\x00\xff\r\n!"); err != nil || string(v.Str) != "OK" {
		return fmt.Errorf("binary SET = %q (%v)", v.Str, err)
	}
	if v, err := c.Do("GET", "bin"); err != nil || string(v.Str) != "\x00\xff\r\n!" {
		return fmt.Errorf("binary GET = %q (%v)", v.Str, err)
	}
	if v, err := c.Do("CAS", "smoke", "ok!", "swap"); err != nil || v.Int != 1 {
		return fmt.Errorf("CAS = %+v (%v)", v, err)
	}
	if v, err := c.Do("DEL", "smoke", "bin", "absent"); err != nil || v.Int != 2 {
		return fmt.Errorf("DEL = %+v (%v)", v, err)
	}
	if v, err := c.Do("EXISTS", "smoke"); err != nil || v.Int != 0 {
		return fmt.Errorf("EXISTS after DEL = %+v (%v)", v, err)
	}
	if v, err := c.Do("INFO"); err != nil || !bytes.Contains(v.Str, []byte("oa_server:1")) {
		return fmt.Errorf("INFO = %q (%v)", v.Str, err)
	}

	// Typed errors leave the connection usable.
	if v, err := c.Do("GET"); err != nil || !v.IsError() {
		return fmt.Errorf("arity error = %+v (%v)", v, err)
	}
	if v, err := c.Do("SET", "k", "way-too-long-for-a-word"); err != nil || !v.IsError() {
		return fmt.Errorf("over-long value = %+v (%v)", v, err)
	}
	if v, err := c.Do("PING"); err != nil || string(v.Str) != "PONG" {
		return fmt.Errorf("connection dead after typed errors: %q (%v)", v.Str, err)
	}

	// Deep pipeline, answered in order.
	const pipeline = 2000
	for i := 0; i < pipeline; i++ {
		k := "p:" + strconv.Itoa(i)
		c.Send("SET", k, strconv.Itoa(i))
		c.Send("GET", k)
	}
	if err := c.Flush(); err != nil {
		return err
	}
	for i := 0; i < pipeline; i++ {
		if v, err := c.Recv(); err != nil || string(v.Str) != "OK" {
			return fmt.Errorf("pipelined SET %d = %+v (%v)", i, v, err)
		}
		if v, err := c.Recv(); err != nil || string(v.Str) != strconv.Itoa(i) {
			return fmt.Errorf("pipelined GET %d = %q (%v): out of order", i, v.Str, err)
		}
	}
	c.Close()

	// SIGTERM: clean exit, balanced request/response ledger.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := srv.Wait(); err != nil {
		return fmt.Errorf("server exit after SIGTERM: %w (stderr:\n%s)", err, serverErr.String())
	}
	var final struct {
		Server struct {
			RequestsRead  uint64   `json:"requests_read"`
			ResponsesSent uint64   `json:"responses_sent"`
			ForceClosed   uint64   `json:"force_closed"`
			Shards        int      `json:"shards"`
			ShardOps      []uint64 `json:"shard_ops"`
		} `json:"server"`
	}
	if err := json.Unmarshal(serverOut.Bytes(), &final); err != nil {
		return fmt.Errorf("final stats line does not parse: %w (stdout: %q)", err, serverOut.String())
	}
	f := final.Server
	if f.ForceClosed != 0 {
		return fmt.Errorf("%d connections force-closed (client closed before SIGTERM)", f.ForceClosed)
	}
	if f.RequestsRead == 0 || f.RequestsRead != f.ResponsesSent {
		return fmt.Errorf("requests_read=%d responses_sent=%d", f.RequestsRead, f.ResponsesSent)
	}
	var spread int
	for _, n := range f.ShardOps {
		if n > 0 {
			spread++
		}
	}
	if f.Shards != 2 || spread != 2 {
		return fmt.Errorf("shard traffic split = %v over %d shards, want both active", f.ShardOps, f.Shards)
	}
	fmt.Printf("respsmoke: %d RESP requests served over %d shards (ops %v), drain clean\n",
		f.RequestsRead, f.Shards, f.ShardOps)
	return nil
}

func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	defer l.Close()
	return l.Addr().String(), nil
}

func waitListening(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			c.Close()
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("timeout waiting for %s", addr)
}
