// Command servesmoke is the end-to-end serving smoke test wired into
// `make serve-smoke`: it builds oaserver and oaload, serves a 32-slot
// registry in the default batched mode, drives it with 64 pipelined
// connections churning through reconnects, then SIGTERMs the server
// mid-setup of the next burst and checks the full drain contract:
//
//   - oaload sustains >= 100k pipelined ops/s with zero dropped responses
//   - the server exits 0 with a final JSON stats line where no connection
//     was force-closed and every request read got its response
//     (requests_read == responses_sent: nothing in flight was dropped)
//   - the batched lease economy held: session grants equal the shard
//     count (executors hold the only leases — connections never lease,
//     no matter how many churn), everything flowed through the rings
//     (exec_batched_ops > 0), and no lease outlives the drain
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"syscall"
	"time"
)

const (
	slots    = 32
	conns    = 64
	minRate  = 100_000 // ops/s floor from the acceptance criteria
	loadTime = 2 * time.Second
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke: PASS")
}

func run() error {
	tmp, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	serverBin := filepath.Join(tmp, "oaserver")
	loadBin := filepath.Join(tmp, "oaload")
	for bin, pkg := range map[string]string{serverBin: "./cmd/oaserver", loadBin: "./cmd/oaload"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("building %s: %w", pkg, err)
		}
	}

	addr, err := freeAddr()
	if err != nil {
		return err
	}
	var serverOut, serverErr bytes.Buffer
	// -shards 1 pins the single-instance baseline this smoke's floors were
	// set against (shard scaling has its own gate in cmd/shardsmoke).
	srv := exec.Command(serverBin,
		"-addr", addr,
		"-shards", "1",
		"-threads", strconv.Itoa(slots),
		"-capacity", strconv.Itoa(1<<20))
	srv.Stdout = &serverOut
	srv.Stderr = &serverErr
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Process.Kill()
	if err := waitListening(addr, 10*time.Second); err != nil {
		return fmt.Errorf("server never listened: %w (stderr:\n%s)", err, serverErr.String())
	}

	// Burst 1: throughput + lease recycling under connection churn.
	loadOut, err := exec.Command(loadBin,
		"-addr", addr,
		"-conns", strconv.Itoa(conns),
		"-duration", loadTime.String(),
		"-burst", "2000").CombinedOutput()
	fmt.Print(string(loadOut))
	if err != nil {
		return fmt.Errorf("oaload: %w", err)
	}
	stats, err := parseLoad(string(loadOut))
	if err != nil {
		return err
	}
	if stats.rate < minRate {
		return fmt.Errorf("throughput %.0f ops/s below the %d floor", stats.rate, minRate)
	}
	if stats.dropped != 0 {
		return fmt.Errorf("%d dropped responses under load", stats.dropped)
	}

	// Burst 2 in the background, then SIGTERM mid-load: the drain must
	// resolve every in-flight request before the server exits.
	drainLoad := exec.Command(loadBin,
		"-addr", addr,
		"-conns", strconv.Itoa(conns),
		"-duration", "30s", // cut short by the drain
		"-burst", "0")
	var drainOut bytes.Buffer
	drainLoad.Stdout = &drainOut
	drainLoad.Stderr = &drainOut
	if err := drainLoad.Start(); err != nil {
		return err
	}
	time.Sleep(300 * time.Millisecond) // let the pipelines fill
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := srv.Wait(); err != nil {
		return fmt.Errorf("server exit after SIGTERM: %w (stderr:\n%s)", err, serverErr.String())
	}
	if err := drainLoad.Wait(); err != nil {
		return fmt.Errorf("oaload during drain: %w (output:\n%s)", err, drainOut.String())
	}
	fmt.Print(drainOut.String())
	drainStats, err := parseLoad(drainOut.String())
	if err != nil {
		return err
	}
	if drainStats.dropped != 0 {
		return fmt.Errorf("%d responses dropped during drain", drainStats.dropped)
	}

	// Final server stats line: clean drain, no force-closes, and the
	// batched lease economy — one executor lease per shard, full stop.
	var final struct {
		Server struct {
			RequestsRead  uint64 `json:"requests_read"`
			ResponsesSent uint64 `json:"responses_sent"`
			ForceClosed   uint64 `json:"force_closed"`
			SessionsCap   int    `json:"sessions_cap"`
			SessionsInUse int    `json:"sessions_leased"`
			SessionGrants uint64 `json:"session_grants"`
			GoAways       uint64 `json:"goaways"`
			ExecMode      string `json:"exec_mode"`
			Shards        int    `json:"shards"`
			BatchedOps    uint64 `json:"exec_batched_ops"`
		} `json:"server"`
	}
	if err := json.Unmarshal(serverOut.Bytes(), &final); err != nil {
		return fmt.Errorf("final stats line does not parse: %w (stdout: %q)", err, serverOut.String())
	}
	f := final.Server
	if f.ForceClosed != 0 {
		return fmt.Errorf("%d connections force-closed at drain timeout", f.ForceClosed)
	}
	if f.RequestsRead != f.ResponsesSent {
		return fmt.Errorf("requests_read=%d != responses_sent=%d: server dropped in-flight work",
			f.RequestsRead, f.ResponsesSent)
	}
	if f.SessionsCap != slots {
		return fmt.Errorf("sessions_cap=%d, want %d", f.SessionsCap, slots)
	}
	if f.ExecMode != "batched" {
		return fmt.Errorf("exec_mode=%q, want batched (the default)", f.ExecMode)
	}
	// The whole point of batched execution: 64 churning connections, yet
	// the only session grants ever made are the executors' — one per
	// shard — and none survives the drain.
	if f.SessionGrants != uint64(f.Shards) {
		return fmt.Errorf("session_grants=%d over %d shards: connections leased sessions in batched mode",
			f.SessionGrants, f.Shards)
	}
	if f.SessionsInUse != 0 {
		return fmt.Errorf("sessions_leased=%d after drain, want 0", f.SessionsInUse)
	}
	if f.BatchedOps == 0 {
		return errors.New("exec_batched_ops=0: the load bypassed the rings")
	}
	if f.GoAways == 0 {
		return errors.New("no GOAWAY frames sent during drain")
	}
	fmt.Printf("servesmoke: %.0f ops/s over %d conns on %d slots, %d lease grants for %d shards, drain clean (%d reqs = %d resps)\n",
		stats.rate, conns, slots, f.SessionGrants, f.Shards, f.RequestsRead, f.ResponsesSent)
	return nil
}

type loadStats struct {
	ops, dropped uint64
	rate         float64
}

var loadLine = regexp.MustCompile(
	`oaload: ops=(\d+) busy=\d+ dropped=(\d+) errs=\d+ elapsed=\S+ ops_per_sec=(\d+)`)

func parseLoad(out string) (loadStats, error) {
	m := loadLine.FindStringSubmatch(out)
	if m == nil {
		return loadStats{}, fmt.Errorf("no oaload summary line in output:\n%s", out)
	}
	ops, _ := strconv.ParseUint(m[1], 10, 64)
	dropped, _ := strconv.ParseUint(m[2], 10, 64)
	rate, _ := strconv.ParseFloat(m[3], 64)
	return loadStats{ops: ops, dropped: dropped, rate: rate}, nil
}

func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	defer l.Close()
	return l.Addr().String(), nil
}

func waitListening(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			c.Close()
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return errors.New("timeout")
}
