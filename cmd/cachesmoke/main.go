// Command cachesmoke is the TTL/LRU cache smoke test wired into
// `make cache-smoke`: it builds oaserver, serves the RESP listener with
// the cache layer enabled (-cache -ttl -max-entries -sweep-interval),
// and asserts the cache contract end to end over the wire:
//
//   - SETEX/EXPIRE/TTL semantics, including the default TTL applied by
//     plain SET and lazy expiry observed by GET after a real deadline
//   - background sweeping: keys that are never touched again still get
//     reaped (Sweeps and Expired advance in the final stats)
//   - eviction instead of OOM: thousands of SETs past the LRU watermark
//     all answer +OK — capacity pressure evicts, it never errors
//   - clean SIGTERM drain with a balanced request/response ledger and
//     the cache block present in the final stats dump
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cachesmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("cachesmoke: PASS")
}

const (
	capacity   = 1 << 12 // total node budget across shards
	maxEntries = 1024    // LRU watermark (512 per shard at 2 shards)
)

func run() error {
	tmp, err := os.MkdirTemp("", "cachesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	serverBin := filepath.Join(tmp, "oaserver")
	build := exec.Command("go", "build", "-o", serverBin, "./cmd/oaserver")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building oaserver: %w", err)
	}

	binAddr, err := freeAddr()
	if err != nil {
		return err
	}
	respAddr, err := freeAddr()
	if err != nil {
		return err
	}
	var serverOut, serverErr bytes.Buffer
	srv := exec.Command(serverBin,
		"-addr", binAddr,
		"-resp", respAddr,
		"-shards", "2",
		"-threads", "8",
		"-capacity", strconv.Itoa(capacity),
		"-cache",
		"-ttl", "30s", // default TTL: never expires inside this test
		"-max-entries", strconv.Itoa(maxEntries),
		"-sweep-interval", "100ms")
	srv.Stdout = &serverOut
	srv.Stderr = &serverErr
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Process.Kill()
	if err := waitListening(respAddr, 10*time.Second); err != nil {
		return fmt.Errorf("RESP listener never came up: %w (stderr:\n%s)", err, serverErr.String())
	}

	c, err := server.DialRESP(respAddr)
	if err != nil {
		return err
	}

	// TTL semantics. The -ttl default applies to plain SET; SETEX and
	// EXPIRE arm per-key deadlines that TTL reads back.
	if v, err := c.Do("SET", "warm", "v"); err != nil || string(v.Str) != "OK" {
		return fmt.Errorf("SET = %q (%v)", v.Str, err)
	}
	if v, err := c.Do("TTL", "warm"); err != nil || v.Int <= 0 || v.Int > 30 {
		return fmt.Errorf("TTL of default-TTL key = %d, want (0, 30] (%v)", v.Int, err)
	}
	if v, err := c.Do("SETEX", "brief", "1", "v"); err != nil || string(v.Str) != "OK" {
		return fmt.Errorf("SETEX = %q (%v)", v.Str, err)
	}
	if v, err := c.Do("TTL", "brief"); err != nil || v.Int != 1 {
		return fmt.Errorf("TTL brief = %d, want 1 (%v)", v.Int, err)
	}
	if v, err := c.Do("EXPIRE", "warm", "2"); err != nil || v.Int != 1 {
		return fmt.Errorf("EXPIRE warm = %d, want 1 (%v)", v.Int, err)
	}
	if v, err := c.Do("TTL", "warm"); err != nil || v.Int != 2 {
		return fmt.Errorf("TTL warm after EXPIRE = %d, want 2 (%v)", v.Int, err)
	}
	// Keys for the sweeper: armed, then never touched again. Lazy expiry
	// can't reap these — only the background sweep can.
	for i := 0; i < 32; i++ {
		if v, err := c.Do("SETEX", "swept:"+strconv.Itoa(i), "1", "v"); err != nil || string(v.Str) != "OK" {
			return fmt.Errorf("SETEX swept:%d = %q (%v)", i, v.Str, err)
		}
	}

	// Past brief's 1s deadline (with slack for a noisy host): lazy expiry
	// answers nil/-2 on the touched key.
	time.Sleep(1300 * time.Millisecond)
	if v, err := c.Do("GET", "brief"); err != nil || !v.Nil {
		return fmt.Errorf("GET brief past deadline = %+v, want nil (%v)", v, err)
	}
	if v, err := c.Do("TTL", "brief"); err != nil || v.Int != -2 {
		return fmt.Errorf("TTL brief past deadline = %d, want -2 (%v)", v.Int, err)
	}
	if v, err := c.Do("EXISTS", "brief"); err != nil || v.Int != 0 {
		return fmt.Errorf("EXISTS brief past deadline = %d (%v)", v.Int, err)
	}

	// Eviction instead of OOM: push far past both the LRU watermark and
	// the node budget. Every single SET must answer +OK — the cache
	// relieves pressure by evicting, never by failing the write.
	const writes = 5000
	for base := 0; base < writes; base += 500 {
		for i := base; i < base+500; i++ {
			c.Send("SET", "fill:"+strconv.Itoa(i), "v")
		}
		if err := c.Flush(); err != nil {
			return err
		}
		for i := base; i < base+500; i++ {
			v, err := c.Recv()
			if err != nil {
				return fmt.Errorf("SET fill:%d: %v", i, err)
			}
			if string(v.Str) != "OK" {
				return fmt.Errorf("SET fill:%d = %q, want OK (eviction must absorb capacity pressure)", i, v.Str)
			}
		}
	}
	// The newest keys survived the churn.
	if v, err := c.Do("GET", "fill:"+strconv.Itoa(writes-1)); err != nil || string(v.Str) != "v" {
		return fmt.Errorf("GET newest fill key = %+v (%v)", v, err)
	}
	c.Close()

	// SIGTERM: clean drain, then the final stats dump carries the cache
	// ledger the smoke asserts on.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := srv.Wait(); err != nil {
		return fmt.Errorf("server exit after SIGTERM: %w (stderr:\n%s)", err, serverErr.String())
	}
	var final struct {
		Server struct {
			RequestsRead  uint64 `json:"requests_read"`
			ResponsesSent uint64 `json:"responses_sent"`
			ForceClosed   uint64 `json:"force_closed"`
			Capacity      uint64 `json:"capacity"`
		} `json:"server"`
		Cache *struct {
			Live    int64  `json:"live"`
			Expired uint64 `json:"expired"`
			Evicted uint64 `json:"evicted"`
			Sweeps  uint64 `json:"sweeps"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(serverOut.Bytes(), &final); err != nil {
		return fmt.Errorf("final stats line does not parse: %w (stdout: %q)", err, serverOut.String())
	}
	f := final.Server
	if f.ForceClosed != 0 {
		return fmt.Errorf("%d connections force-closed during drain", f.ForceClosed)
	}
	if f.RequestsRead == 0 || f.RequestsRead != f.ResponsesSent {
		return fmt.Errorf("requests_read=%d responses_sent=%d", f.RequestsRead, f.ResponsesSent)
	}
	if f.Capacity != 0 {
		return fmt.Errorf("%d requests answered CAPACITY — eviction should have absorbed the pressure", f.Capacity)
	}
	cs := final.Cache
	if cs == nil {
		return fmt.Errorf("no cache block in final stats (stdout: %q)", serverOut.String())
	}
	// 33 one-second keys expired (brief + 32 swept); at least the 32
	// untouched ones prove the sweeper ran, not just lazy reaping.
	if cs.Expired < 33 {
		return fmt.Errorf("expired = %d, want >= 33 (%+v)", cs.Expired, *cs)
	}
	if cs.Sweeps == 0 {
		return fmt.Errorf("background sweeper never ran (%+v)", *cs)
	}
	if cs.Evicted == 0 {
		return fmt.Errorf("no evictions after %d writes into a %d watermark (%+v)", writes, maxEntries, *cs)
	}
	// Live stays near the watermark: sampling slack, but nowhere near the
	// raw write count.
	if cs.Live > maxEntries+maxEntries/2 {
		return fmt.Errorf("live = %d, want near watermark %d (%+v)", cs.Live, maxEntries, *cs)
	}
	fmt.Printf("cachesmoke: %d requests; cache live=%d expired=%d evicted=%d sweeps=%d, drain clean\n",
		f.RequestsRead, cs.Live, cs.Expired, cs.Evicted, cs.Sweeps)
	return nil
}

func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	defer l.Close()
	return l.Addr().String(), nil
}

func waitListening(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			c.Close()
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("timeout waiting for %s", addr)
}
