// Command obsprobe is the observability smoke test wired into `make
// obs-smoke`: it builds oastress, starts a soak with the HTTP endpoint and
// snapshot reporter enabled, scrapes /metrics, /stats.json and /trace,
// validates all three formats (including the metric names the monitoring
// docs promise, the per-op latency histogram families, and the event
// kinds the trace timeline must carry), then interrupts the process and
// checks the graceful-shutdown contract (verification still runs, final
// stats dump, exit status 130).
//
// A second phase probes the server's request observability: it builds
// oaserver, starts it with -debug and -slow-threshold 1ns (so every
// request lands in the slow-request ring), drives a short mixed workload
// over the binary protocol, then requires the per-(command, shard)
// latency histogram families and request counters on /metrics, a
// non-empty /debug/slowlog whose entries carry the per-stage breakdown,
// and the flight-recorder surfaces oaserver now runs by default: the
// oa_health_* metric families, a /healthz rule catalog, and a
// /debug/history series catalog with fetchable frames.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
)

// requiredMetrics are the names README/DESIGN promise on /metrics.
var requiredMetrics = []string{
	"oa_smr_restarts_total",
	"oa_smr_drain_passes_total",
	"oa_retired_backlog_slots",
	"oa_phase_pause_seconds_bucket",
	"oa_pool_shards",
	"oa_pool_steals_total",
	"oa_ready_shard_blocks",
	"smr_unreclaimed_slots",
	"stress_ops_total",
	"trace_events_total",
	"stress_contains_latency_seconds_bucket",
	"stress_insert_latency_seconds_bucket",
	"stress_delete_latency_seconds_bucket",
}

// requiredServerMetrics are the request-observability families oaserver
// must export once traffic has flowed (DESIGN.md §9).
var requiredServerMetrics = []string{
	"oa_server_requests_total",
	"oa_server_requests_read_total",
	"oa_server_responses_sent_total",
	"oa_server_slow_requests_total",
	"oa_server_ring_depth",
	"oa_server_ring_full_total",
	"oa_server_exec_batches_total",
	"oa_server_exec_batched_ops_total",
	"oa_server_latency_get_seconds_bucket",
	"oa_server_latency_put_seconds_bucket",
	"oa_server_latency_del_seconds_bucket",
	"oa_server_latency_cas_seconds_bucket",
	"oa_server_ring_cap",
	"oa_health_state",
	"oa_health_transitions_total",
	"flight_ticks_total",
}

// sampleLine matches one Prometheus text-format sample.
var sampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [-+]?([0-9.eE+-]+|Inf|NaN)$`)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "obsprobe: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("obsprobe: PASS")
}

func run() error {
	tmp, err := os.MkdirTemp("", "obsprobe")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "oastress")
	build := exec.Command("go", "build", "-o", bin, "./cmd/oastress")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building oastress: %w", err)
	}

	addr, err := freeAddr()
	if err != nil {
		return err
	}
	var out bytes.Buffer
	soak := exec.Command(bin,
		"-structure", "Hash", "-scheme", "OA", "-threads", "4",
		"-keys", "256", "-duration", "2m",
		"-http", addr, "-snapshot", "200ms")
	soak.Stdout = &out
	soak.Stderr = &out
	if err := soak.Start(); err != nil {
		return err
	}
	defer soak.Process.Kill()

	base := "http://" + addr
	metrics, err := pollGet(base+"/metrics", 15*time.Second)
	if err != nil {
		return fmt.Errorf("scraping /metrics: %w (output so far:\n%s)", err, out.String())
	}
	if err := checkMetrics(metrics, requiredMetrics); err != nil {
		return fmt.Errorf("/metrics: %w", err)
	}
	fmt.Println("obsprobe: /metrics ok,", len(strings.Split(strings.TrimSpace(metrics), "\n")), "lines")

	statsBody, err := pollGet(base+"/stats.json", 5*time.Second)
	if err != nil {
		return fmt.Errorf("scraping /stats.json: %w", err)
	}
	var doc struct {
		Counters map[string]uint64  `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal([]byte(statsBody), &doc); err != nil {
		return fmt.Errorf("/stats.json does not parse: %w", err)
	}
	if len(doc.Counters) == 0 {
		return errors.New("/stats.json has no counters")
	}
	if _, ok := doc.Counters["oa_smr_restarts_total"]; !ok {
		return errors.New("/stats.json missing oa_smr_restarts_total")
	}
	fmt.Println("obsprobe: /stats.json ok,", len(doc.Counters), "counters,", len(doc.Gauges), "gauges")

	// /trace must serve a Chrome trace_event document whose timeline
	// eventually carries reclamation phase transitions (the soak's δ is
	// crossed many times per second, so retry briefly rather than racing
	// the first phase).
	if err := pollTrace(base+"/trace", 15*time.Second); err != nil {
		return fmt.Errorf("/trace: %w", err)
	}
	jsonl, err := pollGet(base+"/trace?format=jsonl", 5*time.Second)
	if err != nil {
		return fmt.Errorf("/trace?format=jsonl: %w", err)
	}
	for i, line := range strings.Split(strings.TrimSpace(jsonl), "\n") {
		var ev struct {
			TsNs *int64  `json:"ts_ns"`
			Kind *string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil || ev.TsNs == nil || ev.Kind == nil {
			return fmt.Errorf("/trace?format=jsonl line %d invalid (%v): %q", i+1, err, line)
		}
	}

	// Graceful interrupt: verification must still run and the process must
	// exit 130 after dumping final stats.
	if err := soak.Process.Signal(syscall.SIGINT); err != nil {
		return err
	}
	werr := soak.Wait()
	var exitErr *exec.ExitError
	if !errors.As(werr, &exitErr) || exitErr.ExitCode() != 130 {
		return fmt.Errorf("expected exit status 130 after SIGINT, got %v (output:\n%s)", werr, out.String())
	}
	for _, want := range []string{"OK   Hash", "final stats", "snap +"} {
		if !strings.Contains(out.String(), want) {
			return fmt.Errorf("output missing %q after interrupt:\n%s", want, out.String())
		}
	}
	fmt.Println("obsprobe: SIGINT handled — verification ran, stats dumped, exit 130")

	return serverPhase(tmp)
}

// serverPhase drives a short workload against oaserver and validates the
// request-observability surface: the RED metric families on /metrics and
// the slow-request ring on /debug/slowlog (every request qualifies at a
// 1ns threshold).
func serverPhase(tmp string) error {
	bin := filepath.Join(tmp, "oaserver")
	build := exec.Command("go", "build", "-o", bin, "./cmd/oaserver")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building oaserver: %w", err)
	}

	addr, err := freeAddr()
	if err != nil {
		return err
	}
	debugAddr, err := freeAddr()
	if err != nil {
		return err
	}
	var out bytes.Buffer
	srv := exec.Command(bin,
		"-addr", addr, "-debug", debugAddr,
		"-threads", "8", "-capacity", "65536",
		"-slow-threshold", "1ns")
	srv.Stdout = &out
	srv.Stderr = &out
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Process.Kill()

	// Drive one of each data command (plus misses) so every histogram
	// family has samples and the slowlog has entries of several kinds.
	if err := driveServer(addr, 10*time.Second); err != nil {
		return fmt.Errorf("driving oaserver: %w (output:\n%s)", err, out.String())
	}

	base := "http://" + debugAddr
	metrics, err := pollGet(base+"/metrics", 10*time.Second)
	if err != nil {
		return fmt.Errorf("scraping oaserver /metrics: %w (output:\n%s)", err, out.String())
	}
	if err := checkMetrics(metrics, requiredServerMetrics); err != nil {
		return fmt.Errorf("oaserver /metrics: %w", err)
	}
	fmt.Println("obsprobe: oaserver /metrics ok — request counters and per-command latency families present")

	slowBody, err := pollGet(base+"/debug/slowlog", 5*time.Second)
	if err != nil {
		return fmt.Errorf("scraping /debug/slowlog: %w", err)
	}
	var slow struct {
		ThresholdNs int64 `json:"threshold_ns"`
		Total       uint64
		Entries     []struct {
			Op       string           `json:"op"`
			Status   string           `json:"status"`
			ServerNs int64            `json:"server_ns"`
			Stages   map[string]int64 `json:"stages"`
		} `json:"entries"`
	}
	if err := json.Unmarshal([]byte(slowBody), &slow); err != nil {
		return fmt.Errorf("/debug/slowlog does not parse: %w\n%s", err, slowBody)
	}
	if slow.ThresholdNs != 1 {
		return fmt.Errorf("/debug/slowlog threshold_ns = %d, want 1", slow.ThresholdNs)
	}
	if len(slow.Entries) == 0 {
		return fmt.Errorf("/debug/slowlog empty at a 1ns threshold:\n%s", slowBody)
	}
	for i, e := range slow.Entries {
		if e.Op == "" || e.Status == "" || e.ServerNs <= 0 || len(e.Stages) == 0 {
			return fmt.Errorf("/debug/slowlog entry %d incomplete: %+v", i, e)
		}
	}
	fmt.Printf("obsprobe: /debug/slowlog ok, %d entries with per-stage breakdowns\n", len(slow.Entries))

	// The flight recorder runs by default in oaserver, so its surfaces
	// are part of the observability contract: /healthz must report a
	// state with a populated rule catalog, and /debug/history must serve
	// a series catalog plus fetchable frames for a concrete series.
	healthBody, err := pollGet(base+"/healthz", 5*time.Second)
	if err != nil {
		return fmt.Errorf("scraping /healthz: %w", err)
	}
	var health struct {
		State string `json:"state"`
		Rules []struct {
			Name     string `json:"name"`
			Severity string `json:"severity"`
		} `json:"rules"`
	}
	if err := json.Unmarshal([]byte(healthBody), &health); err != nil {
		return fmt.Errorf("/healthz does not parse: %w\n%s", err, healthBody)
	}
	if health.State == "" || len(health.Rules) == 0 {
		return fmt.Errorf("/healthz missing state or rule catalog:\n%s", healthBody)
	}
	ruleNames := map[string]bool{}
	for _, r := range health.Rules {
		ruleNames[r.Name] = true
	}
	for _, want := range []string{"backlog_growth", "ring_saturation", "phase_stalled", "slo_p99_burn"} {
		if !ruleNames[want] {
			return fmt.Errorf("/healthz rule catalog missing %q:\n%s", want, healthBody)
		}
	}
	fmt.Printf("obsprobe: /healthz ok — state %q with %d rules\n", health.State, len(health.Rules))

	histBody, err := pollGet(base+"/debug/history", 5*time.Second)
	if err != nil {
		return fmt.Errorf("scraping /debug/history: %w", err)
	}
	var catalog struct {
		IntervalMs float64  `json:"interval_ms"`
		Catalog    []string `json:"catalog"`
	}
	if err := json.Unmarshal([]byte(histBody), &catalog); err != nil {
		return fmt.Errorf("/debug/history does not parse: %w\n%s", err, histBody)
	}
	if catalog.IntervalMs <= 0 || len(catalog.Catalog) == 0 {
		return fmt.Errorf("/debug/history missing interval or series catalog:\n%s", histBody)
	}
	seriesBody, err := pollGet(base+"/debug/history?series=oa_retired_backlog_slots", 5*time.Second)
	if err != nil {
		return fmt.Errorf("fetching backlog series from /debug/history: %w", err)
	}
	var series struct {
		Frames int                  `json:"frames"`
		TsMs   []float64            `json:"ts_unix_ms"`
		Series map[string][]float64 `json:"series"`
	}
	if err := json.Unmarshal([]byte(seriesBody), &series); err != nil {
		return fmt.Errorf("/debug/history series fetch does not parse: %w\n%s", err, seriesBody)
	}
	vals, ok := series.Series["oa_retired_backlog_slots"]
	if !ok || series.Frames == 0 || len(vals) != series.Frames || len(series.TsMs) != series.Frames {
		return fmt.Errorf("/debug/history series fetch inconsistent (frames=%d):\n%s", series.Frames, seriesBody)
	}
	fmt.Printf("obsprobe: /debug/history ok — %d series cataloged, %d frames for the backlog gauge\n",
		len(catalog.Catalog), series.Frames)
	return nil
}

// driveServer issues a small mixed workload over the binary protocol —
// one of each data command per key so every latency family has samples.
func driveServer(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var c *server.Client
	for {
		var err error
		if c, err = server.Dial(addr, 16); err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("dialing: %w", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer c.Close()
	for k := uint64(1); k <= 32; k++ {
		for _, issue := range []func() (*server.Call, error){
			func() (*server.Call, error) { return c.Put(k, k*3) },
			func() (*server.Call, error) { return c.Get(k) },
			func() (*server.Call, error) { return c.CAS(k, k*3, k*4) },
			func() (*server.Call, error) { return c.Del(k) },
		} {
			ca, err := issue()
			if err != nil {
				return err
			}
			if err := ca.Wait(); err != nil {
				return err
			}
		}
	}
	return nil
}

// freeAddr grabs an ephemeral localhost port. The listener is closed
// before oastress binds it — a harmless race for a smoke test.
func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	defer l.Close()
	return l.Addr().String(), nil
}

// pollGet retries GET until the server answers 200.
func pollGet(url string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusOK {
				return string(body), nil
			}
			last = fmt.Errorf("status %d", resp.StatusCode)
		} else {
			last = err
		}
		time.Sleep(100 * time.Millisecond)
	}
	return "", fmt.Errorf("timed out: %v", last)
}

// pollTrace retries the /trace endpoint until it serves a well-formed
// Chrome trace_event document containing phase-transition events.
func pollTrace(url string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		body, err := pollGet(url, time.Second)
		if err != nil {
			last = err
			continue
		}
		var doc struct {
			TraceEvents []struct {
				Name string  `json:"name"`
				Ph   string  `json:"ph"`
				Ts   float64 `json:"ts"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			return fmt.Errorf("not a chrome trace document: %w", err)
		}
		kinds := map[string]int{}
		for _, e := range doc.TraceEvents {
			if e.Ph != "i" {
				return fmt.Errorf("event %q has phase %q, want instant", e.Name, e.Ph)
			}
			kinds[e.Name]++
		}
		if kinds["phase"] > 0 {
			fmt.Printf("obsprobe: /trace ok, %d events (%d phase transitions)\n",
				len(doc.TraceEvents), kinds["phase"])
			return nil
		}
		last = fmt.Errorf("no phase events yet among %d events", len(doc.TraceEvents))
		time.Sleep(200 * time.Millisecond)
	}
	return fmt.Errorf("timed out: %v", last)
}

// checkMetrics validates the Prometheus text format line by line and the
// presence of the promised metric names.
func checkMetrics(body string, required []string) error {
	seen := map[string]bool{}
	for i, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			return fmt.Errorf("line %d is not a valid sample: %q", i+1, line)
		}
		name := line
		if j := strings.IndexAny(line, "{ "); j >= 0 {
			name = line[:j]
		}
		seen[name] = true
	}
	var missing []string
	for _, want := range required {
		if !seen[want] {
			missing = append(missing, want)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("missing %d required metric families:\n  %s",
			len(missing), strings.Join(missing, "\n  "))
	}
	return nil
}
