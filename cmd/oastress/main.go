// Command oastress is a long-running correctness harness: it hammers a
// chosen (structure, scheme) pair with random operations from many
// goroutines while tracking per-key success counts, then verifies the
// final structure against the only histories a linearizable set allows.
// It exits non-zero on any violation. Use it to soak-test the reclamation
// schemes far beyond what `go test` runs:
//
//	oastress -structure Hash -scheme OA -threads 8 -duration 30s
//	oastress -all -duration 2s
//	oastress -http :8080 -snapshot 1s -duration 5m   # live /metrics + pprof
//	oastress -trace trace.json -duration 10s         # Perfetto-loadable dump
//
// With -http the process serves /metrics (Prometheus text), /stats.json,
// /trace (protocol event timeline) and /debug/pprof/ while soaking; with
// -snapshot it prints a live progress line per interval; with -trace it
// writes the last soak's reclamation event trace in Chrome trace_event
// format on exit. SIGINT/SIGTERM stop the current soak early but still run
// its verification pass, dump the final statistics — per-op latency
// percentiles and traced-event totals included — and exit 130; a second
// signal kills the process.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/ebr"
	"repro/internal/harness"
	"repro/internal/hpscheme"
	"repro/internal/linearize"
	"repro/internal/metrics"
	"repro/internal/norecl"
	"repro/internal/obs"
	"repro/internal/queue"
	"repro/internal/smr"
	"repro/internal/trace"
)

// interrupted closes on the first SIGINT/SIGTERM. activeReg is the metric
// registry of the run currently in flight; the HTTP listener reads it
// through an atomic pointer so -all can swap registries between runs
// without restarting the server.
var (
	interrupted  = make(chan struct{})
	activeReg    atomic.Pointer[obs.Registry]
	snapInterval time.Duration
	poolShards   int    // -shards: OA block-pool shard override, 0 = default
	tracePath    string // -trace: Chrome trace_event dump target, "" = off
)

// wait sleeps for d, returning false early if the process is interrupted.
func wait(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-interrupted:
		return false
	}
}

func isInterrupted() bool {
	select {
	case <-interrupted:
		return true
	default:
		return false
	}
}

type keyCounter struct {
	ins atomic.Int64
	del atomic.Int64
	_   [6]int64 // pad
}

func stress(st harness.Structure, sc smr.Scheme, threads int, d time.Duration, keys int) error {
	set, err := harness.Build(harness.BuildConfig{
		Structure: st, Scheme: sc, Threads: threads, Delta: 16384, Shards: poolShards,
	})
	if err != nil {
		return err
	}
	counters := make([]keyCounter, keys+1)

	// Per-worker counter blocks: ops are published every 256 operations so
	// the HTTP endpoint and the snapshot reporter see live progress.
	ts := obs.NewThreadStats(threads)
	reg := obs.NewRegistry()
	harness.Observe(reg, set)
	reg.ThreadCounters("stress", ts)
	// One shared histogram per operation kind (metrics.Histogram is
	// concurrent); every 8th op per worker is timed, so the percentiles in
	// the final dump come from the soak itself, not a separate run.
	var lat [3]metrics.Histogram
	reg.Histogram("stress_contains_latency_seconds", "sampled Contains latency during the soak", &lat[0])
	reg.Histogram("stress_insert_latency_seconds", "sampled Insert latency during the soak", &lat[1])
	reg.Histogram("stress_delete_latency_seconds", "sampled Delete latency during the soak", &lat[2])
	activeReg.Store(reg)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s := set.Session(id)
			pt := ts.At(id)
			rng := uint64(id)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
			n := uint64(0)
			for {
				if n&0xFF == 0 {
					pt.Store(obs.Ops, n)
					if stop.Load() {
						break
					}
				}
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				k := rng%uint64(keys) + 1
				timed := n&7 == 0
				var t0 time.Time
				if timed {
					t0 = time.Now()
				}
				kind := (rng >> 40) % 3
				switch kind {
				case 0:
					if s.Insert(k) {
						counters[k].ins.Add(1)
					}
				case 1:
					if s.Delete(k) {
						counters[k].del.Add(1)
					}
				default:
					s.Contains(k)
				}
				if timed {
					// kind 0=insert, 1=delete, 2=contains; lat is ordered
					// contains/insert/delete, hence the rotation.
					lat[(kind+1)%3].Observe(time.Since(t0))
				}
				n++
			}
			pt.Store(obs.Ops, n)
		}(id)
	}

	var snapStop chan struct{}
	var snapWG sync.WaitGroup
	if snapInterval > 0 {
		snapStop = make(chan struct{})
		snap := &harness.Snapshotter{W: os.Stdout, Every: snapInterval}
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			snap.Run(snapStop, func() uint64 { return ts.Total(obs.Ops) }, set.Stats)
		}()
	}

	t0 := time.Now()
	wait(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(t0)
	if snapStop != nil {
		close(snapStop)
		snapWG.Wait()
	}

	// Conservation: for every key, successful inserts - successful deletes
	// must be 0 or 1, and must match final membership.
	probe := set.Session(0)
	for k := 1; k <= keys; k++ {
		diff := counters[k].ins.Load() - counters[k].del.Load()
		if diff != 0 && diff != 1 {
			return fmt.Errorf("%s/%v key %d: %d inserts vs %d deletes — impossible history",
				st, sc, k, counters[k].ins.Load(), counters[k].del.Load())
		}
		if got, want := probe.Contains(uint64(k)), diff == 1; got != want {
			return fmt.Errorf("%s/%v key %d: Contains=%v but history says %v",
				st, sc, k, got, want)
		}
	}
	stats := set.Stats()
	fmt.Printf("OK   %-14s %-8v %9.2f Mops/s  recycled=%-9d phases=%-6d restarts=%d\n",
		st, sc, float64(ts.Total(obs.Ops))/elapsed.Seconds()/1e6, stats.Recycled, stats.Phases, stats.Restarts)
	return nil
}

// stressQueue soaks the MS queue: per-producer FIFO order and
// exactly-once consumption, verified on the fly.
func stressQueue(sc smr.Scheme, threads int, d time.Duration) error {
	var q smr.Queue
	cfg := 1 << 16
	switch sc {
	case smr.NoRecl:
		q = queue.NewNoRecl(norecl.Config{MaxThreads: threads, Capacity: cfg})
	case smr.OA:
		q = queue.NewOA(core.Config{MaxThreads: threads, Capacity: cfg})
	case smr.HP:
		q = queue.NewHP(hpscheme.Config{MaxThreads: threads, Capacity: cfg})
	case smr.EBR:
		q = queue.NewEBR(ebr.Config{MaxThreads: threads, Capacity: cfg})
	default:
		return fmt.Errorf("queue does not support %v", sc)
	}
	producers := threads / 2
	if producers == 0 {
		producers = 1
	}
	var stop atomic.Bool
	var enq, deq atomic.Uint64
	errs := make(chan error, threads)
	var wg sync.WaitGroup
	var seen sync.Map // value -> struct{}
	lastPerProducer := make([][]atomic.Int64, threads)
	for c := 0; c < threads; c++ {
		lastPerProducer[c] = make([]atomic.Int64, producers)
		for p := range lastPerProducer[c] {
			lastPerProducer[c][p].Store(-1)
		}
	}
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s := q.QueueSession(id)
			if id < producers {
				for i := uint64(0); !stop.Load(); i++ {
					if enq.Load()-deq.Load() > 1<<14 { // backlog bound
						runtime.Gosched()
						continue
					}
					s.Enqueue(uint64(id)<<40 | i)
					enq.Add(1)
				}
				return
			}
			for !stop.Load() {
				v, ok := s.Dequeue()
				if !ok {
					continue
				}
				deq.Add(1)
				if _, dup := seen.LoadOrStore(v, struct{}{}); dup {
					errs <- fmt.Errorf("queue/%v: value %#x dequeued twice", sc, v)
					return
				}
				p := int(v >> 40)
				i := int64(v & (1<<40 - 1))
				if prev := lastPerProducer[id][p].Load(); i <= prev {
					errs <- fmt.Errorf("queue/%v: producer %d order broken: %d after %d", sc, p, i, prev)
					return
				}
				lastPerProducer[id][p].Store(i)
			}
		}(id)
	}
	t0 := time.Now()
	wait(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(t0)
	select {
	case err := <-errs:
		return err
	default:
	}
	fmt.Printf("OK   %-14s %-8v %9.2f Mops/s  (FIFO + exactly-once verified)\n",
		"Queue", sc, float64(enq.Load()+deq.Load())/elapsed.Seconds()/1e6)
	return nil
}

// stressLinearizable records real concurrent histories through the
// Wing-Gong checker in rounds until the soak time elapses — the strongest
// (and most expensive) oracle, applied continuously.
func stressLinearizable(st harness.Structure, sc smr.Scheme, threads int, d time.Duration) error {
	deadline := time.Now().Add(d)
	rounds := 0
	for time.Now().Before(deadline) && !isInterrupted() {
		set, err := harness.Build(harness.BuildConfig{
			Structure: st, Scheme: sc, Threads: threads, Delta: 4096, Shards: poolShards,
		})
		if err != nil {
			return err
		}
		rec := linearize.NewRecorder(set)
		keyBase := uint64(rounds*64 + 1)
		var wg sync.WaitGroup
		for id := 0; id < threads; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				s := rec.Session(id)
				rng := rand.New(rand.NewSource(int64(rounds*threads + id)))
				for i := 0; i < 4; i++ {
					k := keyBase + uint64(rng.Intn(4))
					switch rng.Intn(3) {
					case 0:
						s.Insert(k)
					case 1:
						s.Delete(k)
					default:
						s.Contains(k)
					}
				}
			}(id)
		}
		wg.Wait()
		if r := linearize.Check(rec.History()); !r.Ok {
			return fmt.Errorf("%s/%v round %d: non-linearizable history at key %d: %v",
				st, sc, rounds, r.Key, r.Witness)
		}
		rounds++
	}
	fmt.Printf("OK   %-14s %-8v %9d recorded rounds linearizable\n", st, sc, rounds)
	return nil
}

func main() {
	var (
		structure = flag.String("structure", "Hash", "LinkedList5K | LinkedList128 | Hash | SkipList | Queue")
		scheme    = flag.String("scheme", "OA", "NoRecl | OA | HP | EBR | Anchors")
		threads   = flag.Int("threads", 8, "worker goroutines")
		duration  = flag.Duration("duration", 5*time.Second, "per-configuration soak time")
		keys      = flag.Int("keys", 512, "key-space size (small = high contention)")
		all       = flag.Bool("all", false, "soak every supported (structure, scheme) pair")
		lin       = flag.Bool("linearize", false, "record histories and run the Wing-Gong checker instead of conservation counting")
		httpAddr  = flag.String("http", "", "serve /metrics, /stats.json and /debug/pprof/ on this address (e.g. :8080)")
		snapshot  = flag.Duration("snapshot", 0, "print a live progress line at this interval (0 = off)")
		shards    = flag.Int("shards", 0, "OA block-pool shard count (0 = min(threads, GOMAXPROCS) rounded to a power of two)")
		traceOut  = flag.String("trace", "", "write the last soak's protocol event trace (Chrome trace_event JSON, loadable in Perfetto) to this file")
	)
	flag.Parse()
	snapInterval = *snapshot
	poolShards = *shards
	tracePath = *traceOut

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "interrupt: stopping current soak, running verification (send again to kill)")
		close(interrupted)
		signal.Stop(sigc) // restore default disposition: a second signal kills
	}()

	if *httpAddr != "" || snapInterval > 0 {
		// Hot-path counters are only worth maintaining when someone is
		// looking at them.
		obs.SetEnabled(true)
	}
	if *httpAddr != "" || tracePath != "" {
		// Protocol event tracing feeds the /trace endpoint and the -trace
		// dump; all record sites sit on reclamation slow paths.
		trace.SetEnabled(true)
	}
	if *httpAddr != "" {
		srv := &http.Server{Addr: *httpAddr, Handler: obs.HandlerFor(activeReg.Load)}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "obs http:", err)
				os.Exit(2)
			}
		}()
		fmt.Printf("observability on %s: /metrics /stats.json /trace /debug/pprof/\n", *httpAddr)
	}

	if *all {
		failed := false
		for _, st := range harness.Structures {
			for _, sc := range smr.Schemes {
				if isInterrupted() {
					break
				}
				if !st.Supports(sc) {
					continue
				}
				run := stress
				if *lin {
					run = func(st harness.Structure, sc smr.Scheme, threads int, d time.Duration, _ int) error {
						return stressLinearizable(st, sc, threads, d)
					}
				}
				if err := run(st, sc, *threads, *duration, *keys); err != nil {
					fmt.Fprintln(os.Stderr, "FAIL", err)
					failed = true
				}
			}
		}
		for _, sc := range []smr.Scheme{smr.NoRecl, smr.OA, smr.HP, smr.EBR} {
			if isInterrupted() {
				break
			}
			if err := stressQueue(sc, *threads, *duration); err != nil {
				fmt.Fprintln(os.Stderr, "FAIL", err)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
		finish()
		return
	}

	sc, err := smr.ParseScheme(*scheme)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *structure == "Queue" {
		if err := stressQueue(sc, *threads, *duration); err != nil {
			fmt.Fprintln(os.Stderr, "FAIL", err)
			os.Exit(1)
		}
		finish()
		return
	}
	if *lin {
		if err := stressLinearizable(harness.Structure(*structure), sc, *threads, *duration); err != nil {
			fmt.Fprintln(os.Stderr, "FAIL", err)
			os.Exit(1)
		}
		finish()
		return
	}
	if err := stress(harness.Structure(*structure), sc, *threads, *duration, *keys); err != nil {
		fmt.Fprintln(os.Stderr, "FAIL", err)
		os.Exit(1)
	}
	finish()
}

// dumpTrace writes the last run's protocol event trace to -trace's target
// in Chrome trace_event format.
func dumpTrace() {
	if tracePath == "" {
		return
	}
	reg := activeReg.Load()
	if reg == nil {
		return
	}
	f, err := os.Create(tracePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace dump:", err)
		return
	}
	defer f.Close()
	if err := reg.WriteTraceChrome(f); err != nil {
		fmt.Fprintln(os.Stderr, "trace dump:", err)
		return
	}
	fmt.Printf("wrote trace to %s (%d events recorded; load in chrome://tracing or ui.perfetto.dev)\n",
		tracePath, reg.TraceTotal())
}

// finish dumps the trace (if requested) and, when the process was
// interrupted, the final statistics of the last run — counters, latency
// percentiles and traced-event totals — before exiting 130 (the
// conventional SIGINT status), so an operator killing a long soak still
// gets everything it accumulated.
func finish() {
	dumpTrace()
	if !isInterrupted() {
		return
	}
	if reg := activeReg.Load(); reg != nil {
		fmt.Println("interrupted — final stats (histograms carry p50/p90/p99/p999 in ns):")
		_ = reg.WriteJSON(os.Stdout)
		fmt.Printf("traced events: %d\n", reg.TraceTotal())
	}
	os.Exit(130)
}
