// Command oaserver serves the OA key-value map over the pipelined binary
// protocol (internal/server), with an optional RESP2-compatible listener
// (-resp) for stock Redis tooling. The keyspace is partitioned across
// -shards independent map instances (0 = one per core): each shard is
// its own OA universe — arena, session registry, reclamation phases — so
// reclamation in one shard never fences operations in another.
//
// By default (-exec batched) binary-protocol requests are routed onto
// per-shard bounded MPMC rings and executed by one long-lived executor
// goroutine per shard, so the leased session population is one per
// shard regardless of connection count; a full ring answers BUSY after
// -ring-wait. With -exec inline every connection leases an SMR session
// per shard it touches and executes its own requests (the pre-batching
// model, kept for comparison); RESP connections always run inline, so
// -threads needs headroom above the shard count for them.
//
// -cache layers TTL/LRU cache semantics over the shards on the RESP
// surface: SET applies -ttl as the default time-to-live, GET expires
// lazily, a background sweeper runs every -sweep-interval, SETEX /
// EXPIRE / TTL come alive, and under -max-entries or node-budget
// pressure the cache evicts approximately-LRU entries instead of
// answering -OOM.
//
// SIGTERM/SIGINT starts a graceful drain: stop accepting, GOAWAY every
// binary-protocol connection, serve until clients finish their pipelines
// and close (or -drain-timeout cuts the stragglers), then dump final
// stats as one JSON line on stdout and exit 0.
//
// A flight recorder samples every registered metric each
// -flight-interval into in-memory ring buffers and evaluates the health
// rules (backlog growth, ring saturation, phase stall, SLO burn) every
// tick; its state is always available via the STATS op and RESP
// `INFO health`, and -flight-interval 0 turns it off.
//
// -debug exposes the observability endpoint (/metrics, /stats.json,
// /trace, /debug/slowlog, /debug/history, /healthz, pprof) with shard
// 0's SMR instrumentation and the per-shard oa_server_* counters and
// per-(command, shard) latency histograms registered. (Only shard 0's manager is exported:
// the SMR metric names are fixed, so per-shard managers would collide;
// oa_server_shard_ops{shard="i"} carries the per-shard traffic split.)
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/kvmap"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/ttlcache"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7070", "listen address (binary protocol)")
		respAddr     = flag.String("resp", "", "RESP2 listen address (empty = off)")
		debug        = flag.String("debug", "", "observability HTTP address (empty = off)")
		threads      = flag.Int("threads", 32, "per-shard session registry size (max concurrent leases per shard)")
		shards       = flag.Int("shards", 0, "keyspace shards, rounded up to a power of two (0 = one per core)")
		capacity     = flag.Int("capacity", 1<<20, "total node budget across shards (live entries + reclamation slack)")
		expected     = flag.Int("expected", 0, "expected live entries across shards (0 = capacity/2)")
		window       = flag.Int("window", 256, "per-connection in-flight response window")
		execMode     = flag.String("exec", "batched", "execution model: batched (per-shard executors over MPMC rings) or inline (per-connection leases)")
		ringSize     = flag.Int("ring-size", 1024, "per-shard request ring bound (batched mode)")
		ringWait     = flag.Duration("ring-wait", 0, "max wait for ring space before BUSY (0 = -lease-wait)")
		maxConns     = flag.Int("max-conns", 1024, "batched-mode connection table size (excess connections fall back to inline)")
		leaseWait    = flag.Duration("lease-wait", 2*time.Millisecond, "max wait for a session slot before BUSY")
		drainTimeout = flag.Duration("drain-timeout", 5*time.Second, "max graceful drain on SIGTERM")
		traceOn      = flag.Bool("trace", false, "record protocol trace events (lease/unlease, reclamation)")
		slowThresh   = flag.Duration("slow-threshold", time.Millisecond, "server-side latency past which a request enters /debug/slowlog")
		slowlogSize  = flag.Int("slowlog", 256, "slow-request ring capacity (rounded up to a power of two)")
		spanSample   = flag.Int("span-sample", 64, "emit every Nth request span into the trace rings (with -trace)")
		flightIntvl  = flag.Duration("flight-interval", flight.DefaultInterval, "flight-recorder sampling period (0 = recorder off)")
		flightWindow = flag.Duration("flight-window", flight.DefaultWindow, "flight-recorder history retention")
		sloP99       = flag.Duration("slo-p99", 20*time.Millisecond, "per-command p99 objective for the health engine's burn-rate rule (0 = rule off)")
		sloOps       = flag.Float64("slo-ops", 0, "requests/s floor for the health engine (0 = rule off)")
		cacheOn      = flag.Bool("cache", false, "serve RESP commands through the TTL/LRU cache layer (enables SETEX/EXPIRE/TTL)")
		cacheTTL     = flag.Duration("ttl", 0, "cache default time-to-live applied by SET (0 = none; with -cache)")
		maxEntries   = flag.Int("max-entries", 0, "cache LRU watermark: evict past this many live entries across shards (0 = evict only under capacity pressure; with -cache)")
		sweepIntvl   = flag.Duration("sweep-interval", time.Second, "cache background expiry sweep period (0 = lazy expiry only; with -cache)")
	)
	flag.Parse()

	if *expected <= 0 {
		*expected = *capacity / 2
	}
	if *execMode != "batched" && *execMode != "inline" {
		fmt.Fprintf(os.Stderr, "oaserver: unknown -exec %q (want batched or inline)\n", *execMode)
		os.Exit(2)
	}
	if *traceOn {
		trace.SetEnabled(true)
	}
	obs.SetEnabled(true)

	sh := kvmap.NewSharded(core.Config{MaxThreads: *threads, Capacity: *capacity}, *expected, *shards)
	var cache *ttlcache.Sharded
	if *cacheOn {
		cache = ttlcache.OverSharded(sh, ttlcache.Options{
			DefaultTTL:    *cacheTTL,
			MaxLive:       *maxEntries,
			SweepInterval: *sweepIntvl,
		})
		defer cache.Close()
	}
	srv := server.New(server.Config{
		Shards:        sh,
		Cache:         cache,
		Window:        *window,
		Inline:        *execMode == "inline",
		RingSize:      *ringSize,
		RingWait:      *ringWait,
		MaxConns:      *maxConns,
		LeaseWait:     *leaseWait,
		DrainTimeout:  *drainTimeout,
		SlowThreshold: *slowThresh,
		SlowLogSize:   *slowlogSize,
		SpanSample:    *spanSample,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "oaserver: "+format+"\n", args...)
		},
	})

	// The registry now exists whether or not -debug serves it: the flight
	// recorder samples it continuously and feeds the health engine, whose
	// state rides on STATS and `INFO health` even with no HTTP listener.
	reg := obs.NewRegistry()
	sh.Shard(0).Manager().RegisterObs(reg)
	srv.RegisterObs(reg)
	var rec *flight.Recorder
	if *flightIntvl > 0 {
		rec = flight.New(reg, flight.Config{
			Interval: *flightIntvl,
			Window:   *flightWindow,
			SLOP99:   *sloP99,
			SLOOps:   *sloOps,
		})
		rec.RegisterObs(reg)
		srv.SetHealth(func() any { return rec.Health() })
		rec.Start()
		defer rec.Stop()
	}
	if *debug != "" {
		dln, err := net.Listen("tcp", *debug)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oaserver:", err)
			os.Exit(1)
		}
		go http.Serve(dln, reg.Handler())
		fmt.Fprintf(os.Stderr, "oaserver: observability on http://%s/metrics\n", dln.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oaserver:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "oaserver: serving on %s (%s exec, %d shards, %d session slots/shard, capacity %d)\n",
		ln.Addr(), *execMode, sh.NumShards(), *threads, *capacity)

	done := make(chan error, 2)
	listeners := 1
	go func() { done <- srv.Serve(ln) }()
	if *respAddr != "" {
		rln, err := net.Listen("tcp", *respAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oaserver:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "oaserver: RESP on %s\n", rln.Addr())
		listeners++
		go func() { done <- srv.ServeRESP(rln) }()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "oaserver: %v: draining\n", sig)
		forced := srv.Shutdown()
		for i := 0; i < listeners; i++ {
			<-done
		}
		// The shard registries close only after the drain so in-flight
		// connections could still lease mid-drain.
		sh.Close()
		os.Stdout.Write(srv.FinalStats())
		if forced > 0 {
			fmt.Fprintf(os.Stderr, "oaserver: force-closed %d connections at drain timeout\n", forced)
		}
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "oaserver:", err)
			os.Exit(1)
		}
	}
}
