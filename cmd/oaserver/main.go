// Command oaserver serves the OA key-value map over the pipelined binary
// protocol (internal/server). Connections lease an SMR session from the
// map's fixed thread registry on their first data request and hold it
// until disconnect; when all -threads slots are leased, requests are
// answered BUSY after a bounded wait.
//
// SIGTERM/SIGINT starts a graceful drain: stop accepting, GOAWAY every
// connection, serve until clients finish their pipelines and close (or
// -drain-timeout cuts the stragglers), then dump final stats as one JSON
// line on stdout and exit 0.
//
// -debug exposes the observability endpoint (/metrics, /stats.json,
// /trace, pprof) with both the map's SMR instrumentation and the
// oa_server_* counters registered.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/kvmap"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/trace"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7070", "listen address")
		debug        = flag.String("debug", "", "observability HTTP address (empty = off)")
		threads      = flag.Int("threads", 32, "session registry size (max concurrent leases)")
		capacity     = flag.Int("capacity", 1<<20, "node budget (live entries + reclamation slack)")
		expected     = flag.Int("expected", 0, "expected live entries (0 = capacity/2)")
		window       = flag.Int("window", 256, "per-connection in-flight response window")
		leaseWait    = flag.Duration("lease-wait", 2*time.Millisecond, "max wait for a session slot before BUSY")
		drainTimeout = flag.Duration("drain-timeout", 5*time.Second, "max graceful drain on SIGTERM")
		traceOn      = flag.Bool("trace", false, "record protocol trace events (lease/unlease, reclamation)")
	)
	flag.Parse()

	if *expected <= 0 {
		*expected = *capacity / 2
	}
	if *traceOn {
		trace.SetEnabled(true)
	}
	obs.SetEnabled(true)

	m := kvmap.New(core.Config{MaxThreads: *threads, Capacity: *capacity}, *expected)
	srv := server.New(server.Config{
		Map:          m,
		Window:       *window,
		LeaseWait:    *leaseWait,
		DrainTimeout: *drainTimeout,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "oaserver: "+format+"\n", args...)
		},
	})

	if *debug != "" {
		reg := obs.NewRegistry()
		m.Manager().RegisterObs(reg)
		srv.RegisterObs(reg)
		dln, err := net.Listen("tcp", *debug)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oaserver:", err)
			os.Exit(1)
		}
		go http.Serve(dln, reg.Handler())
		fmt.Fprintf(os.Stderr, "oaserver: observability on http://%s/metrics\n", dln.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oaserver:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "oaserver: serving on %s (%d session slots, capacity %d)\n",
		ln.Addr(), *threads, *capacity)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "oaserver: %v: draining\n", sig)
		forced := srv.Shutdown()
		<-done
		// The map's registry closes only after the drain so in-flight
		// connections could still lease mid-drain.
		m.Close()
		os.Stdout.Write(srv.FinalStats())
		if forced > 0 {
			fmt.Fprintf(os.Stderr, "oaserver: force-closed %d connections at drain timeout\n", forced)
		}
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "oaserver:", err)
			os.Exit(1)
		}
	}
}
