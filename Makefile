# Convenience targets for the optimistic-access reproduction.

GO ?= go

.PHONY: all build test race cover fuzz bench experiments stress clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Short fuzz pass over every fuzz target (extend -fuzztime for real runs).
fuzz:
	$(GO) test -fuzz FuzzOAListVsModel -fuzztime 30s ./internal/list
	$(GO) test -fuzz FuzzOASkipListVsModel -fuzztime 30s ./internal/skiplist
	$(GO) test -fuzz FuzzMapVsModel -fuzztime 30s ./internal/kvmap
	$(GO) test -fuzz FuzzOAQueueVsModel -fuzztime 30s ./internal/queue

bench:
	$(GO) test -bench=. -benchmem ./...

# Full figure regeneration (paper settings: -duration 1s -reps 20).
experiments:
	$(GO) run ./cmd/oabench -experiment all -duration 300ms -reps 3
	$(GO) run ./cmd/oabench -experiment ext -duration 300ms -reps 3

stress:
	$(GO) run ./cmd/oastress -all -duration 5s

clean:
	$(GO) clean ./...
