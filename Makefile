# Convenience targets for the optimistic-access reproduction.

GO ?= go

.PHONY: all ci build test race cover fuzz bench benchjson experiments stress clean

all: build test

# Everything a merge gate needs: compile+vet, tests, race detector.
ci: build test race

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Short fuzz pass over every fuzz target (extend -fuzztime for real runs).
fuzz:
	$(GO) test -fuzz FuzzOAListVsModel -fuzztime 30s ./internal/list
	$(GO) test -fuzz FuzzOASkipListVsModel -fuzztime 30s ./internal/skiplist
	$(GO) test -fuzz FuzzMapVsModel -fuzztime 30s ./internal/kvmap
	$(GO) test -fuzz FuzzOAQueueVsModel -fuzztime 30s ./internal/queue

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable Figure 1 snapshot for cross-commit perf tracking. The
# note pins the pre-fast-path seed numbers this file is diffed against.
BASELINE_NOTE = baseline (seed, pre fast-path PR, same 1-vCPU host, 100ms x2): \
NoRecl Mops/s LL5K 0.052 LL128 2.48 Hash 22.2 SkipList 2.6; \
OA ratio LL5K 0.98-1.01 LL128 0.97-1.00 Hash 0.85-0.88 SkipList 0.89-0.96; \
HP 0.29-0.33/0.24-0.26/0.60-0.62/0.35-0.37; \
EBR 0.79-1.02/0.97-1.00/0.77-0.84/0.86-0.98; \
Anchors LL5K 0.94-0.98 LL128 0.85-0.87

benchjson:
	$(GO) run ./cmd/oabench -experiment fig1 -duration 100ms -reps 2 \
		-json BENCH_1.json -notes "$(BASELINE_NOTE)"

# Full figure regeneration (paper settings: -duration 1s -reps 20).
experiments:
	$(GO) run ./cmd/oabench -experiment all -duration 300ms -reps 3
	$(GO) run ./cmd/oabench -experiment ext -duration 300ms -reps 3

stress:
	$(GO) run ./cmd/oastress -all -duration 5s

clean:
	$(GO) clean ./...
