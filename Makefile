# Convenience targets for the optimistic-access reproduction.

GO ?= go

.PHONY: all ci build test race cover fuzz bench benchjson experiments stress obs-smoke clean

all: build test

# Everything a merge gate needs: compile+vet, tests, race detector, and
# the observability endpoint smoke test.
ci: build test race obs-smoke

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Short fuzz pass over every fuzz target (extend -fuzztime for real runs).
fuzz:
	$(GO) test -fuzz FuzzOAListVsModel -fuzztime 30s ./internal/list
	$(GO) test -fuzz FuzzOASkipListVsModel -fuzztime 30s ./internal/skiplist
	$(GO) test -fuzz FuzzMapVsModel -fuzztime 30s ./internal/kvmap
	$(GO) test -fuzz FuzzOAQueueVsModel -fuzztime 30s ./internal/queue

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable Figure 1 snapshot for cross-commit perf tracking. The
# note pins the baseline this file is diffed against (BENCH_1.json, taken
# just before the observability layer landed).
BASELINE_NOTE = baseline: BENCH_1.json (pre-observability PR, same 1-vCPU \
host, 100ms x2); this run adds per-cell SMR counter blocks and must stay \
within noise of it (last measured: median cell ratio 0.99, range 0.84-1.08)

benchjson:
	$(GO) run ./cmd/oabench -experiment fig1 -duration 100ms -reps 2 \
		-json BENCH_2.json -notes "$(BASELINE_NOTE)"

# Full figure regeneration (paper settings: -duration 1s -reps 20).
experiments:
	$(GO) run ./cmd/oabench -experiment all -duration 300ms -reps 3
	$(GO) run ./cmd/oabench -experiment ext -duration 300ms -reps 3

stress:
	$(GO) run ./cmd/oastress -all -duration 5s

# End-to-end probe of the observability endpoint: starts oastress with
# -http/-snapshot, validates /metrics and /stats.json, then checks the
# SIGINT contract (verification + final stats dump + exit 130).
obs-smoke:
	$(GO) run ./cmd/obsprobe

clean:
	$(GO) clean ./...
