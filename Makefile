# Convenience targets for the optimistic-access reproduction.

GO ?= go

.PHONY: all ci build test race race-full cover fuzz bench benchjson benchdiff benchdiff-smoke experiments stress obs-smoke trace-smoke serve-smoke resp-smoke shard-smoke slo-smoke batch-smoke health-smoke cache-smoke clean

all: build test

# Everything a merge gate needs: compile+vet, tests, the race detector
# over the reclamation core, the perf-diff smoke, the observability and
# event-trace endpoint smokes, the end-to-end serving smokes (binary
# protocol, RESP interop, shard scaling, batched-vs-inline execution),
# the SLO gate driven off the server's own latency histograms, the
# health-engine gate that provokes each degraded state on purpose, and
# the TTL/LRU cache gate (expiry, sweeping, eviction-not-OOM).
ci: build test race benchdiff-smoke obs-smoke trace-smoke serve-smoke resp-smoke shard-smoke slo-smoke batch-smoke health-smoke cache-smoke

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race detector focused where the lock-free interleavings live: the
# reclamation core, the sharded block pools, the MPMC request rings, the
# generic OA kit and the aux-word protocol of the TTL/LRU cache.
# -short keeps it inside a merge-gate budget; race-full sweeps everything.
race:
	$(GO) test -race -short ./internal/core/... ./internal/pools/... ./internal/mpmc/... ./internal/oakit/... ./internal/ttlcache/...

race-full:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Short fuzz pass over every fuzz target (extend -fuzztime for real runs).
fuzz:
	$(GO) test -fuzz FuzzOAListVsModel -fuzztime 30s ./internal/list
	$(GO) test -fuzz FuzzOASkipListVsModel -fuzztime 30s ./internal/skiplist
	$(GO) test -fuzz FuzzMapVsModel -fuzztime 30s ./internal/kvmap
	$(GO) test -fuzz FuzzOAQueueVsModel -fuzztime 30s ./internal/queue

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable Figure 1 snapshot for cross-commit perf tracking. The
# note pins the baseline this file is diffed against (BENCH_8.json —
# see the notes inside both). Snapshots on this host are recorded as
# the per-cell median of several alternating passes of this target
# because the hypervisor-steal noise makes any single pass a coin flip
# — see the notes field inside them. From BENCH_9 on, snapshots run
# with the in-process flight recorder sampling at its default 250ms
# interval (oabench -flight, on by default), so the recorder's
# steady-state cost is inside the gated numbers, and carry an env
# fingerprint benchdiff checks before comparing.
BASELINE_NOTE = baseline: BENCH_9.json (re-paired side of the same \
5-alternating-pass per-cell-median procedure on this 1-vCPU host); \
this PR rebuilds internal/list on the generic OA kit (internal/oakit) \
and adds an immediate best-effort unlink after kvmap's logical \
deletes -- the gated structures' algorithms are unchanged, so every \
cell must stay within noise of the hand-written-list baseline; diff \
with make benchdiff

benchjson:
	$(GO) run ./cmd/oabench -experiment fig1 -duration 200ms -reps 6 \
		-json BENCH_10.json -notes "$(BASELINE_NOTE)"

# Per-cell throughput ratio gate between two oabench snapshots:
#   make benchdiff OLD=BENCH_3.json NEW=BENCH_4.json [THRESHOLD=0.85]
# Exits nonzero when any joined cell regresses below THRESHOLD; the p99
# latency comparison it appends is informational and never gates.
OLD ?= BENCH_9.json
NEW ?= BENCH_10.json
THRESHOLD ?= 0.85

benchdiff:
	$(GO) run ./cmd/benchdiff -old $(OLD) -new $(NEW) -threshold $(THRESHOLD)

# Mechanics-only smoke for the gate: a snapshot self-diff joins every cell
# at ratio 1.0, so it exercises the parser, join and gate without making
# CI depend on benchmark noise.
benchdiff-smoke:
	$(GO) run ./cmd/benchdiff -old BENCH_2.json -new BENCH_2.json -threshold 0.999 >/dev/null

# Full figure regeneration (paper settings: -duration 1s -reps 20).
experiments:
	$(GO) run ./cmd/oabench -experiment all -duration 300ms -reps 3
	$(GO) run ./cmd/oabench -experiment ext -duration 300ms -reps 3

stress:
	$(GO) run ./cmd/oastress -all -duration 5s

# End-to-end probe of the observability endpoint: starts oastress with
# -http/-snapshot, validates /metrics, /stats.json and /trace, then checks
# the SIGINT contract (verification + final stats dump + exit 130).
obs-smoke:
	$(GO) run ./cmd/obsprobe

# End-to-end probe of the event-trace dump: a short traced soak writes a
# Chrome trace_event file, tracecheck validates its shape and requires the
# phase-transition and restart events a healthy OA run produces.
TRACE_TMP := $(shell mktemp -u /tmp/oastress_trace.XXXXXX.json)
trace-smoke:
	$(GO) run ./cmd/oastress -structure Hash -scheme OA -threads 4 \
		-keys 256 -duration 2s -trace $(TRACE_TMP)
	$(GO) run ./cmd/tracecheck -require phase,restart,drain,refill $(TRACE_TMP)
	@rm -f $(TRACE_TMP)

# End-to-end probe of the network server: builds oaserver+oaload, bursts
# 64 pipelined connections at the default batched executors, asserts the
# throughput floor and the one-lease-per-shard economy, then SIGTERMs
# mid-load and checks the drain drops zero in-flight requests.
serve-smoke:
	$(GO) run ./cmd/servesmoke

# RESP2 interop probe: serves the -resp listener and drives it with the
# in-repo RESP client (round-trips, CAS extension, deep pipelining, typed
# errors, clean drain).
resp-smoke:
	$(GO) run ./cmd/respsmoke

# Shard scaling gate: measures the ops/s-vs-shards curve at 1/2/4 shards
# under zipfian load; on a >= 4-core runner 4 shards must deliver >= 1.8x
# the 1-shard rate (mechanics-only on smaller hosts).
shard-smoke:
	$(GO) run ./cmd/shardsmoke

# Batched-execution gate: measures inline-vs-batched throughput at
# 1/2/4 shards under 64 pipelined connections; on a >= 4-core runner
# batched must deliver >= 1.15x inline at 4 shards (mechanics-only on
# smaller hosts: ledger balance, exec-mode fidelity, lease economy).
batch-smoke:
	$(GO) run ./cmd/batchsmoke

# SLO gate: drives oaload against oaserver and asserts the objectives
# (throughput floor, per-command server-side p99, BUSY budget) from the
# server's OWN latency histograms, cross-checked against the client's
# -json report. Mechanics always; SLOs enforced when GOMAXPROCS >= 4.
slo-smoke:
	$(GO) run ./cmd/slocheck

# TTL/LRU cache gate: serves oaserver with -cache and drives the RESP
# listener through SETEX/EXPIRE/TTL, lazy expiry past a real deadline,
# background sweeping of untouched keys, and 5000 SETs past the LRU
# watermark that must all answer +OK (eviction instead of OOM), ending
# in a clean drain whose final stats carry the cache ledger.
cache-smoke:
	$(GO) run ./cmd/cachesmoke

# Health-engine gate: an in-process server with a tiny ring and a
# fast-ticking flight recorder is driven into ring saturation (stalled
# executor) and backlog growth (PUT+DEL churn); both rules must fire,
# surface on /healthz + INFO health + EvHealth, and clear. Endpoint and
# rule-catalog mechanics assert on any host; the transition assertions
# are strict when GOMAXPROCS >= 4 (and pass on 1 vCPU in practice —
# both provocations are deterministic, not scheduler races).
health-smoke:
	$(GO) run ./cmd/healthsmoke

clean:
	$(GO) clean ./...
