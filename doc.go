// Package repro reproduces Cohen & Petrank, "Efficient Memory Management
// for Lock-Free Data Structures with Optimistic Access" (SPAA 2015).
//
// The public API lives in package oamem; the experiment driver in
// cmd/oabench; the per-figure benchmarks in bench_test.go next to this
// file. See README.md, DESIGN.md and EXPERIMENTS.md.
package repro
