// Package oamem is the public API of this repository: lock-free ordered
// sets (linked list, hash set, skip list) with pluggable safe-memory-
// reclamation, centered on the optimistic access scheme of Cohen & Petrank
// ("Efficient Memory Management for Lock-Free Data Structures with
// Optimistic Access", SPAA 2015).
//
// # Quick start
//
//	set, err := oamem.HashSet(
//		oamem.WithThreads(8),        // max concurrently leased sessions
//		oamem.WithCapacity(1<<20),   // node budget: live set + slack δ
//	)
//	if err != nil { ... }
//
//	// In each worker goroutine:
//	s, err := set.Acquire() // lease a session slot
//	if err != nil { ... }   // ErrNoFreeSessions when all 8 are leased
//	defer s.Release()
//	s.Insert(42)
//	s.Contains(42)
//	s.Delete(42)
//
// A Session is not goroutine-safe; each goroutine leases its own with
// Acquire and returns it with Release. The registry holds WithThreads
// slots — when all are leased, Acquire fails fast with ErrNoFreeSessions
// and the caller backs off or sheds load; slots recycle the moment a
// holder releases, so any number of goroutines can multiplex onto the
// fixed registry over time. (The underlying algorithms are specified
// against a fixed thread registry; leasing is the standard bridge from
// dynamic concurrency onto it.) All structures are linearizable sets of
// uint64 keys and are lock-free under every scheme except EBR (whose
// reclamation — not its operations — can be stalled by a preempted
// thread).
//
// Beyond the paper's sets, the package provides FIFO (Michael-Scott
// queue), KV and ShardedKV (uint64→uint64 hash maps under OA, the
// types the network server in internal/server serves), Ordered (skip
// list with ordered RangeScan) and Cache (a TTL/LRU cache layered over
// the hash map) — see extensions.go and cache.go.
//
// Every failure is typed: constructors wrap ErrInvalidOptions, Acquire
// returns ErrNoFreeSessions or ErrClosed, and a full Cache reports
// ErrCapacityExhausted — see errors.go for the complete sentinel set.
//
// # Choosing a scheme
//
//   - OA: the paper's contribution. Near-zero read overhead (one local
//     check per read), hazard pointers only around writes, lock-free
//     reclamation. Requires a fixed memory Capacity (live set + slack δ).
//   - HP: Michael's hazard pointers. Strong bounds on unreclaimed memory,
//     but a fence per traversal hop (2x-5x slower traversals).
//   - EBR: epoch-based reclamation. Fast, but a single stalled thread
//     stops reclamation; memory use is unbounded under stalls.
//   - Anchors: amortized hazard pointers for linked lists (one fence per K
//     hops); see internal/anchors for this implementation's cost-model
//     simplifications.
//   - NoRecl: no reclamation (baseline; leaks deleted nodes).
package oamem

import (
	"repro/internal/anchors"
	"repro/internal/core"
	"repro/internal/ebr"
	"repro/internal/hashtable"
	"repro/internal/hpscheme"
	"repro/internal/list"
	"repro/internal/norecl"
	"repro/internal/skiplist"
	"repro/internal/smr"
)

// Scheme selects the memory reclamation scheme.
type Scheme = smr.Scheme

// Re-exported scheme constants.
const (
	NoRecl  = smr.NoRecl
	OA      = smr.OA
	HP      = smr.HP
	EBR     = smr.EBR
	Anchors = smr.Anchors
)

// Set is the raw concurrent-set interface every scheme implements
// (fixed-slot sessions, no leasing). The public constructors wrap one
// in a *Structure, whose Acquire/Release lease those fixed slots
// safely; the alias names the interface for code embedding the raw
// sets (harnesses, recorders).
type Set = smr.Set

// Stats aggregates reclamation counters.
type Stats = smr.Stats

// Options sizes a structure.
//
// Deprecated: pass functional options (WithThreads, WithCapacity, ...)
// instead. Options itself satisfies Option — its non-zero fields apply —
// so existing call sites keep compiling against both constructor
// families.
type Options struct {
	// Threads is the maximum number of concurrent sessions (thread ids
	// 0..Threads-1). Fixed at construction.
	Threads int
	// Capacity is the node budget. For OA this is a hard limit: size it
	// as the peak live set plus a reclamation slack δ (the paper uses
	// δ ≈ 8,000-50,000; more δ means fewer reclamation phases). Other
	// schemes grow past it on demand.
	Capacity int
	// LocalPool is the per-thread transfer block size, 1..126
	// (126 default, the paper's choice).
	LocalPool int
	// ScanThreshold tunes HP (retires per scan) and Anchors; EBR uses
	// 10× this as its operations-per-scan. Zero picks scheme defaults.
	ScanThreshold int
	// AnchorsK is the anchors scheme's fence amortization distance
	// (1000 default, as in the paper).
	AnchorsK int
}

func (o Options) threads() int {
	if o.Threads <= 0 {
		return 1
	}
	return o.Threads
}

// buildList constructs the raw linked-list set for a resolved config.
func buildList(c config) (smr.Set, error) {
	o := c.o
	switch c.scheme {
	case NoRecl:
		return list.NewNoRecl(norecl.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool}), nil
	case OA:
		return list.NewOA(core.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool}), nil
	case HP:
		return list.NewHP(hpscheme.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool, ScanThreshold: o.ScanThreshold}), nil
	case EBR:
		return list.NewEBR(ebr.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool, OpsPerScan: 10 * o.ScanThreshold}), nil
	case Anchors:
		return list.NewAnchors(anchors.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool, ScanThreshold: o.ScanThreshold, K: o.AnchorsK}), nil
	default:
		return nil, badOption("unknown scheme %v", c.scheme)
	}
}

// buildHashSet constructs the raw hash set for a resolved config.
func buildHashSet(c config) (smr.Set, error) {
	o := c.o
	switch c.scheme {
	case NoRecl:
		return hashtable.NewNoRecl(norecl.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool}, c.expected), nil
	case OA:
		return hashtable.NewOA(core.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool}, c.expected), nil
	case HP:
		return hashtable.NewHP(hpscheme.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool, ScanThreshold: o.ScanThreshold}, c.expected), nil
	case EBR:
		return hashtable.NewEBR(ebr.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool, OpsPerScan: 10 * o.ScanThreshold}, c.expected), nil
	case Anchors:
		return nil, badOption("anchors is implemented for the linked list only (as in the paper); scheme %v", c.scheme)
	default:
		return nil, badOption("unknown scheme %v", c.scheme)
	}
}

// buildSkipList constructs the raw skip-list set for a resolved config.
func buildSkipList(c config) (smr.Set, error) {
	o := c.o
	switch c.scheme {
	case NoRecl:
		return skiplist.NewNoRecl(norecl.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool}), nil
	case OA:
		return skiplist.NewOA(core.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool}), nil
	case HP:
		return skiplist.NewHP(hpscheme.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool, ScanThreshold: o.ScanThreshold}), nil
	case EBR:
		return skiplist.NewEBR(ebr.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool, OpsPerScan: 10 * o.ScanThreshold}), nil
	case Anchors:
		return nil, badOption("anchors is implemented for the linked list only (as in the paper); scheme %v", c.scheme)
	default:
		return nil, badOption("unknown scheme %v", c.scheme)
	}
}

// List builds a sorted linked-list set (Harris-Michael) with session
// leasing. Best for small sets; operations are O(n). Scheme defaults to
// OA; override with WithScheme (Anchors is list-only, as in the paper).
func List(opts ...Option) (*Structure, error) {
	c, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	set, err := buildList(c)
	if err != nil {
		return nil, err
	}
	return newStructure(set, c.o.threads()), nil
}

// HashSet builds a hash set (Michael's lock-free hash table, load factor
// 0.75) with session leasing. O(1) operations. Size it with WithExpected
// (default: half the capacity).
func HashSet(opts ...Option) (*Structure, error) {
	c, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	set, err := buildHashSet(c)
	if err != nil {
		return nil, err
	}
	return newStructure(set, c.o.threads()), nil
}

// SkipList builds a skip-list set (Herlihy-Shavit) with session leasing.
// O(log n) operations over an ordered key space; for ordered range
// scans use Ordered.
func SkipList(opts ...Option) (*Structure, error) {
	c, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	set, err := buildSkipList(c)
	if err != nil {
		return nil, err
	}
	return newStructure(set, c.o.threads()), nil
}
