// Package oamem is the public API of this repository: lock-free ordered
// sets (linked list, hash set, skip list) with pluggable safe-memory-
// reclamation, centered on the optimistic access scheme of Cohen & Petrank
// ("Efficient Memory Management for Lock-Free Data Structures with
// Optimistic Access", SPAA 2015).
//
// # Quick start
//
//	set, err := oamem.NewHashSet(oamem.OA, oamem.Options{Threads: 8, Capacity: 1 << 20}, 1<<16)
//	if err != nil { ... }
//	s := set.Session(0) // one session per goroutine, by thread id
//	s.Insert(42)
//	s.Contains(42)
//	s.Delete(42)
//
// Sessions are not goroutine-safe; create one per worker with a distinct
// thread id below Options.Threads. All structures are linearizable sets of
// uint64 keys and are lock-free under every scheme except EBR (whose
// reclamation — not its operations — can be stalled by a preempted thread).
//
// Beyond the paper's sets, the package provides NewQueue (Michael-Scott
// FIFO), NewMap (uint64→uint64 hash map under OA) and NewOrderedSet (skip
// list with ordered RangeScan) — see extensions.go.
//
// # Choosing a scheme
//
//   - OA: the paper's contribution. Near-zero read overhead (one local
//     check per read), hazard pointers only around writes, lock-free
//     reclamation. Requires a fixed memory Capacity (live set + slack δ).
//   - HP: Michael's hazard pointers. Strong bounds on unreclaimed memory,
//     but a fence per traversal hop (2x-5x slower traversals).
//   - EBR: epoch-based reclamation. Fast, but a single stalled thread
//     stops reclamation; memory use is unbounded under stalls.
//   - Anchors: amortized hazard pointers for linked lists (one fence per K
//     hops); see internal/anchors for this implementation's cost-model
//     simplifications.
//   - NoRecl: no reclamation (baseline; leaks deleted nodes).
package oamem

import (
	"fmt"

	"repro/internal/anchors"
	"repro/internal/core"
	"repro/internal/ebr"
	"repro/internal/hashtable"
	"repro/internal/hpscheme"
	"repro/internal/list"
	"repro/internal/norecl"
	"repro/internal/skiplist"
	"repro/internal/smr"
)

// Scheme selects the memory reclamation scheme.
type Scheme = smr.Scheme

// Re-exported scheme constants.
const (
	NoRecl  = smr.NoRecl
	OA      = smr.OA
	HP      = smr.HP
	EBR     = smr.EBR
	Anchors = smr.Anchors
)

// Set is a concurrent set of uint64 keys; Session binds it to one worker.
type Set = smr.Set

// Session is the per-goroutine handle of a Set.
type Session = smr.Session

// Stats aggregates reclamation counters.
type Stats = smr.Stats

// Options sizes a structure.
type Options struct {
	// Threads is the maximum number of concurrent sessions (thread ids
	// 0..Threads-1). Fixed at construction.
	Threads int
	// Capacity is the node budget. For OA this is a hard limit: size it
	// as the peak live set plus a reclamation slack δ (the paper uses
	// δ ≈ 8,000-50,000; more δ means fewer reclamation phases). Other
	// schemes grow past it on demand.
	Capacity int
	// LocalPool is the per-thread transfer block size, 1..126
	// (126 default, the paper's choice).
	LocalPool int
	// ScanThreshold tunes HP (retires per scan) and Anchors; EBR uses
	// 10× this as its operations-per-scan. Zero picks scheme defaults.
	ScanThreshold int
	// AnchorsK is the anchors scheme's fence amortization distance
	// (1000 default, as in the paper).
	AnchorsK int
}

func (o Options) threads() int {
	if o.Threads <= 0 {
		return 1
	}
	return o.Threads
}

// NewList builds a sorted linked-list set (Harris-Michael) under the given
// scheme. Best for small sets; operations are O(n).
func NewList(scheme Scheme, o Options) (Set, error) {
	switch scheme {
	case NoRecl:
		return list.NewNoRecl(norecl.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool}), nil
	case OA:
		return list.NewOA(core.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool}), nil
	case HP:
		return list.NewHP(hpscheme.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool, ScanThreshold: o.ScanThreshold}), nil
	case EBR:
		return list.NewEBR(ebr.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool, OpsPerScan: 10 * o.ScanThreshold}), nil
	case Anchors:
		return list.NewAnchors(anchors.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool, ScanThreshold: o.ScanThreshold, K: o.AnchorsK}), nil
	default:
		return nil, fmt.Errorf("oamem: unknown scheme %v", scheme)
	}
}

// NewHashSet builds a hash set (Michael's lock-free hash table, load
// factor 0.75) sized for expected elements. O(1) operations.
func NewHashSet(scheme Scheme, o Options, expected int) (Set, error) {
	switch scheme {
	case NoRecl:
		return hashtable.NewNoRecl(norecl.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool}, expected), nil
	case OA:
		return hashtable.NewOA(core.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool}, expected), nil
	case HP:
		return hashtable.NewHP(hpscheme.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool, ScanThreshold: o.ScanThreshold}, expected), nil
	case EBR:
		return hashtable.NewEBR(ebr.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool, OpsPerScan: 10 * o.ScanThreshold}, expected), nil
	case Anchors:
		return nil, fmt.Errorf("oamem: anchors is implemented for the linked list only (as in the paper)")
	default:
		return nil, fmt.Errorf("oamem: unknown scheme %v", scheme)
	}
}

// NewSkipListSet builds a skip-list set (Herlihy-Shavit). O(log n)
// operations over an ordered key space.
func NewSkipListSet(scheme Scheme, o Options) (Set, error) {
	switch scheme {
	case NoRecl:
		return skiplist.NewNoRecl(norecl.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool}), nil
	case OA:
		return skiplist.NewOA(core.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool}), nil
	case HP:
		return skiplist.NewHP(hpscheme.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool, ScanThreshold: o.ScanThreshold}), nil
	case EBR:
		return skiplist.NewEBR(ebr.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool, OpsPerScan: 10 * o.ScanThreshold}), nil
	case Anchors:
		return nil, fmt.Errorf("oamem: anchors is implemented for the linked list only (as in the paper)")
	default:
		return nil, fmt.Errorf("oamem: unknown scheme %v", scheme)
	}
}
