package oamem_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/oamem"
)

// TestAcquireReleaseChurn multiplexes far more goroutines than session
// slots through a structure, asserting every Acquire either succeeds or
// fails with ErrNoFreeSessions, and that sessions work after lease churn.
// Run under -race this also checks the Release→Acquire happens-before
// edge on the recycled per-slot session state.
func TestAcquireReleaseChurn(t *testing.T) {
	const (
		slots   = 4
		workers = 32
		rounds  = 200
	)
	set, err := oamem.HashSet(oamem.WithThreads(slots), oamem.WithCapacity(1<<16))
	if err != nil {
		t.Fatal(err)
	}
	var grants, rejects atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; {
				s, err := set.Acquire()
				if err != nil {
					if !errors.Is(err, oamem.ErrNoFreeSessions) {
						t.Errorf("Acquire: %v", err)
						return
					}
					rejects.Add(1)
					continue
				}
				grants.Add(1)
				if s.TID() < 0 || s.TID() >= slots {
					t.Errorf("TID %d out of range", s.TID())
				}
				k := uint64(w*rounds + r)
				s.Insert(k)
				if !s.Contains(k) {
					t.Errorf("lost key %d", k)
				}
				s.Delete(k)
				s.Release()
				r++
			}
		}(w)
	}
	wg.Wait()
	if got := grants.Load(); got != workers*rounds {
		t.Fatalf("grants = %d, want %d", got, workers*rounds)
	}
	if set.SessionsLeased() != 0 {
		t.Fatalf("SessionsLeased = %d after all releases", set.SessionsLeased())
	}
	t.Logf("%d grants, %d transient rejections over %d slots", grants.Load(), rejects.Load(), slots)
}

// TestAcquireExhaustionAndClose pins down the two typed failure modes of
// Acquire: ErrNoFreeSessions while all slots are leased, ErrClosed after
// Close — and that a lease held across Close stays releasable.
func TestAcquireExhaustionAndClose(t *testing.T) {
	set, err := oamem.List(oamem.WithThreads(2), oamem.WithCapacity(4096))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := set.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := set.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set.Acquire(); !errors.Is(err, oamem.ErrNoFreeSessions) {
		t.Fatalf("exhausted Acquire = %v, want ErrNoFreeSessions", err)
	}
	s1.Release()
	s3, err := set.Acquire()
	if err != nil {
		t.Fatalf("Acquire after Release: %v", err)
	}
	s3.Release()
	set.Close()
	if _, err := set.Acquire(); !errors.Is(err, oamem.ErrClosed) {
		t.Fatalf("Acquire after Close = %v, want ErrClosed", err)
	}
	s2.Insert(7) // lease held across Close stays usable...
	s2.Release() // ...and releasable.
}

// TestDoubleReleasePanics asserts the second Release of the same leased
// session panics instead of silently double-freeing the slot.
func TestDoubleReleasePanics(t *testing.T) {
	set, err := oamem.SkipList(oamem.WithThreads(1), oamem.WithCapacity(4096))
	if err != nil {
		t.Fatal(err)
	}
	s, err := set.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	s.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	s.Release()
}

// TestQueueLeasing covers Acquire/Release on the FIFO wrapper.
func TestQueueLeasing(t *testing.T) {
	q, err := oamem.FIFO(oamem.WithThreads(2), oamem.WithCapacity(4096))
	if err != nil {
		t.Fatal(err)
	}
	s, err := q.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	s.Enqueue(11)
	s.Enqueue(22)
	if v, ok := s.Dequeue(); !ok || v != 11 {
		t.Fatalf("Dequeue = %d,%v want 11,true", v, ok)
	}
	s.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second QueueSession.Release did not panic")
		}
	}()
	s.Release()
}

// TestOrderedLeasing covers Acquire/Release and RangeScan on the ordered
// set wrapper (which leases through the core manager's registry).
func TestOrderedLeasing(t *testing.T) {
	os, err := oamem.Ordered(oamem.WithThreads(2), oamem.WithCapacity(4096))
	if err != nil {
		t.Fatal(err)
	}
	s, err := os.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{30, 10, 20} {
		s.Insert(k)
	}
	var got []uint64
	s.RangeScan(10, 25, func(k uint64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("RangeScan = %v, want [10 20]", got)
	}
	s.Release()
	if _, err := os.Acquire(); err != nil {
		t.Fatalf("re-Acquire: %v", err)
	}
	os.Close()
	if _, err := os.Acquire(); !errors.Is(err, oamem.ErrClosed) {
		t.Fatalf("Acquire after Close = %v, want ErrClosed", err)
	}
}

// TestSessionStateSurvivesChurn asserts the per-slot scheme session is
// cached across leases: under OA a session holds a pending pre-allocated
// node, and rebuilding it per lease would leak one capacity slot per
// Acquire/Release cycle. With capacity barely above the live set, tens of
// thousands of churn cycles only stay within budget if the cache works.
func TestSessionStateSurvivesChurn(t *testing.T) {
	set, err := oamem.HashSet(oamem.WithThreads(1), oamem.WithCapacity(4096))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*4096; i++ {
		s, err := set.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		k := uint64(i % 8)
		s.Insert(k)
		s.Delete(k)
		s.Release()
	}
}

// TestOptionsValidation covers option merging, defaults and rejection.
// Every rejection must wrap the typed ErrInvalidOptions sentinel.
func TestOptionsValidation(t *testing.T) {
	rejected := map[string]error{}
	collect := func(name string, _ any, err error) {
		if err == nil {
			t.Fatalf("%s accepted", name)
		}
		rejected[name] = err
	}
	st, err := oamem.List(oamem.WithThreads(-1))
	collect("negative threads", st, err)
	st, err = oamem.HashSet(oamem.WithCapacity(-5))
	collect("negative capacity", st, err)
	st, err = oamem.HashSet(oamem.WithScheme(oamem.Anchors))
	collect("anchors hash set", st, err)
	m, err := oamem.KV(oamem.WithScheme(oamem.HP))
	collect("non-OA kv map", m, err)
	os, err := oamem.Ordered(oamem.WithScheme(oamem.EBR))
	collect("non-OA ordered set", os, err)
	cc, err := oamem.Cache(oamem.WithTTL(-time.Second))
	collect("negative TTL", cc, err)
	cc, err = oamem.Cache(oamem.WithEvictionPolicy(oamem.EvictLRU(-1)))
	collect("negative eviction watermark", cc, err)
	for name, err := range rejected {
		if !errors.Is(err, oamem.ErrInvalidOptions) {
			t.Fatalf("%s: error %v does not wrap ErrInvalidOptions", name, err)
		}
	}

	// The deprecated Options struct is itself an Option: non-zero fields
	// apply, later options override earlier ones.
	set, err := oamem.List(
		oamem.Options{Threads: 2, Capacity: 4096},
		oamem.WithThreads(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	if set.Threads() != 3 {
		t.Fatalf("Threads = %d, want 3 (override)", set.Threads())
	}
	if set.Scheme() != oamem.OA {
		t.Fatalf("default scheme = %v, want OA", set.Scheme())
	}
}
