package oamem

import (
	"time"

	"repro/internal/core"
	"repro/internal/kvmap"
	"repro/internal/ttlcache"
)

// TTLCache is a lock-free TTL/LRU cache layered over the OA hash map:
// per-entry expiry deadlines resolved lazily on read and by a background
// sweeper, plus sampled least-recently-used eviction under memory
// pressure — a full cache evicts instead of failing Set. Construct one
// with Cache; lease CacheSessions with Acquire.
type TTLCache = ttlcache.Cache

// CacheSession is the leased per-goroutine handle of a TTLCache: Get,
// Set, SetTTL, Expire, TTL, Remove. It is a value (leasing a session
// allocates nothing beyond the underlying map session's lease).
type CacheSession = ttlcache.Session

// CacheStats snapshots a TTLCache's counters (live entries, expiries,
// evictions, pressure reliefs, sweeps).
type CacheStats = ttlcache.Stats

// NoExpiry passed as a TTL to SetTTL or Expire gives the entry no
// deadline, overriding the cache's default TTL for that key.
const NoExpiry = ttlcache.NoExpiry

// Cache builds a TTL/LRU cache over a fresh OA hash map. Size it like
// KV (WithThreads, WithCapacity, WithExpected), then shape the cache
// behavior with WithTTL (default time-to-live), WithEvictionPolicy
// (EvictLRU watermark) and WithSweepInterval (background expiry; one
// second by default, negative disables):
//
//	c, err := oamem.Cache(
//		oamem.WithThreads(8),
//		oamem.WithCapacity(1<<20),
//		oamem.WithTTL(time.Minute),
//		oamem.WithEvictionPolicy(oamem.EvictLRU(500_000)),
//	)
//
// Even without an eviction watermark, a cache that hits its node budget
// sheds expired and then least-recently-used entries before giving up;
// Set returns an error wrapping ErrCapacityExhausted only when relief
// frees nothing (the live working set truly exceeds the budget).
func Cache(opts ...Option) (*TTLCache, error) {
	c, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	if c.scheme != OA {
		return nil, badOption("the ttl cache is implemented under the OA scheme only; scheme %v", c.scheme)
	}
	o := c.o
	m := kvmap.New(core.Config{
		MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool,
	}, c.expected)
	sweep := c.sweep
	if sweep == 0 {
		sweep = time.Second
	} else if sweep < 0 {
		sweep = 0
	}
	return ttlcache.Over(m, ttlcache.Options{
		DefaultTTL:    c.ttl,
		MaxLive:       c.maxEntries,
		SweepInterval: sweep,
	}), nil
}
