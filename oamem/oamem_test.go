package oamem_test

import (
	"sync"
	"testing"

	"repro/oamem"
)

func constructors() map[string]func(oamem.Scheme) (oamem.Set, error) {
	opt := oamem.Options{Threads: 4, Capacity: 1 << 14}
	return map[string]func(oamem.Scheme) (oamem.Set, error){
		"List":     func(s oamem.Scheme) (oamem.Set, error) { return oamem.NewList(s, opt) },
		"HashSet":  func(s oamem.Scheme) (oamem.Set, error) { return oamem.NewHashSet(s, opt, 1024) },
		"SkipList": func(s oamem.Scheme) (oamem.Set, error) { return oamem.NewSkipListSet(s, opt) },
	}
}

func TestAllConstructors(t *testing.T) {
	for name, mk := range constructors() {
		for _, scheme := range []oamem.Scheme{oamem.NoRecl, oamem.OA, oamem.HP, oamem.EBR} {
			set, err := mk(scheme)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, scheme, err)
			}
			s := set.Session(0)
			if !s.Insert(7) || !s.Contains(7) || s.Insert(7) || !s.Delete(7) || s.Contains(7) {
				t.Fatalf("%s/%v: set semantics broken", name, scheme)
			}
			if set.Scheme() != scheme {
				t.Fatalf("%s/%v: reports scheme %v", name, scheme, set.Scheme())
			}
		}
	}
}

func TestAnchorsListOnly(t *testing.T) {
	opt := oamem.Options{Threads: 2, Capacity: 4096}
	if _, err := oamem.NewList(oamem.Anchors, opt); err != nil {
		t.Fatalf("anchors list: %v", err)
	}
	if _, err := oamem.NewHashSet(oamem.Anchors, opt, 128); err == nil {
		t.Fatal("anchors hash set must be rejected")
	}
	if _, err := oamem.NewSkipListSet(oamem.Anchors, opt); err == nil {
		t.Fatal("anchors skip list must be rejected")
	}
}

func TestUnknownScheme(t *testing.T) {
	opt := oamem.Options{Threads: 1, Capacity: 1024}
	if _, err := oamem.NewList(oamem.Scheme(99), opt); err == nil {
		t.Fatal("unknown scheme must error")
	}
	if _, err := oamem.NewHashSet(oamem.Scheme(99), opt, 16); err == nil {
		t.Fatal("unknown scheme must error")
	}
	if _, err := oamem.NewSkipListSet(oamem.Scheme(99), opt); err == nil {
		t.Fatal("unknown scheme must error")
	}
}

func TestConcurrentSessionsThroughPublicAPI(t *testing.T) {
	set, err := oamem.NewHashSet(oamem.OA, oamem.Options{Threads: 4, Capacity: 1 << 14}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s := set.Session(id)
			base := uint64(id) << 32
			for i := uint64(1); i <= 2000; i++ {
				k := base + i
				if !s.Insert(k) {
					t.Errorf("insert %d", k)
					return
				}
				if !s.Delete(k) {
					t.Errorf("delete %d", k)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if set.Stats().Allocs == 0 {
		t.Fatal("stats not plumbed")
	}
}

func TestStatsTypeAlias(t *testing.T) {
	var s oamem.Stats
	s.Add(oamem.Stats{Allocs: 2})
	if s.Allocs != 2 {
		t.Fatal("Stats alias broken")
	}
}
