package oamem_test

import (
	"errors"
	"sync"
	"testing"

	"repro/oamem"
)

func constructors() map[string]func(...oamem.Option) (*oamem.Structure, error) {
	return map[string]func(...oamem.Option) (*oamem.Structure, error){
		"List":     oamem.List,
		"HashSet":  oamem.HashSet,
		"SkipList": oamem.SkipList,
	}
}

func TestAllConstructors(t *testing.T) {
	opt := oamem.Options{Threads: 4, Capacity: 1 << 14}
	for name, mk := range constructors() {
		for _, scheme := range []oamem.Scheme{oamem.NoRecl, oamem.OA, oamem.HP, oamem.EBR} {
			set, err := mk(opt, oamem.WithScheme(scheme))
			if err != nil {
				t.Fatalf("%s/%v: %v", name, scheme, err)
			}
			s, err := set.Acquire()
			if err != nil {
				t.Fatalf("%s/%v: Acquire: %v", name, scheme, err)
			}
			if !s.Insert(7) || !s.Contains(7) || s.Insert(7) || !s.Delete(7) || s.Contains(7) {
				t.Fatalf("%s/%v: set semantics broken", name, scheme)
			}
			s.Release()
			if set.Scheme() != scheme {
				t.Fatalf("%s/%v: reports scheme %v", name, scheme, set.Scheme())
			}
		}
	}
}

func TestAnchorsListOnly(t *testing.T) {
	opt := oamem.Options{Threads: 2, Capacity: 4096}
	if _, err := oamem.List(opt, oamem.WithScheme(oamem.Anchors)); err != nil {
		t.Fatalf("anchors list: %v", err)
	}
	if _, err := oamem.HashSet(opt, oamem.WithScheme(oamem.Anchors)); !errors.Is(err, oamem.ErrInvalidOptions) {
		t.Fatalf("anchors hash set: %v, want ErrInvalidOptions", err)
	}
	if _, err := oamem.SkipList(opt, oamem.WithScheme(oamem.Anchors)); !errors.Is(err, oamem.ErrInvalidOptions) {
		t.Fatalf("anchors skip list: %v, want ErrInvalidOptions", err)
	}
}

func TestUnknownScheme(t *testing.T) {
	opt := oamem.Options{Threads: 1, Capacity: 1024}
	for name, mk := range constructors() {
		if _, err := mk(opt, oamem.WithScheme(oamem.Scheme(99))); !errors.Is(err, oamem.ErrInvalidOptions) {
			t.Fatalf("%s: unknown scheme: %v, want ErrInvalidOptions", name, err)
		}
	}
}

func TestConcurrentSessionsThroughPublicAPI(t *testing.T) {
	set, err := oamem.HashSet(
		oamem.WithThreads(4),
		oamem.WithCapacity(1<<14),
		oamem.WithExpected(1024),
	)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s, err := set.Acquire()
			if err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			defer s.Release()
			base := uint64(id) << 32
			for i := uint64(1); i <= 2000; i++ {
				k := base + i
				if !s.Insert(k) {
					t.Errorf("insert %d", k)
					return
				}
				if !s.Delete(k) {
					t.Errorf("delete %d", k)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if set.Stats().Allocs == 0 {
		t.Fatal("stats not plumbed")
	}
}

func TestStatsTypeAlias(t *testing.T) {
	var s oamem.Stats
	s.Add(oamem.Stats{Allocs: 2})
	if s.Allocs != 2 {
		t.Fatal("Stats alias broken")
	}
}
