package oamem

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ebr"
	"repro/internal/hpscheme"
	"repro/internal/kvmap"
	"repro/internal/norecl"
	"repro/internal/queue"
	"repro/internal/skiplist"
	"repro/internal/smr"
)

// Queue is a concurrent FIFO queue of uint64 values (Michael-Scott).
type Queue = smr.Queue

// QueueSession is the per-goroutine handle of a Queue.
type QueueSession = smr.QueueSession

// NewQueue builds a Michael-Scott FIFO queue under the given scheme. Under
// OA, Capacity bounds the element backlog (plus slack δ); producers must
// apply admission control if consumers can fall arbitrarily behind.
func NewQueue(scheme Scheme, o Options) (Queue, error) {
	switch scheme {
	case NoRecl:
		return queue.NewNoRecl(norecl.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool}), nil
	case OA:
		return queue.NewOA(core.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool}), nil
	case HP:
		return queue.NewHP(hpscheme.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool, ScanThreshold: o.ScanThreshold}), nil
	case EBR:
		return queue.NewEBR(ebr.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool, OpsPerScan: 10 * o.ScanThreshold}), nil
	case Anchors:
		return nil, fmt.Errorf("oamem: anchors is implemented for the linked list only (as in the paper)")
	default:
		return nil, fmt.Errorf("oamem: unknown scheme %v", scheme)
	}
}

// OrderedSet is the OA skip list with range-scan support: ScanSession(tid)
// returns a session whose RangeScan visits keys in ascending order with
// weak (snapshot-free) consistency.
type OrderedSet = skiplist.OASkipList

// NewOrderedSet builds an ordered set under the optimistic access scheme.
func NewOrderedSet(o Options) *OrderedSet {
	return skiplist.NewOA(core.Config{
		MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool,
	})
}

// Map is a lock-free uint64→uint64 hash map under the optimistic access
// scheme (the library extension beyond the paper's sets).
type Map = kvmap.Map

// MapSession is the per-goroutine handle of a Map.
type MapSession = kvmap.Session

// NewMap builds a hash map under the optimistic access scheme, sized for
// expected entries.
func NewMap(o Options, expected int) *Map {
	return kvmap.New(core.Config{
		MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool,
	}, expected)
}
