package oamem

import (
	"repro/internal/core"
	"repro/internal/ebr"
	"repro/internal/hpscheme"
	"repro/internal/kvmap"
	"repro/internal/norecl"
	"repro/internal/queue"
	"repro/internal/skiplist"
	"repro/internal/smr"
)

// buildQueue constructs the raw FIFO queue for a resolved config.
func buildQueue(c config) (smr.Queue, error) {
	o := c.o
	switch c.scheme {
	case NoRecl:
		return queue.NewNoRecl(norecl.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool}), nil
	case OA:
		return queue.NewOA(core.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool}), nil
	case HP:
		return queue.NewHP(hpscheme.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool, ScanThreshold: o.ScanThreshold}), nil
	case EBR:
		return queue.NewEBR(ebr.Config{MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool, OpsPerScan: 10 * o.ScanThreshold}), nil
	case Anchors:
		return nil, badOption("anchors is implemented for the linked list only (as in the paper); scheme %v", c.scheme)
	default:
		return nil, badOption("unknown scheme %v", c.scheme)
	}
}

// FIFO builds a Michael-Scott FIFO queue with session leasing. Under OA,
// Capacity bounds the element backlog (plus slack δ); producers must
// apply admission control if consumers can fall arbitrarily behind.
func FIFO(opts ...Option) (*Queue, error) {
	c, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	raw, err := buildQueue(c)
	if err != nil {
		return nil, err
	}
	return newQueue(raw, c.o.threads()), nil
}

// Ordered builds a skip-list ordered set under the optimistic access
// scheme: leased ScanSessions support RangeScan, which visits keys in
// ascending order with weak (snapshot-free) consistency.
func Ordered(opts ...Option) (*OrderedSet, error) {
	c, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	if c.scheme != OA {
		return nil, badOption("ordered range scans are implemented under the OA scheme only; scheme %v", c.scheme)
	}
	o := c.o
	sl := skiplist.NewOA(core.Config{
		MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool,
	})
	return &OrderedSet{OASkipList: sl, raw: make([]skiplist.ScanSession, o.threads())}, nil
}

// Map is a lock-free uint64→uint64 hash map under the optimistic access
// scheme (the library extension beyond the paper's sets). Its sessions
// lease natively: Map.Acquire / MapSession.Release.
type Map = kvmap.Map

// MapSession is the leased per-goroutine handle of a Map.
type MapSession = kvmap.Session

// KV builds a hash map under the optimistic access scheme. Size the key
// space with WithExpected (default: half the capacity). This is the
// structure the network server in internal/server serves.
func KV(opts ...Option) (*Map, error) {
	c, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	if c.scheme != OA {
		return nil, badOption("the kv map is implemented under the OA scheme only; scheme %v", c.scheme)
	}
	o := c.o
	return kvmap.New(core.Config{
		MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool,
	}, c.expected), nil
}

// ShardedMap partitions a uint64→uint64 keyspace across power-of-two
// independent Map instances routed by key hash. Each shard is its own
// OA universe — arena, session registry, reclamation phases — so a
// reclamation stall in one shard never fences operations in another.
type ShardedMap = kvmap.Sharded

// ShardedKV builds a hash map partitioned across per-core shards (see
// WithServerShards). Threads is the per-shard session registry size —
// a server connection may lease a session on every shard it touches.
// Capacity and Expected are totals divided across the shards, so the
// node budget is constant as the shard count varies.
func ShardedKV(opts ...Option) (*ShardedMap, error) {
	c, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	if c.scheme != OA {
		return nil, badOption("the kv map is implemented under the OA scheme only; scheme %v", c.scheme)
	}
	o := c.o
	return kvmap.NewSharded(core.Config{
		MaxThreads: o.threads(), Capacity: o.Capacity, LocalPool: o.LocalPool,
	}, c.expected, c.shards), nil
}
