package oamem_test

import (
	"errors"
	"testing"
	"time"

	"repro/oamem"
)

// TestPublicCache covers the Cache constructor end to end: default-TTL
// expiry, per-key TTL override, TTL introspection and LRU pressure
// eviction, all through leased CacheSessions.
func TestPublicCache(t *testing.T) {
	c, err := oamem.Cache(
		oamem.WithThreads(2),
		oamem.WithCapacity(1<<14),
		oamem.WithTTL(40*time.Millisecond),
		oamem.WithEvictionPolicy(oamem.EvictLRU(256)),
		oamem.WithSweepInterval(-1), // lazy expiry only: deterministic counters
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()

	if err := s.Set(1, 100); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get(1); !ok || v != 100 {
		t.Fatalf("Get = %d,%v want 100,true", v, ok)
	}
	if remaining, hasTTL, ok := s.TTL(1); !ok || !hasTTL || remaining <= 0 || remaining > 40*time.Millisecond {
		t.Fatalf("TTL = %v,%v,%v", remaining, hasTTL, ok)
	}
	// A key set with NoExpiry never dies.
	if err := s.SetTTL(2, 200, oamem.NoExpiry); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	if _, ok := s.Get(1); ok {
		t.Fatal("key 1 outlived its default TTL")
	}
	if v, ok := s.Get(2); !ok || v != 200 {
		t.Fatalf("NoExpiry key lost: %d,%v", v, ok)
	}
	if st := c.Stats(); st.Expired == 0 {
		t.Fatalf("expiry not counted: %+v", st)
	}

	// Push past the LRU watermark: the cache sheds entries instead of
	// growing without bound.
	for k := uint64(10); k < 10+600; k++ {
		if err := s.SetTTL(k, k, oamem.NoExpiry); err != nil {
			t.Fatalf("SetTTL(%d): %v", k, err)
		}
	}
	st := c.Stats()
	if st.Evicted == 0 {
		t.Fatalf("no evictions past the watermark: %+v", st)
	}
	if st.Live > 300 {
		t.Fatalf("live %d far above watermark 256: %+v", st.Live, st)
	}
}

// TestPublicCacheSchemeRejected pins the OA-only constraint.
func TestPublicCacheSchemeRejected(t *testing.T) {
	if _, err := oamem.Cache(oamem.WithScheme(oamem.HP)); !errors.Is(err, oamem.ErrInvalidOptions) {
		t.Fatalf("non-OA cache: %v, want ErrInvalidOptions", err)
	}
}
