package oamem

import (
	"sync/atomic"

	"repro/internal/lease"
	"repro/internal/skiplist"
	"repro/internal/smr"
)

// Structure is a concurrent set (list, hash set or skip list) plus the
// session registry that multiplexes goroutines onto its fixed thread
// contexts. Acquire leases a session for the calling goroutine.
// (Benchmark harnesses with pinned workers bind fixed slots through the
// internal smr.Set interface instead; the public surface leases only.)
type Structure struct {
	set    smr.Set
	lessor *lease.Registry
	// raw caches the underlying per-context session of each slot: scheme
	// sessions carry per-thread state (a pending pre-allocated node,
	// anchor scratch), so a context's session must survive lease churn
	// rather than be rebuilt per lease. A slot's cache entry is written
	// while its lease is held and republished by the registry's CAS
	// (Release happens-before the next Acquire of the same slot).
	raw []smr.Session
}

func newStructure(set smr.Set, threads int) *Structure {
	return &Structure{
		set:    set,
		lessor: lease.NewRegistry(threads),
		raw:    make([]smr.Session, threads),
	}
}

// Acquire leases a session for the calling goroutine. It fails with
// ErrNoFreeSessions while all Threads slots are leased and with
// ErrClosed after Close. The session must be used by one goroutine at a
// time and returned with Release when the goroutine is done.
func (st *Structure) Acquire() (*Session, error) {
	tid, err := st.lessor.Acquire()
	if err != nil {
		return nil, err
	}
	raw := st.raw[tid]
	if raw == nil {
		raw = st.set.Session(tid)
		st.raw[tid] = raw
	}
	return &Session{Session: raw, st: st, tid: tid}, nil
}

// Stats returns scheme counters aggregated over all threads.
func (st *Structure) Stats() Stats { return st.set.Stats() }

// Scheme reports which reclamation scheme backs the structure.
func (st *Structure) Scheme() Scheme { return st.set.Scheme() }

// Threads returns the session registry size.
func (st *Structure) Threads() int { return st.lessor.Cap() }

// SessionsLeased returns how many sessions are currently leased.
func (st *Structure) SessionsLeased() int { return st.lessor.Leased() }

// Close marks the structure closed: Acquire fails with ErrClosed from
// then on, while already-leased sessions stay valid until Released (the
// graceful-drain order: Close, finish in-flight work, Release).
func (st *Structure) Close() { st.lessor.Close() }

// Session is a leased per-goroutine handle of a Structure: the set
// operations plus the lease. It must be used by a single goroutine at a
// time and Released exactly once.
type Session struct {
	smr.Session
	st       *Structure
	tid      int
	released atomic.Bool
}

// TID returns the leased thread context id (0..Threads-1).
func (s *Session) TID() int { return s.tid }

// Release returns the session's slot to the registry. It panics on a
// second call: a double release would hand one SMR thread context to two
// goroutines, silently corrupting hazard-pointer and warning state.
func (s *Session) Release() {
	if s.released.Swap(true) {
		panic("oamem: double Release of Session")
	}
	s.st.lessor.Release(s.tid)
}

// Queue is a concurrent FIFO queue of uint64 values (Michael-Scott)
// plus its session registry.
type Queue struct {
	q      smr.Queue
	lessor *lease.Registry
	raw    []smr.QueueSession
}

func newQueue(q smr.Queue, threads int) *Queue {
	return &Queue{
		q:      q,
		lessor: lease.NewRegistry(threads),
		raw:    make([]smr.QueueSession, threads),
	}
}

// Acquire leases a queue session for the calling goroutine; see
// Structure.Acquire for the error and ownership contract.
func (q *Queue) Acquire() (*QueueSession, error) {
	tid, err := q.lessor.Acquire()
	if err != nil {
		return nil, err
	}
	raw := q.raw[tid]
	if raw == nil {
		raw = q.q.QueueSession(tid)
		q.raw[tid] = raw
	}
	return &QueueSession{QueueSession: raw, q: q, tid: tid}, nil
}

// Stats returns scheme counters aggregated over all threads.
func (q *Queue) Stats() Stats { return q.q.Stats() }

// Scheme reports which reclamation scheme backs the queue.
func (q *Queue) Scheme() Scheme { return q.q.Scheme() }

// Threads returns the session registry size.
func (q *Queue) Threads() int { return q.lessor.Cap() }

// Close marks the queue closed; see Structure.Close.
func (q *Queue) Close() { q.lessor.Close() }

// QueueSession is a leased per-goroutine handle of a Queue.
type QueueSession struct {
	smr.QueueSession
	q        *Queue
	tid      int
	released atomic.Bool
}

// TID returns the leased thread context id.
func (s *QueueSession) TID() int { return s.tid }

// Release returns the session's slot; it panics on a second call.
func (s *QueueSession) Release() {
	if s.released.Swap(true) {
		panic("oamem: double Release of QueueSession")
	}
	s.q.lessor.Release(s.tid)
}

// OrderedSet is the OA skip list with range-scan support plus session
// leasing. It leases through the core manager's registry (the session
// lease hooks the network server also uses), so SessionsLeased shows up
// on the manager's observability gauges.
type OrderedSet struct {
	*skiplist.OASkipList
	raw []skiplist.ScanSession
}

// Acquire leases a scan-capable session for the calling goroutine; see
// Structure.Acquire for the error and ownership contract.
func (o *OrderedSet) Acquire() (*ScanSession, error) {
	tid, err := o.Manager().Lessor().Acquire()
	if err != nil {
		return nil, err
	}
	raw := o.raw[tid]
	if raw == nil {
		raw = o.ScanSession(tid)
		o.raw[tid] = raw
	}
	return &ScanSession{ScanSession: raw, o: o, tid: tid}, nil
}

// Close marks the ordered set closed; see Structure.Close.
func (o *OrderedSet) Close() { o.Manager().Close() }

// ScanSession is a leased per-goroutine handle of an OrderedSet: the set
// operations, ordered RangeScan, and the lease.
type ScanSession struct {
	skiplist.ScanSession
	o        *OrderedSet
	tid      int
	released atomic.Bool
}

// TID returns the leased thread context id.
func (s *ScanSession) TID() int { return s.tid }

// Release returns the session's slot; it panics on a second call.
func (s *ScanSession) Release() {
	if s.released.Swap(true) {
		panic("oamem: double Release of ScanSession")
	}
	s.o.Manager().Lessor().Release(s.tid)
}
