package oamem

import (
	"repro/internal/lease"
	"repro/internal/oaerr"
)

// The package's complete typed error surface. Every sentinel here is the
// same value the internal layers return — errors.Is matches whether a
// caller got the error from this package, from a structure session, from
// a recovered allocator panic, or (through internal/server.SentinelOf)
// from a network status code. There are nine sentinels in three groups:
// session economy (ErrNoFreeSessions, ErrClosed, ErrCapacityExhausted),
// construction (ErrInvalidOptions), and request outcomes shared with the
// wire protocols (ErrNotFound, ErrCASMismatch, ErrBadRequest,
// ErrFrameTooLarge, ErrValueTooLarge).
var (
	// ErrNoFreeSessions is returned by every Acquire when all Threads
	// session slots are currently leased. It is a load condition, not a
	// programming error: back off and retry, queue, or shed the caller.
	// The registry recycles slots as soon as holders Release, so any
	// number of goroutines can multiplex onto the fixed registry over
	// time — just not simultaneously.
	ErrNoFreeSessions = lease.ErrNoFreeSessions

	// ErrClosed is returned by Acquire after the structure's Close.
	// Sessions leased before Close stay valid until Released, which is
	// what lets a draining server finish in-flight work first.
	ErrClosed = lease.ErrClosed

	// ErrCapacityExhausted reports that a structure's fixed node budget
	// (under OA, Capacity = peak live set + reclamation slack δ) cannot
	// admit more keys. Admission-control layers (and CacheSession.Set
	// after eviction relief fails) return it before the allocator
	// starves; if the budget is truly overrun, the allocator panics with
	// an error value wrapping this sentinel, so a recover handler can
	// classify the failure with errors.Is.
	ErrCapacityExhausted = lease.ErrCapacityExhausted

	// ErrInvalidOptions is wrapped by every constructor error that
	// rejects its options (negative sizes, a scheme the structure does
	// not support, an unknown scheme). The returned error's message
	// names the offending field and value.
	ErrInvalidOptions = oaerr.ErrInvalidOptions

	// ErrNotFound reports a lookup missed: the key is absent, or — for a
	// Cache — present but past its TTL deadline. The binary protocol's
	// NOT_FOUND status and the RESP nil bulk map onto it.
	ErrNotFound = oaerr.ErrNotFound

	// ErrCASMismatch reports a compare-and-swap found the key but the
	// current value differed from the expected one.
	ErrCASMismatch = oaerr.ErrCASMismatch

	// ErrBadRequest reports a malformed or unknown request (bad opcode,
	// RESP protocol error, wrong arity). Servers answer it without
	// cutting the connection when the stream is still in sync.
	ErrBadRequest = oaerr.ErrBadRequest

	// ErrFrameTooLarge reports a protocol frame or RESP command exceeded
	// the configured limits. The connection is cut afterwards because
	// the stream cannot be resynchronized.
	ErrFrameTooLarge = oaerr.ErrFrameTooLarge

	// ErrValueTooLarge reports a value does not fit the u64-packed store
	// (RESP values are at most 7 bytes, {len:1B | bytes:7B}).
	ErrValueTooLarge = oaerr.ErrValueTooLarge
)
