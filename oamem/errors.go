package oamem

import "repro/internal/lease"

// Typed sentinel errors. They are the same values the internal layers
// return, so errors.Is matches whether a caller got the error from this
// package, from a *Map (package kvmap) or from the network server.
var (
	// ErrNoFreeSessions is returned by every Acquire when all Threads
	// session slots are currently leased. It is a load condition, not a
	// programming error: back off and retry, queue, or shed the caller.
	// The registry recycles slots as soon as holders Release, so any
	// number of goroutines can multiplex onto the fixed registry over
	// time — just not simultaneously.
	ErrNoFreeSessions = lease.ErrNoFreeSessions

	// ErrClosed is returned by Acquire after the structure's Close.
	// Sessions leased before Close stay valid until Released, which is
	// what lets a draining server finish in-flight work first.
	ErrClosed = lease.ErrClosed

	// ErrCapacityExhausted reports that a structure's fixed node budget
	// (under OA, Capacity = peak live set + reclamation slack δ) cannot
	// admit more keys. Admission-control layers return it before the
	// allocator starves; if the budget is truly overrun, the allocator
	// panics with an error value wrapping this sentinel, so a recover
	// handler can classify the failure with errors.Is.
	ErrCapacityExhausted = lease.ErrCapacityExhausted
)
