package oamem

import (
	"fmt"
	"time"

	"repro/internal/oaerr"
)

// Option configures a constructor. Options are applied in order, so a
// later option overrides an earlier one; the Options struct itself
// satisfies Option (its non-zero fields apply), which keeps struct-style
// call sites compiling against the functional constructors.
type Option interface {
	applyOption(*config)
}

type optionFunc func(*config)

func (f optionFunc) applyOption(c *config) { f(c) }

// config is the resolved constructor configuration.
type config struct {
	o        Options
	scheme   Scheme
	expected int
	shards   int

	// Cache-only knobs (see Cache).
	ttl        time.Duration
	maxEntries int
	sweep      time.Duration
}

// applyOption merges the struct's non-zero fields, making the Options
// struct usable wherever an Option is expected.
func (o Options) applyOption(c *config) {
	if o.Threads != 0 {
		c.o.Threads = o.Threads
	}
	if o.Capacity != 0 {
		c.o.Capacity = o.Capacity
	}
	if o.LocalPool != 0 {
		c.o.LocalPool = o.LocalPool
	}
	if o.ScanThreshold != 0 {
		c.o.ScanThreshold = o.ScanThreshold
	}
	if o.AnchorsK != 0 {
		c.o.AnchorsK = o.AnchorsK
	}
}

// WithScheme selects the reclamation scheme (default OA, the paper's
// contribution).
func WithScheme(s Scheme) Option { return optionFunc(func(c *config) { c.scheme = s }) }

// WithThreads sets the session registry size: the maximum number of
// concurrently leased sessions (and the fixed thread-context count every
// scheme's algorithms are specified against). Default 1.
func WithThreads(n int) Option { return optionFunc(func(c *config) { c.o.Threads = n }) }

// WithCapacity sets the node budget. Under OA this is a hard limit: size
// it as the peak live set plus a reclamation slack δ (the paper uses
// δ ≈ 8,000–50,000; more δ means fewer reclamation phases). Other
// schemes grow past it on demand.
func WithCapacity(n int) Option { return optionFunc(func(c *config) { c.o.Capacity = n }) }

// WithLocalPool sets the per-thread transfer block size, 1..126
// (126 default, the paper's choice).
func WithLocalPool(n int) Option { return optionFunc(func(c *config) { c.o.LocalPool = n }) }

// WithScanThreshold tunes HP (retires per scan) and Anchors; EBR uses
// 10× this as its operations-per-scan. Zero picks scheme defaults.
func WithScanThreshold(n int) Option {
	return optionFunc(func(c *config) { c.o.ScanThreshold = n })
}

// WithAnchorsK sets the anchors scheme's fence amortization distance
// (1000 default, as in the paper).
func WithAnchorsK(k int) Option { return optionFunc(func(c *config) { c.o.AnchorsK = k }) }

// WithExpected sizes hash-based structures (HashSet, KV, Cache) for the
// given expected element count. Defaults to half the capacity (a hash
// table at the paper's 0.75 load factor comfortably holds that live set).
func WithExpected(n int) Option { return optionFunc(func(c *config) { c.expected = n }) }

// WithServerShards sets the shard count for ShardedKV: the keyspace is
// partitioned across that many independent map instances (rounded up to
// a power of two), each with its own node budget, session registry and
// reclamation phases. Zero (the default) picks one shard per core:
// NextPow2(min(Threads, GOMAXPROCS)). Capacity and Expected are totals,
// divided evenly across the shards.
func WithServerShards(n int) Option { return optionFunc(func(c *config) { c.shards = n }) }

// WithTTL sets a Cache's default time-to-live, applied by Set (and by
// SetTTL with ttl 0). Zero — the default — means entries do not expire
// unless SetTTL/Expire give them an explicit deadline.
func WithTTL(d time.Duration) Option { return optionFunc(func(c *config) { c.ttl = d }) }

// EvictionPolicy selects how a Cache sheds entries under memory
// pressure. Construct one with EvictLRU.
type EvictionPolicy struct {
	maxEntries int
}

// EvictLRU evicts the (approximately) least-recently-used entries,
// sampled per bucket, once the cache holds more than maxEntries live
// entries — and, regardless of the watermark, whenever an insert hits
// the node budget (eviction instead of ErrCapacityExhausted).
// maxEntries 0 leaves only the capacity-pressure eviction.
func EvictLRU(maxEntries int) EvictionPolicy {
	return EvictionPolicy{maxEntries: maxEntries}
}

// WithEvictionPolicy sets a Cache's eviction policy (see EvictLRU).
// Without it a full cache fails Set with ErrCapacityExhausted after
// expiry sweeping alone cannot free space.
func WithEvictionPolicy(p EvictionPolicy) Option {
	return optionFunc(func(c *config) { c.maxEntries = p.maxEntries })
}

// WithSweepInterval sets how often a Cache's background sweeper scans
// for expired entries. Zero (the default) picks one second; a negative
// value disables the sweeper, leaving expiry purely lazy (reads reap
// dead entries; Set relieves pressure on demand).
func WithSweepInterval(d time.Duration) Option {
	return optionFunc(func(c *config) { c.sweep = d })
}

// badOption builds a constructor error wrapping ErrInvalidOptions.
func badOption(format string, args ...any) error {
	return fmt.Errorf("oamem: "+format+": %w", append(args, oaerr.ErrInvalidOptions)...)
}

// resolve folds the options over the defaults and validates them.
func resolve(opts []Option) (config, error) {
	c := config{scheme: OA}
	for _, opt := range opts {
		if opt != nil {
			opt.applyOption(&c)
		}
	}
	if c.o.Threads < 0 {
		return c, badOption("negative Threads %d", c.o.Threads)
	}
	if c.o.Capacity < 0 {
		return c, badOption("negative Capacity %d", c.o.Capacity)
	}
	if c.expected < 0 {
		return c, badOption("negative Expected %d", c.expected)
	}
	if c.shards < 0 {
		return c, badOption("negative ServerShards %d", c.shards)
	}
	if c.ttl < 0 {
		return c, badOption("negative TTL %v", c.ttl)
	}
	if c.maxEntries < 0 {
		return c, badOption("negative EvictLRU maxEntries %d", c.maxEntries)
	}
	if c.expected == 0 {
		if c.o.Capacity > 0 {
			c.expected = c.o.Capacity / 2
		}
		if c.expected < 1024 {
			c.expected = 1024
		}
	}
	return c, nil
}
