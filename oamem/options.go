package oamem

import "fmt"

// Option configures a constructor. Options are applied in order, so a
// later option overrides an earlier one; the deprecated Options struct
// itself satisfies Option (its non-zero fields apply), which is what
// keeps pre-leasing call sites compiling against the new constructors.
type Option interface {
	applyOption(*config)
}

type optionFunc func(*config)

func (f optionFunc) applyOption(c *config) { f(c) }

// config is the resolved constructor configuration.
type config struct {
	o        Options
	scheme   Scheme
	expected int
	shards   int
}

// applyOption merges the struct's non-zero fields, making the deprecated
// Options struct usable wherever an Option is expected.
func (o Options) applyOption(c *config) {
	if o.Threads != 0 {
		c.o.Threads = o.Threads
	}
	if o.Capacity != 0 {
		c.o.Capacity = o.Capacity
	}
	if o.LocalPool != 0 {
		c.o.LocalPool = o.LocalPool
	}
	if o.ScanThreshold != 0 {
		c.o.ScanThreshold = o.ScanThreshold
	}
	if o.AnchorsK != 0 {
		c.o.AnchorsK = o.AnchorsK
	}
}

// WithScheme selects the reclamation scheme (default OA, the paper's
// contribution).
func WithScheme(s Scheme) Option { return optionFunc(func(c *config) { c.scheme = s }) }

// WithThreads sets the session registry size: the maximum number of
// concurrently leased sessions (and the fixed thread-context count every
// scheme's algorithms are specified against). Default 1.
func WithThreads(n int) Option { return optionFunc(func(c *config) { c.o.Threads = n }) }

// WithCapacity sets the node budget. Under OA this is a hard limit: size
// it as the peak live set plus a reclamation slack δ (the paper uses
// δ ≈ 8,000–50,000; more δ means fewer reclamation phases). Other
// schemes grow past it on demand.
func WithCapacity(n int) Option { return optionFunc(func(c *config) { c.o.Capacity = n }) }

// WithLocalPool sets the per-thread transfer block size, 1..126
// (126 default, the paper's choice).
func WithLocalPool(n int) Option { return optionFunc(func(c *config) { c.o.LocalPool = n }) }

// WithScanThreshold tunes HP (retires per scan) and Anchors; EBR uses
// 10× this as its operations-per-scan. Zero picks scheme defaults.
func WithScanThreshold(n int) Option {
	return optionFunc(func(c *config) { c.o.ScanThreshold = n })
}

// WithAnchorsK sets the anchors scheme's fence amortization distance
// (1000 default, as in the paper).
func WithAnchorsK(k int) Option { return optionFunc(func(c *config) { c.o.AnchorsK = k }) }

// WithExpected sizes hash-based structures (HashSet, KV) for the given
// expected element count. Defaults to half the capacity (a hash table
// at the paper's 0.75 load factor comfortably holds that live set).
func WithExpected(n int) Option { return optionFunc(func(c *config) { c.expected = n }) }

// WithServerShards sets the shard count for ShardedKV: the keyspace is
// partitioned across that many independent map instances (rounded up to
// a power of two), each with its own node budget, session registry and
// reclamation phases. Zero (the default) picks one shard per core:
// NextPow2(min(Threads, GOMAXPROCS)). Capacity and Expected are totals,
// divided evenly across the shards.
func WithServerShards(n int) Option { return optionFunc(func(c *config) { c.shards = n }) }

// resolve folds the options over the defaults and validates them.
func resolve(opts []Option) (config, error) {
	c := config{scheme: OA}
	for _, opt := range opts {
		if opt != nil {
			opt.applyOption(&c)
		}
	}
	if c.o.Threads < 0 {
		return c, fmt.Errorf("oamem: negative Threads %d", c.o.Threads)
	}
	if c.o.Capacity < 0 {
		return c, fmt.Errorf("oamem: negative Capacity %d", c.o.Capacity)
	}
	if c.expected < 0 {
		return c, fmt.Errorf("oamem: negative Expected %d", c.expected)
	}
	if c.shards < 0 {
		return c, fmt.Errorf("oamem: negative ServerShards %d", c.shards)
	}
	if c.expected == 0 {
		if c.o.Capacity > 0 {
			c.expected = c.o.Capacity / 2
		}
		if c.expected < 1024 {
			c.expected = 1024
		}
	}
	return c, nil
}
