package oamem_test

import (
	"errors"
	"testing"

	"repro/oamem"
)

func TestPublicQueue(t *testing.T) {
	for _, scheme := range []oamem.Scheme{oamem.NoRecl, oamem.OA, oamem.HP, oamem.EBR} {
		q, err := oamem.FIFO(
			oamem.WithScheme(scheme),
			oamem.WithThreads(2),
			oamem.WithCapacity(4096),
		)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		s, err := q.Acquire()
		if err != nil {
			t.Fatalf("%v: Acquire: %v", scheme, err)
		}
		for i := uint64(1); i <= 100; i++ {
			s.Enqueue(i)
		}
		for i := uint64(1); i <= 100; i++ {
			v, ok := s.Dequeue()
			if !ok || v != i {
				t.Fatalf("%v: Dequeue = %d,%v want %d", scheme, v, ok, i)
			}
		}
		if _, ok := s.Dequeue(); ok {
			t.Fatalf("%v: drained queue not empty", scheme)
		}
		s.Release()
		if q.Scheme() != scheme {
			t.Fatalf("scheme = %v", q.Scheme())
		}
	}
	if _, err := oamem.FIFO(oamem.WithScheme(oamem.Anchors), oamem.WithCapacity(256)); !errors.Is(err, oamem.ErrInvalidOptions) {
		t.Fatalf("anchors queue: %v, want ErrInvalidOptions", err)
	}
	if _, err := oamem.FIFO(oamem.WithScheme(oamem.Scheme(99)), oamem.WithCapacity(256)); !errors.Is(err, oamem.ErrInvalidOptions) {
		t.Fatalf("unknown scheme: %v, want ErrInvalidOptions", err)
	}
}

func TestPublicMap(t *testing.T) {
	m, err := oamem.KV(oamem.WithThreads(2), oamem.WithCapacity(8192), oamem.WithExpected(512))
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	if prev, had := s.Put(10, 1); had || prev != 0 {
		t.Fatal("fresh Put")
	}
	if v, ok := s.Get(10); !ok || v != 1 {
		t.Fatal("Get")
	}
	if prev, had := s.Put(10, 2); !had || prev != 1 {
		t.Fatal("overwrite Put")
	}
	if v, ok := s.Remove(10); !ok || v != 2 {
		t.Fatal("Remove")
	}
	if _, ok := s.Get(10); ok {
		t.Fatal("zombie")
	}
	if m.Stats().Allocs == 0 {
		t.Fatal("stats")
	}
}

func TestPublicShardedKV(t *testing.T) {
	sh, err := oamem.ShardedKV(
		oamem.WithThreads(2),
		oamem.WithCapacity(1<<14),
		oamem.WithExpected(1<<12),
		oamem.WithServerShards(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	if sh.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", sh.NumShards())
	}
	if sh.SessionsCap() != 8 {
		t.Fatalf("SessionsCap = %d, want 4 shards x 2 threads = 8", sh.SessionsCap())
	}
	sessions := make([]*oamem.MapSession, 4)
	for i := range sessions {
		s, err := sh.Shard(i).Acquire()
		if err != nil {
			t.Fatal(err)
		}
		defer s.Release()
		sessions[i] = s
	}
	for k := uint64(1); k <= 100; k++ {
		sessions[sh.ShardIndex(k)].Put(k, k*3)
	}
	for k := uint64(1); k <= 100; k++ {
		if v, ok := sessions[sh.ShardIndex(k)].Get(k); !ok || v != k*3 {
			t.Fatalf("key %d: %d/%v", k, v, ok)
		}
	}

	if _, err := oamem.ShardedKV(oamem.WithScheme(oamem.HP)); err == nil {
		t.Fatal("ShardedKV accepted a non-OA scheme")
	}
	if _, err := oamem.ShardedKV(oamem.WithServerShards(-1)); err == nil {
		t.Fatal("ShardedKV accepted negative shards")
	}

	// Default shard count: one per core, capped by the registry size.
	d, err := oamem.ShardedKV(oamem.WithThreads(1), oamem.WithCapacity(1<<12))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.NumShards() != 1 {
		t.Fatalf("default shards with Threads=1 = %d, want 1", d.NumShards())
	}
}
