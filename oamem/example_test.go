package oamem_test

import (
	"errors"
	"fmt"

	"repro/oamem"
)

// The canonical workflow: construct a structure with functional options,
// then lease each goroutine a session with Acquire and return it with
// Release.
func ExampleHashSet() {
	set, err := oamem.HashSet(
		oamem.WithThreads(2),
		oamem.WithCapacity(1<<12),
		oamem.WithExpected(1024),
	)
	if err != nil {
		panic(err)
	}
	s, err := set.Acquire()
	if err != nil {
		panic(err)
	}
	defer s.Release()
	fmt.Println(s.Insert(7))
	fmt.Println(s.Contains(7))
	fmt.Println(s.Delete(7))
	fmt.Println(s.Contains(7))
	// Output:
	// true
	// true
	// true
	// false
}

// Acquire fails fast with typed errors: ErrNoFreeSessions while every
// slot is leased, ErrClosed after Close.
func ExampleStructure_Acquire() {
	set, err := oamem.List(oamem.WithThreads(1), oamem.WithCapacity(1024))
	if err != nil {
		panic(err)
	}
	s, _ := set.Acquire()
	_, err = set.Acquire()
	fmt.Println(errors.Is(err, oamem.ErrNoFreeSessions))
	s.Release()
	set.Close()
	_, err = set.Acquire()
	fmt.Println(errors.Is(err, oamem.ErrClosed))
	// Output:
	// true
	// true
}

func ExampleList() {
	// The anchors scheme exists for the linked list only, as in the paper.
	set, err := oamem.List(
		oamem.WithScheme(oamem.Anchors),
		oamem.WithCapacity(4096),
	)
	if err != nil {
		panic(err)
	}
	s, err := set.Acquire()
	if err != nil {
		panic(err)
	}
	defer s.Release()
	s.Insert(3)
	s.Insert(1)
	s.Insert(2)
	fmt.Println(s.Contains(1), s.Contains(2), s.Contains(3), s.Contains(4))
	// Output:
	// true true true false
}

func ExampleFIFO() {
	q, err := oamem.FIFO(oamem.WithCapacity(1024))
	if err != nil {
		panic(err)
	}
	s, err := q.Acquire()
	if err != nil {
		panic(err)
	}
	defer s.Release()
	s.Enqueue(10)
	s.Enqueue(20)
	v1, _ := s.Dequeue()
	v2, _ := s.Dequeue()
	_, ok := s.Dequeue()
	fmt.Println(v1, v2, ok)
	// Output:
	// 10 20 false
}

func ExampleKV() {
	m, err := oamem.KV(oamem.WithCapacity(4096), oamem.WithExpected(256))
	if err != nil {
		panic(err)
	}
	s, err := m.Acquire()
	if err != nil {
		panic(err)
	}
	defer s.Release()
	s.Put(1, 100)
	prev, had := s.Put(1, 200)
	v, ok := s.Get(1)
	swapped, _ := s.CompareAndSwap(1, 200, 300)
	fmt.Println(prev, had, v, ok, swapped)
	// Output:
	// 100 true 200 true true
}
