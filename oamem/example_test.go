package oamem_test

import (
	"fmt"

	"repro/oamem"
)

// The canonical workflow: construct a structure with a scheme and a node
// budget, then give each goroutine its own session.
func ExampleNewHashSet() {
	set, err := oamem.NewHashSet(oamem.OA, oamem.Options{
		Threads:  2,
		Capacity: 1 << 12,
	}, 1024)
	if err != nil {
		panic(err)
	}
	s := set.Session(0)
	fmt.Println(s.Insert(7))
	fmt.Println(s.Contains(7))
	fmt.Println(s.Delete(7))
	fmt.Println(s.Contains(7))
	// Output:
	// true
	// true
	// true
	// false
}

func ExampleNewList() {
	// The anchors scheme exists for the linked list only, as in the paper.
	set, err := oamem.NewList(oamem.Anchors, oamem.Options{
		Threads:  1,
		Capacity: 4096,
	})
	if err != nil {
		panic(err)
	}
	s := set.Session(0)
	s.Insert(3)
	s.Insert(1)
	s.Insert(2)
	fmt.Println(s.Contains(1), s.Contains(2), s.Contains(3), s.Contains(4))
	// Output:
	// true true true false
}

func ExampleNewQueue() {
	q, err := oamem.NewQueue(oamem.OA, oamem.Options{
		Threads:  1,
		Capacity: 1024,
	})
	if err != nil {
		panic(err)
	}
	s := q.QueueSession(0)
	s.Enqueue(10)
	s.Enqueue(20)
	v1, _ := s.Dequeue()
	v2, _ := s.Dequeue()
	_, ok := s.Dequeue()
	fmt.Println(v1, v2, ok)
	// Output:
	// 10 20 false
}

func ExampleNewMap() {
	m := oamem.NewMap(oamem.Options{Threads: 1, Capacity: 4096}, 256)
	s := m.Session(0)
	s.Put(1, 100)
	prev, had := s.Put(1, 200)
	v, ok := s.Get(1)
	fmt.Println(prev, had, v, ok)
	// Output:
	// 100 true 200 true
}
