package flight

import (
	"math"
	"sync/atomic"

	"repro/internal/trace"
)

// State classifies the process health.
type State uint32

const (
	StateOK State = iota
	StateDegraded
	StateCritical
)

// String returns the lowercase export name.
func (s State) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateDegraded:
		return "degraded"
	case StateCritical:
		return "critical"
	}
	return "unknown"
}

// Default rule thresholds (see DESIGN.md §11 for the full table).
const (
	// backlogFloor keeps the growth rule quiet until the retired
	// backlog is big enough to matter: growth must be sustained AND the
	// absolute backlog above this many slots.
	backlogFloor = 1024.0
	// satThreshold is the ring-saturation fraction (depth/capacity) at
	// which the saturation rule counts a tick as bad.
	satThreshold = 0.8
)

// rule is one declarative health check, evaluated every tick against
// the freshly sampled frame.
type rule struct {
	name      string
	severity  State
	threshold float64
	// active reports whether this tick violates the rule; ok=false
	// means the signal the rule needs is absent (rule disabled).
	active func(p *plan, cur, prev []float64, dt float64) (value float64, active, ok bool)
	// fire/clear hysteresis in ticks; filled from Config.
	fire, clear int
}

// ruleState is the mutable half: streaks are tick-goroutine-private,
// the rest is read concurrently by /healthz and the stats hook.
type ruleState struct {
	fireStreak  int
	clearStreak int
	firing      atomic.Bool
	value       atomic.Uint64 // float bits of the last evaluated value
	firedTotal  atomic.Uint64
	sinceNs     atomic.Int64 // wall time the current firing began
}

type health struct {
	r      *Recorder
	rules  []rule
	states []ruleState

	state       atomic.Uint32
	sinceNs     atomic.Int64 // wall time of the last state change
	transitions atomic.Uint64
}

func newHealth(r *Recorder) *health {
	cfg := r.cfg
	h := &health{r: r}
	add := func(ru rule) {
		ru.fire, ru.clear = cfg.FireTicks, cfg.ClearTicks
		h.rules = append(h.rules, ru)
	}
	add(rule{
		name: "backlog_growth", severity: StateDegraded, threshold: 0,
		active: func(p *plan, cur, prev []float64, dt float64) (float64, bool, bool) {
			if p.backlogIdx < 0 {
				return 0, false, false
			}
			growth := cur[p.dBacklog] // slots/sec, 0 on the first tick
			bad := cur[p.backlogIdx] > prev[p.backlogIdx] && cur[p.backlogIdx] >= backlogFloor
			return growth, bad, true
		},
	})
	add(rule{
		name: "ring_saturation", severity: StateDegraded, threshold: satThreshold,
		active: func(p *plan, cur, prev []float64, dt float64) (float64, bool, bool) {
			if p.ringCapIdx < 0 || len(p.depthIdxs) == 0 || cur[p.ringCapIdx] <= 0 {
				return 0, false, false
			}
			sat := cur[p.dSat]
			return sat, sat >= satThreshold, true
		},
	})
	add(rule{
		name: "phase_stalled", severity: StateCritical, threshold: 1,
		active: func(p *plan, cur, prev []float64, dt float64) (float64, bool, bool) {
			if p.frozenIdx < 0 {
				return 0, false, false
			}
			v := cur[p.frozenIdx]
			return v, v >= 1, true
		},
	})
	if cfg.SLOP99 > 0 {
		target := float64(cfg.SLOP99.Nanoseconds())
		add(rule{
			name: "slo_p99_burn", severity: StateDegraded, threshold: 1,
			active: func(p *plan, cur, prev []float64, dt float64) (float64, bool, bool) {
				worst := 0.0
				seen := false
				for _, ht := range p.hists {
					if !ht.cmdLat {
						continue
					}
					seen = true
					if v := cur[ht.seriesIdx]; v > worst {
						worst = v
					}
				}
				if !seen {
					return 0, false, false
				}
				burn := worst / target
				return burn, burn > 1, true
			},
		})
	}
	if cfg.SLOOps > 0 {
		floor := cfg.SLOOps
		add(rule{
			name: "slo_ops", severity: StateDegraded, threshold: floor,
			active: func(p *plan, cur, prev []float64, dt float64) (float64, bool, bool) {
				if p.opsIdx < 0 {
					return 0, false, false
				}
				rate := cur[p.dOps]
				return rate, rate < floor, true
			},
		})
	}
	h.states = make([]ruleState, len(h.rules))
	return h
}

// eval runs every rule against the tick's samples and folds the firing
// set into the process state, emitting an EvHealth trace event on each
// transition. Tick-goroutine only; allocation-free.
func (h *health) eval(p *plan, cur, prev []float64, dt float64, first bool) {
	for i := range h.rules {
		ru := &h.rules[i]
		st := &h.states[i]
		v, active, ok := ru.active(p, cur, prev, dt)
		st.value.Store(math.Float64bits(v))
		if !ok || first {
			continue
		}
		if active {
			st.clearStreak = 0
			st.fireStreak++
			if st.fireStreak >= ru.fire && !st.firing.Load() {
				st.firing.Store(true)
				st.firedTotal.Add(1)
				st.sinceNs.Store(nowNs())
			}
		} else {
			st.fireStreak = 0
			if st.firing.Load() {
				st.clearStreak++
				if st.clearStreak >= ru.clear {
					st.firing.Store(false)
					st.clearStreak = 0
				}
			}
		}
	}

	next := StateOK
	var mask uint32
	for i := range h.states {
		if h.states[i].firing.Load() {
			if i < 32 {
				mask |= 1 << uint(i)
			}
			if h.rules[i].severity > next {
				next = h.rules[i].severity
			}
		}
	}
	old := State(h.state.Load())
	if next != old {
		h.state.Store(uint32(next))
		h.sinceNs.Store(nowNs())
		h.transitions.Add(1)
		h.r.tracer.Ring(0).Record(trace.EvHealth,
			trace.HealthPayload(uint8(old), uint8(next), mask))
	}
}

// RuleStatus is one rule's externally visible state.
type RuleStatus struct {
	Name       string  `json:"name"`
	Severity   string  `json:"severity"`
	Firing     bool    `json:"firing"`
	Value      float64 `json:"value"`
	Threshold  float64 `json:"threshold"`
	FiredTotal uint64  `json:"fired_total"`
	SinceNs    int64   `json:"since_ns,omitempty"`
}

// Status is the health document served by /healthz, embedded in the
// server's STATS payload and flattened into RESP `INFO health`. Firing
// is a comma-joined scalar (not an array) so the INFO renderer, which
// skips nested values, still carries the firing rule names.
type Status struct {
	State       string       `json:"state"`
	SinceNs     int64        `json:"since_ns"`
	Transitions uint64       `json:"transitions"`
	Firing      string       `json:"firing"`
	Rules       []RuleStatus `json:"rules,omitempty"`
}

// State returns the current aggregate state.
func (r *Recorder) State() State { return State(r.health.state.Load()) }

// Transitions returns how many state changes the engine has seen.
func (r *Recorder) Transitions() uint64 { return r.health.transitions.Load() }

// Health assembles the current Status. Safe to call concurrently with
// ticking.
func (r *Recorder) Health() Status {
	h := r.health
	s := Status{
		State:       State(h.state.Load()).String(),
		SinceNs:     h.sinceNs.Load(),
		Transitions: h.transitions.Load(),
	}
	firing := ""
	for i := range h.rules {
		st := &h.states[i]
		rs := RuleStatus{
			Name:       h.rules[i].name,
			Severity:   h.rules[i].severity.String(),
			Firing:     st.firing.Load(),
			Value:      math.Float64frombits(st.value.Load()),
			Threshold:  h.rules[i].threshold,
			FiredTotal: st.firedTotal.Load(),
		}
		if rs.Firing {
			rs.SinceNs = st.sinceNs.Load()
			if firing != "" {
				firing += ","
			}
			firing += rs.Name
		}
		s.Rules = append(s.Rules, rs)
	}
	s.Firing = firing
	return s
}
