package flight

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
)

func testConfig() Config {
	return Config{
		Interval:   time.Millisecond,
		Window:     time.Second,
		FireTicks:  3,
		ClearTicks: 2,
	}
}

// TestSeriesAndHistory checks the plan covers scalars, vec entries and
// histogram families, and that ticking publishes readable frames.
func TestSeriesAndHistory(t *testing.T) {
	reg := obs.NewRegistry()
	var g atomic.Uint64
	var c atomic.Uint64
	reg.Gauge("g_one", "", func() float64 { return float64(g.Load()) })
	reg.Counter("c_one_total", "", c.Load)
	reg.GaugeVec("g_vec", "", "shard", 2, func(i int) float64 { return float64(i) })
	h := &metrics.Histogram{}
	reg.Histogram("h_one_seconds", "", h)

	r := New(reg, testConfig())
	for i := 1; i <= 5; i++ {
		g.Store(uint64(10 * i))
		c.Add(7)
		h.ObserveNs(1000)
		r.Tick()
	}

	names := r.SeriesNames()
	want := map[string]bool{
		"g_one": false, "c_one_total": false,
		`g_vec{shard="0"}`: false, `g_vec{shard="1"}`: false,
		SeriesBacklogGrowth: false, SeriesRingDepthMax: false,
		WinP99Prefix + "h_one_seconds": false,
	}
	idx := map[string]int{}
	for i, n := range names {
		idx[n] = i
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("series %s missing from plan %v", n, names)
		}
	}

	frames := r.History(0)
	if len(frames) != 5 {
		t.Fatalf("got %d frames, want 5", len(frames))
	}
	last := frames[len(frames)-1]
	if v := last.Vals[idx["g_one"]]; v != 50 {
		t.Fatalf("g_one in last frame = %v, want 50", v)
	}
	if v := last.Vals[idx["c_one_total"]]; v != 35 {
		t.Fatalf("c_one_total in last frame = %v, want 35", v)
	}
	if v := last.Vals[idx[WinP99Prefix+"h_one_seconds"]]; v <= 0 {
		t.Fatalf("windowed p99 = %v, want > 0", v)
	}
	if r.Ticks() != 5 {
		t.Fatalf("Ticks() = %d, want 5", r.Ticks())
	}
}

// TestHistoryWindowTruncation checks History(max) returns the trailing
// frames only, and that the ring laps correctly past its capacity.
func TestHistoryWindowTruncation(t *testing.T) {
	reg := obs.NewRegistry()
	var g atomic.Uint64
	reg.Gauge("g_seq", "", func() float64 { return float64(g.Load()) })
	r := New(reg, testConfig()) // 1s/1ms → 1024 frames; min 16 applies elsewhere
	n := r.frameCount()
	for i := 0; i < n+10; i++ {
		g.Store(uint64(i))
		r.Tick()
	}
	frames := r.History(0)
	if len(frames) != n {
		t.Fatalf("retained %d frames, want %d", len(frames), n)
	}
	tail := r.History(4)
	if len(tail) != 4 {
		t.Fatalf("History(4) returned %d frames", len(tail))
	}
	gi := -1
	for i, nm := range r.SeriesNames() {
		if nm == "g_seq" {
			gi = i
		}
	}
	if got := tail[3].Vals[gi]; got != float64(n+9) {
		t.Fatalf("last frame g_seq = %v, want %d", got, n+9)
	}
}

// TestConcurrentSnapshotSkipsTornFrames mirrors the slowlog seqlock
// test: every series in a frame is written from the same per-tick
// value, so any frame a reader observes with mixed values is torn.
// Run under -race this also proves the reader/writer pair is clean.
func TestConcurrentSnapshotSkipsTornFrames(t *testing.T) {
	reg := obs.NewRegistry()
	var v atomic.Uint64
	const nSeries = 8
	for i := 0; i < nSeries; i++ {
		reg.Gauge("g_"+string(rune('a'+i)), "", func() float64 { return float64(v.Load()) })
	}
	cfg := testConfig()
	cfg.Window = 16 * time.Millisecond // tiny ring → frequent lapping
	r := New(reg, cfg)
	r.Tick() // build the plan before the writer races readers

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // single writer, as in production
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			v.Store(i)
			r.Tick()
		}
	}()

	names := r.SeriesNames()
	var gIdx []int
	for i, n := range names {
		if len(n) == 3 && n[0] == 'g' {
			gIdx = append(gIdx, i)
		}
	}
	if len(gIdx) != nSeries {
		t.Fatalf("found %d gauge columns, want %d", len(gIdx), nSeries)
	}

	deadline := time.Now().Add(200 * time.Millisecond)
	reads := 0
	for time.Now().Before(deadline) {
		for _, f := range r.History(0) {
			first := f.Vals[gIdx[0]]
			for _, i := range gIdx[1:] {
				if f.Vals[i] != first {
					t.Errorf("torn frame survived the seqlock: %v vs %v", f.Vals[i], first)
				}
			}
			reads++
		}
	}
	close(stop)
	wg.Wait()
	if reads == 0 {
		t.Fatal("snapshot loop never observed a frame")
	}
}

// TestTickZeroAlloc proves a steady-state tick allocates nothing: the
// acceptance bar for leaving the recorder on in production.
func TestTickZeroAlloc(t *testing.T) {
	reg := obs.NewRegistry()
	var g atomic.Uint64
	reg.Gauge("oa_retired_backlog_slots", "", func() float64 { return float64(g.Load()) })
	reg.Gauge("oa_retire_pool_frozen", "", func() float64 { return 0 })
	reg.Counter("oa_server_requests_read_total", "", g.Load)
	reg.GaugeVec("oa_server_ring_depth", "", "shard", 4, func(i int) float64 { return float64(i) })
	reg.Gauge("oa_server_ring_cap", "", func() float64 { return 64 })
	h := &metrics.Histogram{}
	reg.HistogramVec("oa_server_latency_get_seconds", "", "shard", 2,
		func(i int) *metrics.Histogram { return h })

	cfg := testConfig()
	cfg.SLOP99 = 20 * time.Millisecond
	cfg.SLOOps = 1 // exercises every rule's eval path
	r := New(reg, cfg)
	r.Tick() // warm: plan build allocates, later ticks must not

	allocs := testing.AllocsPerRun(100, func() {
		g.Add(3)
		h.ObserveNs(500)
		r.Tick()
	})
	if allocs != 0 {
		t.Fatalf("steady-state tick allocates %v times, want 0", allocs)
	}
}

// TestHealthEngineFiresAndClears drives the backlog-growth rule through
// fire → clear and checks hysteresis, state, transitions and the
// EvHealth trace events.
func TestHealthEngineFiresAndClears(t *testing.T) {
	reg := obs.NewRegistry()
	var backlog atomic.Uint64
	reg.Gauge("oa_retired_backlog_slots", "", func() float64 { return float64(backlog.Load()) })
	r := New(reg, testConfig()) // fire after 3 bad ticks, clear after 2 good
	r.Tick()                    // first tick: baseline only

	backlog.Store(2000)
	r.Tick() // growth tick 1 (2000 > 0, above floor)
	if r.State() != StateOK {
		t.Fatalf("fired after 1 bad tick despite FireTicks=3")
	}
	for i := 0; i < 2; i++ {
		backlog.Add(500)
		r.Tick()
	}
	if r.State() != StateDegraded {
		t.Fatalf("state = %v after 3 growing ticks, want degraded", r.State())
	}
	st := r.Health()
	if st.Firing != "backlog_growth" {
		t.Fatalf("firing = %q, want backlog_growth", st.Firing)
	}
	if st.Transitions != 1 {
		t.Fatalf("transitions = %d, want 1", st.Transitions)
	}

	// Hold the backlog flat: 2 quiet ticks clear the rule.
	r.Tick()
	if r.State() != StateDegraded {
		t.Fatal("cleared after 1 good tick despite ClearTicks=2")
	}
	r.Tick()
	if r.State() != StateOK {
		t.Fatalf("state = %v after ClearTicks quiet ticks, want ok", r.State())
	}
	if got := r.Transitions(); got != 2 {
		t.Fatalf("transitions = %d, want 2", got)
	}

	evs := r.Tracer().Events()
	var health []trace.Event
	for _, e := range evs {
		if e.Kind == trace.EvHealth {
			health = append(health, e)
		}
	}
	if len(health) != 2 {
		t.Fatalf("recorded %d EvHealth events, want 2", len(health))
	}
	o1, n1, mask := trace.UnpackHealth(health[0].Arg)
	if State(o1) != StateOK || State(n1) != StateDegraded || mask == 0 {
		t.Fatalf("first transition payload = (%d,%d,%#x)", o1, n1, mask)
	}
	o2, n2, _ := trace.UnpackHealth(health[1].Arg)
	if State(o2) != StateDegraded || State(n2) != StateOK {
		t.Fatalf("second transition payload = (%d,%d)", o2, n2)
	}
}

// TestPhaseStalledIsCritical checks the frozen-retire-pool rule raises
// critical and that /healthz turns 503 only then.
func TestPhaseStalledIsCritical(t *testing.T) {
	reg := obs.NewRegistry()
	var frozen atomic.Uint64
	reg.Gauge("oa_retire_pool_frozen", "", func() float64 { return float64(frozen.Load()) })
	r := New(reg, testConfig())
	r.RegisterObs(reg)
	r.Tick()

	srv := httptest.NewServer(obs.HandlerFor(func() *obs.Registry { return reg }))
	defer srv.Close()

	get := func() (int, Status) {
		resp, err := srv.Client().Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var s Status
		if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, s
	}

	if code, s := get(); code != 200 || s.State != "ok" {
		t.Fatalf("healthy probe: code=%d state=%s", code, s.State)
	}
	frozen.Store(1)
	for i := 0; i < 4; i++ {
		r.Tick()
	}
	code, s := get()
	if code != 503 || s.State != "critical" {
		t.Fatalf("stalled probe: code=%d state=%s, want 503 critical", code, s.State)
	}
	if s.Firing != "phase_stalled" {
		t.Fatalf("firing = %q, want phase_stalled", s.Firing)
	}
	frozen.Store(0)
	for i := 0; i < 3; i++ {
		r.Tick()
	}
	if code, s := get(); code != 200 || s.State != "ok" {
		t.Fatalf("recovered probe: code=%d state=%s", code, s.State)
	}
}

// TestHistoryEndpoint exercises the catalog, exact and prefix selection
// and the window parameter.
func TestHistoryEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	var g atomic.Uint64
	reg.Gauge("g_end", "", func() float64 { return float64(g.Load()) })
	r := New(reg, testConfig())
	r.RegisterObs(reg)
	for i := 0; i < 6; i++ {
		g.Store(uint64(i))
		r.Tick()
	}

	srv := httptest.NewServer(obs.HandlerFor(func() *obs.Registry { return reg }))
	defer srv.Close()

	var cat historyDoc
	resp, err := srv.Client().Get(srv.URL + "/debug/history")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&cat); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(cat.Catalog) == 0 || cat.IntervalMs != 1 {
		t.Fatalf("catalog: %+v", cat)
	}

	var doc historyDoc
	resp, err = srv.Client().Get(srv.URL + "/debug/history?series=g_end,flight:*")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if doc.Frames != 6 {
		t.Fatalf("frames = %d, want 6", doc.Frames)
	}
	pts, ok := doc.Series["g_end"]
	if !ok || len(pts) != 6 || pts[5] != 5 {
		t.Fatalf("g_end series = %v", pts)
	}
	if _, ok := doc.Series[SeriesBacklogGrowth]; !ok {
		t.Fatalf("prefix selection missed derived series: %v", doc.Series)
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/history?series=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown series → %d, want 404", resp.StatusCode)
	}
}

// TestPlanRebuildOnLateRegistration checks the generation guard: a
// registration after ticking starts resets the plan and the new series
// appears.
func TestPlanRebuildOnLateRegistration(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Gauge("g_first", "", func() float64 { return 1 })
	r := New(reg, testConfig())
	r.Tick()
	if n := r.SeriesNames(); len(n) == 0 || n[0] != "g_first" {
		t.Fatalf("initial plan: %v", n)
	}
	reg.Gauge("g_second", "", func() float64 { return 2 })
	r.Tick()
	found := false
	for _, n := range r.SeriesNames() {
		if n == "g_second" {
			found = true
		}
	}
	if !found {
		t.Fatal("late registration missing after rebuild")
	}
	if got := len(r.History(0)); got != 1 {
		t.Fatalf("history after rebuild has %d frames, want 1 (reset)", got)
	}
}
