package flight

import (
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
)

func nowNs() int64 { return time.Now().UnixNano() }

// RegisterObs exports the recorder's own signals on reg and attaches
// the /healthz and /debug/history endpoints:
//
//	oa_health_state                   0 ok / 1 degraded / 2 critical
//	oa_health_transitions_total       state changes since start
//	oa_health_rule_firing{rule="i"}   1 while rule i fires
//	oa_health_rule_fired_total{rule}  times rule i ever fired
//	flight_ticks_total                samples taken
//
// The rule label is the rule's index; the name↔index mapping is in
// /healthz (rules are listed in index order).
func (r *Recorder) RegisterObs(reg *obs.Registry) {
	reg.Gauge("oa_health_state", "health engine state (0 ok, 1 degraded, 2 critical)",
		func() float64 { return float64(r.health.state.Load()) })
	reg.Counter("oa_health_transitions_total", "health state transitions",
		r.health.transitions.Load)
	reg.GaugeVec("oa_health_rule_firing", "1 while the indexed health rule fires (names in /healthz)", "rule",
		len(r.health.rules), func(i int) float64 {
			if r.health.states[i].firing.Load() {
				return 1
			}
			return 0
		})
	reg.CounterVec("oa_health_rule_fired_total", "times the indexed health rule fired", "rule",
		len(r.health.rules), func(i int) uint64 {
			return r.health.states[i].firedTotal.Load()
		})
	reg.Counter("flight_ticks_total", "flight recorder samples taken", r.ticks.Load)
	reg.Trace(r.tracer)
	reg.Handle("/healthz", http.HandlerFunc(r.serveHealthz))
	reg.Handle("/debug/history", http.HandlerFunc(r.serveHistory))
}

// serveHealthz renders the health Status. The process keeps serving
// while degraded, so only critical maps to 503 — load balancers drain
// on status code, and shedding a merely degraded instance would turn
// every backlog episode into an outage.
func (r *Recorder) serveHealthz(w http.ResponseWriter, req *http.Request) {
	s := r.Health()
	w.Header().Set("Content-Type", "application/json")
	if s.State == StateCritical.String() {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s)
}

// historyDoc is the /debug/history response.
type historyDoc struct {
	IntervalMs float64              `json:"interval_ms"`
	WindowMs   float64              `json:"window_ms"`
	Frames     int                  `json:"frames"`
	TsUnixMs   []float64            `json:"ts_unix_ms,omitempty"`
	Series     map[string][]float64 `json:"series,omitempty"`
	Catalog    []string             `json:"catalog,omitempty"`
}

// serveHistory serves the recorded time series.
//
//	/debug/history                      → catalog of series names
//	/debug/history?series=a,b           → frames for the named series
//	/debug/history?series=oa_server_*   → trailing * matches a prefix
//	...&window=30s                      → only the trailing window
func (r *Recorder) serveHistory(w http.ResponseWriter, req *http.Request) {
	names := r.SeriesNames()
	doc := historyDoc{
		IntervalMs: float64(r.cfg.Interval) / 1e6,
		WindowMs:   float64(r.cfg.Window) / 1e6,
	}
	q := req.URL.Query()
	sel := q.Get("series")
	if sel == "" {
		doc.Catalog = names
		writeJSON(w, http.StatusOK, doc)
		return
	}
	want := make([]int, 0, 8)
	for _, pat := range strings.Split(sel, ",") {
		pat = strings.TrimSpace(pat)
		if pat == "" {
			continue
		}
		if strings.HasSuffix(pat, "*") {
			pfx := strings.TrimSuffix(pat, "*")
			for i, n := range names {
				if strings.HasPrefix(n, pfx) {
					want = append(want, i)
				}
			}
			continue
		}
		for i, n := range names {
			if n == pat {
				want = append(want, i)
				break
			}
		}
	}
	if len(want) == 0 {
		http.Error(w, "no matching series (drop ?series= for the catalog)", http.StatusNotFound)
		return
	}

	maxFrames := 0
	if ws := q.Get("window"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil || d <= 0 {
			http.Error(w, "bad window: "+ws, http.StatusBadRequest)
			return
		}
		maxFrames = int(d / r.cfg.Interval)
		if maxFrames < 1 {
			maxFrames = 1
		}
	}
	frames := r.History(maxFrames)
	doc.Frames = len(frames)
	doc.TsUnixMs = make([]float64, len(frames))
	doc.Series = make(map[string][]float64, len(want))
	for _, i := range want {
		doc.Series[names[i]] = make([]float64, len(frames))
	}
	for fi, f := range frames {
		doc.TsUnixMs[fi] = float64(f.TS) / 1e6
		for _, i := range want {
			// A frame published by an older, shorter plan cannot reach
			// here (rebuild swaps the ring), so i is always in range.
			doc.Series[names[i]][fi] = f.Vals[i]
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
