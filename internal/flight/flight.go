// Package flight is an in-process flight recorder: it samples every
// scalar metric and histogram family registered on an obs.Registry at a
// fixed interval into per-series ring buffers, derives windowed signals
// (backlog growth rate, phase cadence, ring saturation, sliding-window
// per-command p99) and feeds a declarative health-rule engine that
// classifies the process as ok, degraded or critical.
//
// The design mirrors the server slowlog: each tick publishes one frame
// under a seqlock (seq odd while the recorder writes, even once
// published) so concurrent /debug/history readers skip torn frames
// instead of locking the sampler. A tick allocates nothing once the
// sample plan is warm; the plan is rebuilt only when the registry's
// registration generation moves (late registrations reset history).
package flight

import (
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Defaults used when the corresponding Config field is zero.
const (
	DefaultInterval = 250 * time.Millisecond
	DefaultWindow   = 60 * time.Second

	// p99Window is how much wall-clock history the sliding-window
	// quantiles (and the burn-rate rule) integrate over.
	p99Window = 10 * time.Second
)

// Config parameterizes a Recorder.
type Config struct {
	// Interval is the sampling period (default 250ms).
	Interval time.Duration
	// Window is how much history the rings retain (default 60s).
	Window time.Duration
	// SLOP99 is the per-command server-side p99 objective. When set,
	// the slo_p99_burn rule fires while the sliding-window p99 of any
	// command exceeds it. Zero disables the rule.
	SLOP99 time.Duration
	// SLOOps is the throughput floor in requests/s. When set, the
	// slo_ops rule fires while the served rate stays below it. Zero
	// disables the rule.
	SLOOps float64
	// FireTicks/ClearTicks override the rule hysteresis: a rule fires
	// after FireTicks consecutive bad ticks and clears after ClearTicks
	// consecutive good ones (defaults 8/8; healthsmoke shrinks them to
	// keep its provocations fast).
	FireTicks  int
	ClearTicks int
}

func (c *Config) fill() {
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.FireTicks <= 0 {
		c.FireTicks = 8
	}
	if c.ClearTicks <= 0 {
		c.ClearTicks = 8
	}
}

// Names of the derived series a Recorder appends after the registry's
// own scalars. Histogram families additionally surface as
// "flight:win_p99_ns:<family>".
const (
	SeriesBacklogGrowth  = "flight:backlog_growth_per_sec"
	SeriesPhaseCadence   = "flight:phase_per_sec"
	SeriesRingDepthMax   = "flight:ring_depth_max"
	SeriesRingSaturation = "flight:ring_saturation"
	SeriesOpsPerSec      = "flight:ops_per_sec"
)

// WinP99Prefix prefixes the sliding-window p99 series derived from each
// histogram family.
const WinP99Prefix = "flight:win_p99_ns:"

// Scalar metric names the derived signals and health rules key on.
const (
	metricBacklog = "oa_retired_backlog_slots"
	metricPhase   = "oa_phase"
	metricFrozen  = "oa_retire_pool_frozen"
	metricRingCap = "oa_server_ring_cap"
	metricReqRead = "oa_server_requests_read_total"
	ringDepthVec  = "oa_server_ring_depth{"
	cmdLatencyPfx = "oa_server_latency_"
)

// frame is one published tick: a seqlock word, the sample timestamp and
// one float64 (as bits) per series.
type frame struct {
	seq  atomic.Uint64
	ts   atomic.Int64
	vals []atomic.Uint64
}

// histTrack maintains the sliding bucket-delta window for one histogram
// family (all shard instances merged).
type histTrack struct {
	family    string
	hs        []*metrics.Histogram
	prev      []metrics.Snapshot
	win       [][metrics.Buckets]uint64 // per-tick deltas, ring
	winCounts []uint64
	wpos      int
	wfill     int
	sum       [metrics.Buckets]uint64
	sumCount  uint64
	seriesIdx int  // slot in the frame for the windowed p99
	cmdLat    bool // belongs to the per-command server latency families
}

// plan binds the recorder to one registration generation: the resolved
// sample closures, derived-series indices and a fresh frame ring.
type plan struct {
	gen     uint64
	names   []string
	scalars []func() float64 // samples names[0:len(scalars)]
	hists   []*histTrack

	// Resolved indices into the scalar prefix (-1 when absent).
	backlogIdx, phaseIdx, frozenIdx, ringCapIdx, opsIdx int
	depthIdxs                                           []int
	// Indices of the derived slots.
	dBacklog, dPhase, dDepthMax, dSat, dOps int

	frames []frame
	mask   uint64
	head   atomic.Uint64 // frames ever published (next ticket)
}

// Recorder samples one registry. Tick is single-writer: either the
// Start goroutine or a test calls it, never both.
type Recorder struct {
	reg *obs.Registry
	cfg Config

	mu   sync.Mutex // guards rebuild vs. concurrent plan readers
	plan atomic.Pointer[plan]

	cur, prev []float64 // scratch, len == len(plan.names)
	lastTS    int64     // unix ns of the previous tick (0 before first)
	ticks     atomic.Uint64

	health *health
	tracer *trace.Recorder

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// New builds a recorder over reg. Call RegisterObs to export the health
// metrics and debug endpoints, then Start to begin sampling.
func New(reg *obs.Registry, cfg Config) *Recorder {
	cfg.fill()
	r := &Recorder{
		reg:    reg,
		cfg:    cfg,
		tracer: trace.NewRecorder(1, 64),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	r.health = newHealth(r)
	return r
}

// Interval returns the sampling period.
func (r *Recorder) Interval() time.Duration { return r.cfg.Interval }

// Window returns the retention window.
func (r *Recorder) Window() time.Duration { return r.cfg.Window }

// Ticks returns how many samples the recorder has taken.
func (r *Recorder) Ticks() uint64 { return r.ticks.Load() }

// Tracer exposes the recorder's trace ring (EvHealth transitions) so
// callers without a registry can inspect it.
func (r *Recorder) Tracer() *trace.Recorder { return r.tracer }

// Start launches the sampling goroutine. Safe to call once.
func (r *Recorder) Start() {
	go func() {
		defer close(r.done)
		r.Tick() // baseline: publish the plan before the first interval elapses
		tk := time.NewTicker(r.cfg.Interval)
		defer tk.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-tk.C:
				r.Tick()
			}
		}
	}()
}

// Stop halts the sampling goroutine and waits for it to exit.
func (r *Recorder) Stop() {
	r.once.Do(func() { close(r.stop) })
	<-r.done
}

// frameCount sizes the ring: Window/Interval rounded up to a power of
// two, at least 16.
func (r *Recorder) frameCount() int {
	n := int(r.cfg.Window / r.cfg.Interval)
	if n < 16 {
		n = 16
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// rebuild constructs a fresh plan from the registry's current sources.
// History resets: frames from the old generation describe a different
// column set.
func (r *Recorder) rebuild(gen uint64) *plan {
	ss, hs := r.reg.Sources()
	p := &plan{
		gen:        gen,
		backlogIdx: -1, phaseIdx: -1, frozenIdx: -1, ringCapIdx: -1, opsIdx: -1,
	}
	for _, s := range ss {
		p.names = append(p.names, s.Name)
		p.scalars = append(p.scalars, s.Sample)
	}
	for i, n := range p.names {
		switch n {
		case metricBacklog:
			p.backlogIdx = i
		case metricPhase:
			p.phaseIdx = i
		case metricFrozen:
			p.frozenIdx = i
		case metricRingCap:
			p.ringCapIdx = i
		case metricReqRead:
			p.opsIdx = i
		}
		if strings.HasPrefix(n, ringDepthVec) {
			p.depthIdxs = append(p.depthIdxs, i)
		}
	}
	derive := func(name string) int {
		p.names = append(p.names, name)
		return len(p.names) - 1
	}
	p.dBacklog = derive(SeriesBacklogGrowth)
	p.dPhase = derive(SeriesPhaseCadence)
	p.dDepthMax = derive(SeriesRingDepthMax)
	p.dSat = derive(SeriesRingSaturation)
	p.dOps = derive(SeriesOpsPerSec)

	// Group histogram instances by family and give each family a
	// sliding-window p99 series.
	winTicks := int(p99Window / r.cfg.Interval)
	if winTicks < 4 {
		winTicks = 4
	}
	byFamily := map[string]*histTrack{}
	for _, h := range hs {
		ht := byFamily[h.Family]
		if ht == nil {
			ht = &histTrack{
				family:    h.Family,
				win:       make([][metrics.Buckets]uint64, winTicks),
				winCounts: make([]uint64, winTicks),
				seriesIdx: derive(WinP99Prefix + h.Family),
				cmdLat:    strings.HasPrefix(h.Family, cmdLatencyPfx),
			}
			byFamily[h.Family] = ht
			p.hists = append(p.hists, ht)
		}
		ht.hs = append(ht.hs, h.Hist)
		ht.prev = append(ht.prev, metrics.Snapshot{})
	}

	n := r.frameCount()
	p.frames = make([]frame, n)
	p.mask = uint64(n - 1)
	for i := range p.frames {
		p.frames[i].vals = make([]atomic.Uint64, len(p.names))
	}
	return p
}

// Tick takes one sample: refresh the plan if registrations moved,
// sample every scalar, advance the histogram windows, compute derived
// signals, publish the frame and run the health rules. Zero allocations
// once the plan is warm.
func (r *Recorder) Tick() {
	gen := r.reg.Generation()
	p := r.plan.Load()
	if p == nil || p.gen != gen {
		r.mu.Lock()
		p = r.plan.Load()
		if p == nil || p.gen != gen {
			p = r.rebuild(gen)
			r.cur = make([]float64, len(p.names))
			r.prev = make([]float64, len(p.names))
			r.lastTS = 0
			r.plan.Store(p)
		}
		r.mu.Unlock()
	}

	now := time.Now().UnixNano()
	first := r.lastTS == 0
	dt := float64(now-r.lastTS) / 1e9
	if dt <= 0 {
		dt = float64(r.cfg.Interval) / 1e9
	}

	cur := r.cur
	for i, fn := range p.scalars {
		cur[i] = fn()
	}

	// Histogram family windows: per-tick bucket deltas summed across
	// instances, slid over winTicks ticks.
	for _, ht := range p.hists {
		var tickDelta [metrics.Buckets]uint64
		var tickCount uint64
		for i, h := range ht.hs {
			snap := h.Snapshot()
			pv := &ht.prev[i]
			for b := 0; b < metrics.Buckets; b++ {
				if d := snap.Counts[b] - pv.Counts[b]; snap.Counts[b] >= pv.Counts[b] {
					tickDelta[b] += d
				}
			}
			if snap.Count >= pv.Count {
				tickCount += snap.Count - pv.Count
			}
			ht.prev[i] = snap
		}
		if ht.wfill == len(ht.win) {
			old := &ht.win[ht.wpos]
			for b := 0; b < metrics.Buckets; b++ {
				ht.sum[b] -= old[b]
			}
			ht.sumCount -= ht.winCounts[ht.wpos]
		} else {
			ht.wfill++
		}
		ht.win[ht.wpos] = tickDelta
		ht.winCounts[ht.wpos] = tickCount
		for b := 0; b < metrics.Buckets; b++ {
			ht.sum[b] += tickDelta[b]
		}
		ht.sumCount += tickCount
		ht.wpos = (ht.wpos + 1) % len(ht.win)
		cur[ht.seriesIdx] = float64(windowQuantileNs(&ht.sum, ht.sumCount, 0.99))
	}

	// Derived signals need a previous tick; the first tick leaves them 0.
	cur[p.dBacklog], cur[p.dPhase], cur[p.dOps] = 0, 0, 0
	if !first {
		if p.backlogIdx >= 0 {
			cur[p.dBacklog] = (cur[p.backlogIdx] - r.prev[p.backlogIdx]) / dt
		}
		if p.phaseIdx >= 0 {
			cur[p.dPhase] = (cur[p.phaseIdx] - r.prev[p.phaseIdx]) / dt
		}
		if p.opsIdx >= 0 {
			cur[p.dOps] = (cur[p.opsIdx] - r.prev[p.opsIdx]) / dt
		}
	}
	depthMax := 0.0
	for _, i := range p.depthIdxs {
		if cur[i] > depthMax {
			depthMax = cur[i]
		}
	}
	cur[p.dDepthMax] = depthMax
	cur[p.dSat] = 0
	if p.ringCapIdx >= 0 && cur[p.ringCapIdx] > 0 {
		cur[p.dSat] = depthMax / cur[p.ringCapIdx]
	}

	// Publish the frame under the seqlock: odd while writing, 2t+2 once
	// ticket t's payload is complete.
	t := p.head.Load()
	f := &p.frames[t&p.mask]
	f.seq.Store(2*t + 1)
	f.ts.Store(now)
	for i, v := range cur {
		f.vals[i].Store(math.Float64bits(v))
	}
	f.seq.Store(2*t + 2)
	p.head.Store(t + 1)

	r.health.eval(p, cur, r.prev, dt, first)

	copy(r.prev, cur)
	r.lastTS = now
	r.ticks.Add(1)
}

// windowQuantileNs mirrors metrics.Snapshot.QuantileNs over a window's
// summed bucket counts: an upper bound using each bucket's top edge.
func windowQuantileNs(counts *[metrics.Buckets]uint64, total uint64, q float64) uint64 {
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target == 0 {
		target = 1
	}
	var acc uint64
	for i := 0; i < metrics.Buckets; i++ {
		acc += counts[i]
		if acc >= target {
			return uint64(1)<<uint(i) - 1
		}
	}
	return 0
}

// Frame is one decoded history sample.
type Frame struct {
	TS   int64 // unix nanoseconds
	Vals []float64
}

// SeriesNames returns the current plan's column names (registry scalars
// first, then derived series). Nil before the first tick.
func (r *Recorder) SeriesNames() []string {
	p := r.plan.Load()
	if p == nil {
		return nil
	}
	return p.names
}

// History snapshots up to max frames (0 = all retained), oldest first,
// skipping frames the sampler is overwriting concurrently (the seqlock
// check, as in the slowlog). The returned frames are copies.
func (r *Recorder) History(max int) []Frame {
	p := r.plan.Load()
	if p == nil {
		return nil
	}
	head := p.head.Load()
	n := uint64(len(p.frames))
	lo := uint64(0)
	if head > n {
		lo = head - n
	}
	if max > 0 && head-lo > uint64(max) {
		lo = head - uint64(max)
	}
	out := make([]Frame, 0, head-lo)
	for t := lo; t < head; t++ {
		f := &p.frames[t&p.mask]
		s1 := f.seq.Load()
		if s1 != 2*t+2 {
			continue // torn or already lapped
		}
		fr := Frame{TS: f.ts.Load(), Vals: make([]float64, len(f.vals))}
		for i := range f.vals {
			fr.Vals[i] = math.Float64frombits(f.vals[i].Load())
		}
		if f.seq.Load() != s1 {
			continue // writer lapped us mid-copy
		}
		out = append(out, fr)
	}
	return out
}
