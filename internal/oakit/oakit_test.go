package oakit_test

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/dstest"
	"repro/internal/oakit"
	"repro/internal/smr"
)

// tnode is the test node: key + next (the Keyed contract) plus one
// payload word so init publishing, DeleteIf predicates and WordCAS have
// something structure-specific to operate on.
type tnode struct {
	key  atomic.Uint64
	next atomic.Uint64
	val  atomic.Uint64
}

func (n *tnode) KeyWord() *atomic.Uint64  { return &n.key }
func (n *tnode) NextWord() *atomic.Uint64 { return &n.next }

func resetTNode(n *tnode) {
	n.key.Store(0)
	n.next.Store(0)
	n.val.Store(0)
}

func mkList(capacity int) dstest.Factory {
	return func(threads int) smr.Set {
		return oakit.NewList[tnode](core.Config{
			MaxThreads: threads, Capacity: capacity, LocalPool: 16,
		}, resetTNode)
	}
}

// The generic Level 2 list goes through the same black-box suites every
// hand-written (structure × scheme) pair passes — the kit's traversal,
// commit and helping logic must be indistinguishable from the ports.
func TestGenericListSequential(t *testing.T) { dstest.RunSequentialSuite(t, mkList(1<<16)) }
func TestGenericListConcurrent(t *testing.T) { dstest.RunConcurrentSuite(t, mkList(1<<16)) }
func TestGenericListConcurrentTight(t *testing.T) {
	// A tight arena forces reclamation churn mid-suite, maximizing the
	// chance of catching an unsafe warning-check placement in the kit.
	dstest.RunConcurrentSuite(t, mkList(4096))
}
func TestGenericListLinearizability(t *testing.T) { dstest.RunLinearizability(t, mkList(1<<16)) }
func TestGenericListStats(t *testing.T)           { dstest.RunStats(t, mkList(1<<16), smr.OA) }

func newEngine(t *testing.T, threads, capacity int) (*oakit.Engine[tnode], uint32) {
	t.Helper()
	e := oakit.NewEngine[tnode](core.Config{
		MaxThreads: threads, Capacity: capacity, LocalPool: 16,
	}, resetTNode, 3)
	t.Cleanup(e.Close)
	return e, e.NewRoot()
}

// TestPendingLifecycle pins the pre-allocated insert slot contract: the
// slot is stable across calls (generator restarts must not re-allocate)
// and replaced only after ConsumePending.
func TestPendingLifecycle(t *testing.T) {
	e, _ := newEngine(t, 1, 4096)
	c := e.Ctx(0)
	p1 := c.Pending()
	if p2 := c.Pending(); p2 != p1 {
		t.Fatalf("Pending unstable across calls: %d then %d", p1, p2)
	}
	c.ConsumePending()
	if p3 := c.Pending(); p3 == p1 {
		t.Fatalf("Pending after consume handed back the linked slot %d", p1)
	}
}

// TestInsertInitPublishes checks init-filled payload words are visible
// atomically with the insert, and that DeleteIf's predicate gates the
// delete on the node's current payload.
func TestInsertInitPublishes(t *testing.T) {
	e, head := newEngine(t, 1, 4096)
	c := e.Ctx(0)
	if !oakit.Insert(c, head, 10, func(n *tnode) { n.val.Store(111) }) {
		t.Fatal("fresh insert failed")
	}
	if oakit.Insert(c, head, 10, nil) {
		t.Fatal("duplicate insert succeeded")
	}
	pos, restart := oakit.Find(c, head, uint64(10))
	if restart || !pos.OK || pos.Key != 10 {
		t.Fatalf("Find(10) = %+v restart=%v", pos, restart)
	}
	if v := c.Node(pos.Cur.Slot()).val.Load(); v != 111 {
		t.Fatalf("payload = %d, want 111", v)
	}

	// Predicate sees the live payload; a non-matching value blocks the
	// delete without disturbing the entry.
	if oakit.DeleteIf(c, head, 10, func(n *tnode) bool { return n.val.Load() == 999 }) {
		t.Fatal("DeleteIf deleted on a false predicate")
	}
	if !oakit.Contains(c, head, uint64(10)) {
		t.Fatal("entry vanished after refused DeleteIf")
	}
	if !oakit.DeleteIf(c, head, 10, func(n *tnode) bool { return n.val.Load() == 111 }) {
		t.Fatal("DeleteIf refused a true predicate")
	}
	if oakit.Contains(c, head, uint64(10)) {
		t.Fatal("entry alive after DeleteIf")
	}
	if oakit.DeleteIf(c, head, 10, func(*tnode) bool { return true }) {
		t.Fatal("DeleteIf deleted an absent key")
	}
}

// TestWordCAS drives the in-place update primitive: a payload CAS under
// the write barrier, with the usual restart-on-warning loop around it.
func TestWordCAS(t *testing.T) {
	e, head := newEngine(t, 1, 4096)
	c := e.Ctx(0)
	if !oakit.Insert(c, head, 7, func(n *tnode) { n.val.Store(100) }) {
		t.Fatal("insert failed")
	}
	casVal := func(old, new uint64) bool {
		for {
			pos, restart := oakit.Find(c, head, uint64(7))
			if restart {
				continue
			}
			if !pos.OK || pos.Key != 7 {
				t.Fatal("key 7 missing")
			}
			n := c.Node(pos.Cur.Slot())
			swapped, restart := c.WordCAS(pos.Cur, &n.val, old, new)
			if restart {
				continue
			}
			return swapped
		}
	}
	if !casVal(100, 200) {
		t.Fatal("CAS 100→200 failed")
	}
	if casVal(100, 300) {
		t.Fatal("CAS with stale expectation succeeded")
	}
	pos, _ := oakit.Find(c, head, uint64(7))
	if v := c.Node(pos.Cur.Slot()).val.Load(); v != 200 {
		t.Fatalf("payload = %d, want 200", v)
	}
}

// TestHelpingRetires checks the full logical-delete → helping-unlink →
// retire pipeline: after Delete marks nodes, later traversals physically
// unlink and retire every one of them.
func TestHelpingRetires(t *testing.T) {
	e, head := newEngine(t, 1, 8192)
	c := e.Ctx(0)
	const n = 500
	for k := uint64(1); k <= n; k++ {
		if !oakit.Insert(c, head, k, nil) {
			t.Fatalf("insert %d", k)
		}
	}
	for k := uint64(1); k <= n; k++ {
		if !oakit.Delete(c, head, k) {
			t.Fatalf("delete %d", k)
		}
	}
	// A traversal past the marked span helps-unlink all of it. Find with
	// a key beyond every deleted one walks the whole chain.
	for {
		if _, restart := oakit.Find(c, head, uint64(n+1)); !restart {
			break
		}
	}
	if st := e.Stats(); st.Retires < n {
		t.Fatalf("retired %d of %d deleted nodes", st.Retires, n)
	}
	for k := uint64(1); k <= n; k++ {
		if oakit.Contains(c, head, k) {
			t.Fatalf("deleted key %d still visible", k)
		}
	}
}

// TestStuckReaderDuringSweep pins the two OA promises a cache sweep
// leans on. A reader captures a position and goes dormant; a second
// session bulk-deletes the span it was reading (the ttlcache reap
// pattern) and churns a tiny arena until the swept slots are recycled
// out from under the dormant reader. Lock-freedom: reclamation phases
// and recycling proceed while the reader sleeps — a stuck thread never
// stalls the pipeline (the paper's core claim vs EBR). Safety: the
// resumed reader's stale optimistic read is caught by the warning
// check and a restart observes the post-sweep world, never a torn one.
func TestStuckReaderDuringSweep(t *testing.T) {
	e := oakit.NewEngine[tnode](core.Config{
		MaxThreads: 2, Capacity: 1024, LocalPool: 8,
	}, resetTNode, 3)
	t.Cleanup(e.Close)
	head := e.NewRoot()
	reader := e.Ctx(0)
	churn := e.Ctx(1)

	for k := uint64(1); k <= 100; k++ {
		if !oakit.Insert(churn, head, k, func(n *tnode) { n.val.Store(k * 10) }) {
			t.Fatalf("seed insert %d", k)
		}
	}
	var pos oakit.Pos
	for {
		p, restart := oakit.Find(reader, head, uint64(50))
		if !restart {
			if !p.OK || p.Key != 50 {
				t.Fatalf("Find(50) = %+v", p)
			}
			pos = p
			break
		}
	}

	// Reader is now "stuck" holding pos. Sweep its span, then cycle the
	// arena hard enough that real phases recycle the swept slots.
	before := e.Stats()
	for k := uint64(1); k <= 100; k++ {
		if !oakit.Delete(churn, head, k) {
			t.Fatalf("sweep delete %d", k)
		}
	}
	for i := 0; i < 20000; i++ {
		k := uint64(200 + i%300)
		oakit.Insert(churn, head, k, nil)
		oakit.Delete(churn, head, k)
	}
	after := e.Stats()
	if after.Recycled <= before.Recycled {
		t.Fatalf("nothing recycled while the reader was stuck (recycled %d -> %d): the dormant reader blocked reclamation",
			before.Recycled, after.Recycled)
	}
	if after.Phases <= before.Phases {
		t.Fatalf("no reclamation phases while the reader was stuck (%d -> %d)", before.Phases, after.Phases)
	}

	// Resume. The slot behind the stale position may hold a recycled
	// node by now — reading it must not fault (arena handles keep it
	// addressable) and the warning check must demand a restart.
	_ = reader.Node(pos.Cur.Slot()).val.Load()
	if !reader.Check() {
		t.Fatal("warning check missed the phases that recycled under the stuck reader")
	}
	if oakit.Contains(reader, head, uint64(50)) {
		t.Fatal("restarted traversal still sees the swept key")
	}
	for k := uint64(200); k < 500; k++ {
		if oakit.Contains(reader, head, k) {
			t.Fatalf("churn key %d leaked into the final state", k)
		}
	}
}

// TestGenericListWarningStorm injects spurious warning bits while a
// worker runs against a model: a warning may only ever restart a
// parallelizable method, so results must stay exactly sequential. This
// is the kit-level version of the chaos suite every hand-written port
// passes — it hammers the restart edge of every generic primitive.
func TestGenericListWarningStorm(t *testing.T) {
	l := oakit.NewList[tnode](core.Config{
		MaxThreads: 2, Capacity: 8192, LocalPool: 16,
	}, resetTNode)
	mgr := l.Engine().Manager()

	stop := make(chan struct{})
	storming := make(chan struct{})
	go func() {
		defer close(storming)
		fake := uint32(1 << 20)
		for {
			select {
			case <-stop:
				return
			default:
			}
			mgr.InjectWarnings(fake)
			fake += 2
			for i := 0; i < 200; i++ {
				atomic.LoadUint32(&fake)
			}
		}
	}()

	s := l.Session(0)
	model := map[uint64]bool{}
	rng := rand.New(rand.NewSource(31337))
	for i := 0; i < 40000; i++ {
		if i%512 == 0 {
			// Single-CPU runners can finish the op loop inside one
			// timeslice; yield so warnings actually land mid-stream.
			runtime.Gosched()
		}
		k := uint64(rng.Intn(128)) + 1
		switch rng.Intn(3) {
		case 0:
			if got, want := s.Insert(k), !model[k]; got != want {
				t.Fatalf("op %d: Insert(%d) = %v, want %v", i, k, got, want)
			}
			model[k] = true
		case 1:
			if got, want := s.Delete(k), model[k]; got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, want)
			}
			delete(model, k)
		default:
			if got, want := s.Contains(k), model[k]; got != want {
				t.Fatalf("op %d: Contains(%d) = %v, want %v", i, k, got, want)
			}
		}
	}
	close(stop)
	<-storming
	for k := uint64(1); k <= 128; k++ {
		if got, want := s.Contains(k), model[k]; got != want {
			t.Fatalf("final: Contains(%d) = %v, want %v", k, got, want)
		}
	}
}
