package oakit

import (
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/smr"
)

// Keyed is the node shape the generic traversal understands: a sorted
// Harris-Michael chain with a uint64 key. The methods return pointers to
// the node's atomic words so the kit performs the loads itself, keeping
// the warning-check placement (load batch, then Check) in one audited
// place instead of in every structure.
type Keyed interface {
	// KeyWord returns the node's key word.
	KeyWord() *atomic.Uint64
	// NextWord returns the node's successor word (an arena.Ptr with the
	// Harris delete mark in bit 0).
	NextWord() *atomic.Uint64
}

// NodeOf is the constraint tying a node type T to its pointer type: the
// methods live on *T, and the kit converts arena slots to P internally.
type NodeOf[T any] interface {
	*T
	Keyed
}

// Pos is a generic traversal position: the first unmarked node with
// key ≥ the searched key (OK=true) or the end of the chain (OK=false),
// plus its predecessor. Prev is a slot (roots have no Ptr), Cur/Next are
// handles.
type Pos struct {
	Prev      uint32
	Cur, Next arena.Ptr
	Key       uint64
	OK        bool
}

// Find runs the shared CAS-generator search loop (the paper's Listing 1)
// generically: hop the chain from head, batching each node's key and
// next loads under one warning check, helping physical deletes of marked
// nodes along the way (write barrier + retire via UnlinkRetire).
// restart=true means the caller must restart its generator; the position
// is then invalid.
func Find[T any, P NodeOf[T]](c *Ctx[T], head uint32, key uint64) (pos Pos, restart bool) {
	th := c.Th
	prev := head
	cur := arena.Ptr(P(th.Node(head)).NextWord().Load())
	if th.Check() {
		return Pos{}, true
	}
	for {
		if cur.IsNil() {
			return Pos{Prev: prev}, false
		}
		curSlot := cur.Slot()
		n := P(th.Node(curSlot))
		next := arena.Ptr(n.NextWord().Load())
		ckey := n.KeyWord().Load()
		tmp := arena.Ptr(P(th.Node(prev)).NextWord().Load())
		if th.Check() {
			return Pos{}, true
		}
		if tmp != cur {
			return Pos{}, true // Listing 1 line 14: goto start
		}
		if !next.Marked() {
			if ckey >= key {
				return Pos{Prev: prev, Cur: cur, Next: next, Key: ckey, OK: true}, false
			}
			prev = curSlot
		} else if !c.UnlinkRetire(P(th.Node(prev)).NextWord(), arena.MakePtr(prev), cur, next.Unmark()) {
			return Pos{}, true
		}
		cur = next.Unmark()
	}
}

// Contains is the wait-free read-only membership test (Algorithm 1): two
// loads plus one warning check per hop, no hazard pointers, no fences.
func Contains[T any, P NodeOf[T]](c *Ctx[T], head uint32, key uint64) bool {
	th := c.Th
restart:
	for {
		cur := arena.Ptr(P(th.Node(head)).NextWord().Load())
		if th.Check() {
			continue restart
		}
		for !cur.IsNil() {
			n := P(th.Node(cur.Unmark().Slot()))
			next := arena.Ptr(n.NextWord().Load())
			ckey := n.KeyWord().Load()
			if th.Check() {
				continue restart
			}
			if ckey >= key {
				return ckey == key && !next.Marked()
			}
			cur = next.Unmark()
		}
		return false
	}
}

// Insert links a new node carrying key into the sorted chain at head;
// false if the key is already present. init, if non-nil, fills the
// pending node's payload words after the key is set and before the node
// is linked (the node is still thread-private, so plain stores are
// safe — they publish with the linking CAS).
func Insert[T any, P NodeOf[T]](c *Ctx[T], head uint32, key uint64, init func(P)) bool {
	th := c.Th
	for {
		// --- CAS generator ---
		pos, restart := Find[T, P](c, head, key)
		if restart {
			continue
		}
		if pos.OK && pos.Key == key {
			return false // wrap-up of the empty CAS list: already present
		}
		slot := c.Pending()
		n := P(th.Node(slot))
		n.KeyWord().Store(key)
		n.NextWord().Store(uint64(pos.Cur))
		if init != nil {
			init(n)
		}
		// Algorithm 3: protect O=prev, A2=cur, A3=new node; executor +
		// wrap-up inside Commit.
		if !c.Commit(P(th.Node(pos.Prev)).NextWord(), uint64(pos.Cur),
			uint64(arena.MakePtr(slot)),
			arena.MakePtr(pos.Prev), pos.Cur, arena.MakePtr(slot)) {
			continue
		}
		c.ConsumePending()
		return true
	}
}

// Delete logically deletes key from the chain at head (marking its next
// word); false if absent. Physical unlinking is left to future
// traversals, which retire the node when they unlink it.
func Delete[T any, P NodeOf[T]](c *Ctx[T], head uint32, key uint64) bool {
	th := c.Th
	for {
		// --- CAS generator ---
		pos, restart := Find[T, P](c, head, key)
		if restart {
			continue
		}
		if !pos.OK || pos.Key != key {
			return false
		}
		// HP dedup of Listing 4: mark(next) shares next's slot.
		if !c.Commit(P(th.Node(pos.Cur.Slot())).NextWord(), uint64(pos.Next),
			uint64(pos.Next.Mark()), pos.Cur, pos.Next, arena.NilPtr) {
			continue
		}
		return true
	}
}

// DeleteIf deletes key only while pred holds on the node's current
// payload: the generator re-reads the node through read (a validated
// load batch the caller supplies, ending in its own Check) and emits the
// mark CAS only if pred approves. It is the conditional-removal
// primitive lazy TTL expiry needs — a fresh same-key entry (or one whose
// deadline was extended) is never removed by a stale decision, because
// the predicate is re-evaluated inside the generator on every restart.
func DeleteIf[T any, P NodeOf[T]](c *Ctx[T], head uint32, key uint64, pred func(P) bool) bool {
	th := c.Th
	for {
		pos, restart := Find[T, P](c, head, key)
		if restart {
			continue
		}
		if !pos.OK || pos.Key != key {
			return false
		}
		n := P(th.Node(pos.Cur.Slot()))
		hold := pred(n)
		if th.Check() {
			continue
		}
		if !hold {
			return false
		}
		if !c.Commit(n.NextWord(), uint64(pos.Next),
			uint64(pos.Next.Mark()), pos.Cur, pos.Next, arena.NilPtr) {
			continue
		}
		return true
	}
}

// List is a complete generic Harris-Michael set over any Keyed node
// type — the near-zero-LoC path to a new OA set, and the kit's generic
// hook into the dstest/linearize/chaos harnesses (it implements
// smr.Set). Hot structures with tight pointer-chase loops should port
// onto Level 1 instead; see the package comment.
type List[T any, P NodeOf[T]] struct {
	e    *Engine[T]
	head uint32
}

// NewList builds an empty generic set sized by cfg.
func NewList[T any, P NodeOf[T]](cfg core.Config, reset func(*T)) *List[T, P] {
	e := NewEngine[T](cfg, reset, 3)
	return &List[T, P]{e: e, head: e.NewRoot()}
}

// Engine exposes the underlying kit engine.
func (l *List[T, P]) Engine() *Engine[T] { return l.e }

// Scheme implements smr.Set.
func (l *List[T, P]) Scheme() smr.Scheme { return smr.OA }

// Stats implements smr.Set.
func (l *List[T, P]) Stats() smr.Stats { return l.e.Stats() }

// Session implements smr.Set (fixed-slot harness sessions; servers lease
// with Engine().Acquire and operate through the generic functions).
func (l *List[T, P]) Session(tid int) smr.Session {
	return listSession[T, P]{c: l.e.Ctx(tid), head: l.head}
}

// RegisterObs implements obs.Registrar by forwarding to the manager.
func (l *List[T, P]) RegisterObs(reg *obs.Registry) { l.e.RegisterObs(reg) }

type listSession[T any, P NodeOf[T]] struct {
	c    *Ctx[T]
	head uint32
}

func (s listSession[T, P]) Insert(key uint64) bool {
	return Insert[T, P](s.c, s.head, key, nil)
}
func (s listSession[T, P]) Delete(key uint64) bool {
	return Delete[T, P](s.c, s.head, key)
}
func (s listSession[T, P]) Contains(key uint64) bool {
	return Contains[T, P](s.c, s.head, key)
}
