// Package oakit factors the optimistic-access boilerplate every OA
// structure in this repository used to repeat by hand (list, hashtable,
// skiplist, queue, kvmap, mpmc) into one reusable, generics-based kit,
// so a new structure costs ~100 lines of structure-specific code.
//
// The OA contract a structure must follow (the paper's Algorithms 1-3)
// has four recurring obligations:
//
//  1. Optimistic reads: every batch of loads from arena nodes must be
//     followed by a warning check before the values are *used* — a
//     recycled slot may have been observed mid-read. On a warning the
//     operation restarts from scratch (Ctx.Check, tagged CauseRead).
//  2. Observable CASes run under the write barrier: hazard pointers for
//     the object and both pointer operands are published, then a warning
//     check runs, before the CAS executes (Ctx.WordCAS / Ctx.UnlinkRetire
//     wrap Algorithm 2, tagged CauseWrite).
//  3. Normalized commits: the CAS generator's emitted CAS list executes
//     only after the owner hazard pointers are installed and the
//     generator is sealed by a final warning check (Ctx.Commit wraps
//     Algorithm 3, tagged CauseSeal). A failed CAS restarts the
//     generator; success runs the wrap-up.
//  4. Engine plumbing: one core.Manager per structure universe, cached
//     per-context sessions that survive lease churn (so a pending
//     pre-allocated node is never stranded), Acquire/Release leasing,
//     stats and observability registration.
//
// The kit has two levels:
//
//   - Level 1 (Engine/Ctx, this file): concrete scaffolding plus commit
//     helpers. The structure keeps its hand-written per-hop traversal
//     loop — the only code generics cannot express without indirect
//     calls in the read path — and delegates everything else. This is
//     the level internal/list is ported onto; its hot cells must stay
//     inside the 0.85 perf gate, which rules out per-hop dispatch.
//   - Level 2 (traverse.go): a complete generic Harris-Michael keyed
//     list over any node type exposing KeyWord/NextWord. Per-hop method
//     calls go through the generics dictionary, so it trades a little
//     traversal speed for a near-zero-LoC port; use it for structures
//     whose hot path is not a tight pointer chase, and for harness
//     plumbing (dstest/linearize/chaos run against it generically).
package oakit

import (
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/normalized"
	"repro/internal/obs"
	"repro/internal/smr"
)

// Engine owns one OA universe for a structure of T-nodes: the manager
// (arena, session registry, reclamation phases) and the cached
// per-context sessions. Several roots (bucket heads, queue sentinels)
// may share one engine.
type Engine[T any] struct {
	mgr  *core.Manager[T]
	ctxs []*Ctx[T]
}

// NewEngine builds an engine sized by cfg. ownerHPs is the structure's
// owner hazard-pointer need (3·C for C CASes per generator; Algorithm 3);
// zero keeps cfg.OwnerHPs.
func NewEngine[T any](cfg core.Config, reset func(*T), ownerHPs int) *Engine[T] {
	if ownerHPs > 0 {
		cfg.OwnerHPs = ownerHPs
	}
	e := &Engine[T]{mgr: core.NewManager[T](cfg, reset)}
	e.ctxs = make([]*Ctx[T], e.mgr.MaxThreads())
	for i := range e.ctxs {
		e.ctxs[i] = &Ctx[T]{e: e, Th: e.mgr.Thread(i), pending: arena.NoSlot}
	}
	return e
}

// Manager exposes the underlying optimistic access manager.
func (e *Engine[T]) Manager() *core.Manager[T] { return e.mgr }

// NewRoot allocates a structure root (sentinel) during single-threaded
// setup; roots are never retired. It borrows thread context 0.
func (e *Engine[T]) NewRoot() uint32 { return e.mgr.Thread(0).Alloc() }

// Ctx returns the cached session for thread context tid. Sessions are
// cached per context — a context's pending pre-allocated slot survives
// lease churn, so connect/disconnect cycles strand no slots. One
// goroutine at a time per context.
func (e *Engine[T]) Ctx(tid int) *Ctx[T] { return e.ctxs[tid] }

// Acquire leases a free thread context and returns its session. Fails
// with lease.ErrNoFreeSessions when all contexts are leased and
// lease.ErrClosed after Close.
func (e *Engine[T]) Acquire() (*Ctx[T], error) {
	t, err := e.mgr.AcquireThread()
	if err != nil {
		return nil, err
	}
	c := e.ctxs[t.ID()]
	c.released.Store(false)
	return c, nil
}

// Close marks the session registry closed; outstanding sessions stay
// valid until released.
func (e *Engine[T]) Close() { e.mgr.Close() }

// Stats reports the engine's reclamation counters.
func (e *Engine[T]) Stats() smr.Stats { return e.mgr.Stats() }

// RegisterObs forwards to the core manager.
func (e *Engine[T]) RegisterObs(reg *obs.Registry) { e.mgr.RegisterObs(reg) }

// Ctx is one leased thread context plus the kit's per-operation scratch:
// the pending pre-allocated slot every insert generator reuses across
// restarts, and the normalized CAS descriptor list.
type Ctx[T any] struct {
	// Th is the raw core thread handle, exported for the structure's
	// hand-written traversal loops (Node loads + Check validation).
	Th       *core.Thread[T]
	e        *Engine[T]
	pending  uint32
	dl       normalized.DescList
	released atomic.Bool
}

// TID returns the session's thread context id.
func (c *Ctx[T]) TID() int { return c.Th.ID() }

// Node resolves an arena slot (inlines to the view lookup).
func (c *Ctx[T]) Node(slot uint32) *T { return c.Th.Node(slot) }

// Check is the read barrier of Algorithm 1: call it after every batch of
// optimistic loads, before the loaded values are used. True means the
// operation must restart from its beginning (tagged CauseRead in the
// trace ring).
func (c *Ctx[T]) Check() bool { return c.Th.Check() }

// Release returns the session's thread context to the free pool; it
// panics on double release (two goroutines sharing one context would
// corrupt hazard-pointer and warning state silently). The pending slot
// stays attached to the cached session for the next lessee.
func (c *Ctx[T]) Release() {
	if c.released.Swap(true) {
		panic("oakit: double Release of Ctx")
	}
	c.e.mgr.ReleaseThread(c.Th)
}

// FlushRetired pushes locally buffered retired nodes onward (call when a
// worker finishes).
func (c *Ctx[T]) FlushRetired() { c.Th.FlushRetired() }

// Pending returns the session's pre-allocated insert slot, allocating
// one if none is pending. The slot is reused across generator restarts
// (allocation is not repeated on a warning) and consumed with
// ConsumePending once the insert's CAS is committed. Allocation panics
// with an error wrapping lease.ErrCapacityExhausted when the arena is
// starved; see Engine-level admission control.
func (c *Ctx[T]) Pending() uint32 {
	if c.pending == arena.NoSlot {
		c.pending = c.Th.Alloc()
	}
	return c.pending
}

// ConsumePending marks the pending slot as linked into the structure.
func (c *Ctx[T]) ConsumePending() { c.pending = arena.NoSlot }

// Commit runs the end of a single-CAS normalized operation (Algorithm 3
// with C = 1): install up to three owner hazard pointers for the CAS
// operands (pass NilPtr for unused ones), seal the generator with a
// warning check, execute CAS(target: old → new), and clear the owner
// set. False means restart the generator — either the seal caught a
// warning (CauseSeal) or the CAS lost a race.
func (c *Ctx[T]) Commit(target *atomic.Uint64, old, new uint64, h0, h1, h2 arena.Ptr) bool {
	th := c.Th
	c.dl.Reset()
	c.dl.Append(target, old, new)
	th.SetOwnerHP(0, h0)
	th.SetOwnerHP(1, h1)
	th.SetOwnerHP(2, h2)
	if th.SealGenerator() {
		return false
	}
	failed := normalized.Execute(&c.dl)
	th.ClearOwnerHPs()
	return failed == 0
}

// CommitPinned is Commit, but on success the owner hazard pointers stay
// published so the wrap-up may keep reading (or CASing roots near) the
// pinned operands without an ABA window — a post-mark value read, an
// MS-queue tail swing. The caller must Unpin when done. On false
// (restart) the owner set is already cleared.
func (c *Ctx[T]) CommitPinned(target *atomic.Uint64, old, new uint64, h0, h1, h2 arena.Ptr) bool {
	th := c.Th
	c.dl.Reset()
	c.dl.Append(target, old, new)
	th.SetOwnerHP(0, h0)
	th.SetOwnerHP(1, h1)
	th.SetOwnerHP(2, h2)
	if th.SealGenerator() {
		return false
	}
	failed := normalized.Execute(&c.dl)
	if failed != 0 {
		th.ClearOwnerHPs()
		return false
	}
	return true
}

// Unpin clears the owner hazard pointers left published by a successful
// CommitPinned.
func (c *Ctx[T]) Unpin() { c.Th.ClearOwnerHPs() }

// WordCAS performs one observable CAS on a word of the node pinned by
// ptr, under the Algorithm 2 write barrier — the in-place update
// primitive (kvmap's Put-in-place, the TTL cache's deadline CAS).
// restart=true means the barrier caught a warning and the operation must
// restart (CauseWrite); otherwise swapped reports the CAS outcome.
func (c *Ctx[T]) WordCAS(ptr arena.Ptr, w *atomic.Uint64, old, new uint64) (swapped, restart bool) {
	th := c.Th
	if th.ProtectCAS(ptr, arena.NilPtr, arena.NilPtr) {
		return false, true
	}
	swapped = w.CompareAndSwap(old, new)
	th.ClearCAS()
	return swapped, false
}

// UnlinkRetire physically unlinks the marked node cur from its
// predecessor (CAS prevNext: cur → next) under the write barrier and, on
// success, retires the slot — the helping physical delete every
// Harris-Michael traversal performs. False means restart the traversal:
// the barrier caught a warning, or the unlink CAS lost a race.
func (c *Ctx[T]) UnlinkRetire(prevNext *atomic.Uint64, prev, cur, next arena.Ptr) bool {
	th := c.Th
	if th.ProtectCAS(prev, cur, next) {
		return false
	}
	if prevNext.CompareAndSwap(uint64(cur), uint64(next)) {
		th.ClearCAS()
		th.Retire(cur.Slot()) // proper: now unlinked, single unlinker
		return true
	}
	th.ClearCAS()
	return false
}

// HelpCAS performs an observable helping CAS on a structure root (an
// MS-queue tail swing): both operands are node handles, the target is a
// root, so Algorithm 2 applies to the operands only. False means the
// barrier caught a warning and the caller must restart; the CAS outcome
// itself is irrelevant to helpers (someone advanced the root).
func (c *Ctx[T]) HelpCAS(root *atomic.Uint64, old, new arena.Ptr) bool {
	th := c.Th
	if th.ProtectCAS(arena.NilPtr, old, new) {
		return false
	}
	root.CompareAndSwap(uint64(old), uint64(new))
	th.ClearCAS()
	return true
}
