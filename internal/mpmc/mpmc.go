// Package mpmc is a bounded multi-producer/multi-consumer queue of
// fixed-size multi-word payloads under the optimistic-access scheme —
// the work-distribution structure the ROADMAP asks OA to prove itself
// on, and the server's per-shard request ring.
//
// Internally each queue is a Michael-Scott linked queue over the shared
// OA arena (the same normalized enqueue/dequeue as internal/queue, with
// warning checks at every restart point and the hazard-pointer fallback
// during drain inherited from core), plus an atomic length word that
// enforces the bound: TryEnqueue reserves a length credit before
// touching the structure and rolls it back when the queue is full, so
// the bound is conservative — a full answer can race a concurrent
// dequeue, but the queue never exceeds its capacity. A linked queue
// bounded by a counter, rather than an array ring, is what lets the OA
// machinery do the memory management: nodes are arena slots recycled
// through the ordinary retire → warning → drain pipeline, and a slot
// held by a lagging consumer's hazard pointer is simply re-retired.
//
// Several queues share one Group: one arena, one session registry, one
// reclamation phase. A session leased from the group can produce to or
// consume from any of its queues — the server leases one producer
// session per connection (not one per (connection, queue)) and one
// consumer session per executor.
package mpmc

import (
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/normalized"
	"repro/internal/obs"
	"repro/internal/smr"
)

// PayloadWords is the fixed payload width in 64-bit words. Eight words
// fit a routed server request (metadata, id, key, operands, timestamps)
// and keep a node at 72 bytes — just over a cache line.
const PayloadWords = 8

// Payload is one queue element. Values pass by pointer through
// TryEnqueue/Dequeue so the hot path stays allocation-free.
type Payload [PayloadWords]uint64

// Node is the queue node; all fields atomic (stale reads under OA).
type Node struct {
	Vals [PayloadWords]atomic.Uint64
	Next atomic.Uint64
}

// ResetNode zeroes a node (the allocation memset hook).
func ResetNode(n *Node) {
	for i := range n.Vals {
		n.Vals[i].Store(0)
	}
	n.Next.Store(0)
}

// Group owns a set of bounded queues sharing one OA manager. All
// sentinels and elements live in the group's arena.
type Group struct {
	mgr      *core.Manager[Node]
	queues   []Queue
	sessions []*Session
}

// Queue is one bounded MPMC queue of a Group. The head and tail are
// structure roots (never recycled); length is the bound credit counter.
type Queue struct {
	g      *Group
	head   atomic.Uint64 // arena.Ptr of the sentinel
	tail   atomic.Uint64
	length atomic.Int64 // reserved elements, counted before linking
	bound  int64
	_      [88]byte // keep adjacent queues' hot words on separate lines
}

// NewGroup builds n bounded queues of capacity bound each, backed by one
// manager sized from cfg. cfg.Capacity is raised, if needed, to hold
// every queue full plus the local-pool float the thread contexts need to
// make allocation progress.
func NewGroup(cfg core.Config, n, bound int) *Group {
	if n < 1 {
		n = 1
	}
	if bound < 1 {
		bound = 1
	}
	cfg.OwnerHPs = 3
	if cfg.LocalPool <= 0 {
		// Ring traffic is small and bursty; a modest transfer block keeps
		// the arena floor (2·MaxThreads·LocalPool) reasonable even with a
		// producer context per connection.
		cfg.LocalPool = 16
	}
	if min := n*(bound+2) + 2*cfg.MaxThreads*cfg.LocalPool; cfg.Capacity < min {
		cfg.Capacity = min
	}
	g := &Group{
		mgr:      core.NewManager[Node](cfg, ResetNode),
		queues:   make([]Queue, n),
		sessions: make([]*Session, cfg.MaxThreads),
	}
	t0 := g.mgr.Thread(0)
	for i := range g.queues {
		q := &g.queues[i]
		q.g = g
		q.bound = int64(bound)
		s := arena.MakePtr(t0.Alloc())
		q.head.Store(uint64(s))
		q.tail.Store(uint64(s))
	}
	for i := range g.sessions {
		g.sessions[i] = &Session{g: g, t: g.mgr.Thread(i), pending: arena.NoSlot}
	}
	return g
}

// Queues returns how many queues the group holds.
func (g *Group) Queues() int { return len(g.queues) }

// Queue returns queue i.
func (g *Group) Queue(i int) *Queue { return &g.queues[i] }

// Manager exposes the underlying optimistic access manager (stats,
// lessor, trace recorder).
func (g *Group) Manager() *core.Manager[Node] { return g.mgr }

// Stats reports the group's reclamation counters.
func (g *Group) Stats() smr.Stats { return g.mgr.Stats() }

// RegisterObs forwards to the core manager.
func (g *Group) RegisterObs(reg *obs.Registry) { g.mgr.RegisterObs(reg) }

// Session returns the fixed-slot session for thread context tid —
// usable on every queue of the group. Like kvmap, session structs are
// cached per context so lease churn cannot strand a pending slot.
func (g *Group) Session(tid int) *Session { return g.sessions[tid] }

// Acquire leases a free thread context and returns its session. Fails
// with lease.ErrNoFreeSessions when all contexts are leased and
// lease.ErrClosed after Close.
func (g *Group) Acquire() (*Session, error) {
	t, err := g.mgr.AcquireThread()
	if err != nil {
		return nil, err
	}
	return g.sessions[t.ID()], nil
}

// Close marks the session registry closed; outstanding sessions stay
// valid until released.
func (g *Group) Close() { g.mgr.Close() }

// Len returns the queue's current element count (reservations included,
// so it can transiently exceed the number of linked elements, never the
// bound).
func (q *Queue) Len() int {
	n := q.length.Load()
	if n < 0 {
		n = 0
	}
	return int(n)
}

// Cap returns the queue's bound.
func (q *Queue) Cap() int { return int(q.bound) }

// Session is one leased thread context, bound to its group. A session
// may be used by one goroutine at a time, on any of the group's queues.
type Session struct {
	g       *Group
	t       *core.Thread[Node]
	pending uint32
}

// TID returns the session's thread context id.
func (s *Session) TID() int { return s.t.ID() }

// Release returns the session's thread context to the free pool. The
// pending pre-allocated slot stays attached to the cached session, so
// the next lessee of this context inherits it.
func (s *Session) Release() { s.g.mgr.ReleaseThread(s.t) }

// helpSwing advances a lagging tail (see queue.OAQueue: the CAS target
// is a root, the operands are node handles, so Algorithm 2 applies to
// them).
func (s *Session) helpSwing(q *Queue, last, next arena.Ptr) {
	th := s.t
	if th.ProtectCAS(arena.NilPtr, last, next) {
		return // restart
	}
	q.tail.CompareAndSwap(uint64(last), uint64(next))
	th.ClearCAS()
}

// TryEnqueue appends *p to q, or reports false immediately when the
// queue is at capacity. Once the length credit is reserved the enqueue
// is lock-free and always completes (normalized form: the generator
// finds the tail cell and emits the single link CAS; wrap-up swings the
// tail).
func (s *Session) TryEnqueue(q *Queue, p *Payload) bool {
	if q.length.Add(1) > q.bound {
		q.length.Add(-1)
		return false
	}
	th := s.t
	var dl normalized.DescList
	for {
		// --- CAS generator ---
		last := arena.Ptr(q.tail.Load())
		if th.Check() {
			continue
		}
		next := arena.Ptr(th.Node(last.Slot()).Next.Load())
		tailNow := arena.Ptr(q.tail.Load())
		if th.Check() {
			continue
		}
		if tailNow != last {
			continue
		}
		if !next.IsNil() {
			s.helpSwing(q, last, next)
			continue
		}
		if s.pending == arena.NoSlot {
			s.pending = th.Alloc()
		}
		n := th.Node(s.pending)
		for i, w := range p {
			n.Vals[i].Store(w)
		}
		n.Next.Store(0)
		newPtr := arena.MakePtr(s.pending)
		dl.Reset()
		dl.Append(&th.Node(last.Slot()).Next, 0, uint64(newPtr))
		th.SetOwnerHP(0, last)
		th.SetOwnerHP(1, newPtr)
		if th.SealGenerator() {
			continue
		}
		// --- CAS executor ---
		failed := normalized.Execute(&dl)
		// --- wrap-up ---
		if failed != 0 {
			th.ClearOwnerHPs()
			continue
		}
		s.pending = arena.NoSlot
		// Swing the tail while the owner hazard pointers still pin last
		// and newPtr (no ABA window).
		q.tail.CompareAndSwap(uint64(last), uint64(newPtr))
		th.ClearOwnerHPs()
		return true
	}
}

// Dequeue removes the oldest element into *p, reporting false when the
// queue is empty. The payload words are read optimistically from the
// successor node and validated by a warning check before the head-swing
// CAS is sealed, so a recycled node's new occupant is never returned.
func (s *Session) Dequeue(q *Queue, p *Payload) bool {
	th := s.t
	var dl normalized.DescList
	for {
		// --- CAS generator ---
		first := arena.Ptr(q.head.Load())
		last := arena.Ptr(q.tail.Load())
		if th.Check() {
			continue
		}
		next := arena.Ptr(th.Node(first.Slot()).Next.Load())
		headNow := arena.Ptr(q.head.Load())
		if th.Check() {
			continue
		}
		if headNow != first {
			continue
		}
		if first == last {
			if next.IsNil() {
				if th.Check() {
					continue
				}
				return false
			}
			s.helpSwing(q, last, next)
			continue
		}
		n := th.Node(next.Slot())
		for i := range p {
			p[i] = n.Vals[i].Load()
		}
		if th.Check() {
			continue
		}
		dl.Reset()
		dl.Append(&q.head, uint64(first), uint64(next))
		th.SetOwnerHP(0, first)
		th.SetOwnerHP(1, next)
		if th.SealGenerator() {
			continue
		}
		// --- CAS executor ---
		failed := normalized.Execute(&dl)
		// --- wrap-up ---
		th.ClearOwnerHPs()
		if failed != 0 {
			continue
		}
		th.Retire(first.Slot()) // the old sentinel: unlinked, single retirer
		q.length.Add(-1)
		return true
	}
}
