package mpmc

import (
	"testing"

	"repro/internal/core"
)

// The ring sits on the per-request hot path of every batched server op,
// so its operations must not allocate: payloads pass by pointer, nodes
// come from the arena through the thread-local pool, and a full or
// empty answer touches nothing but the length word. AllocsPerRun gates
// all three paths.
func TestRingOpsDoNotAllocate(t *testing.T) {
	g := NewGroup(core.Config{MaxThreads: 2, Capacity: 1 << 12}, 1, 64)
	q := g.Queue(0)
	s := g.Session(0)
	var p Payload

	churn := func() {
		for i := range p {
			p[i] = uint64(i)
		}
		if !s.TryEnqueue(q, &p) {
			t.Fatal("enqueue refused below the bound")
		}
		if !s.Dequeue(q, &p) {
			t.Fatal("dequeue missed the element")
		}
	}
	// Warm the local pool and the restart machinery first: the first few
	// operations pull transfer blocks from the shared pool.
	for i := 0; i < 256; i++ {
		churn()
	}
	if avg := testing.AllocsPerRun(500, churn); avg > 0.05 {
		t.Fatalf("enqueue+dequeue allocates %.2f objects/run", avg)
	}

	full := func() {
		for s.TryEnqueue(q, &p) {
		}
		if s.TryEnqueue(q, &p) {
			t.Fatal("enqueue past the bound")
		}
		for s.Dequeue(q, &p) {
		}
	}
	full()
	if avg := testing.AllocsPerRun(100, full); avg > 0.05 {
		t.Fatalf("fill+drain cycle allocates %.2f objects/run", avg)
	}

	empty := func() {
		if s.Dequeue(q, &p) {
			t.Fatal("dequeue from an empty ring")
		}
		if q.Len() != 0 {
			t.Fatal("phantom length")
		}
	}
	if avg := testing.AllocsPerRun(500, empty); avg > 0.05 {
		t.Fatalf("empty-ring probe allocates %.2f objects/run", avg)
	}
}
