package mpmc_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mpmc"
)

func payload(words ...uint64) mpmc.Payload {
	var p mpmc.Payload
	copy(p[:], words)
	return p
}

func TestSequentialFIFO(t *testing.T) {
	g := mpmc.NewGroup(core.Config{MaxThreads: 1}, 1, 1024)
	s, q := g.Session(0), g.Queue(0)
	var p mpmc.Payload
	if s.Dequeue(q, &p) {
		t.Fatal("empty queue dequeued")
	}
	for i := uint64(1); i <= 1000; i++ {
		in := payload(i, i*3, ^i)
		if !s.TryEnqueue(q, &in) {
			t.Fatalf("enqueue %d refused below the bound", i)
		}
	}
	if got := q.Len(); got != 1000 {
		t.Fatalf("Len = %d, want 1000", got)
	}
	for i := uint64(1); i <= 1000; i++ {
		if !s.Dequeue(q, &p) {
			t.Fatalf("lost element %d", i)
		}
		if p[0] != i || p[1] != i*3 || p[2] != ^i {
			t.Fatalf("element %d: payload %v", i, p[:3])
		}
	}
	if s.Dequeue(q, &p) {
		t.Fatal("drained queue dequeued")
	}
	if got := q.Len(); got != 0 {
		t.Fatalf("Len after drain = %d, want 0", got)
	}
}

func TestBoundedFull(t *testing.T) {
	const bound = 8
	g := mpmc.NewGroup(core.Config{MaxThreads: 1}, 1, bound)
	s, q := g.Session(0), g.Queue(0)
	for i := 0; i < bound; i++ {
		in := payload(uint64(i))
		if !s.TryEnqueue(q, &in) {
			t.Fatalf("enqueue %d refused below the bound", i)
		}
	}
	in := payload(99)
	if s.TryEnqueue(q, &in) {
		t.Fatal("enqueue accepted past the bound")
	}
	if got := q.Len(); got != bound {
		t.Fatalf("Len = %d, want %d (failed enqueue must roll back its credit)", got, bound)
	}
	var p mpmc.Payload
	if !s.Dequeue(q, &p) || p[0] != 0 {
		t.Fatalf("dequeue after full = %v %v", p[0], p)
	}
	if !s.TryEnqueue(q, &in) {
		t.Fatal("enqueue refused after a dequeue freed a slot")
	}
	if q.Cap() != bound {
		t.Fatalf("Cap = %d, want %d", q.Cap(), bound)
	}
}

// Queues of one group share the arena but must stay independent streams.
func TestGroupIndependentQueues(t *testing.T) {
	g := mpmc.NewGroup(core.Config{MaxThreads: 1}, 4, 64)
	s := g.Session(0)
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			in := payload(uint64(i)<<32 | uint64(j))
			if !s.TryEnqueue(g.Queue(i), &in) {
				t.Fatalf("queue %d enqueue %d refused", i, j)
			}
		}
	}
	var p mpmc.Payload
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			if !s.Dequeue(g.Queue(i), &p) {
				t.Fatalf("queue %d lost element %d", i, j)
			}
			if want := uint64(i)<<32 | uint64(j); p[0] != want {
				t.Fatalf("queue %d: got %#x want %#x", i, p[0], want)
			}
		}
		if s.Dequeue(g.Queue(i), &p) {
			t.Fatalf("queue %d yielded a phantom element", i)
		}
	}
}

// Concurrent producers and consumers across two queues of one group:
// every value dequeued exactly once, per-producer order preserved per
// consumer, and the bound never breached. Run under -race.
func TestConcurrentConservationAndOrder(t *testing.T) {
	const producers, consumers, perProducer, bound = 3, 3, 6000, 128
	g := mpmc.NewGroup(core.Config{MaxThreads: producers + consumers}, 2, bound)
	var wg sync.WaitGroup
	var producing atomic.Int32
	producing.Store(producers)
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			defer producing.Add(-1)
			s, err := g.Acquire()
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Release()
			q := g.Queue(pr % g.Queues())
			for i := 0; i < perProducer; i++ {
				in := payload(uint64(pr)<<32|uint64(i), uint64(i))
				for !s.TryEnqueue(q, &in) {
					runtime.Gosched() // full: wait for the consumers
				}
			}
		}(pr)
	}
	var mu sync.Mutex
	got := make(map[uint64]int)
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			s, err := g.Acquire()
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Release()
			q := g.Queue(c % g.Queues())
			lastSeen := [producers]int{-1, -1, -1}
			var p mpmc.Payload
			for {
				if !s.Dequeue(q, &p) {
					if producing.Load() != 0 {
						runtime.Gosched()
						continue
					}
					// Producers are done; one more empty read means the
					// backlog is truly drained.
					if !s.Dequeue(q, &p) {
						return
					}
				}
				pr := int(p[0] >> 32)
				i := int(p[0] & 0xFFFFFFFF)
				if uint64(i) != p[1] {
					t.Errorf("torn payload: %#x vs %d", p[0], p[1])
					return
				}
				// This consumer owns its queue's stream jointly with the
				// other consumer on the same queue, but a single producer's
				// values still arrive in order per consumer.
				if i <= lastSeen[pr] {
					t.Errorf("consumer %d saw producer %d's %d after %d", c, pr, i, lastSeen[pr])
					return
				}
				lastSeen[pr] = i
				if d := q.Len(); d > bound {
					t.Errorf("depth %d exceeds bound %d", d, bound)
					return
				}
				mu.Lock()
				got[p[0]]++
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	want := 0
	for pr := 0; pr < producers; pr++ {
		want += perProducer
	}
	if len(got) != want {
		t.Fatalf("dequeued %d distinct values, want %d", len(got), want)
	}
	for v, n := range got {
		if n != 1 {
			t.Fatalf("value %#x dequeued %d times", v, n)
		}
	}
}

// OA-specific: churn on a tiny arena must recycle nodes through phases,
// and payloads must never tear across a recycle (the optimistic payload
// read is validated before the head swing is sealed).
func TestRecyclesThroughPhases(t *testing.T) {
	g := mpmc.NewGroup(core.Config{MaxThreads: 1, Capacity: 256, LocalPool: 8}, 1, 64)
	s, q := g.Session(0), g.Queue(0)
	var p mpmc.Payload
	for i := uint64(0); i < 20000; i++ {
		in := payload(i, ^i)
		if !s.TryEnqueue(q, &in) {
			t.Fatalf("enqueue %d refused", i)
		}
		if !s.Dequeue(q, &p) {
			t.Fatalf("lost element %d", i)
		}
		if p[0] != i || p[1] != ^i {
			t.Fatalf("element %d: torn payload %v", i, p[:2])
		}
	}
	st := g.Stats()
	if st.Phases == 0 || st.Recycled == 0 {
		t.Fatalf("reclamation inactive: %+v", st)
	}
}

// Chaos: a producer goes dormant mid-stream ("stuck" from the scheme's
// point of view: holding a leased context across reclamation phase
// shifts, with warnings injected on top) while the rest of the group
// churns the arena through real phases. When it resumes, its pending
// state must still be coherent: everything it enqueues is delivered
// untorn, exactly once.
func TestChaosStuckProducerAcrossPhaseShift(t *testing.T) {
	const bound = 32
	g := mpmc.NewGroup(core.Config{MaxThreads: 3, Capacity: 512, LocalPool: 8}, 1, bound)
	mgr := g.Manager()
	q := g.Queue(0)

	stop := make(chan struct{})
	var storm sync.WaitGroup
	storm.Add(1)
	go func() {
		defer storm.Done()
		// Fake phases far above the real recycler's, changing every round
		// so the stamp check never suppresses them.
		fake := uint32(1 << 20)
		for {
			select {
			case <-stop:
				return
			default:
			}
			mgr.InjectWarnings(fake)
			fake += 2
			runtime.Gosched()
		}
	}()

	var mu sync.Mutex
	seen := make(map[uint64]int)
	var delivered atomic.Uint64
	var stuckDone atomic.Bool
	var wg sync.WaitGroup

	// Churn worker: drives real phase shifts by cycling nodes through a
	// tiny arena, and consumes everything (its own and the stuck
	// producer's) until the stuck producer has finished.
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := g.Session(1)
		var p mpmc.Payload
		for i := uint64(0); i < 30000; i++ {
			in := payload(1<<40 | i)
			for !s.TryEnqueue(q, &in) {
				if !s.Dequeue(q, &p) {
					runtime.Gosched()
					continue
				}
				record(t, &mu, seen, &p, &delivered)
			}
			if s.Dequeue(q, &p) {
				record(t, &mu, seen, &p, &delivered)
			}
		}
		for !stuckDone.Load() {
			if s.Dequeue(q, &p) {
				record(t, &mu, seen, &p, &delivered)
			} else {
				runtime.Gosched()
			}
		}
	}()

	// The stuck producer: enqueue a third, sleep across several phase
	// shifts, resume.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stuckDone.Store(true)
		s := g.Session(2)
		p0 := mgr.Phase()
		for i := uint64(0); i < 3000; i++ {
			in := payload(2<<40 | i)
			for !s.TryEnqueue(q, &in) {
				runtime.Gosched()
			}
			if i == 1000 {
				// Dormant while the churn worker moves the phase on.
				deadline := time.Now().Add(time.Second)
				for mgr.Phase() < p0+4 && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
			}
		}
	}()

	wg.Wait()
	close(stop)
	storm.Wait()

	// Drain the backlog.
	s := g.Session(0)
	var p mpmc.Payload
	for s.Dequeue(q, &p) {
		record(t, &mu, seen, &p, &delivered)
	}

	var stuck, churn int
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %#x delivered %d times", v, n)
		}
		switch v >> 40 {
		case 1:
			churn++
		case 2:
			stuck++
		}
	}
	if stuck != 3000 {
		t.Fatalf("stuck producer delivered %d/3000", stuck)
	}
	if churn != 30000 {
		t.Fatalf("churn producer delivered %d/30000", churn)
	}
	if g.Stats().Phases == 0 {
		t.Fatal("no reclamation phases — the chaos never exercised a shift")
	}
}

func record(t *testing.T, mu *sync.Mutex, seen map[uint64]int, p *mpmc.Payload, delivered *atomic.Uint64) {
	t.Helper()
	mu.Lock()
	seen[p[0]]++
	mu.Unlock()
	delivered.Add(1)
}

func BenchmarkEnqueueDequeue(b *testing.B) {
	g := mpmc.NewGroup(core.Config{MaxThreads: 1}, 1, 1<<16)
	s, q := g.Session(0), g.Queue(0)
	var in, out mpmc.Payload
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in[0] = uint64(i)
		if !s.TryEnqueue(q, &in) {
			b.Fatal("full")
		}
		if !s.Dequeue(q, &out) {
			b.Fatal("empty")
		}
	}
}

func BenchmarkEnqueueDequeueParallel(b *testing.B) {
	n := runtime.GOMAXPROCS(0)
	g := mpmc.NewGroup(core.Config{MaxThreads: n}, 1, 1<<16)
	q := g.Queue(0)
	var tid atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		s := g.Session(int(tid.Add(1)-1) % n)
		var in, out mpmc.Payload
		for pb.Next() {
			if s.TryEnqueue(q, &in) {
				s.Dequeue(q, &out)
			}
		}
	})
}
