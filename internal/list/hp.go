package list

import (
	"repro/internal/arena"
	"repro/internal/hpscheme"
	"repro/internal/obs"
	"repro/internal/smr"
)

// HPEngine runs Harris-Michael lists under Michael's hazard pointers. Every
// traversal hop publishes a hazard pointer (a sequentially consistent store
// — the fence the paper charges HP for) and validates it by re-reading its
// source; validation failure restarts the traversal from the head. This is
// the per-read overhead Figure 1 shows as 3x-5x on the list benchmarks.
type HPEngine struct {
	mgr *hpscheme.Manager[Node]
}

// hpPrev/hpCur/hpNext are the three hazard-pointer roles of Michael's find.
const (
	hpPrev = iota
	hpCur
	hpNext
	// HPsNeeded is the per-thread hazard pointer count for the list.
	HPsNeeded
)

// NewHPEngine builds an engine; cfg.HPsPerThread is forced to the list's
// need.
func NewHPEngine(cfg hpscheme.Config) *HPEngine {
	cfg.HPsPerThread = HPsNeeded
	return &HPEngine{mgr: hpscheme.NewManager[Node](cfg, ResetNode)}
}

// Manager exposes the underlying hazard-pointers manager.
func (e *HPEngine) Manager() *hpscheme.Manager[Node] { return e.mgr }

// NewHead allocates a sentinel head (single-threaded setup, context 0).
func (e *HPEngine) NewHead() uint32 { return e.mgr.Thread(0).Alloc() }

// HPThread is the per-worker handle.
type HPThread struct {
	e       *HPEngine
	t       *hpscheme.Thread[Node]
	pending uint32
}

// Thread binds worker id to the engine.
func (e *HPEngine) Thread(id int) *HPThread {
	return &HPThread{e: e, t: e.mgr.Thread(id), pending: arena.NoSlot}
}

// find is Michael's Find: it positions on the first unmarked node with
// key ≥ key, helping to physically delete marked nodes on the way. On
// return with ok=true, hpPrev protects prevSlot (unless it is the head
// sentinel) and hpCur protects cur; the caller may CAS on them until it
// clears the hazard pointers.
func (t *HPThread) find(head uint32, key uint64) (prevSlot uint32, cur, next arena.Ptr, ckey uint64, ok bool) {
	th := t.t
restart:
	for {
		prevSlot = head
		th.Protect(hpPrev, arena.NilPtr)
		cur = arena.Ptr(th.Node(head).Next.Load())
		for {
			if cur.IsNil() {
				return prevSlot, cur, 0, 0, false
			}
			// Protect cur, validate against prev.next (re-read).
			th.Protect(hpCur, cur)
			if arena.Ptr(th.Node(prevSlot).Next.Load()) != cur {
				th.CountRestart()
				continue restart
			}
			n := th.Node(cur.Slot())
			next = arena.Ptr(n.Next.Load())
			// Protect next, validate it is still cur's successor.
			th.Protect(hpNext, next)
			if arena.Ptr(n.Next.Load()) != next {
				th.CountRestart()
				continue restart
			}
			ckey = n.Key.Load()
			if !next.Marked() {
				if arena.Ptr(th.Node(prevSlot).Next.Load()) != cur {
					th.CountRestart()
					continue restart
				}
				if ckey >= key {
					return prevSlot, cur, next, ckey, true
				}
				prevSlot = cur.Slot()
				th.Protect(hpPrev, cur)
			} else {
				// Help the physical delete; the unlinker retires.
				if th.Node(prevSlot).Next.CompareAndSwap(uint64(cur), uint64(next.Unmark())) {
					th.Retire(cur.Slot())
				} else {
					th.CountRestart()
					continue restart
				}
			}
			cur = next.Unmark()
		}
	}
}

// ContainsAt reports membership. Even the read-only operation pays the
// full protect/validate protocol — the cost hazard pointers impose on
// traversals.
func (t *HPThread) ContainsAt(head uint32, key uint64) bool {
	_, _, next, ckey, ok := t.find(head, key)
	t.t.ClearAll()
	return ok && ckey == key && !next.Marked()
}

// InsertAt adds key; false if present.
func (t *HPThread) InsertAt(head uint32, key uint64) bool {
	th := t.t
	for {
		prevSlot, cur, _, ckey, ok := t.find(head, key)
		if ok && ckey == key {
			th.ClearAll()
			return false
		}
		if t.pending == arena.NoSlot {
			t.pending = th.Alloc()
		}
		n := th.Node(t.pending)
		n.Key.Store(key)
		n.Next.Store(uint64(cur))
		if th.Node(prevSlot).Next.CompareAndSwap(uint64(cur), uint64(arena.MakePtr(t.pending))) {
			th.ClearAll()
			t.pending = arena.NoSlot
			return true
		}
		th.CountRestart()
	}
}

// DeleteAt removes key; false if absent. Logical delete marks the node;
// the physical delete is attempted once, and otherwise left to future
// finds (Michael's algorithm).
func (t *HPThread) DeleteAt(head uint32, key uint64) bool {
	th := t.t
	for {
		prevSlot, cur, next, ckey, ok := t.find(head, key)
		if !ok || ckey != key {
			th.ClearAll()
			return false
		}
		if !th.Node(cur.Slot()).Next.CompareAndSwap(uint64(next), uint64(next.Mark())) {
			th.CountRestart()
			continue
		}
		// Attempt the physical delete; on failure some find will do it.
		if th.Node(prevSlot).Next.CompareAndSwap(uint64(cur), uint64(next)) {
			th.Retire(cur.Slot())
		}
		th.ClearAll()
		return true
	}
}

// HP is a single linked-list set under hazard pointers.
type HP struct {
	e    *HPEngine
	head uint32
}

// NewHP builds an empty list sized by cfg.
func NewHP(cfg hpscheme.Config) *HP {
	e := NewHPEngine(cfg)
	return &HP{e: e, head: e.NewHead()}
}

// Engine exposes the underlying engine.
func (l *HP) Engine() *HPEngine { return l.e }

// Scheme implements smr.Set.
func (l *HP) Scheme() smr.Scheme { return smr.HP }

// Stats implements smr.Set.
func (l *HP) Stats() smr.Stats { return l.e.mgr.Stats() }

// RegisterObs implements obs.Registrar by forwarding to the scheme manager.
func (l *HP) RegisterObs(reg *obs.Registry) { l.e.mgr.RegisterObs(reg) }

// Session implements smr.Set.
func (l *HP) Session(tid int) smr.Session { return &hpSession{t: l.e.Thread(tid), head: l.head} }

type hpSession struct {
	t    *HPThread
	head uint32
}

func (s *hpSession) Insert(key uint64) bool   { return s.t.InsertAt(s.head, key) }
func (s *hpSession) Delete(key uint64) bool   { return s.t.DeleteAt(s.head, key) }
func (s *hpSession) Contains(key uint64) bool { return s.t.ContainsAt(s.head, key) }
