package list_test

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/list"
)

// TestOAListWarningStorm injects spurious warning bits while a worker runs
// operations against a model. A warning may only ever cause a restart of a
// parallelizable method — results must stay exactly sequential. This
// hammers every restart edge in the generator/wrap-up code far beyond what
// organic phase changes produce.
func TestOAListWarningStorm(t *testing.T) {
	l := list.NewOA(core.Config{MaxThreads: 2, Capacity: 8192, LocalPool: 16})
	mgr := l.Engine().Manager()

	stop := make(chan struct{})
	storming := make(chan struct{})
	go func() {
		defer close(storming)
		// Fake phases far above anything the real recycler uses, changing
		// every round so the stamp check never suppresses them.
		fake := uint32(1 << 20)
		for {
			select {
			case <-stop:
				return
			default:
			}
			mgr.InjectWarnings(fake)
			fake += 2
			// Let the worker make progress between storms.
			for i := 0; i < 200; i++ {
				atomic.LoadUint32(&fake)
			}
		}
	}()

	s := l.Session(0)
	model := map[uint64]bool{}
	rng := rand.New(rand.NewSource(31337))
	for i := 0; i < 40000; i++ {
		if i%512 == 0 {
			// On a single-CPU runner the op loop can finish inside one
			// scheduler timeslice, before the storm goroutine ever runs;
			// yield so warnings actually land between operations.
			runtime.Gosched()
		}
		k := uint64(rng.Intn(128)) + 1
		switch rng.Intn(3) {
		case 0:
			if got, want := s.Insert(k), !model[k]; got != want {
				t.Fatalf("op %d: Insert(%d) = %v, want %v", i, k, got, want)
			}
			model[k] = true
		case 1:
			if got, want := s.Delete(k), model[k]; got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, want)
			}
			delete(model, k)
		default:
			if got, want := s.Contains(k), model[k]; got != want {
				t.Fatalf("op %d: Contains(%d) = %v, want %v", i, k, got, want)
			}
		}
	}
	close(stop)
	<-storming
	if st := l.Stats(); st.Restarts == 0 {
		t.Fatal("storm produced no restarts — injection not reaching the barriers")
	}
}
