package list

import (
	"repro/internal/anchors"
	"repro/internal/arena"
	"repro/internal/obs"
	"repro/internal/smr"
)

// AnchorsEngine runs Harris-Michael lists under the anchors cost model
// (see package anchors for the scheme description and its documented
// simplifications). Traversals drop an anchor — one fence — every K node
// visits and validate it, restarting from the head on failure; reclamation
// spares anchored segments plus anything inside an active operation's era.
type AnchorsEngine struct {
	mgr *anchors.Manager[Node]
}

// NewAnchorsEngine builds an engine wired to the list's successor relation.
func NewAnchorsEngine(cfg anchors.Config) *AnchorsEngine {
	e := &AnchorsEngine{}
	succ := func(slot uint32) arena.Ptr {
		return arena.Ptr(e.mgr.Arena().At(slot).Next.Load())
	}
	e.mgr = anchors.NewManager[Node](cfg, ResetNode, succ)
	return e
}

// Manager exposes the underlying anchors manager.
func (e *AnchorsEngine) Manager() *anchors.Manager[Node] { return e.mgr }

// NewHead allocates a sentinel head (single-threaded setup, context 0).
func (e *AnchorsEngine) NewHead() uint32 { return e.mgr.Thread(0).Alloc() }

// AnchorsThread is the per-worker handle.
type AnchorsThread struct {
	e       *AnchorsEngine
	t       *anchors.Thread[Node]
	pending uint32
}

// Thread binds worker id to the engine.
func (e *AnchorsEngine) Thread(id int) *AnchorsThread {
	return &AnchorsThread{e: e, t: e.mgr.Thread(id), pending: arena.NoSlot}
}

// visit drops an anchor every K hops and validates it against prev.next;
// returns true when the traversal must restart (anchor recovery analogue).
func (t *AnchorsThread) visit(prevSlot uint32, cur arena.Ptr) bool {
	th := t.t
	if !th.Visit(cur) {
		return false
	}
	// Validate: cur must still be prev's successor (possibly as a marked
	// pointer target); a stale anchor means recovery — restart.
	if arena.Ptr(th.Node(prevSlot).Next.Load()).Unmark() != cur.Unmark() {
		th.CountRestart()
		return true
	}
	return false
}

func (t *AnchorsThread) search(head uint32, key uint64) (prevSlot uint32, cur, next arena.Ptr, ckey uint64, ok, restart bool) {
	th := t.t
	prevSlot = head
	cur = arena.Ptr(th.Node(head).Next.Load())
	for {
		if cur.IsNil() {
			return prevSlot, cur, 0, 0, false, false
		}
		if t.visit(prevSlot, cur) {
			return 0, 0, 0, 0, false, true
		}
		n := th.Node(cur.Slot())
		next = arena.Ptr(n.Next.Load())
		ckey = n.Key.Load()
		if arena.Ptr(th.Node(prevSlot).Next.Load()) != cur {
			return 0, 0, 0, 0, false, true
		}
		if !next.Marked() {
			if ckey >= key {
				return prevSlot, cur, next, ckey, true, false
			}
			prevSlot = cur.Slot()
		} else {
			if th.Node(prevSlot).Next.CompareAndSwap(uint64(cur), uint64(next.Unmark())) {
				th.Retire(cur.Slot())
			} else {
				return 0, 0, 0, 0, false, true
			}
		}
		cur = next.Unmark()
	}
}

// ContainsAt reports membership.
func (t *AnchorsThread) ContainsAt(head uint32, key uint64) bool {
	th := t.t
	th.OnOpStart()
	defer th.OnOpEnd()
restart:
	for {
		prevSlot := head
		cur := arena.Ptr(th.Node(head).Next.Load())
		for !cur.IsNil() {
			if t.visit(prevSlot, cur) {
				continue restart
			}
			n := th.Node(cur.Unmark().Slot())
			next := arena.Ptr(n.Next.Load())
			ckey := n.Key.Load()
			if ckey >= key {
				return ckey == key && !next.Marked()
			}
			prevSlot = cur.Unmark().Slot()
			cur = next.Unmark()
		}
		return false
	}
}

// InsertAt adds key; false if present.
func (t *AnchorsThread) InsertAt(head uint32, key uint64) bool {
	th := t.t
	th.OnOpStart()
	defer th.OnOpEnd()
	for {
		prevSlot, cur, _, ckey, ok, restart := t.search(head, key)
		if restart {
			continue
		}
		if ok && ckey == key {
			return false
		}
		if t.pending == arena.NoSlot {
			t.pending = th.Alloc()
		}
		n := th.Node(t.pending)
		n.Key.Store(key)
		n.Next.Store(uint64(cur))
		if th.Node(prevSlot).Next.CompareAndSwap(uint64(cur), uint64(arena.MakePtr(t.pending))) {
			t.pending = arena.NoSlot
			return true
		}
	}
}

// DeleteAt removes key; false if absent.
func (t *AnchorsThread) DeleteAt(head uint32, key uint64) bool {
	th := t.t
	th.OnOpStart()
	defer th.OnOpEnd()
	for {
		prevSlot, cur, next, ckey, ok, restart := t.search(head, key)
		if restart {
			continue
		}
		if !ok || ckey != key {
			return false
		}
		if !th.Node(cur.Slot()).Next.CompareAndSwap(uint64(next), uint64(next.Mark())) {
			continue
		}
		if th.Node(prevSlot).Next.CompareAndSwap(uint64(cur), uint64(next)) {
			th.Retire(cur.Slot())
		}
		return true
	}
}

// AnchorsList is a single linked-list set under the anchors scheme.
type AnchorsList struct {
	e    *AnchorsEngine
	head uint32
}

// NewAnchors builds an empty list sized by cfg.
func NewAnchors(cfg anchors.Config) *AnchorsList {
	e := NewAnchorsEngine(cfg)
	return &AnchorsList{e: e, head: e.NewHead()}
}

// Engine exposes the underlying engine.
func (l *AnchorsList) Engine() *AnchorsEngine { return l.e }

// Scheme implements smr.Set.
func (l *AnchorsList) Scheme() smr.Scheme { return smr.Anchors }

// Stats implements smr.Set.
func (l *AnchorsList) Stats() smr.Stats { return l.e.mgr.Stats() }

// RegisterObs implements obs.Registrar by forwarding to the scheme manager.
func (l *AnchorsList) RegisterObs(reg *obs.Registry) { l.e.mgr.RegisterObs(reg) }

// Session implements smr.Set.
func (l *AnchorsList) Session(tid int) smr.Session {
	return &anchorsSession{t: l.e.Thread(tid), head: l.head}
}

type anchorsSession struct {
	t    *AnchorsThread
	head uint32
}

func (s *anchorsSession) Insert(key uint64) bool   { return s.t.InsertAt(s.head, key) }
func (s *anchorsSession) Delete(key uint64) bool   { return s.t.DeleteAt(s.head, key) }
func (s *anchorsSession) Contains(key uint64) bool { return s.t.ContainsAt(s.head, key) }
