package list_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/list"
)

// FuzzOAListVsModel drives the OA list (the paper's running example, and
// the variant with the richest barrier interplay) with a byte-encoded
// operation sequence, comparing every result against a model map. Byte
// layout: two bytes per op — opcode%3 and a key. Run beyond the seed
// corpus with `go test -fuzz FuzzOAListVsModel ./internal/list`.
func FuzzOAListVsModel(f *testing.F) {
	f.Add([]byte{0, 1, 2, 1, 1, 1, 0, 2, 2, 2})
	f.Add([]byte{0, 5, 0, 5, 1, 5, 1, 5, 2, 5})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// A tiny capacity maximizes reclamation pressure per op.
		l := list.NewOA(core.Config{MaxThreads: 1, Capacity: 256, LocalPool: 4})
		s := l.Session(0)
		model := map[uint64]bool{}
		for i := 0; i+1 < len(data); i += 2 {
			op := data[i] % 3
			k := uint64(data[i+1]) + 1
			switch op {
			case 0:
				if got, want := s.Insert(k), !model[k]; got != want {
					t.Fatalf("op %d: Insert(%d) = %v, want %v", i/2, k, got, want)
				}
				model[k] = true
			case 1:
				if got, want := s.Delete(k), model[k]; got != want {
					t.Fatalf("op %d: Delete(%d) = %v, want %v", i/2, k, got, want)
				}
				delete(model, k)
			default:
				if got, want := s.Contains(k), model[k]; got != want {
					t.Fatalf("op %d: Contains(%d) = %v, want %v", i/2, k, got, want)
				}
			}
		}
		// Full sweep at the end: the structure must equal the model.
		for k := uint64(1); k <= 256; k++ {
			if got := s.Contains(k); got != model[k] {
				t.Fatalf("final sweep: Contains(%d) = %v, want %v", k, got, model[k])
			}
		}
	})
}
