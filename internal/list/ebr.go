package list

import (
	"repro/internal/arena"
	"repro/internal/ebr"
	"repro/internal/obs"
	"repro/internal/smr"
)

// EBREngine runs Harris-Michael lists under epoch-based reclamation:
// traversals are raw loads (no per-read barrier at all); the only overhead
// is the epoch announcement bracketing each operation — cheap on long
// traversals, dominant on the hash table's very short operations (Fig. 1).
type EBREngine struct {
	mgr *ebr.Manager[Node]
}

// NewEBREngine builds an engine.
func NewEBREngine(cfg ebr.Config) *EBREngine {
	return &EBREngine{mgr: ebr.NewManager[Node](cfg, ResetNode)}
}

// Manager exposes the underlying EBR manager.
func (e *EBREngine) Manager() *ebr.Manager[Node] { return e.mgr }

// NewHead allocates a sentinel head (single-threaded setup, context 0).
func (e *EBREngine) NewHead() uint32 { return e.mgr.Thread(0).Alloc() }

// EBRThread is the per-worker handle.
type EBRThread struct {
	e       *EBREngine
	t       *ebr.Thread[Node]
	pending uint32
}

// Thread binds worker id to the engine.
func (e *EBREngine) Thread(id int) *EBRThread {
	return &EBRThread{e: e, t: e.mgr.Thread(id), pending: arena.NoSlot}
}

// search positions on the first unmarked node with key ≥ key, helping
// physical deletes. Safe because the caller announced an epoch: nothing
// reachable at announcement can be freed until the operation ends.
func (t *EBRThread) search(head uint32, key uint64) (prevSlot uint32, cur, next arena.Ptr, ckey uint64, ok, restart bool) {
	th := t.t
	prevSlot = head
	cur = arena.Ptr(th.Node(head).Next.Load())
	for {
		if cur.IsNil() {
			return prevSlot, cur, 0, 0, false, false
		}
		n := th.Node(cur.Slot())
		next = arena.Ptr(n.Next.Load())
		ckey = n.Key.Load()
		if arena.Ptr(th.Node(prevSlot).Next.Load()) != cur {
			return 0, 0, 0, 0, false, true
		}
		if !next.Marked() {
			if ckey >= key {
				return prevSlot, cur, next, ckey, true, false
			}
			prevSlot = cur.Slot()
		} else {
			if th.Node(prevSlot).Next.CompareAndSwap(uint64(cur), uint64(next.Unmark())) {
				th.Retire(cur.Slot())
			} else {
				return 0, 0, 0, 0, false, true
			}
		}
		cur = next.Unmark()
	}
}

// ContainsAt reports membership (wait-free traversal, raw loads).
func (t *EBRThread) ContainsAt(head uint32, key uint64) bool {
	th := t.t
	th.OnOpStart()
	defer th.OnOpEnd()
	cur := arena.Ptr(th.Node(head).Next.Load())
	for !cur.IsNil() {
		n := th.Node(cur.Unmark().Slot())
		next := arena.Ptr(n.Next.Load())
		ckey := n.Key.Load()
		if ckey >= key {
			return ckey == key && !next.Marked()
		}
		cur = next.Unmark()
	}
	return false
}

// InsertAt adds key; false if present.
func (t *EBRThread) InsertAt(head uint32, key uint64) bool {
	th := t.t
	th.OnOpStart()
	defer th.OnOpEnd()
	for {
		prevSlot, cur, _, ckey, ok, restart := t.search(head, key)
		if restart {
			continue
		}
		if ok && ckey == key {
			return false
		}
		if t.pending == arena.NoSlot {
			t.pending = th.Alloc()
		}
		n := th.Node(t.pending)
		n.Key.Store(key)
		n.Next.Store(uint64(cur))
		if th.Node(prevSlot).Next.CompareAndSwap(uint64(cur), uint64(arena.MakePtr(t.pending))) {
			t.pending = arena.NoSlot
			return true
		}
	}
}

// DeleteAt removes key; false if absent.
func (t *EBRThread) DeleteAt(head uint32, key uint64) bool {
	th := t.t
	th.OnOpStart()
	defer th.OnOpEnd()
	for {
		prevSlot, cur, next, ckey, ok, restart := t.search(head, key)
		if restart {
			continue
		}
		if !ok || ckey != key {
			return false
		}
		if !th.Node(cur.Slot()).Next.CompareAndSwap(uint64(next), uint64(next.Mark())) {
			continue
		}
		if th.Node(prevSlot).Next.CompareAndSwap(uint64(cur), uint64(next)) {
			th.Retire(cur.Slot())
		}
		return true
	}
}

// EBR is a single linked-list set under epoch-based reclamation.
type EBR struct {
	e    *EBREngine
	head uint32
}

// NewEBR builds an empty list sized by cfg.
func NewEBR(cfg ebr.Config) *EBR {
	e := NewEBREngine(cfg)
	return &EBR{e: e, head: e.NewHead()}
}

// Engine exposes the underlying engine.
func (l *EBR) Engine() *EBREngine { return l.e }

// Scheme implements smr.Set.
func (l *EBR) Scheme() smr.Scheme { return smr.EBR }

// Stats implements smr.Set.
func (l *EBR) Stats() smr.Stats { return l.e.mgr.Stats() }

// RegisterObs implements obs.Registrar by forwarding to the scheme manager.
func (l *EBR) RegisterObs(reg *obs.Registry) { l.e.mgr.RegisterObs(reg) }

// Session implements smr.Set.
func (l *EBR) Session(tid int) smr.Session { return &ebrSession{t: l.e.Thread(tid), head: l.head} }

type ebrSession struct {
	t    *EBRThread
	head uint32
}

func (s *ebrSession) Insert(key uint64) bool   { return s.t.InsertAt(s.head, key) }
func (s *ebrSession) Delete(key uint64) bool   { return s.t.DeleteAt(s.head, key) }
func (s *ebrSession) Contains(key uint64) bool { return s.t.ContainsAt(s.head, key) }
