package list

import (
	"repro/internal/arena"
	"repro/internal/norecl"
	"repro/internal/obs"
	"repro/internal/smr"
)

// NoReclEngine runs Harris-Michael lists with no reclamation — the paper's
// baseline and the denominator of every throughput ratio. Traversals are
// raw loads; retire is a counter.
type NoReclEngine struct {
	mgr *norecl.Manager[Node]
}

// NewNoReclEngine builds an engine.
func NewNoReclEngine(cfg norecl.Config) *NoReclEngine {
	return &NoReclEngine{mgr: norecl.NewManager[Node](cfg, ResetNode)}
}

// Manager exposes the underlying manager.
func (e *NoReclEngine) Manager() *norecl.Manager[Node] { return e.mgr }

// NewHead allocates a sentinel head (single-threaded setup, context 0).
func (e *NoReclEngine) NewHead() uint32 { return e.mgr.Thread(0).Alloc() }

// NoReclThread is the per-worker handle.
type NoReclThread struct {
	e       *NoReclEngine
	t       *norecl.Thread[Node]
	pending uint32
}

// Thread binds worker id to the engine.
func (e *NoReclEngine) Thread(id int) *NoReclThread {
	return &NoReclThread{e: e, t: e.mgr.Thread(id), pending: arena.NoSlot}
}

func (t *NoReclThread) search(head uint32, key uint64) (prevSlot uint32, cur, next arena.Ptr, ckey uint64, ok, restart bool) {
	th := t.t
	prevSlot = head
	cur = arena.Ptr(th.Node(head).Next.Load())
	for {
		if cur.IsNil() {
			return prevSlot, cur, 0, 0, false, false
		}
		n := th.Node(cur.Slot())
		next = arena.Ptr(n.Next.Load())
		ckey = n.Key.Load()
		if arena.Ptr(th.Node(prevSlot).Next.Load()) != cur {
			return 0, 0, 0, 0, false, true
		}
		if !next.Marked() {
			if ckey >= key {
				return prevSlot, cur, next, ckey, true, false
			}
			prevSlot = cur.Slot()
		} else {
			if th.Node(prevSlot).Next.CompareAndSwap(uint64(cur), uint64(next.Unmark())) {
				th.Retire(cur.Slot())
			} else {
				return 0, 0, 0, 0, false, true
			}
		}
		cur = next.Unmark()
	}
}

// ContainsAt reports membership.
func (t *NoReclThread) ContainsAt(head uint32, key uint64) bool {
	th := t.t
	cur := arena.Ptr(th.Node(head).Next.Load())
	for !cur.IsNil() {
		n := th.Node(cur.Unmark().Slot())
		next := arena.Ptr(n.Next.Load())
		ckey := n.Key.Load()
		if ckey >= key {
			return ckey == key && !next.Marked()
		}
		cur = next.Unmark()
	}
	return false
}

// InsertAt adds key; false if present.
func (t *NoReclThread) InsertAt(head uint32, key uint64) bool {
	th := t.t
	for {
		prevSlot, cur, _, ckey, ok, restart := t.search(head, key)
		if restart {
			continue
		}
		if ok && ckey == key {
			return false
		}
		if t.pending == arena.NoSlot {
			t.pending = th.Alloc()
		}
		n := th.Node(t.pending)
		n.Key.Store(key)
		n.Next.Store(uint64(cur))
		if th.Node(prevSlot).Next.CompareAndSwap(uint64(cur), uint64(arena.MakePtr(t.pending))) {
			t.pending = arena.NoSlot
			return true
		}
	}
}

// DeleteAt removes key; false if absent.
func (t *NoReclThread) DeleteAt(head uint32, key uint64) bool {
	th := t.t
	for {
		prevSlot, cur, next, ckey, ok, restart := t.search(head, key)
		if restart {
			continue
		}
		if !ok || ckey != key {
			return false
		}
		if !th.Node(cur.Slot()).Next.CompareAndSwap(uint64(next), uint64(next.Mark())) {
			continue
		}
		if th.Node(prevSlot).Next.CompareAndSwap(uint64(cur), uint64(next)) {
			th.Retire(cur.Slot())
		}
		return true
	}
}

// NoRecl is a single linked-list set without reclamation.
type NoRecl struct {
	e    *NoReclEngine
	head uint32
}

// NewNoRecl builds an empty list sized by cfg.
func NewNoRecl(cfg norecl.Config) *NoRecl {
	e := NewNoReclEngine(cfg)
	return &NoRecl{e: e, head: e.NewHead()}
}

// Engine exposes the underlying engine.
func (l *NoRecl) Engine() *NoReclEngine { return l.e }

// Scheme implements smr.Set.
func (l *NoRecl) Scheme() smr.Scheme { return smr.NoRecl }

// Stats implements smr.Set.
func (l *NoRecl) Stats() smr.Stats { return l.e.mgr.Stats() }

// RegisterObs implements obs.Registrar by forwarding to the scheme manager.
func (l *NoRecl) RegisterObs(reg *obs.Registry) { l.e.mgr.RegisterObs(reg) }

// Session implements smr.Set.
func (l *NoRecl) Session(tid int) smr.Session {
	return &noreclSession{t: l.e.Thread(tid), head: l.head}
}

type noreclSession struct {
	t    *NoReclThread
	head uint32
}

func (s *noreclSession) Insert(key uint64) bool   { return s.t.InsertAt(s.head, key) }
func (s *noreclSession) Delete(key uint64) bool   { return s.t.DeleteAt(s.head, key) }
func (s *noreclSession) Contains(key uint64) bool { return s.t.ContainsAt(s.head, key) }
