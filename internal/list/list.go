// Package list implements the Harris-Michael lock-free linked list
// (Michael, SPAA 2002) in the normalized form of Listing 1 / Appendix C of
// the paper, once per reclamation scheme:
//
//	OAEngine      — optimistic access barriers (Algorithms 1-3)
//	HPEngine      — Michael's hazard pointers (protect + fence + validate per hop)
//	EBREngine     — epoch-based reclamation (announce per operation)
//	NoReclEngine  — no reclamation
//	AnchorsEngine — the anchors cost model (one fence per K hops)
//
// Engines expose head-relative operations (InsertAt/DeleteAt/ContainsAt) so
// the hash table can run one engine across many bucket lists; the List
// types at the bottom of the package bind an engine to a single head and
// implement smr.Set.
//
// The list is an ordered set of uint64 keys. Each bucket/list starts with a
// sentinel head node that is never marked, never retired and never
// reclaimed — so traversals may read it without protection (Appendix E,
// optimization 1).
package list

import "sync/atomic"

// Node is the list node. Every field is atomic: under the optimistic
// access scheme a thread may read a node after its slot was recycled and
// rewritten, so all cross-thread accesses must be data-race-free.
type Node struct {
	// Key is the node's key; written only between allocation and linking.
	Key atomic.Uint64
	// Next holds arena.Ptr bits: successor handle plus the logical-delete
	// mark in bit 0 (Harris' marked pointer).
	Next atomic.Uint64
}

// ResetNode zeroes a node; it is every engine's allocation reset hook
// (Algorithm 5's memset).
func ResetNode(n *Node) {
	n.Key.Store(0)
	n.Next.Store(0)
}
