package list

import (
	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/oakit"
	"repro/internal/obs"
	"repro/internal/smr"
)

// OAEngine runs Harris-Michael lists under the optimistic access scheme,
// on the Level-1 oakit scaffolding: the engine/session plumbing, the
// normalized commit (Algorithm 3) and the helping physical delete
// (Algorithm 2) come from the kit; only the per-hop traversal loops —
// the structure-specific reads — live here. One operation executes at
// most one CAS (the generator's list has length ≤ 1), so three owner
// hazard pointers suffice (Algorithm 3 with C = 1).
type OAEngine struct {
	kit *oakit.Engine[Node]
}

// OAOwnerHPs is 3·C for the list's C = 1.
const OAOwnerHPs = 3

// NewOAEngine builds an engine; cfg.OwnerHPs is forced to the list's need.
func NewOAEngine(cfg core.Config) *OAEngine {
	return &OAEngine{kit: oakit.NewEngine[Node](cfg, ResetNode, OAOwnerHPs)}
}

// Manager exposes the underlying optimistic access manager.
func (e *OAEngine) Manager() *core.Manager[Node] { return e.kit.Manager() }

// NewHead allocates a sentinel head for a new (empty) list. Called during
// single-threaded setup; it borrows thread context 0.
func (e *OAEngine) NewHead() uint32 { return e.kit.NewRoot() }

// OAThread is the per-worker handle.
type OAThread struct {
	c *oakit.Ctx[Node]
}

// Thread binds worker id to the engine. Contexts (and their pending
// pre-allocated insert slot) are cached per id in the kit engine.
func (e *OAEngine) Thread(id int) *OAThread {
	return &OAThread{c: e.kit.Ctx(id)}
}

// ContainsAt reports whether key is in the list rooted at head. It is the
// wait-free contains of the Harris-Michael list: a pure read-only
// normalized operation — no hazard pointers, no fences; each hop costs two
// loads plus one warning check (the paper's Algorithm 1, with the
// independent-reads optimization of Appendix E batching the key and next
// reads under one check).
func (t *OAThread) ContainsAt(head uint32, key uint64) bool {
	th := t.c.Th
restart:
	for {
		cur := arena.Ptr(th.Node(head).Next.Load())
		if th.Check() {
			continue restart
		}
		for !cur.IsNil() {
			n := th.Node(cur.Unmark().Slot())
			next := arena.Ptr(n.Next.Load())
			ckey := n.Key.Load()
			if th.Check() {
				continue restart
			}
			if ckey >= key {
				return ckey == key && !next.Marked()
			}
			cur = next.Unmark()
		}
		return false
	}
}

// search is the shared CAS-generator search loop of Listing 1: it returns
// with cur positioned on the first unmarked node with key ≥ key (curSlot
// valid, ok=true) or reports the key absent past the end (ok=false). It
// helps physically delete marked nodes (oakit.UnlinkRetire: the write
// barrier of Algorithm 2 plus the retire of the unlinked slot).
// restart=true means the caller must restart the generator.
func (t *OAThread) search(head uint32, key uint64) (prevSlot uint32, cur, next arena.Ptr, ckey uint64, ok, restart bool) {
	th := t.c.Th
	prevSlot = head
	cur = arena.Ptr(th.Node(head).Next.Load())
	if th.Check() {
		return 0, 0, 0, 0, false, true
	}
	for {
		if cur.IsNil() {
			return prevSlot, cur, 0, 0, false, false
		}
		curSlot := cur.Slot()
		n := th.Node(curSlot)
		next = arena.Ptr(n.Next.Load())
		ckey = n.Key.Load()
		tmp := arena.Ptr(th.Node(prevSlot).Next.Load())
		if th.Check() {
			return 0, 0, 0, 0, false, true
		}
		if tmp != cur {
			return 0, 0, 0, 0, false, true // Listing 1 line 14: goto start
		}
		if !next.Marked() {
			if ckey >= key {
				return prevSlot, cur, next, ckey, true, false
			}
			prevSlot = curSlot
		} else if !t.c.UnlinkRetire(&th.Node(prevSlot).Next, arena.MakePtr(prevSlot), cur, next.Unmark()) {
			return 0, 0, 0, 0, false, true
		}
		cur = next.Unmark()
	}
}

// InsertAt adds key to the list rooted at head; false if already present.
// The generator searches and fills the kit's pending node; the executor
// and wrap-up (owner HPs, seal, link CAS) are oakit.Commit.
func (t *OAThread) InsertAt(head uint32, key uint64) bool {
	th := t.c.Th
	for {
		// --- CAS generator ---
		prevSlot, cur, _, ckey, found, restart := t.search(head, key)
		if restart {
			continue
		}
		if found && ckey == key {
			return false // empty CAS list; wrap-up reports "already present"
		}
		slot := t.c.Pending()
		n := th.Node(slot)
		n.Key.Store(key)
		n.Next.Store(uint64(cur))
		// Algorithm 3: protect O=prev, A2=cur, A3=new node.
		if !t.c.Commit(&th.Node(prevSlot).Next, uint64(cur), uint64(arena.MakePtr(slot)),
			arena.MakePtr(prevSlot), cur, arena.MakePtr(slot)) {
			continue // RESTART_GENERATOR
		}
		t.c.ConsumePending()
		return true
	}
}

// DeleteAt removes key from the list rooted at head; false if absent.
// This is Listing 1 / Appendix C: the generator emits the logical delete
// (marking the next pointer); the physical delete is left to future
// searches, which retire the node when they unlink it.
func (t *OAThread) DeleteAt(head uint32, key uint64) bool {
	th := t.c.Th
	for {
		// --- CAS generator ---
		_, cur, next, ckey, found, restart := t.search(head, key)
		if restart {
			continue
		}
		if !found || ckey != key {
			return false // empty CAS list; wrap-up reports FALSE
		}
		// Listing 4: HP[3]=cur, HP[4]=next; the new value mark(next)
		// dedups with next (basic optimization).
		if !t.c.Commit(&th.Node(cur.Slot()).Next, uint64(next), uint64(next.Mark()),
			cur, next, arena.NilPtr) {
			continue // RESTART_GENERATOR
		}
		return true
	}
}

// FlushRetired pushes locally buffered retired nodes onward (used when a
// worker finishes).
func (t *OAThread) FlushRetired() { t.c.FlushRetired() }

// OA is a single linked-list set under optimistic access.
type OA struct {
	e    *OAEngine
	head uint32
}

// NewOA builds an empty list sized by cfg.
func NewOA(cfg core.Config) *OA {
	e := NewOAEngine(cfg)
	return &OA{e: e, head: e.NewHead()}
}

// Engine exposes the underlying engine (stats, manager).
func (l *OA) Engine() *OAEngine { return l.e }

// Scheme implements smr.Set.
func (l *OA) Scheme() smr.Scheme { return smr.OA }

// Stats implements smr.Set.
func (l *OA) Stats() smr.Stats { return l.e.kit.Stats() }

// Session implements smr.Set.
func (l *OA) Session(tid int) smr.Session { return &oaSession{t: l.e.Thread(tid), head: l.head} }

type oaSession struct {
	t    *OAThread
	head uint32
}

func (s *oaSession) Insert(key uint64) bool   { return s.t.InsertAt(s.head, key) }
func (s *oaSession) Delete(key uint64) bool   { return s.t.DeleteAt(s.head, key) }
func (s *oaSession) Contains(key uint64) bool { return s.t.ContainsAt(s.head, key) }

// PauseReport renders the OA reclamation-pause histogram (see package
// metrics).
func (l *OA) PauseReport() string { return l.e.Manager().PhasePauses().String() }

// RegisterObs implements obs.Registrar by forwarding to the core manager.
func (l *OA) RegisterObs(reg *obs.Registry) { l.e.Manager().RegisterObs(reg) }
