package list_test

import (
	"testing"

	"repro/internal/anchors"
	"repro/internal/core"
	"repro/internal/dstest"
	"repro/internal/ebr"
	"repro/internal/hpscheme"
	"repro/internal/list"
	"repro/internal/norecl"
	"repro/internal/smr"
)

// Factories sized so reclamation triggers frequently during the suites —
// tight capacities are deliberate: they maximize recycling churn and hence
// the chance of catching unsafe reclamation.
func factories(tight bool) map[string]struct {
	mk     dstest.Factory
	scheme smr.Scheme
} {
	capacity := 1 << 16
	if tight {
		capacity = 4096
	}
	return map[string]struct {
		mk     dstest.Factory
		scheme smr.Scheme
	}{
		"NoRecl": {
			mk: func(threads int) smr.Set {
				return list.NewNoRecl(norecl.Config{MaxThreads: threads, Capacity: capacity})
			},
			scheme: smr.NoRecl,
		},
		"OA": {
			mk: func(threads int) smr.Set {
				return list.NewOA(core.Config{MaxThreads: threads, Capacity: capacity, LocalPool: 16})
			},
			scheme: smr.OA,
		},
		"HP": {
			mk: func(threads int) smr.Set {
				return list.NewHP(hpscheme.Config{MaxThreads: threads, Capacity: capacity, ScanThreshold: 64})
			},
			scheme: smr.HP,
		},
		"EBR": {
			mk: func(threads int) smr.Set {
				return list.NewEBR(ebr.Config{MaxThreads: threads, Capacity: capacity, OpsPerScan: 32})
			},
			scheme: smr.EBR,
		},
		"Anchors": {
			mk: func(threads int) smr.Set {
				return list.NewAnchors(anchors.Config{MaxThreads: threads, Capacity: capacity, K: 8, ScanThreshold: 64})
			},
			scheme: smr.Anchors,
		},
	}
}

func TestListSequential(t *testing.T) {
	for name, f := range factories(true) {
		t.Run(name, func(t *testing.T) { dstest.RunSequentialSuite(t, f.mk) })
	}
}

func TestListConcurrent(t *testing.T) {
	for name, f := range factories(false) {
		t.Run(name, func(t *testing.T) { dstest.RunConcurrentSuite(t, f.mk) })
	}
}

func TestListStats(t *testing.T) {
	for name, f := range factories(true) {
		t.Run(name, func(t *testing.T) { dstest.RunStats(t, f.mk, f.scheme) })
	}
}

// OA-specific: heavy churn on a tiny capacity forces constant phase
// changes; the suite above catches stale-read bugs, this one checks the
// scheme is actually being exercised (phases and restarts happen).
func TestOAListPhasesHappen(t *testing.T) {
	l := list.NewOA(core.Config{MaxThreads: 2, Capacity: 512, LocalPool: 8})
	s := l.Session(0)
	for i := 0; i < 20000; i++ {
		k := uint64(i%64) + 1
		s.Insert(k)
		s.Delete(k)
	}
	st := l.Stats()
	if st.Phases == 0 {
		t.Fatalf("no reclamation phases under churn: %+v", st)
	}
	if st.Recycled == 0 {
		t.Fatalf("nothing recycled under churn: %+v", st)
	}
}

// HP-specific: traversal restarts occur under churn (validation failures),
// proving the protect/validate protocol is active.
func TestHPListValidates(t *testing.T) {
	l := list.NewHP(hpscheme.Config{MaxThreads: 4, Capacity: 4096, ScanThreshold: 32})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s := l.Session(1)
		for i := 0; i < 30000; i++ {
			k := uint64(i%128) + 1
			s.Insert(k)
			s.Delete(k)
		}
	}()
	s := l.Session(0)
	for i := 0; i < 30000; i++ {
		s.Contains(uint64(i%128) + 1)
	}
	<-done
	if st := l.Stats(); st.Recycled == 0 {
		t.Fatalf("HP never recycled: %+v", st)
	}
}

// Anchors-specific: with a tiny K every traversal drops anchors; recycling
// still proceeds and semantics hold (covered by suites); here we check the
// anchor machinery ran.
func TestAnchorsListScans(t *testing.T) {
	l := list.NewAnchors(anchors.Config{MaxThreads: 2, Capacity: 2048, K: 4, ScanThreshold: 16})
	s := l.Session(0)
	for i := 0; i < 10000; i++ {
		k := uint64(i%64) + 1
		s.Insert(k)
		s.Delete(k)
	}
	st := l.Stats()
	if st.Phases == 0 || st.Recycled == 0 {
		t.Fatalf("anchors reclamation inactive: %+v", st)
	}
}

// NoRecl leaks by definition: deleted nodes are never reused.
func TestNoReclLeaks(t *testing.T) {
	l := list.NewNoRecl(norecl.Config{MaxThreads: 1, Capacity: 64})
	s := l.Session(0)
	for i := 0; i < 1000; i++ {
		k := uint64(i%8) + 1
		s.Insert(k)
		s.Delete(k)
	}
	if l.Engine().Manager().Leaked() == 0 {
		t.Fatal("NoRecl reported no leaked nodes under churn")
	}
}

func TestListLinearizability(t *testing.T) {
	for name, f := range factories(true) {
		t.Run(name, func(t *testing.T) { dstest.RunLinearizability(t, f.mk) })
	}
}
