// Package skiplist implements the Herlihy-Shavit lock-free skip list ([12],
// §14.4, after Fraser) in the normalized form the paper requires, under
// four reclamation schemes: optimistic access (OA), hazard pointers (HP),
// epoch-based reclamation (EBR) and no reclamation (NoRecl) — the paper
// does not build an anchors skip list (§5).
//
// Structure notes (shared by all variants):
//
//   - A node carries MaxLevel next pointers; its height is chosen
//     geometrically (p = 1/2) at insert time. The head sentinel has full
//     height and is never marked or retired; nil acts as +∞ (no tail
//     sentinel).
//   - delete marks the node's next pointers from the top level down; the
//     bottom-level mark is the linearization point. In normalized form the
//     CAS generator emits all of these marks as one CAS list — at most
//     MaxLevel+1 descriptors, matching the paper's "MAXLEN + 1 CASes".
//   - insert links the bottom level first (linearization), then links the
//     upper levels one CAS-generator round at a time, refreshing the
//     search on every conflict (Fraser's corrected protocol: the new
//     node's own next pointer is re-pointed before each relink attempt and
//     linking stops the moment the node is marked).
//   - The deleter that wins the bottom-level mark runs one clean search to
//     physically unlink the node at every level and only then retires it —
//     the single-retirer, fully-unlinked discipline proper retirement
//     requires (§3.3).
package skiplist

import "sync/atomic"

// MaxLevel is the paper's MAXLEN: the maximum node height. 2^20 nodes keep
// level occupancy healthy for every benchmark size used here.
const MaxLevel = 20

// Node is the skip-list node. All fields are atomics: under OA a node may
// be read after its slot was recycled.
type Node struct {
	// Key is the node's key; written between allocation and linking.
	Key atomic.Uint64
	// Height is the number of levels the node occupies (1..MaxLevel);
	// written before the node is linked.
	Height atomic.Uint32
	// Next[l] holds arena.Ptr bits for level l; bit 0 is the logical
	// delete mark of that level.
	Next [MaxLevel]atomic.Uint64
}

// ResetNode zeroes a node (the allocation memset hook).
func ResetNode(n *Node) {
	n.Key.Store(0)
	n.Height.Store(0)
	for l := range n.Next {
		n.Next[l].Store(0)
	}
}

// levelRng is a per-thread xorshift64* generator for node heights.
type levelRng struct{ s uint64 }

func newLevelRng(seed uint64) levelRng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return levelRng{s: seed}
}

// next returns a height in 1..MaxLevel, geometric with p = 1/2.
func (r *levelRng) next() uint32 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	h := uint32(1)
	v := r.s
	for v&1 == 1 && h < MaxLevel {
		h++
		v >>= 1
	}
	return h
}
