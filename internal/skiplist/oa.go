package skiplist

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/normalized"
	"repro/internal/obs"
	"repro/internal/smr"
)

// OAOwnerHPs is the owner hazard-pointer budget per thread: the delete
// generator's CAS list shares one modified object (the victim) and one
// expected/new pointer per level, so with the paper's dedup optimization
// MaxLevel+5 hazard pointers suffice (§5).
const OAOwnerHPs = MaxLevel + 5

// OASkipList is the skip list under the optimistic access scheme.
//
// The normalized decomposition (§3.2) maps onto the operations as follows:
//   - Contains: a read-only generator (empty CAS list) — two loads and one
//     warning check per hop, no fences, no hazard pointers.
//   - Delete: the generator finds the victim and emits mark-CASes for every
//     still-unmarked level, top down — at most MaxLevel+1 descriptors, the
//     paper's "MAXLEN+1 CASes"; the wrap-up restarts the generator on any
//     executor failure, and the winner of the bottom mark runs one clean
//     (instrumented) find to unlink the node everywhere before retiring it.
//   - Insert: one generator round links the bottom level (linearization);
//     subsequent rounds emit the upper-level link CASes one level at a
//     time, each sealed by owner hazard pointers.
type OASkipList struct {
	mgr  *core.Manager[Node]
	head uint32
}

// NewOA builds an empty skip list sized by cfg.
func NewOA(cfg core.Config) *OASkipList {
	cfg.OwnerHPs = OAOwnerHPs
	m := core.NewManager[Node](cfg, ResetNode)
	head := m.Thread(0).Alloc()
	m.Arena().At(head).Height.Store(MaxLevel)
	return &OASkipList{mgr: m, head: head}
}

// Manager exposes the underlying optimistic access manager.
func (s *OASkipList) Manager() *core.Manager[Node] { return s.mgr }

// Scheme implements smr.Set.
func (s *OASkipList) Scheme() smr.Scheme { return smr.OA }

// Stats implements smr.Set.
func (s *OASkipList) Stats() smr.Stats { return s.mgr.Stats() }

// RegisterObs implements obs.Registrar by forwarding to the core manager.
func (s *OASkipList) RegisterObs(reg *obs.Registry) { s.mgr.RegisterObs(reg) }

// Session implements smr.Set.
func (s *OASkipList) Session(tid int) smr.Session {
	return &oaSession{
		s:       s,
		t:       s.mgr.Thread(tid),
		rng:     newLevelRng(uint64(tid)*0xD1B54A32D192ED03 + 1),
		pending: arena.NoSlot,
	}
}

type oaSession struct {
	s       *OASkipList
	t       *core.Thread[Node]
	rng     levelRng
	pending uint32
	preds   [MaxLevel]uint32
	succs   [MaxLevel]arena.Ptr
}

// loadHeight reads a node's height, tolerating stale values: an invalid
// height can only come from a recycled slot, in which case the warning bit
// is pending and the caller must restart.
func (s *oaSession) loadHeight(n *Node) (uint32, bool) {
	h := n.Height.Load()
	if h >= 1 && h <= MaxLevel {
		return h, false
	}
	if s.t.Check() {
		return 0, true
	}
	panic(fmt.Sprintf("skiplist: invalid height %d on a non-stale node", h))
}

// find positions s.preds/s.succs around key. Every optimistic read is
// followed by the Algorithm 1 warning check; the snip CASes run under the
// Algorithm 2 write barrier. restart=true tells the caller to restart its
// generator.
func (s *oaSession) find(key uint64) (found, restart bool) {
	th := s.t
retry:
	for {
		predSlot := s.s.head
		for level := MaxLevel - 1; level >= 0; level-- {
			curr := arena.Ptr(th.Node(predSlot).Next[level].Load()).Unmark()
			if th.Check() {
				return false, true
			}
			for !curr.IsNil() {
				n := th.Node(curr.Slot())
				succ := arena.Ptr(n.Next[level].Load())
				ckey := n.Key.Load()
				if th.Check() {
					return false, true
				}
				if succ.Marked() {
					// curr is deleted at this level: snip (observable CAS,
					// Algorithm 2). Snips never retire here — the winning
					// deleter retires after the node is fully unlinked.
					if th.ProtectCAS(arena.MakePtr(predSlot), curr, succ.Unmark()) {
						return false, true
					}
					if th.Node(predSlot).Next[level].CompareAndSwap(uint64(curr), uint64(succ.Unmark())) {
						th.ClearCAS()
						curr = succ.Unmark()
						continue
					}
					th.ClearCAS()
					continue retry
				}
				if ckey < key {
					predSlot = curr.Slot()
					curr = succ
				} else {
					break
				}
			}
			s.preds[level] = predSlot
			s.succs[level] = curr
		}
		f := s.succs[0]
		if f.IsNil() {
			return false, false
		}
		k := th.Node(f.Slot()).Key.Load()
		if th.Check() {
			return false, true
		}
		return k == key, false
	}
}

// Contains is the read-only normalized operation: empty CAS list, result
// recorded before the final warning check validates everything it depends
// on.
func (s *oaSession) Contains(key uint64) bool {
	th := s.t
restart:
	for {
		predSlot := s.s.head
		var curr arena.Ptr
		for level := MaxLevel - 1; level >= 0; level-- {
			curr = arena.Ptr(th.Node(predSlot).Next[level].Load()).Unmark()
			if th.Check() {
				continue restart
			}
			var ckey uint64
			for !curr.IsNil() {
				n := th.Node(curr.Slot())
				succ := arena.Ptr(n.Next[level].Load())
				ckey = n.Key.Load()
				if th.Check() {
					continue restart
				}
				if succ.Marked() {
					curr = succ.Unmark()
					continue
				}
				if ckey < key {
					predSlot = curr.Slot()
					curr = succ
				} else {
					break
				}
			}
			if !curr.IsNil() && ckey == key {
				return true
			}
		}
		return false
	}
}

// Insert adds key; false if present.
func (s *oaSession) Insert(key uint64) bool {
	th := s.t
	height := s.rng.next()
	var dl normalized.DescList

	// Phase 1: link the bottom level (the linearization point).
	for {
		// --- CAS generator ---
		found, restart := s.find(key)
		if restart {
			continue
		}
		if found {
			return false
		}
		if s.pending == arena.NoSlot {
			s.pending = th.Alloc()
		}
		n := th.Node(s.pending)
		n.Key.Store(key)
		n.Height.Store(height)
		for l := uint32(0); l < height; l++ {
			n.Next[l].Store(uint64(s.succs[l]))
		}
		newPtr := arena.MakePtr(s.pending)
		dl.Reset()
		dl.Append(&th.Node(s.preds[0]).Next[0], uint64(s.succs[0]), uint64(newPtr))
		th.SetOwnerHP(0, arena.MakePtr(s.preds[0]))
		th.SetOwnerHP(1, s.succs[0])
		th.SetOwnerHP(2, newPtr)
		if th.SealGenerator() {
			continue
		}
		// --- CAS executor ---
		failed := normalized.Execute(&dl)
		// --- wrap-up ---
		th.ClearOwnerHPs()
		if failed != 0 {
			continue
		}
		s.pending = arena.NoSlot
		s.linkUpper(n, newPtr, height, key)
		return true
	}
}

// linkUpper runs one generator round per upper level: re-point the node's
// own next and link it at preds[level], both as an executor CAS list pinned
// by owner hazard pointers.
func (s *oaSession) linkUpper(n *Node, newPtr arena.Ptr, height uint32, key uint64) {
	th := s.t
	var dl normalized.DescList
	valid := true // preds/succs still usable from the previous round
	for l := uint32(1); l < height; l++ {
		for {
			// --- CAS generator ---
			if !valid {
				found, restart := s.find(key)
				if restart {
					continue
				}
				if !found || s.succs[0] != newPtr {
					return // deleted while linking
				}
				valid = true
			}
			nl := arena.Ptr(n.Next[l].Load())
			if th.Check() {
				valid = false
				continue
			}
			if nl.Marked() {
				return // deletion started: stop linking
			}
			succ := s.succs[l]
			if succ == newPtr {
				break // refreshed search already sees us at this level
			}
			dl.Reset()
			if nl != succ {
				dl.Append(&n.Next[l], uint64(nl), uint64(succ))
			}
			dl.Append(&th.Node(s.preds[l]).Next[l], uint64(succ), uint64(newPtr))
			th.SetOwnerHP(0, arena.MakePtr(s.preds[l]))
			th.SetOwnerHP(1, succ)
			th.SetOwnerHP(2, newPtr)
			th.SetOwnerHP(3, nl)
			if th.SealGenerator() {
				valid = false
				continue
			}
			// --- CAS executor ---
			failed := normalized.Execute(&dl)
			// --- wrap-up ---
			th.ClearOwnerHPs()
			if failed != 0 {
				valid = false
				continue
			}
			break
		}
	}
}

// Delete removes key; false if absent.
func (s *oaSession) Delete(key uint64) bool {
	th := s.t
	var dl normalized.DescList
	var levelSucc [MaxLevel]arena.Ptr
	for {
		// --- CAS generator ---
		found, restart := s.find(key)
		if restart {
			continue
		}
		if !found {
			return false
		}
		victim := s.succs[0]
		n := th.Node(victim.Slot())
		height, restart := s.loadHeight(n)
		if restart {
			continue
		}
		for l := uint32(0); l < height; l++ {
			levelSucc[l] = arena.Ptr(n.Next[l].Load())
		}
		if th.Check() {
			continue
		}
		if levelSucc[0].Marked() {
			return false // another deleter won the bottom level
		}
		// Emit mark CASes top-down for every still-unmarked level; the
		// bottom mark comes last and decides the operation.
		dl.Reset()
		th.SetOwnerHP(0, victim)
		hpIdx := 1
		for l := int(height) - 1; l >= 0; l-- {
			sl := levelSucc[l]
			if sl.Marked() {
				continue
			}
			dl.Append(&n.Next[l], uint64(sl), uint64(sl.Mark()))
			th.SetOwnerHP(hpIdx, sl) // new value mark(sl) dedups with sl
			hpIdx++
		}
		if th.SealGenerator() {
			continue
		}
		// --- CAS executor ---
		failed := normalized.Execute(&dl)
		// --- wrap-up ---
		th.ClearOwnerHPs()
		if failed != 0 {
			continue // some level changed: regenerate
		}
		// We won the bottom mark: one clean find unlinks the node from
		// every level, after which retiring is proper (§3.3).
		for {
			if _, restart := s.find(key); !restart {
				break
			}
		}
		th.Retire(victim.Slot())
		return true
	}
}

// PauseReport renders the OA reclamation-pause histogram (see package
// metrics).
func (s *OASkipList) PauseReport() string { return s.mgr.PhasePauses().String() }
