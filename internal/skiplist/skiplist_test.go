package skiplist

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dstest"
	"repro/internal/ebr"
	"repro/internal/hpscheme"
	"repro/internal/norecl"
	"repro/internal/smr"
)

func factories() map[string]struct {
	mk     dstest.Factory
	scheme smr.Scheme
} {
	const capacity = 1 << 15
	return map[string]struct {
		mk     dstest.Factory
		scheme smr.Scheme
	}{
		"NoRecl": {
			mk: func(threads int) smr.Set {
				return NewNoRecl(norecl.Config{MaxThreads: threads, Capacity: capacity})
			},
			scheme: smr.NoRecl,
		},
		"OA": {
			mk: func(threads int) smr.Set {
				return NewOA(core.Config{MaxThreads: threads, Capacity: capacity, LocalPool: 16})
			},
			scheme: smr.OA,
		},
		"HP": {
			mk: func(threads int) smr.Set {
				return NewHP(hpscheme.Config{MaxThreads: threads, Capacity: capacity, ScanThreshold: 64})
			},
			scheme: smr.HP,
		},
		"EBR": {
			mk: func(threads int) smr.Set {
				return NewEBR(ebr.Config{MaxThreads: threads, Capacity: capacity, OpsPerScan: 32})
			},
			scheme: smr.EBR,
		},
	}
}

func TestSkipListSequential(t *testing.T) {
	for name, f := range factories() {
		t.Run(name, func(t *testing.T) { dstest.RunSequentialSuite(t, f.mk) })
	}
}

func TestSkipListConcurrent(t *testing.T) {
	for name, f := range factories() {
		t.Run(name, func(t *testing.T) { dstest.RunConcurrentSuite(t, f.mk) })
	}
}

func TestSkipListStats(t *testing.T) {
	for name, f := range factories() {
		t.Run(name, func(t *testing.T) { dstest.RunStats(t, f.mk, f.scheme) })
	}
}

// Level distribution must be geometric: roughly half the nodes at each
// successive level, never exceeding MaxLevel.
func TestLevelDistribution(t *testing.T) {
	rng := newLevelRng(12345)
	const n = 1 << 16
	var counts [MaxLevel + 1]int
	for i := 0; i < n; i++ {
		h := rng.next()
		if h < 1 || h > MaxLevel {
			t.Fatalf("height %d out of range", h)
		}
		counts[h]++
	}
	// P(h == 1) = 1/2 ± tolerance; P(h >= 4) = 1/8 ± tolerance.
	if f := float64(counts[1]) / n; f < 0.45 || f > 0.55 {
		t.Fatalf("P(h=1) = %.3f, want ≈ 0.5", f)
	}
	tail := 0
	for h := 4; h <= MaxLevel; h++ {
		tail += counts[h]
	}
	if f := float64(tail) / n; f < 0.09 || f > 0.16 {
		t.Fatalf("P(h>=4) = %.3f, want ≈ 0.125", f)
	}
}

func TestLevelRngZeroSeed(t *testing.T) {
	rng := newLevelRng(0)
	if h := rng.next(); h < 1 || h > MaxLevel {
		t.Fatalf("zero-seed rng produced height %d", h)
	}
}

// Property: a skip list behaves as a set under random operation sequences
// (the quick harness drives the OA variant, the most intricate one).
func TestSkipListQuickSetSemantics(t *testing.T) {
	sl := NewOA(core.Config{MaxThreads: 1, Capacity: 1 << 14, LocalPool: 16})
	s := sl.Session(0)
	model := map[uint64]bool{}
	f := func(k16 uint16, op uint8) bool {
		k := uint64(k16) + 1
		switch op % 3 {
		case 0:
			want := !model[k]
			if s.Insert(k) != want {
				return false
			}
			model[k] = true
		case 1:
			want := model[k]
			if s.Delete(k) != want {
				return false
			}
			delete(model, k)
		default:
			if s.Contains(k) != model[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Tall nodes exercise multi-level marking: insert enough keys that some
// reach high levels, then delete them all and verify emptiness.
func TestSkipListTallNodes(t *testing.T) {
	for name, f := range factories() {
		t.Run(name, func(t *testing.T) {
			set := f.mk(1)
			s := set.Session(0)
			const n = 4096 // E[max height] ≈ 12: well above one level
			for k := uint64(1); k <= n; k++ {
				if !s.Insert(k) {
					t.Fatalf("insert %d", k)
				}
			}
			for k := uint64(1); k <= n; k++ {
				if !s.Contains(k) {
					t.Fatalf("missing %d", k)
				}
			}
			for k := uint64(1); k <= n; k++ {
				if !s.Delete(k) {
					t.Fatalf("delete %d", k)
				}
			}
			for k := uint64(1); k <= n; k++ {
				if s.Contains(k) {
					t.Fatalf("zombie %d", k)
				}
			}
		})
	}
}

// Under churn the OA skip list must actually recycle through phases.
func TestSkipListOARecycles(t *testing.T) {
	sl := NewOA(core.Config{MaxThreads: 1, Capacity: 2048, LocalPool: 8})
	s := sl.Session(0)
	for i := 0; i < 20000; i++ {
		k := uint64(i%128) + 1
		s.Insert(k)
		s.Delete(k)
	}
	st := sl.Stats()
	if st.Phases == 0 || st.Recycled == 0 {
		t.Fatalf("OA skip list reclamation inactive: %+v", st)
	}
}

// The multi-CAS normalized delete: deleting a tall node emits one mark CAS
// per level; verify deletes of tall nodes work when the node height is
// known to be > 1 (statistically guaranteed over many keys).
func TestSkipListDeleteTall(t *testing.T) {
	sl := NewOA(core.Config{MaxThreads: 1, Capacity: 1 << 14, LocalPool: 16})
	s := sl.Session(0).(*oaSession)
	tall := 0
	for k := uint64(1); k <= 512; k++ {
		s.Insert(k)
	}
	for k := uint64(1); k <= 512; k++ {
		if s.find(k); true {
			n := s.t.Node(s.succs[0].Slot())
			if n.Height.Load() > 1 {
				tall++
			}
		}
		if !s.Delete(k) {
			t.Fatalf("delete %d", k)
		}
	}
	if tall < 100 {
		t.Fatalf("only %d tall nodes out of 512 — rng broken?", tall)
	}
}

func TestSkipListLinearizability(t *testing.T) {
	for name, f := range factories() {
		t.Run(name, func(t *testing.T) { dstest.RunLinearizability(t, f.mk) })
	}
}
