package skiplist

import (
	"repro/internal/arena"
	"repro/internal/norecl"
	"repro/internal/obs"
	"repro/internal/smr"
)

// NoReclSkipList is the skip list without reclamation — the baseline
// variant and the reference implementation of the algorithm; the other
// variants instrument exactly this control flow.
type NoReclSkipList struct {
	mgr  *norecl.Manager[Node]
	head uint32
}

// NewNoRecl builds an empty skip list sized by cfg.
func NewNoRecl(cfg norecl.Config) *NoReclSkipList {
	m := norecl.NewManager[Node](cfg, ResetNode)
	head := m.Thread(0).Alloc()
	m.Arena().At(head).Height.Store(MaxLevel)
	return &NoReclSkipList{mgr: m, head: head}
}

// Manager exposes the underlying manager.
func (s *NoReclSkipList) Manager() *norecl.Manager[Node] { return s.mgr }

// Scheme implements smr.Set.
func (s *NoReclSkipList) Scheme() smr.Scheme { return smr.NoRecl }

// Stats implements smr.Set.
func (s *NoReclSkipList) Stats() smr.Stats { return s.mgr.Stats() }

// RegisterObs implements obs.Registrar by forwarding to the scheme manager.
func (s *NoReclSkipList) RegisterObs(reg *obs.Registry) { s.mgr.RegisterObs(reg) }

// Session implements smr.Set.
func (s *NoReclSkipList) Session(tid int) smr.Session {
	return &noreclSession{
		s:       s,
		t:       s.mgr.Thread(tid),
		rng:     newLevelRng(uint64(tid)*0x9E3779B97F4A7C15 + 1),
		pending: arena.NoSlot,
	}
}

type noreclSession struct {
	s       *NoReclSkipList
	t       *norecl.Thread[Node]
	rng     levelRng
	pending uint32
	preds   [MaxLevel]uint32
	succs   [MaxLevel]arena.Ptr
}

// find positions s.preds/s.succs around key, snipping marked nodes as it
// goes (Herlihy-Shavit find). It returns true when an unmarked bottom-level
// node with the key was found (then succs[0] is that node).
func (s *noreclSession) find(key uint64) bool {
	th := s.t
retry:
	for {
		predSlot := s.s.head
		for level := MaxLevel - 1; level >= 0; level-- {
			curr := arena.Ptr(th.Node(predSlot).Next[level].Load()).Unmark()
			for !curr.IsNil() {
				n := th.Node(curr.Slot())
				succ := arena.Ptr(n.Next[level].Load())
				if succ.Marked() {
					// curr is deleted at this level: snip it out. The CAS
					// expects an unmarked pred.next, so a deleted pred
					// fails here and restarts the find.
					if !th.Node(predSlot).Next[level].CompareAndSwap(uint64(curr), uint64(succ.Unmark())) {
						continue retry
					}
					curr = succ.Unmark()
					continue
				}
				if n.Key.Load() < key {
					predSlot = curr.Slot()
					curr = succ
				} else {
					break
				}
			}
			s.preds[level] = predSlot
			s.succs[level] = curr
		}
		f := s.succs[0]
		return !f.IsNil() && th.Node(f.Slot()).Key.Load() == key
	}
}

// Contains is the wait-free membership test: it skips marked nodes without
// snipping (no writes at all).
func (s *noreclSession) Contains(key uint64) bool {
	th := s.t
	predSlot := s.s.head
	var curr arena.Ptr
	for level := MaxLevel - 1; level >= 0; level-- {
		curr = arena.Ptr(th.Node(predSlot).Next[level].Load()).Unmark()
		for !curr.IsNil() {
			n := th.Node(curr.Slot())
			succ := arena.Ptr(n.Next[level].Load())
			if succ.Marked() {
				curr = succ.Unmark()
				continue
			}
			if n.Key.Load() < key {
				predSlot = curr.Slot()
				curr = succ
			} else {
				break
			}
		}
		if !curr.IsNil() && th.Node(curr.Slot()).Key.Load() == key {
			return true
		}
	}
	return false
}

// Insert adds key; false if present. The bottom-level link is the
// linearization point; upper levels are linked best-effort afterwards
// (Fraser's corrected protocol).
func (s *noreclSession) Insert(key uint64) bool {
	th := s.t
	height := s.rng.next()
	for {
		if s.find(key) {
			return false
		}
		if s.pending == arena.NoSlot {
			s.pending = th.Alloc()
		}
		n := th.Node(s.pending)
		n.Key.Store(key)
		n.Height.Store(height)
		for l := uint32(0); l < height; l++ {
			n.Next[l].Store(uint64(s.succs[l]))
		}
		newPtr := arena.MakePtr(s.pending)
		if !th.Node(s.preds[0]).Next[0].CompareAndSwap(uint64(s.succs[0]), uint64(newPtr)) {
			continue
		}
		s.pending = arena.NoSlot
		s.linkUpper(n, newPtr, height, key)
		return true
	}
}

// linkUpper links levels 1..height-1 of a node already linked at the
// bottom, stopping as soon as the node is marked (a deleter took over).
func (s *noreclSession) linkUpper(n *Node, newPtr arena.Ptr, height uint32, key uint64) {
	th := s.t
	for l := uint32(1); l < height; l++ {
		for {
			nl := arena.Ptr(n.Next[l].Load())
			if nl.Marked() {
				return
			}
			succ := s.succs[l]
			if succ == newPtr {
				// The refreshed search already sees us at this level.
				break
			}
			if nl != succ {
				// Re-point our own next before exposing the level.
				if !n.Next[l].CompareAndSwap(uint64(nl), uint64(succ)) {
					return // concurrently marked
				}
			}
			if th.Node(s.preds[l]).Next[l].CompareAndSwap(uint64(succ), uint64(newPtr)) {
				break
			}
			s.find(key)
			if s.succs[0] != newPtr {
				return // we were deleted while linking
			}
		}
	}
}

// Delete removes key; false if absent. Marks from the top level down; the
// bottom mark is the linearization point and its winner cleans up (and
// here, with no reclamation, simply counts the retire).
func (s *noreclSession) Delete(key uint64) bool {
	th := s.t
	for {
		if !s.find(key) {
			return false
		}
		victim := s.succs[0]
		n := th.Node(victim.Slot())
		height := n.Height.Load()
		for l := int(height) - 1; l >= 1; l-- {
			for {
				sl := arena.Ptr(n.Next[l].Load())
				if sl.Marked() {
					break
				}
				n.Next[l].CompareAndSwap(uint64(sl), uint64(sl.Mark()))
			}
		}
		for {
			sl := arena.Ptr(n.Next[0].Load())
			if sl.Marked() {
				return false // another deleter won
			}
			if n.Next[0].CompareAndSwap(uint64(sl), uint64(sl.Mark())) {
				s.find(key) // snip the node out of every level
				th.Retire(victim.Slot())
				return true
			}
		}
	}
}
