package skiplist

import (
	"repro/internal/arena"
	"repro/internal/ebr"
	"repro/internal/obs"
	"repro/internal/smr"
)

// EBRSkipList is the skip list under epoch-based reclamation: the plain
// algorithm with an epoch announcement bracketing each operation.
type EBRSkipList struct {
	mgr  *ebr.Manager[Node]
	head uint32
}

// NewEBR builds an empty skip list sized by cfg.
func NewEBR(cfg ebr.Config) *EBRSkipList {
	m := ebr.NewManager[Node](cfg, ResetNode)
	head := m.Thread(0).Alloc()
	m.Arena().At(head).Height.Store(MaxLevel)
	return &EBRSkipList{mgr: m, head: head}
}

// Manager exposes the underlying manager.
func (s *EBRSkipList) Manager() *ebr.Manager[Node] { return s.mgr }

// Scheme implements smr.Set.
func (s *EBRSkipList) Scheme() smr.Scheme { return smr.EBR }

// Stats implements smr.Set.
func (s *EBRSkipList) Stats() smr.Stats { return s.mgr.Stats() }

// RegisterObs implements obs.Registrar by forwarding to the scheme manager.
func (s *EBRSkipList) RegisterObs(reg *obs.Registry) { s.mgr.RegisterObs(reg) }

// Session implements smr.Set.
func (s *EBRSkipList) Session(tid int) smr.Session {
	return &ebrSession{
		s:       s,
		t:       s.mgr.Thread(tid),
		rng:     newLevelRng(uint64(tid)*0xA24BAED4963EE407 + 1),
		pending: arena.NoSlot,
	}
}

type ebrSession struct {
	s       *EBRSkipList
	t       *ebr.Thread[Node]
	rng     levelRng
	pending uint32
	preds   [MaxLevel]uint32
	succs   [MaxLevel]arena.Ptr
}

func (s *ebrSession) find(key uint64) bool {
	th := s.t
retry:
	for {
		predSlot := s.s.head
		for level := MaxLevel - 1; level >= 0; level-- {
			curr := arena.Ptr(th.Node(predSlot).Next[level].Load()).Unmark()
			for !curr.IsNil() {
				n := th.Node(curr.Slot())
				succ := arena.Ptr(n.Next[level].Load())
				if succ.Marked() {
					if !th.Node(predSlot).Next[level].CompareAndSwap(uint64(curr), uint64(succ.Unmark())) {
						continue retry
					}
					curr = succ.Unmark()
					continue
				}
				if n.Key.Load() < key {
					predSlot = curr.Slot()
					curr = succ
				} else {
					break
				}
			}
			s.preds[level] = predSlot
			s.succs[level] = curr
		}
		f := s.succs[0]
		return !f.IsNil() && th.Node(f.Slot()).Key.Load() == key
	}
}

// Contains is the wait-free membership test.
func (s *ebrSession) Contains(key uint64) bool {
	th := s.t
	th.OnOpStart()
	defer th.OnOpEnd()
	predSlot := s.s.head
	var curr arena.Ptr
	for level := MaxLevel - 1; level >= 0; level-- {
		curr = arena.Ptr(th.Node(predSlot).Next[level].Load()).Unmark()
		for !curr.IsNil() {
			n := th.Node(curr.Slot())
			succ := arena.Ptr(n.Next[level].Load())
			if succ.Marked() {
				curr = succ.Unmark()
				continue
			}
			if n.Key.Load() < key {
				predSlot = curr.Slot()
				curr = succ
			} else {
				break
			}
		}
		if !curr.IsNil() && th.Node(curr.Slot()).Key.Load() == key {
			return true
		}
	}
	return false
}

// Insert adds key; false if present.
func (s *ebrSession) Insert(key uint64) bool {
	th := s.t
	th.OnOpStart()
	defer th.OnOpEnd()
	height := s.rng.next()
	for {
		if s.find(key) {
			return false
		}
		if s.pending == arena.NoSlot {
			s.pending = th.Alloc()
		}
		n := th.Node(s.pending)
		n.Key.Store(key)
		n.Height.Store(height)
		for l := uint32(0); l < height; l++ {
			n.Next[l].Store(uint64(s.succs[l]))
		}
		newPtr := arena.MakePtr(s.pending)
		if !th.Node(s.preds[0]).Next[0].CompareAndSwap(uint64(s.succs[0]), uint64(newPtr)) {
			continue
		}
		s.pending = arena.NoSlot
		s.linkUpper(n, newPtr, height, key)
		return true
	}
}

func (s *ebrSession) linkUpper(n *Node, newPtr arena.Ptr, height uint32, key uint64) {
	th := s.t
	for l := uint32(1); l < height; l++ {
		for {
			nl := arena.Ptr(n.Next[l].Load())
			if nl.Marked() {
				return
			}
			succ := s.succs[l]
			if succ == newPtr {
				break
			}
			if nl != succ {
				if !n.Next[l].CompareAndSwap(uint64(nl), uint64(succ)) {
					return
				}
			}
			if th.Node(s.preds[l]).Next[l].CompareAndSwap(uint64(succ), uint64(newPtr)) {
				break
			}
			s.find(key)
			if s.succs[0] != newPtr {
				return
			}
		}
	}
}

// Delete removes key; false if absent. The winner of the bottom-level mark
// snips the node from every level with one clean find and then retires it.
func (s *ebrSession) Delete(key uint64) bool {
	th := s.t
	th.OnOpStart()
	defer th.OnOpEnd()
	for {
		if !s.find(key) {
			return false
		}
		victim := s.succs[0]
		n := th.Node(victim.Slot())
		height := n.Height.Load()
		for l := int(height) - 1; l >= 1; l-- {
			for {
				sl := arena.Ptr(n.Next[l].Load())
				if sl.Marked() {
					break
				}
				n.Next[l].CompareAndSwap(uint64(sl), uint64(sl.Mark()))
			}
		}
		for {
			sl := arena.Ptr(n.Next[0].Load())
			if sl.Marked() {
				return false
			}
			if n.Next[0].CompareAndSwap(uint64(sl), uint64(sl.Mark())) {
				s.find(key)
				th.Retire(victim.Slot())
				return true
			}
		}
	}
}
