package skiplist

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
)

func TestRangeScanSequential(t *testing.T) {
	sl := NewOA(core.Config{MaxThreads: 1, Capacity: 8192, LocalPool: 16})
	s := sl.ScanSession(0)
	want := []uint64{}
	for k := uint64(2); k <= 200; k += 2 {
		s.Insert(k)
		want = append(want, k)
	}
	var got []uint64
	s.RangeScan(1, 500, func(k uint64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("scan returned %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestRangeScanBounds(t *testing.T) {
	sl := NewOA(core.Config{MaxThreads: 1, Capacity: 4096, LocalPool: 16})
	s := sl.ScanSession(0)
	for _, k := range []uint64{5, 10, 15, 20, 25} {
		s.Insert(k)
	}
	var got []uint64
	s.RangeScan(10, 20, func(k uint64) bool { got = append(got, k); return true })
	if len(got) != 3 || got[0] != 10 || got[1] != 15 || got[2] != 20 {
		t.Fatalf("scan [10,20] = %v", got)
	}
	got = nil
	s.RangeScan(21, 24, func(k uint64) bool { got = append(got, k); return true })
	if len(got) != 0 {
		t.Fatalf("empty range scan = %v", got)
	}
	// Early stop.
	got = nil
	s.RangeScan(1, 100, func(k uint64) bool { got = append(got, k); return len(got) < 2 })
	if len(got) != 2 {
		t.Fatalf("early-stop scan = %v", got)
	}
}

func TestRangeScanExtremeKeys(t *testing.T) {
	sl := NewOA(core.Config{MaxThreads: 1, Capacity: 4096, LocalPool: 16})
	s := sl.ScanSession(0)
	maxKey := ^uint64(0)
	s.Insert(maxKey)
	s.Insert(maxKey - 1)
	var got []uint64
	s.RangeScan(maxKey-1, maxKey, func(k uint64) bool { got = append(got, k); return true })
	if len(got) != 2 || got[1] != maxKey {
		t.Fatalf("extreme scan = %v", got)
	}
}

// Weak consistency under churn: a concurrent scan must deliver keys in
// strictly ascending order, without duplicates, and every delivered key
// must be one that was (at some point) inserted; keys outside the churn
// window that stay put must always be delivered.
func TestRangeScanConcurrentChurn(t *testing.T) {
	sl := NewOA(core.Config{MaxThreads: 2, Capacity: 1 << 14, LocalPool: 16})
	writer := sl.Session(1)
	// Stable keys every 10; churn keys in between.
	for k := uint64(10); k <= 1000; k += 10 {
		writer.Insert(k)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(5))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := uint64(rng.Intn(1000)) + 1
			if k%10 == 0 {
				continue // never touch stable keys
			}
			writer.Insert(k)
			writer.Delete(k)
		}
	}()

	s := sl.ScanSession(0)
	for round := 0; round < 200; round++ {
		var got []uint64
		s.RangeScan(1, 1000, func(k uint64) bool { got = append(got, k); return true })
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Fatalf("round %d: scan out of order: %v", round, got)
		}
		for i := 1; i < len(got); i++ {
			if got[i] == got[i-1] {
				t.Fatalf("round %d: duplicate key %d", round, got[i])
			}
		}
		stable := 0
		for _, k := range got {
			if k%10 == 0 {
				stable++
			}
		}
		if stable != 100 {
			t.Fatalf("round %d: saw %d stable keys, want 100", round, stable)
		}
	}
	close(stop)
	wg.Wait()
}
