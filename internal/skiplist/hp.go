package skiplist

import (
	"repro/internal/arena"
	"repro/internal/hpscheme"
	"repro/internal/obs"
	"repro/internal/smr"
)

// Hazard pointer layout for the skip list: one pred and one succ per level
// (they must stay protected until the operation's CASes are done), two
// traversal scratch pointers, and one for the victim/new node. Total
// 2·MaxLevel+3, the figure the paper quotes for its HP skip list (§5).
const (
	hpSLPred      = 0            // MaxLevel entries: preds[level]
	hpSLSucc      = MaxLevel     // MaxLevel entries: succs[level]
	hpSLCur       = 2 * MaxLevel // traversal scratch: current node
	hpSLNext      = 2*MaxLevel + 1
	hpSLExtra     = 2*MaxLevel + 2 // victim (delete) / new node (insert)
	hpSLPerThread = 2*MaxLevel + 3
)

// HPSkipList is the skip list under hazard pointers: every traversal hop
// pays two publish-fence-validate sequences (current node and its
// successor), the cost Figure 1 reports as 2x-2.5x.
type HPSkipList struct {
	mgr  *hpscheme.Manager[Node]
	head uint32
}

// NewHP builds an empty skip list sized by cfg; HPsPerThread is forced to
// the skip list's requirement.
func NewHP(cfg hpscheme.Config) *HPSkipList {
	cfg.HPsPerThread = hpSLPerThread
	m := hpscheme.NewManager[Node](cfg, ResetNode)
	head := m.Thread(0).Alloc()
	m.Arena().At(head).Height.Store(MaxLevel)
	return &HPSkipList{mgr: m, head: head}
}

// Manager exposes the underlying manager.
func (s *HPSkipList) Manager() *hpscheme.Manager[Node] { return s.mgr }

// Scheme implements smr.Set.
func (s *HPSkipList) Scheme() smr.Scheme { return smr.HP }

// Stats implements smr.Set.
func (s *HPSkipList) Stats() smr.Stats { return s.mgr.Stats() }

// RegisterObs implements obs.Registrar by forwarding to the scheme manager.
func (s *HPSkipList) RegisterObs(reg *obs.Registry) { s.mgr.RegisterObs(reg) }

// Session implements smr.Set.
func (s *HPSkipList) Session(tid int) smr.Session {
	return &hpSession{
		s:       s,
		t:       s.mgr.Thread(tid),
		rng:     newLevelRng(uint64(tid)*0x2545F4914F6CDD1D + 1),
		pending: arena.NoSlot,
	}
}

type hpSession struct {
	s       *HPSkipList
	t       *hpscheme.Thread[Node]
	rng     levelRng
	pending uint32
	preds   [MaxLevel]uint32
	succs   [MaxLevel]arena.Ptr
}

// find positions s.preds/s.succs around key under the full hazard-pointer
// protocol. The validation "pred.next[level] holds exactly the unmarked
// handle of curr" implies pred is not marked at that level, hence still the
// unique in-list predecessor, hence curr is linked and cannot yet be
// retired — the publication therefore races no scan (see package hpscheme).
func (s *hpSession) find(key uint64) bool {
	th := s.t
retry:
	for {
		predSlot := s.s.head
		for level := MaxLevel - 1; level >= 0; level-- {
			curr := arena.Ptr(th.Node(predSlot).Next[level].Load()).Unmark()
			for !curr.IsNil() {
				th.Protect(hpSLCur, curr)
				if arena.Ptr(th.Node(predSlot).Next[level].Load()) != curr {
					th.CountRestart()
					continue retry
				}
				n := th.Node(curr.Slot())
				succ := arena.Ptr(n.Next[level].Load())
				th.Protect(hpSLNext, succ)
				if arena.Ptr(n.Next[level].Load()) != succ {
					th.CountRestart()
					continue retry
				}
				if succ.Marked() {
					if !th.Node(predSlot).Next[level].CompareAndSwap(uint64(curr), uint64(succ.Unmark())) {
						th.CountRestart()
						continue retry
					}
					curr = succ.Unmark()
					continue
				}
				if n.Key.Load() < key {
					predSlot = curr.Slot()
					th.Protect(hpSLPred+level, curr)
					curr = succ
				} else {
					break
				}
			}
			s.preds[level] = predSlot
			s.succs[level] = curr
			th.Protect(hpSLSucc+level, curr)
		}
		f := s.succs[0]
		return !f.IsNil() && th.Node(f.Slot()).Key.Load() == key
	}
}

// Contains delegates to find, as in Michael's hazard-pointer algorithms:
// traversing *through* a marked node would break the validation chain (a
// deleted node's frozen next pointer cannot vouch for its successor's
// liveness), so the read-only operation pays the full snipping protocol —
// precisely the HP overhead the paper measures on read-mostly workloads.
func (s *hpSession) Contains(key uint64) bool {
	found := s.find(key)
	s.t.ClearAll()
	return found
}

// Insert adds key; false if present.
func (s *hpSession) Insert(key uint64) bool {
	th := s.t
	defer th.ClearAll()
	height := s.rng.next()
	for {
		if s.find(key) {
			return false
		}
		if s.pending == arena.NoSlot {
			s.pending = th.Alloc()
		}
		n := th.Node(s.pending)
		n.Key.Store(key)
		n.Height.Store(height)
		for l := uint32(0); l < height; l++ {
			n.Next[l].Store(uint64(s.succs[l]))
		}
		newPtr := arena.MakePtr(s.pending)
		th.Protect(hpSLExtra, newPtr) // survives the re-finds below
		if !th.Node(s.preds[0]).Next[0].CompareAndSwap(uint64(s.succs[0]), uint64(newPtr)) {
			th.CountRestart()
			continue
		}
		s.pending = arena.NoSlot
		s.linkUpper(n, newPtr, height, key)
		return true
	}
}

func (s *hpSession) linkUpper(n *Node, newPtr arena.Ptr, height uint32, key uint64) {
	th := s.t
	for l := uint32(1); l < height; l++ {
		for {
			nl := arena.Ptr(n.Next[l].Load())
			if nl.Marked() {
				return
			}
			succ := s.succs[l]
			if succ == newPtr {
				break
			}
			if nl != succ {
				if !n.Next[l].CompareAndSwap(uint64(nl), uint64(succ)) {
					return
				}
			}
			if th.Node(s.preds[l]).Next[l].CompareAndSwap(uint64(succ), uint64(newPtr)) {
				break
			}
			th.CountRestart()
			s.find(key)
			if s.succs[0] != newPtr {
				return
			}
		}
	}
}

// Delete removes key; false if absent.
func (s *hpSession) Delete(key uint64) bool {
	th := s.t
	defer th.ClearAll()
	for {
		if !s.find(key) {
			return false
		}
		victim := s.succs[0]
		th.Protect(hpSLExtra, victim) // survives the cleanup find
		n := th.Node(victim.Slot())
		height := n.Height.Load()
		for l := int(height) - 1; l >= 1; l-- {
			for {
				sl := arena.Ptr(n.Next[l].Load())
				if sl.Marked() {
					break
				}
				n.Next[l].CompareAndSwap(uint64(sl), uint64(sl.Mark()))
			}
		}
		for {
			sl := arena.Ptr(n.Next[0].Load())
			if sl.Marked() {
				return false
			}
			if n.Next[0].CompareAndSwap(uint64(sl), uint64(sl.Mark())) {
				s.find(key) // snip from every level
				th.ClearAll()
				th.Retire(victim.Slot())
				return true
			}
		}
	}
}
