package skiplist

import (
	"testing"

	"repro/internal/core"
)

// FuzzOASkipListVsModel drives the OA skip list — whose delete emits a
// multi-CAS list per the paper's normalized form — with a byte-encoded
// operation sequence against a model map.
func FuzzOASkipListVsModel(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 0, 3, 1, 2, 2, 2, 2, 1, 2, 3})
	f.Add([]byte{0, 9, 1, 9, 0, 9, 1, 9})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sl := NewOA(core.Config{MaxThreads: 1, Capacity: 512, LocalPool: 4})
		s := sl.Session(0)
		model := map[uint64]bool{}
		for i := 0; i+1 < len(data); i += 2 {
			op := data[i] % 3
			k := uint64(data[i+1]) + 1
			switch op {
			case 0:
				if got, want := s.Insert(k), !model[k]; got != want {
					t.Fatalf("op %d: Insert(%d) = %v, want %v", i/2, k, got, want)
				}
				model[k] = true
			case 1:
				if got, want := s.Delete(k), model[k]; got != want {
					t.Fatalf("op %d: Delete(%d) = %v, want %v", i/2, k, got, want)
				}
				delete(model, k)
			default:
				if got, want := s.Contains(k), model[k]; got != want {
					t.Fatalf("op %d: Contains(%d) = %v, want %v", i/2, k, got, want)
				}
			}
		}
		for k := uint64(1); k <= 256; k++ {
			if got := s.Contains(k); got != model[k] {
				t.Fatalf("final sweep: Contains(%d) = %v, want %v", k, got, model[k])
			}
		}
	})
}
