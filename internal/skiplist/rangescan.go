package skiplist

import (
	"repro/internal/arena"
	"repro/internal/smr"
)

// ScanSession extends the set session with ordered range scans — the
// operation an ordered index exists for, and a natural read-only extension
// of the paper's scheme: the scan is a generator-style method whose every
// hop is an optimistic read validated by the warning check.
type ScanSession interface {
	smr.Session
	// RangeScan visits the keys in [from, to] in ascending order until
	// visit returns false. The scan is weakly consistent (as for
	// ConcurrentSkipListMap): each visited key was a member at some moment
	// during the scan, keys are visited at most once and in order, and
	// keys inserted or deleted concurrently may or may not be seen. A
	// warning-triggered restart resumes after the last delivered key, so
	// reclamation never causes duplicates or stale deliveries.
	RangeScan(from, to uint64, visit func(key uint64) bool)
}

// ScanSession returns the per-thread handle with range-scan support.
func (s *OASkipList) ScanSession(tid int) ScanSession {
	return s.Session(tid).(*oaSession)
}

// RangeScan implements ScanSession.
func (s *oaSession) RangeScan(from, to uint64, visit func(uint64) bool) {
	th := s.t
	cursor := from
	for cursor <= to {
		// Descend to the first bottom-level node with key >= cursor
		// (read-only; Contains-style skips over marked nodes).
	restart:
		predSlot := s.s.head
		var curr arena.Ptr
		for level := MaxLevel - 1; level >= 0; level-- {
			curr = arena.Ptr(th.Node(predSlot).Next[level].Load()).Unmark()
			if th.Check() {
				goto restart
			}
			for !curr.IsNil() {
				n := th.Node(curr.Slot())
				succ := arena.Ptr(n.Next[level].Load())
				ckey := n.Key.Load()
				if th.Check() {
					goto restart
				}
				if succ.Marked() {
					curr = succ.Unmark()
					continue
				}
				if ckey < cursor {
					predSlot = curr.Slot()
					curr = succ
				} else {
					break
				}
			}
		}
		// Walk the bottom level, delivering keys only after the warning
		// check that validates them; on a restart the cursor guarantees
		// no duplicates.
		for {
			if curr.IsNil() {
				return
			}
			n := th.Node(curr.Slot())
			succ := arena.Ptr(n.Next[0].Load())
			ckey := n.Key.Load()
			if th.Check() {
				goto restart
			}
			if succ.Marked() {
				curr = succ.Unmark()
				continue
			}
			if ckey > to {
				return
			}
			if ckey >= cursor {
				if !visit(ckey) {
					return
				}
				if ckey == ^uint64(0) {
					return
				}
				cursor = ckey + 1
			}
			curr = succ
		}
	}
}
