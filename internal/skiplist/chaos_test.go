package skiplist

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/core"
)

// TestOASkipListWarningStorm mirrors the list's storm test on the skip
// list, whose delete restarts a multi-CAS generator and whose insert
// restarts per-level link rounds — many more restart edges.
func TestOASkipListWarningStorm(t *testing.T) {
	sl := NewOA(core.Config{MaxThreads: 2, Capacity: 8192, LocalPool: 16})
	mgr := sl.Manager()

	stop := make(chan struct{})
	storming := make(chan struct{})
	go func() {
		defer close(storming)
		fake := uint32(1 << 20)
		for {
			select {
			case <-stop:
				return
			default:
			}
			mgr.InjectWarnings(fake)
			fake += 2
			for i := 0; i < 300; i++ {
				_ = i
			}
		}
	}()

	s := sl.Session(0)
	model := map[uint64]bool{}
	rng := rand.New(rand.NewSource(424242))
	for i := 0; i < 30000; i++ {
		if i%512 == 0 {
			// On a single-CPU runner the op loop can finish inside one
			// scheduler timeslice, before the storm goroutine ever runs;
			// yield so warnings actually land between operations.
			runtime.Gosched()
		}
		k := uint64(rng.Intn(128)) + 1
		switch rng.Intn(3) {
		case 0:
			if got, want := s.Insert(k), !model[k]; got != want {
				t.Fatalf("op %d: Insert(%d) = %v, want %v", i, k, got, want)
			}
			model[k] = true
		case 1:
			if got, want := s.Delete(k), model[k]; got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, want)
			}
			delete(model, k)
		default:
			if got, want := s.Contains(k), model[k]; got != want {
				t.Fatalf("op %d: Contains(%d) = %v, want %v", i, k, got, want)
			}
		}
	}
	close(stop)
	<-storming
	if st := sl.Stats(); st.Restarts == 0 {
		t.Fatal("storm produced no restarts")
	}
}
