package harness

import (
	"fmt"

	"repro/internal/anchors"
	"repro/internal/core"
	"repro/internal/ebr"
	"repro/internal/hashtable"
	"repro/internal/hpscheme"
	"repro/internal/list"
	"repro/internal/norecl"
	"repro/internal/skiplist"
	"repro/internal/smr"
)

// Structure names the paper's four micro-benchmarks.
type Structure string

// The paper's benchmark structures (§5).
const (
	LinkedList5K  Structure = "LinkedList5K"  // 5,000-node list: long traversals
	LinkedList128 Structure = "LinkedList128" // 128-node list: high contention
	Hash          Structure = "Hash"          // 10,000 nodes, load factor 0.75
	SkipList      Structure = "SkipList"      // 10,000 nodes
)

// Structures lists them in the paper's presentation order.
var Structures = []Structure{LinkedList5K, LinkedList128, Hash, SkipList}

// InitialSize returns the paper's initialization for the structure.
func (s Structure) InitialSize() int {
	switch s {
	case LinkedList5K:
		return 5000
	case LinkedList128:
		return 128
	default:
		return 10000
	}
}

// Supports reports whether the paper evaluates the scheme on the structure
// (anchors exists only for the linked lists).
func (s Structure) Supports(sc smr.Scheme) bool {
	if sc == smr.Anchors {
		return s == LinkedList5K || s == LinkedList128
	}
	return true
}

// BuildConfig assembles one benchmark instance.
type BuildConfig struct {
	Structure Structure
	Scheme    smr.Scheme
	Threads   int
	// Delta is the paper's δ: the allocation headroom that sets phase
	// frequency for OA (capacity = size + δ) and the scan/epoch triggers
	// for the other schemes (HP: k = δ/threads; EBR: q = 10·δ/threads;
	// Figure 3 semantics). Zero means the paper's default of 50,000
	// (Figure 1's "reclamation once every 50,000 allocations").
	Delta int
	// LocalPool is the transfer-block size (126 default; Figure 2 sweeps
	// it).
	LocalPool int
	// AnchorsK is the anchors scheme's K (1000 default).
	AnchorsK int
	// WarningByStore enables the Appendix E ablation in the OA scheme.
	WarningByStore bool
	// Shards overrides the OA scheme's block-pool shard count (0 defaults
	// to min(threads, GOMAXPROCS) rounded up to a power of two). Only the
	// OA scheme has sharded pools; the other schemes ignore it.
	Shards int
}

func (c *BuildConfig) fill() {
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Delta <= 0 {
		c.Delta = 50000
	}
	if c.LocalPool <= 0 {
		c.LocalPool = 126
	}
	if c.AnchorsK <= 0 {
		c.AnchorsK = 1000
	}
}

// perThread divides δ across threads, minimum 1.
func (c *BuildConfig) perThread() int {
	k := c.Delta / c.Threads
	if k < 1 {
		k = 1
	}
	return k
}

// Build constructs the structure under the scheme. The returned set is
// empty; use Run (or Prefill) to populate it.
func Build(c BuildConfig) (smr.Set, error) {
	c.fill()
	size := c.Structure.InitialSize()
	if !c.Structure.Supports(c.Scheme) {
		return nil, fmt.Errorf("harness: %s is not evaluated under %v (the paper implements anchors for the linked list only)", c.Structure, c.Scheme)
	}
	// OA needs headroom beyond δ for per-thread local buffers and pending
	// nodes; the other schemes grow their arena on demand.
	capacity := size + c.Delta + 4*c.Threads*c.LocalPool + 64

	switch c.Structure {
	case LinkedList5K, LinkedList128:
		switch c.Scheme {
		case smr.NoRecl:
			return list.NewNoRecl(norecl.Config{MaxThreads: c.Threads, Capacity: capacity, LocalPool: c.LocalPool}), nil
		case smr.OA:
			return list.NewOA(core.Config{
				MaxThreads: c.Threads, Capacity: capacity,
				LocalPool: c.LocalPool, WarningByStore: c.WarningByStore, Shards: c.Shards,
			}), nil
		case smr.HP:
			return list.NewHP(hpscheme.Config{
				MaxThreads: c.Threads, Capacity: capacity,
				ScanThreshold: c.perThread(), LocalPool: c.LocalPool,
			}), nil
		case smr.EBR:
			return list.NewEBR(ebr.Config{
				MaxThreads: c.Threads, Capacity: capacity,
				OpsPerScan: 10 * c.perThread(), LocalPool: c.LocalPool,
			}), nil
		case smr.Anchors:
			return list.NewAnchors(anchors.Config{
				MaxThreads: c.Threads, Capacity: capacity,
				K: c.AnchorsK, ScanThreshold: c.perThread(), LocalPool: c.LocalPool,
			}), nil
		}
	case Hash:
		switch c.Scheme {
		case smr.NoRecl:
			return hashtable.NewNoRecl(norecl.Config{MaxThreads: c.Threads, Capacity: capacity, LocalPool: c.LocalPool}, size), nil
		case smr.OA:
			return hashtable.NewOA(core.Config{
				MaxThreads: c.Threads, Capacity: capacity,
				LocalPool: c.LocalPool, WarningByStore: c.WarningByStore, Shards: c.Shards,
			}, size), nil
		case smr.HP:
			return hashtable.NewHP(hpscheme.Config{
				MaxThreads: c.Threads, Capacity: capacity,
				ScanThreshold: c.perThread(), LocalPool: c.LocalPool,
			}, size), nil
		case smr.EBR:
			return hashtable.NewEBR(ebr.Config{
				MaxThreads: c.Threads, Capacity: capacity,
				OpsPerScan: 10 * c.perThread(), LocalPool: c.LocalPool,
			}, size), nil
		}
	case SkipList:
		switch c.Scheme {
		case smr.NoRecl:
			return skiplist.NewNoRecl(norecl.Config{MaxThreads: c.Threads, Capacity: capacity, LocalPool: c.LocalPool}), nil
		case smr.OA:
			return skiplist.NewOA(core.Config{
				MaxThreads: c.Threads, Capacity: capacity,
				LocalPool: c.LocalPool, WarningByStore: c.WarningByStore, Shards: c.Shards,
			}), nil
		case smr.HP:
			return skiplist.NewHP(hpscheme.Config{
				MaxThreads: c.Threads, Capacity: capacity,
				ScanThreshold: c.perThread(), LocalPool: c.LocalPool,
			}), nil
		case smr.EBR:
			return skiplist.NewEBR(ebr.Config{
				MaxThreads: c.Threads, Capacity: capacity,
				OpsPerScan: 10 * c.perThread(), LocalPool: c.LocalPool,
			}), nil
		}
	}
	return nil, fmt.Errorf("harness: unknown structure %q", c.Structure)
}

// WorkloadFor returns the paper's workload for the structure at the given
// thread count and read fraction.
func WorkloadFor(s Structure, threads int, readFraction float64) Workload {
	return Workload{
		Threads:      threads,
		InitialSize:  s.InitialSize(),
		KeyRange:     2 * uint64(s.InitialSize()),
		ReadFraction: readFraction,
	}
}
