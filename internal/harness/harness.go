// Package harness drives the paper's micro-benchmarks (§5 "Methodology"):
// a stressful workload of repeated operations from many threads against one
// data structure, with the paper's operation mix (80% read-only by
// default), key range (2× the initial size, keeping the size stationary),
// initialization, thread sweep and throughput/ratio reporting.
package harness

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/smr"
)

// Workload describes one benchmark run.
type Workload struct {
	// Threads is the number of worker goroutines (each pinned to an OS
	// thread for the duration of the run).
	Threads int
	// InitialSize is the number of distinct keys inserted before the
	// measurement starts.
	InitialSize int
	// KeyRange is the key universe size; the paper uses 2× InitialSize so
	// that random equal-probability inserts/deletes hold the size steady.
	KeyRange uint64
	// ReadFraction is the share of Contains operations (0.8 in Figure 1;
	// 0.6 in Figure 7; 1/3 in Figure 8). The rest splits evenly between
	// Insert and Delete.
	ReadFraction float64
	// Duration is the measurement length for time-based runs.
	Duration time.Duration
	// TotalOps, when non-zero, runs a fixed operation count instead of a
	// fixed duration (used by testing.B benchmarks).
	TotalOps int
	// Seed perturbs the per-thread generators across repetitions.
	Seed uint64
	// ZipfS, when > 1, draws keys from a Zipf distribution with exponent
	// ZipfS over the key range instead of uniformly — an extension
	// workload (hot keys) beyond the paper's uniform benchmarks.
	ZipfS float64
	// SnapshotEvery, together with SnapshotW, emits a live progress line
	// at this interval while the run is in flight (see Snapshotter).
	SnapshotEvery time.Duration
	// SnapshotW receives the snapshot lines.
	SnapshotW io.Writer
	// LatencySample, when > 0, times one of every LatencySample operations
	// per thread and aggregates the samples into Result.Latency, split by
	// operation kind. Zero disables sampling: the driver loop then issues
	// no clock reads at all, so throughput-only runs are unaffected.
	LatencySample int
}

func (w *Workload) fill() {
	if w.Threads <= 0 {
		w.Threads = 1
	}
	if w.KeyRange == 0 {
		w.KeyRange = 2 * uint64(w.InitialSize)
		if w.KeyRange == 0 {
			w.KeyRange = 1024
		}
	}
	if w.ReadFraction == 0 {
		w.ReadFraction = 0.8
	}
	if w.Duration == 0 && w.TotalOps == 0 {
		w.Duration = 200 * time.Millisecond
	}
}

// OpKind indexes the per-operation latency histograms of OpLatency.
type OpKind int

// The three operation kinds of the paper's set benchmark.
const (
	OpContains OpKind = iota
	OpInsert
	OpDelete
	NumOpKinds
)

// String returns the lower-case operation name used in reports.
func (k OpKind) String() string {
	switch k {
	case OpContains:
		return "contains"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	}
	return "unknown"
}

// OpLatency aggregates the sampled per-operation latencies of one run.
// Histograms are merged across threads after the workers join, so reading
// them is race-free once RunPrefilled returns.
type OpLatency struct {
	// SampleEvery echoes the Workload.LatencySample that produced the data.
	SampleEvery int
	// Hists holds one histogram per OpKind.
	Hists [NumOpKinds]metrics.Histogram
}

// Hist returns the histogram for one operation kind.
func (l *OpLatency) Hist(k OpKind) *metrics.Histogram { return &l.Hists[k] }

// Result reports one run.
type Result struct {
	Ops      uint64
	Duration time.Duration
	Stats    smr.Stats
	// Latency is non-nil only when the workload set LatencySample > 0.
	Latency *OpLatency
}

// Mops returns throughput in million operations per second.
func (r Result) Mops() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Duration.Seconds() / 1e6
}

// splitmix64 is the per-thread operation generator.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Prefill inserts InitialSize distinct keys through session 0.
func Prefill(set smr.Set, w Workload) {
	w.fill()
	s := set.Session(0)
	rng := splitmix64(w.Seed*0x9E3779B9 + 12345)
	inserted := 0
	for inserted < w.InitialSize {
		k := rng.next()%w.KeyRange + 1
		if s.Insert(k) {
			inserted++
		}
	}
}

// Run prefills the structure and executes the workload, returning the
// aggregate throughput. The caller should hold GOMAXPROCS ≥ Threads for
// meaningful scaling numbers (oversubscription is allowed, as in the
// paper's 64-thread AMD runs).
func Run(set smr.Set, w Workload) Result {
	w.fill()
	Prefill(set, w)
	return RunPrefilled(set, w)
}

// RunPrefilled executes the measurement phase only.
func RunPrefilled(set smr.Set, w Workload) Result {
	w.fill()
	var stop atomic.Bool
	// Each worker publishes its running count every 256 operations so a
	// Snapshotter (or any concurrent reader) can watch live progress; the
	// atomic store hits an exclusively owned cache line, so the cost is
	// the same as the plain write it replaces.
	counts := make([]struct {
		n atomic.Uint64
		_ [7]uint64 // cacheline pad
	}, w.Threads)

	opsPerThread := 0
	if w.TotalOps > 0 {
		opsPerThread = (w.TotalOps + w.Threads - 1) / w.Threads
	}

	// Per-thread latency histograms, merged after the join: the workers
	// never share a cache line, and the merge makes the aggregate safe to
	// read without atomicity caveats.
	var lats []*OpLatency
	if w.LatencySample > 0 {
		lats = make([]*OpLatency, w.Threads)
		for i := range lats {
			lats[i] = &OpLatency{SampleEvery: w.LatencySample}
		}
	}

	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(w.Threads)
	for id := 0; id < w.Threads; id++ {
		go func(id int) {
			defer done.Done()
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			s := set.Session(id)
			rng := splitmix64(w.Seed + uint64(id)*0x5851F42D4C957F2D + 7)
			var zipf *rand.Zipf
			if w.ZipfS > 1 {
				src := rand.New(rand.NewSource(int64(w.Seed) + int64(id)*7919 + 1))
				zipf = rand.NewZipf(src, w.ZipfS, 1, w.KeyRange-1)
			}
			insertTurn := id&1 == 0
			readCut := uint64(w.ReadFraction * (1 << 32))
			var lat *OpLatency
			untilSample := 0
			if lats != nil {
				lat = lats[id]
				// Stagger the first sample across threads so the timed ops
				// do not line up on the same iteration indices.
				untilSample = 1 + (id*7)%w.LatencySample
			}
			start.Wait()
			n := uint64(0)
			for {
				if opsPerThread > 0 {
					if n >= uint64(opsPerThread) {
						break
					}
				} else if n&0xFF == 0 {
					counts[id].n.Store(n)
					if stop.Load() {
						break
					}
				}
				r := rng.next()
				k := r%w.KeyRange + 1
				if zipf != nil {
					k = zipf.Uint64() + 1
				}
				timed := false
				var t0 time.Time
				if lat != nil {
					if untilSample--; untilSample == 0 {
						untilSample = w.LatencySample
						timed = true
						t0 = time.Now()
					}
				}
				var kind OpKind
				if (r>>32)&0xFFFFFFFF < readCut {
					kind = OpContains
					s.Contains(k)
				} else if insertTurn {
					kind = OpInsert
					s.Insert(k)
					insertTurn = false
				} else {
					kind = OpDelete
					s.Delete(k)
					insertTurn = true
				}
				if timed {
					lat.Hists[kind].Observe(time.Since(t0))
				}
				n++
			}
			counts[id].n.Store(n)
		}(id)
	}

	t0 := time.Now()
	start.Done()

	var snapStop chan struct{}
	var snapWG sync.WaitGroup
	if w.SnapshotEvery > 0 && w.SnapshotW != nil {
		snapStop = make(chan struct{})
		snap := &Snapshotter{W: w.SnapshotW, Every: w.SnapshotEvery}
		live := func() uint64 {
			var t uint64
			for i := range counts {
				t += counts[i].n.Load()
			}
			return t
		}
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			snap.Run(snapStop, live, set.Stats)
		}()
	}

	if opsPerThread == 0 {
		time.Sleep(w.Duration)
		stop.Store(true)
	}
	done.Wait()
	elapsed := time.Since(t0)
	if snapStop != nil {
		close(snapStop)
		snapWG.Wait()
	}

	var total uint64
	for i := range counts {
		total += counts[i].n.Load()
	}
	res := Result{Ops: total, Duration: elapsed, Stats: set.Stats()}
	if lats != nil {
		merged := &OpLatency{SampleEvery: w.LatencySample}
		for _, l := range lats {
			for k := range merged.Hists {
				merged.Hists[k].Merge(&l.Hists[k])
			}
		}
		res.Latency = merged
	}
	return res
}

// Repeat runs the workload reps times on fresh structures from mk and
// returns the mean Mops with the half-width of a 95% confidence interval
// (the paper's error bars; normal approximation).
func Repeat(mk func() smr.Set, w Workload, reps int) (mean, ci float64) {
	mean, ci, _ = RepeatObserved(mk, w, reps)
	return mean, ci
}

// RepeatObserved is Repeat plus the aggregate SMR statistics of the final
// repetition, so reports can place reclamation counters next to the
// throughput they accompanied.
func RepeatObserved(mk func() smr.Set, w Workload, reps int) (mean, ci float64, last smr.Stats) {
	mean, ci, res := RepeatFull(mk, w, reps)
	return mean, ci, res.Stats
}

// RepeatFull is RepeatObserved returning the final repetition's full
// Result, so callers can read the latency histograms a LatencySample > 0
// workload produced alongside the mean throughput.
//
// With reps >= 4 the single fastest and slowest repetitions are dropped
// before averaging: on a shared host one hypervisor-descheduled
// repetition drags a plain mean far below the machine's real capability
// (and one lucky repetition inflates it), which turns cross-snapshot
// throughput gates into coin flips. The trim is symmetric and applied
// identically to every run, so benchdiff pairs stay unbiased.
func RepeatFull(mk func() smr.Set, w Workload, reps int) (mean, ci float64, last Result) {
	if reps <= 0 {
		reps = 1
	}
	xs := make([]float64, reps)
	for i := range xs {
		wi := w
		wi.Seed = w.Seed + uint64(i)*1000003
		res := Run(mk(), wi)
		xs[i] = res.Mops()
		last = res
	}
	agg := xs
	if reps >= 4 {
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		agg = s[1 : len(s)-1]
	}
	for _, x := range agg {
		mean += x
	}
	mean /= float64(len(agg))
	if len(agg) < 2 {
		return mean, 0, last
	}
	var ss float64
	for _, x := range agg {
		d := x - mean
		ss += d * d
	}
	sd := ss / float64(len(agg)-1)
	// 1.96 · s/√n, the normal-approximation 95% interval.
	ci = 1.96 * math.Sqrt(sd/float64(len(agg)))
	return mean, ci, last
}

// FormatRatio renders a throughput ratio the way the paper's figures do
// (1.0 = parity with NoRecl).
func FormatRatio(scheme, base float64) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", scheme/base)
}
