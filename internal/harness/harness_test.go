package harness

import (
	"testing"
	"time"

	"repro/internal/smr"
)

func TestBuildAllPairs(t *testing.T) {
	for _, st := range Structures {
		for _, sc := range smr.Schemes {
			if !st.Supports(sc) {
				if _, err := Build(BuildConfig{Structure: st, Scheme: sc, Threads: 1, Delta: 1024}); err == nil {
					t.Fatalf("%s/%v: expected unsupported error", st, sc)
				}
				continue
			}
			set, err := Build(BuildConfig{Structure: st, Scheme: sc, Threads: 2, Delta: 1024})
			if err != nil {
				t.Fatalf("%s/%v: %v", st, sc, err)
			}
			if set.Scheme() != sc {
				t.Fatalf("%s/%v: built scheme %v", st, sc, set.Scheme())
			}
			s := set.Session(0)
			if !s.Insert(1) || !s.Contains(1) || !s.Delete(1) {
				t.Fatalf("%s/%v: basic ops failed", st, sc)
			}
		}
	}
}

func TestRunDurationMode(t *testing.T) {
	set, err := Build(BuildConfig{Structure: LinkedList128, Scheme: smr.OA, Threads: 2, Delta: 2048})
	if err != nil {
		t.Fatal(err)
	}
	w := WorkloadFor(LinkedList128, 2, 0.8)
	w.Duration = 50 * time.Millisecond
	res := Run(set, w)
	if res.Ops == 0 {
		t.Fatal("no operations performed")
	}
	if res.Mops() <= 0 {
		t.Fatalf("Mops = %v", res.Mops())
	}
	if res.Stats.Allocs == 0 {
		t.Fatalf("stats missing: %+v", res.Stats)
	}
}

func TestRunOpsMode(t *testing.T) {
	set, err := Build(BuildConfig{Structure: Hash, Scheme: smr.EBR, Threads: 4, Delta: 2048})
	if err != nil {
		t.Fatal(err)
	}
	w := WorkloadFor(Hash, 4, 0.8)
	w.TotalOps = 10000
	res := Run(set, w)
	if res.Ops < 10000 {
		t.Fatalf("Ops = %d, want >= 10000", res.Ops)
	}
}

func TestPrefillReachesSize(t *testing.T) {
	set, err := Build(BuildConfig{Structure: LinkedList128, Scheme: smr.NoRecl, Threads: 1, Delta: 1024})
	if err != nil {
		t.Fatal(err)
	}
	w := WorkloadFor(LinkedList128, 1, 0.8)
	Prefill(set, w)
	s := set.Session(0)
	count := 0
	for k := uint64(1); k <= w.KeyRange; k++ {
		if s.Contains(k) {
			count++
		}
	}
	if count != 128 {
		t.Fatalf("prefill produced %d keys, want 128", count)
	}
}

func TestRepeatStatistics(t *testing.T) {
	mk := func() smr.Set {
		set, err := Build(BuildConfig{Structure: LinkedList128, Scheme: smr.NoRecl, Threads: 1, Delta: 1024})
		if err != nil {
			t.Fatal(err)
		}
		return set
	}
	w := WorkloadFor(LinkedList128, 1, 0.8)
	w.Duration = 20 * time.Millisecond
	mean, ci := Repeat(mk, w, 3)
	if mean <= 0 {
		t.Fatalf("mean = %v", mean)
	}
	if ci < 0 {
		t.Fatalf("ci = %v", ci)
	}
}

func TestWorkloadDefaults(t *testing.T) {
	w := Workload{}
	w.fill()
	if w.Threads != 1 || w.ReadFraction != 0.8 || w.KeyRange == 0 || w.Duration == 0 {
		t.Fatalf("defaults: %+v", w)
	}
}

func TestFormatRatio(t *testing.T) {
	if got := FormatRatio(1, 0); got != "n/a" {
		t.Fatalf("FormatRatio(1,0) = %q", got)
	}
	if got := FormatRatio(3, 4); got != "0.75" {
		t.Fatalf("FormatRatio(3,4) = %q", got)
	}
}

func TestStructureMetadata(t *testing.T) {
	if LinkedList5K.InitialSize() != 5000 || LinkedList128.InitialSize() != 128 ||
		Hash.InitialSize() != 10000 || SkipList.InitialSize() != 10000 {
		t.Fatal("paper sizes wrong")
	}
	if !LinkedList5K.Supports(smr.Anchors) || Hash.Supports(smr.Anchors) || SkipList.Supports(smr.Anchors) {
		t.Fatal("anchors support matrix wrong")
	}
}

func TestZipfWorkloadRuns(t *testing.T) {
	set, err := Build(BuildConfig{Structure: Hash, Scheme: smr.OA, Threads: 2, Delta: 2048})
	if err != nil {
		t.Fatal(err)
	}
	w := WorkloadFor(Hash, 2, 0.8)
	w.TotalOps = 20000
	w.ZipfS = 1.3
	res := Run(set, w)
	if res.Ops < 20000 {
		t.Fatalf("Ops = %d", res.Ops)
	}
}

func TestLatencySampling(t *testing.T) {
	set, err := Build(BuildConfig{Structure: Hash, Scheme: smr.OA, Threads: 2, Delta: 2048})
	if err != nil {
		t.Fatal(err)
	}
	w := WorkloadFor(Hash, 2, 0.8)
	w.TotalOps = 20000
	w.LatencySample = 8
	res := Run(set, w)
	if res.Latency == nil {
		t.Fatal("LatencySample > 0 but Result.Latency is nil")
	}
	if res.Latency.SampleEvery != 8 {
		t.Fatalf("SampleEvery = %d, want 8", res.Latency.SampleEvery)
	}
	var samples uint64
	for k := OpKind(0); k < NumOpKinds; k++ {
		samples += res.Latency.Hist(k).Count()
	}
	// Every thread samples one op in 8, so roughly Ops/8 observations.
	if lo := res.Ops / 16; samples < lo {
		t.Fatalf("sampled %d ops, want >= %d of %d", samples, lo, res.Ops)
	}
	// The 80/10/10 mix must reach every histogram.
	for k := OpKind(0); k < NumOpKinds; k++ {
		if res.Latency.Hist(k).Count() == 0 {
			t.Fatalf("no %v samples", k)
		}
	}
	if res.Latency.Hist(OpContains).Quantile(0.99) == 0 {
		t.Fatal("contains p99 is zero")
	}
}

func TestLatencyDisabledByDefault(t *testing.T) {
	set, err := Build(BuildConfig{Structure: Hash, Scheme: smr.NoRecl, Threads: 1, Delta: 1024})
	if err != nil {
		t.Fatal(err)
	}
	w := WorkloadFor(Hash, 1, 0.8)
	w.TotalOps = 1000
	if res := Run(set, w); res.Latency != nil {
		t.Fatal("Result.Latency non-nil without LatencySample")
	}
}

func TestOpKindNames(t *testing.T) {
	want := map[OpKind]string{OpContains: "contains", OpInsert: "insert", OpDelete: "delete"}
	for k, n := range want {
		if k.String() != n {
			t.Fatalf("OpKind(%d).String() = %q, want %q", k, k.String(), n)
		}
	}
}
