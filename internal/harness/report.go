package harness

import (
	"fmt"
	"io"
	"time"

	"repro/internal/obs"
	"repro/internal/smr"
)

// StatSource is anything that can report aggregate SMR statistics —
// both smr.Set and smr.Queue satisfy it.
type StatSource interface {
	Stats() smr.Stats
}

// Observe registers a structure's aggregate SMR statistics with reg: one
// cumulative counter per smr.Stats field plus the retired-but-unreclaimed
// backlog gauge. If the structure also implements obs.Registrar (the OA
// wrappers do), its deep per-thread/pool/arena sources are registered too.
func Observe(reg *obs.Registry, src StatSource) {
	if rr, ok := src.(obs.Registrar); ok {
		rr.RegisterObs(reg)
	}
	stat := func(pick func(smr.Stats) uint64) obs.CounterFunc {
		return func() uint64 { return pick(src.Stats()) }
	}
	reg.Counter("smr_allocs_total", "successful slot allocations", stat(func(s smr.Stats) uint64 { return s.Allocs }))
	reg.Counter("smr_retires_total", "retire calls issued by the data structure", stat(func(s smr.Stats) uint64 { return s.Retires }))
	reg.Counter("smr_recycled_total", "slots made available for reallocation", stat(func(s smr.Stats) uint64 { return s.Recycled }))
	reg.Counter("smr_re_retired_total", "slots deferred because a hazard pointer or anchor protected them", stat(func(s smr.Stats) uint64 { return s.ReRetired }))
	reg.Counter("smr_restarts_total", "operation restarts forced by the scheme", stat(func(s smr.Stats) uint64 { return s.Restarts }))
	reg.Counter("smr_phases_total", "reclamation phases (scans, epochs) completed", stat(func(s smr.Stats) uint64 { return s.Phases }))
	reg.Gauge("smr_unreclaimed_slots", "retired slots not yet recycled (approximate under concurrency)", func() float64 {
		s := src.Stats()
		if s.Retires <= s.Recycled {
			return 0
		}
		return float64(s.Retires - s.Recycled)
	})
}

// Snapshotter prints a live progress line every Every while a run is in
// flight: cumulative ops with instantaneous throughput, per-interval deltas
// of restarts/recycled/phases, and the current retired backlog. Sampling
// reads the same per-thread atomics the workers publish, so it never stops
// or slows them.
type Snapshotter struct {
	W     io.Writer
	Every time.Duration
}

// Run samples until stop closes. ops returns the cumulative operation
// count; stats returns the structure's aggregate SMR statistics.
func (s *Snapshotter) Run(stop <-chan struct{}, ops func() uint64, stats func() smr.Stats) {
	if s.W == nil || s.Every <= 0 {
		return
	}
	tick := time.NewTicker(s.Every)
	defer tick.Stop()
	t0 := time.Now()
	var prevOps uint64
	var prev smr.Stats
	prevT := t0
	for {
		select {
		case <-stop:
			return
		case now := <-tick.C:
			curOps := ops()
			cur := stats()
			dt := now.Sub(prevT).Seconds()
			var mops float64
			if dt > 0 {
				mops = float64(curOps-prevOps) / dt / 1e6
			}
			backlog := uint64(0)
			if cur.Retires > cur.Recycled {
				backlog = cur.Retires - cur.Recycled
			}
			fmt.Fprintf(s.W, "snap +%5.1fs ops=%-12d %7.2f Mops/s  Δrestarts=%-8d Δrecycled=%-8d Δphases=%-6d backlog=%d\n",
				now.Sub(t0).Seconds(), curOps, mops,
				cur.Restarts-prev.Restarts, cur.Recycled-prev.Recycled, cur.Phases-prev.Phases, backlog)
			prevOps, prev, prevT = curOps, cur, now
		}
	}
}
