// Package smr defines the small set of types shared by every safe-memory-
// reclamation scheme in this repository: scheme identifiers, aggregate
// statistics, and the session-based data-structure interface the benchmark
// harness and the shared test suites program against.
package smr

import "fmt"

// Scheme identifies a memory reclamation scheme from the paper's
// evaluation (§5).
type Scheme int

const (
	// NoRecl performs no reclamation at all; it is the paper's baseline.
	NoRecl Scheme = iota
	// OA is the paper's contribution: the optimistic access scheme.
	OA
	// HP is Michael's hazard pointers scheme.
	HP
	// EBR is epoch-based reclamation (Fraser/Harris). Not lock-free.
	EBR
	// Anchors is the drop-the-anchor scheme of Braginsky et al.,
	// implemented (as in the paper) for the linked list only.
	Anchors
)

// Schemes lists all schemes in presentation order.
var Schemes = []Scheme{NoRecl, OA, HP, EBR, Anchors}

// String returns the paper's name for the scheme.
func (s Scheme) String() string {
	switch s {
	case NoRecl:
		return "NoRecl"
	case OA:
		return "OA"
	case HP:
		return "HP"
	case EBR:
		return "EBR"
	case Anchors:
		return "Anchors"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// ParseScheme converts a name as printed by String back to a Scheme.
func ParseScheme(name string) (Scheme, error) {
	for _, s := range Schemes {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("smr: unknown scheme %q", name)
}

// Stats aggregates the counters every scheme maintains. Fields that do not
// apply to a scheme stay zero.
type Stats struct {
	Allocs    uint64 // successful allocations
	Retires   uint64 // retire calls issued by the data structure
	Recycled  uint64 // slots made available for reallocation
	ReRetired uint64 // slots deferred to a later phase/scan (HP-protected)
	Phases    uint64 // reclamation phases / scans / epoch advances
	Restarts  uint64 // operation restarts caused by the scheme's barriers
}

// Unreclaimed estimates how many retired slots have not (yet) been made
// available for reallocation — the space overhead axis of SMR comparisons
// (unbounded under EBR with a stalled thread, bounded for HP and OA).
func (s Stats) Unreclaimed() uint64 {
	if s.Recycled > s.Retires {
		return 0
	}
	return s.Retires - s.Recycled
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Allocs += o.Allocs
	s.Retires += o.Retires
	s.Recycled += o.Recycled
	s.ReRetired += o.ReRetired
	s.Phases += o.Phases
	s.Restarts += o.Restarts
}

// Set is a concurrent integer set — the interface all benchmarked data
// structures present. Sessions bind a structure to one worker thread;
// a Session must only ever be used by the goroutine it was created for.
type Set interface {
	// Session returns the per-thread handle for thread tid
	// (0 <= tid < the structure's configured MaxThreads).
	Session(tid int) Session
	// Stats returns scheme counters aggregated over all threads.
	Stats() Stats
	// Scheme reports which reclamation scheme backs the structure.
	Scheme() Scheme
}

// Session is the per-thread view of a Set.
type Session interface {
	// Insert adds key; it returns false if key was already present.
	Insert(key uint64) bool
	// Delete removes key; it returns false if key was absent.
	Delete(key uint64) bool
	// Contains reports whether key is present.
	Contains(key uint64) bool
}

// Queue is a concurrent FIFO queue of uint64 values — the second
// data-structure shape this repository runs under the reclamation schemes
// (the Michael-Scott queue, which is also the worked example of Michael's
// hazard pointers paper).
type Queue interface {
	// QueueSession returns the per-thread handle for thread tid.
	QueueSession(tid int) QueueSession
	// Stats returns scheme counters aggregated over all threads.
	Stats() Stats
	// Scheme reports which reclamation scheme backs the queue.
	Scheme() Scheme
}

// QueueSession is the per-thread view of a Queue.
type QueueSession interface {
	// Enqueue appends v at the tail.
	Enqueue(v uint64)
	// Dequeue removes the head value; ok is false when the queue is empty.
	Dequeue() (v uint64, ok bool)
}
