package smr

import "slices"

// SlotSet is a reusable sorted-array set of slot indices, used by the
// reclamation scans (OA's Recycling, HP's Scan, the anchors reclaimer) to
// snapshot hazard pointers. Michael's hazard-pointers paper and Brown's
// survey both organize the scan this way — collect, sort once, then answer
// each membership probe with a binary search — because hashing every probe
// into a map dominates scan cost once the retired list is long. The
// backing array is retained across scans, so steady-state use allocates
// nothing.
//
// Usage: Reset, Add each candidate (duplicates fine), Seal once, then any
// number of Contains probes. A SlotSet must be used by a single goroutine
// at a time.
type SlotSet struct {
	slots []uint32
}

// Reset empties the set, keeping its capacity.
func (s *SlotSet) Reset() { s.slots = s.slots[:0] }

// Add appends a candidate slot. Duplicates are removed by Seal.
func (s *SlotSet) Add(slot uint32) { s.slots = append(s.slots, slot) }

// Seal sorts the collected slots and removes duplicates, enabling
// Contains. Sorting is in place and allocation-free.
func (s *SlotSet) Seal() {
	slices.Sort(s.slots)
	s.slots = slices.Compact(s.slots)
}

// Contains reports whether slot is in the sealed set via binary search.
func (s *SlotSet) Contains(slot uint32) bool {
	lo, hi := 0, len(s.slots)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.slots[mid] < slot {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s.slots) && s.slots[lo] == slot
}

// Len returns the number of distinct slots after Seal (or the number of
// pending candidates before it).
func (s *SlotSet) Len() int { return len(s.slots) }
