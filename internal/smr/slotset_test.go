package smr

import (
	"math/rand"
	"testing"
)

func TestSlotSetBasic(t *testing.T) {
	var s SlotSet
	if s.Contains(0) {
		t.Fatal("empty set contains 0")
	}
	s.Reset()
	for _, v := range []uint32{5, 1, 9, 5, 3, 1, 1 << 30} {
		s.Add(v)
	}
	s.Seal()
	if got, want := s.Len(), 5; got != want {
		t.Fatalf("Len = %d after dedup, want %d", got, want)
	}
	for _, v := range []uint32{1, 3, 5, 9, 1 << 30} {
		if !s.Contains(v) {
			t.Errorf("Contains(%d) = false, want true", v)
		}
	}
	for _, v := range []uint32{0, 2, 4, 8, 10, 1<<30 + 1, ^uint32(0)} {
		if s.Contains(v) {
			t.Errorf("Contains(%d) = true, want false", v)
		}
	}
}

func TestSlotSetReuseMatchesMap(t *testing.T) {
	var s SlotSet
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 50; round++ {
		s.Reset()
		ref := make(map[uint32]struct{})
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			v := uint32(rng.Intn(300))
			s.Add(v)
			ref[v] = struct{}{}
		}
		s.Seal()
		if s.Len() != len(ref) {
			t.Fatalf("round %d: Len = %d, map has %d", round, s.Len(), len(ref))
		}
		for v := uint32(0); v < 310; v++ {
			_, want := ref[v]
			if got := s.Contains(v); got != want {
				t.Fatalf("round %d: Contains(%d) = %v, want %v", round, v, got, want)
			}
		}
	}
}

// The scan hot loop must not allocate once the backing array has grown.
func TestSlotSetSteadyStateZeroAlloc(t *testing.T) {
	var s SlotSet
	for i := 0; i < 512; i++ {
		s.Add(uint32(i * 7 % 512))
	}
	s.Seal()
	if avg := testing.AllocsPerRun(100, func() {
		s.Reset()
		for i := 0; i < 512; i++ {
			s.Add(uint32(i * 13 % 512))
		}
		s.Seal()
		for i := 0; i < 512; i++ {
			s.Contains(uint32(i))
		}
	}); avg > 0 {
		t.Fatalf("steady-state scan allocates %.2f objects/run", avg)
	}
}
