package smr

import "testing"

func TestSchemeStrings(t *testing.T) {
	want := map[Scheme]string{
		NoRecl: "NoRecl", OA: "OA", HP: "HP", EBR: "EBR", Anchors: "Anchors",
	}
	for s, name := range want {
		if s.String() != name {
			t.Fatalf("%d.String() = %q, want %q", int(s), s.String(), name)
		}
	}
	if got := Scheme(42).String(); got != "Scheme(42)" {
		t.Fatalf("unknown scheme String = %q", got)
	}
}

func TestParseScheme(t *testing.T) {
	for _, s := range Schemes {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Fatal("ParseScheme must reject unknown names")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Allocs: 1, Retires: 2, Recycled: 3, ReRetired: 4, Phases: 5, Restarts: 6}
	b := a
	a.Add(b)
	if a != (Stats{Allocs: 2, Retires: 4, Recycled: 6, ReRetired: 8, Phases: 10, Restarts: 12}) {
		t.Fatalf("Add = %+v", a)
	}
}

func TestSchemesOrder(t *testing.T) {
	if len(Schemes) != 5 || Schemes[0] != NoRecl || Schemes[1] != OA {
		t.Fatalf("Schemes = %v", Schemes)
	}
}
