package kvmap

import (
	"testing"

	"repro/internal/core"
)

// FuzzMapVsModel drives the OA map (including the in-place value update
// path) with a byte-encoded operation sequence against a model map. Byte
// layout: three bytes per op — opcode%4, key, value.
func FuzzMapVsModel(f *testing.F) {
	f.Add([]byte{0, 1, 10, 3, 1, 0, 1, 1, 20, 3, 1, 0, 2, 1, 0})
	f.Add([]byte{1, 7, 1, 1, 7, 2, 2, 7, 0, 3, 7, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m := New(core.Config{MaxThreads: 1, Capacity: 512, LocalPool: 4}, 64)
		s := m.Session(0)
		model := map[uint64]uint64{}
		for i := 0; i+2 < len(data); i += 3 {
			op := data[i] % 4
			k := uint64(data[i+1]) + 1
			v := uint64(data[i+2])
			switch op {
			case 0: // Put
				wantPrev, wantHad := model[k]
				prev, had := s.Put(k, v)
				if had != wantHad || (had && prev != wantPrev) {
					t.Fatalf("op %d: Put(%d,%d) = %d,%v want %d,%v", i/3, k, v, prev, had, wantPrev, wantHad)
				}
				model[k] = v
			case 1: // PutIfAbsent
				_, present := model[k]
				if got := s.PutIfAbsent(k, v); got != !present {
					t.Fatalf("op %d: PutIfAbsent(%d) = %v", i/3, k, got)
				}
				if !present {
					model[k] = v
				}
			case 2: // Remove
				want, wantOk := model[k]
				got, ok := s.Remove(k)
				if ok != wantOk || (ok && got != want) {
					t.Fatalf("op %d: Remove(%d) = %d,%v want %d,%v", i/3, k, got, ok, want, wantOk)
				}
				delete(model, k)
			default: // Get
				want, wantOk := model[k]
				got, ok := s.Get(k)
				if ok != wantOk || (ok && got != want) {
					t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", i/3, k, got, ok, want, wantOk)
				}
			}
		}
	})
}
