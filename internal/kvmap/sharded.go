package kvmap

import (
	"runtime"

	"repro/internal/core"
	"repro/internal/pools"
	"repro/internal/smr"
)

// Sharded partitions a keyspace across N independent Maps, each with its
// own core.Manager — its own arena, block pools, reclamation phases and
// session registry. This is the server-side mirror of the sharded block
// pools (internal/pools): the paper's schemes scale because reclamation
// work is thread-local, and a single shared structure instance re-couples
// what the scheme decoupled — every phase swap freezes every connection's
// pools and every warning broadcast touches every thread context. With
// per-core shards, a reclamation phase in one shard leaves the other
// shards' operation streams untouched.
//
// Routing is a multiply-shift hash on the key's high bits, deliberately
// disjoint from the per-Map bucket hash (which consumes the mid bits), so
// shard choice and bucket choice stay uncorrelated.
type Sharded struct {
	maps  []*Map
	shift uint
}

// shardMultiplier is an odd 64-bit mixing constant (splitmix64's second
// round), distinct from the Fibonacci constant the bucket hash uses.
const shardMultiplier = 0xD6E8FEB86659FD93

// DefaultShards is the shard count used when n <= 0 is requested:
// NextPow2(min(maxThreads, GOMAXPROCS)), the same formula the block pools
// use — one shard per thread that can actually run concurrently.
func DefaultShards(maxThreads int) int {
	n := runtime.GOMAXPROCS(0)
	if maxThreads > 0 && maxThreads < n {
		n = maxThreads
	}
	n = pools.NextPow2(n)
	if n > pools.MaxShards {
		n = pools.MaxShards
	}
	return n
}

// NewSharded builds shards independent Maps. cfg.Capacity and expected
// are totals: each shard receives a 1/shards slice of both, so the
// aggregate node budget is constant across shard counts. cfg.MaxThreads
// is per shard: every shard carries a full session registry, because a
// connection whose keys spray across the keyspace leases one session per
// shard it touches. shards is rounded up to a power of two (capped at
// pools.MaxShards); shards <= 0 picks DefaultShards(cfg.MaxThreads).
func NewSharded(cfg core.Config, expected, shards int) *Sharded {
	n := shards
	if n <= 0 {
		n = DefaultShards(cfg.MaxThreads)
	}
	n = pools.NextPow2(n)
	if n > pools.MaxShards {
		n = pools.MaxShards
	}
	per := cfg
	per.Capacity = cfg.Capacity / n
	perExpected := expected / n
	if perExpected < 1 {
		perExpected = 1
	}
	s := &Sharded{maps: make([]*Map, n), shift: uint(64 - log2(n))}
	for i := range s.maps {
		s.maps[i] = New(per, perExpected)
	}
	return s
}

// ShardedOf wraps existing Maps (len must be a power of two) — the
// single-Map compatibility path and the test hook for heterogeneous
// shard configs.
func ShardedOf(maps ...*Map) *Sharded {
	if len(maps) == 0 || len(maps)&(len(maps)-1) != 0 {
		panic("kvmap: ShardedOf needs a power-of-two shard count")
	}
	return &Sharded{maps: maps, shift: uint(64 - log2(len(maps)))}
}

func log2(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}

// NumShards returns the shard count (a power of two).
func (s *Sharded) NumShards() int { return len(s.maps) }

// ShardIndex routes a key to its home shard. One shard always routes to
// index 0 (a shift of 64 yields 0 in Go).
func (s *Sharded) ShardIndex(key uint64) int {
	return int((key * shardMultiplier) >> s.shift)
}

// Shard returns shard i.
func (s *Sharded) Shard(i int) *Map { return s.maps[i] }

// Close closes every shard's session registry: Acquire fails from then
// on; outstanding sessions stay valid until Released.
func (s *Sharded) Close() {
	for _, m := range s.maps {
		m.Close()
	}
}

// Stats returns per-shard reclamation counters, indexed by shard.
func (s *Sharded) Stats() []smr.Stats {
	out := make([]smr.Stats, len(s.maps))
	for i, m := range s.maps {
		out[i] = m.Stats()
	}
	return out
}

// SessionsCap sums the shards' session registry capacities.
func (s *Sharded) SessionsCap() int {
	n := 0
	for _, m := range s.maps {
		n += m.Manager().Lessor().Cap()
	}
	return n
}

// SessionsLeased sums the shards' currently leased sessions.
func (s *Sharded) SessionsLeased() int {
	n := 0
	for _, m := range s.maps {
		n += m.Manager().Lessor().Leased()
	}
	return n
}

// SessionGrants sums the shards' lease grants.
func (s *Sharded) SessionGrants() uint64 {
	var n uint64
	for _, m := range s.maps {
		n += m.Manager().Lessor().Grants()
	}
	return n
}
