// Package kvmap extends the paper's set structures into a key→value hash
// map under the optimistic access scheme — the extension a downstream user
// of the library most often needs. The bucket lists are Harris-Michael
// lists whose nodes carry a value word and an auxiliary metadata word;
// Get/Put/PutIfAbsent/Remove follow the same normalized-form discipline
// as the sets, built on the Level-1 oakit primitives:
//
//   - Get is read-only: loads plus warning checks, no fences (Algorithm 1).
//   - Put updates in place with a CAS on the value word — an observable
//     CAS, so it runs under the Algorithm 2 write barrier (oakit.WordCAS);
//     an update on a concurrently deleted node linearizes before the
//     delete.
//   - PutIfAbsent/Remove mirror the set's Insert/Delete generators
//     (oakit.Commit / CommitPinned).
//
// The Aux word is uninterpreted here: internal/ttlcache packs TTL
// deadlines and LRU access stamps into it. The aux-conditioned
// primitives (GetWithAux, PutIfAbsentWithAux, AuxCAS, RemoveIfAux,
// WalkBucket) are policy-free so the map stays a plain KV store for
// callers that ignore them.
package kvmap

import (
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/oakit"
	"repro/internal/smr"
)

// Node is a map node: key, value, aux metadata, successor. All fields
// atomic (stale reads under OA).
type Node struct {
	Key  atomic.Uint64
	Val  atomic.Uint64
	Aux  atomic.Uint64
	Next atomic.Uint64
}

// ResetNode zeroes a node (the allocation memset hook).
func ResetNode(n *Node) {
	n.Key.Store(0)
	n.Val.Store(0)
	n.Aux.Store(0)
	n.Next.Store(0)
}

// Map is a lock-free hash map of uint64→uint64 under optimistic access.
type Map struct {
	kit   *oakit.Engine[Node]
	heads []uint32
	mask  uint32
	// sessions caches one Session per thread context for the leasing API:
	// a context's session (and its pending pre-allocated node) survives
	// lease churn, so connect/disconnect cycles strand no slots.
	sessions []*Session
}

// loadFactor matches the paper's hash benchmarks.
const loadFactor = 0.75

// New builds a map sized for expected entries. cfg.Capacity is the node
// budget (live entries + reclamation slack δ); bucket sentinels are added
// on top automatically.
func New(cfg core.Config, expected int) *Map {
	want := int(float64(expected)/loadFactor) + 1
	n := 1
	for n < want {
		n <<= 1
	}
	cfg.Capacity += n
	m := &Map{kit: oakit.NewEngine[Node](cfg, ResetNode, 3), mask: uint32(n - 1)}
	m.heads = make([]uint32, n)
	for i := range m.heads {
		m.heads[i] = m.kit.NewRoot()
	}
	m.sessions = make([]*Session, m.kit.Manager().MaxThreads())
	for i := range m.sessions {
		m.sessions[i] = m.Session(i)
	}
	return m
}

// Manager exposes the underlying optimistic access manager.
func (m *Map) Manager() *core.Manager[Node] { return m.kit.Manager() }

// Stats returns reclamation counters.
func (m *Map) Stats() smr.Stats { return m.kit.Stats() }

// Buckets returns the bucket count (for WalkBucket sweeps).
func (m *Map) Buckets() int { return len(m.heads) }

func (m *Map) bucket(key uint64) uint32 {
	return m.heads[uint32((key*0x9E3779B97F4A7C15)>>33)&m.mask]
}

// Session binds the map to worker tid; one session per goroutine.
//
// Deprecated: fixed thread ids cannot be assigned safely from dynamic
// goroutine populations; use Acquire, which leases a free context.
func (m *Map) Session(tid int) *Session {
	return &Session{m: m, c: m.kit.Ctx(tid)}
}

// Acquire leases a free thread context and returns its session. The
// session must be used by one goroutine at a time and returned with
// Release. Acquire fails with lease.ErrNoFreeSessions when all contexts
// are leased and lease.ErrClosed after Close.
func (m *Map) Acquire() (*Session, error) {
	t, err := m.kit.Manager().AcquireThread()
	if err != nil {
		return nil, err
	}
	s := m.sessions[t.ID()]
	s.released.Store(false)
	return s, nil
}

// Close marks the session registry closed: Acquire fails from then on,
// outstanding sessions stay valid until Released.
func (m *Map) Close() { m.kit.Close() }

// Session is the per-thread handle of a Map.
type Session struct {
	m        *Map
	c        *oakit.Ctx[Node]
	released atomic.Bool
}

// TID returns the session's thread context id.
func (s *Session) TID() int { return s.c.TID() }

// FlushRetired pushes the session's partially filled local retire block
// into the global reclamation pipeline. Bulk-removal passes call it so
// every slot they freed becomes allocatable now, instead of the tail of
// the batch waiting in the local buffer for the block to fill.
func (s *Session) FlushRetired() { s.c.FlushRetired() }

// Release returns a session obtained from Acquire to the free pool. It
// panics on double release (two goroutines sharing one context would
// corrupt hazard-pointer and warning state silently). Sessions obtained
// from the deprecated fixed-slot Session method must not be released.
func (s *Session) Release() {
	if s.released.Swap(true) {
		panic("kvmap: double Release of session")
	}
	s.m.kit.Manager().ReleaseThread(s.c.Th)
}

// Get returns the value stored under key.
func (s *Session) Get(key uint64) (uint64, bool) {
	v, _, ok := s.GetWithAux(key)
	return v, ok
}

// GetWithAux returns the value and aux word stored under key. The two
// words are read in one validated batch, so the pair is consistent as of
// some instant during the call (Algorithm 1).
func (s *Session) GetWithAux(key uint64) (val, aux uint64, ok bool) {
	th := s.c.Th
	head := s.m.bucket(key)
restart:
	for {
		cur := arena.Ptr(th.Node(head).Next.Load())
		if th.Check() {
			continue restart
		}
		for !cur.IsNil() {
			n := th.Node(cur.Unmark().Slot())
			next := arena.Ptr(n.Next.Load())
			ckey := n.Key.Load()
			v := n.Val.Load()
			a := n.Aux.Load()
			if th.Check() {
				continue restart
			}
			if ckey >= key {
				if ckey == key && !next.Marked() {
					return v, a, true
				}
				return 0, 0, false
			}
			cur = next.Unmark()
		}
		return 0, 0, false
	}
}

// search mirrors the set engines' generator search (with helping physical
// deletes through oakit.UnlinkRetire).
func (s *Session) search(head uint32, key uint64) (prevSlot uint32, cur, next arena.Ptr, ckey uint64, ok, restart bool) {
	th := s.c.Th
	prevSlot = head
	cur = arena.Ptr(th.Node(head).Next.Load())
	if th.Check() {
		return 0, 0, 0, 0, false, true
	}
	for {
		if cur.IsNil() {
			return prevSlot, cur, 0, 0, false, false
		}
		curSlot := cur.Slot()
		n := th.Node(curSlot)
		next = arena.Ptr(n.Next.Load())
		ckey = n.Key.Load()
		tmp := arena.Ptr(th.Node(prevSlot).Next.Load())
		if th.Check() {
			return 0, 0, 0, 0, false, true
		}
		if tmp != cur {
			return 0, 0, 0, 0, false, true
		}
		if !next.Marked() {
			if ckey >= key {
				return prevSlot, cur, next, ckey, true, false
			}
			prevSlot = curSlot
		} else if !s.c.UnlinkRetire(&th.Node(prevSlot).Next, arena.MakePtr(prevSlot), cur, next.Unmark()) {
			return 0, 0, 0, 0, false, true
		}
		cur = next.Unmark()
	}
}

// PutIfAbsent stores val under key unless key is present; it reports
// whether the store happened.
func (s *Session) PutIfAbsent(key, val uint64) bool {
	inserted, _ := s.put(key, val, 0, false)
	return inserted
}

// PutIfAbsentWithAux is PutIfAbsent with the new node's aux word preset
// before it is linked (the node is private until the linking CAS, so the
// value/aux pair publishes atomically with the insert).
func (s *Session) PutIfAbsentWithAux(key, val, aux uint64) bool {
	inserted, _ := s.put(key, val, aux, false)
	return inserted
}

// Put stores val under key, inserting or overwriting. It returns the
// previous value and whether one existed. An overwrite leaves the aux
// word untouched; a fresh insert zeroes it.
func (s *Session) Put(key, val uint64) (uint64, bool) {
	_, prev := s.put(key, val, 0, true)
	return prev.val, prev.had
}

type prevVal struct {
	val uint64
	had bool
}

func (s *Session) put(key, val, aux uint64, overwrite bool) (bool, prevVal) {
	th := s.c.Th
	head := s.m.bucket(key)
	for {
		// --- CAS generator ---
		prevSlot, cur, _, ckey, found, restart := s.search(head, key)
		if restart {
			continue
		}
		if found && ckey == key {
			if !overwrite {
				return false, prevVal{}
			}
			// In-place value update: one observable CAS on the value word
			// (Algorithm 2 protects the node against recycling).
			n := th.Node(cur.Slot())
			old := n.Val.Load()
			if th.Check() {
				continue
			}
			swapped, restart := s.c.WordCAS(cur, &n.Val, old, val)
			if restart || !swapped {
				continue // warning, or the value raced; regenerate
			}
			return false, prevVal{val: old, had: true}
		}
		slot := s.c.Pending()
		n := th.Node(slot)
		n.Key.Store(key)
		n.Val.Store(val)
		n.Aux.Store(aux)
		n.Next.Store(uint64(cur))
		if !s.c.Commit(&th.Node(prevSlot).Next, uint64(cur), uint64(arena.MakePtr(slot)),
			arena.MakePtr(prevSlot), cur, arena.MakePtr(slot)) {
			continue
		}
		s.c.ConsumePending()
		return true, prevVal{}
	}
}

// CompareAndSwap replaces the value under key with new only while the
// current value equals old. It returns (swapped, found): (false, false)
// when key is absent, (false, true) on a value mismatch. Like Put's
// in-place update it is one observable CAS on the value word under the
// Algorithm 2 write barrier, so it linearizes against concurrent Puts,
// Removes and other CASes.
func (s *Session) CompareAndSwap(key, old, new uint64) (swapped, found bool) {
	return s.casWord(key, old, new, false)
}

// AuxCAS is CompareAndSwap on the aux word: the linearization primitive
// for metadata transitions (TTL deadline updates, LRU access stamps,
// expiry tombstones) on a live entry.
func (s *Session) AuxCAS(key, old, new uint64) (swapped, found bool) {
	return s.casWord(key, old, new, true)
}

func (s *Session) casWord(key, old, new uint64, aux bool) (swapped, found bool) {
	th := s.c.Th
	head := s.m.bucket(key)
	for {
		_, cur, _, ckey, ok, restart := s.search(head, key)
		if restart {
			continue
		}
		if !ok || ckey != key {
			return false, false
		}
		n := th.Node(cur.Slot())
		w := &n.Val
		if aux {
			w = &n.Aux
		}
		v := w.Load()
		if th.Check() {
			continue
		}
		if v != old {
			return false, true
		}
		won, restart := s.c.WordCAS(cur, w, old, new)
		if restart {
			continue
		}
		if won {
			return true, true
		}
		// The word moved between the read and the CAS: re-search and
		// re-read — the next round reports mismatch or retries as needed.
	}
}

// Remove deletes key, returning the removed value and whether key existed.
func (s *Session) Remove(key uint64) (uint64, bool) {
	th := s.c.Th
	head := s.m.bucket(key)
	for {
		// --- CAS generator ---
		prevSlot, cur, next, ckey, found, restart := s.search(head, key)
		if restart {
			continue
		}
		if !found || ckey != key {
			return 0, false
		}
		n := th.Node(cur.Slot())
		if !s.c.CommitPinned(&n.Next, uint64(next), uint64(next.Mark()),
			cur, next, arena.NilPtr) {
			continue
		}
		// Read the removed value *after* winning the mark, while the owner
		// hazard pointer still pins the node: an in-place Put that lands
		// between the generator's read and the mark linearizes before this
		// Remove, so the post-mark value is the one removed.
		val := n.Val.Load()
		s.c.Unpin()
		// Best-effort immediate unlink. Leaving the physical delete to a
		// later traversal's helping strands the slot until organic traffic
		// happens to walk this bucket, so bulk removals (cache sweeps,
		// eviction) would mark hundreds of nodes while freeing none of
		// them for the starving allocator. A lost race or a warning here
		// is fine — some helper finishes the job.
		s.c.UnlinkRetire(&th.Node(prevSlot).Next, arena.MakePtr(prevSlot), cur, next)
		return val, true
	}
}

// RemoveIfAux deletes key only while aux&mask == want still holds on the
// node — the conditional removal lazy TTL expiry needs. The predicate is
// re-evaluated inside the generator on every restart and pinned by the
// normalized commit, so a fresh same-key entry (or one whose aux was
// CASed away from the matching state) is never removed by a stale
// decision. Reports whether the removal happened.
func (s *Session) RemoveIfAux(key, mask, want uint64) bool {
	th := s.c.Th
	head := s.m.bucket(key)
	for {
		prevSlot, cur, next, ckey, found, restart := s.search(head, key)
		if restart {
			continue
		}
		if !found || ckey != key {
			return false
		}
		n := th.Node(cur.Slot())
		a := n.Aux.Load()
		if th.Check() {
			continue
		}
		if a&mask != want {
			return false
		}
		if !s.c.Commit(&n.Next, uint64(next), uint64(next.Mark()),
			cur, next, arena.NilPtr) {
			continue
		}
		// Best-effort immediate unlink — see Remove for why sweeps need
		// the physical delete now rather than at the next traversal.
		s.c.UnlinkRetire(&th.Node(prevSlot).Next, arena.MakePtr(prevSlot), cur, next)
		return true
	}
}

// WalkBucket visits every live entry of bucket b, calling fn(key, val,
// aux) until fn returns false. Each node's words are read in one
// validated batch, but the walk as a whole is weakly consistent: a
// concurrent warning restarts the bucket, so fn may see an entry more
// than once and concurrent insertions may be missed. Sweepers and
// samplers — the intended callers — tolerate both.
func (s *Session) WalkBucket(b int, fn func(key, val, aux uint64) bool) {
	th := s.c.Th
	head := s.m.heads[b]
restart:
	for {
		cur := arena.Ptr(th.Node(head).Next.Load())
		if th.Check() {
			continue restart
		}
		for !cur.IsNil() {
			n := th.Node(cur.Unmark().Slot())
			next := arena.Ptr(n.Next.Load())
			ckey := n.Key.Load()
			v := n.Val.Load()
			a := n.Aux.Load()
			if th.Check() {
				continue restart
			}
			if !next.Marked() {
				if !fn(ckey, v, a) {
					return
				}
			}
			cur = next.Unmark()
		}
		return
	}
}
