// Package kvmap extends the paper's set structures into a key→value hash
// map under the optimistic access scheme — the extension a downstream user
// of the library most often needs. The bucket lists are Harris-Michael
// lists whose nodes carry a value word; Get/Put/PutIfAbsent/Remove follow
// the same normalized-form discipline as the sets:
//
//   - Get is read-only: loads plus warning checks, no fences (Algorithm 1).
//   - Put updates in place with a CAS on the value word — an observable
//     CAS, so it runs under the Algorithm 2 write barrier; an update on a
//     concurrently deleted node linearizes before the delete.
//   - PutIfAbsent/Remove mirror the set's Insert/Delete generators.
package kvmap

import (
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/normalized"
	"repro/internal/smr"
)

// Node is a map node: key, value, successor. All fields atomic (stale
// reads under OA).
type Node struct {
	Key  atomic.Uint64
	Val  atomic.Uint64
	Next atomic.Uint64
}

// ResetNode zeroes a node (the allocation memset hook).
func ResetNode(n *Node) {
	n.Key.Store(0)
	n.Val.Store(0)
	n.Next.Store(0)
}

// Map is a lock-free hash map of uint64→uint64 under optimistic access.
type Map struct {
	mgr   *core.Manager[Node]
	heads []uint32
	mask  uint32
	// sessions caches one Session per thread context for the leasing API:
	// a context's session (and its pending pre-allocated node) survives
	// lease churn, so connect/disconnect cycles strand no slots.
	sessions []*Session
}

// loadFactor matches the paper's hash benchmarks.
const loadFactor = 0.75

// New builds a map sized for expected entries. cfg.Capacity is the node
// budget (live entries + reclamation slack δ); bucket sentinels are added
// on top automatically.
func New(cfg core.Config, expected int) *Map {
	want := int(float64(expected)/loadFactor) + 1
	n := 1
	for n < want {
		n <<= 1
	}
	cfg.Capacity += n
	cfg.OwnerHPs = 3
	m := &Map{mgr: core.NewManager[Node](cfg, ResetNode), mask: uint32(n - 1)}
	t := m.mgr.Thread(0)
	m.heads = make([]uint32, n)
	for i := range m.heads {
		m.heads[i] = t.Alloc()
	}
	m.sessions = make([]*Session, m.mgr.MaxThreads())
	for i := range m.sessions {
		m.sessions[i] = m.Session(i)
	}
	return m
}

// Manager exposes the underlying optimistic access manager.
func (m *Map) Manager() *core.Manager[Node] { return m.mgr }

// Stats returns reclamation counters.
func (m *Map) Stats() smr.Stats { return m.mgr.Stats() }

func (m *Map) bucket(key uint64) uint32 {
	return m.heads[uint32((key*0x9E3779B97F4A7C15)>>33)&m.mask]
}

// Session binds the map to worker tid; one session per goroutine.
//
// Deprecated: fixed thread ids cannot be assigned safely from dynamic
// goroutine populations; use Acquire, which leases a free context.
func (m *Map) Session(tid int) *Session {
	return &Session{m: m, t: m.mgr.Thread(tid), pending: arena.NoSlot}
}

// Acquire leases a free thread context and returns its session. The
// session must be used by one goroutine at a time and returned with
// Release. Acquire fails with lease.ErrNoFreeSessions when all contexts
// are leased and lease.ErrClosed after Close.
func (m *Map) Acquire() (*Session, error) {
	t, err := m.mgr.AcquireThread()
	if err != nil {
		return nil, err
	}
	s := m.sessions[t.ID()]
	s.released.Store(false)
	return s, nil
}

// Close marks the session registry closed: Acquire fails from then on,
// outstanding sessions stay valid until Released.
func (m *Map) Close() { m.mgr.Close() }

// Session is the per-thread handle of a Map.
type Session struct {
	m        *Map
	t        *core.Thread[Node]
	pending  uint32
	released atomic.Bool
}

// TID returns the session's thread context id.
func (s *Session) TID() int { return s.t.ID() }

// Release returns a session obtained from Acquire to the free pool. It
// panics on double release (two goroutines sharing one context would
// corrupt hazard-pointer and warning state silently). Sessions obtained
// from the deprecated fixed-slot Session method must not be released.
func (s *Session) Release() {
	if s.released.Swap(true) {
		panic("kvmap: double Release of session")
	}
	s.m.mgr.ReleaseThread(s.t)
}

// Get returns the value stored under key.
func (s *Session) Get(key uint64) (uint64, bool) {
	th := s.t
	head := s.m.bucket(key)
restart:
	for {
		cur := arena.Ptr(th.Node(head).Next.Load())
		if th.Check() {
			continue restart
		}
		for !cur.IsNil() {
			n := th.Node(cur.Unmark().Slot())
			next := arena.Ptr(n.Next.Load())
			ckey := n.Key.Load()
			val := n.Val.Load()
			if th.Check() {
				continue restart
			}
			if ckey >= key {
				if ckey == key && !next.Marked() {
					return val, true
				}
				return 0, false
			}
			cur = next.Unmark()
		}
		return 0, false
	}
}

// search mirrors the set engines' generator search (with helping physical
// deletes under the write barrier).
func (s *Session) search(head uint32, key uint64) (prevSlot uint32, cur, next arena.Ptr, ckey uint64, ok, restart bool) {
	th := s.t
	prevSlot = head
	cur = arena.Ptr(th.Node(head).Next.Load())
	if th.Check() {
		return 0, 0, 0, 0, false, true
	}
	for {
		if cur.IsNil() {
			return prevSlot, cur, 0, 0, false, false
		}
		curSlot := cur.Slot()
		n := th.Node(curSlot)
		next = arena.Ptr(n.Next.Load())
		ckey = n.Key.Load()
		tmp := arena.Ptr(th.Node(prevSlot).Next.Load())
		if th.Check() {
			return 0, 0, 0, 0, false, true
		}
		if tmp != cur {
			return 0, 0, 0, 0, false, true
		}
		if !next.Marked() {
			if ckey >= key {
				return prevSlot, cur, next, ckey, true, false
			}
			prevSlot = curSlot
		} else {
			if th.ProtectCAS(arena.MakePtr(prevSlot), cur, next.Unmark()) {
				return 0, 0, 0, 0, false, true
			}
			if th.Node(prevSlot).Next.CompareAndSwap(uint64(cur), uint64(next.Unmark())) {
				th.ClearCAS()
				th.Retire(curSlot)
			} else {
				th.ClearCAS()
				return 0, 0, 0, 0, false, true
			}
		}
		cur = next.Unmark()
	}
}

// PutIfAbsent stores val under key unless key is present; it reports
// whether the store happened.
func (s *Session) PutIfAbsent(key, val uint64) bool {
	inserted, _ := s.put(key, val, false)
	return inserted
}

// Put stores val under key, inserting or overwriting. It returns the
// previous value and whether one existed.
func (s *Session) Put(key, val uint64) (uint64, bool) {
	_, prev := s.put(key, val, true)
	return prev.val, prev.had
}

type prevVal struct {
	val uint64
	had bool
}

func (s *Session) put(key, val uint64, overwrite bool) (bool, prevVal) {
	th := s.t
	head := s.m.bucket(key)
	var dl normalized.DescList
	for {
		// --- CAS generator ---
		prevSlot, cur, _, ckey, found, restart := s.search(head, key)
		if restart {
			continue
		}
		if found && ckey == key {
			if !overwrite {
				return false, prevVal{}
			}
			// In-place value update: one observable CAS on the value word
			// (Algorithm 2 protects the node against recycling).
			n := th.Node(cur.Slot())
			old := n.Val.Load()
			if th.Check() {
				continue
			}
			if th.ProtectCAS(cur, arena.NilPtr, arena.NilPtr) {
				continue
			}
			swapped := n.Val.CompareAndSwap(old, val)
			th.ClearCAS()
			if !swapped {
				continue // value raced; regenerate
			}
			return false, prevVal{val: old, had: true}
		}
		if s.pending == arena.NoSlot {
			s.pending = th.Alloc()
		}
		n := th.Node(s.pending)
		n.Key.Store(key)
		n.Val.Store(val)
		n.Next.Store(uint64(cur))
		dl.Reset()
		dl.Append(&th.Node(prevSlot).Next, uint64(cur), uint64(arena.MakePtr(s.pending)))
		th.SetOwnerHP(0, arena.MakePtr(prevSlot))
		th.SetOwnerHP(1, cur)
		th.SetOwnerHP(2, arena.MakePtr(s.pending))
		if th.SealGenerator() {
			continue
		}
		// --- CAS executor ---
		failed := normalized.Execute(&dl)
		// --- wrap-up ---
		th.ClearOwnerHPs()
		if failed != 0 {
			continue
		}
		s.pending = arena.NoSlot
		return true, prevVal{}
	}
}

// CompareAndSwap replaces the value under key with new only while the
// current value equals old. It returns (swapped, found): (false, false)
// when key is absent, (false, true) on a value mismatch. Like Put's
// in-place update it is one observable CAS on the value word under the
// Algorithm 2 write barrier, so it linearizes against concurrent Puts,
// Removes and other CASes.
func (s *Session) CompareAndSwap(key, old, new uint64) (swapped, found bool) {
	th := s.t
	head := s.m.bucket(key)
	for {
		_, cur, _, ckey, ok, restart := s.search(head, key)
		if restart {
			continue
		}
		if !ok || ckey != key {
			return false, false
		}
		n := th.Node(cur.Slot())
		v := n.Val.Load()
		if th.Check() {
			continue
		}
		if v != old {
			return false, true
		}
		if th.ProtectCAS(cur, arena.NilPtr, arena.NilPtr) {
			continue
		}
		won := n.Val.CompareAndSwap(old, new)
		th.ClearCAS()
		if won {
			return true, true
		}
		// The value word moved between the read and the CAS: re-search and
		// re-read — the next round reports mismatch or retries as needed.
	}
}

// Remove deletes key, returning the removed value and whether key existed.
func (s *Session) Remove(key uint64) (uint64, bool) {
	th := s.t
	head := s.m.bucket(key)
	var dl normalized.DescList
	for {
		// --- CAS generator ---
		_, cur, next, ckey, found, restart := s.search(head, key)
		if restart {
			continue
		}
		if !found || ckey != key {
			return 0, false
		}
		n := th.Node(cur.Slot())
		dl.Reset()
		dl.Append(&n.Next, uint64(next), uint64(next.Mark()))
		th.SetOwnerHP(0, cur)
		th.SetOwnerHP(1, next)
		if th.SealGenerator() {
			continue
		}
		// --- CAS executor ---
		failed := normalized.Execute(&dl)
		// --- wrap-up ---
		if failed != 0 {
			th.ClearOwnerHPs()
			continue
		}
		// Read the removed value *after* winning the mark, while the owner
		// hazard pointer still pins the node: an in-place Put that lands
		// between the generator's read and the mark linearizes before this
		// Remove, so the post-mark value is the one removed.
		val := n.Val.Load()
		th.ClearOwnerHPs()
		return val, true
	}
}
