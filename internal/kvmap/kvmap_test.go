package kvmap

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func newMap(threads, capacity, expected int) *Map {
	return New(core.Config{MaxThreads: threads, Capacity: capacity, LocalPool: 16}, expected)
}

func TestBasicOps(t *testing.T) {
	m := newMap(1, 4096, 256)
	s := m.Session(0)

	if _, ok := s.Get(1); ok {
		t.Fatal("empty map Get")
	}
	if _, ok := s.Remove(1); ok {
		t.Fatal("empty map Remove")
	}
	if !s.PutIfAbsent(1, 100) {
		t.Fatal("fresh PutIfAbsent failed")
	}
	if s.PutIfAbsent(1, 200) {
		t.Fatal("duplicate PutIfAbsent succeeded")
	}
	if v, ok := s.Get(1); !ok || v != 100 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if prev, had := s.Put(1, 300); !had || prev != 100 {
		t.Fatalf("Put prev = %d,%v", prev, had)
	}
	if v, ok := s.Get(1); !ok || v != 300 {
		t.Fatalf("Get after Put = %d,%v", v, ok)
	}
	if prev, had := s.Put(2, 7); had || prev != 0 {
		t.Fatalf("inserting Put = %d,%v", prev, had)
	}
	if v, ok := s.Remove(1); !ok || v != 300 {
		t.Fatalf("Remove = %d,%v", v, ok)
	}
	if _, ok := s.Get(1); ok {
		t.Fatal("removed key still present")
	}
	if v, ok := s.Get(2); !ok || v != 7 {
		t.Fatalf("unrelated key disturbed: %d,%v", v, ok)
	}
}

func TestRandomOpsVsModel(t *testing.T) {
	m := newMap(1, 1<<14, 512)
	s := m.Session(0)
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 30000; i++ {
		k := uint64(rng.Intn(300)) + 1
		v := rng.Uint64()
		switch rng.Intn(4) {
		case 0:
			prev, wantHad := model[k], false
			if _, inModel := model[k]; inModel {
				wantHad = true
			}
			gotPrev, had := s.Put(k, v)
			if had != wantHad || (had && gotPrev != prev) {
				t.Fatalf("op %d: Put(%d) = %d,%v want %d,%v", i, k, gotPrev, had, prev, wantHad)
			}
			model[k] = v
		case 1:
			_, wantOk := model[k]
			if got := s.PutIfAbsent(k, v); got != !wantOk {
				t.Fatalf("op %d: PutIfAbsent(%d) = %v", i, k, got)
			}
			if !wantOk {
				model[k] = v
			}
		case 2:
			want, wantOk := model[k]
			got, ok := s.Remove(k)
			if ok != wantOk || (ok && got != want) {
				t.Fatalf("op %d: Remove(%d) = %d,%v want %d,%v", i, k, got, ok, want, wantOk)
			}
			delete(model, k)
		default:
			want, wantOk := model[k]
			got, ok := s.Get(k)
			if ok != wantOk || (ok && got != want) {
				t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", i, k, got, ok, want, wantOk)
			}
		}
	}
	if m.Stats().Allocs == 0 {
		t.Fatal("stats not wired")
	}
}

// Property: Put always returns the previous value of the chain.
func TestQuickPutChain(t *testing.T) {
	m := newMap(1, 1<<14, 64)
	s := m.Session(0)
	last := map[uint64]uint64{}
	f := func(k8 uint8, v uint64) bool {
		k := uint64(k8) + 1
		prev, had := s.Put(k, v)
		expPrev, expHad := last[k], false
		if _, ok := last[k]; ok {
			expHad = true
		}
		last[k] = v
		return had == expHad && (!had || prev == expPrev)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// Disjoint-key concurrency: each worker's slice of the key space behaves
// sequentially under heavy cross-bucket interference and recycling churn.
func TestConcurrentDisjoint(t *testing.T) {
	const threads = 6
	m := newMap(threads, 1<<14, 1024)
	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s := m.Session(id)
			base := uint64(id) << 32
			model := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(int64(id)))
			for i := 0; i < 15000; i++ {
				k := base + uint64(rng.Intn(128)) + 1
				v := rng.Uint64()
				switch rng.Intn(3) {
				case 0:
					prev, had := s.Put(k, v)
					want, wantHad := model[k]
					_ = want
					if had != wantHad || (had && prev != model[k]) {
						t.Errorf("thread %d: Put(%d) prev mismatch", id, k)
						return
					}
					model[k] = v
				case 1:
					got, ok := s.Remove(k)
					want, wantOk := model[k]
					if ok != wantOk || (ok && got != want) {
						t.Errorf("thread %d: Remove(%d) mismatch", id, k)
						return
					}
					delete(model, k)
				default:
					got, ok := s.Get(k)
					want, wantOk := model[k]
					if ok != wantOk || (ok && got != want) {
						t.Errorf("thread %d: Get(%d) = %d,%v want %d,%v", id, k, got, ok, want, wantOk)
						return
					}
				}
			}
		}(id)
	}
	wg.Wait()
}

// Value handoff under contention: concurrent Put/Remove on one key must
// never lose or duplicate a value — every successful Remove returns the
// value of some Put, and each Put's value is removed at most once.
func TestConcurrentValueHandoff(t *testing.T) {
	const threads = 4
	m := newMap(threads, 1<<14, 64)
	var mu sync.Mutex
	removed := map[uint64]int{}
	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s := m.Session(id)
			for i := 0; i < 8000; i++ {
				v := uint64(id)<<32 | uint64(i) + 1
				if id%2 == 0 {
					s.PutIfAbsent(42, v)
				} else if got, ok := s.Remove(42); ok {
					mu.Lock()
					removed[got]++
					mu.Unlock()
				}
			}
		}(id)
	}
	wg.Wait()
	for v, n := range removed {
		if n != 1 {
			t.Fatalf("value %#x removed %d times", v, n)
		}
	}
}

// Recycling must engage under churn.
func TestMapRecycles(t *testing.T) {
	m := newMap(1, 2048, 256)
	s := m.Session(0)
	for i := 0; i < 30000; i++ {
		k := uint64(i%512) + 1
		s.PutIfAbsent(k, k)
		s.Remove(k)
	}
	st := m.Stats()
	if st.Phases == 0 || st.Recycled == 0 {
		t.Fatalf("map reclamation inactive: %+v", st)
	}
}
