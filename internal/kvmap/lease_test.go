package kvmap

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/lease"
)

func TestAcquireReleaseChurn(t *testing.T) {
	const (
		threads = 4
		workers = 32
		rounds  = 200
	)
	m := New(core.Config{MaxThreads: threads, Capacity: 1 << 14}, 1024)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; {
				s, err := m.Acquire()
				if errors.Is(err, lease.ErrNoFreeSessions) {
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				k := uint64(w)<<32 | uint64(i) + 1
				s.Put(k, k)
				if v, ok := s.Get(k); !ok || v != k {
					t.Errorf("get %d = %d,%v", k, v, ok)
				}
				s.Remove(k)
				s.Release()
				i++
			}
		}(w)
	}
	wg.Wait()
	if got := m.Manager().Lessor().Leased(); got != 0 {
		t.Fatalf("leaked %d leases", got)
	}
}

// TestAcquireReusesSessionState proves the per-context session cache: a
// context's pending pre-allocated node survives lease churn instead of
// leaking one arena slot per connect/disconnect cycle.
func TestAcquireReusesSessionState(t *testing.T) {
	m := New(core.Config{MaxThreads: 1, Capacity: 1 << 12}, 256)
	s1, err := m.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	// A Put that finds the key present leaves a pending allocation behind.
	s1.Put(7, 1)
	s1.Put(7, 2)
	tid := s1.TID()
	s1.Release()
	s2, err := m.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if s2 != s1 || s2.TID() != tid {
		t.Fatal("lease churn did not reuse the cached session")
	}
	s2.Release()
}

func TestAcquireExhaustionAndClose(t *testing.T) {
	m := New(core.Config{MaxThreads: 2, Capacity: 1 << 12}, 256)
	a, err := m.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire(); !errors.Is(err, lease.ErrNoFreeSessions) {
		t.Fatalf("exhausted acquire: %v", err)
	}
	m.Close()
	a.Release()
	if _, err := m.Acquire(); !errors.Is(err, lease.ErrClosed) {
		t.Fatalf("acquire after close: %v", err)
	}
	b.Release()
}

func TestDoubleSessionReleasePanics(t *testing.T) {
	m := New(core.Config{MaxThreads: 1, Capacity: 1 << 12}, 256)
	s, err := m.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	s.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	s.Release()
}

func TestCompareAndSwap(t *testing.T) {
	m := New(core.Config{MaxThreads: 1, Capacity: 1 << 12}, 256)
	s := m.Session(0)
	if swapped, found := s.CompareAndSwap(1, 0, 10); swapped || found {
		t.Fatalf("CAS on absent key = %v,%v", swapped, found)
	}
	s.Put(1, 10)
	if swapped, found := s.CompareAndSwap(1, 9, 11); swapped || !found {
		t.Fatalf("CAS mismatch = %v,%v", swapped, found)
	}
	if swapped, found := s.CompareAndSwap(1, 10, 11); !swapped || !found {
		t.Fatalf("CAS = %v,%v", swapped, found)
	}
	if v, _ := s.Get(1); v != 11 {
		t.Fatalf("value after CAS = %d", v)
	}
}

func TestCompareAndSwapContended(t *testing.T) {
	const workers = 4
	m := New(core.Config{MaxThreads: workers, Capacity: 1 << 14}, 1024)
	m.Session(0).Put(1, 0)
	var wg sync.WaitGroup
	per := 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := m.Session(w)
			for i := 0; i < per; {
				v, _ := s.Get(1)
				if swapped, _ := s.CompareAndSwap(1, v, v+1); swapped {
					i++
				}
			}
		}(w)
	}
	wg.Wait()
	if v, _ := m.Session(0).Get(1); v != uint64(workers*per) {
		t.Fatalf("counter = %d, want %d (lost updates)", v, workers*per)
	}
}
