package kvmap

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/lease"
)

func TestShardedRouting(t *testing.T) {
	s := NewSharded(core.Config{MaxThreads: 2, Capacity: 1 << 14}, 1<<12, 4)
	if s.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", s.NumShards())
	}
	// Deterministic, in-bounds, and not degenerate: over a key sweep every
	// shard must receive a reasonable slice of the keyspace.
	var hist [4]int
	for k := uint64(0); k < 1<<16; k++ {
		i := s.ShardIndex(k)
		if i != s.ShardIndex(k) {
			t.Fatalf("ShardIndex(%d) not deterministic", k)
		}
		if i < 0 || i >= 4 {
			t.Fatalf("ShardIndex(%d) = %d out of range", k, i)
		}
		hist[i]++
	}
	for i, n := range hist {
		if n < 1<<16/8 {
			t.Fatalf("shard %d received %d of %d keys — router is degenerate (hist %v)", i, n, 1<<16, hist)
		}
	}
}

func TestShardedSingleShardRoutesToZero(t *testing.T) {
	s := NewSharded(core.Config{MaxThreads: 1, Capacity: 1 << 10}, 16, 1)
	for _, k := range []uint64{0, 1, ^uint64(0), 0xDEADBEEF} {
		if i := s.ShardIndex(k); i != 0 {
			t.Fatalf("ShardIndex(%#x) = %d with one shard", k, i)
		}
	}
}

func TestShardedRoundsUpAndDefaults(t *testing.T) {
	s := NewSharded(core.Config{MaxThreads: 1, Capacity: 1 << 12}, 16, 3)
	if s.NumShards() != 4 {
		t.Fatalf("shards=3 rounded to %d, want 4", s.NumShards())
	}
	d := NewSharded(core.Config{MaxThreads: 8, Capacity: 1 << 12}, 16, 0)
	if want := DefaultShards(8); d.NumShards() != want {
		t.Fatalf("default shards = %d, want %d", d.NumShards(), want)
	}
}

// TestShardedIndependentSessions proves the per-shard session registries
// are independent: exhausting one shard's registry must not block another
// shard's Acquire.
func TestShardedIndependentSessions(t *testing.T) {
	s := NewSharded(core.Config{MaxThreads: 1, Capacity: 1 << 12}, 64, 2)
	s0, err := s.Shard(0).Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer s0.Release()
	if _, err := s.Shard(0).Acquire(); !errors.Is(err, lease.ErrNoFreeSessions) {
		t.Fatalf("second Acquire on shard 0 = %v, want ErrNoFreeSessions", err)
	}
	s1, err := s.Shard(1).Acquire()
	if err != nil {
		t.Fatalf("shard 1 Acquire while shard 0 exhausted: %v", err)
	}
	s1.Release()
	if got := s.SessionsCap(); got != 2 {
		t.Fatalf("SessionsCap = %d, want 2", got)
	}
	if got := s.SessionsLeased(); got != 1 {
		t.Fatalf("SessionsLeased = %d, want 1", got)
	}
	if got := s.SessionGrants(); got != 2 {
		t.Fatalf("SessionGrants = %d, want 2", got)
	}
}

// TestShardedKeyspaceDisjoint writes through each shard's own map and
// checks a key stored in its home shard is invisible to the others (the
// shards are independent structures, not replicas).
func TestShardedKeyspaceDisjoint(t *testing.T) {
	s := NewSharded(core.Config{MaxThreads: 1, Capacity: 1 << 14}, 1<<12, 4)
	sessions := make([]*Session, 4)
	for i := range sessions {
		sess, err := s.Shard(i).Acquire()
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Release()
		sessions[i] = sess
	}
	for k := uint64(1); k <= 1000; k++ {
		home := s.ShardIndex(k)
		sessions[home].Put(k, k*10)
	}
	for k := uint64(1); k <= 1000; k++ {
		home := s.ShardIndex(k)
		for i, sess := range sessions {
			v, ok := sess.Get(k)
			if i == home && (!ok || v != k*10) {
				t.Fatalf("key %d missing from home shard %d (ok=%v v=%d)", k, home, ok, v)
			}
			if i != home && ok {
				t.Fatalf("key %d leaked into shard %d", k, i)
			}
		}
	}
	stats := s.Stats()
	if len(stats) != 4 {
		t.Fatalf("Stats len = %d, want 4", len(stats))
	}
}

func TestShardedClose(t *testing.T) {
	s := NewSharded(core.Config{MaxThreads: 1, Capacity: 1 << 10}, 16, 2)
	s.Close()
	for i := 0; i < 2; i++ {
		if _, err := s.Shard(i).Acquire(); !errors.Is(err, lease.ErrClosed) {
			t.Fatalf("shard %d Acquire after Close = %v, want ErrClosed", i, err)
		}
	}
}

func TestShardedOfValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ShardedOf with 3 maps did not panic")
		}
	}()
	m := New(core.Config{MaxThreads: 1, Capacity: 1 << 10}, 16)
	ShardedOf(m, m, m)
}
