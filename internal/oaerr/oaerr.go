// Package oaerr holds the sentinel errors shared across the public API
// surfaces (package oamem, the binary protocol status codes, the RESP
// error classes). It is a leaf package so that internal/server, the
// structure packages and oamem can all return the *same* error values
// without import cycles: errors.Is matches no matter which layer handed
// the error out. The session-economy sentinels (ErrNoFreeSessions,
// ErrClosed, ErrCapacityExhausted) live in internal/lease for the same
// reason; oamem/errors.go documents the complete set in one place.
package oaerr

import "errors"

var (
	// ErrInvalidOptions reports a constructor rejected its options
	// (negative sizes, a scheme a structure does not support). Returned
	// errors wrap it with the offending field and value.
	ErrInvalidOptions = errors.New("invalid options")

	// ErrNotFound reports a lookup missed: the key is absent (or, for a
	// TTL cache, present but expired). The protocol NOT_FOUND status and
	// the RESP nil bulk map onto it.
	ErrNotFound = errors.New("key not found")

	// ErrCASMismatch reports a compare-and-swap found the key but the
	// current value differed from the expected one.
	ErrCASMismatch = errors.New("cas mismatch")

	// ErrFrameTooLarge reports a protocol frame or RESP command exceeded
	// the configured limits. The connection is cut afterwards because the
	// stream cannot be resynchronized.
	ErrFrameTooLarge = errors.New("frame exceeds limit")

	// ErrValueTooLarge reports a value does not fit the u64-packed store
	// (RESP values are at most 7 bytes, {len:1B | bytes:7B}).
	ErrValueTooLarge = errors.New("value exceeds the 7-byte packed-word limit")

	// ErrBadRequest reports a malformed or unknown request (bad opcode,
	// RESP protocol error, wrong arity).
	ErrBadRequest = errors.New("bad request")
)
