package ttlcache

import (
	"repro/internal/kvmap"
)

// Sharded is the cache layer over a kvmap.Sharded: one Cache per shard,
// sharing the shard's map, session economy and reclamation phases. The
// server wraps each request's shard session with the shard's cache.
type Sharded struct {
	sh     *kvmap.Sharded
	caches []*Cache
}

// OverSharded layers a cache on every shard of sh. MaxLive is a total
// and is divided evenly across shards (like the map's capacity).
func OverSharded(sh *kvmap.Sharded, o Options) *Sharded {
	n := sh.NumShards()
	if o.MaxLive > 0 {
		o.MaxLive = (o.MaxLive + n - 1) / n
	}
	s := &Sharded{sh: sh, caches: make([]*Cache, n)}
	for i := range s.caches {
		s.caches[i] = Over(sh.Shard(i), o)
	}
	return s
}

// Shards exposes the underlying sharded map.
func (s *Sharded) Shards() *kvmap.Sharded { return s.sh }

// Cache returns shard i's cache layer.
func (s *Sharded) Cache(i int) *Cache { return s.caches[i] }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.caches) }

// Stats aggregates the per-shard cache counters.
func (s *Sharded) Stats() Stats {
	var t Stats
	for _, c := range s.caches {
		st := c.Stats()
		t.Live += st.Live
		t.Expired += st.Expired
		t.Evicted += st.Evicted
		t.Reliefs += st.Reliefs
		t.Sweeps += st.Sweeps
	}
	return t
}

// Close stops every shard's sweeper (the maps are closed by their owner).
func (s *Sharded) Close() {
	for _, c := range s.caches {
		c.Close()
	}
}
