// Package ttlcache layers TTL expiry and LRU eviction over the kvmap
// hash map — the structure a production KV server still lacked, built on
// the oakit primitives to prove the kit's claim that a new OA structure
// costs ~100 lines of structure-specific protocol code (the rest of this
// package is policy: clocks, sampling, sweeping).
//
// # Protocol
//
// All per-entry state lives in the kvmap node's Aux word:
//
//	bit  63     tombstone: the entry is logically dead, permanently
//	bits 40..62 access stamp: seconds since the cache epoch (LRU, ~97d wrap)
//	bits  0..39 deadline: milliseconds since the cache epoch; 0 = no TTL
//
// An entry is dead when its tombstone is set or its deadline has passed.
// Death by timeout needs no writer — Get simply stops returning the
// entry — so expiry linearizes at the deadline instant even though the
// node is unlinked lazily. Physical removal is a two-step protocol:
//
//  1. Tombstone: AuxCAS(aux → aux|tomb), valid only on a dead-by-deadline
//     entry (expiry) or a live one (eviction). The CAS loses to any
//     concurrent aux transition — a SETEX refreshing the deadline, an
//     access stamp — and re-reads, so no live entry is ever tombstoned by
//     a stale decision.
//  2. Unlink: RemoveIfAux(key, tomb, tomb) marks the node only while the
//     tombstone still holds; since tombstones are permanent and fresh
//     same-key inserts start untombstoned, a new entry can never be
//     removed by an old reaper. The thread whose RemoveIfAux wins does
//     the live-count bookkeeping, exactly once per node.
//
// Value updates on a live entry are an in-place CAS on the value word
// (kvmap.CompareAndSwap) followed by the deadline CAS: a Set is
// two linearization points — the value applies first, the TTL refresh
// second — and a Set that loses the tombstone race between them simply
// re-inserts a fresh node (see Set). Reads validate value and aux in one
// batch (GetWithAux), so a recycled or resurrected slot is never
// returned: the usual OA warning machinery covers the cache because the
// cache is just aux-word policy over the map.
//
// # Eviction
//
// Capacity pressure never OOM-kills a Set: the arena's starvation panic
// (wrapping lease.ErrCapacityExhausted) is caught, a relief pass sweeps
// expired entries and evicts the oldest-stamped live ones (sampled LRU
// over rotating buckets), and the Set retries; only when relief frees
// nothing is ErrCapacityExhausted returned as an error. A MaxLive
// watermark additionally triggers small inline eviction batches on
// insert, and an optional background sweeper unlinks dead entries so
// their slots recycle through the ordinary retire → warning → drain
// pipeline without waiting for a reader to trip over them.
package ttlcache

import (
	"errors"
	"time"

	"sync/atomic"

	"repro/internal/kvmap"
	"repro/internal/lease"
)

const (
	tombBit      = uint64(1) << 63
	deadlineBits = 40
	deadlineMask = uint64(1)<<deadlineBits - 1
	accessMask   = (uint64(1)<<23 - 1) << deadlineBits
)

// NoExpiry marks an entry without a deadline.
const NoExpiry time.Duration = -1

func deadlineOf(a uint64) int64 { return int64(a & deadlineMask) }

func withAccess(a uint64, nowMs int64) uint64 {
	return a&^accessMask | (uint64(nowMs/1000)<<deadlineBits)&accessMask
}

func withDeadline(a uint64, d int64) uint64 {
	return a&^deadlineMask | uint64(d)&deadlineMask
}

func isDead(a uint64, nowMs int64) bool {
	if a&tombBit != 0 {
		return true
	}
	d := deadlineOf(a)
	return d != 0 && nowMs >= d
}

// Options configures a Cache.
type Options struct {
	// DefaultTTL applies to Set calls without an explicit TTL; zero means
	// entries without an explicit TTL never expire.
	DefaultTTL time.Duration
	// MaxLive is the LRU watermark: inserts past it trigger eviction of
	// the oldest-accessed entries. Zero disables watermark eviction
	// (capacity-pressure relief still evicts).
	MaxLive int
	// SweepInterval is the background sweeper period; zero disables the
	// sweeper (expiry still happens lazily on reads and under pressure).
	SweepInterval time.Duration
	// NowMs overrides the clock (milliseconds since an arbitrary epoch,
	// monotone). Nil uses a monotonic clock from time.Now at
	// construction. Tests freeze it.
	NowMs func() int64
}

// Cache is the TTL/LRU layer over one kvmap.Map. It does not own the
// map's session economy: callers lease kvmap sessions as usual and wrap
// them with With.
type Cache struct {
	m     *kvmap.Map
	nowMs func() int64
	opts  Options

	live    atomic.Int64
	cursor  atomic.Uint32 // rotating bucket cursor for sampling/sweeping
	expired atomic.Uint64
	evicted atomic.Uint64
	relieve atomic.Uint64 // capacity-pressure relief passes
	sweeps  atomic.Uint64

	stop chan struct{}
	done chan struct{}
}

// Stats is a point-in-time snapshot of the cache's own counters (the
// underlying reclamation counters stay on the map's manager).
type Stats struct {
	Live    int64  `json:"live"`    // approximate live entries (expired-but-unswept included)
	Expired uint64 `json:"expired"` // entries unlinked because their deadline passed
	Evicted uint64 `json:"evicted"` // live entries unlinked by LRU pressure
	Reliefs uint64 `json:"reliefs"` // capacity-pressure relief passes
	Sweeps  uint64 `json:"sweeps"`  // background sweeper passes
}

// Over builds the cache layer over m. Close stops the sweeper (the map
// itself is closed by its owner).
func Over(m *kvmap.Map, o Options) *Cache {
	c := &Cache{m: m, opts: o, nowMs: o.NowMs}
	if c.nowMs == nil {
		epoch := time.Now()
		c.nowMs = func() int64 { return time.Since(epoch).Milliseconds() + 1 }
	}
	if o.SweepInterval > 0 {
		c.stop, c.done = make(chan struct{}), make(chan struct{})
		go c.sweeper(o.SweepInterval)
	}
	return c
}

// Map returns the underlying kvmap.
func (c *Cache) Map() *kvmap.Map { return c.m }

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Live:    c.live.Load(),
		Expired: c.expired.Load(),
		Evicted: c.evicted.Load(),
		Reliefs: c.relieve.Load(),
		Sweeps:  c.sweeps.Load(),
	}
}

// Close stops the background sweeper, if any.
func (c *Cache) Close() {
	if c.stop != nil {
		close(c.stop)
		<-c.done
		c.stop = nil
	}
}

// With wraps a leased kvmap session with the cache policy. Session is a
// value: wrapping allocates nothing, so servers can wrap per request.
func (c *Cache) With(ks *kvmap.Session) Session { return Session{c: c, ks: ks} }

// Acquire leases a session from the underlying map and wraps it.
func (c *Cache) Acquire() (Session, error) {
	ks, err := c.m.Acquire()
	if err != nil {
		return Session{}, err
	}
	return c.With(ks), nil
}

// Session is a leased, cache-aware handle: one goroutine at a time.
type Session struct {
	c  *Cache
	ks *kvmap.Session
}

// Unwrap returns the raw kvmap session (same lease).
func (s Session) Unwrap() *kvmap.Session { return s.ks }

// Release returns the underlying lease.
func (s Session) Release() { s.ks.Release() }

// Get returns the value under key if the entry is alive. A dead entry is
// reaped on the way out (lazy expiry); a live hit refreshes the LRU
// access stamp at second granularity.
func (s Session) Get(key uint64) (uint64, bool) {
	v, a, ok := s.ks.GetWithAux(key)
	if !ok {
		return 0, false
	}
	now := s.c.nowMs()
	if isDead(a, now) {
		s.c.reap(s.ks, key)
		return 0, false
	}
	if stamped := withAccess(a, now); stamped != a {
		s.ks.AuxCAS(key, a, stamped) // best effort; losers keep the old stamp
	}
	return v, true
}

// Contains reports liveness without touching the access stamp.
func (s Session) Contains(key uint64) bool {
	_, a, ok := s.ks.GetWithAux(key)
	return ok && !isDead(a, s.c.nowMs())
}

// Set stores val under key with the cache's default TTL.
func (s Session) Set(key, val uint64) error { return s.SetTTL(key, val, 0) }

// SetTTL stores val under key. ttl == 0 applies the default TTL;
// NoExpiry (or any negative ttl) stores without a deadline. Under
// capacity pressure it relieves (sweep + LRU eviction) and retries
// before giving up with an error wrapping lease.ErrCapacityExhausted.
func (s Session) SetTTL(key, val uint64, ttl time.Duration) error {
	if ttl == 0 {
		ttl = s.c.opts.DefaultTTL
	}
	for attempt := 0; ; attempt++ {
		err := s.trySet(key, val, ttl)
		if err == nil {
			return nil
		}
		if !errors.Is(err, lease.ErrCapacityExhausted) || attempt >= 2 {
			return err
		}
		s.c.Relieve(s.ks)
	}
}

// trySet is one Set attempt; the arena's starvation panic is converted
// to an error for the relief loop. The recover is safe here: Alloc
// panics before any hazard pointer or CAS descriptor is armed, so the
// session state is clean.
func (s Session) trySet(key, val uint64, ttl time.Duration) (err error) {
	defer func() {
		if r := recover(); r != nil {
			e, ok := r.(error)
			if !ok || !errors.Is(e, lease.ErrCapacityExhausted) {
				panic(r)
			}
			err = e
		}
	}()
	for {
		now := s.c.nowMs()
		deadline := int64(0)
		if ttl > 0 {
			deadline = now + int64(ttl/time.Millisecond)
			if deadline <= now {
				deadline = now + 1
			}
		}
		v, a, ok := s.ks.GetWithAux(key)
		if ok && !isDead(a, now) {
			// Live entry: value CAS in place, then deadline CAS. Two
			// linearization points (value first, TTL second); losing the
			// tombstone race between them falls through to re-insert.
			if swapped, found := s.ks.CompareAndSwap(key, v, val); !found || !swapped {
				continue // vanished or value raced; re-read
			}
			for {
				_, a2, ok2 := s.ks.GetWithAux(key)
				if !ok2 || isDead(a2, now) {
					break // reaped or dying under us: re-insert fresh
				}
				want := withAccess(withDeadline(a2, deadline), now)
				if swapped, _ := s.ks.AuxCAS(key, a2, want); swapped {
					return nil
				}
			}
			continue
		}
		if ok {
			s.c.reap(s.ks, key) // dead entry in the way: unlink it first
		}
		if s.ks.PutIfAbsentWithAux(key, val, withAccess(uint64(deadline)&deadlineMask, now)) {
			s.c.onInsert(s.ks)
			return nil
		}
		// Lost the insert race; the next round updates in place.
	}
}

// Expire sets the TTL of a live entry, reporting whether one existed.
// A non-positive ttl removes the deadline (the entry persists).
func (s Session) Expire(key uint64, ttl time.Duration) bool {
	for {
		now := s.c.nowMs()
		_, a, ok := s.ks.GetWithAux(key)
		if !ok {
			return false
		}
		if isDead(a, now) {
			s.c.reap(s.ks, key)
			return false
		}
		deadline := int64(0)
		if ttl > 0 {
			deadline = now + int64(ttl/time.Millisecond)
			if deadline <= now {
				deadline = now + 1
			}
		}
		if swapped, _ := s.ks.AuxCAS(key, a, withDeadline(a, deadline)); swapped {
			return true
		}
	}
}

// TTL reports the entry's state: remaining > 0 with hasTTL when a
// deadline is set, hasTTL=false for a live entry without one, ok=false
// when the key is absent or dead.
func (s Session) TTL(key uint64) (remaining time.Duration, hasTTL, ok bool) {
	_, a, ok := s.ks.GetWithAux(key)
	if !ok {
		return 0, false, false
	}
	now := s.c.nowMs()
	if isDead(a, now) {
		s.c.reap(s.ks, key)
		return 0, false, false
	}
	d := deadlineOf(a)
	if d == 0 {
		return 0, false, true
	}
	return time.Duration(d-now) * time.Millisecond, true, true
}

// Remove deletes key, reporting whether a live entry existed.
func (s Session) Remove(key uint64) bool {
	_, a, ok := s.ks.GetWithAux(key)
	if !ok {
		return false
	}
	if isDead(a, s.c.nowMs()) {
		s.c.reap(s.ks, key)
		return false
	}
	if _, had := s.ks.Remove(key); had {
		s.c.live.Add(-1)
		return true
	}
	return false
}

// reap unlinks a dead entry: tombstone (aux CAS, losing to any
// concurrent transition and re-reading), then conditional removal. The
// winner of the unlink does the bookkeeping.
func (c *Cache) reap(ks *kvmap.Session, key uint64) bool {
	for {
		_, a, ok := ks.GetWithAux(key)
		if !ok {
			return false
		}
		if !isDead(a, c.nowMs()) {
			return false
		}
		if a&tombBit != 0 {
			break
		}
		if swapped, found := ks.AuxCAS(key, a, a|tombBit); swapped || !found {
			break
		}
	}
	if ks.RemoveIfAux(key, tombBit, tombBit) {
		c.live.Add(-1)
		c.expired.Add(1)
		return true
	}
	return false
}

// evictOne tombstones and unlinks a specific live victim (LRU choice).
func (c *Cache) evictOne(ks *kvmap.Session, key uint64) bool {
	for {
		_, a, ok := ks.GetWithAux(key)
		if !ok {
			return false
		}
		if a&tombBit != 0 {
			break
		}
		if isDead(a, c.nowMs()) {
			return c.reap(ks, key)
		}
		if swapped, found := ks.AuxCAS(key, a, a|tombBit); swapped || !found {
			break
		}
	}
	if ks.RemoveIfAux(key, tombBit, tombBit) {
		c.live.Add(-1)
		c.evicted.Add(1)
		return true
	}
	return false
}

// onInsert runs the watermark check after a successful insert.
func (c *Cache) onInsert(ks *kvmap.Session) {
	n := c.live.Add(1)
	if max := int64(c.opts.MaxLive); max > 0 && n > max {
		c.evictBatch(ks, int(n-max))
	}
}

// evictionSample is how many candidates beyond the batch size one
// eviction pass gathers before ranking (a larger pool approximates LRU
// better; Redis samples 5 per eviction).
const evictionSample = 16

// evictBatch samples rotating buckets and unlinks the oldest-accessed
// live entries — approximate LRU, as production caches do it. Returns
// how many entries it unlinked (expired entries found along the way are
// reaped and counted too).
func (c *Cache) evictBatch(ks *kvmap.Session, want int) int {
	if want < 1 {
		want = 1
	}
	type cand struct {
		key    uint64
		access uint64
	}
	var cands [64]cand
	n := 0
	now := c.nowMs()
	freed := 0
	buckets := c.m.Buckets()
	// Advance the rotating cursor until the pool holds evictionSample
	// candidates beyond the batch size (or the whole table was sampled —
	// buckets can be much sparser than the live set when the map is sized
	// generously, so a fixed bucket budget could come back empty-handed).
	minCands := want + evictionSample
	if minCands > len(cands) {
		minCands = len(cands)
	}
	for b := 0; b < buckets && n < minCands; b++ {
		idx := int(c.cursor.Add(1)-1) % buckets
		ks.WalkBucket(idx, func(k, _, a uint64) bool {
			if a&tombBit != 0 {
				return true
			}
			if isDead(a, now) {
				if c.reap(ks, k) {
					freed++
				}
				return true
			}
			if n < len(cands) {
				cands[n] = cand{key: k, access: a & accessMask}
				n++
			}
			return n < len(cands)
		})
		if n >= len(cands) {
			break
		}
	}
	for freed < want && n > 0 {
		oldest := 0
		for i := 1; i < n; i++ {
			if cands[i].access < cands[oldest].access {
				oldest = i
			}
		}
		if c.evictOne(ks, cands[oldest].key) {
			freed++
		}
		n--
		cands[oldest] = cands[n]
	}
	return freed
}

// Relieve is the capacity-pressure pass: sweep every bucket for dead
// entries, then evict an LRU batch if the sweep freed nothing. It runs
// on the caller's session — under arena starvation there may be no other
// way to make allocation progress.
func (c *Cache) Relieve(ks *kvmap.Session) int {
	c.relieve.Add(1)
	freed := c.sweepOnce(ks)
	if freed == 0 {
		want := int(c.live.Load() / 16)
		if want < 32 {
			want = 32
		}
		freed = c.evictBatch(ks, want)
	}
	// The caller is starving: push the partial retire block too, so the
	// tail of the batch doesn't sit in the local buffer.
	ks.FlushRetired()
	return freed
}

// sweepOnce walks every bucket and reaps dead entries, returning how
// many it unlinked.
func (c *Cache) sweepOnce(ks *kvmap.Session) int {
	now := c.nowMs()
	freed := 0
	var deadKeys [128]uint64
	for b := 0; b < c.m.Buckets(); b++ {
		n := 0
		ks.WalkBucket(b, func(k, _, a uint64) bool {
			if isDead(a, now) && n < len(deadKeys) {
				deadKeys[n] = k
				n++
			}
			return n < len(deadKeys)
		})
		for i := 0; i < n; i++ {
			if c.reap(ks, deadKeys[i]) {
				freed++
			}
		}
	}
	return freed
}

// Sweep runs one full expiry pass on the caller's session (the unit the
// background sweeper loops; exported for tests and tools).
func (c *Cache) Sweep(ks *kvmap.Session) int {
	c.sweeps.Add(1)
	return c.sweepOnce(ks)
}

// sweeper periodically leases a session and sweeps. Lease-exhausted
// ticks are skipped — lazy expiry and pressure relief cover for a busy
// registry, and retired slots still drain through the ordinary
// retire → warning → drain pipeline.
func (c *Cache) sweeper(every time.Duration) {
	defer close(c.done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			if ks, err := c.m.Acquire(); err == nil {
				c.Sweep(ks)
				ks.Release()
			}
		}
	}
}
