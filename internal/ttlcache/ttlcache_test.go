package ttlcache_test

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kvmap"
	"repro/internal/lease"
	"repro/internal/ttlcache"
)

// freeze builds a cache over a fresh map on a frozen test clock so
// every deadline comparison is exact (the real clock would make the
// sub-millisecond window around a deadline nondeterministic).
func freeze(t *testing.T, threads, capacity int, o ttlcache.Options) (*ttlcache.Cache, *atomic.Int64) {
	t.Helper()
	clock := new(atomic.Int64)
	clock.Store(1)
	o.NowMs = clock.Load
	// A small spin limit keeps each provoked starvation event cheap —
	// the default 1<<22 spins cost seconds apiece (minutes under -race)
	// and the tests below starve the arena on purpose, repeatedly.
	m := kvmap.New(core.Config{
		MaxThreads: threads, Capacity: capacity, AllocSpinLimit: 1 << 12,
	}, capacity/2)
	c := ttlcache.Over(m, o)
	t.Cleanup(c.Close)
	return c, clock
}

func TestGetSetExpireLinearizable(t *testing.T) {
	c, clock := freeze(t, 1, 1<<12, ttlcache.Options{})
	s, err := c.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()

	// Sequential model check over a mixed op stream: a map plus explicit
	// deadlines replayed against the cache on the same frozen clock.
	type entry struct {
		val      uint64
		deadline int64 // 0 = none, ms on the test clock
	}
	model := map[uint64]entry{}
	alive := func(k uint64) (entry, bool) {
		e, ok := model[k]
		if !ok || (e.deadline != 0 && e.deadline <= clock.Load()) {
			return entry{}, false
		}
		return e, true
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 30000; i++ {
		k := uint64(rng.Intn(64)) + 1
		switch rng.Intn(6) {
		case 0: // Set without TTL
			v := uint64(i)
			if err := s.Set(k, v); err != nil {
				t.Fatalf("op %d: Set: %v", i, err)
			}
			model[k] = entry{val: v}
		case 1: // SetTTL
			v := uint64(i)
			ttl := time.Duration(1+rng.Intn(50)) * time.Millisecond
			if err := s.SetTTL(k, v, ttl); err != nil {
				t.Fatalf("op %d: SetTTL: %v", i, err)
			}
			model[k] = entry{val: v, deadline: clock.Load() + int64(ttl/time.Millisecond)}
		case 2: // Get
			e, want := alive(k)
			v, ok := s.Get(k)
			if ok != want || (ok && v != e.val) {
				t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", i, k, v, ok, e.val, want)
			}
		case 3: // Expire
			_, want := alive(k)
			ttl := time.Duration(1+rng.Intn(50)) * time.Millisecond
			if got := s.Expire(k, ttl); got != want {
				t.Fatalf("op %d: Expire(%d) = %v want %v", i, k, got, want)
			}
			if want {
				e := model[k]
				e.deadline = clock.Load() + int64(ttl/time.Millisecond)
				model[k] = e
			}
		case 4: // Remove
			_, want := alive(k)
			if got := s.Remove(k); got != want {
				t.Fatalf("op %d: Remove(%d) = %v want %v", i, k, got, want)
			}
			delete(model, k)
		case 5: // advance the clock a little
			clock.Add(int64(rng.Intn(7)))
		}
	}
	st := c.Stats()
	if st.Expired == 0 {
		t.Fatalf("stream produced no expiries: %+v", st)
	}
	// Model and cache agree on the final live set.
	live := int64(0)
	for k := uint64(1); k <= 64; k++ {
		e, want := alive(k)
		v, ok := s.Get(k)
		if ok != want || (ok && v != e.val) {
			t.Fatalf("final: Get(%d) = %d,%v want %d,%v", k, v, ok, e.val, want)
		}
		if want {
			live++
		}
	}
	if got := c.Stats().Live; got != live {
		t.Fatalf("live counter = %d, model says %d", got, live)
	}
}

func TestTTLIntrospection(t *testing.T) {
	c, clock := freeze(t, 1, 4096, ttlcache.Options{DefaultTTL: 100 * time.Millisecond})
	s, err := c.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()

	// Set applies the default TTL; NoExpiry opts out per key.
	if err := s.Set(1, 10); err != nil {
		t.Fatal(err)
	}
	if remaining, hasTTL, ok := s.TTL(1); !ok || !hasTTL || remaining != 100*time.Millisecond {
		t.Fatalf("TTL(1) = %v,%v,%v", remaining, hasTTL, ok)
	}
	if err := s.SetTTL(2, 20, ttlcache.NoExpiry); err != nil {
		t.Fatal(err)
	}
	if _, hasTTL, ok := s.TTL(2); !ok || hasTTL {
		t.Fatalf("NoExpiry key reports a TTL")
	}
	// Set on a live key refreshes the deadline (value and TTL update).
	clock.Add(60)
	if err := s.Set(1, 11); err != nil {
		t.Fatal(err)
	}
	if remaining, _, _ := s.TTL(1); remaining != 100*time.Millisecond {
		t.Fatalf("refreshed TTL = %v, want 100ms", remaining)
	}
	clock.Add(99)
	if v, ok := s.Get(1); !ok || v != 11 {
		t.Fatalf("Get(1) 1ms before deadline = %d,%v", v, ok)
	}
	clock.Add(1)
	if _, ok := s.Get(1); ok {
		t.Fatal("Get(1) at the deadline instant still alive")
	}
	if _, _, ok := s.TTL(1); ok {
		t.Fatal("TTL(1) after death reports ok")
	}
	if _, ok := s.Get(2); !ok {
		t.Fatal("NoExpiry key died")
	}
	// Expire with non-positive ttl clears the deadline without removal.
	if !s.Expire(2, 0) {
		t.Fatal("Expire(2, 0) on live key = false")
	}
	if _, hasTTL, ok := s.TTL(2); !ok || hasTTL {
		t.Fatal("deadline not cleared")
	}
}

func TestSweepReapsExpired(t *testing.T) {
	c, clock := freeze(t, 1, 1<<13, ttlcache.Options{})
	s, err := c.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	for k := uint64(1); k <= 500; k++ {
		ttl := time.Duration(k%2+1) * 50 * time.Millisecond // 50 or 100ms
		if err := s.SetTTL(k, k, ttl); err != nil {
			t.Fatal(err)
		}
	}
	clock.Add(60)
	freed := c.Sweep(s.Unwrap())
	if freed != 250 {
		t.Fatalf("sweep at t+60ms freed %d, want 250", freed)
	}
	if got := c.Stats().Live; got != 250 {
		t.Fatalf("live = %d, want 250", got)
	}
	clock.Add(50)
	if freed := c.Sweep(s.Unwrap()); freed != 250 {
		t.Fatalf("second sweep freed %d, want 250", freed)
	}
	if got := c.Stats().Live; got != 0 {
		t.Fatalf("live = %d, want 0", got)
	}
}

// TestCapacityRelief drives the arena into allocation starvation and
// proves (a) expired entries are swept to make room and (b) with
// nothing left to sweep, LRU eviction takes over. Relief is best
// effort — a Set racing the reclamation drain can still fail — so the
// test tolerates a small typed-failure rate rather than asserting
// perfection the scheme does not promise.
func TestCapacityRelief(t *testing.T) {
	const capacity = 2048 // node budget ≈ live entries + reclamation slack
	c, clock := freeze(t, 1, capacity, ttlcache.Options{})
	s, err := c.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()

	// Phase 1: short-lived entries that all expire...
	for k := uint64(1); k <= 1200; k++ {
		if err := s.SetTTL(k, k, 10*time.Millisecond); err != nil {
			t.Fatalf("phase 1 SetTTL(%d): %v", k, err)
		}
	}
	clock.Add(20)
	// ...then immortal inserts that only fit if relief sweeps the dead:
	// demand crosses the node budget partway through, allocation starves
	// once, and the relief sweep reclaims the whole dead set.
	okCount := 0
	for k := uint64(10_001); k <= 11_700; k++ {
		err := s.SetTTL(k, k, ttlcache.NoExpiry)
		if err == nil {
			okCount++
		} else if !errors.Is(err, lease.ErrCapacityExhausted) {
			t.Fatalf("phase 2 SetTTL(%d): untyped failure %v", k, err)
		}
	}
	st := c.Stats()
	if st.Reliefs == 0 {
		t.Fatalf("no relief passes under pressure: %+v", st)
	}
	if st.Expired < 1000 {
		t.Fatalf("relief swept only %d expired entries: %+v", st.Expired, st)
	}
	if okCount < 1600 {
		t.Fatalf("only %d/1700 immortal inserts survived relief: %+v", okCount, st)
	}
	// Phase 3: the live set is now immortal, so the next starvation finds
	// nothing to sweep and must evict. Each starvation spin is expensive
	// (the allocator burns its full recycle budget before giving up), so
	// stop at the first proven eviction instead of grinding past the wall.
	for k := uint64(20_001); k <= 20_600 && c.Stats().Evicted == 0; k++ {
		clock.Add(10) // age the stamps so LRU ordering is meaningful
		if err := s.SetTTL(k, k, ttlcache.NoExpiry); err != nil && !errors.Is(err, lease.ErrCapacityExhausted) {
			t.Fatalf("phase 3 SetTTL(%d): untyped failure %v", k, err)
		}
	}
	st = c.Stats()
	if st.Evicted == 0 {
		t.Fatalf("no evictions under immortal pressure: %+v", st)
	}
	if st.Live > capacity {
		t.Fatalf("live %d exceeds node budget %d", st.Live, capacity)
	}
	// A fresh insert lands in the room the evictions just made, and no
	// later eviction can touch it — the newest entry survives.
	if err := s.SetTTL(30_000, 1, ttlcache.NoExpiry); err != nil {
		t.Fatalf("post-eviction insert: %v", err)
	}
	if _, ok := s.Get(30_000); !ok {
		t.Fatal("post-eviction insert did not survive")
	}
}

// TestConcurrentChurn hammers the cache from several goroutines with a
// moving clock under -race: sets, reads, expiries and removals racing
// over a small key range, then checks counter consistency.
func TestConcurrentChurn(t *testing.T) {
	const workers = 4
	c, clock := freeze(t, workers+1, 1<<14, ttlcache.Options{DefaultTTL: 5 * time.Millisecond})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // the clock goroutine: ~1ms per tick
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				clock.Add(1)
				runtime.Gosched()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := c.Acquire()
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			defer s.Release()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 20000; i++ {
				k := uint64(rng.Intn(128)) + 1
				switch rng.Intn(5) {
				case 0:
					if err := s.Set(k, uint64(i)); err != nil {
						t.Errorf("Set: %v", err)
						return
					}
				case 1:
					if err := s.SetTTL(k, uint64(i), ttlcache.NoExpiry); err != nil {
						t.Errorf("SetTTL: %v", err)
						return
					}
				case 2:
					s.Get(k)
				case 3:
					s.Expire(k, time.Duration(1+rng.Intn(10))*time.Millisecond)
				case 4:
					s.Remove(k)
				}
			}
		}(w)
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Drain everything and check the live counter returns to zero: every
	// unlink was counted exactly once, no matter which racer won it.
	s, err := c.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	for k := uint64(1); k <= 128; k++ {
		s.Remove(k)
	}
	c.Sweep(s.Unwrap())
	if got := c.Stats().Live; got != 0 {
		t.Fatalf("live = %d after full drain, want 0", got)
	}
}

// TestSetFailureIsTyped overfills a tiny arena with immortal entries.
// Relief evicts where it can; when a Set does fail — recycling lags
// the unlinks on a small local pool — the error must wrap the shared
// capacity sentinel, and the cache must stay usable afterwards.
func TestSetFailureIsTyped(t *testing.T) {
	m := kvmap.New(core.Config{
		MaxThreads: 1, Capacity: 512, LocalPool: 8, AllocSpinLimit: 1 << 12,
	}, 256)
	clock := new(atomic.Int64)
	clock.Store(1)
	c := ttlcache.Over(m, ttlcache.Options{NowMs: clock.Load})
	defer c.Close()
	s, err := c.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	for k := uint64(1); k <= 650; k++ {
		clock.Add(1_000)
		if err := s.SetTTL(k, k, ttlcache.NoExpiry); err != nil {
			if !errors.Is(err, lease.ErrCapacityExhausted) {
				t.Fatalf("Set failure is not typed: %v", err)
			}
			break
		}
	}
	// Whether or not Set ever failed, the cache must still be usable.
	if err := s.Set(1, 1); err != nil && !errors.Is(err, lease.ErrCapacityExhausted) {
		t.Fatalf("post-pressure Set: %v", err)
	}
	if st := c.Stats(); st.Reliefs == 0 {
		t.Fatalf("650 immortal inserts into a 512-node budget never relieved: %+v", st)
	}
}

// TestBackgroundSweeper lets the real sweeper goroutine (real clock)
// reap a short-TTL entry without any reads touching it.
func TestBackgroundSweeper(t *testing.T) {
	m := kvmap.New(core.Config{MaxThreads: 2, Capacity: 4096}, 2048)
	c := ttlcache.Over(m, ttlcache.Options{SweepInterval: 5 * time.Millisecond})
	defer c.Close()
	s, err := c.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetTTL(1, 1, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	s.Release() // free the slot so the sweeper's lazy Acquire can run
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if st := c.Stats(); st.Expired == 1 && st.Live == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("sweeper never reaped the entry: %+v", c.Stats())
}
