package metrics

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestObserveBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("zero histogram not zero")
	}
	h.Observe(100 * time.Nanosecond)
	h.Observe(200 * time.Nanosecond)
	h.Observe(300 * time.Nanosecond)
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Mean(); got != 200*time.Nanosecond {
		t.Fatalf("Mean = %v", got)
	}
	if got := h.Max(); got != 300*time.Nanosecond {
		t.Fatalf("Max = %v", got)
	}
	if h.String() == "" {
		t.Fatal("String empty")
	}
}

func TestNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	if h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative sample mishandled: max=%v n=%d", h.Max(), h.Count())
	}
}

func TestQuantileBounds(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i+1) * time.Microsecond)
	}
	p50 := h.Quantile(0.5)
	p99 := h.Quantile(0.99)
	if p50 > p99 {
		t.Fatalf("p50 %v > p99 %v", p50, p99)
	}
	// Bucket upper bounds: p50 of 1..100µs must be within [50µs, 128µs).
	if p50 < 50*time.Microsecond || p50 >= 128*time.Microsecond {
		t.Fatalf("p50 = %v", p50)
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Microsecond)
	b.Observe(time.Millisecond)
	a.Merge(&b)
	if a.Count() != 2 {
		t.Fatalf("Count = %d", a.Count())
	}
	if a.Max() != time.Millisecond {
		t.Fatalf("Max = %v", a.Max())
	}
}

func TestConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 80000 {
		t.Fatalf("Count = %d", h.Count())
	}
}

// Property: quantile upper bound always ≥ the true quantile sample.
func TestQuickQuantileUpperBound(t *testing.T) {
	f := func(samples []uint32) bool {
		if len(samples) == 0 {
			return true
		}
		var h Histogram
		maxS := time.Duration(0)
		for _, s := range samples {
			d := time.Duration(s)
			h.Observe(d)
			if d > maxS {
				maxS = d
			}
		}
		return h.Quantile(1.0) >= maxS/2 && h.Max() == maxS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Satellite regression: a negative duration must saturate to zero before
// the unsigned conversion, landing in bucket 0 with nothing added to the
// sum (the old code produced a huge uint64 and polluted the top bucket).
func TestNegativeGoesToBucketZero(t *testing.T) {
	var h Histogram
	h.Observe(-5 * time.Second)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 0 || s.Max != 0 {
		t.Fatalf("snapshot = %+v, want count=1 sum=0 max=0", s)
	}
	if s.Counts[0] != 1 {
		t.Fatalf("bucket 0 = %d, want 1", s.Counts[0])
	}
	for i := 1; i < Buckets; i++ {
		if s.Counts[i] != 0 {
			t.Fatalf("bucket %d = %d, want 0", i, s.Counts[i])
		}
	}
}

func TestSnapshotConsistent(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Count != h.Count() {
		t.Fatalf("Count = %d", s.Count)
	}
	var bucketSum uint64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
	if got, want := s.QuantileNs(0.99), uint64(h.Quantile(0.99)); got != want {
		t.Fatalf("QuantileNs(0.99) = %d, histogram says %d", got, want)
	}
}

// Under sustained concurrent writes the retry loop may give up, but the
// triple it returns can only be torn by the writes in flight during the
// read pass: bucket sum and count may differ by at most the number of
// writers times the samples each can complete during one pass — bounded
// loosely here by the total written after the fact.
func TestSnapshotUnderConcurrency(t *testing.T) {
	const writers = 4
	const each = 20000
	var h Histogram
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	go func() { wg.Wait(); close(stop) }()
	for {
		s := h.Snapshot()
		var bucketSum uint64
		for _, c := range s.Counts {
			bucketSum += c
		}
		diff := int64(bucketSum) - int64(s.Count)
		if diff < 0 {
			diff = -diff
		}
		// A stable pass (the common case) has diff == 0; a torn final pass
		// can be off by the writes completed mid-read, far below `each`.
		if diff > writers*1000 {
			t.Fatalf("snapshot torn beyond plausibility: bucketSum=%d count=%d", bucketSum, s.Count)
		}
		select {
		case <-stop:
			s := h.Snapshot()
			if s.Count != writers*each {
				t.Fatalf("final count = %d, want %d", s.Count, writers*each)
			}
			return
		default:
		}
	}
}

func TestObserveNsMatchesObserve(t *testing.T) {
	var a, b Histogram
	for _, ns := range []uint64{0, 1, 999, 1 << 20, 1<<40 + 7} {
		a.Observe(time.Duration(ns))
		b.ObserveNs(ns)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa != sb {
		t.Fatalf("ObserveNs diverges from Observe:\n%+v\n%+v", sa, sb)
	}
	if sb.Count != 5 || sb.Max != 1<<40+7 {
		t.Fatalf("snapshot count=%d max=%d", sb.Count, sb.Max)
	}
}
