package metrics

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestObserveBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("zero histogram not zero")
	}
	h.Observe(100 * time.Nanosecond)
	h.Observe(200 * time.Nanosecond)
	h.Observe(300 * time.Nanosecond)
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Mean(); got != 200*time.Nanosecond {
		t.Fatalf("Mean = %v", got)
	}
	if got := h.Max(); got != 300*time.Nanosecond {
		t.Fatalf("Max = %v", got)
	}
	if h.String() == "" {
		t.Fatal("String empty")
	}
}

func TestNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	if h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative sample mishandled: max=%v n=%d", h.Max(), h.Count())
	}
}

func TestQuantileBounds(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i+1) * time.Microsecond)
	}
	p50 := h.Quantile(0.5)
	p99 := h.Quantile(0.99)
	if p50 > p99 {
		t.Fatalf("p50 %v > p99 %v", p50, p99)
	}
	// Bucket upper bounds: p50 of 1..100µs must be within [50µs, 128µs).
	if p50 < 50*time.Microsecond || p50 >= 128*time.Microsecond {
		t.Fatalf("p50 = %v", p50)
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Microsecond)
	b.Observe(time.Millisecond)
	a.Merge(&b)
	if a.Count() != 2 {
		t.Fatalf("Count = %d", a.Count())
	}
	if a.Max() != time.Millisecond {
		t.Fatalf("Max = %v", a.Max())
	}
}

func TestConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 80000 {
		t.Fatalf("Count = %d", h.Count())
	}
}

// Property: quantile upper bound always ≥ the true quantile sample.
func TestQuickQuantileUpperBound(t *testing.T) {
	f := func(samples []uint32) bool {
		if len(samples) == 0 {
			return true
		}
		var h Histogram
		maxS := time.Duration(0)
		for _, s := range samples {
			d := time.Duration(s)
			h.Observe(d)
			if d > maxS {
				maxS = d
			}
		}
		return h.Quantile(1.0) >= maxS/2 && h.Max() == maxS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
