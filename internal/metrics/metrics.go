// Package metrics provides a tiny lock-free log₂ histogram used to record
// reclamation-phase pause times. The paper's evaluation reports only
// throughput; pause behaviour is the operational question a library user
// asks next ("how long does Algorithm 6 stall my thread?"), so the core
// manager records every Recycling call's duration here.
package metrics

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// Buckets is the number of log₂ buckets: bucket i counts samples in
// [2^i, 2^(i+1)) nanoseconds; the last bucket absorbs the tail.
const Buckets = 40

// Histogram is a fixed-shape concurrent histogram. The zero value is
// ready to use.
type Histogram struct {
	counts [Buckets]atomic.Uint64
	sum    atomic.Uint64
	n      atomic.Uint64
	max    atomic.Uint64
}

// Observe records one duration. Negative durations (a clock step mid-
// measurement) saturate to zero before any conversion, so the unsigned
// nanosecond value is never derived from a negative input.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.ObserveNs(uint64(d.Nanoseconds()))
}

// ObserveNs records one duration given directly in nanoseconds — the
// form the server's span instrumentation holds (monotonic-clock deltas),
// saving a Duration round trip on the request path.
func (h *Histogram) ObserveNs(ns uint64) {
	b := bits.Len64(ns)
	if b >= Buckets {
		b = Buckets - 1
	}
	h.counts[b].Add(1)
	h.sum.Add(ns)
	h.n.Add(1)
	for {
		m := h.max.Load()
		if ns <= m || h.max.CompareAndSwap(m, ns) {
			break
		}
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Snapshot is a point-in-time view of a Histogram: a count/sum/max triple
// plus the per-bucket counts, all taken from the same read pass.
type Snapshot struct {
	Count  uint64 // number of samples
	Sum    uint64 // total nanoseconds
	Max    uint64 // largest sample, nanoseconds
	Counts [Buckets]uint64
}

// QuantileNs returns an upper bound (in nanoseconds) for the q-quantile of
// the snapshot, using each bucket's upper edge.
func (s *Snapshot) QuantileNs(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	target := uint64(q * float64(s.Count))
	if target == 0 {
		target = 1
	}
	var acc uint64
	for i := 0; i < Buckets; i++ {
		acc += s.Counts[i]
		if acc >= target {
			return uint64(1)<<uint(i) - 1
		}
	}
	return s.Max
}

// Snapshot reads the histogram's state in one pass, so callers get a
// mutually consistent count/sum/max triple instead of three racing loads.
// It retries while samples complete mid-read (the count acts as a
// sequence number) and gives up after a few attempts under sustained
// concurrent writes, returning the last — then only approximately
// consistent — pass.
func (h *Histogram) Snapshot() Snapshot {
	for tries := 0; ; tries++ {
		n := h.n.Load()
		var s Snapshot
		s.Sum = h.sum.Load()
		s.Max = h.max.Load()
		for i := range s.Counts {
			s.Counts[i] = h.counts[i].Load()
		}
		s.Count = n
		if h.n.Load() == n || tries >= 3 {
			return s
		}
	}
}

// Mean returns the mean sample duration.
func (h *Histogram) Mean() time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest sample observed.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1), using
// each bucket's upper edge.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	target := uint64(q * float64(n))
	if target == 0 {
		target = 1
	}
	var acc uint64
	for i := 0; i < Buckets; i++ {
		acc += h.counts[i].Load()
		if acc >= target {
			return time.Duration(uint64(1)<<uint(i) - 1)
		}
	}
	return h.Max()
}

// String renders the non-empty buckets for reports.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%v p99<=%v max=%v", h.Count(), h.Mean(), h.Quantile(0.99), h.Max())
	for i := 0; i < Buckets; i++ {
		if c := h.counts[i].Load(); c != 0 {
			fmt.Fprintf(&b, " [<%v]=%d", time.Duration(uint64(1)<<uint(i)), c)
		}
	}
	return b.String()
}

// Merge adds o's samples into h (max is kept as the pairwise max).
func (h *Histogram) Merge(o *Histogram) {
	for i := 0; i < Buckets; i++ {
		if c := o.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.sum.Add(o.sum.Load())
	h.n.Add(o.n.Load())
	for {
		m, om := h.max.Load(), o.max.Load()
		if om <= m || h.max.CompareAndSwap(m, om) {
			break
		}
	}
}
