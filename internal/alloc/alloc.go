// Package alloc provides the pooled object allocator shared by the baseline
// reclamation schemes (NoRecl, HP, EBR, Anchors). The paper converts all
// implementations to the same object-pool allocation (§5, "Methodology") so
// that measurements compare reclamation schemes rather than allocators; this
// package is that common pool.
//
// Slots are drawn from a global lock-free stack of blocks (the "lock-free
// stack, where each item in the stack is an array of 126 objects"), with a
// per-thread block so a thread allocates ~LocalPool times with no
// synchronization. When the pool runs dry the allocator reserves fresh
// arena capacity, which keeps NoRecl (which never frees) and schemes whose
// reclamation lags (EBR with a stalled thread) functional without unbounded
// spinning.
package alloc

import (
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/pools"
	"repro/internal/trace"
)

// Pool is the shared allocator. T is the node type.
type Pool[T any] struct {
	nodes     *arena.Arena[T]
	ba        *pools.BlockArena
	free      pools.CountedStack
	reset     func(*T)
	localPool int32
	reserved  atomic.Uint64 // slots obtained via arena growth (stats)
	freed     atomic.Uint64 // slots returned through Free/FreeBatch
}

// New builds a pool pre-charged with capacity slots, transferring blocks of
// localPool (<= 126) slots at a time.
func New[T any](capacity, localPool int, reset func(*T)) *Pool[T] {
	if localPool <= 0 || localPool > pools.BlockCap {
		localPool = pools.BlockCap
	}
	if capacity < localPool {
		capacity = localPool
	}
	p := &Pool[T]{
		nodes:     arena.New[T](capacity),
		ba:        pools.NewBlockArena(capacity),
		reset:     reset,
		localPool: int32(localPool),
	}
	p.free.Init()
	base := p.nodes.Reserve(capacity)
	blk := p.ba.Get()
	for i := 0; i < capacity; i++ {
		p.ba.B(blk).Push(base + uint32(i))
		if p.ba.B(blk).Full(p.localPool) {
			p.free.Push(p.ba, blk)
			blk = p.ba.Get()
		}
	}
	if !p.ba.B(blk).Empty() {
		p.free.Push(p.ba, blk)
	} else {
		p.ba.Put(blk)
	}
	return p
}

// Arena exposes node storage for handle dereferencing.
func (p *Pool[T]) Arena() *arena.Arena[T] { return p.nodes }

// LocalPool returns the block-transfer granularity.
func (p *Pool[T]) LocalPool() int { return int(p.localPool) }

// Reserved returns how many slots were created by growth because the free
// pool ran dry — for NoRecl this counts all allocation beyond the initial
// capacity; for HP/EBR it measures reclamation lag.
func (p *Pool[T]) Reserved() uint64 { return p.reserved.Load() }

// Freed returns how many slots were returned to the pool.
func (p *Pool[T]) Freed() uint64 { return p.freed.Load() }

// Local is the per-thread allocation state.
type Local struct {
	allocBlk uint32
	freeBlk  uint32
	inited   bool

	// Trace, when set by the owning scheme, receives an EvRefill event
	// each time the thread's allocation block is replenished from the
	// shared pool (or by arena growth). The pool stays trace-agnostic
	// beyond this hook; recording is gated on trace.Enabled().
	Trace *trace.Ring
}

func (l *Local) init() {
	if !l.inited {
		l.allocBlk = pools.NoBlock
		l.freeBlk = pools.NoBlock
		l.inited = true
	}
}

// Alloc returns a zeroed slot.
func (p *Pool[T]) Alloc(l *Local) uint32 {
	l.init()
	for {
		if l.allocBlk != pools.NoBlock {
			b := p.ba.B(l.allocBlk)
			if !b.Empty() {
				slot := b.Pop()
				p.reset(p.nodes.At(slot))
				return slot
			}
			p.ba.Put(l.allocBlk)
			l.allocBlk = pools.NoBlock
		}
		if blk, st := p.free.Pop(p.ba); st == pools.StatusOK {
			l.allocBlk = blk
			if l.Trace != nil && trace.Enabled() {
				l.Trace.Record(trace.EvRefill, 0)
			}
			continue
		}
		// Pool dry: grow the arena by one local pool's worth.
		base := p.nodes.Reserve(int(p.localPool))
		p.reserved.Add(uint64(p.localPool))
		blk := p.ba.Get()
		for i := int32(0); i < p.localPool; i++ {
			p.ba.B(blk).Push(base + uint32(i))
		}
		l.allocBlk = blk
		if l.Trace != nil && trace.Enabled() {
			l.Trace.Record(trace.EvRefill, 0)
		}
	}
}

// Free returns a single slot to the pool, buffering through the thread's
// free block. The slot's generation is bumped: it may be reallocated.
func (p *Pool[T]) Free(l *Local, slot uint32) {
	l.init()
	p.nodes.BumpGen(slot)
	p.freed.Add(1)
	if l.freeBlk == pools.NoBlock {
		l.freeBlk = p.ba.Get()
	}
	b := p.ba.B(l.freeBlk)
	b.Push(slot)
	if b.Full(p.localPool) {
		p.free.Push(p.ba, l.freeBlk)
		l.freeBlk = pools.NoBlock
	}
}

// Flush pushes any partially filled local free block to the global pool.
func (p *Pool[T]) Flush(l *Local) {
	l.init()
	if l.freeBlk != pools.NoBlock && !p.ba.B(l.freeBlk).Empty() {
		p.free.Push(p.ba, l.freeBlk)
		l.freeBlk = pools.NoBlock
	}
}
