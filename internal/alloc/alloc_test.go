package alloc

import (
	"sync"
	"testing"
)

type tnode struct{ a, b uint64 }

func reset(n *tnode) { n.a, n.b = 0, 0 }

func TestAllocZeroes(t *testing.T) {
	p := New(16, 4, reset)
	var l Local
	s := p.Alloc(&l)
	p.Arena().At(s).a = 99
	p.Free(&l, s)
	p.Flush(&l)
	for i := 0; i < 64; i++ {
		x := p.Alloc(&l)
		if p.Arena().At(x).a != 0 {
			t.Fatal("allocation returned a dirty node")
		}
		p.Free(&l, x)
	}
}

func TestFreeBumpsGeneration(t *testing.T) {
	p := New(16, 4, reset)
	var l Local
	s := p.Alloc(&l)
	g := p.Arena().Gen(s)
	p.Free(&l, s)
	if p.Arena().Gen(s) != g+1 {
		t.Fatalf("Free did not bump generation: %d -> %d", g, p.Arena().Gen(s))
	}
	if p.Freed() != 1 {
		t.Fatalf("Freed = %d", p.Freed())
	}
}

func TestGrowthWhenDry(t *testing.T) {
	p := New(8, 4, reset)
	var l Local
	seen := map[uint32]bool{}
	for i := 0; i < 100; i++ { // never free: must grow
		s := p.Alloc(&l)
		if seen[s] {
			t.Fatalf("slot %d handed out twice", s)
		}
		seen[s] = true
	}
	if p.Reserved() == 0 {
		t.Fatal("expected growth past initial capacity")
	}
}

func TestRecycleRoundTrip(t *testing.T) {
	p := New(64, 8, reset)
	var l Local
	first := make([]uint32, 0, 64)
	for i := 0; i < 64; i++ {
		first = append(first, p.Alloc(&l))
	}
	for _, s := range first {
		p.Free(&l, s)
	}
	p.Flush(&l)
	reused := 0
	inFirst := map[uint32]bool{}
	for _, s := range first {
		inFirst[s] = true
	}
	for i := 0; i < 64; i++ {
		if inFirst[p.Alloc(&l)] {
			reused++
		}
	}
	if reused == 0 {
		t.Fatal("no slots recycled")
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	p := New(512, 16, reset)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var l Local
			held := make([]uint32, 0, 32)
			for i := 0; i < 20000; i++ {
				if len(held) < 16 {
					s := p.Alloc(&l)
					n := p.Arena().At(s)
					if n.a != 0 {
						t.Errorf("dirty node %d", s)
						return
					}
					n.a = uint64(w) + 1
					held = append(held, s)
				} else {
					s := held[0]
					held = held[1:]
					if got := p.Arena().At(s).a; got != uint64(w)+1 {
						t.Errorf("slot %d stomped: a=%d, want %d", s, got, w+1)
						return
					}
					p.Arena().At(s).a = 0
					p.Free(&l, s)
				}
			}
			p.Flush(&l)
		}(w)
	}
	wg.Wait()
}
