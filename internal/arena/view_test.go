package arena

import (
	"sync"
	"testing"
)

// A view taken before growth must (a) serve slots it covers without
// refreshing, (b) transparently refresh for slots published later, and
// (c) return pointers identical to Arena.At.
func TestViewSeesGrowth(t *testing.T) {
	a := New[testNode](ChunkSize)
	v := a.View()
	base := a.Reserve(8)
	for i := uint32(0); i < 8; i++ {
		a.At(base + i).key = uint64(100 + i)
	}
	for i := uint32(0); i < 8; i++ {
		if v.At(base+i) != a.At(base+i) {
			t.Fatalf("slot %d: view and arena disagree on address", base+i)
		}
		if got := v.At(base + i).key; got != uint64(100+i) {
			t.Fatalf("slot %d: key = %d", base+i, got)
		}
	}
	if v.Cap() != ChunkSize {
		t.Fatalf("Cap = %d, want %d", v.Cap(), ChunkSize)
	}

	// Force growth past the snapshot; the stale view must refresh.
	grown := a.Reserve(3 * ChunkSize)
	far := grown + 2*ChunkSize + 17
	a.At(far).key = 777
	if got := v.At(far).key; got != 777 {
		t.Fatalf("stale view read %d after growth, want 777", got)
	}
	if v.Cap() < far {
		t.Fatalf("view did not refresh: Cap = %d <= slot %d", v.Cap(), far)
	}
	if v.Arena() != a {
		t.Fatal("view lost its arena")
	}
}

func TestViewGens(t *testing.T) {
	a := New[testNode](ChunkSize)
	v := a.View()
	base := a.Reserve(4)
	if g := v.Gen(base); g != 0 {
		t.Fatalf("fresh gen = %d", g)
	}
	v.BumpGen(base)
	a.BumpGen(base)
	if got := v.Gen(base); got != 2 {
		t.Fatalf("gen = %d after view+arena bump, want 2 (shared counter)", got)
	}
	// Gen access beyond the snapshot refreshes too.
	grown := a.Reserve(2 * ChunkSize)
	v2 := v // stale copy
	v2.BumpGen(grown + ChunkSize + 5)
	if got := a.Gen(grown + ChunkSize + 5); got != 1 {
		t.Fatalf("gen = %d after stale-view bump, want 1", got)
	}
}

// Stale views on many goroutines must converge on slots published by a
// concurrently growing arena (exercised under -race).
func TestViewConcurrentGrowth(t *testing.T) {
	a := New[testNode](ChunkSize)
	const workers = 4
	const rounds = 64
	slots := make(chan uint32, workers*rounds)
	var wg sync.WaitGroup
	wg.Add(workers + 1)
	go func() {
		defer wg.Done()
		for i := 0; i < workers*rounds; i++ {
			s := a.Reserve(ChunkSize / 2)
			a.At(s).key = uint64(s) + 1
			slots <- s
		}
		close(slots)
	}()
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			v := a.View()
			for s := range slots {
				if got := v.At(s).key; got != uint64(s)+1 {
					t.Errorf("slot %d: key = %d, want %d", s, got, uint64(s)+1)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// The benchmark contexts replicate the exact before/after shape of the
// scheme threads' Node method: the old path chases thread → manager →
// arena and pays the atomic table load on every dereference; the new path
// reads the directory snapshot embedded in the thread itself.
type benchMgr struct{ nodes *Arena[testNode] }

type benchThreadAtomic struct{ mgr *benchMgr }

func (t *benchThreadAtomic) Node(slot uint32) *testNode { return t.mgr.nodes.At(slot) }

type benchThreadView struct{ view View[testNode] }

func (t *benchThreadView) Node(slot uint32) *testNode { return t.view.At(slot) }

// BenchmarkArenaAt compares the two Thread.Node implementations on the
// hottest operation in the repository — one hop of a traversal. "Walk"
// chases next links through a shuffled cycle (dependent loads, list-like);
// "Sum" touches independent slots (throughput-bound, hash-bucket-like).
func BenchmarkArenaAt(b *testing.B) {
	const n = 1 << 12 // cache-resident: isolates dereference cost from DRAM
	const mask = n - 1
	a := New[testNode](n)
	base := a.Reserve(n)
	// next links form one shuffled cycle through all n slots.
	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	rng := splitmix(12345)
	for i := n - 1; i > 0; i-- {
		j := rng.next() % uint64(i+1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := range perm {
		a.At(base + perm[i]).next = uint64(base + perm[(i+1)%n])
	}

	atomicTh := &benchThreadAtomic{mgr: &benchMgr{nodes: a}}
	viewTh := &benchThreadView{view: a.View()}

	b.Run("Walk/Atomic", func(b *testing.B) {
		slot := base
		for i := 0; i < b.N; i++ {
			slot = uint32(atomicTh.Node(slot).next)
		}
		sinkHole = uint64(slot)
	})
	b.Run("Walk/View", func(b *testing.B) {
		slot := base
		for i := 0; i < b.N; i++ {
			slot = uint32(viewTh.Node(slot).next)
		}
		sinkHole = uint64(slot)
	})
	b.Run("Sum/Atomic", func(b *testing.B) {
		var sink uint64
		for i := 0; i < b.N; i++ {
			sink += atomicTh.Node(base + uint32(i)&mask).key
		}
		sinkHole = sink
	})
	b.Run("Sum/View", func(b *testing.B) {
		var sink uint64
		for i := 0; i < b.N; i++ {
			sink += viewTh.Node(base + uint32(i)&mask).key
		}
		sinkHole = sink
	})
}

type splitmix uint64

func (s *splitmix) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

var sinkHole uint64
