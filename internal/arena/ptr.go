// Package arena provides the handle-based node storage that underpins every
// reclamation scheme in this repository.
//
// The paper (Cohen & Petrank, SPAA'15) assumes a user-level pooled allocator
// in which reading a previously allocated address never faults, even after
// the object was recycled (Assumption 3.1). Go's garbage collector makes a
// literal port impossible: native pointers can never dangle. We therefore
// substitute integer handles into flat, chunked slabs of node structs. A
// recycled handle still indexes valid memory — it merely observes the slot's
// *next* occupant, which is precisely the stale-read hazard the optimistic
// access scheme detects and rolls back.
//
// The arena never shrinks and chunks are never moved, so a handle obtained
// at any time in the past remains safe to dereference forever, establishing
// Assumption 3.1 by construction.
package arena

import "fmt"

// Ptr is a packed, markable handle to an arena slot, stored in the pointer
// fields of lock-free nodes (inside atomic.Uint64 words).
//
// Layout (low to high bits):
//
//	bit 0      delete mark (the "marked pointer" of Harris' linked list)
//	bits 1..32 slot index + 1 (zero means nil)
//
// The zero Ptr is the nil pointer. Marks survive Slot extraction via
// Unmark, mirroring the unmark(O) operation the paper requires of the data
// structure (§3.3).
type Ptr uint64

// NilPtr is the null handle. Its mark bit is clear and IsNil reports true.
const NilPtr Ptr = 0

// NoSlot is a sentinel slot index that is never returned by an arena.
const NoSlot uint32 = ^uint32(0)

// MakePtr builds an unmarked handle referring to slot.
func MakePtr(slot uint32) Ptr {
	return Ptr(uint64(slot)+1) << 1
}

// IsNil reports whether p refers to no slot (ignoring the mark bit).
func (p Ptr) IsNil() bool { return p>>1 == 0 }

// Slot returns the slot index p refers to. It must not be called on a nil
// handle; debug builds of callers guard with IsNil.
func (p Ptr) Slot() uint32 { return uint32(p>>1) - 1 }

// SlotOr returns the slot index, or def when p is nil.
func (p Ptr) SlotOr(def uint32) uint32 {
	if p.IsNil() {
		return def
	}
	return p.Slot()
}

// Marked reports whether the delete mark (bit 0) is set.
func (p Ptr) Marked() bool { return p&1 != 0 }

// Mark returns p with the delete mark set.
func (p Ptr) Mark() Ptr { return p | 1 }

// Unmark returns p with the delete mark cleared. This is the paper's
// unmark(O) operation.
func (p Ptr) Unmark() Ptr { return p &^ 1 }

// String renders the handle for debugging: "nil", "#12", or "#12*" when
// marked.
func (p Ptr) String() string {
	if p.IsNil() {
		if p.Marked() {
			return "nil*"
		}
		return "nil"
	}
	if p.Marked() {
		return fmt.Sprintf("#%d*", p.Slot())
	}
	return fmt.Sprintf("#%d", p.Slot())
}
