package arena

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestPtrNil(t *testing.T) {
	if !NilPtr.IsNil() {
		t.Fatal("NilPtr must be nil")
	}
	if NilPtr.Marked() {
		t.Fatal("NilPtr must be unmarked")
	}
	if NilPtr.Mark().IsNil() != true {
		t.Fatal("marked nil is still nil")
	}
	if got := NilPtr.String(); got != "nil" {
		t.Fatalf("String() = %q", got)
	}
	if got := NilPtr.Mark().String(); got != "nil*" {
		t.Fatalf("String() = %q", got)
	}
}

func TestPtrRoundTrip(t *testing.T) {
	for _, slot := range []uint32{0, 1, 2, 100, 1 << 20, 1<<31 - 1} {
		p := MakePtr(slot)
		if p.IsNil() {
			t.Fatalf("MakePtr(%d) is nil", slot)
		}
		if p.Marked() {
			t.Fatalf("MakePtr(%d) is marked", slot)
		}
		if got := p.Slot(); got != slot {
			t.Fatalf("Slot() = %d, want %d", got, slot)
		}
		m := p.Mark()
		if !m.Marked() {
			t.Fatalf("Mark() lost the mark for slot %d", slot)
		}
		if got := m.Unmark(); got != p {
			t.Fatalf("Unmark(Mark(p)) = %v, want %v", got, p)
		}
		if got := m.Slot(); got != slot {
			t.Fatalf("marked Slot() = %d, want %d", got, slot)
		}
	}
}

func TestPtrSlotOr(t *testing.T) {
	if got := NilPtr.SlotOr(42); got != 42 {
		t.Fatalf("nil SlotOr = %d", got)
	}
	if got := MakePtr(7).SlotOr(42); got != 7 {
		t.Fatalf("SlotOr = %d", got)
	}
}

// Property: packing and marking commute and never confuse distinct slots.
func TestPtrQuick(t *testing.T) {
	f := func(slot uint32, mark bool) bool {
		slot &= 1<<31 - 1
		p := MakePtr(slot)
		if mark {
			p = p.Mark()
		}
		return p.Slot() == slot && p.Marked() == mark && !p.IsNil() &&
			p.Unmark() == MakePtr(slot) && p.Mark().Marked()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPtrDistinct(t *testing.T) {
	f := func(a, b uint32) bool {
		a &= 1<<31 - 1
		b &= 1<<31 - 1
		if a == b {
			return MakePtr(a) == MakePtr(b)
		}
		return MakePtr(a) != MakePtr(b) && MakePtr(a).Mark() != MakePtr(b).Mark()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

type testNode struct {
	key  uint64
	next uint64
}

func TestArenaReserveAndAccess(t *testing.T) {
	a := New[testNode](10)
	if a.Cap() < 10 {
		t.Fatalf("Cap() = %d, want >= 10", a.Cap())
	}
	base := a.Reserve(100)
	for i := uint32(0); i < 100; i++ {
		a.At(base + i).key = uint64(i)
	}
	for i := uint32(0); i < 100; i++ {
		if got := a.At(base + i).key; got != uint64(i) {
			t.Fatalf("slot %d key = %d, want %d", base+i, got, i)
		}
	}
}

func TestArenaGrowthPreservesSlots(t *testing.T) {
	a := New[testNode](1)
	base := a.Reserve(ChunkSize / 2)
	a.At(base).key = 12345
	p := a.At(base)
	// Force several chunk growths.
	a.Reserve(5 * ChunkSize)
	if a.At(base).key != 12345 {
		t.Fatal("growth lost slot contents")
	}
	if a.At(base) != p {
		t.Fatal("growth moved a slot; handles must be stable forever")
	}
}

func TestArenaReserveSequential(t *testing.T) {
	a := New[testNode](0)
	b1 := a.Reserve(10)
	b2 := a.Reserve(10)
	if b2 != b1+10 {
		t.Fatalf("Reserve not consecutive: %d then %d", b1, b2)
	}
	if a.Limit() != b2+10 {
		t.Fatalf("Limit() = %d, want %d", a.Limit(), b2+10)
	}
}

func TestArenaGenerations(t *testing.T) {
	a := New[testNode](8)
	s := a.Reserve(1)
	if g := a.Gen(s); g != 0 {
		t.Fatalf("fresh gen = %d", g)
	}
	a.BumpGen(s)
	a.BumpGen(s)
	if g := a.Gen(s); g != 2 {
		t.Fatalf("gen = %d, want 2", g)
	}
}

func TestArenaConcurrentReserve(t *testing.T) {
	a := New[testNode](0)
	const workers = 8
	const per = 1000
	var wg sync.WaitGroup
	bases := make([]uint32, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s := a.Reserve(1)
				a.At(s).key = uint64(w)<<32 | uint64(i)
			}
			bases[w] = a.Reserve(1)
		}(w)
	}
	wg.Wait()
	seen := map[uint32]bool{}
	for _, b := range bases {
		if seen[b] {
			t.Fatalf("slot %d handed out twice", b)
		}
		seen[b] = true
	}
	if a.Limit() != workers*(per+1) {
		t.Fatalf("Limit() = %d, want %d", a.Limit(), workers*(per+1))
	}
}

// Concurrent readers racing with growth must always see stable chunks.
func TestArenaReadDuringGrowth(t *testing.T) {
	a := New[testNode](1)
	s := a.Reserve(1)
	a.At(s).key = 7
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			a.Reserve(ChunkSize / 4)
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
			if a.At(s).key != 7 {
				t.Error("reader observed corrupted slot during growth")
				return
			}
		}
	}
}

func TestReservePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Reserve(0) must panic")
		}
	}()
	New[testNode](1).Reserve(0)
}
