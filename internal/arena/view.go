package arena

// View is a per-thread snapshot of the arena's chunk directory (and of the
// parallel generation-counter directory). It exists to take the atomic
// table load off the node-dereference hot path: Arena.At pays one atomic
// load plus a double indirection per call, which is exactly the kind of
// per-read overhead the optimistic access scheme is designed to avoid.
//
// A stale snapshot is always safe to dereference. The chunk table is
// copy-on-write and grow-only, and published chunks are never moved or
// freed (Assumption 3.1 of the paper), so a snapshot simply covers a
// prefix of the slot space. When a slot index falls beyond the snapshot's
// capacity the view re-loads the directory — one atomic load amortized
// over growth events, which cease once the arena reaches its steady-state
// size. A slot handle can only be obtained after the growth that backs it
// was published (Reserve publishes the table before the slot index), and
// handles travel between threads through sequentially consistent node
// words, so a refresh triggered by an out-of-range slot always observes a
// table that covers it.
//
// A View must be used by a single goroutine at a time, like the scheme
// thread contexts that embed it.
type View[T any] struct {
	src   *Arena[T]
	table []*[ChunkSize]T
	gens  []*genChunk
}

// View returns a snapshot of the arena's current directories.
func (a *Arena[T]) View() View[T] {
	return View[T]{src: a, table: *a.table.Load(), gens: *a.gens.Load()}
}

// refresh re-snapshots both directories from the arena.
func (v *View[T]) refresh() {
	v.table = *v.src.table.Load()
	v.gens = *v.src.gens.Load()
}

// At returns the node stored in slot, like Arena.At, but with zero atomic
// loads on the fast path.
func (v *View[T]) At(slot uint32) *T {
	c := slot >> ChunkShift
	if c >= uint32(len(v.table)) {
		v.refresh()
	}
	return &v.table[c][slot&chunkMask]
}

// Gen returns the generation counter of slot, like Arena.Gen.
func (v *View[T]) Gen(slot uint32) uint32 {
	c := slot >> ChunkShift
	if c >= uint32(len(v.gens)) {
		v.refresh()
	}
	return v.gens[c][slot&chunkMask].Load()
}

// BumpGen increments the generation counter of slot, like Arena.BumpGen.
func (v *View[T]) BumpGen(slot uint32) {
	c := slot >> ChunkShift
	if c >= uint32(len(v.gens)) {
		v.refresh()
	}
	v.gens[c][slot&chunkMask].Add(1)
}

// Cap returns the number of slots covered by the snapshot without a
// refresh.
func (v *View[T]) Cap() uint32 { return uint32(len(v.table)) << ChunkShift }

// Arena returns the arena the view snapshots.
func (v *View[T]) Arena() *Arena[T] { return v.src }
