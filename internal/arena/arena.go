package arena

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ChunkShift fixes the chunk size to 1<<ChunkShift slots. Chunks are never
// moved or freed once published, which is what makes stale handles safe to
// dereference (Assumption 3.1 of the paper).
const ChunkShift = 14

// ChunkSize is the number of slots per chunk.
const ChunkSize = 1 << ChunkShift

const chunkMask = ChunkSize - 1

// Arena is a grow-only slab allocator of node structs of type T addressed
// by 32-bit slot indices. It hands out fresh capacity via Reserve; actual
// alloc/free recycling of slots is the job of the reclamation schemes built
// on top (which run slots through the paper's pool pipeline).
//
// Concurrency: At and Gen may be called from any goroutine at any time,
// including with slot indices that were recycled long ago. Reserve may be
// called concurrently with readers; growth publishes a copy-on-write chunk
// table, so readers never observe a partially built table.
type Arena[T any] struct {
	mu    sync.Mutex                      // serializes growth
	table atomic.Pointer[[]*[ChunkSize]T] // copy-on-write chunk directory
	gens  atomic.Pointer[[]*genChunk]     // parallel generation counters
	limit atomic.Uint32                   // slots handed out so far
	capa  atomic.Uint32                   // slots backed by chunks
}

type genChunk [ChunkSize]atomic.Uint32

// New creates an arena with capacity for at least initialCap slots.
func New[T any](initialCap int) *Arena[T] {
	a := &Arena[T]{}
	empty := make([]*[ChunkSize]T, 0)
	emptyGens := make([]*genChunk, 0)
	a.table.Store(&empty)
	a.gens.Store(&emptyGens)
	if initialCap > 0 {
		a.grow(uint32(initialCap))
	}
	return a
}

// At returns the node stored in slot. The returned pointer stays valid
// forever; it may alias a slot that has since been recycled (that is the
// point of the optimistic access design).
func (a *Arena[T]) At(slot uint32) *T {
	t := *a.table.Load()
	return &t[slot>>ChunkShift][slot&chunkMask]
}

// Gen returns the generation counter of slot. Schemes bump it on recycle;
// tests use it to detect use-after-free in schemes that forbid it (HP, EBR)
// and to validate that OA never commits work based on a stale slot.
func (a *Arena[T]) Gen(slot uint32) uint32 {
	g := *a.gens.Load()
	return g[slot>>ChunkShift][slot&chunkMask].Load()
}

// BumpGen increments the generation counter of slot, marking one recycle.
func (a *Arena[T]) BumpGen(slot uint32) {
	g := *a.gens.Load()
	g[slot>>ChunkShift][slot&chunkMask].Add(1)
}

// Cap returns the number of slots currently backed by chunks.
func (a *Arena[T]) Cap() uint32 { return a.capa.Load() }

// Limit returns the number of slots handed out by Reserve so far.
func (a *Arena[T]) Limit() uint32 { return a.limit.Load() }

// Reserve hands out n brand-new consecutive slots and returns the first
// index. It grows the arena as needed. Reserve is safe for concurrent use.
func (a *Arena[T]) Reserve(n int) uint32 {
	if n <= 0 {
		panic(fmt.Sprintf("arena: Reserve(%d)", n))
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	base := a.limit.Load()
	need := base + uint32(n)
	if need < base {
		panic("arena: slot space exhausted")
	}
	if need > a.capa.Load() {
		a.grow(need)
	}
	a.limit.Store(need)
	return base
}

// grow extends capacity to at least need slots. Caller holds a.mu (or is
// the constructor).
func (a *Arena[T]) grow(need uint32) {
	chunks := (int(need) + ChunkSize - 1) >> ChunkShift
	old := *a.table.Load()
	oldGens := *a.gens.Load()
	if len(old) >= chunks {
		return
	}
	next := make([]*[ChunkSize]T, chunks)
	nextGens := make([]*genChunk, chunks)
	copy(next, old)
	copy(nextGens, oldGens)
	for i := len(old); i < chunks; i++ {
		next[i] = new([ChunkSize]T)
		nextGens[i] = new(genChunk)
	}
	a.table.Store(&next)
	a.gens.Store(&nextGens)
	a.capa.Store(uint32(chunks) << ChunkShift)
}
