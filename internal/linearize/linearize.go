// Package linearize checks recorded concurrent histories of set operations
// for linearizability. It is the strongest correctness oracle in this
// repository: rather than checking conservation invariants after the fact,
// it verifies that an actual interleaving of Insert/Delete/Contains calls
// — with their real-time ordering — is explainable by some sequential set.
//
// The checker exploits that a set is a *per-key independent* object: a
// history is linearizable iff its projection onto every key is
// linearizable against a single boolean (present/absent). Each per-key
// projection is decided with the Wing & Gong algorithm, memoized on the
// subset of already-linearized operations — sound and complete, with
// O(2^n) worst-case work per key, so recorders used with it should keep
// per-key operation counts modest (the tests use ≤ ~20, far past what is
// needed to catch reclamation bugs, which manifest as impossible results
// like Contains observing a deleted-and-recycled key).
package linearize

import (
	"fmt"
	"sort"
)

// OpKind is the operation type.
type OpKind uint8

// The three set operations.
const (
	Insert OpKind = iota
	Delete
	Contains
)

func (k OpKind) String() string {
	switch k {
	case Insert:
		return "Insert"
	case Delete:
		return "Delete"
	default:
		return "Contains"
	}
}

// Op is one completed operation with its invocation/response timestamps.
// Timestamps come from a shared logical clock: Start and End of different
// operations never collide, and a.End < b.Start means a really preceded b.
type Op struct {
	Kind   OpKind
	Key    uint64
	Result bool
	Thread int
	Start  int64
	End    int64
}

func (o Op) String() string {
	return fmt.Sprintf("T%d %v(%d)=%v @[%d,%d]", o.Thread, o.Kind, o.Key, o.Result, o.Start, o.End)
}

// apply returns the post-state and whether the op is legal in state
// (initial state: absent=false).
func apply(o Op, present bool) (bool, bool) {
	switch o.Kind {
	case Insert:
		if o.Result {
			return true, !present // succeeds iff absent
		}
		return present, present // fails iff present
	case Delete:
		if o.Result {
			return false, present
		}
		return present, !present
	default: // Contains
		return present, o.Result == present
	}
}

// Result reports the outcome of a check.
type Result struct {
	Ok bool
	// Key is the first key whose projection failed (when !Ok).
	Key uint64
	// Witness is that key's projected history, sorted by invocation.
	Witness []Op
}

// maxPerKey bounds the per-key search; histories past it are rejected
// with an explanatory panic rather than silently taking exponential time.
const maxPerKey = 26

// Check decides whether the history is linearizable as a set that starts
// empty.
func Check(history []Op) Result {
	byKey := make(map[uint64][]Op)
	for _, o := range history {
		byKey[o.Key] = append(byKey[o.Key], o)
	}
	// Deterministic key order for reproducible failure reports.
	keys := make([]uint64, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		ops := byKey[k]
		sort.Slice(ops, func(i, j int) bool { return ops[i].Start < ops[j].Start })
		if len(ops) > maxPerKey {
			panic(fmt.Sprintf(
				"linearize: %d ops on key %d exceeds the checker bound %d; "+
					"use a wider key space or fewer ops per key", len(ops), k, maxPerKey))
		}
		if !checkKey(ops) {
			return Result{Ok: false, Key: k, Witness: ops}
		}
	}
	return Result{Ok: true}
}

// checkKey runs memoized Wing-Gong on one key's projection. The boolean
// object state is fully determined by which successful updates are in the
// linearized prefix, so memoizing on the bitmask alone is sound.
func checkKey(ops []Op) bool {
	n := len(ops)
	if n == 0 {
		return true
	}
	full := uint32(1)<<n - 1
	visited := make(map[uint32]bool, 1<<uint(min(n, 20)))

	// pred[i] = bitmask of ops that strictly precede i in real time.
	pred := make([]uint32, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if ops[j].End < ops[i].Start {
				pred[i] |= 1 << j
			}
		}
	}

	var dfs func(mask uint32, present bool) bool
	dfs = func(mask uint32, present bool) bool {
		if mask == full {
			return true
		}
		if visited[mask] {
			return false
		}
		visited[mask] = true
		for i := 0; i < n; i++ {
			bit := uint32(1) << i
			if mask&bit != 0 {
				continue
			}
			// i may linearize next only if every op that precedes it in
			// real time is already linearized.
			if pred[i]&^mask != 0 {
				continue
			}
			next, ok := apply(ops[i], present)
			if !ok {
				continue
			}
			if dfs(mask|bit, next) {
				return true
			}
		}
		return false
	}
	return dfs(0, false)
}
