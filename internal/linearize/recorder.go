package linearize

import (
	"sync"
	"sync/atomic"

	"repro/internal/smr"
)

// Recorder wraps an smr.Set, recording every operation with logical
// invocation/response timestamps from a shared atomic clock. Sessions
// append to private logs; History merges them after the workers quiesce.
type Recorder struct {
	inner smr.Set
	clock atomic.Int64
	mu    sync.Mutex
	logs  []*[]Op
}

// NewRecorder wraps set.
func NewRecorder(set smr.Set) *Recorder {
	return &Recorder{inner: set}
}

// Scheme implements smr.Set.
func (r *Recorder) Scheme() smr.Scheme { return r.inner.Scheme() }

// Stats implements smr.Set.
func (r *Recorder) Stats() smr.Stats { return r.inner.Stats() }

// Session implements smr.Set; each recorded session owns a private log.
func (r *Recorder) Session(tid int) smr.Session {
	log := new([]Op)
	r.mu.Lock()
	r.logs = append(r.logs, log)
	r.mu.Unlock()
	return &recSession{r: r, tid: tid, inner: r.inner.Session(tid), log: log}
}

// History returns all recorded operations. Call only after every recorded
// session has quiesced.
func (r *Recorder) History() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	var all []Op
	for _, log := range r.logs {
		all = append(all, *log...)
	}
	return all
}

type recSession struct {
	r     *Recorder
	tid   int
	inner smr.Session
	log   *[]Op
}

func (s *recSession) record(kind OpKind, key uint64, call func(uint64) bool) bool {
	start := s.r.clock.Add(1)
	res := call(key)
	end := s.r.clock.Add(1)
	*s.log = append(*s.log, Op{
		Kind: kind, Key: key, Result: res, Thread: s.tid, Start: start, End: end,
	})
	return res
}

func (s *recSession) Insert(key uint64) bool {
	return s.record(Insert, key, s.inner.Insert)
}

func (s *recSession) Delete(key uint64) bool {
	return s.record(Delete, key, s.inner.Delete)
}

func (s *recSession) Contains(key uint64) bool {
	return s.record(Contains, key, s.inner.Contains)
}
