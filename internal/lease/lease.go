// Package lease bridges Go's dynamic goroutine model onto the fixed
// thread registry every reclamation scheme in this repository assumes.
//
// The paper's algorithms (and Michael's hazard pointers, which OA borrows
// its write barrier from) are specified against MaxThreads preallocated
// per-thread contexts: warning words, hazard-pointer slots, local pools.
// A goroutine-per-connection server cannot hand-assign those contexts —
// goroutines are created and destroyed far faster than thread contexts
// can be, and two goroutines must never share one. The classic fix
// (hazard-pointer libraries call it slot leasing) is a lock-free free
// list of context ids: a worker leases a slot for its lifetime and
// returns it on exit, so an arbitrary goroutine population multiplexes
// onto the fixed registry.
//
// Registry is that free list. Acquire and Release are lock-free (a
// bounded scan of per-slot CAS words), safe for any number of concurrent
// goroutines, and detect the two misuse modes that corrupt SMR state:
// releasing a slot that is not leased (panic — the equivalent of a
// double sync.Mutex.Unlock) and acquiring from a closed registry
// (ErrClosed).
package lease

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Sentinel errors shared by every layer that hands out sessions. The
// public oamem package re-exports them under its own names; errors.Is
// matches across both spellings because they are the same values.
var (
	// ErrNoFreeSessions is returned by Acquire when every slot of the
	// fixed registry is currently leased. It is a load condition, not a
	// programming error: callers back off, queue, or shed the request.
	ErrNoFreeSessions = errors.New("oamem: no free sessions: all thread slots are leased")
	// ErrClosed is returned by Acquire after Close. Sessions already
	// leased stay valid (their owners may still Release them); only new
	// acquisitions fail.
	ErrClosed = errors.New("oamem: structure closed")
	// ErrCapacityExhausted reports that a structure's fixed node budget
	// (OA's Capacity = live set + reclamation slack δ) cannot admit more
	// keys. The core allocator panics with an error wrapping this value
	// when the budget is truly overrun; admission-control layers (the
	// network server) return it before that point is reached.
	ErrCapacityExhausted = errors.New("oamem: node capacity exhausted")
)

// Slot states. Free and leased alternate; the packed word keeps a lease
// generation in the upper bits purely as a debugging aid (it makes
// use-after-release reproduce as a mismatch instead of silent sharing).
const (
	slotFree   uint64 = 0
	slotLeased uint64 = 1
)

// Registry is a lock-free lessor of the integer ids 0..N-1.
//
// Acquire scans the slots from a rotating start index and CASes the
// first free one to leased; Release stores it back to free. Both are a
// bounded number of atomic operations (at most one pass over N slots),
// so the registry is wait-free for Release and lock-free for Acquire.
type Registry struct {
	// slots[i] packs {generation:63 | leased:1}.
	slots []paddedWord
	// hint is the rotating scan start: each Acquire starts one past the
	// slot it leased last time, spreading concurrent acquirers so they
	// do not convoy on slot 0's cache line.
	hint   atomic.Uint32
	closed atomic.Bool
	leased atomic.Int64
	// grants counts successful Acquires over the registry's lifetime —
	// the "leases recycled across connections" observability signal.
	grants atomic.Uint64
	// exhausted counts Acquire calls rejected with ErrNoFreeSessions.
	exhausted atomic.Uint64
}

// paddedWord keeps adjacent slot words off one cache line: Release is a
// single uncontended store in the common case and must not false-share
// with a neighbour being scanned.
type paddedWord struct {
	w atomic.Uint64
	_ [56]byte
}

// NewRegistry builds a registry over ids 0..n-1 (n clamped to ≥ 1).
func NewRegistry(n int) *Registry {
	if n < 1 {
		n = 1
	}
	return &Registry{slots: make([]paddedWord, n)}
}

// Cap returns the number of slots.
func (r *Registry) Cap() int { return len(r.slots) }

// Leased returns how many slots are currently leased (a live gauge).
func (r *Registry) Leased() int { return int(r.leased.Load()) }

// Grants returns how many leases were ever granted.
func (r *Registry) Grants() uint64 { return r.grants.Load() }

// Exhausted returns how many Acquire calls failed with ErrNoFreeSessions.
func (r *Registry) Exhausted() uint64 { return r.exhausted.Load() }

// Closed reports whether Close has been called.
func (r *Registry) Closed() bool { return r.closed.Load() }

// Close marks the registry closed: subsequent Acquires return ErrClosed.
// Outstanding leases stay valid and may still be Released (the drain
// path releases them one by one). Close is idempotent.
func (r *Registry) Close() { r.closed.Store(true) }

// Acquire leases a free slot id. It fails with ErrClosed after Close and
// with ErrNoFreeSessions when a full scan finds every slot leased.
func (r *Registry) Acquire() (int, error) {
	if r.closed.Load() {
		return 0, ErrClosed
	}
	n := uint32(len(r.slots))
	start := r.hint.Add(1)
	for i := uint32(0); i < n; i++ {
		id := (start + i) % n
		w := &r.slots[id].w
		old := w.Load()
		if old&slotLeased != 0 {
			continue
		}
		if w.CompareAndSwap(old, (old|slotLeased)+2) { // +2 bumps the generation
			r.leased.Add(1)
			r.grants.Add(1)
			return int(id), nil
		}
		// Lost the race for this slot; keep scanning. A loser never
		// retries the same slot, so one pass bounds the loop.
	}
	r.exhausted.Add(1)
	return 0, ErrNoFreeSessions
}

// Release returns slot id to the free pool. It panics if id is out of
// range or not currently leased — a double release would let two
// goroutines share one SMR thread context, which corrupts hazard-pointer
// and warning state silently, so it is treated like unlocking an
// unlocked mutex.
func (r *Registry) Release(id int) {
	if id < 0 || id >= len(r.slots) {
		panic(fmt.Sprintf("lease: Release of out-of-range slot %d (registry of %d)", id, len(r.slots)))
	}
	w := &r.slots[id].w
	for {
		old := w.Load()
		if old&slotLeased == 0 {
			panic(fmt.Sprintf("lease: double Release of slot %d", id))
		}
		if w.CompareAndSwap(old, old&^slotLeased) {
			r.leased.Add(-1)
			return
		}
	}
}
