package lease

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestAcquireReleaseBasics(t *testing.T) {
	r := NewRegistry(2)
	a, err := r.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatalf("both acquires returned slot %d", a)
	}
	if _, err := r.Acquire(); !errors.Is(err, ErrNoFreeSessions) {
		t.Fatalf("exhausted acquire: err = %v", err)
	}
	if r.Leased() != 2 || r.Exhausted() != 1 {
		t.Fatalf("leased=%d exhausted=%d", r.Leased(), r.Exhausted())
	}
	r.Release(a)
	c, err := r.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatalf("recycled lease got %d, want %d", c, a)
	}
	if r.Grants() != 3 {
		t.Fatalf("grants = %d, want 3", r.Grants())
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	r := NewRegistry(1)
	id, err := r.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	r.Release(id)
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	r.Release(id)
}

func TestReleaseOutOfRangePanics(t *testing.T) {
	r := NewRegistry(4)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Release did not panic")
		}
	}()
	r.Release(7)
}

func TestClose(t *testing.T) {
	r := NewRegistry(2)
	id, err := r.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if _, err := r.Acquire(); !errors.Is(err, ErrClosed) {
		t.Fatalf("acquire after close: err = %v", err)
	}
	// Outstanding leases stay releasable after Close (the drain path).
	r.Release(id)
	if r.Leased() != 0 {
		t.Fatalf("leased = %d after drain", r.Leased())
	}
	r.Close() // idempotent
}

// TestChurnMoreGoroutinesThanSlots is the server's lease pattern: far
// more workers than slots, every worker looping acquire→use→release.
// Under -race this also proves the registry's synchronization publishes
// per-slot state between successive lessees.
func TestChurnMoreGoroutinesThanSlots(t *testing.T) {
	const (
		slots   = 8
		workers = 64
		rounds  = 500
	)
	r := NewRegistry(slots)
	// owned[i] is written by whichever goroutine holds slot i — the race
	// detector cross-checks the happens-before edge Release→Acquire.
	owned := make([]int, slots)
	var inUse [slots]atomic.Int32
	var wg sync.WaitGroup
	var granted atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; {
				id, err := r.Acquire()
				if errors.Is(err, ErrNoFreeSessions) {
					continue // expected under 8x oversubscription
				}
				if err != nil {
					t.Error(err)
					return
				}
				if inUse[id].Add(1) != 1 {
					t.Errorf("slot %d leased twice concurrently", id)
				}
				owned[id] = w
				_ = owned[id]
				inUse[id].Add(-1)
				granted.Add(1)
				r.Release(id)
				i++
			}
		}(w)
	}
	wg.Wait()
	if r.Leased() != 0 {
		t.Fatalf("leaked %d leases", r.Leased())
	}
	if got := r.Grants(); got != granted.Load() {
		t.Fatalf("grants = %d, want %d", got, granted.Load())
	}
}
