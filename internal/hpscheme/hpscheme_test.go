package hpscheme

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/arena"
)

type tnode struct {
	key  atomic.Uint64
	next atomic.Uint64
}

func reset(n *tnode) { n.key.Store(0); n.next.Store(0) }

func TestProtectBlocksReclaim(t *testing.T) {
	m := NewManager[tnode](Config{MaxThreads: 2, Capacity: 64, HPsPerThread: 3, ScanThreshold: 4}, reset)
	w, g := m.Thread(0), m.Thread(1)
	s := w.Alloc()
	gen := m.Arena().Gen(s)
	g.Protect(0, arena.MakePtr(s))
	w.Retire(s)
	for i := 0; i < 200; i++ { // force many scans
		x := w.Alloc()
		w.Retire(x)
	}
	if m.Arena().Gen(s) != gen {
		t.Fatal("protected slot was freed")
	}
	if w.RetiredLocally() == 0 {
		t.Fatal("protected slot should remain in the retired list")
	}
	g.Clear(0)
	for i := 0; i < 200; i++ {
		x := w.Alloc()
		w.Retire(x)
	}
	if m.Arena().Gen(s) == gen {
		t.Fatal("slot never freed after protection cleared")
	}
}

func TestProtectUnmarksPointers(t *testing.T) {
	m := NewManager[tnode](Config{MaxThreads: 2, Capacity: 64, HPsPerThread: 1, ScanThreshold: 2}, reset)
	w, g := m.Thread(0), m.Thread(1)
	s := w.Alloc()
	gen := m.Arena().Gen(s)
	g.Protect(0, arena.MakePtr(s).Mark()) // marked handle must still protect
	w.Retire(s)
	for i := 0; i < 100; i++ {
		x := w.Alloc()
		w.Retire(x)
	}
	if m.Arena().Gen(s) != gen {
		t.Fatal("marked-handle protection failed")
	}
}

func TestProtectNilClears(t *testing.T) {
	m := NewManager[tnode](Config{MaxThreads: 1, Capacity: 32, HPsPerThread: 2}, reset)
	th := m.Thread(0)
	s := th.Alloc()
	th.Protect(0, arena.MakePtr(s))
	th.Protect(0, arena.NilPtr)
	if th.hps[0].Load() != 0 {
		t.Fatal("Protect(nil) must clear the hazard pointer")
	}
	th.Protect(1, arena.MakePtr(s))
	th.ClearAll()
	if th.hps[1].Load() != 0 {
		t.Fatal("ClearAll left a hazard pointer")
	}
}

func TestScanThresholdTriggers(t *testing.T) {
	m := NewManager[tnode](Config{MaxThreads: 1, Capacity: 64, HPsPerThread: 1, ScanThreshold: 10}, reset)
	th := m.Thread(0)
	for i := 0; i < 9; i++ {
		th.Retire(th.Alloc())
	}
	if got := m.Stats().Phases; got != 0 {
		t.Fatalf("scan ran early: %d", got)
	}
	th.Retire(th.Alloc())
	if got := m.Stats().Phases; got != 1 {
		t.Fatalf("scans = %d, want 1", got)
	}
	if m.Stats().Recycled != 10 {
		t.Fatalf("recycled = %d, want 10", m.Stats().Recycled)
	}
}

// The UAF guarantee: a slot is never reused while any hazard pointer
// (validated) covers it. Workers hold a protected slot, verify a sentinel
// across heavy concurrent churn, then release.
func TestNoUseAfterFreeUnderChurn(t *testing.T) {
	const threads = 6
	m := NewManager[tnode](Config{MaxThreads: threads, Capacity: 2048, HPsPerThread: 2, ScanThreshold: 32}, reset)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Churners allocate/retire constantly.
	for id := 1; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := m.Thread(id)
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := th.Alloc()
				th.Node(s).key.Store(uint64(id))
				th.Retire(s)
			}
		}(id)
	}
	// The observer publishes, validates via generation, and re-reads.
	th := m.Thread(0)
	for i := 0; i < 5000; i++ {
		s := th.Alloc()
		th.Node(s).key.Store(0xDEAD)
		// Simulate handing the slot to a reader: protect, then retire from
		// another conceptual owner; the value must persist until Clear.
		th.Protect(0, arena.MakePtr(s))
		th.Retire(s)
		for j := 0; j < 10; j++ {
			if got := th.Node(s).key.Load(); got != 0xDEAD {
				t.Errorf("iteration %d: protected slot mutated to %#x", i, got)
				close(stop)
				wg.Wait()
				return
			}
		}
		th.Clear(0)
	}
	close(stop)
	wg.Wait()
}

func TestStatsAndDefaults(t *testing.T) {
	m := NewManager[tnode](Config{}, reset)
	if m.MaxThreads() != 1 {
		t.Fatalf("MaxThreads = %d", m.MaxThreads())
	}
	th := m.Thread(0)
	if th.ID() != 0 {
		t.Fatalf("ID = %d", th.ID())
	}
	th.CountRestart()
	s := th.Alloc()
	th.Retire(s)
	st := m.Stats()
	if st.Allocs != 1 || st.Retires != 1 || st.Restarts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
