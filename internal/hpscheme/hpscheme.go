// Package hpscheme implements Michael's hazard pointers scheme (IEEE TPDS
// 2004), the primary competitor measured by the paper (§6, "Related Work").
//
// Protocol per shared read of a node pointer:
//
//  1. read the pointer,
//  2. publish it in one of the thread's hazard pointers (the atomic store
//     doubles as the memory fence the paper charges HP for),
//  3. validate by re-reading the source; if it changed, retry or restart.
//
// A node may be reclaimed only when no thread's hazard pointer refers to
// it. Each thread buffers retired slots locally and, after ScanThreshold
// retires, scans all hazard pointers and frees the unprotected ones
// (Michael's "scan" with amortized O(1) work per retire).
//
// Unlike the optimistic access scheme, every traversal hop pays the
// publish + fence + validate sequence — this is the overhead Figure 1
// shows as 2x-5x on pointer-chasing structures.
package hpscheme

import (
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/arena"
	"repro/internal/obs"
	"repro/internal/smr"
	"repro/internal/trace"
)

// Config parameterizes a Manager.
type Config struct {
	// MaxThreads is the fixed number of thread contexts.
	MaxThreads int
	// Capacity pre-charges the shared pool (the structure's steady size
	// plus slack).
	Capacity int
	// HPsPerThread is the number of hazard pointers each thread may
	// publish simultaneously (data-structure dependent: 3 for the linked
	// list, 2·MAXLEVEL+3 for the skip list, §5).
	HPsPerThread int
	// ScanThreshold is Michael's R: a thread scans after this many local
	// retires. The paper's Figure 3 sets it to δ/threads.
	ScanThreshold int
	// LocalPool is the allocation block-transfer size.
	LocalPool int
}

func (c *Config) fill() {
	if c.MaxThreads <= 0 {
		c.MaxThreads = 1
	}
	if c.HPsPerThread <= 0 {
		c.HPsPerThread = 3
	}
	if c.ScanThreshold <= 0 {
		// Michael's guidance: R > H = threads · HPs, with headroom.
		c.ScanThreshold = 2*c.MaxThreads*c.HPsPerThread + 64
	}
}

// Manager owns the pool and thread contexts of one hazard-pointers
// instance.
type Manager[T any] struct {
	cfg     Config
	pool    *alloc.Pool[T]
	threads []*Thread[T]
	tracer  *trace.Recorder
}

// NewManager builds a manager; reset zeroes a node at allocation.
func NewManager[T any](cfg Config, reset func(*T)) *Manager[T] {
	cfg.fill()
	m := &Manager[T]{
		cfg:    cfg,
		pool:   alloc.New(cfg.Capacity, cfg.LocalPool, reset),
		tracer: trace.NewRecorder(cfg.MaxThreads, 0),
	}
	m.threads = make([]*Thread[T], cfg.MaxThreads)
	for i := range m.threads {
		t := &Thread[T]{
			mgr:     m,
			id:      i,
			hps:     make([]atomic.Uint64, cfg.HPsPerThread),
			retired: make([]uint32, 0, cfg.ScanThreshold+8),
			view:    m.pool.Arena().View(),
			ring:    m.tracer.Ring(i),
		}
		t.local.Trace = t.ring
		m.threads[i] = t
	}
	return m
}

// TraceRecorder exposes the per-thread protocol event rings (validation
// restarts, scan passes, allocation refills).
func (m *Manager[T]) TraceRecorder() *trace.Recorder { return m.tracer }

// RegisterObs implements obs.Registrar: the scheme's only deep source is
// its event trace (counters flow through smr.Stats).
func (m *Manager[T]) RegisterObs(reg *obs.Registry) { reg.Trace(m.tracer) }

// Arena exposes node storage.
func (m *Manager[T]) Arena() *arena.Arena[T] { return m.pool.Arena() }

// Thread returns thread context id.
func (m *Manager[T]) Thread(id int) *Thread[T] { return m.threads[id] }

// MaxThreads returns the configured thread count.
func (m *Manager[T]) MaxThreads() int { return m.cfg.MaxThreads }

// Stats aggregates counters across threads.
func (m *Manager[T]) Stats() smr.Stats {
	var s smr.Stats
	for _, t := range m.threads {
		s.Add(smr.Stats{
			Allocs:    t.allocs.Load(),
			Retires:   t.retires.Load(),
			Recycled:  t.recycled.Load(),
			ReRetired: t.reRetired.Load(),
			Phases:    t.scans.Load(),
			Restarts:  t.restarts.Load(),
		})
	}
	return s
}

// Thread is a per-thread hazard-pointer context; single goroutine at a
// time, hazard pointers read concurrently by scanners.
type Thread[T any] struct {
	mgr     *Manager[T]
	id      int
	hps     []atomic.Uint64 // slot+1; 0 = empty
	retired []uint32        // local retired list awaiting scan
	local   alloc.Local
	view    arena.View[T] // chunk-directory snapshot: atomic-free Node
	scratch smr.SlotSet   // reused sorted hazard-pointer snapshot
	ring    *trace.Ring   // protocol event ring (gated on trace.Enabled)

	// Counters are atomic so Stats may aggregate them live (monitoring
	// endpoints, harness snapshots) without stopping the owner thread.
	allocs    atomic.Uint64
	retires   atomic.Uint64
	recycled  atomic.Uint64
	reRetired atomic.Uint64
	scans     atomic.Uint64
	restarts  atomic.Uint64

	_ [4]uint64 // false-sharing pad
}

// ID returns the thread index.
func (t *Thread[T]) ID() int { return t.id }

// Node dereferences a slot handle. Under hazard pointers a dereference is
// only legal while the slot is protected and validated. The lookup goes
// through the thread's directory view: two plain loads, no atomics.
func (t *Thread[T]) Node(slot uint32) *T { return t.view.At(slot) }

// Protect publishes hazard pointer i on p (unmarked automatically). The
// sequentially consistent store is the fence; the caller must validate by
// re-reading the pointer's source afterwards.
func (t *Thread[T]) Protect(i int, p arena.Ptr) {
	if p.IsNil() {
		t.hps[i].Store(0)
		return
	}
	t.hps[i].Store(uint64(p.Unmark().Slot()) + 1)
}

// Clear resets hazard pointer i.
func (t *Thread[T]) Clear(i int) { t.hps[i].Store(0) }

// ClearAll resets every hazard pointer of the thread (end of operation).
func (t *Thread[T]) ClearAll() {
	for i := range t.hps {
		t.hps[i].Store(0)
	}
}

// CountRestart bumps the restart counter (validation failures that force a
// traversal restart are accounted by the data structure through this).
func (t *Thread[T]) CountRestart() {
	t.restarts.Add(1)
	if trace.Enabled() {
		t.ring.Record(trace.EvRestart, uint64(trace.CauseValidate))
	}
}

// Alloc returns a zeroed slot from the shared pool.
func (t *Thread[T]) Alloc() uint32 {
	t.allocs.Add(1)
	return t.mgr.pool.Alloc(&t.local)
}

// Retire buffers an unlinked slot; when ScanThreshold slots accumulate it
// runs Michael's scan.
func (t *Thread[T]) Retire(slot uint32) {
	t.retires.Add(1)
	t.retired = append(t.retired, slot)
	if len(t.retired) >= t.mgr.cfg.ScanThreshold {
		t.Scan()
	}
}

// Scan frees every locally retired slot not currently protected by any
// thread's hazard pointer; protected slots stay buffered for the next
// scan. Per Michael's paper the snapshot is a sorted array probed by
// binary search — with ScanThreshold retired slots per pass, hashing each
// probe into a map dominates the scan, sorting threads·HPs words does not.
func (t *Thread[T]) Scan() {
	t.scans.Add(1)
	hp := &t.scratch
	hp.Reset()
	for _, other := range t.mgr.threads {
		for i := range other.hps {
			if w := other.hps[i].Load(); w != 0 {
				hp.Add(uint32(w - 1))
			}
		}
	}
	hp.Seal()
	kept := t.retired[:0]
	var recycled, reRetired uint64
	for _, slot := range t.retired {
		if hp.Contains(slot) {
			kept = append(kept, slot)
			reRetired++
		} else {
			t.mgr.pool.Free(&t.local, slot)
			recycled++
		}
	}
	t.recycled.Add(recycled)
	t.reRetired.Add(reRetired)
	t.retired = kept
	t.mgr.pool.Flush(&t.local)
	if trace.Enabled() {
		t.ring.Record(trace.EvDrain, trace.DrainPayload(recycled, reRetired))
	}
}

// RetiredLocally reports how many slots wait in the local retired list —
// the space overhead HP bounds at threads · ScanThreshold.
func (t *Thread[T]) RetiredLocally() int { return len(t.retired) }
