package queue

import (
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/normalized"
	"repro/internal/obs"
	"repro/internal/smr"
)

// OAQueue is the Michael-Scott queue under optimistic access. Operations
// execute at most one executor CAS (C = 1), so three owner hazard pointers
// suffice; the post-link tail swing runs while the owner hazard pointers
// still pin its operands, which also rules out tail-word ABA.
type OAQueue struct {
	mgr  *core.Manager[Node]
	head atomic.Uint64 // arena.Ptr of the sentinel
	tail atomic.Uint64
}

// NewOA builds an empty queue sized by cfg.
func NewOA(cfg core.Config) *OAQueue {
	cfg.OwnerHPs = 3
	q := &OAQueue{mgr: core.NewManager[Node](cfg, ResetNode)}
	s := q.mgr.Thread(0).Alloc()
	q.head.Store(uint64(arena.MakePtr(s)))
	q.tail.Store(uint64(arena.MakePtr(s)))
	return q
}

// Manager exposes the underlying optimistic access manager.
func (q *OAQueue) Manager() *core.Manager[Node] { return q.mgr }

// Scheme implements smr.Queue.
func (q *OAQueue) Scheme() smr.Scheme { return smr.OA }

// Stats implements smr.Queue.
func (q *OAQueue) Stats() smr.Stats { return q.mgr.Stats() }

// RegisterObs implements obs.Registrar by forwarding to the core manager.
func (q *OAQueue) RegisterObs(reg *obs.Registry) { q.mgr.RegisterObs(reg) }

// QueueSession implements smr.Queue.
func (q *OAQueue) QueueSession(tid int) smr.QueueSession {
	return &oaQSession{q: q, t: q.mgr.Thread(tid), pending: arena.NoSlot}
}

type oaQSession struct {
	q       *OAQueue
	t       *core.Thread[Node]
	pending uint32
}

// helpSwing advances a lagging tail. The CAS target is the tail word (a
// root, never recycled), but the operands are node handles, so Algorithm 2
// still applies to them: protecting last and next prevents recycle-reuse
// ABA on the tail word.
func (s *oaQSession) helpSwing(last, next arena.Ptr) bool {
	th := s.t
	if th.ProtectCAS(arena.NilPtr, last, next) {
		return true // restart
	}
	s.q.tail.CompareAndSwap(uint64(last), uint64(next))
	th.ClearCAS()
	return false
}

// Enqueue appends v (normalized: generator finds the tail cell and emits
// the single link CAS; wrap-up swings the tail on success).
func (s *oaQSession) Enqueue(v uint64) {
	th := s.t
	var dl normalized.DescList
	for {
		// --- CAS generator ---
		last := arena.Ptr(s.q.tail.Load())
		if th.Check() {
			continue
		}
		next := arena.Ptr(th.Node(last.Slot()).Next.Load())
		tailNow := arena.Ptr(s.q.tail.Load())
		if th.Check() {
			continue
		}
		if tailNow != last {
			continue
		}
		if !next.IsNil() {
			// Tail lags: help swing, then retry.
			s.helpSwing(last, next)
			continue
		}
		if s.pending == arena.NoSlot {
			s.pending = th.Alloc()
		}
		n := th.Node(s.pending)
		n.Val.Store(v)
		n.Next.Store(0)
		newPtr := arena.MakePtr(s.pending)
		dl.Reset()
		dl.Append(&th.Node(last.Slot()).Next, 0, uint64(newPtr))
		th.SetOwnerHP(0, last)
		th.SetOwnerHP(1, newPtr)
		if th.SealGenerator() {
			continue
		}
		// --- CAS executor ---
		failed := normalized.Execute(&dl)
		// --- wrap-up ---
		if failed != 0 {
			th.ClearOwnerHPs()
			continue
		}
		s.pending = arena.NoSlot
		// Swing the tail while the owner hazard pointers still pin last
		// and newPtr (no ABA window).
		s.q.tail.CompareAndSwap(uint64(last), uint64(newPtr))
		th.ClearOwnerHPs()
		return
	}
}

// Dequeue removes the head value (normalized: generator reads the value
// and emits the head-swing CAS; the winner retires the old sentinel).
func (s *oaQSession) Dequeue() (uint64, bool) {
	th := s.t
	var dl normalized.DescList
	for {
		// --- CAS generator ---
		first := arena.Ptr(s.q.head.Load())
		last := arena.Ptr(s.q.tail.Load())
		if th.Check() {
			continue
		}
		next := arena.Ptr(th.Node(first.Slot()).Next.Load())
		headNow := arena.Ptr(s.q.head.Load())
		if th.Check() {
			continue
		}
		if headNow != first {
			continue
		}
		if first == last {
			if next.IsNil() {
				// Empty: the generator returns a zero-length CAS list and
				// the wrap-up reports emptiness — but only if the reads
				// above were not stale.
				if th.Check() {
					continue
				}
				return 0, false
			}
			if s.helpSwing(last, next) {
				continue
			}
			continue
		}
		v := th.Node(next.Slot()).Val.Load()
		if th.Check() {
			continue
		}
		dl.Reset()
		dl.Append(&s.q.head, uint64(first), uint64(next))
		th.SetOwnerHP(0, first)
		th.SetOwnerHP(1, next)
		if th.SealGenerator() {
			continue
		}
		// --- CAS executor ---
		failed := normalized.Execute(&dl)
		// --- wrap-up ---
		th.ClearOwnerHPs()
		if failed != 0 {
			continue
		}
		th.Retire(first.Slot()) // the old sentinel: unlinked, single retirer
		return v, true
	}
}
