// Package queue implements the Michael-Scott lock-free FIFO queue under
// the repository's reclamation schemes. The queue is not part of the
// paper's evaluation; it is the natural extension exercise: the normalized
// form of Timnat & Petrank covers it (§3.2 "it covers all concurrent data
// structures that we are aware of"), and it stresses a hazard the ordered
// sets do not — the dequeued sentinel's next pointer must never be
// observed as nil again before the node is recycled, or a lagging enqueue
// could link onto a dead node. Under the optimistic access scheme that
// protection falls out of the standard argument: the lagging enqueue's
// owner hazard pointers and sealing warning check ensure its executor CAS
// either targets a live node or restarts.
//
// The head and tail live in plain shared atomic words (they are structure
// roots, not nodes, so the reclamation schemes never recycle them); CASes
// on them need no object protection, but their pointer *operands* do —
// exactly the distinction Algorithm 2 draws.
package queue

import "sync/atomic"

// Node is the queue node; all fields atomic (stale reads under OA).
type Node struct {
	// Val is the enqueued value; written between allocation and linking.
	Val atomic.Uint64
	// Next holds arena.Ptr bits of the successor (no marks in a queue).
	Next atomic.Uint64
}

// ResetNode zeroes a node (the allocation memset hook).
func ResetNode(n *Node) {
	n.Val.Store(0)
	n.Next.Store(0)
}
