package queue_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/ebr"
	"repro/internal/hpscheme"
	"repro/internal/norecl"
	"repro/internal/queue"
	"repro/internal/smr"
)

func factories() map[string]func(threads int) smr.Queue {
	const capacity = 1 << 15 // must cover the worst-case backlog of the concurrent tests
	return map[string]func(threads int) smr.Queue{
		"NoRecl": func(threads int) smr.Queue {
			return queue.NewNoRecl(norecl.Config{MaxThreads: threads, Capacity: capacity})
		},
		"OA": func(threads int) smr.Queue {
			return queue.NewOA(core.Config{MaxThreads: threads, Capacity: capacity, LocalPool: 16})
		},
		"HP": func(threads int) smr.Queue {
			return queue.NewHP(hpscheme.Config{MaxThreads: threads, Capacity: capacity, ScanThreshold: 32})
		},
		"EBR": func(threads int) smr.Queue {
			return queue.NewEBR(ebr.Config{MaxThreads: threads, Capacity: capacity, OpsPerScan: 32})
		},
	}
}

func TestQueueSequentialFIFO(t *testing.T) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			q := mk(1).QueueSession(0)
			if _, ok := q.Dequeue(); ok {
				t.Fatal("empty queue dequeued")
			}
			for i := uint64(1); i <= 1000; i++ {
				q.Enqueue(i)
			}
			for i := uint64(1); i <= 1000; i++ {
				v, ok := q.Dequeue()
				if !ok || v != i {
					t.Fatalf("Dequeue = %d,%v, want %d", v, ok, i)
				}
			}
			if _, ok := q.Dequeue(); ok {
				t.Fatal("drained queue dequeued")
			}
		})
	}
}

func TestQueueInterleavedEmpty(t *testing.T) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			q := mk(1).QueueSession(0)
			for round := 0; round < 500; round++ {
				q.Enqueue(uint64(round))
				v, ok := q.Dequeue()
				if !ok || v != uint64(round) {
					t.Fatalf("round %d: got %d,%v", round, v, ok)
				}
				if _, ok := q.Dequeue(); ok {
					t.Fatalf("round %d: phantom element", round)
				}
			}
		})
	}
}

// Concurrent: every enqueued value dequeued exactly once, and values from
// one producer come out in production order (per-producer FIFO — a
// necessary condition of queue linearizability).
func TestQueueConcurrentConservationAndOrder(t *testing.T) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			const producers, consumers, perProducer = 3, 3, 8000
			qq := mk(producers + consumers)
			var wg sync.WaitGroup
			var producing atomic.Int32
			producing.Store(producers)
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					defer producing.Add(-1)
					q := qq.QueueSession(p)
					for i := 0; i < perProducer; i++ {
						q.Enqueue(uint64(p)<<32 | uint64(i))
					}
				}(p)
			}
			var mu sync.Mutex
			got := make(map[uint64]int)
			lastSeen := make([][]int, consumers)
			for c := 0; c < consumers; c++ {
				lastSeen[c] = make([]int, producers)
				for p := range lastSeen[c] {
					lastSeen[c][p] = -1
				}
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					q := qq.QueueSession(producers + c)
					for {
						v, ok := q.Dequeue()
						if !ok {
							// Stop only once every producer is done and the
							// queue is still empty afterwards (the flag drops
							// after the final enqueue linearized, so a
							// post-flag empty means the backlog was taken).
							if producing.Load() == 0 {
								if v2, ok2 := q.Dequeue(); ok2 {
									v, ok = v2, ok2
								} else {
									return
								}
							} else {
								continue
							}
						}
						_ = ok
						p := int(v >> 32)
						i := int(v & 0xFFFFFFFF)
						// Per-producer order as observed by one consumer
						// must be increasing.
						if i <= lastSeen[c][p] {
							t.Errorf("consumer %d saw producer %d's %d after %d",
								c, p, i, lastSeen[c][p])
							return
						}
						lastSeen[c][p] = i
						mu.Lock()
						got[v]++
						mu.Unlock()
					}
				}(c)
			}
			wg.Wait()
			if len(got) != producers*perProducer {
				t.Fatalf("dequeued %d distinct values, want %d", len(got), producers*perProducer)
			}
			for v, n := range got {
				if n != 1 {
					t.Fatalf("value %#x dequeued %d times", v, n)
				}
			}
		})
	}
}

// OA-specific: churn must recycle sentinels through phases.
func TestQueueOARecycles(t *testing.T) {
	q := queue.NewOA(core.Config{MaxThreads: 1, Capacity: 512, LocalPool: 8})
	s := q.QueueSession(0)
	for i := 0; i < 20000; i++ {
		s.Enqueue(uint64(i))
		if _, ok := s.Dequeue(); !ok {
			t.Fatal("lost element")
		}
	}
	st := q.Stats()
	if st.Phases == 0 || st.Recycled == 0 {
		t.Fatalf("queue reclamation inactive: %+v", st)
	}
	if q.Scheme() != smr.OA {
		t.Fatal("scheme")
	}
}

// The lagging-enqueue hazard: a recycled sentinel's next is zeroed, so a
// stale enqueue CAS could link onto a dead node — unless the scheme's
// barriers stop it. Heavy mixed traffic on a tiny arena exercises exactly
// this window; conservation (above) plus this smoke keep it honest.
func TestQueueTinyArenaChurn(t *testing.T) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			qq := mk(4)
			var wg sync.WaitGroup
			var mu sync.Mutex
			seen := map[uint64]int{}
			for id := 0; id < 4; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					q := qq.QueueSession(id)
					for i := 0; i < 20000; i++ {
						q.Enqueue(uint64(id)<<32 | uint64(i))
						if v, ok := q.Dequeue(); ok {
							mu.Lock()
							seen[v]++
							mu.Unlock()
						}
					}
				}(id)
			}
			wg.Wait()
			for v, n := range seen {
				if n != 1 {
					t.Fatalf("value %#x dequeued %d times", v, n)
				}
			}
		})
	}
}
