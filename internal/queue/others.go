package queue

import (
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/ebr"
	"repro/internal/hpscheme"
	"repro/internal/norecl"
	"repro/internal/smr"
)

// HPQueue is the Michael-Scott queue under hazard pointers — the worked
// example of Michael's TPDS 2004 paper, using two hazard pointers.
type HPQueue struct {
	mgr  *hpscheme.Manager[Node]
	head atomic.Uint64
	tail atomic.Uint64
}

// NewHP builds an empty queue sized by cfg.
func NewHP(cfg hpscheme.Config) *HPQueue {
	cfg.HPsPerThread = 2
	q := &HPQueue{mgr: hpscheme.NewManager[Node](cfg, ResetNode)}
	s := q.mgr.Thread(0).Alloc()
	q.head.Store(uint64(arena.MakePtr(s)))
	q.tail.Store(uint64(arena.MakePtr(s)))
	return q
}

// Manager exposes the underlying manager.
func (q *HPQueue) Manager() *hpscheme.Manager[Node] { return q.mgr }

// Scheme implements smr.Queue.
func (q *HPQueue) Scheme() smr.Scheme { return smr.HP }

// Stats implements smr.Queue.
func (q *HPQueue) Stats() smr.Stats { return q.mgr.Stats() }

// QueueSession implements smr.Queue.
func (q *HPQueue) QueueSession(tid int) smr.QueueSession {
	return &hpQSession{q: q, t: q.mgr.Thread(tid), pending: arena.NoSlot}
}

type hpQSession struct {
	q       *HPQueue
	t       *hpscheme.Thread[Node]
	pending uint32
}

// Enqueue follows Michael's published HP protocol: protect last, validate
// tail unchanged, then operate.
func (s *hpQSession) Enqueue(v uint64) {
	th := s.t
	if s.pending == arena.NoSlot {
		s.pending = th.Alloc()
	}
	n := th.Node(s.pending)
	n.Val.Store(v)
	n.Next.Store(0)
	newPtr := arena.MakePtr(s.pending)
	for {
		last := arena.Ptr(s.q.tail.Load())
		th.Protect(0, last)
		if arena.Ptr(s.q.tail.Load()) != last {
			th.CountRestart()
			continue
		}
		next := arena.Ptr(th.Node(last.Slot()).Next.Load())
		if arena.Ptr(s.q.tail.Load()) != last {
			th.CountRestart()
			continue
		}
		if !next.IsNil() {
			s.q.tail.CompareAndSwap(uint64(last), uint64(next))
			continue
		}
		if th.Node(last.Slot()).Next.CompareAndSwap(0, uint64(newPtr)) {
			s.q.tail.CompareAndSwap(uint64(last), uint64(newPtr))
			th.ClearAll()
			s.pending = arena.NoSlot
			return
		}
		th.CountRestart()
	}
}

// Dequeue follows Michael's published HP protocol with hp0=first, hp1=next.
func (s *hpQSession) Dequeue() (uint64, bool) {
	th := s.t
	for {
		first := arena.Ptr(s.q.head.Load())
		th.Protect(0, first)
		if arena.Ptr(s.q.head.Load()) != first {
			th.CountRestart()
			continue
		}
		last := arena.Ptr(s.q.tail.Load())
		next := arena.Ptr(th.Node(first.Slot()).Next.Load())
		th.Protect(1, next)
		if arena.Ptr(s.q.head.Load()) != first {
			th.CountRestart()
			continue
		}
		if first == last {
			if next.IsNil() {
				th.ClearAll()
				return 0, false
			}
			s.q.tail.CompareAndSwap(uint64(last), uint64(next))
			continue
		}
		v := th.Node(next.Slot()).Val.Load()
		if s.q.head.CompareAndSwap(uint64(first), uint64(next)) {
			th.ClearAll()
			th.Retire(first.Slot())
			return v, true
		}
		th.CountRestart()
	}
}

// EBRQueue is the Michael-Scott queue under epoch-based reclamation.
type EBRQueue struct {
	mgr  *ebr.Manager[Node]
	head atomic.Uint64
	tail atomic.Uint64
}

// NewEBR builds an empty queue sized by cfg.
func NewEBR(cfg ebr.Config) *EBRQueue {
	q := &EBRQueue{mgr: ebr.NewManager[Node](cfg, ResetNode)}
	s := q.mgr.Thread(0).Alloc()
	q.head.Store(uint64(arena.MakePtr(s)))
	q.tail.Store(uint64(arena.MakePtr(s)))
	return q
}

// Manager exposes the underlying manager.
func (q *EBRQueue) Manager() *ebr.Manager[Node] { return q.mgr }

// Scheme implements smr.Queue.
func (q *EBRQueue) Scheme() smr.Scheme { return smr.EBR }

// Stats implements smr.Queue.
func (q *EBRQueue) Stats() smr.Stats { return q.mgr.Stats() }

// QueueSession implements smr.Queue.
func (q *EBRQueue) QueueSession(tid int) smr.QueueSession {
	return &ebrQSession{q: q, t: q.mgr.Thread(tid), pending: arena.NoSlot}
}

type ebrQSession struct {
	q       *EBRQueue
	t       *ebr.Thread[Node]
	pending uint32
}

func (s *ebrQSession) Enqueue(v uint64) {
	th := s.t
	th.OnOpStart()
	defer th.OnOpEnd()
	if s.pending == arena.NoSlot {
		s.pending = th.Alloc()
	}
	n := th.Node(s.pending)
	n.Val.Store(v)
	n.Next.Store(0)
	newPtr := arena.MakePtr(s.pending)
	for {
		last := arena.Ptr(s.q.tail.Load())
		next := arena.Ptr(th.Node(last.Slot()).Next.Load())
		if arena.Ptr(s.q.tail.Load()) != last {
			continue
		}
		if !next.IsNil() {
			s.q.tail.CompareAndSwap(uint64(last), uint64(next))
			continue
		}
		if th.Node(last.Slot()).Next.CompareAndSwap(0, uint64(newPtr)) {
			s.q.tail.CompareAndSwap(uint64(last), uint64(newPtr))
			s.pending = arena.NoSlot
			return
		}
	}
}

func (s *ebrQSession) Dequeue() (uint64, bool) {
	th := s.t
	th.OnOpStart()
	defer th.OnOpEnd()
	for {
		first := arena.Ptr(s.q.head.Load())
		last := arena.Ptr(s.q.tail.Load())
		next := arena.Ptr(th.Node(first.Slot()).Next.Load())
		if arena.Ptr(s.q.head.Load()) != first {
			continue
		}
		if first == last {
			if next.IsNil() {
				return 0, false
			}
			s.q.tail.CompareAndSwap(uint64(last), uint64(next))
			continue
		}
		v := th.Node(next.Slot()).Val.Load()
		if s.q.head.CompareAndSwap(uint64(first), uint64(next)) {
			th.Retire(first.Slot())
			return v, true
		}
	}
}

// NoReclQueue is the Michael-Scott queue without reclamation.
type NoReclQueue struct {
	mgr  *norecl.Manager[Node]
	head atomic.Uint64
	tail atomic.Uint64
}

// NewNoRecl builds an empty queue sized by cfg.
func NewNoRecl(cfg norecl.Config) *NoReclQueue {
	q := &NoReclQueue{mgr: norecl.NewManager[Node](cfg, ResetNode)}
	s := q.mgr.Thread(0).Alloc()
	q.head.Store(uint64(arena.MakePtr(s)))
	q.tail.Store(uint64(arena.MakePtr(s)))
	return q
}

// Manager exposes the underlying manager.
func (q *NoReclQueue) Manager() *norecl.Manager[Node] { return q.mgr }

// Scheme implements smr.Queue.
func (q *NoReclQueue) Scheme() smr.Scheme { return smr.NoRecl }

// Stats implements smr.Queue.
func (q *NoReclQueue) Stats() smr.Stats { return q.mgr.Stats() }

// QueueSession implements smr.Queue.
func (q *NoReclQueue) QueueSession(tid int) smr.QueueSession {
	return &nrQSession{q: q, t: q.mgr.Thread(tid), pending: arena.NoSlot}
}

type nrQSession struct {
	q       *NoReclQueue
	t       *norecl.Thread[Node]
	pending uint32
}

func (s *nrQSession) Enqueue(v uint64) {
	th := s.t
	if s.pending == arena.NoSlot {
		s.pending = th.Alloc()
	}
	n := th.Node(s.pending)
	n.Val.Store(v)
	n.Next.Store(0)
	newPtr := arena.MakePtr(s.pending)
	for {
		last := arena.Ptr(s.q.tail.Load())
		next := arena.Ptr(th.Node(last.Slot()).Next.Load())
		if arena.Ptr(s.q.tail.Load()) != last {
			continue
		}
		if !next.IsNil() {
			s.q.tail.CompareAndSwap(uint64(last), uint64(next))
			continue
		}
		if th.Node(last.Slot()).Next.CompareAndSwap(0, uint64(newPtr)) {
			s.q.tail.CompareAndSwap(uint64(last), uint64(newPtr))
			s.pending = arena.NoSlot
			return
		}
	}
}

func (s *nrQSession) Dequeue() (uint64, bool) {
	th := s.t
	for {
		first := arena.Ptr(s.q.head.Load())
		last := arena.Ptr(s.q.tail.Load())
		next := arena.Ptr(th.Node(first.Slot()).Next.Load())
		if arena.Ptr(s.q.head.Load()) != first {
			continue
		}
		if first == last {
			if next.IsNil() {
				return 0, false
			}
			s.q.tail.CompareAndSwap(uint64(last), uint64(next))
			continue
		}
		v := th.Node(next.Slot()).Val.Load()
		if s.q.head.CompareAndSwap(uint64(first), uint64(next)) {
			th.Retire(first.Slot())
			return v, true
		}
	}
}
