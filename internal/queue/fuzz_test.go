package queue_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/queue"
)

// FuzzOAQueueVsModel drives the OA Michael-Scott queue with a byte-encoded
// enqueue/dequeue sequence against a model slice, on a tiny arena so that
// sentinels recycle constantly.
func FuzzOAQueueVsModel(f *testing.F) {
	f.Add([]byte{1, 1, 1, 0, 0, 0, 1, 0})
	f.Add([]byte{0})
	f.Add([]byte{1, 1, 0, 1, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		q := queue.NewOA(core.Config{MaxThreads: 1, Capacity: 300, LocalPool: 4})
		s := q.QueueSession(0)
		var model []uint64
		next := uint64(1)
		for i, b := range data {
			if b&1 == 1 && len(model) < 256 {
				s.Enqueue(next)
				model = append(model, next)
				next++
			} else {
				v, ok := s.Dequeue()
				if len(model) == 0 {
					if ok {
						t.Fatalf("op %d: dequeued %d from empty queue", i, v)
					}
					continue
				}
				if !ok || v != model[0] {
					t.Fatalf("op %d: Dequeue = %d,%v want %d", i, v, ok, model[0])
				}
				model = model[1:]
			}
		}
		for _, want := range model {
			v, ok := s.Dequeue()
			if !ok || v != want {
				t.Fatalf("drain: Dequeue = %d,%v want %d", v, ok, want)
			}
		}
		if _, ok := s.Dequeue(); ok {
			t.Fatal("queue not empty after drain")
		}
	})
}
