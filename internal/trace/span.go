// Request spans: the per-request timeline the server threads through its
// pipeline (ingress read → shard route → lease acquire → data-structure
// op → response queue). A Span is a tiny stack/struct-resident stopwatch
// — marking a stage is one monotonic clock read and one add, so the
// instrumented request path stays allocation-free — and Emit flushes a
// sampled span into a thread's event ring as req_stage/req_span events,
// where it lands on the same timeline as the reclamation events
// (restarts, drains, phase transitions) that explain its exec stage.
package trace

// Stage identifies one segment of a server request span.
type Stage uint8

const (
	// StageRead is socket wait plus frame decode. For an idle connection
	// it is dominated by client think time, so it is excluded from the
	// span's server-side total; for a saturated pipeline it measures
	// ingress pressure.
	StageRead Stage = iota
	// StageRoute is key hashing and shard selection.
	StageRoute
	// StageLease is session acquisition on the routed shard (zero once a
	// connection holds the shard's lease; up to LeaseWait under churn).
	StageLease
	// StageExec is the data-structure operation itself, including any
	// scheme-forced restarts and drain work it absorbed.
	StageExec
	// StageQueue is the hand-off of the encoded response to the writer —
	// the wait on the bounded in-flight window. Actual socket flush is
	// batched across requests by the writer and not individually
	// attributable; the queue wait is exactly the backpressure that
	// batching lag creates.
	StageQueue

	// NumStages sizes per-span stage arrays.
	NumStages
)

var stageNames = [NumStages]string{"read", "route", "lease", "exec", "queue"}

// String returns the snake_case export name of the stage.
func (st Stage) String() string {
	if st >= NumStages {
		return "unknown"
	}
	return stageNames[st]
}

// Span accumulates one request's per-stage durations. The zero value is
// ready after Begin; a Span is owned by one goroutine (the connection's
// reader) and reused across requests.
type Span struct {
	mark int64
	dur  [NumStages]int64
}

// Begin resets the span and starts the clock.
func (sp *Span) Begin() {
	sp.mark = Now()
	for i := range sp.dur {
		sp.dur[i] = 0
	}
}

// Mark attributes the time since the previous mark (or Begin) to stage
// st and restarts the clock. Marking the same stage twice accumulates —
// a variadic RESP command's repeated route/lease/exec legs merge into
// one span.
func (sp *Span) Mark(st Stage) {
	now := Now()
	sp.dur[st] += now - sp.mark
	sp.mark = now
}

// Dur returns the accumulated duration of one stage in nanoseconds.
func (sp *Span) Dur(st Stage) int64 { return sp.dur[st] }

// Durations returns the per-stage durations, indexed by Stage.
func (sp *Span) Durations() [NumStages]int64 { return sp.dur }

// ServerNs is the span's server-side total: every stage except
// StageRead, whose socket wait belongs to the client.
func (sp *Span) ServerNs() int64 {
	var t int64
	for st := StageRoute; st < NumStages; st++ {
		t += sp.dur[st]
	}
	return t
}

// Emit records the span into ring r: one req_stage event per non-empty
// stage, then the req_span summary. Wait-free and allocation-free (it is
// a handful of Ring.Record calls); the caller owns r's single-writer
// discipline — the server emits while it holds the routed shard's
// session, whose ring nothing else is writing.
func (sp *Span) Emit(r *Ring, op, status uint8, shard int) {
	for st := Stage(0); st < NumStages; st++ {
		if d := sp.dur[st]; d > 0 {
			r.Record(EvReqStage, StagePayload(st, d))
		}
	}
	r.Record(EvReqSpan, SpanPayload(op, status, shard, sp.ServerNs()))
}

// Span payload layout: op in bits 63..60, status in 59..52, shard in
// 51..42, server-side ns saturated into the low 42 bits (~1.2 hours).
const spanNsMask = 1<<42 - 1

// SpanPayload packs a req_span summary payload.
func SpanPayload(op, status uint8, shard int, ns int64) uint64 {
	if ns < 0 {
		ns = 0
	}
	if ns > spanNsMask {
		ns = spanNsMask
	}
	return uint64(op&0xF)<<60 | uint64(status)<<52 | uint64(shard&0x3FF)<<42 | uint64(ns)
}

// SpanOp unpacks the opcode of a req_span payload.
func SpanOp(p uint64) uint8 { return uint8(p >> 60) }

// SpanStatus unpacks the status of a req_span payload.
func SpanStatus(p uint64) uint8 { return uint8(p >> 52 & 0xFF) }

// SpanShard unpacks the shard of a req_span payload.
func SpanShard(p uint64) int { return int(p >> 42 & 0x3FF) }

// SpanNs unpacks the server-side duration of a req_span payload.
func SpanNs(p uint64) int64 { return int64(p & spanNsMask) }

// Stage payload layout: stage id in the top 4 bits, ns saturated into
// the low 60.
const stageNsMask = 1<<60 - 1

// StagePayload packs a req_stage payload.
func StagePayload(st Stage, ns int64) uint64 {
	if ns < 0 {
		ns = 0
	}
	if ns > stageNsMask {
		ns = stageNsMask
	}
	return uint64(st)<<60 | uint64(ns)
}

// StageOf unpacks the stage of a req_stage payload.
func StageOf(p uint64) Stage { return Stage(p >> 60) }

// StageNs unpacks the duration of a req_stage payload.
func StageNs(p uint64) int64 { return int64(p & stageNsMask) }
