// Package trace is the reclamation event recorder: a lock-free,
// per-thread fixed-size ring of small protocol events (phase transitions,
// warning traffic, restarts with their cause, drain passes, shard
// freezes/steals, allocation-pool refills) timestamped on a monotonic
// clock. Counters (package obs) answer "how many restarts"; the trace
// answers "which phase transition caused this p999 spike" — the timeline
// view RCU/epoch practice calls event tracing.
//
// Design constraints, in order:
//
//  1. Recording must be wait-free and allocation-free: each event is a
//     few uncontended atomic stores into a ring owned by the recording
//     thread, followed by one release-store of the head. No CAS, no
//     locks, no heap traffic (zeroalloc_test.go keeps this honest).
//  2. Disabled cost is one predictable branch: every instrumentation
//     site is gated on the global Enabled flag, mirroring obs.Enabled.
//  3. Export never stops writers: a snapshot copies the ring while the
//     owner keeps recording and discards the prefix that may have been
//     overwritten mid-copy (see Ring.Snapshot), so readers get a
//     consistent suffix of the event history, never a torn event.
package trace

import (
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// Kind identifies one protocol event type.
type Kind uint8

// The protocol events the schemes record. OA produces all of them; the
// baseline schemes map their analogous sites onto the shared kinds
// (HP/anchors scans and EBR reclaim passes record EvDrain, epoch/era
// advances record EvPhase, validation failures record EvRestart).
const (
	// EvPhase is a reclamation phase transition: the recording thread's
	// local phase advanced (OA), the global epoch advanced (EBR) or the
	// era moved (anchors). Payload: the new phase/epoch value.
	EvPhase Kind = iota + 1
	// EvWarnSet is the recycler's warning broadcast before recycling
	// anything (Algorithm 6 line 12). Payload: the announced phase.
	EvWarnSet
	// EvWarnCheck is a read barrier (Algorithm 1) observing the warning
	// bit set. Payload: the phase stamped in the warning word.
	EvWarnCheck
	// EvWarnAck is the thread clearing its warning bit, acknowledging
	// the phase. Payload: the acknowledged phase.
	EvWarnAck
	// EvRestart is an operation restart forced by the scheme. Payload:
	// a Cause value.
	EvRestart
	// EvDrain is one drain/scan/reclaim pass over retired slots.
	// Payload: recycled count in the low 32 bits, re-retired (still
	// protected) count in the high 32 bits — see DrainPayload.
	EvDrain
	// EvFreeze is one retire-pool shard frozen by this thread during a
	// phase swap (the odd-version CAS of Algorithm 6 / §4). Payload:
	// phase in the high 32 bits, shard index in the low 32.
	EvFreeze
	// EvSteal is a block pop served by a shard other than the popping
	// thread's home. Payload: the shard the block came from.
	EvSteal
	// EvRefill is a local allocation-block refill from the shared pool.
	// Payload: the shard the block came from (0 for unsharded pools).
	EvRefill
	// EvLease is a thread context leased to a dynamic worker (a server
	// connection binding itself to the fixed registry). Payload: an
	// owner id chosen by the leasing layer (the server's connection id).
	EvLease
	// EvUnlease is the matching context release back to the free pool.
	// Payload: the same owner id.
	EvUnlease
	// EvReqSpan summarizes one sampled server request: the span helper
	// (span.go) emits it after the response is handed to the writer.
	// Payload: SpanPayload (opcode, status, shard, server-side ns).
	EvReqSpan
	// EvReqStage is one pipeline stage of a sampled request span (read,
	// route, lease, exec, queue), emitted just before its EvReqSpan.
	// Payload: StagePayload (stage id, stage ns).
	EvReqStage
	// EvRingEnq is a sampled request enqueue onto a shard's bounded MPMC
	// ring (batched execution mode), recorded in the producer session's
	// ring. Payload: shard in the high 32 bits, ring depth after the
	// enqueue in the low 32.
	EvRingEnq
	// EvRingDeq is the matching sampled dequeue by the shard's executor,
	// recorded in the executor session's ring. Payload: shard in the
	// high 32 bits, ring wait in nanoseconds saturated into the low 32.
	EvRingDeq
	// EvBatch is one executor drain batch: the executor found the ring
	// non-empty and ran requests back-to-back under its single lease.
	// Payload: shard in the high 32 bits, batch size in the low 32.
	EvBatch
	// EvHealth is a health-engine state transition: the flight
	// recorder's rule evaluation moved the process between ok, degraded
	// and critical. Payload: HealthPayload (old state, new state, firing
	// rule bitmask) — see internal/flight.
	EvHealth

	numKinds
)

var kindNames = [numKinds]string{
	"", "phase", "warn_set", "warn_check", "warn_ack",
	"restart", "drain", "shard_freeze", "shard_steal", "refill",
	"lease", "unlease", "req_span", "req_stage",
	"ring_enq", "ring_deq", "exec_batch", "health",
}

// HealthPayload packs a health-state transition into one event payload:
// the previous and new state in the low two bytes and a bitmask of
// firing rule indices in the high 32 bits.
func HealthPayload(old, new uint8, firing uint32) uint64 {
	return uint64(firing)<<32 | uint64(new)<<8 | uint64(old)
}

// UnpackHealth reverses HealthPayload.
func UnpackHealth(p uint64) (old, new uint8, firing uint32) {
	return uint8(p), uint8(p >> 8), uint32(p >> 32)
}

// String returns the snake_case export name of the kind.
func (k Kind) String() string {
	if k == 0 || k >= numKinds {
		return "unknown"
	}
	return kindNames[k]
}

// Cause is the payload of an EvRestart event: why the scheme forced the
// enclosing operation to start over.
type Cause uint64

const (
	// CauseRead: an OA read barrier (Algorithm 1) caught a warning after
	// an optimistic read.
	CauseRead Cause = iota + 1
	// CauseWrite: the pre-CAS barrier (Algorithm 2, ProtectCAS) caught a
	// warning before an observable write.
	CauseWrite
	// CauseSeal: the end-of-generator barrier (Algorithm 3,
	// SealGenerator) caught a warning after installing owner HPs.
	CauseSeal
	// CauseValidate: a hazard-pointer validation failed (HP scheme).
	CauseValidate
	// CauseAnchor: an anchor validation failed (anchors recovery).
	CauseAnchor

	numCauses
)

var causeNames = [numCauses]string{
	"", "read_barrier", "write_barrier", "seal_barrier", "hp_validate", "anchor_recovery",
}

// String returns the snake_case export name of the cause.
func (c Cause) String() string {
	if c == 0 || c >= numCauses {
		return "unknown"
	}
	return causeNames[c]
}

// DrainPayload packs a drain pass's recycled and re-retired counts into
// one payload word (each saturated to 32 bits).
func DrainPayload(recycled, reRetired uint64) uint64 {
	if recycled > 0xFFFFFFFF {
		recycled = 0xFFFFFFFF
	}
	if reRetired > 0xFFFFFFFF {
		reRetired = 0xFFFFFFFF
	}
	return reRetired<<32 | recycled
}

// FreezePayload packs a shard freeze's phase and shard index.
func FreezePayload(phase uint32, shard int) uint64 {
	return uint64(phase)<<32 | uint64(uint32(shard))
}

// RingPayload packs a ring event's shard index (high 32 bits) with its
// 32-bit metric — depth for ring_enq, wait ns for ring_deq, batch size
// for exec_batch — saturated into the low bits.
func RingPayload(shard int, v uint64) uint64 {
	if v > 0xFFFFFFFF {
		v = 0xFFFFFFFF
	}
	return uint64(uint32(shard))<<32 | v
}

// RingShard unpacks the shard index of a ring event payload.
func RingShard(p uint64) int { return int(uint32(p >> 32)) }

// RingValue unpacks the metric of a ring event payload.
func RingValue(p uint64) uint64 { return p & 0xFFFFFFFF }

// enabled gates every recording site, exactly like obs.Enabled: one
// atomic load (a plain MOV on x86) per site when off.
var enabled atomic.Bool

// Enabled reports whether events are being recorded.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns event recording on or off. Toggling mid-run only
// affects which events land in the rings, never safety.
func SetEnabled(v bool) { enabled.Store(v) }

// epoch anchors the trace clock: timestamps are monotonic nanoseconds
// since process start (time.Since reads the monotonic clock and does not
// allocate). One process-wide epoch keeps every ring's timestamps
// directly comparable, which is what lets exporters merge-sort them.
var epoch = time.Now()

// Now returns the current trace timestamp.
func Now() int64 { return int64(time.Since(epoch)) }

// Event is one exported trace event.
type Event struct {
	// TS is the event's monotonic timestamp (nanoseconds since process
	// start).
	TS int64
	// Arg is the event's single payload word (see the Kind docs).
	Arg uint64
	// Seq is the event's position in its thread's recording order.
	Seq uint64
	// TID is the recording thread context id.
	TID int32
	// Kind is the event type.
	Kind Kind
}

// slot is the in-ring representation. Fields are atomics so a concurrent
// snapshot never data-races with the owner's stores; slots that may have
// been rewritten mid-copy are discarded by index (Snapshot), so exported
// events are never assembled from two different writes.
type slot struct {
	ts   atomic.Int64
	arg  atomic.Uint64
	kind atomic.Uint64
}

// Ring is one thread's fixed-size event ring. Record may only be called
// by the owning thread; Snapshot may run concurrently from any
// goroutine.
type Ring struct {
	slots []slot
	mask  uint64
	tid   int32
	// head is the next write index (monotonic, not wrapped): the ring
	// holds events [head-len, head). The owner publishes it after the
	// slot stores; Go atomics give the store release semantics, so a
	// reader that observes head >= i observes event i's fields.
	head atomic.Uint64
	_    [40]byte // pad: keep adjacent rings' heads off one cache line
}

// TID returns the owning thread context id.
func (r *Ring) TID() int { return int(r.tid) }

// Cap returns the ring capacity in events.
func (r *Ring) Cap() int { return len(r.slots) }

// Recorded returns how many events were ever recorded (including ones
// the ring has since overwritten).
func (r *Ring) Recorded() uint64 { return r.head.Load() }

// Record appends one event with the current timestamp. Wait-free: three
// uncontended atomic stores plus the head publish, no allocation. Only
// the owning thread may call it.
func (r *Ring) Record(k Kind, arg uint64) {
	h := r.head.Load() // single writer: uncontended
	s := &r.slots[h&r.mask]
	s.ts.Store(Now())
	s.arg.Store(arg)
	s.kind.Store(uint64(k))
	r.head.Store(h + 1)
}

// Snapshot appends the ring's current contents to dst (oldest first) and
// returns the result. It never blocks the writer: the ring indices are
// copied optimistically, then the head is re-read and every event whose
// slot the writer may have started rewriting during the copy — indices
// at or below head₁−cap, where head₁ is the post-copy head — is
// discarded. What remains is a gap-free, torn-free suffix of the
// thread's event history. Because a Record can be mid-rewrite of the
// oldest slot without having published, a wrapped ring yields at most
// cap−1 events even when the writer is quiescent.
func (r *Ring) Snapshot(dst []Event) []Event {
	size := uint64(len(r.slots))
	if size == 0 {
		return dst
	}
	h0 := r.head.Load()
	lo := uint64(0)
	if h0 > size {
		lo = h0 - size
	}
	first := len(dst)
	for i := lo; i < h0; i++ {
		s := &r.slots[i&r.mask]
		dst = append(dst, Event{
			TS:   s.ts.Load(),
			Arg:  s.arg.Load(),
			Seq:  i,
			TID:  r.tid,
			Kind: Kind(s.kind.Load()),
		})
	}
	h1 := r.head.Load()
	if h1 >= size {
		// A writer mid-Record at index h≥head₁ may be rewriting the slot
		// of old index h−size without having published h+1 yet, so the
		// oldest index guaranteed stable is head₁−size+1.
		if safeLo := h1 - size + 1; safeLo > lo {
			if drop := int(safeLo - lo); drop >= len(dst)-first {
				// The writer lapped the whole copy; nothing is stable.
				dst = dst[:first]
			} else {
				n := copy(dst[first:], dst[first+drop:])
				dst = dst[:first+n]
			}
		}
	}
	return dst
}

// Recorder owns one ring per thread context.
type Recorder struct {
	rings []Ring
}

// DefaultRingSize is the per-thread ring capacity used when a size of 0
// is requested: 1024 events × 24 bytes = 24 KiB per thread, enough for
// several full reclamation phases of context around any spike.
const DefaultRingSize = 1024

// NewRecorder allocates rings for n threads, each holding size events
// (rounded up to a power of two; 0 means DefaultRingSize).
func NewRecorder(n, size int) *Recorder {
	if n < 1 {
		n = 1
	}
	if size <= 0 {
		size = DefaultRingSize
	}
	if size&(size-1) != 0 {
		size = 1 << bits.Len(uint(size))
	}
	rec := &Recorder{rings: make([]Ring, n)}
	for i := range rec.rings {
		rec.rings[i].slots = make([]slot, size)
		rec.rings[i].mask = uint64(size - 1)
		rec.rings[i].tid = int32(i)
	}
	return rec
}

// Threads returns the number of rings.
func (rec *Recorder) Threads() int { return len(rec.rings) }

// Ring returns thread tid's ring.
func (rec *Recorder) Ring(tid int) *Ring { return &rec.rings[tid] }

// Total returns how many events were ever recorded across all rings.
func (rec *Recorder) Total() uint64 {
	var n uint64
	for i := range rec.rings {
		n += rec.rings[i].head.Load()
	}
	return n
}

// Events snapshots every ring and returns the merged events sorted by
// timestamp (ties broken by thread id, then sequence). Safe to call
// while threads record.
func (rec *Recorder) Events() []Event {
	var out []Event
	for i := range rec.rings {
		out = rec.rings[i].Snapshot(out)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.Seq < b.Seq
	})
	return out
}
