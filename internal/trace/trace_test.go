package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestKindAndCauseNames(t *testing.T) {
	for k := Kind(1); k < numKinds; k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(0).String() != "unknown" || Kind(200).String() != "unknown" {
		t.Fatalf("out-of-range kinds must stringify as unknown")
	}
	for c := Cause(1); c < numCauses; c++ {
		if c.String() == "unknown" || c.String() == "" {
			t.Fatalf("cause %d has no name", c)
		}
	}
	if Cause(0).String() != "unknown" || Cause(200).String() != "unknown" {
		t.Fatalf("out-of-range causes must stringify as unknown")
	}
}

func TestPayloadPacking(t *testing.T) {
	p := DrainPayload(7, 9)
	if p&0xFFFFFFFF != 7 || p>>32 != 9 {
		t.Fatalf("DrainPayload mispacked: %x", p)
	}
	if p := DrainPayload(1<<40, 1<<40); p&0xFFFFFFFF != 0xFFFFFFFF || p>>32 != 0xFFFFFFFF {
		t.Fatalf("DrainPayload must saturate: %x", p)
	}
	f := FreezePayload(42, 3)
	if f>>32 != 42 || f&0xFFFFFFFF != 3 {
		t.Fatalf("FreezePayload mispacked: %x", f)
	}
}

func TestEnabledToggle(t *testing.T) {
	if Enabled() {
		t.Fatalf("tracing must default off")
	}
	SetEnabled(true)
	if !Enabled() {
		t.Fatalf("SetEnabled(true) not visible")
	}
	SetEnabled(false)
}

func TestRecorderSizing(t *testing.T) {
	rec := NewRecorder(0, 0)
	if rec.Threads() != 1 || rec.Ring(0).Cap() != DefaultRingSize {
		t.Fatalf("defaults: threads=%d cap=%d", rec.Threads(), rec.Ring(0).Cap())
	}
	rec = NewRecorder(3, 100) // rounds up to 128
	if rec.Threads() != 3 || rec.Ring(2).Cap() != 128 {
		t.Fatalf("rounding: threads=%d cap=%d", rec.Threads(), rec.Ring(2).Cap())
	}
	if rec.Ring(1).TID() != 1 {
		t.Fatalf("tid mismatch")
	}
}

// TestRingWrapAround records more events than the ring holds and checks
// the snapshot is the newest cap−1 events (the oldest slot is always
// discarded once wrapped: a Record could be rewriting it unpublished),
// oldest first, with sequence numbers intact.
func TestRingWrapAround(t *testing.T) {
	rec := NewRecorder(1, 8)
	r := rec.Ring(0)
	const total = 8*3 + 5
	for i := 0; i < total; i++ {
		r.Record(EvPhase, uint64(i))
	}
	if r.Recorded() != total {
		t.Fatalf("Recorded=%d want %d", r.Recorded(), total)
	}
	evs := r.Snapshot(nil)
	if len(evs) != 7 {
		t.Fatalf("snapshot len=%d want 7", len(evs))
	}
	for i, e := range evs {
		wantSeq := uint64(total - 7 + i)
		if e.Seq != wantSeq || e.Arg != wantSeq || e.Kind != EvPhase || e.TID != 0 {
			t.Fatalf("event %d = %+v, want seq/arg %d", i, e, wantSeq)
		}
		if i > 0 && e.TS < evs[i-1].TS {
			t.Fatalf("timestamps not monotone at %d", i)
		}
	}
}

// TestSnapshotWhileRecording hammers one ring from its owner while a
// reader snapshots continuously. Every snapshot must be a gap-free run of
// sequence numbers whose Arg matches Seq (we record arg=seq), proving no
// torn or stale slot ever escapes.
func TestSnapshotWhileRecording(t *testing.T) {
	rec := NewRecorder(1, 64)
	r := rec.Ring(0)
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); !stop.Load(); i++ {
			r.Record(EvWarnCheck, i)
		}
	}()
	var buf []Event
	for snaps := 0; snaps < 2000; snaps++ {
		buf = r.Snapshot(buf[:0])
		for i, e := range buf {
			if e.Arg != e.Seq {
				t.Errorf("torn event: seq=%d arg=%d", e.Seq, e.Arg)
				stop.Store(true)
				wg.Wait()
				return
			}
			if i > 0 && e.Seq != buf[i-1].Seq+1 {
				t.Errorf("gap in snapshot: %d then %d", buf[i-1].Seq, e.Seq)
				stop.Store(true)
				wg.Wait()
				return
			}
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestRecorderEventsMerge checks cross-ring merge ordering.
func TestRecorderEventsMerge(t *testing.T) {
	rec := NewRecorder(3, 16)
	for round := 0; round < 5; round++ {
		for tid := 0; tid < 3; tid++ {
			rec.Ring(tid).Record(EvDrain, DrainPayload(uint64(round), 0))
		}
	}
	if rec.Total() != 15 {
		t.Fatalf("Total=%d want 15", rec.Total())
	}
	evs := rec.Events()
	if len(evs) != 15 {
		t.Fatalf("Events len=%d want 15", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		a, b := evs[i-1], evs[i]
		if b.TS < a.TS {
			t.Fatalf("merge not time-sorted at %d", i)
		}
		if b.TS == a.TS && (b.TID < a.TID || (b.TID == a.TID && b.Seq < a.Seq)) {
			t.Fatalf("merge tie-break wrong at %d", i)
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	events := []Event{
		{TS: 1500, TID: 0, Seq: 0, Kind: EvPhase, Arg: 7},
		{TS: 2000, TID: 1, Seq: 0, Kind: EvRestart, Arg: uint64(CauseWrite)},
		{TS: 2500, TID: 1, Seq: 1, Kind: EvDrain, Arg: DrainPayload(11, 3)},
		{TS: 3000, TID: 2, Seq: 0, Kind: EvFreeze, Arg: FreezePayload(9, 2)},
		{TS: 3500, TID: 2, Seq: 1, Kind: EvSteal, Arg: 5},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(events) {
		t.Fatalf("got %d lines want %d", len(lines), len(events))
	}
	var decoded []map[string]any
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %q: %v", ln, err)
		}
		decoded = append(decoded, m)
	}
	if decoded[0]["kind"] != "phase" || decoded[0]["phase"] != float64(7) {
		t.Fatalf("phase line wrong: %v", decoded[0])
	}
	if decoded[1]["cause"] != "write_barrier" {
		t.Fatalf("restart line wrong: %v", decoded[1])
	}
	if decoded[2]["recycled"] != float64(11) || decoded[2]["re_retired"] != float64(3) {
		t.Fatalf("drain line wrong: %v", decoded[2])
	}
	if decoded[3]["phase"] != float64(9) || decoded[3]["shard"] != float64(2) {
		t.Fatalf("freeze line wrong: %v", decoded[3])
	}
	if decoded[4]["shard"] != float64(5) || decoded[4]["tid"] != float64(2) {
		t.Fatalf("steal line wrong: %v", decoded[4])
	}
}

func TestWriteChrome(t *testing.T) {
	events := []Event{
		{TS: 1500, TID: 0, Seq: 0, Kind: EvPhase, Arg: 7},
		{TS: 123456789, TID: 3, Seq: 9, Kind: EvRestart, Arg: uint64(CauseRead)},
		{TS: 2000, TID: 1, Seq: 0, Kind: EvRefill, Arg: 1},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			S    string         `json:"s"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			TS   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid chrome trace JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d events want 3", len(doc.TraceEvents))
	}
	e0 := doc.TraceEvents[0]
	if e0.Name != "phase" || e0.Ph != "i" || e0.S != "t" || e0.TS != 1.5 {
		t.Fatalf("event 0 wrong: %+v", e0)
	}
	e1 := doc.TraceEvents[1]
	if e1.Name != "restart" || e1.Tid != 3 || e1.TS != 123456.789 ||
		e1.Args["cause"] != "read_barrier" {
		t.Fatalf("event 1 wrong: %+v", e1)
	}
	if doc.TraceEvents[2].TS != 2 {
		t.Fatalf("whole-µs timestamp must have no fraction: %+v", doc.TraceEvents[2])
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty chrome doc invalid: %v", err)
	}
}

func BenchmarkRecord(b *testing.B) {
	rec := NewRecorder(1, DefaultRingSize)
	r := rec.Ring(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(EvWarnCheck, uint64(i))
	}
}
