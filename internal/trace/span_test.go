package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanPayloadPacking(t *testing.T) {
	p := SpanPayload(4, 8, 1023, 123456789)
	if SpanOp(p) != 4 || SpanStatus(p) != 8 || SpanShard(p) != 1023 || SpanNs(p) != 123456789 {
		t.Fatalf("span payload roundtrip: op=%d status=%d shard=%d ns=%d",
			SpanOp(p), SpanStatus(p), SpanShard(p), SpanNs(p))
	}
	// Saturation, not wraparound, on oversized and negative durations.
	if SpanNs(SpanPayload(1, 0, 0, 1<<62)) != spanNsMask {
		t.Fatal("span ns did not saturate")
	}
	if SpanNs(SpanPayload(1, 0, 0, -5)) != 0 {
		t.Fatal("negative span ns did not clamp to zero")
	}
	q := StagePayload(StageExec, 42)
	if StageOf(q) != StageExec || StageNs(q) != 42 {
		t.Fatalf("stage payload roundtrip: stage=%v ns=%d", StageOf(q), StageNs(q))
	}
	if StageNs(StagePayload(StageRead, -1)) != 0 {
		t.Fatal("negative stage ns did not clamp to zero")
	}
}

func TestStageNames(t *testing.T) {
	want := []string{"read", "route", "lease", "exec", "queue"}
	for st := Stage(0); st < NumStages; st++ {
		if st.String() != want[st] {
			t.Fatalf("stage %d name %q, want %q", st, st.String(), want[st])
		}
	}
	if Stage(200).String() != "unknown" {
		t.Fatal("out-of-range stage must render unknown")
	}
	if EvReqSpan.String() != "req_span" || EvReqStage.String() != "req_stage" {
		t.Fatalf("kind names: %q %q", EvReqSpan.String(), EvReqStage.String())
	}
}

func TestSpanMarkAccumulates(t *testing.T) {
	var sp Span
	sp.Begin()
	time.Sleep(time.Millisecond)
	sp.Mark(StageRead)
	sp.Mark(StageRoute)
	time.Sleep(time.Millisecond)
	sp.Mark(StageExec)
	time.Sleep(time.Millisecond)
	sp.Mark(StageExec) // second leg of the same stage merges
	if sp.Dur(StageRead) < int64(time.Millisecond) {
		t.Fatalf("read stage %dns, want >= 1ms", sp.Dur(StageRead))
	}
	if sp.Dur(StageExec) < int64(2*time.Millisecond) {
		t.Fatalf("exec stage %dns did not accumulate across marks", sp.Dur(StageExec))
	}
	if got := sp.ServerNs(); got != sp.Dur(StageRoute)+sp.Dur(StageLease)+sp.Dur(StageExec)+sp.Dur(StageQueue) {
		t.Fatalf("ServerNs %d does not sum the non-read stages", got)
	}
	if sp.ServerNs() >= sp.Dur(StageRead)+sp.ServerNs()+1 {
		t.Fatal("ServerNs must exclude the read stage")
	}
	// Begin resets every stage.
	sp.Begin()
	for st := Stage(0); st < NumStages; st++ {
		if sp.Dur(st) != 0 {
			t.Fatalf("stage %v not reset by Begin", st)
		}
	}
}

func TestSpanEmit(t *testing.T) {
	rec := NewRecorder(1, 64)
	r := rec.Ring(0)
	var sp Span
	sp.Begin()
	sp.Mark(StageRead)
	sp.Mark(StageRoute)
	time.Sleep(100 * time.Microsecond)
	sp.Mark(StageExec)
	sp.Emit(r, 2, 0, 3)

	evs := rec.Events()
	if len(evs) < 2 {
		t.Fatalf("got %d events, want stage events plus the summary", len(evs))
	}
	last := evs[len(evs)-1]
	if last.Kind != EvReqSpan {
		t.Fatalf("last event kind %v, want req_span", last.Kind)
	}
	if SpanOp(last.Arg) != 2 || SpanShard(last.Arg) != 3 {
		t.Fatalf("summary decodes op=%d shard=%d, want 2/3", SpanOp(last.Arg), SpanShard(last.Arg))
	}
	if SpanNs(last.Arg) != sp.ServerNs() {
		t.Fatalf("summary ns %d != ServerNs %d", SpanNs(last.Arg), sp.ServerNs())
	}
	sawExec := false
	for _, e := range evs[:len(evs)-1] {
		if e.Kind != EvReqStage {
			t.Fatalf("expected req_stage before the summary, got %v", e.Kind)
		}
		if StageOf(e.Arg) == StageExec {
			sawExec = true
			if StageNs(e.Arg) != sp.Dur(StageExec) {
				t.Fatalf("exec stage ns %d != span %d", StageNs(e.Arg), sp.Dur(StageExec))
			}
		}
	}
	if !sawExec {
		t.Fatal("no exec stage event emitted")
	}

	// Both exporters must decode the new kinds into named fields.
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, evs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"kind":"req_span"`, `"server_ns":`, `"kind":"req_stage"`, `"stage":"exec"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSONL export missing %s:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("JSONL line %q: %v", line, err)
		}
	}
	buf.Reset()
	if err := WriteChrome(&buf, evs); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export invalid with span events: %v", err)
	}
}

func TestSpanDoesNotAllocate(t *testing.T) {
	rec := NewRecorder(1, 64)
	r := rec.Ring(0)
	var sp Span
	if avg := testing.AllocsPerRun(2000, func() {
		sp.Begin()
		sp.Mark(StageRead)
		sp.Mark(StageRoute)
		sp.Mark(StageLease)
		sp.Mark(StageExec)
		sp.Mark(StageQueue)
		sp.Emit(r, 1, 0, 0)
	}); avg > 0.05 {
		t.Fatalf("span mark+emit allocates %.2f objects/request", avg)
	}
}
