package trace

import (
	"bufio"
	"io"
	"strconv"
)

// Exporters. Both operate on the merged []Event from Recorder.Events (or
// any slice assembled by hand in tests) and write with stdlib only. The
// JSONL form is one self-describing object per line — trivially greppable
// and streamable. The Chrome form is the trace_event JSON array loadable
// in chrome://tracing and Perfetto: every event becomes an instant event
// ("ph":"i", thread scope) on the recording thread's track, with the
// decoded payload in "args" so the UI shows cause/phase/shard at a click.

// appendArgs decodes an event's payload word into JSON object fields
// (without braces), shared by both exporters so the two outputs never
// disagree on the decoding.
func appendArgs(b []byte, e Event) []byte {
	switch e.Kind {
	case EvRestart:
		b = append(b, `"cause":"`...)
		b = append(b, Cause(e.Arg).String()...)
		b = append(b, '"')
	case EvDrain:
		b = append(b, `"recycled":`...)
		b = strconv.AppendUint(b, e.Arg&0xFFFFFFFF, 10)
		b = append(b, `,"re_retired":`...)
		b = strconv.AppendUint(b, e.Arg>>32, 10)
	case EvFreeze:
		b = append(b, `"phase":`...)
		b = strconv.AppendUint(b, e.Arg>>32, 10)
		b = append(b, `,"shard":`...)
		b = strconv.AppendUint(b, e.Arg&0xFFFFFFFF, 10)
	case EvPhase, EvWarnSet, EvWarnCheck, EvWarnAck:
		b = append(b, `"phase":`...)
		b = strconv.AppendUint(b, e.Arg, 10)
	case EvSteal, EvRefill:
		b = append(b, `"shard":`...)
		b = strconv.AppendUint(b, e.Arg, 10)
	case EvLease, EvUnlease:
		b = append(b, `"owner":`...)
		b = strconv.AppendUint(b, e.Arg, 10)
	case EvReqSpan:
		b = append(b, `"op":`...)
		b = strconv.AppendUint(b, uint64(SpanOp(e.Arg)), 10)
		b = append(b, `,"status":`...)
		b = strconv.AppendUint(b, uint64(SpanStatus(e.Arg)), 10)
		b = append(b, `,"shard":`...)
		b = strconv.AppendInt(b, int64(SpanShard(e.Arg)), 10)
		b = append(b, `,"server_ns":`...)
		b = strconv.AppendInt(b, SpanNs(e.Arg), 10)
	case EvReqStage:
		b = append(b, `"stage":"`...)
		b = append(b, StageOf(e.Arg).String()...)
		b = append(b, `","ns":`...)
		b = strconv.AppendInt(b, StageNs(e.Arg), 10)
	default:
		b = append(b, `"arg":`...)
		b = strconv.AppendUint(b, e.Arg, 10)
	}
	return b
}

// WriteJSONL writes one JSON object per event per line:
//
//	{"ts_ns":12345,"tid":3,"seq":17,"kind":"restart","cause":"read_barrier"}
//
// The raw payload word is decoded into kind-specific fields (cause,
// recycled/re_retired, phase, shard) exactly as in the Chrome export.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	var b []byte
	for _, e := range events {
		b = b[:0]
		b = append(b, `{"ts_ns":`...)
		b = strconv.AppendInt(b, e.TS, 10)
		b = append(b, `,"tid":`...)
		b = strconv.AppendInt(b, int64(e.TID), 10)
		b = append(b, `,"seq":`...)
		b = strconv.AppendUint(b, e.Seq, 10)
		b = append(b, `,"kind":"`...)
		b = append(b, e.Kind.String()...)
		b = append(b, `",`...)
		b = appendArgs(b, e)
		b = append(b, '}', '\n')
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteChrome writes the events as a Chrome trace_event JSON document
// ({"traceEvents":[...]}) loadable in chrome://tracing and Perfetto.
// Each event is a thread-scoped instant event on track (pid 1, tid =
// thread context id); timestamps are the trace clock converted to
// microseconds with sub-µs precision preserved as a decimal fraction.
func WriteChrome(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	var b []byte
	for i, e := range events {
		b = b[:0]
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, "\n"+`{"name":"`...)
		b = append(b, e.Kind.String()...)
		b = append(b, `","ph":"i","s":"t","pid":1,"tid":`...)
		b = strconv.AppendInt(b, int64(e.TID), 10)
		b = append(b, `,"ts":`...)
		b = appendMicros(b, e.TS)
		b = append(b, `,"args":{`...)
		b = appendArgs(b, e)
		b = append(b, `}}`...)
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// appendMicros formats ns nanoseconds as decimal microseconds ("12.345")
// without going through float64, keeping exact nanosecond precision.
func appendMicros(b []byte, ns int64) []byte {
	if ns < 0 {
		// Cannot happen with the monotonic trace clock; clamp defensively
		// rather than emit JSON Chrome refuses.
		ns = 0
	}
	b = strconv.AppendInt(b, ns/1000, 10)
	if frac := ns % 1000; frac != 0 {
		b = append(b, '.', byte('0'+frac/100), byte('0'+frac/10%10), byte('0'+frac%10))
	}
	return b
}
