// Package norecl is the paper's NoRecl baseline: allocation from the shared
// object pool, retire as a no-op. It is the throughput denominator of every
// ratio the evaluation reports. Memory grows without bound, which is
// exactly the behaviour the paper ascribes to it ("only applicable to
// short-running programs", §1).
package norecl

import (
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/arena"
	"repro/internal/obs"
	"repro/internal/smr"
	"repro/internal/trace"
)

// Config parameterizes a Manager.
type Config struct {
	// MaxThreads is the fixed number of thread contexts.
	MaxThreads int
	// Capacity pre-charges the pool; the arena grows past it as needed.
	Capacity int
	// LocalPool is the allocation block-transfer size.
	LocalPool int
}

// Manager owns the pool and thread contexts.
type Manager[T any] struct {
	cfg     Config
	pool    *alloc.Pool[T]
	threads []*Thread[T]
	tracer  *trace.Recorder
}

// NewManager builds a manager; reset zeroes a node at allocation.
func NewManager[T any](cfg Config, reset func(*T)) *Manager[T] {
	if cfg.MaxThreads <= 0 {
		cfg.MaxThreads = 1
	}
	m := &Manager[T]{
		cfg:    cfg,
		pool:   alloc.New(cfg.Capacity, cfg.LocalPool, reset),
		tracer: trace.NewRecorder(cfg.MaxThreads, 0),
	}
	m.threads = make([]*Thread[T], cfg.MaxThreads)
	for i := range m.threads {
		t := &Thread[T]{mgr: m, id: i, view: m.pool.Arena().View()}
		t.local.Trace = m.tracer.Ring(i)
		m.threads[i] = t
	}
	return m
}

// TraceRecorder exposes the per-thread event rings. NoRecl never
// recycles, so the only events are allocation-pool refills — a useful
// denominator when comparing refill cadence across schemes.
func (m *Manager[T]) TraceRecorder() *trace.Recorder { return m.tracer }

// RegisterObs implements obs.Registrar: the scheme's only deep source is
// its event trace (counters flow through smr.Stats).
func (m *Manager[T]) RegisterObs(reg *obs.Registry) { reg.Trace(m.tracer) }

// Arena exposes node storage.
func (m *Manager[T]) Arena() *arena.Arena[T] { return m.pool.Arena() }

// Thread returns thread context id.
func (m *Manager[T]) Thread(id int) *Thread[T] { return m.threads[id] }

// MaxThreads returns the configured thread count.
func (m *Manager[T]) MaxThreads() int { return m.cfg.MaxThreads }

// Stats aggregates counters across threads.
func (m *Manager[T]) Stats() smr.Stats {
	var s smr.Stats
	for _, t := range m.threads {
		s.Add(smr.Stats{Allocs: t.allocs.Load(), Retires: t.retires.Load()})
	}
	return s
}

// Leaked reports slots retired but (by design) never recycled.
func (m *Manager[T]) Leaked() uint64 {
	var n uint64
	for _, t := range m.threads {
		n += t.retires.Load()
	}
	return n
}

// Thread is a per-thread NoRecl context.
type Thread[T any] struct {
	mgr   *Manager[T]
	id    int
	local alloc.Local
	view  arena.View[T] // chunk-directory snapshot: atomic-free Node
	// Counters are atomic so Stats may aggregate them live (monitoring
	// endpoints, harness snapshots) without stopping the owner thread.
	allocs  atomic.Uint64
	retires atomic.Uint64

	_ [6]uint64 // false-sharing pad
}

// ID returns the thread index.
func (t *Thread[T]) ID() int { return t.id }

// Node dereferences a slot handle. NoRecl never recycles, so every handle
// stays valid. The lookup goes through the thread's directory view: two
// plain loads, no atomics.
func (t *Thread[T]) Node(slot uint32) *T { return t.view.At(slot) }

// Alloc returns a zeroed slot.
func (t *Thread[T]) Alloc() uint32 {
	t.allocs.Add(1)
	return t.mgr.pool.Alloc(&t.local)
}

// Retire only counts; the slot is never reused.
func (t *Thread[T]) Retire(uint32) { t.retires.Add(1) }
