package norecl

import "testing"

type tnode struct{ key, next uint64 }

func reset(n *tnode) { n.key, n.next = 0, 0 }

func TestRetireNeverRecycles(t *testing.T) {
	m := NewManager[tnode](Config{MaxThreads: 1, Capacity: 16}, reset)
	th := m.Thread(0)
	seen := map[uint32]bool{}
	for i := 0; i < 1000; i++ {
		s := th.Alloc()
		if seen[s] {
			t.Fatalf("NoRecl reused slot %d", s)
		}
		seen[s] = true
		th.Retire(s)
		if m.Arena().Gen(s) != 0 {
			t.Fatal("NoRecl must never bump generations")
		}
	}
	if m.Leaked() != 1000 {
		t.Fatalf("Leaked = %d, want 1000", m.Leaked())
	}
	st := m.Stats()
	if st.Allocs != 1000 || st.Retires != 1000 || st.Recycled != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDefaults(t *testing.T) {
	m := NewManager[tnode](Config{}, reset)
	if m.MaxThreads() != 1 || m.Thread(0).ID() != 0 {
		t.Fatal("defaults")
	}
	s := m.Thread(0).Alloc()
	if m.Thread(0).Node(s).key != 0 {
		t.Fatal("dirty node")
	}
}
