package anchors

import (
	"sync/atomic"
	"testing"

	"repro/internal/arena"
)

type tnode struct {
	key  atomic.Uint64
	next atomic.Uint64
}

func reset(n *tnode) { n.key.Store(0); n.next.Store(0) }

func newMgr(cfg Config) *Manager[tnode] {
	var m *Manager[tnode]
	succ := func(slot uint32) arena.Ptr {
		return arena.Ptr(m.Arena().At(slot).next.Load())
	}
	m = NewManager[tnode](cfg, reset, succ)
	return m
}

func TestVisitPublishesEveryK(t *testing.T) {
	m := newMgr(Config{MaxThreads: 1, Capacity: 64, K: 3, ScanThreshold: 1000})
	th := m.Thread(0)
	th.OnOpStart()
	s := th.Alloc()
	published := 0
	for i := 0; i < 10; i++ {
		if th.Visit(arena.MakePtr(s)) {
			published++
		}
	}
	// Budget forces one publication on the first visit, then every K.
	if published != 4 { // visits 1, 4, 7, 10
		t.Fatalf("published %d anchors in 10 visits with K=3", published)
	}
	th.OnOpEnd()
	if th.anchor.Load() != 0 {
		t.Fatal("OnOpEnd must clear the anchor")
	}
}

func TestAnchorProtectsKSegment(t *testing.T) {
	m := newMgr(Config{MaxThreads: 2, Capacity: 256, K: 4, ScanThreshold: 1})
	w, tr := m.Thread(0), m.Thread(1)
	// Build a chain a -> b -> c.
	a, b, c := w.Alloc(), w.Alloc(), w.Alloc()
	w.Node(a).next.Store(uint64(arena.MakePtr(b)))
	w.Node(b).next.Store(uint64(arena.MakePtr(c)))
	genB, genC := m.Arena().Gen(b), m.Arena().Gen(c)

	// Traverser anchors at a and stays inside its operation.
	tr.OnOpStart()
	tr.Visit(arena.MakePtr(a))

	w.OnOpStart()
	w.Retire(b) // triggers a scan each retire (threshold 1)
	w.Retire(c)
	w.OnOpEnd()
	for i := 0; i < 10; i++ { // more scans
		w.OnOpStart()
		x := w.Alloc()
		w.Retire(x)
		w.OnOpEnd()
	}
	if m.Arena().Gen(b) != genB || m.Arena().Gen(c) != genC {
		t.Fatal("anchored segment was reclaimed")
	}
	tr.OnOpEnd()
	for i := 0; i < 10; i++ {
		w.OnOpStart()
		x := w.Alloc()
		w.Retire(x)
		w.OnOpEnd()
	}
	if m.Arena().Gen(b) == genB && m.Arena().Gen(c) == genC {
		t.Fatal("segment never reclaimed after the anchor lifted")
	}
}

func TestEraGracePeriod(t *testing.T) {
	m := newMgr(Config{MaxThreads: 2, Capacity: 128, K: 1000, ScanThreshold: 1})
	runner, w := m.Thread(0), m.Thread(1)
	runner.OnOpStart() // long-running op, no anchor on the node
	s := w.Alloc()
	gen := m.Arena().Gen(s)
	w.OnOpStart()
	w.Retire(s)
	w.OnOpEnd()
	for i := 0; i < 5; i++ {
		w.OnOpStart()
		w.Retire(w.Alloc())
		w.OnOpEnd()
	}
	if m.Arena().Gen(s) != gen {
		t.Fatal("slot freed while a pre-retire operation was still running")
	}
	runner.OnOpEnd()
	for i := 0; i < 5; i++ {
		w.OnOpStart()
		w.Retire(w.Alloc())
		w.OnOpEnd()
	}
	if m.Arena().Gen(s) == gen {
		t.Fatal("slot never freed after the operation ended")
	}
}

func TestStatsAndDefaults(t *testing.T) {
	m := newMgr(Config{})
	if m.MaxThreads() != 1 {
		t.Fatal("defaults")
	}
	th := m.Thread(0)
	th.CountRestart()
	th.OnOpStart()
	s := th.Alloc()
	th.Retire(s)
	th.OnOpEnd()
	st := m.Stats()
	if st.Allocs != 1 || st.Retires != 1 || st.Restarts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if th.ID() != 0 {
		t.Fatal("ID")
	}
}
