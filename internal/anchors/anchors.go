// Package anchors implements the cost model of the "drop the anchor"
// reclamation scheme (Braginsky, Kogan & Petrank, SPAA 2013), the third
// competitor of the paper's linked-list evaluation.
//
// The real anchors scheme publishes a hazard pointer (the anchor) once per
// K reads and recovers stalled traversals by freezing the anchored list
// segment. The freeze/recovery machinery is a full project of its own; as
// announced in DESIGN.md, this package reproduces the scheme's *measured
// cost structure* with a simpler safety argument:
//
//   - Traversals publish an anchor (one atomic store, which is the fence
//     the scheme amortizes) every K node visits, and validate the anchor
//     after publication, restarting the traversal from the head if the
//     anchored node was already marked — the analogue of anchor recovery.
//   - The reclaimer refuses to free a node that is (a) within K successor
//     hops of any published anchor (walking current next pointers through
//     the retired snapshot), or (b) retired during any still-running
//     operation (an era condition equivalent to epoch-based reclamation's
//     grace period — this replaces freezing as the safety net for nodes
//     that were physically unlinked off an anchored path).
//
// Consequence of (b): unlike the original, this variant's *reclamation*
// stalls if a thread stalls (the data-structure operations remain
// lock-free). The paper's benchmarks never stall threads, so the measured
// shape — amortized fences that win on long traversals and recovery
// restarts plus scan cost that lose under contention and short lists — is
// preserved. Scans are serialized by a try-lock; threads that fail the
// try-lock keep buffering, so operations never block.
package anchors

import (
	"sync"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/arena"
	"repro/internal/obs"
	"repro/internal/smr"
	"repro/internal/trace"
)

// Config parameterizes a Manager.
type Config struct {
	// MaxThreads is the fixed number of thread contexts.
	MaxThreads int
	// Capacity pre-charges the shared pool.
	Capacity int
	// K is the anchor distance: one anchor publication (fence) per K node
	// visits. The paper picks K = 1000.
	K int
	// ScanThreshold triggers a reclamation scan after this many retires
	// buffered by a thread.
	ScanThreshold int
	// LocalPool is the allocation block-transfer size.
	LocalPool int
}

func (c *Config) fill() {
	if c.MaxThreads <= 0 {
		c.MaxThreads = 1
	}
	if c.K <= 0 {
		c.K = 1000
	}
	if c.ScanThreshold <= 0 {
		c.ScanThreshold = 256
	}
}

// Succ is supplied by the data structure: it returns the current successor
// handle of slot (marks preserved), so the reclaimer can walk anchored
// segments.
type Succ func(slot uint32) arena.Ptr

// Manager owns the pool, era clock and thread contexts of one anchors
// instance.
type Manager[T any] struct {
	cfg     Config
	pool    *alloc.Pool[T]
	era     atomic.Uint64
	threads []*Thread[T]
	succ    Succ
	tracer  *trace.Recorder
	scanMu  sync.Mutex

	// retired entries owned by the scan lock holder.
	retired []retiredSlot
	retMu   sync.Mutex // guards handoff of thread buffers into retired

	// protected is the reclaimer's reusable sorted anchored-segment set;
	// only the scanMu holder touches it.
	protected smr.SlotSet
}

type retiredSlot struct {
	slot uint32
	era  uint64
}

// NewManager builds a manager; reset zeroes a node at allocation, succ
// exposes the structure's successor relation to the reclaimer.
func NewManager[T any](cfg Config, reset func(*T), succ Succ) *Manager[T] {
	cfg.fill()
	m := &Manager[T]{
		cfg:    cfg,
		pool:   alloc.New(cfg.Capacity, cfg.LocalPool, reset),
		succ:   succ,
		tracer: trace.NewRecorder(cfg.MaxThreads, 0),
	}
	m.threads = make([]*Thread[T], cfg.MaxThreads)
	for i := range m.threads {
		t := &Thread[T]{mgr: m, id: i, k: cfg.K, view: m.pool.Arena().View(), ring: m.tracer.Ring(i)}
		t.local.Trace = t.ring
		m.threads[i] = t
	}
	return m
}

// TraceRecorder exposes the per-thread protocol event rings (era bumps,
// recovery restarts, scan passes, allocation refills).
func (m *Manager[T]) TraceRecorder() *trace.Recorder { return m.tracer }

// RegisterObs implements obs.Registrar: the scheme's only deep source is
// its event trace (counters flow through smr.Stats).
func (m *Manager[T]) RegisterObs(reg *obs.Registry) { reg.Trace(m.tracer) }

// Arena exposes node storage.
func (m *Manager[T]) Arena() *arena.Arena[T] { return m.pool.Arena() }

// Thread returns thread context id.
func (m *Manager[T]) Thread(id int) *Thread[T] { return m.threads[id] }

// MaxThreads returns the configured thread count.
func (m *Manager[T]) MaxThreads() int { return m.cfg.MaxThreads }

// Stats aggregates counters across threads.
func (m *Manager[T]) Stats() smr.Stats {
	var s smr.Stats
	for _, t := range m.threads {
		s.Add(smr.Stats{
			Allocs:    t.allocs.Load(),
			Retires:   t.retires.Load(),
			Recycled:  t.recycled.Load(),
			ReRetired: t.reRetired.Load(),
			Phases:    t.scans.Load(),
			Restarts:  t.restarts.Load(),
		})
	}
	return s
}

// Thread is a per-thread anchors context.
type Thread[T any] struct {
	mgr *Manager[T]
	id  int
	k   int

	// state packs {era:63 | active:1}; anchor holds slot+1.
	state   atomic.Uint64
	anchor  atomic.Uint64
	sinceHP int

	buf   []retiredSlot
	local alloc.Local
	view  arena.View[T] // chunk-directory snapshot: atomic-free Node
	ring  *trace.Ring   // protocol event ring (gated on trace.Enabled)

	// Counters are atomic so Stats may aggregate them live (monitoring
	// endpoints, harness snapshots) without stopping the owner thread.
	allocs    atomic.Uint64
	retires   atomic.Uint64
	recycled  atomic.Uint64
	reRetired atomic.Uint64
	scans     atomic.Uint64
	restarts  atomic.Uint64

	_ [4]uint64 // false-sharing pad
}

// ID returns the thread index.
func (t *Thread[T]) ID() int { return t.id }

// Node dereferences a slot handle. The lookup goes through the thread's
// directory view: two plain loads, no atomics.
func (t *Thread[T]) Node(slot uint32) *T { return t.view.At(slot) }

// OnOpStart announces the current era and resets the anchor budget; the
// first anchor of the traversal is published by the structure on the list
// head.
func (t *Thread[T]) OnOpStart() {
	t.state.Store(t.mgr.era.Load()<<1 | 1)
	t.sinceHP = t.k // force an anchor on the first visit
}

// OnOpEnd clears the anchor and goes quiescent.
func (t *Thread[T]) OnOpEnd() {
	t.anchor.Store(0)
	t.state.Store(t.state.Load() &^ 1)
}

// Visit is called once per traversed node. Every K visits it drops an
// anchor on cur: one sequentially consistent store (the amortized fence).
// It returns true when the structure must validate the anchor (re-check
// cur's liveness) and restart from the head on failure.
func (t *Thread[T]) Visit(cur arena.Ptr) bool {
	t.sinceHP++
	if t.sinceHP < t.k {
		return false
	}
	t.sinceHP = 0
	if cur.IsNil() {
		t.anchor.Store(0)
		return false
	}
	t.anchor.Store(uint64(cur.Unmark().Slot()) + 1)
	return true
}

// CountRestart accounts an anchor-validation failure (recovery analogue).
func (t *Thread[T]) CountRestart() {
	t.restarts.Add(1)
	if trace.Enabled() {
		t.ring.Record(trace.EvRestart, uint64(trace.CauseAnchor))
	}
}

// Alloc returns a zeroed slot from the shared pool.
func (t *Thread[T]) Alloc() uint32 {
	t.allocs.Add(1)
	return t.mgr.pool.Alloc(&t.local)
}

// Retire buffers slot with the current era and triggers a scan at the
// threshold. If another thread holds the scan lock the buffer simply keeps
// growing — retire never blocks.
func (t *Thread[T]) Retire(slot uint32) {
	t.retires.Add(1)
	t.buf = append(t.buf, retiredSlot{slot: slot, era: t.mgr.era.Load()})
	if len(t.buf) >= t.mgr.cfg.ScanThreshold {
		m := t.mgr
		m.retMu.Lock()
		m.retired = append(m.retired, t.buf...)
		m.retMu.Unlock()
		t.buf = t.buf[:0]
		t.Scan()
	}
}

// Scan runs one reclamation pass if the scan lock is free.
func (t *Thread[T]) Scan() {
	m := t.mgr
	if !m.scanMu.TryLock() {
		return
	}
	defer m.scanMu.Unlock()
	t.scans.Add(1)
	era := m.era.Add(1)
	if trace.Enabled() {
		t.ring.Record(trace.EvPhase, era)
	}

	// Protected set 1: nodes within K hops of any anchor, collected into
	// the reusable sorted set (the batch below probes it once per retired
	// slot, so binary search beats map hashing).
	protected := &m.protected
	protected.Reset()
	for _, other := range m.threads {
		a := other.anchor.Load()
		if a == 0 {
			continue
		}
		p := arena.MakePtr(uint32(a - 1))
		for hop := 0; hop <= m.cfg.K && !p.IsNil(); hop++ {
			protected.Add(p.Unmark().Slot())
			p = m.succ(p.Unmark().Slot())
		}
	}
	protected.Seal()
	// Condition 2: a node is freeable only when retired before every
	// currently running operation's era (grace period).
	minEra := era
	for _, other := range m.threads {
		w := other.state.Load()
		if w&1 == 1 && w>>1 < minEra {
			minEra = w >> 1
		}
	}

	m.retMu.Lock()
	batch := m.retired
	m.retired = nil
	m.retMu.Unlock()

	kept := batch[:0]
	var recycled, reRetired uint64
	for _, r := range batch {
		anchored := protected.Contains(r.slot)
		if !anchored && r.era < minEra {
			m.pool.Free(&t.local, r.slot)
			recycled++
		} else {
			kept = append(kept, r)
			reRetired++
		}
	}
	t.recycled.Add(recycled)
	t.reRetired.Add(reRetired)
	m.pool.Flush(&t.local)
	m.retMu.Lock()
	m.retired = append(m.retired, kept...)
	m.retMu.Unlock()
	if trace.Enabled() {
		t.ring.Record(trace.EvDrain, trace.DrainPayload(recycled, reRetired))
	}
}
