package core_test

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/lease"
)

type leaseNode struct{ v uint64 }

func TestManagerThreadLeasing(t *testing.T) {
	m := core.NewManager[leaseNode](core.Config{MaxThreads: 3, Capacity: 1 << 12},
		func(n *leaseNode) { n.v = 0 })
	seen := map[int]bool{}
	var held []*core.Thread[leaseNode]
	for i := 0; i < 3; i++ {
		th, err := m.AcquireThread()
		if err != nil {
			t.Fatal(err)
		}
		if seen[th.ID()] {
			t.Fatalf("context %d leased twice", th.ID())
		}
		seen[th.ID()] = true
		held = append(held, th)
	}
	if _, err := m.AcquireThread(); !errors.Is(err, lease.ErrNoFreeSessions) {
		t.Fatalf("exhausted AcquireThread: %v", err)
	}
	m.ReleaseThread(held[1])
	th, err := m.AcquireThread()
	if err != nil {
		t.Fatal(err)
	}
	if th.ID() != held[1].ID() {
		t.Fatalf("recycled context %d, want %d", th.ID(), held[1].ID())
	}
	m.Close()
	if _, err := m.AcquireThread(); !errors.Is(err, lease.ErrClosed) {
		t.Fatalf("AcquireThread after Close: %v", err)
	}
}

// TestLeasedThreadsAllocate drives allocation/retire churn through leased
// contexts from more goroutines than contexts — the server's usage shape —
// under the race detector.
func TestLeasedThreadsAllocate(t *testing.T) {
	const contexts = 4
	m := core.NewManager[leaseNode](core.Config{MaxThreads: contexts, Capacity: 1 << 14},
		func(n *leaseNode) { n.v = 0 })
	var wg sync.WaitGroup
	for w := 0; w < 4*contexts; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; {
				th, err := m.AcquireThread()
				if errors.Is(err, lease.ErrNoFreeSessions) {
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				slot := th.Alloc()
				th.Retire(slot)
				m.ReleaseThread(th)
				i++
			}
		}()
	}
	wg.Wait()
	if got := m.Lessor().Leased(); got != 0 {
		t.Fatalf("leaked %d thread leases", got)
	}
}
