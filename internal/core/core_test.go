package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/arena"
)

// node is a minimal test node: all shared fields atomic, as required of
// clients of the scheme.
type node struct {
	key  atomic.Uint64
	next atomic.Uint64
}

func resetNode(n *node) {
	n.key.Store(0)
	n.next.Store(0)
}

func newMgr(t testing.TB, cfg Config) *Manager[node] {
	t.Helper()
	return NewManager[node](cfg, resetNode)
}

func TestAllocZeroesAndCounts(t *testing.T) {
	m := newMgr(t, Config{MaxThreads: 1, Capacity: 64, OwnerHPs: 3})
	th := m.Thread(0)
	s := th.Alloc()
	n := th.Node(s)
	n.key.Store(42)
	n.next.Store(7)
	th.Retire(s)
	th.FlushRetired()
	// Two recycling passes: one to swap the retired block in, one not needed —
	// the slot becomes allocatable after the next phase.
	seen := map[uint32]bool{}
	for i := 0; i < m.Capacity(); i++ {
		s2 := th.Alloc()
		if seen[s2] {
			t.Fatalf("slot %d handed out twice without retire", s2)
		}
		seen[s2] = true
		if s2 == s {
			if n.key.Load() != 0 || n.next.Load() != 0 {
				t.Fatal("recycled slot was not zeroed on allocation")
			}
		}
	}
	if !seen[s] {
		t.Fatal("retired slot never came back through the pipeline")
	}
	st := m.Stats()
	if st.Allocs != uint64(m.Capacity())+1 {
		t.Fatalf("Allocs = %d, want %d", st.Allocs, m.Capacity()+1)
	}
	if st.Retires != 1 {
		t.Fatalf("Retires = %d", st.Retires)
	}
	if st.Phases == 0 {
		t.Fatal("expected at least one phase")
	}
}

func TestRetiredSlotNotRecycledSamePhase(t *testing.T) {
	// An object must never be reclaimed in the phase it was unlinked (§2).
	m := newMgr(t, Config{MaxThreads: 1, Capacity: 8, LocalPool: 2, OwnerHPs: 0})
	th := m.Thread(0)
	s := th.Alloc()
	gen := m.Arena().Gen(s)
	th.Retire(s)
	th.FlushRetired()
	// No recycling has run; generation must be untouched.
	if m.Arena().Gen(s) != gen {
		t.Fatal("slot recycled before any phase change")
	}
}

func TestWarningSetOncePerPhase(t *testing.T) {
	m := newMgr(t, Config{MaxThreads: 2, Capacity: 64, OwnerHPs: 0})
	th := m.Thread(0)
	if th.Warning() {
		t.Fatal("fresh thread has warning set")
	}
	m.InjectWarnings(2)
	if !th.Warning() {
		t.Fatal("warning not set")
	}
	if !th.Check() {
		t.Fatal("Check must report restart when warning set")
	}
	if th.Check() {
		t.Fatal("Check cleared the bit; second call must pass")
	}
	// Same phase again: the phase stamp suppresses the re-set.
	m.InjectWarnings(2)
	if th.Warning() {
		t.Fatal("warning re-set for an already-stamped phase")
	}
	// New phase: set again.
	m.InjectWarnings(4)
	if !th.Warning() {
		t.Fatal("warning not set for a new phase")
	}
}

func TestWarningByStoreAblation(t *testing.T) {
	m := NewManager[node](Config{MaxThreads: 1, Capacity: 64, WarningByStore: true}, resetNode)
	th := m.Thread(0)
	m.InjectWarnings(2)
	if !th.Check() {
		t.Fatal("warning not delivered")
	}
	// The naive broadcast re-warns even within the same phase — the extra
	// restarts the Appendix E once-per-phase CAS avoids.
	m.InjectWarnings(2)
	if !th.Warning() {
		t.Fatal("naive store mode must re-warn an acknowledged thread")
	}
}

func TestHazardPointerBlocksRecycle(t *testing.T) {
	m := newMgr(t, Config{MaxThreads: 2, Capacity: 256, LocalPool: 4, OwnerHPs: 3})
	worker, guard := m.Thread(0), m.Thread(1)

	s := worker.Alloc()
	gen := m.Arena().Gen(s)
	// Thread 1 protects the slot as a CAS target (Algorithm 2 prologue).
	if guard.ProtectCAS(arena.MakePtr(s), arena.NilPtr, arena.NilPtr) {
		t.Fatal("unexpected restart")
	}
	worker.Retire(s)
	worker.FlushRetired()

	// Churn enough allocations to force several phases.
	for i := 0; i < 4*m.Capacity(); i++ {
		x := worker.Alloc()
		worker.Retire(x)
	}
	worker.FlushRetired()
	if m.Arena().Gen(s) != gen {
		t.Fatal("hazard-pointer-protected slot was recycled")
	}
	st := m.Stats()
	if st.ReRetired == 0 {
		t.Fatal("protected slot should have been re-retired at least once")
	}

	// Release the protection; the slot must eventually recycle.
	guard.ClearCAS()
	for i := 0; i < 4*m.Capacity(); i++ {
		x := worker.Alloc()
		worker.Retire(x)
	}
	worker.FlushRetired()
	if m.Arena().Gen(s) == gen {
		t.Fatal("slot never recycled after hazard pointer cleared")
	}
}

func TestOwnerHPBlocksRecycle(t *testing.T) {
	m := newMgr(t, Config{MaxThreads: 2, Capacity: 128, LocalPool: 4, OwnerHPs: 6})
	worker, guard := m.Thread(0), m.Thread(1)
	s := worker.Alloc()
	gen := m.Arena().Gen(s)
	guard.SetOwnerHP(4, arena.MakePtr(s).Mark()) // marked pointers are unmarked before publication
	if guard.SealGenerator() {
		t.Fatal("unexpected restart")
	}
	worker.Retire(s)
	worker.FlushRetired()
	for i := 0; i < 4*m.Capacity(); i++ {
		x := worker.Alloc()
		worker.Retire(x)
	}
	worker.FlushRetired()
	if m.Arena().Gen(s) != gen {
		t.Fatal("owner-HP-protected slot was recycled")
	}
	guard.ClearOwnerHPs()
	for i := 0; i < 4*m.Capacity(); i++ {
		x := worker.Alloc()
		worker.Retire(x)
	}
	if m.Arena().Gen(s) == gen {
		t.Fatal("slot never recycled after owner HPs cleared")
	}
}

func TestProtectCASRestartsOnWarning(t *testing.T) {
	m := newMgr(t, Config{MaxThreads: 1, Capacity: 64, OwnerHPs: 3})
	th := m.Thread(0)
	m.InjectWarnings(2)
	if !th.ProtectCAS(arena.MakePtr(1), arena.MakePtr(2), arena.NilPtr) {
		t.Fatal("ProtectCAS must demand a restart while warned")
	}
	for i := 0; i < WriteHPs; i++ {
		if w := th.WarnWord(); w&0xff != 0 {
			t.Fatal("warning not cleared by restart path")
		}
	}
	// HPs must be clear after the restart path.
	hp := map[uint32]struct{}{}
	for i := range th.hps {
		if w := th.hps[i].Load(); w != 0 {
			hp[uint32(w-1)] = struct{}{}
		}
	}
	if len(hp) != 0 {
		t.Fatalf("restart left hazard pointers set: %v", hp)
	}
	if !th.ProtectCAS(arena.MakePtr(1), arena.NilPtr, arena.NilPtr) == false {
		t.Fatal("second ProtectCAS should pass")
	}
	th.ClearCAS()
}

// Slot conservation: after arbitrary alloc/retire traffic and full drains,
// every slot is accounted for exactly once across pools, local blocks and
// the live set. This is the test for the two documented deviations (freeze
// precondition, re-retire at newer phase): neither may leak slots.
func TestRecyclingNeverLeaks(t *testing.T) {
	const threads = 3
	m := newMgr(t, Config{MaxThreads: threads, Capacity: 8 * threads * 8, LocalPool: 8, OwnerHPs: 0})
	rng := rand.New(rand.NewSource(1))
	live := map[uint32]bool{}
	var liveList []uint32

	// Drive all thread contexts from one goroutine, interleaving randomly —
	// this creates laggard localVer values deterministically.
	for step := 0; step < 20000; step++ {
		th := m.Thread(rng.Intn(threads))
		if len(liveList) > 0 && rng.Intn(2) == 0 {
			i := rng.Intn(len(liveList))
			s := liveList[i]
			liveList[i] = liveList[len(liveList)-1]
			liveList = liveList[:len(liveList)-1]
			delete(live, s)
			th.Retire(s)
		} else if len(liveList) < m.Capacity()/4 {
			s := th.Alloc()
			if live[s] {
				t.Fatalf("slot %d double-allocated", s)
			}
			live[s] = true
			liveList = append(liveList, s)
		}
	}
	total := len(liveList)
	for i := 0; i < threads; i++ {
		m.Thread(i).FlushRetired()
		total += m.Thread(i).LocalCounts()
	}
	ready, retire, processing := m.PoolCounts()
	total += ready + retire + processing
	if total != m.Capacity() {
		t.Fatalf("slot leak: accounted %d of %d (ready=%d retire=%d processing=%d live=%d)",
			total, m.Capacity(), ready, retire, processing, len(liveList))
	}
}

// The sharded pools must preserve slot conservation exactly as the flat
// ones did: same interleaved traffic as TestRecyclingNeverLeaks, but with
// four shards forced (the 1-CPU default would collapse to one) so laggard
// threads drain shards frozen at mixed versions and allocation steals
// across shards.
func TestShardedRecyclingNeverLeaks(t *testing.T) {
	const threads = 3
	m := newMgr(t, Config{MaxThreads: threads, Capacity: 8 * threads * 8, LocalPool: 8, OwnerHPs: 0, Shards: 4})
	if m.Shards() != 4 {
		t.Fatalf("Shards = %d, want 4", m.Shards())
	}
	rng := rand.New(rand.NewSource(2))
	live := map[uint32]bool{}
	var liveList []uint32
	for step := 0; step < 20000; step++ {
		th := m.Thread(rng.Intn(threads))
		if len(liveList) > 0 && rng.Intn(2) == 0 {
			i := rng.Intn(len(liveList))
			s := liveList[i]
			liveList[i] = liveList[len(liveList)-1]
			liveList = liveList[:len(liveList)-1]
			delete(live, s)
			th.Retire(s)
		} else if len(liveList) < m.Capacity()/4 {
			s := th.Alloc()
			if live[s] {
				t.Fatalf("slot %d double-allocated", s)
			}
			live[s] = true
			liveList = append(liveList, s)
		}
	}
	total := len(liveList)
	for i := 0; i < threads; i++ {
		m.Thread(i).FlushRetired()
		total += m.Thread(i).LocalCounts()
	}
	ready, retire, processing := m.PoolCounts()
	total += ready + retire + processing
	if total != m.Capacity() {
		t.Fatalf("slot leak: accounted %d of %d (ready=%d retire=%d processing=%d live=%d)",
			total, m.Capacity(), ready, retire, processing, len(liveList))
	}
	if m.ReadySteals() == 0 {
		t.Fatal("expected ready-pool steals with 3 threads on 4 shards")
	}
}

// Regression test for the lost-warning race: setWarnings used to attempt
// its CAS once per thread, so a concurrent Check (which CASes the warning
// bit off) could make that attempt fail and leave the thread unstamped and
// unwarned for the phase — a reclamation safety violation. The fixed loop
// retries until the thread's stamp equals the phase, so after every
// InjectWarnings(p) the stamp must read exactly p no matter how Check
// interleaves.
func TestSetWarningsConcurrentCheckNeverLoses(t *testing.T) {
	m := newMgr(t, Config{MaxThreads: 1, Capacity: 64, OwnerHPs: 0})
	th := m.Thread(0)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				th.Check()
			}
		}
	}()
	for p := uint32(2); p <= 4000; p += 2 {
		m.InjectWarnings(p)
		if got := uint32(th.WarnWord() >> 8); got != p {
			close(done)
			wg.Wait()
			t.Fatalf("after InjectWarnings(%d): stamp = %d — warning lost to concurrent Check", p, got)
		}
	}
	close(done)
	wg.Wait()
}

// Concurrent ownership: a slot handed out by Alloc belongs to exactly one
// thread until retired, even under heavy recycling churn.
func TestConcurrentAllocRetireOwnership(t *testing.T) {
	const threads = 8
	m := newMgr(t, Config{MaxThreads: threads, Capacity: threads * 300, LocalPool: 16, OwnerHPs: 0})
	owner := make([]atomic.Int32, m.Capacity()+1024)
	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := m.Thread(id)
			held := make([]uint32, 0, 64)
			rng := rand.New(rand.NewSource(int64(id)))
			for i := 0; i < 30000; i++ {
				if len(held) < 32 && rng.Intn(3) > 0 {
					s := th.Alloc()
					if !owner[s].CompareAndSwap(0, int32(id)+1) {
						t.Errorf("slot %d allocated while owned by thread %d", s, owner[s].Load()-1)
						return
					}
					held = append(held, s)
				} else if len(held) > 0 {
					s := held[len(held)-1]
					held = held[:len(held)-1]
					if !owner[s].CompareAndSwap(int32(id)+1, 0) {
						t.Errorf("slot %d ownership corrupted", s)
						return
					}
					th.Retire(s)
				}
			}
			for _, s := range held {
				owner[s].CompareAndSwap(int32(id)+1, 0)
				th.Retire(s)
			}
			th.FlushRetired()
		}(id)
	}
	wg.Wait()
	st := m.Stats()
	if st.Allocs == 0 || st.Recycled == 0 {
		t.Fatalf("expected churn, got %+v", st)
	}
}

// Sharded pools under real concurrency: goroutines churn alloc/retire on
// a 4-shard manager, then Quiesce must account for every slot (nothing
// stranded on a shard the swap protocol missed).
func TestShardedConcurrentChurnQuiesces(t *testing.T) {
	const threads = 4
	m := newMgr(t, Config{MaxThreads: threads, Capacity: threads * 300, LocalPool: 16, OwnerHPs: 0, Shards: 4})
	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := m.Thread(id)
			for i := 0; i < 20000; i++ {
				th.Retire(th.Alloc())
			}
			th.FlushRetired()
		}(id)
	}
	wg.Wait()
	if left := m.Quiesce(); left != 0 {
		t.Fatalf("Quiesce left %d slots unreclaimed across shards", left)
	}
	st := m.Stats()
	if st.Recycled == 0 || st.Phases == 0 {
		t.Fatalf("expected recycling churn, got %+v", st)
	}
}

// The sharded hot path must stay zero-alloc, including steals: with one
// thread homed on shard 0 of 4, the round-robin pre-chop leaves most ready
// blocks on shards 1-3, so refills exercise the steal probe.
func TestShardedOpsDoNotAllocate(t *testing.T) {
	m := newMgr(t, Config{MaxThreads: 1, Capacity: 1 << 12, LocalPool: 32, OwnerHPs: 0, Shards: 4})
	th := m.Thread(0)
	// Hold half the capacity live: the pre-chop dealt ready blocks round-
	// robin across the shards, so this burst outruns home shard 0's quarter
	// and forces refills through the steal probe.
	held := make([]uint32, 0, m.Capacity()/2)
	for i := 0; i < cap(held); i++ {
		held = append(held, th.Alloc())
	}
	if m.ReadySteals() == 0 {
		t.Fatal("allocation burst past the home shard never stole")
	}
	for _, s := range held {
		th.Retire(s)
	}
	th.FlushRetired()
	warm := func() {
		th.Retire(th.Alloc())
		th.Recycling()
	}
	for i := 0; i < 256; i++ {
		warm()
	}
	if avg := testing.AllocsPerRun(500, warm); avg > 0.05 {
		t.Fatalf("sharded alloc/retire/recycle allocates %.2f objects/run", avg)
	}
}

// Lock freedom of reclamation: a thread parked while holding hazard
// pointers must not stop other threads from recycling unrelated slots.
func TestStuckThreadDoesNotBlockReclamation(t *testing.T) {
	m := newMgr(t, Config{MaxThreads: 2, Capacity: 128, LocalPool: 4, OwnerHPs: 3})
	stuck, worker := m.Thread(0), m.Thread(1)
	pin := stuck.Alloc()
	if stuck.ProtectCAS(arena.MakePtr(pin), arena.NilPtr, arena.NilPtr) {
		t.Fatal("unexpected restart")
	}
	// stuck never runs again. The worker must still be able to allocate
	// far more than the capacity, proving recycling proceeds.
	for i := 0; i < 10*m.Capacity(); i++ {
		s := worker.Alloc()
		worker.Retire(s)
	}
	if m.Stats().Recycled == 0 {
		t.Fatal("no recycling happened with a stuck thread present")
	}
}

func TestPhaseAdvancesVersionByTwo(t *testing.T) {
	m := newMgr(t, Config{MaxThreads: 1, Capacity: 32, LocalPool: 4, OwnerHPs: 0})
	th := m.Thread(0)
	if m.Phase() != 0 {
		t.Fatalf("initial phase = %d", m.Phase())
	}
	for i := 0; i < 10*m.Capacity(); i++ {
		s := th.Alloc()
		th.Retire(s)
	}
	if m.Phase() == 0 || m.Phase()%2 != 0 {
		t.Fatalf("phase = %d, want positive even", m.Phase())
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}
	cfg.fill()
	if cfg.MaxThreads != 1 || cfg.LocalPool == 0 || cfg.AllocSpinLimit == 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.Capacity < 2*cfg.MaxThreads*cfg.LocalPool {
		t.Fatalf("capacity floor not applied: %+v", cfg)
	}
}

func TestAllocStarvationPanics(t *testing.T) {
	m := NewManager[node](Config{
		MaxThreads: 1, Capacity: 8, LocalPool: 4, AllocSpinLimit: 64,
	}, resetNode)
	th := m.Thread(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected starvation panic")
		}
	}()
	for i := 0; i < 10000; i++ {
		th.Alloc() // never retire: the pipeline must run dry and panic
	}
}

func TestStatsAggregation(t *testing.T) {
	m := newMgr(t, Config{MaxThreads: 2, Capacity: 64, LocalPool: 4, OwnerHPs: 0})
	a, b := m.Thread(0), m.Thread(1)
	s1 := a.Alloc()
	s2 := b.Alloc()
	a.Retire(s1)
	b.Retire(s2)
	st := m.Stats()
	if st.Allocs != 2 || st.Retires != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPhasePausesRecorded(t *testing.T) {
	m := newMgr(t, Config{MaxThreads: 1, Capacity: 64, LocalPool: 8, OwnerHPs: 0})
	th := m.Thread(0)
	for i := 0; i < 500; i++ {
		s := th.Alloc()
		th.Retire(s)
	}
	h := m.PhasePauses()
	if h.Count() == 0 {
		t.Fatal("no Recycling pauses recorded under churn")
	}
	if h.Mean() <= 0 || h.Max() < h.Mean() {
		t.Fatalf("pause stats inconsistent: mean=%v max=%v", h.Mean(), h.Max())
	}
}

func TestQuiesceRecyclesEverything(t *testing.T) {
	m := newMgr(t, Config{MaxThreads: 2, Capacity: 256, LocalPool: 8, OwnerHPs: 3})
	th := m.Thread(0)
	slots := make([]uint32, 0, 50)
	for i := 0; i < 50; i++ {
		slots = append(slots, th.Alloc())
	}
	gens := make([]uint32, len(slots))
	for i, s := range slots {
		gens[i] = m.Arena().Gen(s)
		th.Retire(s)
	}
	if left := m.Quiesce(); left != 0 {
		t.Fatalf("Quiesce left %d slots unreclaimed with no hazard pointers", left)
	}
	for i, s := range slots {
		if m.Arena().Gen(s) == gens[i] {
			t.Fatalf("slot %d not recycled by Quiesce", s)
		}
	}
}

func TestQuiesceRespectsHazardPointers(t *testing.T) {
	m := newMgr(t, Config{MaxThreads: 2, Capacity: 256, LocalPool: 8, OwnerHPs: 3})
	th, guard := m.Thread(0), m.Thread(1)
	pinned := th.Alloc()
	guard.ProtectCAS(arena.MakePtr(pinned), arena.NilPtr, arena.NilPtr)
	th.Retire(pinned)
	if left := m.Quiesce(); left != 1 {
		t.Fatalf("Quiesce = %d, want 1 pinned slot", left)
	}
	guard.ClearCAS()
	if left := m.Quiesce(); left != 0 {
		t.Fatalf("Quiesce after release = %d, want 0", left)
	}
}
