package core

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// BenchmarkHPSnapshot compares the sorted-array hazard-pointer snapshot
// that Recycling now uses with the map-based one it replaced: build the
// snapshot from every thread's published hazard pointers, then answer one
// membership probe per (simulated) retired slot — the exact work profile
// of drain. The sorted array must win at ≥ 64 hazard pointers.
func BenchmarkHPSnapshot(b *testing.B) {
	const probes = 1024
	for _, threads := range []int{4, 16, 64} {
		const hpsPerThread = 8 // WriteHPs + 5 owner HPs
		totalHPs := threads * hpsPerThread
		m := NewManager[node](Config{
			MaxThreads: threads, Capacity: 1 << 14, OwnerHPs: hpsPerThread - WriteHPs,
		}, resetNode)
		for ti, th := range m.threads {
			for i := range th.hps {
				th.hps[i].Store(uint64(ti*131+i*17) + 1)
			}
		}
		t0 := m.threads[0]

		b.Run(fmt.Sprintf("sorted/hps=%d", totalHPs), func(b *testing.B) {
			hits := 0
			for i := 0; i < b.N; i++ {
				hp := t0.snapshotHPs()
				for p := uint32(0); p < probes; p++ {
					if hp.Contains(p * 7) {
						hits++
					}
				}
			}
			sinkInt = hits
		})
		b.Run(fmt.Sprintf("map/hps=%d", totalHPs), func(b *testing.B) {
			scratch := make(map[uint32]struct{}, totalHPs)
			hits := 0
			for i := 0; i < b.N; i++ {
				clear(scratch)
				for _, other := range m.threads {
					for j := range other.hps {
						if w := other.hps[j].Load(); w != 0 {
							scratch[uint32(w-1)] = struct{}{}
						}
					}
				}
				for p := uint32(0); p < probes; p++ {
					if _, ok := scratch[p*7]; ok {
						hits++
					}
				}
			}
			sinkInt = hits
		})
	}
}

// BenchmarkRecyclingDrain measures the full retire → phase swap → drain
// pipeline on one thread: per iteration it retires four blocks' worth of
// slots and runs the phases needed to recycle them, exercising the hoisted
// block pointers, the gens-view BumpGen and the sorted snapshot probe.
func BenchmarkRecyclingDrain(b *testing.B) {
	const localPool = 126
	m := NewManager[node](Config{
		MaxThreads: 4, Capacity: 1 << 14, LocalPool: localPool, OwnerHPs: 5,
	}, resetNode)
	// Publish hazard pointers on the other threads so drain exercises both
	// the protected and unprotected routes.
	for _, th := range m.threads[1:] {
		for i := range th.hps {
			th.hps[i].Store(uint64(i*localPool) + 1)
		}
	}
	t0 := m.Thread(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 4*localPool; j++ {
			t0.Retire(t0.Alloc())
		}
		t0.FlushRetired()
		t0.Recycling()
		t0.Recycling()
	}
	b.ReportMetric(float64(4*localPool), "slots/op")
}

// BenchmarkAllocRetireContended drives the full alloc/retire/recycle
// pipeline from all procs at once — the workload whose global-stack CAS
// convoy motivated sharding. shards=1 is the flat layout; shards=cpus is
// the sharded default on a multi-core host.
func BenchmarkAllocRetireContended(b *testing.B) {
	procs := runtime.GOMAXPROCS(0)
	seen := map[int]bool{}
	for _, shards := range []int{1, procs, 2 * procs} {
		if seen[shards] {
			continue
		}
		seen[shards] = true
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			// RunParallel spawns GOMAXPROCS goroutines by default; the 4×
			// headroom covers -test.cpu sweeps without sharing contexts.
			m := NewManager[node](Config{
				MaxThreads: 4 * procs, Capacity: procs * 4096, LocalPool: 126, Shards: shards,
			}, resetNode)
			var ids atomic.Int32
			b.RunParallel(func(pb *testing.PB) {
				th := m.Thread(int(ids.Add(1)-1) % (4 * procs))
				for pb.Next() {
					th.Retire(th.Alloc())
				}
			})
			b.ReportMetric(float64(m.ReadySteals())/float64(b.N), "steals/op")
		})
	}
}

var sinkInt int
