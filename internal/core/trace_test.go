package core

import (
	"testing"

	"repro/internal/arena"
	"repro/internal/trace"
)

// countKinds tallies the recorder's merged events by kind.
func countKinds(rec *trace.Recorder) map[trace.Kind]int {
	got := map[trace.Kind]int{}
	for _, e := range rec.Events() {
		got[e.Kind]++
	}
	return got
}

// TestTraceRecordsProtocolEvents drives the full OA pipeline with tracing
// enabled and checks every event kind the scheme emits shows up: phase
// transitions, warning broadcast, shard freezes, a drain pass with the
// recycled count in its payload, refills, and a restart attributed to the
// read barrier.
func TestTraceRecordsProtocolEvents(t *testing.T) {
	trace.SetEnabled(true)
	defer trace.SetEnabled(false)

	m := newMgr(t, Config{MaxThreads: 1, Capacity: 64, LocalPool: 8, OwnerHPs: 3})
	th := m.Thread(0)

	// Churn enough slots through retire → recycle that several phases run.
	for i := 0; i < 4*m.Capacity(); i++ {
		th.Retire(th.Alloc())
	}
	th.FlushRetired()
	m.Quiesce()

	// Force one warning-triggered restart through the read barrier.
	m.InjectWarnings(9999)
	if !th.Check() {
		t.Fatal("injected warning did not restart")
	}

	rec := m.TraceRecorder()
	if rec.Total() == 0 {
		t.Fatal("no events recorded with tracing enabled")
	}
	got := countKinds(rec)
	for _, k := range []trace.Kind{
		trace.EvPhase, trace.EvWarnSet, trace.EvFreeze, trace.EvDrain,
		trace.EvRefill, trace.EvWarnCheck, trace.EvWarnAck, trace.EvRestart,
	} {
		if got[k] == 0 {
			t.Errorf("no %v events recorded (got %v)", k, got)
		}
	}

	// The drain payloads must account for recycled slots.
	var recycled uint64
	for _, e := range rec.Events() {
		if e.Kind == trace.EvDrain {
			recycled += e.Arg & 0xFFFFFFFF
		}
	}
	if recycled == 0 {
		t.Fatal("drain events carry no recycled counts")
	}
	// The restart we forced must name the read barrier.
	var readRestarts int
	for _, e := range rec.Events() {
		if e.Kind == trace.EvRestart && trace.Cause(e.Arg) == trace.CauseRead {
			readRestarts++
		}
	}
	if readRestarts == 0 {
		t.Fatal("restart event missing read_barrier cause")
	}
}

// TestTraceDisabledRecordsNothing is the gating check: with the flag off,
// the same pipeline traffic must leave every ring untouched.
func TestTraceDisabledRecordsNothing(t *testing.T) {
	if trace.Enabled() {
		t.Fatal("tracing unexpectedly on")
	}
	m := newMgr(t, Config{MaxThreads: 1, Capacity: 64, LocalPool: 8, OwnerHPs: 3})
	th := m.Thread(0)
	for i := 0; i < 2*m.Capacity(); i++ {
		th.Retire(th.Alloc())
	}
	th.FlushRetired()
	m.Quiesce()
	if n := m.TraceRecorder().Total(); n != 0 {
		t.Fatalf("recorded %d events with tracing disabled", n)
	}
}

// TestTraceRestartCauses checks the write-barrier and seal-barrier checks
// attribute their restarts distinctly.
func TestTraceRestartCauses(t *testing.T) {
	trace.SetEnabled(true)
	defer trace.SetEnabled(false)

	m := newMgr(t, Config{MaxThreads: 1, Capacity: 64, OwnerHPs: 3})
	th := m.Thread(0)

	m.InjectWarnings(1001)
	if !th.ProtectCAS(arena.NilPtr, arena.NilPtr, arena.NilPtr) {
		t.Fatal("ProtectCAS ignored warning")
	}
	m.InjectWarnings(1002)
	if !th.SealGenerator() {
		t.Fatal("SealGenerator ignored warning")
	}

	want := map[trace.Cause]bool{trace.CauseWrite: false, trace.CauseSeal: false}
	for _, e := range m.TraceRecorder().Events() {
		if e.Kind == trace.EvRestart {
			want[trace.Cause(e.Arg)] = true
		}
	}
	if !want[trace.CauseWrite] || !want[trace.CauseSeal] {
		t.Fatalf("missing restart causes: %v", want)
	}
}
