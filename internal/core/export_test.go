package core

import (
	"repro/internal/pools"
)

// Test-only hooks into manager internals.

// PoolCounts returns the number of slots sitting in (ready, retire,
// processing) global pools. Only meaningful while no swap is in flight.
func (m *Manager[T]) PoolCounts() (ready, retire, processing int) {
	_, retire = m.retire.ChainStats(m.ba)
	_, processing = m.process.ChainStats(m.ba)
	// Drain and refill ready to count it. A popped block's next link still
	// points into the old chain, so count each block's own N only.
	var blocks []uint32
	m.ready.Drain(m.ba, func(b uint32) { blocks = append(blocks, b) })
	for i := len(blocks) - 1; i >= 0; i-- {
		ready += int(m.ba.B(blocks[i]).N)
		m.ready.Push(m.ba, blocks[i], uint32(i))
	}
	return
}

// Shards exposes the configured shard count after defaulting.
func (m *Manager[T]) Shards() int { return m.cfg.Shards }

// ReadySteals exposes the ready pool's total steal count.
func (m *Manager[T]) ReadySteals() uint64 { return m.ready.TotalSteals() }

// LocalCounts returns the slots buffered in thread t's local blocks.
func (t *Thread[T]) LocalCounts() int {
	n := 0
	if t.allocBlk != pools.NoBlock {
		n += int(t.mgr.ba.B(t.allocBlk).N)
	}
	if t.retireBlk != pools.NoBlock {
		n += int(t.mgr.ba.B(t.retireBlk).N)
	}
	return n
}

// LocalVer exposes the thread's phase version.
func (t *Thread[T]) LocalVer() uint32 { return t.localVer }

// WarnWord exposes the packed warning word.
func (t *Thread[T]) WarnWord() uint64 { return t.warn.Load() }

// Capacity returns the configured slot capacity after defaulting.
func (m *Manager[T]) Capacity() int { return m.cfg.Capacity }
