// Package core implements the paper's contribution: the optimistic access
// (OA) memory management scheme for normalized lock-free data structures
// (Cohen & Petrank, "Efficient Memory Management for Lock-Free Data
// Structures with Optimistic Access", SPAA 2015).
//
// # Scheme summary
//
// Reads of shared node memory run *optimistically*: they may observe a slot
// that was already recycled. Correctness rests on three properties (§2):
//
//  1. Reads never fault — guaranteed here by the handle-based arena
//     (see package arena): a recycled handle still indexes valid memory.
//  2. A stale read is detected immediately after the read: the recycler
//     sets every thread's warning bit before recycling anything, so a
//     thread whose warning bit is clear cannot have read a recycled slot
//     (Algorithm 1).
//  3. Detected stale reads are rolled back by restarting the enclosing
//     normalized method (CAS generator or wrap-up), which is always legal
//     for parallelizable methods.
//
// Writes must never hit recycled memory, so every CAS is guarded by a
// simplified hazard-pointer protocol (Algorithm 2), and the CAS list handed
// from the generator to the executor is pinned by "owner" hazard pointers
// installed at the end of the generator (Algorithm 3).
//
// # Recycling pipeline
//
// Reclamation proceeds in phases (Algorithms 4–6) over three pools of
// 126-slot blocks: retired slots accumulate in the retirePool; a phase
// starts by atomically moving the whole retirePool into the processingPool
// (the odd/even version freeze trick of §4); slots in the processingPool
// that no hazard pointer protects move to the readyPool for reallocation,
// and protected ones return to the retirePool for the next phase.
//
// # Deviations from the paper's pseudocode (documented per DESIGN.md)
//
//   - Freeze precondition. Algorithm 6 lets any thread whose local version
//     matches the retirePool initiate a phase swap. If such a thread lagged
//     (caught its version up via the "phase already finished" return) it
//     could start a swap while the current phase's processingPool still
//     holds blocks; the swap's single-CAS installation of the new chain
//     would leak them. We therefore initiate a freeze only after observing
//     the processingPool empty at the current version — otherwise the
//     thread simply participates in the current phase. The normal-path
//     behaviour is identical (a phase ends with the processing pool
//     drained); TestRecyclingNeverLeaks exercises the laggard case.
//   - Leftover re-retire blocks. When a re-retire push hits VER-MISMATCH
//     (Algorithm 6 line 28 returns), the slots in hand are pushed into the
//     retirePool at its *newer* version instead of being dropped — retiring
//     into a later phase is always proper.
package core

import (
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pools"
	"repro/internal/smr"
)

// WriteHPs is the number of hazard pointers Algorithm 2 needs: one each for
// the CAS target object, the expected value and the new value.
const WriteHPs = 3

const warnMask = 0xff

// Config parameterizes a Manager.
type Config struct {
	// MaxThreads is the number of thread contexts, fixed at construction.
	MaxThreads int
	// Capacity is the total number of node slots the manager hands out.
	// The paper sizes it as the steady-state structure size plus δ, so a
	// reclamation phase triggers roughly every δ allocations (§5, Fig. 3).
	Capacity int
	// LocalPool bounds the slots per transfer block (the paper's local
	// pool size, 126 by default; Fig. 2 sweeps it).
	LocalPool int
	// OwnerHPs is the number of owner hazard pointers per thread, 3·C for
	// a structure whose operations execute at most C CASes (Algorithm 3).
	// Structures applying the paper's dedup optimization may pass less.
	OwnerHPs int
	// WarningByStore, when true, sets warning bits with a plain store
	// instead of the once-per-phase CAS of Appendix E — an ablation knob
	// that inflates restarts.
	WarningByStore bool
	// AllocSpinLimit bounds the Allocate retry loop; when the pipeline
	// cannot produce a free slot after this many recycling attempts the
	// manager panics with a sizing diagnostic (0 means 1<<22). The paper's
	// algorithm spins forever; a panic is friendlier than a silent hang.
	AllocSpinLimit int
}

func (c *Config) fill() {
	if c.MaxThreads <= 0 {
		c.MaxThreads = 1
	}
	if c.LocalPool <= 0 || c.LocalPool > pools.BlockCap {
		c.LocalPool = pools.BlockCap
	}
	if c.AllocSpinLimit <= 0 {
		c.AllocSpinLimit = 1 << 22
	}
	minCap := 2 * c.MaxThreads * c.LocalPool
	if c.Capacity < minCap {
		c.Capacity = minCap
	}
}

// Manager owns the arena, the three pools and the thread contexts of one
// optimistic-access instance. T is the node type of the client structure.
type Manager[T any] struct {
	cfg      Config
	nodes    *arena.Arena[T]
	ba       *pools.BlockArena
	ready    pools.CountedStack
	retire   pools.VStack
	process  pools.VStack
	threads  []*Thread[T]
	reset    func(*T) // zeroes a node on allocation (Algorithm 5's memset)
	phaseHst metrics.Histogram
	stats    *obs.ThreadStats // per-thread counter blocks, one per context
}

// NewManager builds a manager. reset must zero every field of a node using
// plain or atomic stores; it runs while the slot is owned exclusively by the
// allocating thread.
func NewManager[T any](cfg Config, reset func(*T)) *Manager[T] {
	cfg.fill()
	m := &Manager[T]{
		cfg:   cfg,
		nodes: arena.New[T](cfg.Capacity),
		ba:    pools.NewBlockArena(cfg.Capacity),
		reset: reset,
	}
	m.ready.Init()
	m.retire.Init(0)
	m.process.Init(0)
	// Pre-chop the whole capacity into ready blocks.
	base := m.nodes.Reserve(cfg.Capacity)
	blk := m.ba.Get()
	for i := 0; i < cfg.Capacity; i++ {
		m.ba.B(blk).Push(base + uint32(i))
		if m.ba.B(blk).Full(int32(cfg.LocalPool)) {
			m.ready.Push(m.ba, blk)
			blk = m.ba.Get()
		}
	}
	if !m.ba.B(blk).Empty() {
		m.ready.Push(m.ba, blk)
	} else {
		m.ba.Put(blk)
	}
	m.stats = obs.NewThreadStats(cfg.MaxThreads)
	m.threads = make([]*Thread[T], cfg.MaxThreads)
	for i := range m.threads {
		t := &Thread[T]{
			mgr:       m,
			id:        i,
			hps:       make([]atomic.Uint64, WriteHPs+cfg.OwnerHPs),
			allocBlk:  pools.NoBlock,
			retireBlk: pools.NoBlock,
			view:      m.nodes.View(),
			stats:     m.stats.At(i),
		}
		m.threads[i] = t
	}
	return m
}

// Arena exposes the node arena so client structures can dereference
// handles.
func (m *Manager[T]) Arena() *arena.Arena[T] { return m.nodes }

// Thread returns the context for thread id. Each context must be used by a
// single goroutine at a time.
func (m *Manager[T]) Thread(id int) *Thread[T] { return m.threads[id] }

// MaxThreads returns the configured thread count.
func (m *Manager[T]) MaxThreads() int { return m.cfg.MaxThreads }

// Phase returns the current (even) phase version of the retire pool,
// i.e. twice the number of completed phase swaps.
func (m *Manager[T]) Phase() uint64 {
	v, _ := m.retire.Load()
	return uint64(v)
}

// Quiesce drives reclamation phases (on the calling goroutine, using
// thread context 0) until every retired slot that is not hazard-pointer
// protected has been recycled. Call it after workers stop — for graceful
// shutdown accounting or test teardown. It returns the number of slots
// still withheld by hazard pointers.
func (m *Manager[T]) Quiesce() int {
	t := m.threads[0]
	t.FlushRetired()
	for i := 0; i < 4; i++ { // retire→swap→process needs at most two phases
		t.Recycling()
		if _, ri := m.retire.Load(); ri == pools.NoBlock {
			if _, pi := m.process.Load(); pi == pools.NoBlock {
				break
			}
		}
	}
	_, ri := m.retire.Load()
	_, pi := m.process.Load()
	_, retired := pools.ChainLen(m.ba, ri)
	_, processing := pools.ChainLen(m.ba, pi)
	return retired + processing
}

// InjectWarnings sets every thread's warning bit as if a recycler had
// announced the given phase. It is a fault-injection hook for tests: a
// spurious warning may only ever cause a (safe) restart of a
// parallelizable method, so chaos tests broadcast fake phases while
// checking that operation results stay sequential.
func (m *Manager[T]) InjectWarnings(phase uint32) { m.setWarnings(phase) }

// PhasePauses returns the histogram of per-call Recycling durations — the
// reclamation pauses an allocating thread can experience.
func (m *Manager[T]) PhasePauses() *metrics.Histogram { return &m.phaseHst }

// Stats aggregates counters across all threads. The per-thread blocks are
// atomic, so Stats is safe to call while workers run (live monitoring);
// the cross-counter view is then approximate by in-flight operations.
func (m *Manager[T]) Stats() smr.Stats {
	tot := m.stats.Totals()
	return smr.Stats{
		Allocs:    tot[obs.Allocs],
		Retires:   tot[obs.Retires],
		Recycled:  tot[obs.Recycled],
		ReRetired: tot[obs.ReRetired],
		Restarts:  tot[obs.Restarts],
		Phases:    m.Phase() / 2,
	}
}

// ObsStats exposes the per-thread counter blocks for registration and for
// drivers that feed the Ops counter.
func (m *Manager[T]) ObsStats() *obs.ThreadStats { return m.stats }

// RegisterObs registers the manager's live metric sources with reg: the
// per-thread counter blocks (prefix oa_smr), the phase-pause histogram,
// and gauges sampled from the arena, the block pools and the phase state.
// Gauges derived from counter pairs are approximate while writers run;
// see DESIGN.md "Observability" for the sampling discipline.
func (m *Manager[T]) RegisterObs(reg *obs.Registry) {
	reg.ThreadCounters("oa_smr", m.stats)
	reg.Histogram("oa_phase_pause_seconds",
		"duration of Recycling calls (Algorithm 6 reclamation pauses)", &m.phaseHst)
	reg.Gauge("oa_phase", "completed reclamation phase swaps",
		func() float64 { return float64(m.Phase() / 2) })
	reg.Gauge("oa_retired_backlog_slots",
		"retired slots not yet recycled (retires - recycled, approximate)",
		func() float64 {
			tot := m.stats.Totals()
			if tot[obs.Recycled] >= tot[obs.Retires] {
				return 0
			}
			return float64(tot[obs.Retires] - tot[obs.Recycled])
		})
	reg.Gauge("oa_arena_slots_reserved", "node slots handed out by the arena",
		func() float64 { return float64(m.nodes.Limit()) })
	reg.Gauge("oa_arena_slots_capacity", "node slots backed by arena chunks",
		func() float64 { return float64(m.nodes.Cap()) })
	reg.Gauge("oa_pool_blocks", "transfer blocks ever created by the block arena",
		func() float64 { return float64(m.ba.Blocks()) })
	reg.Gauge("oa_pool_free_blocks", "transfer blocks idle in the block freelist",
		func() float64 { return float64(m.ba.FreeBlocks()) })
	reg.Gauge("oa_retire_pool_frozen",
		"1 while the retire pool version is odd (phase swap in flight)",
		func() float64 {
			if m.retire.Ver()&1 == 1 {
				return 1
			}
			return 0
		})
}

// setWarnings implements the phase-change broadcast: every thread's warning
// word becomes {phase, 1}. With the Appendix E optimization the update is a
// CAS that succeeds at most once per phase per thread, so each thread
// restarts at most once per phase.
func (m *Manager[T]) setWarnings(phase uint32) {
	word := uint64(phase)<<8 | 1
	for _, t := range m.threads {
		if m.cfg.WarningByStore {
			// Naive broadcast (the ablation): every recycler of the phase
			// re-warns every thread, re-triggering restarts after the
			// thread already acknowledged — the paper's "n restarts per
			// thread per write" downside.
			t.warn.Store(word)
			continue
		}
		w := t.warn.Load()
		if w>>8 == uint64(phase) {
			continue // already stamped for this phase (Appendix E)
		}
		t.warn.CompareAndSwap(w, word)
	}
}

// helpSwap completes any in-flight phase freeze and returns the retire
// pool's current even version.
func (m *Manager[T]) helpSwap() uint32 {
	for {
		rv, ri := m.retire.Load()
		if rv&1 == 0 {
			return rv
		}
		// Frozen at rv = p+1: move the frozen chain ri into the processing
		// pool at p+2 and reset the retire pool. All helpers re-read the
		// frozen head, so they agree on ri.
		pv, pi := m.process.Load()
		if pv == rv-1 {
			m.process.CompareAndSwap(pv, pi, rv+1, ri)
		}
		m.retire.CompareAndSwap(rv, ri, rv+1, pools.NoBlock)
	}
}
