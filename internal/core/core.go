// Package core implements the paper's contribution: the optimistic access
// (OA) memory management scheme for normalized lock-free data structures
// (Cohen & Petrank, "Efficient Memory Management for Lock-Free Data
// Structures with Optimistic Access", SPAA 2015).
//
// # Scheme summary
//
// Reads of shared node memory run *optimistically*: they may observe a slot
// that was already recycled. Correctness rests on three properties (§2):
//
//  1. Reads never fault — guaranteed here by the handle-based arena
//     (see package arena): a recycled handle still indexes valid memory.
//  2. A stale read is detected immediately after the read: the recycler
//     sets every thread's warning bit before recycling anything, so a
//     thread whose warning bit is clear cannot have read a recycled slot
//     (Algorithm 1).
//  3. Detected stale reads are rolled back by restarting the enclosing
//     normalized method (CAS generator or wrap-up), which is always legal
//     for parallelizable methods.
//
// Writes must never hit recycled memory, so every CAS is guarded by a
// simplified hazard-pointer protocol (Algorithm 2), and the CAS list handed
// from the generator to the executor is pinned by "owner" hazard pointers
// installed at the end of the generator (Algorithm 3).
//
// # Recycling pipeline
//
// Reclamation proceeds in phases (Algorithms 4–6) over three pools of
// 126-slot blocks: retired slots accumulate in the retirePool; a phase
// starts by atomically moving the whole retirePool into the processingPool
// (the odd/even version freeze trick of §4); slots in the processingPool
// that no hazard pointer protects move to the readyPool for reallocation,
// and protected ones return to the retirePool for the next phase.
//
// Each pool is sharded (see internal/pools): thread t pushes to and pops
// from shard t&mask first and steals from the other shards only when its
// home runs dry, so refills and flushes are uncontended in steady state.
// The phase swap walks every retire shard, freezing each with the same
// odd-version CAS the flat pool used; the pool counts as frozen once all
// shards are odd at the same version, and helpers complete partial swaps
// shard by shard. A swap in flight therefore leaves the shards spanning at
// most {v, v+1, v+2}, and evenFloor(min shard version) always names the
// phase being swapped.
//
// # Deviations from the paper's pseudocode (documented per DESIGN.md)
//
//   - Freeze precondition. Algorithm 6 lets any thread whose local version
//     matches the retirePool initiate a phase swap. If such a thread lagged
//     (caught its version up via the "phase already finished" return) it
//     could start a swap while the current phase's processingPool still
//     holds blocks; the swap's single-CAS installation of the new chain
//     would leak them. We therefore initiate a freeze only after observing
//     the processingPool empty at the current version — otherwise the
//     thread simply participates in the current phase. The normal-path
//     behaviour is identical (a phase ends with the processing pool
//     drained); TestRecyclingNeverLeaks exercises the laggard case.
//   - Leftover re-retire blocks. When a re-retire push hits VER-MISMATCH
//     (Algorithm 6 line 28 returns), the slots in hand are pushed into the
//     retirePool at its *newer* version instead of being dropped — retiring
//     into a later phase is always proper.
package core

import (
	"runtime"
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/lease"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pools"
	"repro/internal/smr"
	"repro/internal/trace"
)

// WriteHPs is the number of hazard pointers Algorithm 2 needs: one each for
// the CAS target object, the expected value and the new value.
const WriteHPs = 3

const warnMask = 0xff

// Config parameterizes a Manager.
type Config struct {
	// MaxThreads is the number of thread contexts, fixed at construction.
	MaxThreads int
	// Capacity is the total number of node slots the manager hands out.
	// The paper sizes it as the steady-state structure size plus δ, so a
	// reclamation phase triggers roughly every δ allocations (§5, Fig. 3).
	Capacity int
	// LocalPool bounds the slots per transfer block (the paper's local
	// pool size, 126 by default; Fig. 2 sweeps it).
	LocalPool int
	// OwnerHPs is the number of owner hazard pointers per thread, 3·C for
	// a structure whose operations execute at most C CASes (Algorithm 3).
	// Structures applying the paper's dedup optimization may pass less.
	OwnerHPs int
	// WarningByStore, when true, sets warning bits with a plain store
	// instead of the once-per-phase CAS of Appendix E — an ablation knob
	// that inflates restarts.
	WarningByStore bool
	// AllocSpinLimit bounds the Allocate retry loop; when the pipeline
	// cannot produce a free slot after this many recycling attempts the
	// manager panics with a sizing diagnostic (0 means 1<<22). The paper's
	// algorithm spins forever; a panic is friendlier than a silent hang.
	AllocSpinLimit int
	// Shards sets the number of shards each global block pool is split
	// into, rounded up to a power of two and capped at pools.MaxShards.
	// Zero picks nextPow2(min(MaxThreads, GOMAXPROCS)): one shard per
	// thread that can actually run concurrently — more would only lengthen
	// the steal sweep without removing any contention.
	Shards int
	// TraceRing sets the per-thread event-trace ring capacity (rounded up
	// to a power of two); zero means trace.DefaultRingSize. Events are
	// recorded only while trace.Enabled(); the rings themselves always
	// exist so toggling tracing mid-run needs no synchronization.
	TraceRing int
}

func (c *Config) fill() {
	if c.MaxThreads <= 0 {
		c.MaxThreads = 1
	}
	if c.LocalPool <= 0 || c.LocalPool > pools.BlockCap {
		c.LocalPool = pools.BlockCap
	}
	if c.AllocSpinLimit <= 0 {
		c.AllocSpinLimit = 1 << 22
	}
	if c.Shards <= 0 {
		c.Shards = c.MaxThreads
		if p := runtime.GOMAXPROCS(0); p < c.Shards {
			c.Shards = p
		}
	}
	c.Shards = pools.NextPow2(c.Shards)
	if c.Shards > pools.MaxShards {
		c.Shards = pools.MaxShards
	}
	minCap := 2 * c.MaxThreads * c.LocalPool
	if c.Capacity < minCap {
		c.Capacity = minCap
	}
}

// Manager owns the arena, the three sharded pools and the thread contexts
// of one optimistic-access instance. T is the node type of the client
// structure.
type Manager[T any] struct {
	cfg      Config
	nodes    *arena.Arena[T]
	ba       *pools.BlockArena
	ready    pools.ShardedCountedStack
	retire   pools.ShardedVStack
	process  pools.ShardedVStack
	threads  []*Thread[T]
	reset    func(*T) // zeroes a node on allocation (Algorithm 5's memset)
	lessor   *lease.Registry
	phaseHst metrics.Histogram
	stats    *obs.ThreadStats // per-thread counter blocks, one per context
	tracer   *trace.Recorder  // per-thread protocol event rings
}

// NewManager builds a manager. reset must zero every field of a node using
// plain or atomic stores; it runs while the slot is owned exclusively by the
// allocating thread.
func NewManager[T any](cfg Config, reset func(*T)) *Manager[T] {
	cfg.fill()
	m := &Manager[T]{
		cfg:    cfg,
		nodes:  arena.New[T](cfg.Capacity),
		ba:     pools.NewBlockArena(cfg.Capacity),
		reset:  reset,
		lessor: lease.NewRegistry(cfg.MaxThreads),
	}
	m.ready.Init(cfg.Shards)
	m.retire.Init(cfg.Shards, 0)
	m.process.Init(cfg.Shards, 0)
	// Pre-chop the whole capacity into ready blocks, dealt round-robin
	// across the shards so every thread's home shard starts stocked.
	base := m.nodes.Reserve(cfg.Capacity)
	blk := m.ba.Get()
	shard := uint32(0)
	for i := 0; i < cfg.Capacity; i++ {
		m.ba.B(blk).Push(base + uint32(i))
		if m.ba.B(blk).Full(int32(cfg.LocalPool)) {
			m.ready.Push(m.ba, blk, shard)
			shard++
			blk = m.ba.Get()
		}
	}
	if !m.ba.B(blk).Empty() {
		m.ready.Push(m.ba, blk, shard)
	} else {
		m.ba.Put(blk)
	}
	m.stats = obs.NewThreadStats(cfg.MaxThreads)
	m.tracer = trace.NewRecorder(cfg.MaxThreads, cfg.TraceRing)
	m.threads = make([]*Thread[T], cfg.MaxThreads)
	for i := range m.threads {
		t := &Thread[T]{
			mgr:       m,
			id:        i,
			hps:       make([]atomic.Uint64, WriteHPs+cfg.OwnerHPs),
			allocBlk:  pools.NoBlock,
			retireBlk: pools.NoBlock,
			view:      m.nodes.View(),
			stats:     m.stats.At(i),
			ring:      m.tracer.Ring(i),
			rng:       uint64(i)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03,
		}
		m.threads[i] = t
	}
	return m
}

// Arena exposes the node arena so client structures can dereference
// handles.
func (m *Manager[T]) Arena() *arena.Arena[T] { return m.nodes }

// Thread returns the context for thread id. Each context must be used by a
// single goroutine at a time.
func (m *Manager[T]) Thread(id int) *Thread[T] { return m.threads[id] }

// MaxThreads returns the configured thread count.
func (m *Manager[T]) MaxThreads() int { return m.cfg.MaxThreads }

// Lessor exposes the manager's session-slot registry: the lock-free free
// list that multiplexes dynamically created goroutines onto the fixed
// thread contexts (see package lease). Structures built on the manager
// route their Acquire/Release surface through it.
func (m *Manager[T]) Lessor() *lease.Registry { return m.lessor }

// AcquireThread leases a free thread context for the calling goroutine.
// It fails with lease.ErrNoFreeSessions when all MaxThreads contexts are
// leased and with lease.ErrClosed after Close. The returned context must
// be returned with ReleaseThread; contexts handed out via Thread(id)
// (the fixed-slot API) bypass the registry and must never be released.
func (m *Manager[T]) AcquireThread() (*Thread[T], error) {
	id, err := m.lessor.Acquire()
	if err != nil {
		return nil, err
	}
	return m.threads[id], nil
}

// ReleaseThread returns a context leased by AcquireThread to the free
// pool. The thread's local alloc/retire blocks stay attached to the
// context (the next lessee inherits them), so no slots are stranded by
// lease churn. It panics on a context that is not currently leased.
func (m *Manager[T]) ReleaseThread(t *Thread[T]) { m.lessor.Release(t.id) }

// Close marks the session registry closed: AcquireThread fails with
// lease.ErrClosed from then on, while outstanding leases stay valid so a
// draining server can release them one by one.
func (m *Manager[T]) Close() { m.lessor.Close() }

// Phase returns the current (even) phase version of the retire pool,
// i.e. twice the number of completed phase swaps. While a swap is in
// flight the minimum shard version is reported, rounded down to even.
func (m *Manager[T]) Phase() uint64 {
	v, _ := m.retire.Scan()
	return uint64(v &^ 1)
}

// Quiesce drives reclamation phases (on the calling goroutine, using
// thread context 0) until every retired slot that is not hazard-pointer
// protected has been recycled. Call it after workers stop — for graceful
// shutdown accounting or test teardown. It returns the number of slots
// still withheld by hazard pointers.
func (m *Manager[T]) Quiesce() int {
	t := m.threads[0]
	t.FlushRetired()
	for i := 0; i < 4; i++ { // retire→swap→process needs at most two phases
		t.Recycling()
		if !m.retire.AnyBlocks() && !m.process.AnyBlocks() {
			break
		}
	}
	_, retired := m.retire.ChainStats(m.ba)
	_, processing := m.process.ChainStats(m.ba)
	return retired + processing
}

// InjectWarnings sets every thread's warning bit as if a recycler had
// announced the given phase. It is a fault-injection hook for tests: a
// spurious warning may only ever cause a (safe) restart of a
// parallelizable method, so chaos tests broadcast fake phases while
// checking that operation results stay sequential.
func (m *Manager[T]) InjectWarnings(phase uint32) { m.setWarnings(phase) }

// PhasePauses returns the histogram of per-call Recycling durations — the
// reclamation pauses an allocating thread can experience.
func (m *Manager[T]) PhasePauses() *metrics.Histogram { return &m.phaseHst }

// Stats aggregates counters across all threads. The per-thread blocks are
// atomic, so Stats is safe to call while workers run (live monitoring);
// the cross-counter view is then approximate by in-flight operations.
func (m *Manager[T]) Stats() smr.Stats {
	tot := m.stats.Totals()
	return smr.Stats{
		Allocs:    tot[obs.Allocs],
		Retires:   tot[obs.Retires],
		Recycled:  tot[obs.Recycled],
		ReRetired: tot[obs.ReRetired],
		Restarts:  tot[obs.Restarts],
		Phases:    m.Phase() / 2,
	}
}

// ObsStats exposes the per-thread counter blocks for registration and for
// drivers that feed the Ops counter.
func (m *Manager[T]) ObsStats() *obs.ThreadStats { return m.stats }

// TraceRecorder exposes the per-thread protocol event rings (phase
// transitions, warning traffic, restarts, drains, freezes, refills).
func (m *Manager[T]) TraceRecorder() *trace.Recorder { return m.tracer }

// RegisterObs registers the manager's live metric sources with reg: the
// per-thread counter blocks (prefix oa_smr), the phase-pause histogram,
// and gauges sampled from the arena, the block pools and the phase state.
// Gauges derived from counter pairs are approximate while writers run;
// see DESIGN.md "Observability" for the sampling discipline.
func (m *Manager[T]) RegisterObs(reg *obs.Registry) {
	reg.ThreadCounters("oa_smr", m.stats)
	reg.Trace(m.tracer)
	reg.Histogram("oa_phase_pause_seconds",
		"duration of Recycling calls (Algorithm 6 reclamation pauses)", &m.phaseHst)
	reg.Gauge("oa_phase", "completed reclamation phase swaps",
		func() float64 { return float64(m.Phase() / 2) })
	reg.Gauge("oa_retired_backlog_slots",
		"retired slots not yet recycled (retires - recycled, approximate)",
		func() float64 {
			tot := m.stats.Totals()
			if tot[obs.Recycled] >= tot[obs.Retires] {
				return 0
			}
			return float64(tot[obs.Retires] - tot[obs.Recycled])
		})
	reg.Gauge("oa_sessions_leased", "thread contexts currently leased via AcquireThread",
		func() float64 { return float64(m.lessor.Leased()) })
	reg.Counter("oa_session_grants_total", "session leases ever granted",
		m.lessor.Grants)
	reg.Counter("oa_session_exhausted_total",
		"AcquireThread calls rejected because every context was leased",
		m.lessor.Exhausted)
	reg.Gauge("oa_arena_slots_reserved", "node slots handed out by the arena",
		func() float64 { return float64(m.nodes.Limit()) })
	reg.Gauge("oa_arena_slots_capacity", "node slots backed by arena chunks",
		func() float64 { return float64(m.nodes.Cap()) })
	reg.Gauge("oa_pool_blocks", "transfer blocks ever created by the block arena",
		func() float64 { return float64(m.ba.Blocks()) })
	reg.Gauge("oa_pool_free_blocks", "transfer blocks idle in the block freelist",
		func() float64 { return float64(m.ba.FreeBlocks()) })
	reg.Gauge("oa_retire_pool_frozen",
		"1 while any retire shard's version is odd (phase swap in flight)",
		func() float64 {
			if _, stable := m.retire.Scan(); !stable {
				return 1
			}
			return 0
		})
	reg.Gauge("oa_pool_shards", "shards each global block pool is split into",
		func() float64 { return float64(m.cfg.Shards) })
	reg.Counter("oa_pool_steals_total",
		"block pops served by a shard other than the popping thread's home",
		func() uint64 {
			return m.ready.TotalSteals() + m.retire.TotalSteals() + m.process.TotalSteals()
		})
	n := m.cfg.Shards
	reg.GaugeVec("oa_ready_shard_blocks",
		"transfer blocks in each ready-pool shard", "shard", n,
		func(i int) float64 { return float64(m.ready.Blocks(i)) })
	reg.GaugeVec("oa_retire_shard_blocks",
		"transfer blocks in each retire-pool shard", "shard", n,
		func(i int) float64 { return float64(m.retire.Blocks(i)) })
	reg.GaugeVec("oa_process_shard_blocks",
		"transfer blocks in each processing-pool shard", "shard", n,
		func(i int) float64 { return float64(m.process.Blocks(i)) })
	reg.CounterVec("oa_ready_shard_steals_total",
		"ready-pool pops served from this shard to threads homed elsewhere", "shard", n,
		func(i int) uint64 { return m.ready.Steals(i) })
	reg.CounterVec("oa_process_shard_steals_total",
		"drain pops served from this processing shard to threads homed elsewhere", "shard", n,
		func(i int) uint64 { return m.process.Steals(i) })
}

// setWarnings implements the phase-change broadcast: every thread's warning
// word becomes {phase, 1}. With the Appendix E optimization the update is a
// CAS that succeeds at most once per phase per thread, so each thread
// restarts at most once per phase.
//
// The CAS must be retried until the observed stamp is current: the owner
// clears the warning bit with its own CAS (Thread.Check), and a recycler
// whose single attempt lost that race would silently skip stamping the
// thread for the phase — a lost warning, which is a safety bug (the thread
// could act on a stale read of a slot this very phase recycles). Losing to
// a *different phase's* recycler re-enters the loop too; overwriting a
// foreign stamp is always safe (at worst one extra restart).
func (m *Manager[T]) setWarnings(phase uint32) {
	word := uint64(phase)<<8 | 1
	for _, t := range m.threads {
		if m.cfg.WarningByStore {
			// Naive broadcast (the ablation): every recycler of the phase
			// re-warns every thread, re-triggering restarts after the
			// thread already acknowledged — the paper's "n restarts per
			// thread per write" downside.
			t.warn.Store(word)
			continue
		}
		for {
			w := t.warn.Load()
			if w>>8 == uint64(phase) {
				break // already stamped for this phase (Appendix E)
			}
			if t.warn.CompareAndSwap(w, word) {
				break
			}
		}
	}
}

// freezeRetire initiates the phase swap for even version v: every retire
// shard is CASed from (v, head) to (v+1, head). Each shard's CAS retries
// while concurrent retire pushes move its head, so the freeze — unlike a
// single-attempt CAS — cannot silently fail and leave the caller's local
// version ahead of the pool. Shards already frozen or advanced by helpers
// are skipped. The caller must have verified every processing shard empty
// at v first (the freeze precondition; see the package deviation note).
// Shards this caller froze are recorded in rg (the initiator's trace
// ring; helpers that race it ahead go untraced, which only under-counts).
func (m *Manager[T]) freezeRetire(v uint32, rg *trace.Ring) {
	for i := 0; i < m.retire.NumShards(); i++ {
		var bo pools.Backoff
		for {
			sv, h := m.retire.LoadShard(i)
			if sv != v {
				break // frozen (v+1) or completed (v+2) by a helper
			}
			if m.retire.CASShard(i, v, h, v+1, h) {
				if trace.Enabled() {
					rg.Record(trace.EvFreeze, trace.FreezePayload(v, i))
				}
				break
			}
			bo.Pause()
		}
	}
}

// completeSwap drives the in-flight swap of phase v (even) to completion:
// for every retire shard, finish freezing it at v+1, move its frozen chain
// into the matching processing shard at v+2, and reset the retire shard to
// (v+2, empty). A frozen shard's head is immutable (pushes fail on the odd
// version and nothing pops the retire pool), so all helpers agree on the
// chain they move, and every CAS is idempotent across helpers.
func (m *Manager[T]) completeSwap(v uint32) {
	for i := 0; i < m.retire.NumShards(); i++ {
		var bo pools.Backoff
		for {
			sv, h := m.retire.LoadShard(i)
			if sv >= v+2 {
				break // this shard's swap already completed
			}
			if sv == v {
				if !m.retire.CASShard(i, v, h, v+1, h) {
					bo.Pause()
				}
				continue
			}
			// sv == v+1: move the frozen chain into the processing shard.
			// Only the CAS winner transfers the occupancy gauges, and it
			// does so by taking the retire shard's gauge wholesale rather
			// than walking the chain: a helper that loses this CAS could
			// still be mid-walk after the winner publishes the chain to
			// drainers, racing their pops and block recycling. The gauge
			// equals the frozen chain's block count up to in-flight pusher
			// increments, which the next phase's take sweeps along.
			pv, ph := m.process.LoadShard(i)
			if pv == v && m.process.CASShard(i, pv, ph, v+2, h) {
				if g := m.retire.TakeBlocks(i); g != 0 {
					m.process.AdjustBlocks(i, g)
				}
			}
			m.retire.CASShard(i, v+1, h, v+2, pools.NoBlock)
		}
	}
}

// helpSwap completes any in-flight phase swap and returns the retire
// pool's stable even version (all shards equal). The paper's single-CAS
// swap becomes a walk over the shards; lock freedom is preserved because
// every step is a helpable CAS on versioned state that only moves forward.
func (m *Manager[T]) helpSwap() uint32 {
	var bo pools.Backoff
	for {
		v, stable := m.retire.Scan()
		if stable {
			return v
		}
		m.completeSwap(v &^ 1)
		bo.Pause()
	}
}
