package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/arena"
	"repro/internal/lease"
	"repro/internal/obs"
	"repro/internal/pools"
	"repro/internal/smr"
	"repro/internal/trace"
)

// Thread is the per-thread context of the optimistic access scheme. It
// carries the warning word, the hazard pointers, the thread's local phase
// version and the two local pools (allocation and retire blocks).
//
// A Thread must be used by one goroutine at a time; the recycler running in
// any thread may concurrently *read* the hazard pointers and *update* the
// warning word, which is why both are atomics.
type Thread[T any] struct {
	mgr *Manager[T]
	id  int

	// warn packs {phase:56 | warning:8}. The recycler sets it via CAS (or
	// plain store under the WarningByStore ablation); the owner clears the
	// low byte, preserving the phase stamp so each phase sets it at most
	// once (Appendix E).
	warn atomic.Uint64

	// hps[0..2] guard observable CASes (Algorithm 2); hps[3..] are the
	// owner hazard pointers installed by Algorithm 3. Values are slot+1,
	// zero meaning empty.
	hps []atomic.Uint64

	localVer  uint32
	allocBlk  uint32 // current allocation block, NoBlock if none
	retireBlk uint32 // current local retire block, NoBlock if none

	// rng drives the pseudo-random shard steal probing (xorshift64,
	// thread-local so probing costs no shared memory traffic).
	rng uint64

	// view snapshots the arena's grow-only chunk directory so the node
	// dereference hot path (every hop of every traversal) pays zero atomic
	// loads; see arena.View for the staleness-safety argument.
	view arena.View[T]

	scratchHP smr.SlotSet // reused sorted hazard-pointer snapshot
	// snapPhase/snapValid key the scratchHP cache: within one phase the
	// sealed snapshot is rebuilt at most once per thread, because every
	// drain pass of phase p may reuse any snapshot taken after this thread
	// ran setWarnings(p) (see snapshotHPs for the safety argument).
	snapPhase uint32
	snapValid bool

	// stats is this thread's cache-padded counter block inside the
	// manager's obs.ThreadStats array. The owner increments with
	// uncontended atomic adds; any goroutine may aggregate concurrently
	// (Manager.Stats, the obs registry), so no quiescence is required.
	// Per-read hot counters are gated on obs.Enabled().
	stats *obs.PerThread

	// ring is this thread's protocol event trace ring. Recording is gated
	// on trace.Enabled() at every site and only ever touches sites already
	// off the per-read fast path (warning hits, refills, recycling).
	ring *trace.Ring
}

// ID returns the thread index within the manager.
func (t *Thread[T]) ID() int { return t.id }

// Node dereferences a slot handle. The result may alias recycled memory;
// callers must follow every read with Check per Algorithm 1. The lookup
// goes through the thread's directory view: two plain loads, no atomics.
func (t *Thread[T]) Node(slot uint32) *T { return t.view.At(slot) }

// Warning reports whether the warning bit is set (a recycling phase started
// since the thread last cleared it).
func (t *Thread[T]) Warning() bool { return t.warn.Load()&warnMask != 0 }

// Check implements the tail of Algorithm 1: it must be called after every
// optimistic read of shared node memory. It returns true when the enclosing
// normalized method must restart; in that case the warning bit has been
// cleared already (restarting from scratch cannot encounter slots retired
// before the current phase, so clearing is safe — §4).
func (t *Thread[T]) Check() bool { return t.check(trace.CauseRead) }

// check is Check with the restart cause attributed for the event trace:
// the read barrier, the pre-CAS barrier (ProtectCAS) and the generator
// seal (SealGenerator) share the warning-word protocol but restart the
// operation for different reasons.
func (t *Thread[T]) check(cause trace.Cause) bool {
	if obs.Enabled() {
		t.stats.Inc(obs.WarningChecks)
	}
	w := t.warn.Load()
	if w&warnMask == 0 {
		return false
	}
	// Warning observed: the slow path. All trace traffic lives here, so
	// the per-read fast path above stays two loads and a branch.
	if trace.Enabled() {
		t.ring.Record(trace.EvWarnCheck, w>>8)
	}
	t.warn.CompareAndSwap(w, w&^warnMask)
	if trace.Enabled() {
		t.ring.Record(trace.EvWarnAck, w>>8)
		t.ring.Record(trace.EvRestart, uint64(cause))
	}
	t.stats.Inc(obs.Warnings)
	t.stats.Inc(obs.Restarts)
	return true
}

func hpWord(p arena.Ptr) uint64 {
	if p.IsNil() {
		return 0
	}
	return uint64(p.Unmark().Slot()) + 1
}

// ProtectCAS implements the prologue of Algorithm 2 for an observable
// instruction CAS(&o.field, a2, a3): it publishes hazard pointers for the
// (unmarked) object and both pointer operands, then performs the warning
// check. Pass NilPtr for operands that are not pointers. A true result
// means restart: the hazard pointers have been cleared and the warning
// reset. On false the caller may execute the CAS and must then call
// ClearCAS.
//
// The atomic stores publishing the hazard pointers are sequentially
// consistent, which subsumes the paper's explicit memory fence.
func (t *Thread[T]) ProtectCAS(o, a2, a3 arena.Ptr) bool {
	t.hps[0].Store(hpWord(o))
	t.hps[1].Store(hpWord(a2))
	t.hps[2].Store(hpWord(a3))
	if obs.Enabled() {
		t.stats.Add(obs.HPPublishes, WriteHPs)
	}
	if t.check(trace.CauseWrite) {
		t.ClearCAS()
		return true
	}
	return false
}

// ClearCAS nullifies the three write-barrier hazard pointers (Algorithm 2
// line 11).
func (t *Thread[T]) ClearCAS() {
	t.hps[0].Store(0)
	t.hps[1].Store(0)
	t.hps[2].Store(0)
}

// SetOwnerHP publishes owner hazard pointer i (Algorithm 3's HP^owner set),
// protecting an object mentioned in the generator's CAS list until
// ClearOwnerHPs runs at the end of the wrap-up method.
func (t *Thread[T]) SetOwnerHP(i int, p arena.Ptr) {
	t.hps[WriteHPs+i].Store(hpWord(p))
	if obs.Enabled() {
		t.stats.Inc(obs.HPPublishes)
	}
}

// SealGenerator performs Algorithm 3's epilogue after the owner hazard
// pointers are installed: the (implicit) fence plus the warning check. A
// true result means the generator must restart; the owner hazard pointers
// have been cleared.
func (t *Thread[T]) SealGenerator() bool {
	if t.check(trace.CauseSeal) {
		t.ClearOwnerHPs()
		return true
	}
	return false
}

// ClearOwnerHPs nullifies all owner hazard pointers (end of wrap-up).
func (t *Thread[T]) ClearOwnerHPs() {
	for i := WriteHPs; i < len(t.hps); i++ {
		t.hps[i].Store(0)
	}
}

// Alloc implements Algorithm 5: pop a slot from the local allocation block,
// refilling from the readyPool and running Recycling as needed, then zero
// the slot. Refills hit the thread's home shard first — uncontended in
// steady state — and steal from sibling shards only when it runs dry.
func (t *Thread[T]) Alloc() uint32 {
	m := t.mgr
	for spins := 0; ; spins++ {
		if t.allocBlk != pools.NoBlock {
			b := m.ba.B(t.allocBlk)
			if !b.Empty() {
				slot := b.Pop()
				m.reset(t.view.At(slot))
				t.stats.Inc(obs.Allocs)
				return slot
			}
			m.ba.Put(t.allocBlk)
			t.allocBlk = pools.NoBlock
		}
		if blk, shard, st := m.ready.PopFrom(m.ba, uint32(t.id), &t.rng); st == pools.StatusOK {
			t.allocBlk = blk
			if trace.Enabled() {
				k := trace.EvRefill
				if shard != m.ready.HomeShard(uint32(t.id)) {
					k = trace.EvSteal
				}
				t.ring.Record(k, uint64(shard))
			}
			continue
		}
		if spins >= m.cfg.AllocSpinLimit {
			// The panic value is an error wrapping the shared capacity
			// sentinel so recover + errors.Is(err, ErrCapacityExhausted)
			// can classify it; admission-control layers should reject
			// load well before this point (see package lease).
			panic(fmt.Errorf(
				"core: allocation starved after %d recycling attempts; "+
					"capacity %d is too small for the live set "+
					"(size it as live nodes + δ, δ ≥ 2·threads·localPool = %d): %w",
				spins, m.cfg.Capacity, 2*m.cfg.MaxThreads*m.cfg.LocalPool,
				lease.ErrCapacityExhausted))
		}
		t.Recycling()
	}
}

// Retire implements Algorithm 4: buffer the slot in the local retire block
// and push full blocks into the retirePool, helping a phase change on
// VER-MISMATCH.
//
// The caller must guarantee proper retirement (§3.3): the slot was unlinked
// from the structure, and only one thread retires it.
func (t *Thread[T]) Retire(slot uint32) {
	m := t.mgr
	t.stats.Inc(obs.Retires)
	if t.retireBlk == pools.NoBlock {
		t.retireBlk = m.ba.Get()
	}
	b := m.ba.B(t.retireBlk)
	b.Push(slot)
	if !b.Full(int32(m.cfg.LocalPool)) {
		if obs.Enabled() {
			t.stats.SetLocalRetired(uint64(b.N))
		}
		return
	}
	for {
		if st := m.retire.Push(m.ba, t.retireBlk, t.localVer, uint32(t.id)); st == pools.StatusOK {
			t.retireBlk = pools.NoBlock
			if obs.Enabled() {
				t.stats.SetLocalRetired(0)
			}
			return
		}
		t.Recycling()
	}
}

// FlushRetired force-pushes a partially filled local retire block into the
// global pipeline. Benchmarks and tests call it when a thread finishes so
// no slots stay stranded in local buffers.
func (t *Thread[T]) FlushRetired() {
	m := t.mgr
	if t.retireBlk == pools.NoBlock || m.ba.B(t.retireBlk).Empty() {
		return
	}
	for {
		if st := m.retire.Push(m.ba, t.retireBlk, t.localVer, uint32(t.id)); st == pools.StatusOK {
			t.retireBlk = pools.NoBlock
			if obs.Enabled() {
				t.stats.SetLocalRetired(0)
			}
			return
		}
		t.Recycling()
	}
}

// Recycling implements Algorithm 6. It (1) performs or helps the phase
// swap, (2) sets all warning bits, (3) snapshots all hazard pointers, and
// (4) drains the processingPool, routing unprotected slots to the readyPool
// and protected ones back to the retirePool. The call's duration is
// recorded in the manager's pause histogram.
func (t *Thread[T]) Recycling() {
	m := t.mgr
	started := time.Now()
	defer func() { m.phaseHst.Observe(time.Since(started)) }()
	prevVer := t.localVer
	rv, stable := m.retire.Scan()
	switch {
	case stable && rv == t.localVer:
		// We are current. Start a new phase only once this phase's
		// processing pool is drained across every shard (see the deviation
		// note in the package comment); otherwise participate in the
		// current phase below.
		if m.process.EmptyAt(t.localVer) {
			m.freezeRetire(t.localVer, t.ring)
			m.helpSwap()
			t.localVer += 2
		}
	case rv&^1 == t.localVer:
		// A swap for our phase is in flight (some shards odd or already
		// advanced): help complete it. The freezer verified the processing
		// pool was empty.
		m.helpSwap()
		t.localVer += 2
	default:
		// We lag behind: jump to the pool's current phase (the paper's
		// Algorithm 6 line 9 catches up one phase per call, but the
		// intermediate phases were completed by their own recyclers, so a
		// laggard has nothing to do in them — and Quiesce relies on one
		// call reaching the front however long this context sat idle).
		if nv := rv &^ 1; nv > t.localVer {
			t.localVer = nv
		} else {
			t.localVer += 2
		}
	}
	if trace.Enabled() && t.localVer != prevVer {
		t.ring.Record(trace.EvPhase, uint64(t.localVer))
	}
	if v, _ := m.retire.Scan(); v > t.localVer {
		return // phase already finished (Algorithm 6 line 10)
	}
	if trace.Enabled() {
		t.ring.Record(trace.EvWarnSet, uint64(t.localVer))
	}
	m.setWarnings(t.localVer)
	hp := t.snapshotHPs()
	t.stats.Inc(obs.DrainPasses)
	recycled, reRetired := t.drain(hp)
	if trace.Enabled() {
		t.ring.Record(trace.EvDrain, trace.DrainPayload(recycled, reRetired))
	}
}

// snapshotHPs collects every thread's hazard pointers into the reusable
// sorted scratch set (Algorithm 6 lines 16–18; the paper uses a hash
// table, but with at most threads·HPs entries a sorted array + binary
// search makes both the build and each drain probe cheaper).
//
// The sealed set is cached per phase: repeated drain passes inside one
// phase (an allocating thread spinning on Recycling, or a laggard catching
// up after the pool already drained) reuse the snapshot instead of
// re-reading threads·HPs atomics and re-sorting. Reuse is safe in both
// directions. HPs cleared since the snapshot only make it pessimistic: the
// slot is re-retired and reclaimed next phase. HPs published since the
// snapshot cannot protect a slot this phase drains: the snapshot was taken
// after this thread ran setWarnings(phase), so a publisher either had not
// yet acknowledged the phase — its next Check restarts it and clears the
// HP before any write — or had acknowledged it, after which a fresh
// traversal cannot reach slots retired before the phase (§4; the same
// argument that lets one snapshot cover a whole multi-block drain).
func (t *Thread[T]) snapshotHPs() *smr.SlotSet {
	hp := &t.scratchHP
	if t.snapValid && t.snapPhase == t.localVer {
		return hp
	}
	hp.Reset()
	for _, other := range t.mgr.threads {
		for i := range other.hps {
			if w := other.hps[i].Load(); w != 0 {
				hp.Add(uint32(w - 1))
			}
		}
	}
	hp.Seal()
	t.snapPhase = t.localVer
	t.snapValid = true
	return hp
}

// drain processes the processingPool for phase t.localVer (Algorithm 6
// lines 20–30) and returns how many slots it recycled and re-retired.
// The active ready/re-retire block pointers are resolved once per block
// swap, and generation bumps go through the thread's gens view, so the
// per-slot loop performs no block-table or chunk-table loads. Pops prefer
// the thread's home processing shard and steal from siblings, so
// concurrent drainers of one phase spread across the shards instead of
// convoying on one head word.
func (t *Thread[T]) drain(hp *smr.SlotSet) (uint64, uint64) {
	m := t.mgr
	home := uint32(t.id)
	homeShard := m.process.HomeShard(home)
	readyBlk := pools.NoBlock
	reBlk := pools.NoBlock
	var readyB, reB *pools.Block
	limit := int32(m.cfg.LocalPool)
	// Per-slot counter traffic is batched into locals and published once
	// at the end so the drain loop itself performs no atomic adds.
	var recycled, reRetired uint64
	for {
		blk, shard, st := m.process.PopFrom(m.ba, t.localVer, home, &t.rng)
		if st != pools.StatusOK {
			break // StatusEmpty: phase drained; StatusVerMismatch: superseded
		}
		if trace.Enabled() && shard != homeShard {
			t.ring.Record(trace.EvSteal, uint64(shard))
		}
		b := m.ba.B(blk)
		for i := int32(0); i < b.N; i++ {
			slot := b.Slots[i]
			if hp.Contains(slot) {
				// Protected: back to the retire pool for the next phase.
				if reBlk == pools.NoBlock {
					reBlk = m.ba.Get()
					reB = m.ba.B(reBlk)
				}
				reB.Push(slot)
				reRetired++
				if reB.Full(limit) {
					t.pushRetireAnyPhase(reBlk)
					reBlk = pools.NoBlock
					reB = nil
				}
			} else {
				// Unprotected: recycled. Bump the debug generation so tests
				// can detect (HP/EBR) or account for (OA) stale accesses.
				t.view.BumpGen(slot)
				if readyBlk == pools.NoBlock {
					readyBlk = m.ba.Get()
					readyB = m.ba.B(readyBlk)
				}
				readyB.Push(slot)
				recycled++
				if readyB.Full(limit) {
					m.ready.Push(m.ba, readyBlk, home)
					readyBlk = pools.NoBlock
					readyB = nil
				}
			}
		}
		b.N = 0
		m.ba.Put(blk)
	}
	if readyBlk != pools.NoBlock {
		if readyB.Empty() {
			m.ba.Put(readyBlk)
		} else {
			m.ready.Push(m.ba, readyBlk, home)
		}
	}
	if reBlk != pools.NoBlock {
		if reB.Empty() {
			m.ba.Put(reBlk)
		} else {
			t.pushRetireAnyPhase(reBlk)
		}
	}
	if recycled != 0 {
		t.stats.Add(obs.Recycled, recycled)
	}
	if reRetired != 0 {
		t.stats.Add(obs.ReRetired, reRetired)
	}
	return recycled, reRetired
}

// pushRetireAnyPhase pushes a block of still-protected slots into the
// retirePool at whatever phase it is in, helping freezes along the way.
// Retiring into a later phase is always proper, so unlike Algorithm 6
// line 28 this never abandons slots (see the package deviation note).
func (t *Thread[T]) pushRetireAnyPhase(blk uint32) {
	m := t.mgr
	for {
		ver := m.helpSwap()
		if st := m.retire.Push(m.ba, blk, ver, uint32(t.id)); st == pools.StatusOK {
			return
		}
	}
}
