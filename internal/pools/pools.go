// Package pools implements the lock-free object pools of the optimistic
// access paper (§5 "Methodology", §4 "The Recycling Mechanism").
//
// Slots travel between threads in blocks of up to 126 slot indices — the
// paper's "lock-free stack, where each item in the stack is an array of 126
// objects". Global pools are Treiber stacks of blocks whose head word packs
// a 32-bit version next to a 32-bit block index and is manipulated by a
// single 64-bit CAS (the paper's "wide CAS" on head+version).
//
// Two stack flavours share the representation:
//
//   - VStack: the phase-versioned stacks (retirePool, processingPool). Every
//     push/pop carries the caller's phase version; a mismatch returns
//     StatusVerMismatch, telling the thread a new reclamation phase started.
//   - CountedStack: the readyPool. Allocation does not depend on the phase
//     (paper §4), but the head still needs ABA protection because a block
//     emptied by one thread can be reused and re-pushed while another
//     thread's pop is in flight; the version field is used as a plain push
//     counter.
//
// Within one phase the versioned stacks are ABA-free by construction: the
// retirePool is push-only during a phase (retire and re-retire of protected
// slots), the processingPool is pop-only (it is filled wholesale by the
// phase swap), and the swap itself bumps the version. This argument is
// exercised by the stress tests in this package.
package pools

import (
	"sync/atomic"

	"repro/internal/arena"
)

// BlockCap is the number of slot indices a block carries. The paper uses
// 126-object arrays; Figure 2 sweeps the effective local-pool size, which
// maps to the Fill limit used by local pools, not this constant.
const BlockCap = 126

// NoBlock is the nil block index terminating stack chains.
const NoBlock uint32 = ^uint32(0)

// Status is the result of a versioned pool operation.
type Status int

const (
	// StatusOK means the operation applied.
	StatusOK Status = iota
	// StatusEmpty means a pop found the stack empty at the right version.
	StatusEmpty
	// StatusVerMismatch is the paper's VER-MISMATCH: the pool's version is
	// not the caller's, i.e. a new reclamation phase has started (or is in
	// the middle of the odd-version freeze).
	StatusVerMismatch
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusEmpty:
		return "EMPTY"
	case StatusVerMismatch:
		return "VER-MISMATCH"
	default:
		return "invalid"
	}
}

// Block is a batch of slot indices plus the intrusive next link used by the
// block stacks. N and Slots are owned by exactly one thread except while the
// block is inside a stack, so they are plain fields; ownership transfer
// happens through the stacks' atomics.
type Block struct {
	next  atomic.Uint32 // next block index in the chain, NoBlock at the tail
	N     int32         // number of valid entries in Slots
	Slots [BlockCap]uint32
}

// Full reports whether the block holds limit entries (limit <= BlockCap).
func (b *Block) Full(limit int32) bool { return b.N >= limit }

// Empty reports whether the block holds no entries.
func (b *Block) Empty() bool { return b.N == 0 }

// Push appends a slot index. The caller must own the block.
func (b *Block) Push(slot uint32) { b.Slots[b.N] = slot; b.N++ }

// Pop removes and returns the last slot index. The caller must own the
// block, which must be non-empty.
func (b *Block) Pop() uint32 { b.N--; return b.Slots[b.N] }

// BlockArena allocates and recycles Block structs. Blocks churn once per
// ~BlockCap data-structure operations, so a single counted Treiber freelist
// is plenty. The count half of the head word bumps on every push, defeating
// ABA (pops alone cannot reintroduce a block).
type BlockArena struct {
	a     *arena.Arena[Block]
	free  atomic.Uint64 // packed {count:32, idx:32}
	nfree atomic.Int64  // freelist length gauge (occupancy observability)
}

// NewBlockArena creates a block arena sized for roughly cap slots of
// traffic.
func NewBlockArena(capSlots int) *BlockArena {
	ba := &BlockArena{a: arena.New[Block](capSlots/BlockCap + 8)}
	ba.free.Store(pack(0, NoBlock))
	return ba
}

func pack(ver, idx uint32) uint64 { return uint64(ver)<<32 | uint64(idx) }

func unpack(w uint64) (ver, idx uint32) { return uint32(w >> 32), uint32(w) }

// B resolves a block index to its Block.
func (ba *BlockArena) B(idx uint32) *Block { return ba.a.At(idx) }

// Get returns an empty block, recycling from the freelist when possible.
func (ba *BlockArena) Get() uint32 {
	var bo Backoff
	for {
		w := ba.free.Load()
		c, idx := unpack(w)
		if idx == NoBlock {
			n := ba.a.Reserve(1)
			ba.a.At(n).N = 0
			return n
		}
		next := ba.a.At(idx).next.Load()
		if ba.free.CompareAndSwap(w, pack(c, next)) {
			ba.nfree.Add(-1)
			b := ba.a.At(idx)
			b.N = 0
			return idx
		}
		bo.Pause()
	}
}

// Put returns an empty block to the freelist.
func (ba *BlockArena) Put(idx uint32) {
	b := ba.a.At(idx)
	var bo Backoff
	for {
		w := ba.free.Load()
		c, head := unpack(w)
		b.next.Store(head)
		if ba.free.CompareAndSwap(w, pack(c+1, idx)) {
			ba.nfree.Add(1)
			return
		}
		bo.Pause()
	}
}

// Blocks returns the number of Block structs the arena has ever created —
// the upper bound on pool occupancy.
func (ba *BlockArena) Blocks() uint32 { return ba.a.Limit() }

// FreeBlocks returns the current freelist length. It is maintained beside
// the Treiber head (not inside its CAS), so concurrent readers see a value
// that can momentarily lag the true length — fine for a gauge.
func (ba *BlockArena) FreeBlocks() int64 { return ba.nfree.Load() }

// VStack is a phase-versioned Treiber stack of blocks (the retirePool and
// processingPool of Algorithm 6). The head packs {version:32, blockIdx:32}.
type VStack struct {
	head atomic.Uint64
}

// Init sets the stack empty at version ver.
func (s *VStack) Init(ver uint32) { s.head.Store(pack(ver, NoBlock)) }

// Load returns the current version and head block index.
func (s *VStack) Load() (ver, idx uint32) { return unpack(s.head.Load()) }

// Ver returns the current version.
func (s *VStack) Ver() uint32 { v, _ := s.Load(); return v }

// CompareAndSwap atomically replaces {oldVer,oldIdx} with {newVer,newIdx}.
// It is the wide-CAS primitive the phase swap is built from.
func (s *VStack) CompareAndSwap(oldVer, oldIdx, newVer, newIdx uint32) bool {
	return s.head.CompareAndSwap(pack(oldVer, oldIdx), pack(newVer, newIdx))
}

// Push adds block idx on top, succeeding only while the stack version
// equals ver.
func (s *VStack) Push(ba *BlockArena, idx, ver uint32) Status {
	b := ba.B(idx)
	var bo Backoff
	for {
		w := s.head.Load()
		v, top := unpack(w)
		if v != ver {
			return StatusVerMismatch
		}
		b.next.Store(top)
		if s.head.CompareAndSwap(w, pack(ver, idx)) {
			return StatusOK
		}
		bo.Pause()
	}
}

// Pop removes and returns the top block, succeeding only while the stack
// version equals ver.
func (s *VStack) Pop(ba *BlockArena, ver uint32) (uint32, Status) {
	var bo Backoff
	for {
		w := s.head.Load()
		v, top := unpack(w)
		if v != ver {
			return NoBlock, StatusVerMismatch
		}
		if top == NoBlock {
			return NoBlock, StatusEmpty
		}
		next := ba.B(top).next.Load()
		if s.head.CompareAndSwap(w, pack(ver, next)) {
			return top, StatusOK
		}
		bo.Pause()
	}
}

// CountedStack is the readyPool: a Treiber stack of blocks whose version
// half is a push counter rather than a phase (allocations do not depend on
// the phase, paper §4), giving ABA protection against block reuse.
type CountedStack struct {
	head atomic.Uint64
}

// Init sets the stack empty.
func (s *CountedStack) Init() { s.head.Store(pack(0, NoBlock)) }

// Push adds block idx on top.
func (s *CountedStack) Push(ba *BlockArena, idx uint32) {
	b := ba.B(idx)
	var bo Backoff
	for {
		w := s.head.Load()
		c, top := unpack(w)
		b.next.Store(top)
		if s.head.CompareAndSwap(w, pack(c+1, idx)) {
			return
		}
		bo.Pause()
	}
}

// Pop removes and returns the top block, or (NoBlock, StatusEmpty).
func (s *CountedStack) Pop(ba *BlockArena) (uint32, Status) {
	var bo Backoff
	for {
		w := s.head.Load()
		c, top := unpack(w)
		if top == NoBlock {
			return NoBlock, StatusEmpty
		}
		next := ba.B(top).next.Load()
		if s.head.CompareAndSwap(w, pack(c, next)) {
			return top, StatusOK
		}
		bo.Pause()
	}
}

// Drain pops every block currently in the stack and calls visit for each.
// Used by tests and by NoRecl teardown accounting.
func (s *CountedStack) Drain(ba *BlockArena, visit func(uint32)) {
	for {
		b, st := s.Pop(ba)
		if st != StatusOK {
			return
		}
		visit(b)
	}
}

// ChainLen walks a block chain starting at idx and returns the number of
// blocks and total slots. Only safe on a frozen or privately owned chain.
func ChainLen(ba *BlockArena, idx uint32) (blocks, slots int) {
	for idx != NoBlock {
		b := ba.B(idx)
		blocks++
		slots += int(b.N)
		idx = b.next.Load()
	}
	return
}
