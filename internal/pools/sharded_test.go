package pools

import (
	"runtime"
	"sync"
	"testing"
)

func TestNextPow2(t *testing.T) {
	cases := map[int]int{
		-3: 1, 0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 7: 8, 8: 8, 9: 16, 63: 64, 64: 64, 65: 128,
	}
	for n, want := range cases {
		if got := NextPow2(n); got != want {
			t.Fatalf("NextPow2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestShardedCountedInitRounding(t *testing.T) {
	var s ShardedCountedStack
	s.Init(5)
	if s.NumShards() != 8 {
		t.Fatalf("NumShards = %d, want 8", s.NumShards())
	}
	s.Init(1000)
	if s.NumShards() != MaxShards {
		t.Fatalf("NumShards = %d, want cap %d", s.NumShards(), MaxShards)
	}
}

func TestShardedCountedHomeAffinity(t *testing.T) {
	ba := NewBlockArena(1024)
	var s ShardedCountedStack
	s.Init(4)
	rng := uint64(1)
	// A push to home h must come back from a pop at home h with no steal.
	for home := uint32(0); home < 4; home++ {
		idx := ba.Get()
		ba.B(idx).Push(home)
		s.Push(ba, idx, home)
		if s.Blocks(int(home)) != 1 {
			t.Fatalf("shard %d occupancy = %d, want 1", home, s.Blocks(int(home)))
		}
		got, st := s.Pop(ba, home, &rng)
		if st != StatusOK || got != idx {
			t.Fatalf("Pop(home=%d) = %d,%v, want %d,OK", home, got, st, idx)
		}
		ba.Put(got)
	}
	if s.TotalSteals() != 0 {
		t.Fatalf("home-affine traffic recorded %d steals", s.TotalSteals())
	}
}

func TestShardedCountedStealFindsEveryShard(t *testing.T) {
	ba := NewBlockArena(1024)
	var s ShardedCountedStack
	s.Init(8)
	// Stock only shard 5; pops homed at 0 must steal it, and a further pop
	// must sweep every shard before reporting empty.
	idx := ba.Get()
	s.Push(ba, idx, 5)
	rng := uint64(42)
	got, st := s.Pop(ba, 0, &rng)
	if st != StatusOK || got != idx {
		t.Fatalf("steal Pop = %d,%v, want %d,OK", got, st, idx)
	}
	if s.Steals(5) != 1 || s.TotalSteals() != 1 {
		t.Fatalf("steal not counted on victim shard: shard5=%d total=%d", s.Steals(5), s.TotalSteals())
	}
	if _, st := s.Pop(ba, 0, &rng); st != StatusEmpty {
		t.Fatalf("empty sweep = %v, want EMPTY", st)
	}
}

func TestShardedCountedConcurrentTransfer(t *testing.T) {
	// The sharded readyPool under mixed homes: every produced slot is
	// consumed exactly once even with stealing and block-struct reuse.
	ba := NewBlockArena(4096)
	var s ShardedCountedStack
	s.Init(4)
	const producers, consumers, perProducer = 4, 4, 20000
	total := producers * perProducer
	var mu sync.Mutex
	got := make(map[uint32]int, total)
	var wg sync.WaitGroup
	done := make(chan struct{})
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			home := uint32(p)
			cur := ba.Get()
			for i := 0; i < perProducer; i++ {
				ba.B(cur).Push(uint32(p*perProducer + i))
				if ba.B(cur).Full(BlockCap) {
					s.Push(ba, cur, home)
					cur = ba.Get()
				}
			}
			if !ba.B(cur).Empty() {
				s.Push(ba, cur, home)
			} else {
				ba.Put(cur)
			}
		}(p)
	}
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func(c int) {
			defer cwg.Done()
			// Consumer homes deliberately collide on shard (c+1)&3 so some
			// pops hit the steal path.
			home := uint32(c + 1)
			rng := uint64(c)*0x9E3779B97F4A7C15 + 1
			for {
				idx, st := s.Pop(ba, home, &rng)
				if st != StatusOK {
					select {
					case <-done:
						idx, st = s.Pop(ba, home, &rng)
						if st != StatusOK {
							return
						}
					default:
						continue
					}
				}
				b := ba.B(idx)
				mu.Lock()
				for i := int32(0); i < b.N; i++ {
					got[b.Slots[i]]++
				}
				mu.Unlock()
				b.N = 0
				ba.Put(idx)
			}
		}(c)
	}
	wg.Wait()
	close(done)
	cwg.Wait()
	if len(got) != total {
		t.Fatalf("consumed %d distinct slots, want %d", len(got), total)
	}
	for slot, n := range got {
		if n != 1 {
			t.Fatalf("slot %d consumed %d times", slot, n)
		}
	}
	for i := 0; i < s.NumShards(); i++ {
		if s.Blocks(i) != 0 {
			t.Fatalf("shard %d occupancy gauge = %d after full drain", i, s.Blocks(i))
		}
	}
}

func TestShardedVStackVersionSemantics(t *testing.T) {
	ba := NewBlockArena(1024)
	var s ShardedVStack
	s.Init(4, 0)
	rng := uint64(7)
	if !s.EmptyAt(0) {
		t.Fatal("fresh pool not EmptyAt(0)")
	}
	if v, stable := s.Scan(); v != 0 || !stable {
		t.Fatalf("Scan = %d,%v, want 0,stable", v, stable)
	}
	idx := ba.Get()
	if st := s.Push(ba, idx, 2, 1); st != StatusVerMismatch {
		t.Fatalf("stale Push = %v, want VER-MISMATCH", st)
	}
	if st := s.Push(ba, idx, 0, 1); st != StatusOK {
		t.Fatalf("Push = %v", st)
	}
	if s.EmptyAt(0) {
		t.Fatal("EmptyAt(0) with a block present")
	}
	// Freeze shard 1 (the one holding the block): Scan turns unstable with
	// evenFloor(min)=0, and pops at 0 report mismatch, not empty.
	if _, h := s.LoadShard(1); !s.CASShard(1, 0, h, 1, h) {
		t.Fatal("freeze CAS failed")
	}
	if v, stable := s.Scan(); v != 0 || stable {
		t.Fatalf("Scan mid-freeze = %d,%v, want 0,unstable", v, stable)
	}
	if _, st := s.Pop(ba, 0, 0, &rng); st != StatusVerMismatch {
		t.Fatalf("Pop across frozen shard = %v, want VER-MISMATCH", st)
	}
	// All shards frozen odd: still unstable (odd), mismatch everywhere.
	for i := 0; i < 4; i++ {
		v, h := s.LoadShard(i)
		if v == 0 {
			s.CASShard(i, 0, h, 1, h)
		}
	}
	if _, stable := s.Scan(); stable {
		t.Fatal("all-odd pool must not scan stable")
	}
	// Advance everyone to 2 (emptying shard 1's chain like a swap would).
	for i := 0; i < 4; i++ {
		_, h := s.LoadShard(i)
		if !s.CASShard(i, 1, h, 2, NoBlock) {
			t.Fatalf("advance CAS failed on shard %d", i)
		}
	}
	if v, stable := s.Scan(); v != 2 || !stable {
		t.Fatalf("Scan = %d,%v, want 2,stable", v, stable)
	}
	if !s.EmptyAt(2) {
		t.Fatal("pool not EmptyAt(2) after advance")
	}
}

func TestShardedVStackStealAndConservation(t *testing.T) {
	ba := NewBlockArena(4096)
	var s ShardedVStack
	s.Init(4, 6)
	const blocks = 64
	pushed := map[uint32]bool{}
	for i := 0; i < blocks; i++ {
		idx := ba.Get()
		ba.B(idx).Push(uint32(i))
		if st := s.Push(ba, idx, 6, uint32(i)); st != StatusOK {
			t.Fatalf("Push = %v", st)
		}
		pushed[idx] = true
	}
	if b, sl := s.ChainStats(ba); b != blocks || sl != blocks {
		t.Fatalf("ChainStats = %d,%d, want %d,%d", b, sl, blocks, blocks)
	}
	// Pop everything from home 0: three quarters of the blocks are steals.
	rng := uint64(3)
	for i := 0; i < blocks; i++ {
		idx, st := s.Pop(ba, 6, 0, &rng)
		if st != StatusOK {
			t.Fatalf("Pop %d = %v", i, st)
		}
		if !pushed[idx] {
			t.Fatalf("Pop returned unknown block %d", idx)
		}
		delete(pushed, idx)
	}
	if _, st := s.Pop(ba, 6, 0, &rng); st != StatusEmpty {
		t.Fatalf("drained Pop = %v, want EMPTY", st)
	}
	if s.AnyBlocks() {
		t.Fatal("AnyBlocks true after full drain")
	}
	if s.TotalSteals() != blocks*3/4 {
		t.Fatalf("TotalSteals = %d, want %d", s.TotalSteals(), blocks*3/4)
	}
	for i := 0; i < s.NumShards(); i++ {
		if s.Blocks(i) != 0 {
			t.Fatalf("shard %d occupancy gauge = %d after drain", i, s.Blocks(i))
		}
	}
}

// BenchmarkReadyPoolParallel measures the readyPool push/pop cycle under
// all-threads contention, flat stack versus sharded. On a single global
// head every iteration is a CAS convoy; with sharding each goroutine's
// traffic stays on its home shard.
func BenchmarkReadyPoolParallel(b *testing.B) {
	b.Run("flat", func(b *testing.B) {
		ba := NewBlockArena(1 << 16)
		var s CountedStack
		s.Init()
		for i := 0; i < 256; i++ {
			s.Push(ba, ba.Get())
		}
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				idx, st := s.Pop(ba)
				if st != StatusOK {
					idx = ba.Get()
				}
				s.Push(ba, idx)
			}
		})
	})
	b.Run("sharded", func(b *testing.B) {
		ba := NewBlockArena(1 << 16)
		var s ShardedCountedStack
		s.Init(runtime.GOMAXPROCS(0))
		for i := 0; i < 256; i++ {
			s.Push(ba, ba.Get(), uint32(i))
		}
		var homeSeq uint32
		var mu sync.Mutex
		b.RunParallel(func(pb *testing.PB) {
			mu.Lock()
			home := homeSeq
			homeSeq++
			mu.Unlock()
			rng := uint64(home)*0x9E3779B97F4A7C15 + 1
			for pb.Next() {
				idx, st := s.Pop(ba, home, &rng)
				if st != StatusOK {
					idx = ba.Get()
				}
				s.Push(ba, idx, home)
			}
		})
	})
}
