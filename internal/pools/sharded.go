// Sharded block pools. The global Treiber stacks (readyPool, retirePool,
// processingPool) are a single-cache-line CAS convoy once enough threads
// allocate and retire concurrently: every refill, flush and drain pass
// lands on the same 64-bit head word. Both follow-ups to the source paper
// (Cohen, "Every Data Structure Deserves Lock-Free Memory Reclamation";
// Moreno & Rocha, "Releasing Memory with Optimistic Access") decentralize
// the reclamation pipeline for exactly this reason.
//
// A sharded pool is N independent stacks (N a power of two), each padded
// to its own pair of cache lines. Thread t's pushes go to its home shard
// (t & mask), so in steady state — every thread retiring roughly what it
// allocates — pushes and pops are uncontended. Pops that find the home
// shard empty steal from the other shards in a pseudo-random full-cycle
// probe order, so imbalanced workloads still find every block.
//
// The versioned flavour keeps the odd/even freeze semantics of the paper's
// Algorithm 6 *per shard*: a phase freeze (driven by core.helpSwap) walks
// all retire shards and CASes each from (v, head) to (v+1, head); the pool
// counts as frozen once every shard is odd at the same version. Pushing to
// a shard whose version moved on returns StatusVerMismatch exactly as the
// flat VStack does, so the caller's recovery path is unchanged.
package pools

import (
	"math/bits"
	"sync/atomic"
)

// MaxShards bounds the shard count; beyond this the steal sweep costs more
// than the contention it avoids.
const MaxShards = 64

// NextPow2 returns the smallest power of two >= n (minimum 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// shardPad pads each shard struct (3 words of state) to 128 bytes — two
// cache lines, so adjacent shards never false-share even with the
// spatial prefetcher pulling line pairs.
const shardPad = 128 - 24

// nextRand advances an xorshift64 state and returns the new value. Callers
// keep the state thread-local (e.g. core.Thread), so steal probing costs
// no shared memory traffic.
func nextRand(state *uint64) uint64 {
	x := *state
	if x == 0 {
		x = 0x9E3779B97F4A7C15
	}
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*state = x
	return x
}

type countedShard struct {
	s      CountedStack
	blocks atomic.Int64  // occupancy gauge: blocks pushed minus popped
	steals atomic.Uint64 // pops served to a thread whose home is elsewhere
	_      [shardPad]byte
}

// ShardedCountedStack is the sharded readyPool: N CountedStacks with
// home-shard pushes and steal-on-empty pops.
type ShardedCountedStack struct {
	shards []countedShard
	mask   uint32
}

// Init sizes the pool at NextPow2(n) shards (capped at MaxShards), all
// empty.
func (s *ShardedCountedStack) Init(n int) {
	n = NextPow2(n)
	if n > MaxShards {
		n = MaxShards
	}
	s.shards = make([]countedShard, n)
	s.mask = uint32(n - 1)
	for i := range s.shards {
		s.shards[i].s.Init()
	}
}

// NumShards returns the shard count (a power of two).
func (s *ShardedCountedStack) NumShards() int { return len(s.shards) }

// Blocks returns shard i's occupancy gauge. Maintained beside the Treiber
// heads (not inside their CAS), so concurrent readers can observe a value
// that momentarily lags — fine for a gauge.
func (s *ShardedCountedStack) Blocks(i int) int64 { return s.shards[i].blocks.Load() }

// Steals returns how many pops were served from shard i to threads homed
// elsewhere.
func (s *ShardedCountedStack) Steals(i int) uint64 { return s.shards[i].steals.Load() }

// TotalSteals sums the per-shard steal counters.
func (s *ShardedCountedStack) TotalSteals() uint64 {
	var n uint64
	for i := range s.shards {
		n += s.shards[i].steals.Load()
	}
	return n
}

// Push adds block idx to home's shard.
func (s *ShardedCountedStack) Push(ba *BlockArena, idx, home uint32) {
	sh := &s.shards[home&s.mask]
	sh.s.Push(ba, idx)
	sh.blocks.Add(1)
}

// Pop removes a block, preferring home's shard and then probing the rest
// in a pseudo-random full-cycle order seeded from *rng. It returns
// (NoBlock, StatusEmpty) only after a full sweep found every shard empty.
func (s *ShardedCountedStack) Pop(ba *BlockArena, home uint32, rng *uint64) (uint32, Status) {
	blk, _, st := s.PopFrom(ba, home, rng)
	return blk, st
}

// HomeShard returns the shard index thread context home pushes to and
// pops from first.
func (s *ShardedCountedStack) HomeShard(home uint32) int { return int(home & s.mask) }

// PopFrom is Pop plus the index of the shard that served the block (−1
// when every shard was empty), so callers can attribute home refills vs
// steals — e.g. to a trace recorder — without the pool knowing about
// either.
func (s *ShardedCountedStack) PopFrom(ba *BlockArena, home uint32, rng *uint64) (uint32, int, Status) {
	h := home & s.mask
	if blk, st := s.shards[h].s.Pop(ba); st == StatusOK {
		s.shards[h].blocks.Add(-1)
		return blk, int(h), StatusOK
	}
	n := uint32(len(s.shards))
	if n == 1 {
		return NoBlock, -1, StatusEmpty
	}
	// Odd stride on a power-of-two ring visits every shard exactly once.
	r := nextRand(rng)
	start := uint32(r)
	step := uint32(r>>32) | 1
	for i := uint32(0); i < n; i++ {
		j := (start + i*step) & s.mask
		if j == h {
			continue
		}
		if blk, st := s.shards[j].s.Pop(ba); st == StatusOK {
			s.shards[j].blocks.Add(-1)
			s.shards[j].steals.Add(1)
			return blk, int(j), StatusOK
		}
	}
	return NoBlock, -1, StatusEmpty
}

// Drain pops every block from every shard and calls visit for each. Only
// meaningful while no concurrent pushers run (tests, teardown accounting).
func (s *ShardedCountedStack) Drain(ba *BlockArena, visit func(uint32)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.s.Drain(ba, func(b uint32) {
			sh.blocks.Add(-1)
			visit(b)
		})
	}
}

type vShard struct {
	s      VStack
	blocks atomic.Int64
	steals atomic.Uint64
	_      [shardPad]byte
}

// ShardedVStack is a sharded phase-versioned pool (the retirePool and
// processingPool of Algorithm 6). Every shard carries its own
// {version:32, blockIdx:32} head with the flat VStack's semantics; the
// phase-swap protocol (owned by the core package) walks the shards,
// keeping them within one freeze step of each other.
type ShardedVStack struct {
	shards []vShard
	mask   uint32
}

// Init sizes the pool at NextPow2(n) shards (capped at MaxShards), all
// empty at version ver.
func (s *ShardedVStack) Init(n int, ver uint32) {
	n = NextPow2(n)
	if n > MaxShards {
		n = MaxShards
	}
	s.shards = make([]vShard, n)
	s.mask = uint32(n - 1)
	for i := range s.shards {
		s.shards[i].s.Init(ver)
	}
}

// NumShards returns the shard count (a power of two).
func (s *ShardedVStack) NumShards() int { return len(s.shards) }

// Blocks returns shard i's occupancy gauge (see ShardedCountedStack.Blocks
// for the accuracy caveat). The phase swap moves whole chains between
// pools with raw CASes; the swap winner transfers the gauge via
// AdjustBlocks.
func (s *ShardedVStack) Blocks(i int) int64 { return s.shards[i].blocks.Load() }

// AdjustBlocks adds delta to shard i's occupancy gauge. Used by the phase
// swap to account chains moved wholesale between pools.
func (s *ShardedVStack) AdjustBlocks(i int, delta int64) { s.shards[i].blocks.Add(delta) }

// TakeBlocks atomically drains shard i's occupancy gauge to zero and
// returns the drained value. The phase swap's winner uses it to move a
// frozen chain's gauge wholesale to the destination pool without walking
// the chain (which races with drainers once the chain is published). A
// pusher whose gauge increment lands after the take is swept up by the
// next phase's take, so the per-pool gauges stay eventually consistent.
func (s *ShardedVStack) TakeBlocks(i int) int64 { return s.shards[i].blocks.Swap(0) }

// Steals returns how many pops were served from shard i to threads homed
// elsewhere.
func (s *ShardedVStack) Steals(i int) uint64 { return s.shards[i].steals.Load() }

// TotalSteals sums the per-shard steal counters.
func (s *ShardedVStack) TotalSteals() uint64 {
	var n uint64
	for i := range s.shards {
		n += s.shards[i].steals.Load()
	}
	return n
}

// LoadShard returns shard i's version and head block index.
func (s *ShardedVStack) LoadShard(i int) (ver, idx uint32) { return s.shards[i].s.Load() }

// CASShard atomically replaces shard i's {oldVer,oldIdx} with
// {newVer,newIdx} — the wide-CAS primitive the per-shard freeze is built
// from.
func (s *ShardedVStack) CASShard(i int, oldVer, oldIdx, newVer, newIdx uint32) bool {
	return s.shards[i].s.CompareAndSwap(oldVer, oldIdx, newVer, newIdx)
}

// Scan reads every shard once and returns the minimum version observed
// plus whether the pool is stable: all shards at that same even version.
// While a swap of phase v is in flight shards sit in {v, v+1, v+2}, so an
// unstable scan's evenFloor(min) names the phase being swapped.
func (s *ShardedVStack) Scan() (minVer uint32, stable bool) {
	minVer, _ = s.shards[0].s.Load()
	stable = true
	for i := 1; i < len(s.shards); i++ {
		v, _ := s.shards[i].s.Load()
		if v != minVer {
			stable = false
			if v < minVer {
				minVer = v
			}
		}
	}
	if minVer&1 == 1 {
		stable = false
	}
	return minVer, stable
}

// EmptyAt reports whether every shard is empty at exactly version ver —
// the phase-freeze precondition (the processing pool must be drained at
// the current version before a new swap may start).
func (s *ShardedVStack) EmptyAt(ver uint32) bool {
	for i := range s.shards {
		v, idx := s.shards[i].s.Load()
		if v != ver || idx != NoBlock {
			return false
		}
	}
	return true
}

// Push adds block idx to home's shard, succeeding only while that shard's
// version equals ver.
func (s *ShardedVStack) Push(ba *BlockArena, idx, ver, home uint32) Status {
	sh := &s.shards[home&s.mask]
	if st := sh.s.Push(ba, idx, ver); st != StatusOK {
		return st
	}
	sh.blocks.Add(1)
	return StatusOK
}

// Pop removes a block at version ver, preferring home's shard then
// stealing pseudo-randomly. After a full sweep with no block it reports
// StatusVerMismatch if any shard's version differed (the phase moved on —
// a shard at a newer version was empty at ver when it froze, so nothing at
// ver is missed) and StatusEmpty otherwise.
func (s *ShardedVStack) Pop(ba *BlockArena, ver, home uint32, rng *uint64) (uint32, Status) {
	blk, _, st := s.PopFrom(ba, ver, home, rng)
	return blk, st
}

// HomeShard returns the shard index thread context home pushes to and
// pops from first.
func (s *ShardedVStack) HomeShard(home uint32) int { return int(home & s.mask) }

// PopFrom is Pop plus the index of the shard that served the block (−1
// when no shard yielded one) — see ShardedCountedStack.PopFrom.
func (s *ShardedVStack) PopFrom(ba *BlockArena, ver, home uint32, rng *uint64) (uint32, int, Status) {
	h := home & s.mask
	mismatch := false
	switch blk, st := s.shards[h].s.Pop(ba, ver); st {
	case StatusOK:
		s.shards[h].blocks.Add(-1)
		return blk, int(h), StatusOK
	case StatusVerMismatch:
		mismatch = true
	}
	n := uint32(len(s.shards))
	if n > 1 {
		r := nextRand(rng)
		start := uint32(r)
		step := uint32(r>>32) | 1
		for i := uint32(0); i < n; i++ {
			j := (start + i*step) & s.mask
			if j == h {
				continue
			}
			switch blk, st := s.shards[j].s.Pop(ba, ver); st {
			case StatusOK:
				s.shards[j].blocks.Add(-1)
				s.shards[j].steals.Add(1)
				return blk, int(j), StatusOK
			case StatusVerMismatch:
				mismatch = true
			}
		}
	}
	if mismatch {
		return NoBlock, -1, StatusVerMismatch
	}
	return NoBlock, -1, StatusEmpty
}

// ChainStats walks every shard's chain and returns total blocks and slots.
// Only safe while the pool is frozen or privately owned (tests, Quiesce).
func (s *ShardedVStack) ChainStats(ba *BlockArena) (blocks, slots int) {
	for i := range s.shards {
		_, idx := s.shards[i].s.Load()
		b, sl := ChainLen(ba, idx)
		blocks += b
		slots += sl
	}
	return
}

// AnyBlocks reports whether any shard holds a block. Like ChainStats it is
// a quiescent-state accessor.
func (s *ShardedVStack) AnyBlocks() bool {
	for i := range s.shards {
		if _, idx := s.shards[i].s.Load(); idx != NoBlock {
			return true
		}
	}
	return false
}
