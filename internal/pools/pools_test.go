package pools

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestBlockPushPop(t *testing.T) {
	ba := NewBlockArena(1000)
	idx := ba.Get()
	b := ba.B(idx)
	if !b.Empty() {
		t.Fatal("fresh block not empty")
	}
	for i := uint32(0); i < BlockCap; i++ {
		b.Push(i * 3)
	}
	if !b.Full(BlockCap) {
		t.Fatal("block should be full")
	}
	for i := int32(BlockCap) - 1; i >= 0; i-- {
		if got := b.Pop(); got != uint32(i)*3 {
			t.Fatalf("Pop = %d, want %d", got, uint32(i)*3)
		}
	}
	if !b.Empty() {
		t.Fatal("block should be empty")
	}
}

func TestBlockArenaRecycles(t *testing.T) {
	ba := NewBlockArena(1000)
	a := ba.Get()
	ba.B(a).Push(1)
	ba.B(a).Pop()
	ba.Put(a)
	b := ba.Get()
	if a != b {
		t.Fatalf("freelist did not recycle: got %d, want %d", b, a)
	}
	if !ba.B(b).Empty() {
		t.Fatal("recycled block must come back empty")
	}
}

func TestBlockArenaGetConcurrent(t *testing.T) {
	ba := NewBlockArena(100)
	const workers, per = 8, 500
	var mu sync.Mutex
	seen := map[uint32]int{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]uint32, 0, per)
			for i := 0; i < per; i++ {
				idx := ba.Get()
				local = append(local, idx)
				if i%3 == 2 { // return some to stress the freelist
					ba.Put(local[len(local)-1])
					local = local[:len(local)-1]
				}
			}
			mu.Lock()
			for _, idx := range local {
				seen[idx]++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("block %d held by %d owners simultaneously", idx, n)
		}
	}
}

func TestVStackLIFO(t *testing.T) {
	ba := NewBlockArena(1000)
	var s VStack
	s.Init(0)
	var blocks []uint32
	for i := 0; i < 5; i++ {
		idx := ba.Get()
		ba.B(idx).Push(uint32(i))
		if st := s.Push(ba, idx, 0); st != StatusOK {
			t.Fatalf("Push = %v", st)
		}
		blocks = append(blocks, idx)
	}
	for i := 4; i >= 0; i-- {
		idx, st := s.Pop(ba, 0)
		if st != StatusOK {
			t.Fatalf("Pop = %v", st)
		}
		if idx != blocks[i] {
			t.Fatalf("Pop order: got %d, want %d", idx, blocks[i])
		}
	}
	if _, st := s.Pop(ba, 0); st != StatusEmpty {
		t.Fatalf("empty Pop = %v, want StatusEmpty", st)
	}
}

func TestVStackVerMismatch(t *testing.T) {
	ba := NewBlockArena(100)
	var s VStack
	s.Init(4)
	idx := ba.Get()
	if st := s.Push(ba, idx, 2); st != StatusVerMismatch {
		t.Fatalf("stale Push = %v, want VER-MISMATCH", st)
	}
	if _, st := s.Pop(ba, 6); st != StatusVerMismatch {
		t.Fatalf("future Pop = %v, want VER-MISMATCH", st)
	}
	if st := s.Push(ba, idx, 4); st != StatusOK {
		t.Fatalf("matching Push = %v", st)
	}
	// Freeze to an odd version: pushes at the old even version must fail.
	_, top := s.Load()
	if !s.CompareAndSwap(4, top, 5, top) {
		t.Fatal("freeze CAS failed")
	}
	idx2 := ba.Get()
	if st := s.Push(ba, idx2, 4); st != StatusVerMismatch {
		t.Fatalf("Push into frozen stack = %v, want VER-MISMATCH", st)
	}
}

func TestVStackCASHead(t *testing.T) {
	ba := NewBlockArena(100)
	var s VStack
	s.Init(0)
	idx := ba.Get()
	s.Push(ba, idx, 0)
	v, top := s.Load()
	if v != 0 || top != idx {
		t.Fatalf("Load = %d,%d", v, top)
	}
	if s.CompareAndSwap(1, top, 2, NoBlock) {
		t.Fatal("CAS with wrong version succeeded")
	}
	if !s.CompareAndSwap(0, top, 2, NoBlock) {
		t.Fatal("CAS with right head failed")
	}
	if got := s.Ver(); got != 2 {
		t.Fatalf("Ver = %d", got)
	}
}

func TestCountedStackConcurrentTransfer(t *testing.T) {
	// Producers push blocks of slots; consumers pop and recycle the block
	// structs, maximizing block-reuse ABA pressure. Every produced slot
	// must be consumed exactly once.
	ba := NewBlockArena(4096)
	var s CountedStack
	s.Init()
	const producers, consumers, perProducer = 4, 4, 20000
	total := producers * perProducer
	var mu sync.Mutex
	got := make(map[uint32]int, total)
	var wg sync.WaitGroup
	done := make(chan struct{})
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cur := ba.Get()
			for i := 0; i < perProducer; i++ {
				ba.B(cur).Push(uint32(p*perProducer + i))
				if ba.B(cur).Full(BlockCap) {
					s.Push(ba, cur)
					cur = ba.Get()
				}
			}
			if !ba.B(cur).Empty() {
				s.Push(ba, cur)
			} else {
				ba.Put(cur)
			}
		}(p)
	}
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				idx, st := s.Pop(ba)
				if st != StatusOK {
					select {
					case <-done:
						// final drain
						idx, st = s.Pop(ba)
						if st != StatusOK {
							return
						}
					default:
						continue
					}
				}
				b := ba.B(idx)
				mu.Lock()
				for i := int32(0); i < b.N; i++ {
					got[b.Slots[i]]++
				}
				mu.Unlock()
				b.N = 0
				ba.Put(idx)
			}
		}()
	}
	wg.Wait()
	close(done)
	cwg.Wait()
	if len(got) != total {
		t.Fatalf("consumed %d distinct slots, want %d", len(got), total)
	}
	for slot, n := range got {
		if n != 1 {
			t.Fatalf("slot %d consumed %d times", slot, n)
		}
	}
}

func TestVStackConcurrentPushSingleVersion(t *testing.T) {
	// Mirrors the retirePool during one phase: concurrent pushes only.
	ba := NewBlockArena(4096)
	var s VStack
	s.Init(10)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				idx := ba.Get()
				ba.B(idx).Push(uint32(w*per + i))
				if st := s.Push(ba, idx, 10); st != StatusOK {
					t.Errorf("Push = %v", st)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	_, top := s.Load()
	blocks, slots := ChainLen(ba, top)
	if blocks != workers*per || slots != workers*per {
		t.Fatalf("chain has %d blocks / %d slots, want %d", blocks, slots, workers*per)
	}
}

// Property: any sequence of pushes and pops on a single-threaded VStack
// behaves like a stack of blocks.
func TestVStackQuickLIFO(t *testing.T) {
	f := func(ops []bool) bool {
		ba := NewBlockArena(256)
		var s VStack
		s.Init(0)
		var model []uint32
		for i, push := range ops {
			if push || len(model) == 0 {
				idx := ba.Get()
				ba.B(idx).Push(uint32(i))
				if s.Push(ba, idx, 0) != StatusOK {
					return false
				}
				model = append(model, idx)
			} else {
				idx, st := s.Pop(ba, 0)
				if st != StatusOK || idx != model[len(model)-1] {
					return false
				}
				model = model[:len(model)-1]
			}
		}
		for i := len(model) - 1; i >= 0; i-- {
			idx, st := s.Pop(ba, 0)
			if st != StatusOK || idx != model[i] {
				return false
			}
		}
		_, st := s.Pop(ba, 0)
		return st == StatusEmpty
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestChainLenEmpty(t *testing.T) {
	ba := NewBlockArena(16)
	if b, s := ChainLen(ba, NoBlock); b != 0 || s != 0 {
		t.Fatalf("ChainLen(NoBlock) = %d,%d", b, s)
	}
}

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		StatusOK: "OK", StatusEmpty: "EMPTY", StatusVerMismatch: "VER-MISMATCH", Status(99): "invalid",
	}
	for st, want := range cases {
		if got := st.String(); got != want {
			t.Fatalf("Status(%d).String() = %q, want %q", st, got, want)
		}
	}
}
