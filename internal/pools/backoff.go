package pools

import "runtime"

// Backoff is a bounded exponential backoff for contended CAS retry loops.
// The first few pauses busy-spin for an exponentially growing number of
// iterations (staying on-CPU, the cheap case when the conflicting writer
// is running on another core); once the spin budget is exhausted every
// further pause yields the processor, which is the right response when the
// conflicting writer is a goroutine waiting for our P.
//
// A Backoff is a plain value: declare one per retry loop (zero cost when
// the first CAS succeeds) and call Pause after each failed attempt. It
// never allocates, so it is safe inside the zero-alloc reclamation paths.
type Backoff struct {
	n uint8
}

// backoffSpinShiftCap bounds the busy-spin stage at 2^5 = 32 relax
// iterations per pause; past that Pause degrades to runtime.Gosched.
const backoffSpinShiftCap = 5

// Pause delays the caller according to the number of failures so far.
func (b *Backoff) Pause() {
	if b.n <= backoffSpinShiftCap {
		for i := 0; i < 1<<b.n; i++ {
			cpuRelax()
		}
		b.n++
		return
	}
	runtime.Gosched()
}

// Reset forgets accumulated failures, returning to the shortest pause.
// Call it after a successful operation when reusing the value.
func (b *Backoff) Reset() { b.n = 0 }

// cpuRelax burns one call's worth of time without touching memory. The
// noinline pragma stops the compiler from deleting the spin loop around it
// (Go has no portable PAUSE intrinsic).
//
//go:noinline
func cpuRelax() {}
