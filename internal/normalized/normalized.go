// Package normalized provides the normalized-form machinery of Timnat &
// Petrank (PPoPP 2014) that the optimistic access paper assumes of its data
// structures (§3.2, Appendix A).
//
// A normalized operation runs as three methods:
//
//  1. CAS generator — produces a list of CAS descriptors; restartable at
//     any time (parallelizable).
//  2. CAS executor — the fixed method below (Execute): attempts the CASes
//     one by one until the first failure.
//  3. Wrap-up — inspects how many CASes succeeded and either returns the
//     operation's result or sends the operation back to the generator;
//     also restartable at any time.
//
// The optimistic access scheme leans on this structure: stale reads
// detected by the warning bit abort the generator or wrap-up back to their
// beginnings, while the executor — which is never allowed to touch
// reclaimed memory — runs under the protection of the owner hazard
// pointers installed at the end of the generator (Algorithm 3).
package normalized

import "sync/atomic"

// MaxCas bounds the CAS descriptors one operation may produce. The largest
// consumer is the skip list's delete, which marks every level of a node:
// MaxLevel+1 descriptors (§5).
const MaxCas = 40

// CasDesc describes one pending compare-and-swap on a node word
// (address, expectedVal, newVal) — Appendix A's descriptor tuple.
type CasDesc struct {
	Addr     *atomic.Uint64
	Expected uint64
	New      uint64
}

// DescList is the CAS generator's output: a fixed-capacity descriptor list
// (fixed so that it lives on the operation's stack, never in shared
// memory).
type DescList struct {
	Len   int
	Descs [MaxCas]CasDesc
}

// Reset empties the list for reuse across generator restarts.
func (l *DescList) Reset() { l.Len = 0 }

// Append adds one descriptor.
func (l *DescList) Append(addr *atomic.Uint64, expected, newval uint64) {
	l.Descs[l.Len] = CasDesc{Addr: addr, Expected: expected, New: newval}
	l.Len++
}

// Execute is the CAS executor method, common to all data structures and
// algorithms (Appendix A, method 2): it attempts the CASes one by one and
// returns the 1-based index of the first CAS that failed, or 0 if every
// CAS succeeded.
func Execute(l *DescList) int {
	for i := 0; i < l.Len; i++ {
		d := &l.Descs[i]
		if !d.Addr.CompareAndSwap(d.Expected, d.New) {
			return i + 1
		}
	}
	return 0
}
