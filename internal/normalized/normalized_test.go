package normalized

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestExecuteAllSucceed(t *testing.T) {
	var words [5]atomic.Uint64
	var dl DescList
	for i := range words {
		words[i].Store(uint64(i))
		dl.Append(&words[i], uint64(i), uint64(i)+100)
	}
	if failed := Execute(&dl); failed != 0 {
		t.Fatalf("Execute = %d, want 0", failed)
	}
	for i := range words {
		if got := words[i].Load(); got != uint64(i)+100 {
			t.Fatalf("word %d = %d", i, got)
		}
	}
}

func TestExecuteStopsAtFirstFailure(t *testing.T) {
	var words [4]atomic.Uint64
	var dl DescList
	for i := range words {
		words[i].Store(uint64(i))
	}
	dl.Append(&words[0], 0, 10)
	dl.Append(&words[1], 999, 11) // wrong expected: fails
	dl.Append(&words[2], 2, 12)   // must not run
	if failed := Execute(&dl); failed != 2 {
		t.Fatalf("Execute = %d, want 2 (1-based index)", failed)
	}
	if words[0].Load() != 10 {
		t.Fatal("first CAS should have applied")
	}
	if words[2].Load() != 2 {
		t.Fatal("executor ran past the first failure")
	}
}

func TestResetReuses(t *testing.T) {
	var w atomic.Uint64
	var dl DescList
	dl.Append(&w, 0, 1)
	dl.Reset()
	if dl.Len != 0 {
		t.Fatalf("Len = %d after Reset", dl.Len)
	}
	dl.Append(&w, 0, 2)
	if failed := Execute(&dl); failed != 0 {
		t.Fatalf("Execute = %d", failed)
	}
	if w.Load() != 2 {
		t.Fatal("reused list executed stale descriptor")
	}
}

func TestEmptyListExecutes(t *testing.T) {
	var dl DescList
	if failed := Execute(&dl); failed != 0 {
		t.Fatalf("empty Execute = %d", failed)
	}
}

// Property: for any prefix of matching expectations followed by a mismatch,
// Execute applies exactly the prefix.
func TestExecuteQuickPrefix(t *testing.T) {
	f := func(vals []uint64, cut uint8) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > MaxCas {
			vals = vals[:MaxCas]
		}
		k := int(cut) % len(vals) // index of the first failing CAS
		words := make([]atomic.Uint64, len(vals))
		var dl DescList
		for i, v := range vals {
			words[i].Store(v)
			exp := v
			if i == k {
				exp = v + 1 // guaranteed mismatch
			}
			dl.Append(&words[i], exp, v+7)
		}
		failed := Execute(&dl)
		if failed != k+1 {
			return false
		}
		for i := range vals {
			want := vals[i]
			if i < k {
				want += 7
			}
			if words[i].Load() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
