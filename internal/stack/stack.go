// Package stack implements the Treiber stack under the repository's
// reclamation schemes. The Treiber stack is the original motivating
// example for safe memory reclamation: Pop reads top.next and CASes the
// top pointer, so a recycled-and-reinserted top node (the ABA problem)
// silently corrupts the stack unless the reclamation scheme intervenes.
//
//   - Under OA, Pop is a normalized operation: the generator reads top and
//     top.next optimistically (Algorithm 1 checks), and the executor CAS
//     is pinned by owner hazard pointers (Algorithm 3), which both detects
//     stale reads and prevents the recycle-reuse ABA.
//   - Under HP, the classic protect-validate protocol guards top.
//   - Under EBR, the epoch bracket suffices.
//   - Under NoRecl, nodes are never reused so ABA cannot occur.
package stack

import "sync/atomic"

// Node is the stack node; all fields atomic (stale reads under OA).
type Node struct {
	Val  atomic.Uint64
	Next atomic.Uint64 // arena.Ptr bits
}

// ResetNode zeroes a node (the allocation memset hook).
func ResetNode(n *Node) {
	n.Val.Store(0)
	n.Next.Store(0)
}

// Stack is a concurrent LIFO stack of uint64 values.
type Stack interface {
	// StackSession returns the per-thread handle for thread tid.
	StackSession(tid int) Session
	// Scheme reports the backing reclamation scheme.
	Scheme() string
}

// Session is the per-thread view of a Stack.
type Session interface {
	// Push adds v on top.
	Push(v uint64)
	// Pop removes the top value; ok is false when the stack is empty.
	Pop() (v uint64, ok bool)
}
