package stack

import (
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/ebr"
	"repro/internal/hpscheme"
	"repro/internal/norecl"
	"repro/internal/normalized"
	"repro/internal/smr"
)

// OAStack is the Treiber stack under optimistic access.
type OAStack struct {
	mgr *core.Manager[Node]
	top atomic.Uint64 // arena.Ptr bits; 0 = empty
}

// NewOA builds an empty stack sized by cfg.
func NewOA(cfg core.Config) *OAStack {
	cfg.OwnerHPs = 3
	return &OAStack{mgr: core.NewManager[Node](cfg, ResetNode)}
}

// Manager exposes the underlying manager.
func (s *OAStack) Manager() *core.Manager[Node] { return s.mgr }

// Stats returns reclamation counters.
func (s *OAStack) Stats() smr.Stats { return s.mgr.Stats() }

// Scheme implements Stack.
func (s *OAStack) Scheme() string { return smr.OA.String() }

// StackSession implements Stack.
func (s *OAStack) StackSession(tid int) Session {
	return &oaSession{s: s, t: s.mgr.Thread(tid), pending: arena.NoSlot}
}

type oaSession struct {
	s       *OAStack
	t       *core.Thread[Node]
	pending uint32
}

// Push links a node at the top. The CAS target is the top word (a root),
// its operands are node handles — Algorithm 3 protects them.
func (ss *oaSession) Push(v uint64) {
	th := ss.t
	var dl normalized.DescList
	for {
		// --- CAS generator ---
		top := arena.Ptr(ss.s.top.Load())
		if th.Check() {
			continue
		}
		if ss.pending == arena.NoSlot {
			ss.pending = th.Alloc()
		}
		n := th.Node(ss.pending)
		n.Val.Store(v)
		n.Next.Store(uint64(top))
		newPtr := arena.MakePtr(ss.pending)
		dl.Reset()
		dl.Append(&ss.s.top, uint64(top), uint64(newPtr))
		th.SetOwnerHP(0, top)
		th.SetOwnerHP(1, newPtr)
		if th.SealGenerator() {
			continue
		}
		// --- CAS executor / wrap-up ---
		failed := normalized.Execute(&dl)
		th.ClearOwnerHPs()
		if failed == 0 {
			ss.pending = arena.NoSlot
			return
		}
	}
}

// Pop unlinks the top node. This is the textbook ABA case: the expected
// top and the new top (its next) are both pinned by owner hazard pointers
// across the executor, so a recycled top cannot masquerade.
func (ss *oaSession) Pop() (uint64, bool) {
	th := ss.t
	var dl normalized.DescList
	for {
		// --- CAS generator ---
		top := arena.Ptr(ss.s.top.Load())
		if th.Check() {
			continue
		}
		if top.IsNil() {
			if th.Check() {
				continue
			}
			return 0, false
		}
		n := th.Node(top.Slot())
		next := arena.Ptr(n.Next.Load())
		v := n.Val.Load()
		if th.Check() {
			continue
		}
		dl.Reset()
		dl.Append(&ss.s.top, uint64(top), uint64(next))
		th.SetOwnerHP(0, top)
		th.SetOwnerHP(1, next)
		if th.SealGenerator() {
			continue
		}
		// --- CAS executor / wrap-up ---
		failed := normalized.Execute(&dl)
		th.ClearOwnerHPs()
		if failed == 0 {
			th.Retire(top.Slot())
			return v, true
		}
	}
}

// HPStack is the Treiber stack under hazard pointers.
type HPStack struct {
	mgr *hpscheme.Manager[Node]
	top atomic.Uint64
}

// NewHP builds an empty stack sized by cfg.
func NewHP(cfg hpscheme.Config) *HPStack {
	cfg.HPsPerThread = 1
	return &HPStack{mgr: hpscheme.NewManager[Node](cfg, ResetNode)}
}

// Stats returns reclamation counters.
func (s *HPStack) Stats() smr.Stats { return s.mgr.Stats() }

// Scheme implements Stack.
func (s *HPStack) Scheme() string { return smr.HP.String() }

// StackSession implements Stack.
func (s *HPStack) StackSession(tid int) Session {
	return &hpSession{s: s, t: s.mgr.Thread(tid), pending: arena.NoSlot}
}

type hpSession struct {
	s       *HPStack
	t       *hpscheme.Thread[Node]
	pending uint32
}

func (ss *hpSession) Push(v uint64) {
	th := ss.t
	if ss.pending == arena.NoSlot {
		ss.pending = th.Alloc()
	}
	n := th.Node(ss.pending)
	n.Val.Store(v)
	newPtr := arena.MakePtr(ss.pending)
	for {
		top := arena.Ptr(ss.s.top.Load())
		n.Next.Store(uint64(top))
		if ss.s.top.CompareAndSwap(uint64(top), uint64(newPtr)) {
			ss.pending = arena.NoSlot
			return
		}
		th.CountRestart()
	}
}

func (ss *hpSession) Pop() (uint64, bool) {
	th := ss.t
	for {
		top := arena.Ptr(ss.s.top.Load())
		if top.IsNil() {
			return 0, false
		}
		th.Protect(0, top)
		if arena.Ptr(ss.s.top.Load()) != top {
			th.CountRestart()
			continue
		}
		n := th.Node(top.Slot())
		next := arena.Ptr(n.Next.Load())
		v := n.Val.Load()
		if ss.s.top.CompareAndSwap(uint64(top), uint64(next)) {
			th.Clear(0)
			th.Retire(top.Slot())
			return v, true
		}
		th.CountRestart()
	}
}

// EBRStack is the Treiber stack under epoch-based reclamation.
type EBRStack struct {
	mgr *ebr.Manager[Node]
	top atomic.Uint64
}

// NewEBR builds an empty stack sized by cfg.
func NewEBR(cfg ebr.Config) *EBRStack {
	return &EBRStack{mgr: ebr.NewManager[Node](cfg, ResetNode)}
}

// Stats returns reclamation counters.
func (s *EBRStack) Stats() smr.Stats { return s.mgr.Stats() }

// Scheme implements Stack.
func (s *EBRStack) Scheme() string { return smr.EBR.String() }

// StackSession implements Stack.
func (s *EBRStack) StackSession(tid int) Session {
	return &ebrSession{s: s, t: s.mgr.Thread(tid), pending: arena.NoSlot}
}

type ebrSession struct {
	s       *EBRStack
	t       *ebr.Thread[Node]
	pending uint32
}

func (ss *ebrSession) Push(v uint64) {
	th := ss.t
	th.OnOpStart()
	defer th.OnOpEnd()
	if ss.pending == arena.NoSlot {
		ss.pending = th.Alloc()
	}
	n := th.Node(ss.pending)
	n.Val.Store(v)
	newPtr := arena.MakePtr(ss.pending)
	for {
		top := arena.Ptr(ss.s.top.Load())
		n.Next.Store(uint64(top))
		if ss.s.top.CompareAndSwap(uint64(top), uint64(newPtr)) {
			ss.pending = arena.NoSlot
			return
		}
	}
}

func (ss *ebrSession) Pop() (uint64, bool) {
	th := ss.t
	th.OnOpStart()
	defer th.OnOpEnd()
	for {
		top := arena.Ptr(ss.s.top.Load())
		if top.IsNil() {
			return 0, false
		}
		n := th.Node(top.Slot())
		next := arena.Ptr(n.Next.Load())
		v := n.Val.Load()
		if ss.s.top.CompareAndSwap(uint64(top), uint64(next)) {
			th.Retire(top.Slot())
			return v, true
		}
	}
}

// NoReclStack is the Treiber stack without reclamation. Because nodes are
// never reused, ABA cannot occur and no protection is needed.
type NoReclStack struct {
	mgr *norecl.Manager[Node]
	top atomic.Uint64
}

// NewNoRecl builds an empty stack sized by cfg.
func NewNoRecl(cfg norecl.Config) *NoReclStack {
	return &NoReclStack{mgr: norecl.NewManager[Node](cfg, ResetNode)}
}

// Stats returns reclamation counters.
func (s *NoReclStack) Stats() smr.Stats { return s.mgr.Stats() }

// Scheme implements Stack.
func (s *NoReclStack) Scheme() string { return smr.NoRecl.String() }

// StackSession implements Stack.
func (s *NoReclStack) StackSession(tid int) Session {
	return &nrSession{s: s, t: s.mgr.Thread(tid), pending: arena.NoSlot}
}

type nrSession struct {
	s       *NoReclStack
	t       *norecl.Thread[Node]
	pending uint32
}

func (ss *nrSession) Push(v uint64) {
	th := ss.t
	if ss.pending == arena.NoSlot {
		ss.pending = th.Alloc()
	}
	n := th.Node(ss.pending)
	n.Val.Store(v)
	newPtr := arena.MakePtr(ss.pending)
	for {
		top := arena.Ptr(ss.s.top.Load())
		n.Next.Store(uint64(top))
		if ss.s.top.CompareAndSwap(uint64(top), uint64(newPtr)) {
			ss.pending = arena.NoSlot
			return
		}
	}
}

func (ss *nrSession) Pop() (uint64, bool) {
	th := ss.t
	for {
		top := arena.Ptr(ss.s.top.Load())
		if top.IsNil() {
			return 0, false
		}
		n := th.Node(top.Slot())
		next := arena.Ptr(n.Next.Load())
		v := n.Val.Load()
		if ss.s.top.CompareAndSwap(uint64(top), uint64(next)) {
			th.Retire(top.Slot())
			return v, true
		}
	}
}
