package stack_test

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/ebr"
	"repro/internal/hpscheme"
	"repro/internal/norecl"
	"repro/internal/stack"
)

func factories() map[string]func(threads int) stack.Stack {
	const capacity = 1 << 14
	return map[string]func(threads int) stack.Stack{
		"NoRecl": func(threads int) stack.Stack {
			return stack.NewNoRecl(norecl.Config{MaxThreads: threads, Capacity: capacity})
		},
		"OA": func(threads int) stack.Stack {
			return stack.NewOA(core.Config{MaxThreads: threads, Capacity: capacity, LocalPool: 16})
		},
		"HP": func(threads int) stack.Stack {
			return stack.NewHP(hpscheme.Config{MaxThreads: threads, Capacity: capacity, ScanThreshold: 32})
		},
		"EBR": func(threads int) stack.Stack {
			return stack.NewEBR(ebr.Config{MaxThreads: threads, Capacity: capacity, OpsPerScan: 32})
		},
	}
}

func TestStackSequentialLIFO(t *testing.T) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			s := mk(1).StackSession(0)
			if _, ok := s.Pop(); ok {
				t.Fatal("empty stack popped")
			}
			for i := uint64(1); i <= 1000; i++ {
				s.Push(i)
			}
			for i := uint64(1000); i >= 1; i-- {
				v, ok := s.Pop()
				if !ok || v != i {
					t.Fatalf("Pop = %d,%v want %d", v, ok, i)
				}
			}
			if _, ok := s.Pop(); ok {
				t.Fatal("drained stack popped")
			}
		})
	}
}

func TestStackInterleaved(t *testing.T) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			s := mk(1).StackSession(0)
			for round := uint64(0); round < 2000; round++ {
				s.Push(round)
				s.Push(round + 1000000)
				if v, ok := s.Pop(); !ok || v != round+1000000 {
					t.Fatalf("round %d: %d,%v", round, v, ok)
				}
				if v, ok := s.Pop(); !ok || v != round {
					t.Fatalf("round %d: %d,%v", round, v, ok)
				}
			}
		})
	}
}

// Concurrent conservation: every pushed value pops exactly once; a tiny
// arena keeps nodes recycling constantly — the ABA trap this structure is
// famous for.
func TestStackConcurrentConservation(t *testing.T) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			const threads, per = 4, 15000
			st := mk(threads)
			var mu sync.Mutex
			popped := make(map[uint64]int)
			var wg sync.WaitGroup
			for id := 0; id < threads; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					s := st.StackSession(id)
					held := 0
					for i := 0; i < per; i++ {
						if held < 8 && i%3 != 2 {
							s.Push(uint64(id)<<32 | uint64(i))
							held++
						} else if held > 0 {
							v, ok := s.Pop()
							if ok {
								mu.Lock()
								popped[v]++
								mu.Unlock()
								held--
							}
						}
					}
					for {
						v, ok := s.Pop()
						if !ok {
							break
						}
						mu.Lock()
						popped[v]++
						mu.Unlock()
					}
				}(id)
			}
			wg.Wait()
			for v, n := range popped {
				if n != 1 {
					t.Fatalf("value %#x popped %d times — ABA!", v, n)
				}
			}
		})
	}
}

func TestStackOARecycles(t *testing.T) {
	st := stack.NewOA(core.Config{MaxThreads: 1, Capacity: 512, LocalPool: 8})
	s := st.StackSession(0)
	for i := 0; i < 20000; i++ {
		s.Push(uint64(i))
		if _, ok := s.Pop(); !ok {
			t.Fatal("lost element")
		}
	}
	stats := st.Stats()
	if stats.Phases == 0 || stats.Recycled == 0 {
		t.Fatalf("stack reclamation inactive: %+v", stats)
	}
	if st.Scheme() != "OA" {
		t.Fatal("scheme")
	}
}
