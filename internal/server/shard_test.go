package server

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kvmap"
)

// newShardedTestServer serves the binary protocol over a sharded map.
func newShardedTestServer(t *testing.T, threads, shards int, cfg Config) (*Server, string) {
	t.Helper()
	cfg.Shards = kvmap.NewSharded(core.Config{MaxThreads: threads, Capacity: 1 << 16}, 1<<14, shards)
	s := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	t.Cleanup(func() {
		s.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return s, ln.Addr().String()
}

// keyOnShard finds a key the router sends to the wanted shard.
func keyOnShard(sh *kvmap.Sharded, want int, salt uint64) uint64 {
	for k := salt; ; k++ {
		if sh.ShardIndex(k) == want {
			return k
		}
	}
}

// TestTruncatedFrame cuts a connection mid-frame and checks the server
// survives: the half-read pipeline dies, the next connection is served.
func TestTruncatedFrame(t *testing.T) {
	s, addr := newShardedTestServer(t, 2, 1, Config{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// A valid header announcing 17 bytes, followed by only 5 and a close.
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, 17)
	b = append(b, 1, 2, 3, 4, 5)
	nc.Write(b)
	nc.Close()

	deadline := time.Now().Add(time.Second)
	for s.active.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("truncated connection not reaped")
		}
		time.Sleep(time.Millisecond)
	}
	c, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("server unhealthy after truncated frame: %v", err)
	}
}

// TestFrameTooLargeTypedError is the regression test for the bounded
// frame reader: a hostile length prefix must get the typed FRAME_TOO_BIG
// response and a cut connection — not an attempted multi-gigabyte
// allocation, not a silent close.
func TestFrameTooLargeTypedError(t *testing.T) {
	_, addr := newShardedTestServer(t, 2, 1, Config{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, 0xFFFFFF00) // ~4 GiB body
	if _, err := nc.Write(b); err != nil {
		t.Fatal(err)
	}
	fr := newFrameReader(nc, maxResponseFrame)
	f, err := fr.read()
	if err != nil {
		t.Fatalf("no typed response before close: %v", err)
	}
	if f.Code != StFrameTooBig || f.ID != 0 {
		t.Fatalf("response = id %d code %d, want id 0 FRAME_TOO_BIG", f.ID, f.Code)
	}
	if _, err := fr.read(); err == nil {
		t.Fatal("connection survived a hostile length prefix")
	}
}

// TestFrameReaderLimitIsTyped checks the reader error wraps
// ErrFrameTooLarge (so callers can switch on it) and fires before any
// body read.
func TestFrameReaderLimitIsTyped(t *testing.T) {
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, maxRequestFrame+1)
	r, w := net.Pipe()
	go func() { w.Write(b) }()
	fr := newFrameReader(r, maxRequestFrame)
	if _, err := fr.read(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("read = %v, want ErrFrameTooLarge", err)
	}
	r.Close()
	w.Close()
}

// TestPipelinedCASOrderingAcrossShards interleaves CAS chains on keys
// homed on different shards in one deep pipeline and checks every
// response arrives in request order with the value the order implies.
// This is the router's ordering contract: routing is per-request, but
// execution stays serial per connection, so cross-shard interleavings
// cannot reorder a connection's effects.
func TestPipelinedCASOrderingAcrossShards(t *testing.T) {
	s, addr := newShardedTestServer(t, 8, 4, Config{Window: 256})
	keys := make([]uint64, 4)
	for i := range keys {
		keys[i] = keyOnShard(s.shards, i, uint64(1000*i+1))
	}
	c, err := Dial(addr, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	type expect struct {
		ca     *Call
		status byte
		val    uint64
		what   string
	}
	var exp []expect
	push := func(ca *Call, st byte, val uint64, what string) {
		exp = append(exp, expect{ca, st, val, what})
	}
	// Round-robin across shards: each key runs Put(0), then CAS 0→1→2→…;
	// a stale CAS (old value already overwritten) is woven in every round.
	const rounds = 50
	for r := uint64(0); r < rounds; r++ {
		for _, k := range keys {
			if r == 0 {
				ca, _ := c.Put(k, 0)
				push(ca, StNotFound, 0, "initial put")
				continue
			}
			ca, _ := c.CAS(k, r-1, r)
			push(ca, StOK, 0, "advancing cas")
			stale, _ := c.CAS(k, r-1, 999)
			push(stale, StCASMismatch, 0, "stale cas")
		}
		// Push each round onto the wire so the in-flight window drains;
		// responses are still only checked after the whole stream is queued.
		c.Flush()
	}
	for _, k := range keys {
		ca, _ := c.Get(k)
		push(ca, StOK, rounds-1, "final get")
	}
	c.Flush()
	for i, e := range exp {
		if err := e.ca.Wait(); err != nil {
			t.Fatalf("call %d (%s): %v", i, e.what, err)
		}
		if e.ca.Status != e.status {
			t.Fatalf("call %d (%s): status %d, want %d", i, e.what, e.ca.Status, e.status)
		}
		if e.what == "final get" && e.ca.Val != e.val {
			t.Fatalf("call %d (%s): val %d, want %d", i, e.what, e.ca.Val, e.val)
		}
	}
	// Every shard must have executed its quarter of the stream.
	for i := range s.stripes {
		if s.stripes[i].ops.Load() == 0 {
			t.Fatalf("shard %d saw no ops — router sent everything elsewhere", i)
		}
	}
}

// TestBusyOnShardLeaseExhaustion pins shard 0's only session from one
// connection: a second connection must get BUSY for shard-0 keys while
// shard-1 keys still serve — the lease economies are per shard.
func TestBusyOnShardLeaseExhaustion(t *testing.T) {
	s, addr := newShardedTestServer(t, 1, 2, Config{Inline: true, LeaseWait: time.Millisecond})
	k0 := keyOnShard(s.shards, 0, 1)
	k1 := keyOnShard(s.shards, 1, 1)

	holder, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	put, _ := holder.Put(k0, 7)
	if err := put.Wait(); err != nil {
		t.Fatal(err)
	}

	second, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	busy, _ := second.Get(k0)
	if err := busy.Wait(); err != nil || busy.Status != StBusy {
		t.Fatalf("shard-0 Get = %d (%v), want BUSY", busy.Status, err)
	}
	ok1, _ := second.Put(k1, 8)
	if err := ok1.Wait(); err != nil || ok1.Status != StNotFound {
		t.Fatalf("shard-1 Put while shard 0 exhausted = %d (%v), want NOT_FOUND (fresh key)", ok1.Status, err)
	}
	// The holder's shard-0 session still works.
	g, _ := holder.Get(k0)
	if err := g.Wait(); err != nil || g.Status != StOK || g.Val != 7 {
		t.Fatalf("holder shard-0 Get = %d/%d (%v)", g.Status, g.Val, err)
	}
}

// TestShardedGracefulDrain runs pipelined cross-shard load, shuts down
// mid-stream, and checks the drain contract shard-by-shard: nothing
// dropped, requests_read == responses_sent, and every shard's leases
// released.
func TestShardedGracefulDrain(t *testing.T) {
	s, addr := newShardedTestServer(t, 8, 4, Config{Window: 128, DrainTimeout: 5 * time.Second})

	const clients = 4
	var issued, resolved atomic.Uint64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr, 128)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			<-start
			var calls []*Call
			for i := 0; ; i++ {
				// Stride the keyspace so every client hits all four shards.
				ca, err := c.Put(uint64(w)<<32|uint64(i%4096), uint64(i))
				if err != nil {
					if errors.Is(err, ErrGoAway) {
						break
					}
					t.Errorf("client %d: %v", w, err)
					return
				}
				issued.Add(1)
				calls = append(calls, ca)
				if i%32 == 0 {
					c.Flush()
				}
			}
			for _, ca := range calls {
				if err := ca.Wait(); err != nil {
					t.Errorf("client %d: dropped in-flight call: %v", w, err)
					return
				}
				resolved.Add(1)
			}
		}(w)
	}
	close(start)
	time.Sleep(50 * time.Millisecond)
	forced := s.Shutdown()
	wg.Wait()

	if forced != 0 {
		t.Fatalf("%d connections force-closed; want graceful drain", forced)
	}
	if issued.Load() == 0 || issued.Load() != resolved.Load() {
		t.Fatalf("issued %d resolved %d", issued.Load(), resolved.Load())
	}
	snap := s.snapshot()
	if snap.RequestsRead != snap.ResponsesSent {
		t.Fatalf("requests_read=%d != responses_sent=%d", snap.RequestsRead, snap.ResponsesSent)
	}
	if snap.SessionsInUse != 0 {
		t.Fatalf("%d leases still out after drain", snap.SessionsInUse)
	}
	for i := 0; i < s.shards.NumShards(); i++ {
		if n := s.shards.Shard(i).Manager().Lessor().Leased(); n != 0 {
			t.Fatalf("shard %d: %d leases outstanding after drain", i, n)
		}
	}
	active := 0
	for _, n := range snap.ShardOps {
		if n > 0 {
			active++
		}
	}
	if active < 4 {
		t.Fatalf("only %d shards saw traffic during drain test (ops %v)", active, snap.ShardOps)
	}
}

// TestShardedStats sanity-checks the STATS document's sharded fields.
func TestShardedStats(t *testing.T) {
	_, addr := newShardedTestServer(t, 4, 4, Config{})
	c, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for k := uint64(0); k < 64; k++ {
		ca, _ := c.Put(k, k)
		if err := ca.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	body, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Server Snapshot          `json:"server"`
		Shards []json.RawMessage `json:"map_shards"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("STATS %q: %v", body, err)
	}
	if doc.Server.Shards != 4 || len(doc.Server.ShardOps) != 4 || len(doc.Shards) != 4 {
		t.Fatalf("sharded stats = %+v (%d shard stat blocks)", doc.Server, len(doc.Shards))
	}
	if doc.Server.SessionsCap != 16 {
		t.Fatalf("sessions_cap = %d, want 4 shards x 4 threads = 16", doc.Server.SessionsCap)
	}
	var total uint64
	for _, n := range doc.Server.ShardOps {
		total += n
	}
	if total != 64 {
		t.Fatalf("shard ops sum = %d, want 64 (%v)", total, doc.Server.ShardOps)
	}
}

// TestClientStatsOversizeGuard pins the client-side reader limit: a
// response frame within maxResponseFrame passes (STATS), and the typed
// limit error surfaces when the limit is artificially tiny.
func TestClientStatsOversizeGuard(t *testing.T) {
	_, addr := newShardedTestServer(t, 2, 1, Config{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write(AppendFrame(nil, 1, OpStats)); err != nil {
		t.Fatal(err)
	}
	fr := newFrameReader(nc, 16) // absurdly small on purpose
	if _, err := fr.read(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("tiny-limit read = %v, want ErrFrameTooLarge", err)
	}
	_ = io.Discard
}
