// Per-shard batched execution. In batched mode (the default) a reader
// goroutine only parses and routes: each data request is packed into one
// fixed-size mpmc.Payload and enqueued onto the target shard's bounded
// request ring. One executor goroutine per shard holds the shard's only
// long-lived kvmap lease and drains its ring in batches, so lease
// acquisition, warning-check placement and map cache misses amortize
// across every connection hitting the shard — and the session economy
// shrinks from conns×shards leases to exactly one per shard.
//
// The rings are the OA-native bounded MPMC queues of internal/mpmc: the
// server's hot path runs through the reclamation scheme it serves.
// Backpressure inverts the old model: instead of per-(conn,shard) BUSY
// at lease time, a full ring makes the producer wait up to RingWait for
// the executor to catch up, then answer BUSY. Responses flow back
// through each connection's outbox, which restores wire order.
package server

import (
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/kvmap"
	"repro/internal/lease"
	"repro/internal/mpmc"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Request payload layout (mpmc.PayloadWords = 8 words):
//
//	w0  op:8 | unused:24 | conn slot:24 | unused:8
//	w1  request id (echoed into the response frame)
//	w2  key
//	w3  second argument (PUT value, CAS old)
//	w4  third argument (CAS new)
//	w5  enqueue timestamp (trace.Now), start of the queue stage
//	w6  readNs:32 | routeNs:32 (reader-side stage durations, saturated)
//	w7  outbox sequence on the issuing connection
const (
	pwMeta = iota
	pwID
	pwKey
	pwArg1
	pwArg2
	pwEnqTS
	pwStages
	pwSeq
)

func packMeta(op uint8, slot uint32) uint64 {
	return uint64(op)<<56 | uint64(slot&0xFFFFFF)<<8
}

func unpackMeta(w uint64) (op uint8, slot uint32) {
	return uint8(w >> 56), uint32(w>>8) & 0xFFFFFF
}

func sat32(ns int64) uint64 {
	if ns < 0 {
		ns = 0
	}
	if ns > 0xFFFFFFFF {
		ns = 0xFFFFFFFF
	}
	return uint64(ns)
}

func packStageNs(readNs, routeNs int64) uint64 {
	return sat32(readNs)<<32 | sat32(routeNs)
}

func unpackStageNs(w uint64) (readNs, routeNs int64) {
	return int64(w >> 32), int64(w & 0xFFFFFFFF)
}

// runOp executes one data op on sess and encodes the response. Shared by
// the inline path (reader goroutine) and the batched path (executor).
func runOp(sess *kvmap.Session, op uint8, id, key, a1, a2 uint64) []byte {
	switch op {
	case OpGet:
		if v, ok := sess.Get(key); ok {
			return AppendFrame(nil, id, StOK, v)
		}
		return AppendFrame(nil, id, StNotFound)
	case OpPut:
		prev, had := sess.Put(key, a1)
		if had {
			return AppendFrame(nil, id, StOK, prev)
		}
		return AppendFrame(nil, id, StNotFound, 0)
	case OpDel:
		if v, ok := sess.Remove(key); ok {
			return AppendFrame(nil, id, StOK, v)
		}
		return AppendFrame(nil, id, StNotFound)
	case OpCAS:
		swapped, found := sess.CompareAndSwap(key, a1, a2)
		switch {
		case swapped:
			return AppendFrame(nil, id, StOK)
		case found:
			return AppendFrame(nil, id, StCASMismatch)
		default:
			return AppendFrame(nil, id, StNotFound)
		}
	}
	return AppendFrame(nil, id, StBadRequest)
}

// executor is one shard's single consumer: it owns the shard's only
// kvmap session (the long-lived lease) and one mpmc consumer session,
// and is the only goroutine executing ops on the shard in batched mode
// — which is also what makes its trace-ring writes single-writer.
type executor struct {
	s     *Server
	shard int
	sess  *kvmap.Session // the shard's one long-lived map lease (nil after ErrClosed)
	cons  *mpmc.Session  // ring consumer session
	ts    *obs.PerThread

	// Producers nudge work only when idle is set, so the steady-state
	// enqueue path is one atomic load — no futex wake per request.
	idle atomic.Bool
	work chan struct{}

	batches  atomic.Uint64
	ops      atomic.Uint64
	maxBatch atomic.Uint64
	spanSeq  uint64 // sampled per-request trace emission
	batchSeq uint64 // sampled exec_batch emission
}

func newExecutor(s *Server, shard int) (*executor, error) {
	sess, err := s.shards.Shard(shard).Acquire()
	if err != nil {
		return nil, err
	}
	cons, err := s.rings.Acquire()
	if err != nil {
		sess.Release()
		return nil, err
	}
	return &executor{
		s:     s,
		shard: shard,
		sess:  sess,
		cons:  cons,
		ts:    s.shards.Shard(shard).Manager().ObsStats().At(sess.TID()),
		work:  make(chan struct{}, 1),
	}, nil
}

// wake nudges an idle executor. Producers call it after every enqueue;
// when the executor is busy draining it costs one atomic load.
func (e *executor) wake() {
	if e.idle.Load() {
		select {
		case e.work <- struct{}{}:
		default:
		}
	}
}

func (e *executor) run() {
	defer e.s.execWG.Done()
	q := e.s.rings.Queue(e.shard)
	var p mpmc.Payload
	for {
		if gate := e.s.cfg.ExecGate; gate != nil {
			gate(e.shard)
		}
		n := 0
		for e.cons.Dequeue(q, &p) {
			// Count the op before completing it so the batched-ops ledger
			// can never trail a response a client has already observed.
			e.ops.Add(1)
			e.process(&p)
			n++
		}
		if n > 0 {
			e.batches.Add(1)
			if uint64(n) > e.maxBatch.Load() {
				e.maxBatch.Store(uint64(n))
			}
			if trace.Enabled() {
				e.batchSeq++
				if e.batchSeq%uint64(e.s.cfg.SpanSample) == 0 {
					e.s.rings.Manager().TraceRecorder().Ring(e.cons.TID()).
						Record(trace.EvBatch, trace.RingPayload(e.shard, uint64(n)))
				}
			}
			continue
		}
		// Empty ring: advertise idleness, then re-check — a producer that
		// enqueued between the drain and the store saw idle=false and did
		// not signal, so the recheck closes the sleep/wake race.
		e.idle.Store(true)
		if e.cons.Dequeue(q, &p) {
			e.idle.Store(false)
			e.ops.Add(1)
			e.batches.Add(1)
			e.process(&p)
			continue
		}
		select {
		case <-e.work:
			e.idle.Store(false)
		case <-e.s.execStop:
			// Shutdown: connections are gone and their pending entries
			// completed, but drain once more so nothing is stranded.
			for e.cons.Dequeue(q, &p) {
				e.ops.Add(1)
				e.process(&p)
			}
			if e.sess != nil {
				e.sess.Release()
			}
			e.cons.Release()
			return
		}
	}
}

// process executes one dequeued request and completes it into the
// issuing connection's outbox. The queue stage is the real ring wait:
// enqueue timestamp → this dequeue, which includes the request's
// position within the executor's current batch.
func (e *executor) process(p *mpmc.Payload) {
	s := e.s
	op, slot := unpackMeta(p[pwMeta])
	id := p[pwID]
	start := trace.Now()
	queueNs := start - int64(p[pwEnqTS])
	var r0, d0 uint64
	if e.ts != nil {
		r0, d0 = e.ts.Load(obs.Restarts), e.ts.Load(obs.DrainPasses)
	}
	resp := e.exec(op, id, p[pwKey], p[pwArg1], p[pwArg2])
	execNs := trace.Now() - start
	readNs, routeNs := unpackStageNs(p[pwStages])
	status := resp[respStatusOffset]
	serverNs := routeNs + queueNs + execNs
	if op >= OpGet && op <= OpCAS && status <= StCASMismatch {
		s.lat[op][e.shard].ObserveNs(uint64(serverNs))
	}
	cp := s.tab[slot].Load()
	if serverNs >= int64(s.cfg.SlowThreshold) {
		var stages [trace.NumStages]int64
		stages[trace.StageRead] = readNs
		stages[trace.StageRoute] = routeNs
		stages[trace.StageExec] = execNs
		stages[trace.StageQueue] = queueNs
		var restarts, drains uint64
		if e.ts != nil {
			restarts, drains = e.ts.Load(obs.Restarts)-r0, e.ts.Load(obs.DrainPasses)-d0
		}
		var connID uint64
		if cp != nil {
			connID = cp.id
		}
		s.slowlog.record(time.Now().UnixNano(), connID, op, status, e.shard,
			serverNs, stages, restarts, drains)
	}
	if e.sess != nil && trace.Enabled() {
		e.spanSeq++
		if e.spanSeq%uint64(s.cfg.SpanSample) == 0 {
			ring := s.shards.Shard(e.shard).Manager().TraceRecorder().Ring(e.sess.TID())
			var durs [trace.NumStages]int64
			durs[trace.StageRead], durs[trace.StageRoute] = readNs, routeNs
			durs[trace.StageExec], durs[trace.StageQueue] = execNs, queueNs
			for st, d := range durs {
				if d > 0 {
					ring.Record(trace.EvReqStage, trace.StagePayload(trace.Stage(st), d))
				}
			}
			ring.Record(trace.EvReqSpan, trace.SpanPayload(op, status, e.shard, serverNs))
			s.rings.Manager().TraceRecorder().Ring(e.cons.TID()).
				Record(trace.EvRingDeq, trace.RingPayload(e.shard, uint64(queueNs)))
		}
	}
	// Complete even when the client has vanished: the conn's run() holds
	// the slot until its in-flight count drains, so the completion lands
	// in a live outbox (the dead-socket writer discards it) and the
	// requests-read/responses-sent ledger stays balanced.
	if cp != nil {
		cp.complete(p[pwSeq], resp)
		cp.inflight.Add(-1)
	}
}

// exec runs one op on the executor's session, recovering from a
// capacity-starved allocator: the request is answered CAPACITY and the
// session — whose protocol state cannot be trusted past a mid-operation
// unwind — is cycled for a fresh lease, exactly what a disconnect does
// in inline mode. The executor itself survives; only the one request
// pays.
func (e *executor) exec(op uint8, id, key, a1, a2 uint64) (resp []byte) {
	if e.sess == nil {
		return AppendFrame(nil, id, StClosed)
	}
	defer func() {
		if r := recover(); r != nil {
			err, ok := r.(error)
			if !ok || !errors.Is(err, lease.ErrCapacityExhausted) {
				panic(r)
			}
			e.s.capTotal.Add(1)
			e.s.logf("shard %d executor: capacity exhausted: %v", e.shard, err)
			resp = AppendFrame(nil, id, StCapacity)
			e.refreshSession()
		}
	}()
	return runOp(e.sess, op, id, key, a1, a2)
}

func (e *executor) refreshSession() {
	m := e.s.shards.Shard(e.shard)
	e.sess.Release()
	e.sess, e.ts = nil, nil
	for {
		sess, err := m.Acquire()
		if err == nil {
			e.sess = sess
			e.ts = m.Manager().ObsStats().At(sess.TID())
			return
		}
		if errors.Is(err, lease.ErrClosed) {
			return // teardown: remaining ring entries answer CLOSED
		}
		time.Sleep(20 * time.Microsecond)
	}
}

// enqueue routes one packed request onto shard's ring, waiting up to
// RingWait when the ring is full. Reports false when the wait expires —
// the caller answers BUSY.
func (c *conn) enqueue(shard int, p *mpmc.Payload) bool {
	q := c.s.rings.Queue(shard)
	e := c.s.execs[shard]
	if c.prod.TryEnqueue(q, p) {
		e.wake()
		return true
	}
	deadline := time.Now().Add(c.s.cfg.RingWait)
	for {
		e.wake() // full ring: the consumer is the only way out
		time.Sleep(5 * time.Microsecond)
		p[pwEnqTS] = uint64(trace.Now())
		if c.prod.TryEnqueue(q, p) {
			e.wake()
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
	}
}

// readLoopBatched is the batched twin of readLoopInline: decode,
// validate, answer protocol ops locally, and hand every data op to its
// shard's executor through the ring. Response order is restored by the
// outbox sequence allocated here, in request order.
func (c *conn) readLoopBatched() {
	fr := newFrameReader(c.nc, maxRequestFrame)
	s := c.s
	for {
		c.sp.Begin()
		f, err := fr.read()
		if err != nil {
			if errors.Is(err, ErrFrameTooLarge) {
				s.badTotal.Add(1)
				c.reply(AppendFrame(nil, 0, StFrameTooBig))
			}
			return
		}
		c.sp.Mark(trace.StageRead)
		c.stripe.reqsRead.Add(1)
		nargs, known := argWords(f.Code)
		if !known || f.Code == OpGoAway || len(f.Body) != 8*nargs {
			s.badTotal.Add(1)
			c.reply(AppendFrame(nil, f.ID, StBadRequest))
			continue
		}
		c.stripe.reqsTotal[f.Code].Add(1)
		switch f.Code {
		case OpPing:
			c.reply(AppendFrame(nil, f.ID, StOK))
			continue
		case OpStats:
			c.reply(appendBytesFrame(nil, f.ID, StOK, s.statsBody()))
			continue
		}
		shard := s.shards.ShardIndex(f.word(0))
		c.sp.Mark(trace.StageRoute)
		seq := c.ob.alloc()
		var p mpmc.Payload
		p[pwMeta] = packMeta(f.Code, c.slot)
		p[pwID] = f.ID
		p[pwKey] = f.word(0)
		if nargs > 1 {
			p[pwArg1] = f.word(1)
		}
		if nargs > 2 {
			p[pwArg2] = f.word(2)
		}
		p[pwStages] = packStageNs(c.sp.Dur(trace.StageRead), c.sp.Dur(trace.StageRoute))
		p[pwSeq] = seq
		c.inflight.Add(1)
		p[pwEnqTS] = uint64(trace.Now())
		if !c.enqueue(shard, &p) {
			c.inflight.Add(-1)
			s.busyTotal.Add(1)
			s.ringFull.Add(1)
			c.complete(seq, AppendFrame(nil, f.ID, StBusy))
			continue
		}
		s.stripes[shard].ops.Add(1)
		if trace.Enabled() {
			c.spanSeq++
			if c.spanSeq%uint64(s.cfg.SpanSample) == 0 {
				s.rings.Manager().TraceRecorder().Ring(c.prod.TID()).
					Record(trace.EvRingEnq, trace.RingPayload(shard, uint64(s.rings.Queue(shard).Len())))
			}
		}
	}
}
