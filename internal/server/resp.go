// RESP2-compatible listener. Alongside the binary protocol the server
// speaks the Redis serialization protocol, so off-the-shelf tooling
// (redis-cli, redis-benchmark, memtier) and real client libraries can
// drive the system for honest external baselines. Both listeners share
// one shard router and one session economy.
//
// Mapping onto the uint64→uint64 map:
//
//   - Keys are arbitrary byte strings, hashed to uint64 with FNV-1a 64.
//     Distinct RESP keys collide only with ~2^-64 probability per pair;
//     the binary protocol's raw-integer keyspace is shared.
//   - Values are byte strings of at most 7 bytes, packed losslessly into
//     the value word as {len:1B | bytes:7B}. Longer values are answered
//     with a typed -ERR (redis-benchmark's default -d 3 fits).
//
// Commands: GET, SET, DEL (variadic), EXISTS (variadic), PING, ECHO,
// INFO, plus the CAS extension:
//
//	CAS key old new  →  :1 swapped | :0 current value != old | $-1 absent
//
// With Config.Cache set, the data commands run through the TTL/LRU
// cache layer (lazy expiry on GET/EXISTS, default TTL and pressure
// eviction on SET) and three more commands come alive:
//
//	SETEX  key seconds value  →  +OK (SET with a per-key TTL)
//	EXPIRE key seconds        →  :1 deadline set | :0 absent
//	TTL    key                →  :N seconds | :-1 no deadline | :-2 absent
//
// Lease exhaustion answers -BUSY (retry after backoff), node-budget
// exhaustion -OOM — both standard Redis error classes. RESP2 has no
// server push, so there is no GOAWAY equivalent: on drain, connections
// are served until their client closes or DrainTimeout cuts them.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"repro/internal/kvmap"
	"repro/internal/lease"
	"repro/internal/oaerr"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/ttlcache"
)

// RESP reader limits: a command may carry at most respMaxArgs arguments
// of at most respMaxBulk bytes each — far past any command we accept, but
// tight enough that a hostile length prefix cannot demand an unbounded
// allocation (same contract as the binary protocol's maxRequestFrame).
const (
	respMaxArgs = 64
	respMaxBulk = 1 << 16
)

// respMaxValue is the longest SET value the word packing can hold.
const respMaxValue = 7

// ErrRESPProtocol reports a malformed or over-limit RESP command; the
// connection is cut after an -ERR reply because the stream cannot be
// resynchronized. It wraps the shared oaerr.ErrBadRequest sentinel, so
// errors.Is classifies it with every other malformed-input failure.
var ErrRESPProtocol = fmt.Errorf("server: RESP protocol error: %w", oaerr.ErrBadRequest)

// --- encoding ------------------------------------------------------------

// AppendRESPSimple appends +s\r\n. Exported (with the other encoders) so
// the zero-alloc proofs and encode benchmarks cover the production path.
func AppendRESPSimple(b []byte, s string) []byte {
	b = append(b, '+')
	b = append(b, s...)
	return append(b, '\r', '\n')
}

// AppendRESPError appends -msg\r\n.
func AppendRESPError(b []byte, msg string) []byte {
	b = append(b, '-')
	b = append(b, msg...)
	return append(b, '\r', '\n')
}

// AppendRESPInt appends :n\r\n.
func AppendRESPInt(b []byte, n int64) []byte {
	b = append(b, ':')
	b = strconv.AppendInt(b, n, 10)
	return append(b, '\r', '\n')
}

// AppendRESPBulk appends $len\r\nbytes\r\n.
func AppendRESPBulk(b, body []byte) []byte {
	b = append(b, '$')
	b = strconv.AppendInt(b, int64(len(body)), 10)
	b = append(b, '\r', '\n')
	b = append(b, body...)
	return append(b, '\r', '\n')
}

// AppendRESPNil appends the RESP2 nil bulk $-1\r\n.
func AppendRESPNil(b []byte) []byte {
	return append(b, '$', '-', '1', '\r', '\n')
}

// --- value packing -------------------------------------------------------

// packValue packs up to 7 bytes losslessly into a uint64: length in the
// top byte, payload little-endian in the low bytes.
func packValue(v []byte) (uint64, bool) {
	if len(v) > respMaxValue {
		return 0, false
	}
	w := uint64(len(v)) << 56
	for i, c := range v {
		w |= uint64(c) << (8 * i)
	}
	return w, true
}

// appendUnpacked appends a packed value's payload bytes to b.
func appendUnpacked(b []byte, w uint64) []byte {
	n := int(w >> 56)
	if n > respMaxValue {
		n = respMaxValue
	}
	for i := 0; i < n; i++ {
		b = append(b, byte(w>>(8*i)))
	}
	return b
}

// hashKey maps a RESP key to the binary protocol's uint64 keyspace
// (FNV-1a 64).
func hashKey(k []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range k {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}

// --- decoding ------------------------------------------------------------

// respReader decodes RESP2 commands (arrays of bulk strings, plus the
// inline form redis-cli falls back to), reusing its buffers across
// commands.
type respReader struct {
	br   *bufio.Reader
	args [][]byte
	flat []byte // backing storage for the args of one command
	line []byte
}

func newRESPReader(br *bufio.Reader) *respReader {
	return &respReader{br: br, args: make([][]byte, 0, 8), flat: make([]byte, 0, 256)}
}

// readLine reads up to \r\n, rejecting lines past respMaxBulk.
func (r *respReader) readLine() ([]byte, error) {
	r.line = r.line[:0]
	for {
		chunk, err := r.br.ReadSlice('\n')
		r.line = append(r.line, chunk...)
		if err == nil {
			break
		}
		if err != bufio.ErrBufferFull {
			return nil, err
		}
		if len(r.line) > respMaxBulk {
			return nil, fmt.Errorf("line exceeds %d bytes: %w", respMaxBulk, ErrRESPProtocol)
		}
	}
	n := len(r.line)
	if n < 2 || r.line[n-2] != '\r' {
		return nil, fmt.Errorf("line without CRLF terminator: %w", ErrRESPProtocol)
	}
	return r.line[:n-2], nil
}

// readCommand decodes one command into an argument vector. The returned
// slices alias the reader's buffers and are valid until the next call.
// io.EOF passes through clean (client closed between commands).
func (r *respReader) readCommand() ([][]byte, error) {
	first, err := r.br.ReadByte()
	if err != nil {
		return nil, err
	}
	r.args = r.args[:0]
	r.flat = r.flat[:0]
	if first != '*' {
		// Inline command: a space-separated line (redis-cli's fallback and
		// the simplest thing a human can type over nc).
		line, err := r.readLine()
		if err != nil {
			return nil, err
		}
		r.flat = append(r.flat, first)
		r.flat = append(r.flat, line...)
		start := -1
		for i := 0; i <= len(r.flat); i++ {
			if i < len(r.flat) && r.flat[i] != ' ' {
				if start < 0 {
					start = i
				}
				continue
			}
			if start >= 0 {
				r.args = append(r.args, r.flat[start:i])
				start = -1
			}
		}
		return r.args, nil
	}
	line, err := r.readLine()
	if err != nil {
		return nil, err
	}
	nargs, err := strconv.Atoi(string(line))
	if err != nil || nargs < 0 || nargs > respMaxArgs {
		return nil, fmt.Errorf("bad array header %q: %w", line, ErrRESPProtocol)
	}
	// Bulk lengths are parsed first and bounds-checked before any body
	// read: a hostile $<huge> costs an error, not an allocation.
	offs := make([]int, 0, 16)
	if nargs > 16 {
		offs = make([]int, 0, nargs)
	}
	for i := 0; i < nargs; i++ {
		t, err := r.br.ReadByte()
		if err != nil {
			return nil, unexpectedEOF(err)
		}
		if t != '$' {
			return nil, fmt.Errorf("array element %d is type %q, want bulk string: %w", i, t, ErrRESPProtocol)
		}
		line, err := r.readLine()
		if err != nil {
			return nil, unexpectedEOF(err)
		}
		n, err := strconv.Atoi(string(line))
		if err != nil || n < 0 || n > respMaxBulk {
			return nil, fmt.Errorf("bad bulk length %q: %w", line, ErrRESPProtocol)
		}
		start := len(r.flat)
		r.flat = append(r.flat, make([]byte, n+2)...)
		if _, err := io.ReadFull(r.br, r.flat[start:]); err != nil {
			return nil, unexpectedEOF(err)
		}
		if r.flat[start+n] != '\r' || r.flat[start+n+1] != '\n' {
			return nil, fmt.Errorf("bulk string without CRLF terminator: %w", ErrRESPProtocol)
		}
		r.flat = r.flat[:start+n] // drop the CRLF from the arg view
		offs = append(offs, start, start+n)
	}
	// Build the arg views only after flat stops growing (appends above may
	// reallocate the backing array).
	for i := 0; i < len(offs); i += 2 {
		r.args = append(r.args, r.flat[offs[i]:offs[i+1]])
	}
	return r.args, nil
}

func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// --- command dispatch ----------------------------------------------------

// upper folds an ASCII command name to upper case in place and returns it.
func upper(b []byte) []byte {
	for i, c := range b {
		if 'a' <= c && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return b
}

func eq(b []byte, s string) bool { return string(b) == s }

// countCmd bumps the per-opcode request counter and pins the request's
// span attribution to op (RESP commands map onto the binary opcodes:
// SET→put, EXISTS→get, INFO→stats).
func (c *conn) countCmd(op uint8) {
	c.stripe.reqsTotal[op].Add(1)
	c.reqOp = op
}

// respReadLoop is the RESP twin of readLoop: decode, route by key hash,
// lease the target shard lazily, execute in order, enqueue the encoded
// reply. One command produces exactly one reply (except QUIT, which also
// ends the connection), so pipelining works the RESP way: responses come
// back in command order.
func (c *conn) respReadLoop() {
	rr := newRESPReader(bufio.NewReaderSize(c.nc, 32<<10))
	for {
		c.sp.Begin()
		args, err := rr.readCommand()
		if err != nil {
			if errors.Is(err, ErrRESPProtocol) {
				c.s.badTotal.Add(1)
				c.reply(AppendRESPError(nil, "ERR protocol error: "+err.Error()))
			}
			return
		}
		c.sp.Mark(trace.StageRead)
		c.stripe.reqsRead.Add(1)
		if len(args) == 0 {
			c.reply(AppendRESPError(nil, "ERR empty command"))
			continue
		}
		// Dispatch routes inside respExecute (a variadic DEL touches
		// several shards), so the per-request attribution travels on the
		// conn: respSession fills it on the request's first shard touch.
		c.reqOp, c.reqSess, c.reqTS, c.reqShrd = 0, nil, nil, 0
		resp, fatal := c.respExecute(upper(args[0]), args[1:])
		c.sp.Mark(trace.StageExec)
		status := respStatusOf(resp)
		c.reply(resp)
		c.sp.Mark(trace.StageQueue)
		var restarts, drains uint64
		if c.reqTS != nil {
			restarts = c.reqTS.Load(obs.Restarts) - c.reqR0
			drains = c.reqTS.Load(obs.DrainPasses) - c.reqD0
		}
		c.finishSpan(c.reqSess, c.reqOp, status, int(c.reqShrd), restarts, drains)
		if fatal {
			return
		}
	}
}

// respStatusOf maps an encoded RESP reply onto the binary protocol's
// status space, so both listeners feed the same histogram/slow-log
// gates: -BUSY → BUSY, -OOM → CAPACITY, other errors → BAD_REQUEST,
// nil bulk → NOT_FOUND, anything else → OK.
func respStatusOf(resp []byte) uint8 {
	if len(resp) == 0 {
		return StOK
	}
	switch resp[0] {
	case '-':
		if len(resp) > 1 {
			switch resp[1] {
			case 'B':
				return StBusy
			case 'O':
				return StCapacity
			}
		}
		return StBadRequest
	case '$':
		if len(resp) >= 2 && resp[1] == '-' {
			return StNotFound
		}
	}
	return StOK
}

// respSession routes a RESP key and returns (shard session, shard,
// errReply): errReply is non-nil when the shard's registry is exhausted
// or closed.
func (c *conn) respSession(key []byte) (*kvmap.Session, uint64, []byte) {
	// Close the running exec leg (argument parse, or the previous key's
	// op in a variadic command) before attributing route/lease time.
	c.sp.Mark(trace.StageExec)
	k := hashKey(key)
	shard := c.s.shards.ShardIndex(k)
	c.sp.Mark(trace.StageRoute)
	sess, err := c.session(shard)
	c.sp.Mark(trace.StageLease)
	if err != nil {
		c.reqShrd = int32(shard)
		if errors.Is(err, lease.ErrClosed) {
			return nil, 0, AppendRESPError(nil, "ERR server is draining")
		}
		c.s.busyTotal.Add(1)
		return nil, 0, AppendRESPError(nil, "BUSY no free session slot on shard "+strconv.Itoa(shard)+"; retry")
	}
	c.s.stripes[shard].ops.Add(1)
	if c.reqSess == nil {
		// First shard touch of this request: pin span attribution and
		// the restart/drain baselines to it.
		c.reqSess = sess
		c.reqShrd = int32(shard)
		c.reqTS = c.s.shards.Shard(shard).Manager().ObsStats().At(sess.TID())
		c.reqR0 = c.reqTS.Load(obs.Restarts)
		c.reqD0 = c.reqTS.Load(obs.DrainPasses)
	}
	return sess, k, nil
}

// respCacheSession routes a RESP key like respSession and wraps the
// shard's session with the shard's TTL/LRU cache layer. Only called
// when c.s.cfg.Cache is set; the wrap is a value, so per-request
// wrapping allocates nothing.
func (c *conn) respCacheSession(key []byte) (ttlcache.Session, uint64, []byte) {
	sess, k, errReply := c.respSession(key)
	if errReply != nil {
		return ttlcache.Session{}, 0, errReply
	}
	return c.s.cfg.Cache.Cache(c.s.shards.ShardIndex(k)).With(sess), k, nil
}

// parseSeconds parses a RESP integer argument of seconds.
func parseSeconds(b []byte) (int64, bool) {
	n, err := strconv.ParseInt(string(b), 10, 32)
	return n, err == nil
}

// respSetErr classifies a cache Set failure: node-budget exhaustion
// (even after eviction relief) answers -OOM like the raw path, but
// non-fatally — the cache already shed what it could, the connection
// and the store remain healthy, and the client may retry.
func (c *conn) respSetErr(err error) []byte {
	if errors.Is(err, lease.ErrCapacityExhausted) {
		c.s.capTotal.Add(1)
		return AppendRESPError(nil, "OOM node budget exhausted after eviction relief")
	}
	return AppendRESPError(nil, "ERR "+err.Error())
}

func (c *conn) respExecute(cmd []byte, args [][]byte) (resp []byte, fatal bool) {
	defer func() {
		if r := recover(); r != nil {
			err, ok := r.(error)
			if !ok || !errors.Is(err, lease.ErrCapacityExhausted) {
				panic(r)
			}
			c.s.capTotal.Add(1)
			c.s.logf("conn %d: capacity exhausted: %v", c.id, err)
			resp, fatal = AppendRESPError(nil, "OOM node budget exhausted"), true
		}
	}()
	switch {
	case eq(cmd, "PING"):
		c.countCmd(OpPing)
		if len(args) == 1 {
			return AppendRESPBulk(nil, args[0]), false
		}
		return AppendRESPSimple(nil, "PONG"), false
	case eq(cmd, "ECHO"):
		if len(args) != 1 {
			return respWrongArity(cmd), false
		}
		return AppendRESPBulk(nil, args[0]), false
	case eq(cmd, "GET"):
		if len(args) != 1 {
			return respWrongArity(cmd), false
		}
		c.countCmd(OpGet)
		if c.s.cfg.Cache != nil {
			cs, k, errReply := c.respCacheSession(args[0])
			if errReply != nil {
				return errReply, false
			}
			if w, ok := cs.Get(k); ok {
				return AppendRESPBulk(nil, appendUnpacked(nil, w)), false
			}
			return AppendRESPNil(nil), false
		}
		sess, k, errReply := c.respSession(args[0])
		if errReply != nil {
			return errReply, false
		}
		if w, ok := sess.Get(k); ok {
			return AppendRESPBulk(nil, appendUnpacked(nil, w)), false
		}
		return AppendRESPNil(nil), false
	case eq(cmd, "SET"):
		if len(args) != 2 {
			return respWrongArity(cmd), false
		}
		c.countCmd(OpPut)
		w, ok := packValue(args[1])
		if !ok {
			return AppendRESPError(nil, "ERR value exceeds the 7-byte limit of the u64-packed store"), false
		}
		if c.s.cfg.Cache != nil {
			cs, k, errReply := c.respCacheSession(args[0])
			if errReply != nil {
				return errReply, false
			}
			if err := cs.Set(k, w); err != nil {
				return c.respSetErr(err), false
			}
			return AppendRESPSimple(nil, "OK"), false
		}
		sess, k, errReply := c.respSession(args[0])
		if errReply != nil {
			return errReply, false
		}
		sess.Put(k, w)
		return AppendRESPSimple(nil, "OK"), false
	case eq(cmd, "SETEX"):
		// SETEX key seconds value — SET plus a per-key TTL. Cache-only:
		// without the cache layer the map has nowhere to keep a deadline.
		if len(args) != 3 {
			return respWrongArity(cmd), false
		}
		c.countCmd(OpPut)
		if c.s.cfg.Cache == nil {
			return AppendRESPError(nil, "ERR SETEX requires the cache layer (run with -cache)"), false
		}
		secs, okSecs := parseSeconds(args[1])
		if !okSecs || secs <= 0 {
			return AppendRESPError(nil, "ERR invalid expire time in 'setex' command"), false
		}
		w, ok := packValue(args[2])
		if !ok {
			return AppendRESPError(nil, "ERR value exceeds the 7-byte limit of the u64-packed store"), false
		}
		cs, k, errReply := c.respCacheSession(args[0])
		if errReply != nil {
			return errReply, false
		}
		if err := cs.SetTTL(k, w, time.Duration(secs)*time.Second); err != nil {
			return c.respSetErr(err), false
		}
		return AppendRESPSimple(nil, "OK"), false
	case eq(cmd, "EXPIRE"):
		// EXPIRE key seconds → :1 deadline set, :0 key absent. A
		// non-positive seconds deletes the key, as in Redis.
		if len(args) != 2 {
			return respWrongArity(cmd), false
		}
		c.countCmd(OpPut)
		if c.s.cfg.Cache == nil {
			return AppendRESPError(nil, "ERR EXPIRE requires the cache layer (run with -cache)"), false
		}
		secs, okSecs := parseSeconds(args[1])
		if !okSecs {
			return AppendRESPError(nil, "ERR invalid expire time in 'expire' command"), false
		}
		cs, k, errReply := c.respCacheSession(args[0])
		if errReply != nil {
			return errReply, false
		}
		if secs <= 0 {
			if cs.Remove(k) {
				return AppendRESPInt(nil, 1), false
			}
			return AppendRESPInt(nil, 0), false
		}
		if cs.Expire(k, time.Duration(secs)*time.Second) {
			return AppendRESPInt(nil, 1), false
		}
		return AppendRESPInt(nil, 0), false
	case eq(cmd, "TTL"):
		// TTL key → :-2 absent (or expired), :-1 live without a
		// deadline, :N seconds remaining (rounded up, so a key set with
		// SETEX k 1 v answers :1 immediately).
		if len(args) != 1 {
			return respWrongArity(cmd), false
		}
		c.countCmd(OpGet)
		if c.s.cfg.Cache == nil {
			return AppendRESPError(nil, "ERR TTL requires the cache layer (run with -cache)"), false
		}
		cs, k, errReply := c.respCacheSession(args[0])
		if errReply != nil {
			return errReply, false
		}
		remaining, hasTTL, ok := cs.TTL(k)
		switch {
		case !ok:
			return AppendRESPInt(nil, -2), false
		case !hasTTL:
			return AppendRESPInt(nil, -1), false
		default:
			secs := int64((remaining + time.Second - 1) / time.Second)
			return AppendRESPInt(nil, secs), false
		}
	case eq(cmd, "DEL"):
		if len(args) == 0 {
			return respWrongArity(cmd), false
		}
		c.countCmd(OpDel)
		removed := int64(0)
		for _, key := range args {
			sess, k, errReply := c.respSession(key)
			if errReply != nil {
				return errReply, false
			}
			if cache := c.s.cfg.Cache; cache != nil {
				if cache.Cache(c.s.shards.ShardIndex(k)).With(sess).Remove(k) {
					removed++
				}
			} else if _, ok := sess.Remove(k); ok {
				removed++
			}
		}
		return AppendRESPInt(nil, removed), false
	case eq(cmd, "EXISTS"):
		if len(args) == 0 {
			return respWrongArity(cmd), false
		}
		c.countCmd(OpGet)
		found := int64(0)
		for _, key := range args {
			sess, k, errReply := c.respSession(key)
			if errReply != nil {
				return errReply, false
			}
			if cache := c.s.cfg.Cache; cache != nil {
				if cache.Cache(c.s.shards.ShardIndex(k)).With(sess).Contains(k) {
					found++
				}
			} else if _, ok := sess.Get(k); ok {
				found++
			}
		}
		return AppendRESPInt(nil, found), false
	case eq(cmd, "CAS"):
		// Extension: CAS key old new — the binary protocol's compare-and-
		// swap, with old and new packed like SET values.
		if len(args) != 3 {
			return respWrongArity(cmd), false
		}
		c.countCmd(OpCAS)
		old, ok1 := packValue(args[1])
		nv, ok2 := packValue(args[2])
		if !ok1 || !ok2 {
			return AppendRESPError(nil, "ERR value exceeds the 7-byte limit of the u64-packed store"), false
		}
		sess, k, errReply := c.respSession(args[0])
		if errReply != nil {
			return errReply, false
		}
		swapped, found := sess.CompareAndSwap(k, old, nv)
		switch {
		case swapped:
			return AppendRESPInt(nil, 1), false
		case found:
			return AppendRESPInt(nil, 0), false
		default:
			return AppendRESPNil(nil), false
		}
	case eq(cmd, "INFO"):
		c.countCmd(OpStats)
		var section []byte
		if len(args) >= 1 {
			section = upper(args[0])
		}
		return AppendRESPBulk(nil, c.s.respInfo(nil, section)), false
	case eq(cmd, "COMMAND"), eq(cmd, "CONFIG"):
		// redis-cli and benchmark tools probe these on connect; an empty
		// array keeps them happy without pretending to implement them.
		return append([]byte(nil), "*0\r\n"...), false
	case eq(cmd, "SELECT"):
		return AppendRESPSimple(nil, "OK"), false
	case eq(cmd, "QUIT"):
		return AppendRESPSimple(nil, "OK"), true
	}
	return AppendRESPError(nil, "ERR unknown command '"+string(cmd)+"'"), false
}

func respWrongArity(cmd []byte) []byte {
	return AppendRESPError(nil, "ERR wrong number of arguments for '"+string(cmd)+"'")
}

// respInfo renders a redis-style INFO document. section narrows the
// reply to one section (upper-cased by the caller; SERVER, KEYSPACE,
// STATS, LATENCY or HEALTH); empty means all.
//
// The Stats and Latency sections are rendered by reflecting over the
// same Snapshot / CmdLatency structs the STATS op and /stats.json
// serialize, via their JSON field names — INFO cannot drift from the
// binary surfaces because there is no second field list to forget to
// update (TestInfoStatsParity pins this).
func (s *Server) respInfo(b, section []byte) []byte {
	want := func(name string) bool {
		return len(section) == 0 || string(section) == name
	}
	snap := s.snapshot()
	if want("SERVER") {
		b = append(b, "# Server\r\noa_server:1\r\nprotocol:RESP2\r\n"...)
	}
	if want("KEYSPACE") {
		b = append(b, "# Keyspace\r\n"...)
		b = appendInfoInt(b, "shards", int64(snap.Shards))
		for i, n := range snap.ShardOps {
			b = append(b, "shard_ops_"...)
			b = strconv.AppendInt(b, int64(i), 10)
			b = append(b, ':')
			b = strconv.AppendUint(b, n, 10)
			b = append(b, '\r', '\n')
		}
	}
	if want("STATS") {
		b = append(b, "# Stats\r\n"...)
		b = appendInfoJSON(b, "", snap)
	}
	if want("LATENCY") {
		b = append(b, "# Latency\r\n"...)
		lat := s.latencySnapshot()
		for op := OpGet; op <= OpCAS; op++ {
			b = appendInfoJSON(b, "latency_"+opNames[op]+"_", lat[opNames[op]])
		}
	}
	if want("HEALTH") {
		if h := s.healthDoc(); h != nil {
			// Same reflection path as Stats: the scalar fields of the
			// flight Status (state, firing, transitions, since_ns)
			// become health_* lines; the per-rule array stays on the
			// richer surfaces (/healthz, STATS).
			b = append(b, "# Health\r\n"...)
			b = appendInfoJSON(b, "health_", h)
		}
	}
	return b
}

// appendInfoJSON renders v's scalar JSON fields as prefixed key:value
// INFO lines, sorted by field name. Arrays and nested objects are
// skipped (ShardOps is rendered per-shard in the Keyspace section).
func appendInfoJSON(b []byte, prefix string, v any) []byte {
	raw, err := json.Marshal(v)
	if err != nil {
		return b
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return b
	}
	keys := make([]string, 0, len(m))
	for k, rv := range m {
		if len(rv) > 0 && (rv[0] == '[' || rv[0] == '{') {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b = append(b, prefix...)
		b = append(b, k...)
		b = append(b, ':')
		b = append(b, m[k]...)
		b = append(b, '\r', '\n')
	}
	return b
}

func appendInfoInt(b []byte, k string, v int64) []byte {
	b = append(b, k...)
	b = append(b, ':')
	b = strconv.AppendInt(b, v, 10)
	return append(b, '\r', '\n')
}
