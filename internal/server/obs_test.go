package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kvmap"
	"repro/internal/obs"
	"repro/internal/trace"
)

// statsDoc mirrors the STATS JSON layout the tests inspect.
type statsDoc struct {
	Server  map[string]json.RawMessage `json:"server"`
	Latency map[string]CmdLatency      `json:"latency"`
}

func fetchStats(t *testing.T, c *Client) statsDoc {
	t.Helper()
	body, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var doc statsDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("STATS body: %v\n%s", err, body)
	}
	return doc
}

// The latency block appears in STATS, fed by the per-(command, shard)
// histograms the request spans record into.
func TestStatsLatencyBlock(t *testing.T) {
	_, addr := newTestServer(t, 2, Config{})
	c, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := uint64(0); i < 32; i++ {
		put, _ := c.Put(i, i)
		if err := put.Wait(); err != nil {
			t.Fatal(err)
		}
		get, _ := c.Get(i)
		if err := get.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	doc := fetchStats(t, c)
	for _, op := range []string{"get", "put", "del", "cas"} {
		if _, ok := doc.Latency[op]; !ok {
			t.Fatalf("latency block missing %q: %v", op, doc.Latency)
		}
	}
	if doc.Latency["get"].Count != 32 || doc.Latency["put"].Count != 32 {
		t.Fatalf("latency counts get=%d put=%d, want 32/32", doc.Latency["get"].Count, doc.Latency["put"].Count)
	}
	if doc.Latency["del"].Count != 0 {
		t.Fatalf("no DELs were issued, count=%d", doc.Latency["del"].Count)
	}
	if doc.Latency["get"].P99Ns == 0 || doc.Latency["get"].MaxNs == 0 {
		t.Fatalf("get quantiles empty: %+v", doc.Latency["get"])
	}
	for _, k := range []string{"bad_requests", "slow_requests"} {
		if _, ok := doc.Server[k]; !ok {
			t.Fatalf("server snapshot missing %q", k)
		}
	}
}

// INFO's Stats section is generated from the Snapshot struct's JSON
// fields and its Latency section from CmdLatency — every scalar field
// of both must appear, so the RESP surface cannot drift from STATS.
func TestInfoStatsParity(t *testing.T) {
	s, addr := newRESPTestServer(t, 4, 2, Config{})
	c, err := DialRESP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if v, _ := c.Do("SET", "k", "v"); string(v.Str) != "OK" {
		t.Fatalf("SET = %+v", v)
	}

	v, err := c.Do("INFO")
	if err != nil {
		t.Fatal(err)
	}
	info := string(v.Str)

	raw, err := json.Marshal(s.snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	scalars := 0
	for k, rv := range m {
		if len(rv) > 0 && (rv[0] == '[' || rv[0] == '{') {
			continue
		}
		scalars++
		if !strings.Contains(info, "\r\n"+k+":") && !strings.Contains(info, "\n"+k+":") {
			t.Errorf("INFO missing Snapshot field %q", k)
		}
	}
	if scalars < 10 {
		t.Fatalf("only %d scalar Snapshot fields — parity test lost its teeth", scalars)
	}
	raw, _ = json.Marshal(CmdLatency{})
	var lm map[string]json.RawMessage
	_ = json.Unmarshal(raw, &lm)
	for _, op := range []string{"get", "put", "del", "cas"} {
		for k := range lm {
			if !strings.Contains(info, "latency_"+op+"_"+k+":") {
				t.Errorf("INFO missing latency field latency_%s_%s", op, k)
			}
		}
	}

	// Section filter: INFO latency returns only the latency section.
	v, err = c.Do("INFO", "latency")
	if err != nil {
		t.Fatal(err)
	}
	sec := string(v.Str)
	if !strings.Contains(sec, "# Latency") || !strings.Contains(sec, "latency_get_count:") {
		t.Fatalf("INFO latency = %q", sec)
	}
	if strings.Contains(sec, "# Stats") || strings.Contains(sec, "# Server") {
		t.Fatalf("INFO latency leaked other sections: %q", sec)
	}
}

// With a 1ns threshold every data request is "slow": the ring fills,
// entries decode with op/status/shard/stage attribution, and the HTTP
// route serves them through the obs registry handler alongside the
// latency histogram families on /metrics.
func TestSlowLogAndMetricsRoutes(t *testing.T) {
	s, addr := newTestServer(t, 2, Config{SlowThreshold: time.Nanosecond, SlowLogSize: 32})
	c, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := uint64(0); i < 16; i++ {
		put, _ := c.Put(i, i)
		if err := put.Wait(); err != nil {
			t.Fatal(err)
		}
	}

	entries := s.SlowLog()
	if len(entries) == 0 {
		t.Fatal("slow log empty under a 1ns threshold")
	}
	e := entries[0]
	if e.Op != "put" && e.Op != "get" {
		t.Fatalf("entry op %q", e.Op)
	}
	if e.Status != "ok" && e.Status != "not_found" {
		t.Fatalf("entry status %q", e.Status)
	}
	if e.ServerNs <= 0 || e.UnixNano == 0 {
		t.Fatalf("entry timing: %+v", e)
	}
	var stageSum int64
	for _, d := range e.Stages {
		stageSum += d
	}
	if stageSum < e.ServerNs {
		t.Fatalf("stages (%d ns incl. read) sum below server_ns %d", stageSum, e.ServerNs)
	}

	reg := obs.NewRegistry()
	s.RegisterObs(reg)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		ThresholdNs int64       `json:"threshold_ns"`
		Total       uint64      `json:"total"`
		Entries     []SlowEntry `json:"entries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if doc.ThresholdNs != 1 || doc.Total == 0 || len(doc.Entries) == 0 {
		t.Fatalf("/debug/slowlog = %+v", doc)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`oa_server_latency_get_seconds_bucket{shard="0",le="+Inf"}`,
		`oa_server_latency_put_seconds_count{shard="0"}`,
		"oa_server_slow_requests_total",
		"oa_server_bad_requests_total",
	} {
		if !bytes.Contains(prom, []byte(want)) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// The RESP listener feeds the same histograms and slow log, including
// variadic commands (attributed to the first touched shard).
func TestRESPLatencyAndSlowLog(t *testing.T) {
	s, addr := newRESPTestServer(t, 4, 2, Config{SlowThreshold: time.Nanosecond})
	c, err := DialRESP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if v, _ := c.Do("SET", "a", "1"); string(v.Str) != "OK" {
		t.Fatalf("SET = %+v", v)
	}
	if v, _ := c.Do("GET", "a"); string(v.Str) != "1" {
		t.Fatalf("GET = %+v", v)
	}
	if v, _ := c.Do("DEL", "a", "b", "c"); v.Type != ':' {
		t.Fatalf("DEL = %+v", v)
	}
	lat := s.latencySnapshot()
	if lat["put"].Count != 1 || lat["get"].Count != 1 || lat["del"].Count != 1 {
		t.Fatalf("latency counts %+v", lat)
	}
	if len(s.SlowLog()) == 0 {
		t.Fatal("RESP requests did not reach the slow log")
	}
}

// With tracing on and SpanSample=1, every data request emits req_stage/
// req_span events into the routed shard's session ring — on the same
// timeline as the reclamation events.
func TestSpanTraceEmission(t *testing.T) {
	trace.SetEnabled(true)
	defer trace.SetEnabled(false)
	s, addr := newTestServer(t, 2, Config{SpanSample: 1})
	c, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := uint64(0); i < 8; i++ {
		put, _ := c.Put(i, i)
		if err := put.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	var spans, stages int
	for _, ev := range s.shards.Shard(0).Manager().TraceRecorder().Events() {
		switch ev.Kind {
		case trace.EvReqSpan:
			spans++
			if op := trace.SpanOp(ev.Arg); op != OpPut {
				t.Fatalf("span op %d, want put", op)
			}
			if trace.SpanStatus(ev.Arg) > StCASMismatch {
				t.Fatalf("span status %d", trace.SpanStatus(ev.Arg))
			}
		case trace.EvReqStage:
			stages++
		}
	}
	if spans != 8 {
		t.Fatalf("got %d req_span events, want 8 (SpanSample=1)", spans)
	}
	if stages < spans {
		t.Fatalf("%d stage events for %d spans", stages, spans)
	}
}

// Sampling: with SpanSample=4, 8 requests emit exactly 2 spans.
func TestSpanSampling(t *testing.T) {
	trace.SetEnabled(true)
	defer trace.SetEnabled(false)
	s, addr := newTestServer(t, 2, Config{SpanSample: 4})
	c, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := uint64(0); i < 8; i++ {
		put, _ := c.Put(1, i)
		if err := put.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	var spans int
	for _, ev := range s.shards.Shard(0).Manager().TraceRecorder().Events() {
		if ev.Kind == trace.EvReqSpan {
			spans++
		}
	}
	if spans != 2 {
		t.Fatalf("got %d req_span events from 8 requests at 1-in-4, want 2", spans)
	}
}

// The instrumentation the span threads into the request path — stage
// marks, the histogram record, the slow-log record, and the (sampled)
// trace emission — must add zero heap allocations, sampled or not.
// (The response buffer each request allocates is the pre-existing
// encode path, exercised by TestServerEncodePathsDoNotAllocate.)
func TestInstrumentationDoesNotAllocate(t *testing.T) {
	trace.SetEnabled(true)
	defer trace.SetEnabled(false)
	shards := kvmap.NewSharded(core.Config{MaxThreads: 2, Capacity: 1 << 12}, 1<<10, 1)
	defer shards.Close()
	sess, err := shards.Shard(0).Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Release()

	run := func(c *conn) func() {
		return func() {
			c.sp.Begin()
			c.sp.Mark(trace.StageRead)
			c.sp.Mark(trace.StageRoute)
			c.sp.Mark(trace.StageLease)
			c.sp.Mark(trace.StageExec)
			c.sp.Mark(trace.StageQueue)
			c.finishSpan(sess, OpGet, StOK, 0, 1, 1)
		}
	}
	t.Run("Unsampled", func(t *testing.T) {
		// A huge sample period plus a high threshold: the common case,
		// where a request pays only the marks and one histogram record.
		s := New(Config{Shards: shards, Inline: true, SlowThreshold: time.Hour, SpanSample: 1 << 30})
		if avg := testing.AllocsPerRun(2000, run(&conn{s: s, id: 1})); avg > 0.05 {
			t.Fatalf("unsampled instrumented path allocates %.2f objects/request", avg)
		}
	})
	t.Run("SampledAndSlow", func(t *testing.T) {
		// Every request emits a span AND lands in the slow log — the
		// maximally instrumented path.
		s := New(Config{Shards: shards, Inline: true, SlowThreshold: time.Nanosecond, SpanSample: 1})
		if avg := testing.AllocsPerRun(2000, run(&conn{s: s, id: 1})); avg > 0.05 {
			t.Fatalf("sampled+slow instrumented path allocates %.2f objects/request", avg)
		}
		if s.slowlog.total() == 0 {
			t.Fatal("slow log never recorded — the proof proved nothing")
		}
	})
}

// Concurrent histogram records, slow-log writers and snapshot readers —
// run under -race, this is the proof the new observability surfaces
// need no locks.
func TestLatencyConcurrentRecordSnapshot(t *testing.T) {
	shards := kvmap.NewSharded(core.Config{MaxThreads: 4, Capacity: 1 << 12}, 1<<10, 2)
	defer shards.Close()
	s := New(Config{Shards: shards, Inline: true, SlowThreshold: time.Nanosecond, SlowLogSize: 16})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var stages [trace.NumStages]int64
			stages[trace.StageExec] = 5
			for i := uint64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.lat[OpGet][int(i)%len(s.lat[OpGet])].ObserveNs(i)
				s.slowlog.record(int64(i), uint64(w), OpGet, StOK, 0, 5, stages, 1, 0)
			}
		}(w)
	}
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		_ = s.latencySnapshot()
		for _, e := range s.slowlog.snapshot() {
			if e.Op != "get" || e.ServerNs != 5 {
				t.Errorf("torn slow entry escaped the seqlock: %+v", e)
			}
		}
		_ = s.statsBody()
	}
	close(stop)
	wg.Wait()
}

// SetHealth's document must surface on both listeners: the STATS JSON
// carries it under "health" and RESP `INFO health` flattens its scalar
// fields as health_* lines (absent entirely when no recorder attached).
func TestHealthSurfaces(t *testing.T) {
	type fakeHealth struct {
		State       string `json:"state"`
		Transitions uint64 `json:"transitions"`
		Firing      string `json:"firing"`
	}
	doc := fakeHealth{State: "degraded", Transitions: 3, Firing: "ring_saturation"}

	s, addr := newRESPTestServer(t, 4, 2, Config{})
	if !strings.Contains(string(s.statsBody()), `"health"`) {
		// no supplier yet → omitted
	} else {
		t.Fatalf("health block present before SetHealth: %s", s.statsBody())
	}
	s.SetHealth(func() any { return doc })

	var parsed struct {
		Health fakeHealth `json:"health"`
	}
	if err := json.Unmarshal(s.statsBody(), &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.Health != doc {
		t.Fatalf("STATS health block = %+v, want %+v", parsed.Health, doc)
	}

	c, err := DialRESP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	v, err := c.Do("INFO", "health")
	if err != nil {
		t.Fatal(err)
	}
	info := string(v.Str)
	for _, want := range []string{"# Health", `health_state:"degraded"`, "health_transitions:3", `health_firing:"ring_saturation"`} {
		if !strings.Contains(info, want) {
			t.Fatalf("INFO health missing %q:\n%s", want, info)
		}
	}
	if strings.Contains(info, "# Stats") {
		t.Fatalf("INFO health leaked other sections:\n%s", info)
	}
}
