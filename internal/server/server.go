package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kvmap"
	"repro/internal/lease"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Config sizes a Server. Map is required; zero values elsewhere pick the
// documented defaults.
type Config struct {
	// Map is the structure being served. Its thread registry bounds how
	// many connections can hold a session lease simultaneously.
	Map *kvmap.Map
	// Window bounds the per-connection in-flight pipeline: responses
	// executed but not yet written. When the writer falls this far behind,
	// the reader stops reading from the socket, so backpressure reaches
	// the client as TCP flow control. Default 256.
	Window int
	// LeaseWait bounds how long a request waits for a free session slot
	// before the server answers BUSY. A short wait rides out lease churn
	// from disconnecting peers without stalling the connection. Default
	// 2ms.
	LeaseWait time.Duration
	// DrainTimeout bounds Shutdown: connections whose client has not
	// closed by then are force-closed. Default 5s.
	DrainTimeout time.Duration
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

// Server serves the wire protocol over a listener. One Server serves one
// Map; connections lease a session on their first data request and hold
// it until disconnect.
type Server struct {
	cfg Config

	mu     sync.Mutex
	ln     net.Listener
	conns  map[*conn]struct{}
	closed bool

	nextConnID atomic.Uint64
	draining   atomic.Bool

	// Counters, exported via RegisterObs and the STATS op.
	active      atomic.Int64  // open connections
	connsTotal  atomic.Uint64 // connections accepted
	reqsTotal   [8]atomic.Uint64
	busyTotal   atomic.Uint64 // BUSY responses (lease wait exhausted)
	capTotal    atomic.Uint64 // CAPACITY responses
	badTotal    atomic.Uint64 // BAD_REQUEST responses
	goawaysSent atomic.Uint64
	forceClosed atomic.Uint64 // conns cut by DrainTimeout
	reqsRead    atomic.Uint64 // requests decoded off sockets
	respsSent   atomic.Uint64 // responses handed to writers
}

var opNames = [8]string{"", "get", "put", "del", "cas", "ping", "stats", "goaway"}

// New builds a Server around cfg.Map.
func New(cfg Config) *Server {
	if cfg.Map == nil {
		panic("server: Config.Map is required")
	}
	if cfg.Window <= 0 {
		cfg.Window = 256
	}
	if cfg.LeaseWait <= 0 {
		cfg.LeaseWait = 2 * time.Millisecond
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	return &Server{cfg: cfg, conns: make(map[*conn]struct{})}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// RegisterObs registers the server's gauges and counters (oa_server_*)
// with reg. Call once, before Serve.
func (s *Server) RegisterObs(reg *obs.Registry) {
	reg.Gauge("oa_server_connections", "open client connections",
		func() float64 { return float64(s.active.Load()) })
	reg.Counter("oa_server_connections_total", "connections accepted",
		func() uint64 { return s.connsTotal.Load() })
	reg.CounterVec("oa_server_requests_total", "requests served by opcode", "op",
		len(opNames), func(i int) uint64 { return s.reqsTotal[i].Load() })
	reg.Counter("oa_server_busy_total", "requests answered BUSY (no free session)",
		func() uint64 { return s.busyTotal.Load() })
	reg.Counter("oa_server_capacity_total", "requests answered CAPACITY",
		func() uint64 { return s.capTotal.Load() })
	reg.Counter("oa_server_goaways_total", "GOAWAY frames sent",
		func() uint64 { return s.goawaysSent.Load() })
	reg.Counter("oa_server_force_closed_total", "connections cut at DrainTimeout",
		func() uint64 { return s.forceClosed.Load() })
	reg.Counter("oa_server_requests_read_total", "requests decoded off sockets",
		func() uint64 { return s.reqsRead.Load() })
	reg.Counter("oa_server_responses_sent_total", "responses queued to writers",
		func() uint64 { return s.respsSent.Load() })
}

// Serve accepts connections on ln until Shutdown (which returns nil here)
// or a listener error. It owns ln and closes it on return.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	defer ln.Close()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		c := &conn{
			s:      s,
			id:     s.nextConnID.Add(1),
			nc:     nc,
			out:    make(chan []byte, s.cfg.Window),
			goaway: make(chan struct{}),
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.connsTotal.Add(1)
		s.active.Add(1)
		if s.draining.Load() {
			// Raced with Shutdown's broadcast: deliver the GOAWAY ourselves.
			c.sendGoAway()
		}
		go c.run()
	}
}

// Shutdown drains the server: stop accepting, send GOAWAY everywhere,
// close the Map's session registry to new leases, and wait for clients to
// finish their pipelines and close — up to DrainTimeout, after which the
// stragglers are cut. It reports how many connections were force-closed.
func (s *Server) Shutdown() int {
	if s.draining.Swap(true) {
		return 0 // already draining; first caller reports
	}
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.sendGoAway()
	}
	s.mu.Unlock()

	deadline := time.Now().Add(s.cfg.DrainTimeout)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		n := len(s.conns)
		s.mu.Unlock()
		if n == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	var forced int
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.nc.Close()
		forced++
	}
	s.mu.Unlock()
	s.forceClosed.Add(uint64(forced))

	// Wait for the cut connections' goroutines to release their leases.
	for {
		s.mu.Lock()
		n := len(s.conns)
		s.mu.Unlock()
		if n == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	return forced
}

// Snapshot is the server-side counter block of a STATS response.
type Snapshot struct {
	Connections   int64  `json:"connections"`
	ConnsTotal    uint64 `json:"connections_total"`
	RequestsRead  uint64 `json:"requests_read"`
	ResponsesSent uint64 `json:"responses_sent"`
	Busy          uint64 `json:"busy"`
	Capacity      uint64 `json:"capacity"`
	GoAways       uint64 `json:"goaways"`
	ForceClosed   uint64 `json:"force_closed"`
	SessionsCap   int    `json:"sessions_cap"`
	SessionsInUse int    `json:"sessions_leased"`
	SessionGrants uint64 `json:"session_grants"`
}

func (s *Server) snapshot() Snapshot {
	lessor := s.cfg.Map.Manager().Lessor()
	return Snapshot{
		Connections:   s.active.Load(),
		ConnsTotal:    s.connsTotal.Load(),
		RequestsRead:  s.reqsRead.Load(),
		ResponsesSent: s.respsSent.Load(),
		Busy:          s.busyTotal.Load(),
		Capacity:      s.capTotal.Load(),
		GoAways:       s.goawaysSent.Load(),
		ForceClosed:   s.forceClosed.Load(),
		SessionsCap:   lessor.Cap(),
		SessionsInUse: lessor.Leased(),
		SessionGrants: lessor.Grants(),
	}
}

// statsBody builds the STATS JSON: server counters plus the map's
// reclamation stats.
func (s *Server) statsBody() []byte {
	b, err := json.Marshal(struct {
		Server Snapshot `json:"server"`
		Map    any      `json:"map"`
	}{s.snapshot(), s.cfg.Map.Stats()})
	if err != nil {
		return []byte(`{}`)
	}
	return b
}

// FinalStats returns the STATS JSON document plus a newline — the
// machine-readable shutdown dump commands print on stdout.
func (s *Server) FinalStats() []byte {
	return append(s.statsBody(), '\n')
}

// conn is one client connection: a reader goroutine that decodes,
// executes and enqueues, and a writer goroutine that batches and flushes.
type conn struct {
	s      *Server
	id     uint64
	nc     net.Conn
	out    chan []byte   // bounded in-flight window
	goaway chan struct{} // closed (once) to push a GOAWAY frame
	gaOnce sync.Once
}

func (c *conn) sendGoAway() {
	c.gaOnce.Do(func() {
		c.s.goawaysSent.Add(1)
		close(c.goaway)
	})
}

func (c *conn) run() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.writeLoop()
	}()
	c.readLoop()
	close(c.out)
	wg.Wait()
	c.nc.Close()
	c.s.mu.Lock()
	delete(c.s.conns, c)
	c.s.mu.Unlock()
	c.s.active.Add(-1)
}

// lease acquires a session slot, waiting up to LeaseWait for churn from
// disconnecting peers to free one.
func (c *conn) lease() (*kvmap.Session, error) {
	deadline := time.Now().Add(c.s.cfg.LeaseWait)
	for {
		sess, err := c.s.cfg.Map.Acquire()
		if err == nil {
			if trace.Enabled() {
				c.s.cfg.Map.Manager().TraceRecorder().Ring(sess.TID()).Record(trace.EvLease, c.id)
			}
			return sess, nil
		}
		if errors.Is(err, lease.ErrClosed) || time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(20 * time.Microsecond)
	}
}

func (c *conn) readLoop() {
	fr := newFrameReader(c.nc)
	var sess *kvmap.Session
	defer func() {
		if sess != nil {
			if trace.Enabled() {
				c.s.cfg.Map.Manager().TraceRecorder().Ring(sess.TID()).Record(trace.EvUnlease, c.id)
			}
			sess.Release()
		}
	}()
	for {
		f, err := fr.read()
		if err != nil {
			return // EOF: client closed; anything else: cut the pipeline
		}
		c.s.reqsRead.Add(1)
		nargs, known := argWords(f.Code)
		if !known || f.Code == OpGoAway || len(f.Body) != 8*nargs {
			c.s.badTotal.Add(1)
			c.reply(appendFrame(nil, f.ID, StBadRequest))
			continue
		}
		c.s.reqsTotal[f.Code].Add(1)
		switch f.Code {
		case OpPing:
			c.reply(appendFrame(nil, f.ID, StOK))
			continue
		case OpStats:
			c.reply(appendBytesFrame(nil, f.ID, StOK, c.s.statsBody()))
			continue
		}
		if sess == nil {
			s2, err := c.lease()
			if err != nil {
				if errors.Is(err, lease.ErrClosed) {
					c.reply(appendFrame(nil, f.ID, StClosed))
				} else {
					c.s.busyTotal.Add(1)
					c.reply(appendFrame(nil, f.ID, StBusy))
				}
				continue
			}
			sess = s2
		}
		resp, fatal := c.execute(sess, f)
		c.reply(resp)
		if fatal {
			return
		}
	}
}

// reply hands one encoded response to the writer. It blocks while the
// window is full, which is exactly the backpressure contract: the reader
// stops reading until the writer catches up.
func (c *conn) reply(b []byte) {
	c.s.respsSent.Add(1)
	c.out <- b
}

// execute runs one data request on the connection's leased session. A
// capacity-starved allocator panics with an error wrapping
// lease.ErrCapacityExhausted; that is answered CAPACITY and treated as
// fatal for the connection (the session's protocol state cannot be
// trusted past a mid-operation unwind).
func (c *conn) execute(sess *kvmap.Session, f frame) (resp []byte, fatal bool) {
	defer func() {
		if r := recover(); r != nil {
			err, ok := r.(error)
			if !ok || !errors.Is(err, lease.ErrCapacityExhausted) {
				panic(r)
			}
			c.s.capTotal.Add(1)
			c.s.logf("conn %d: capacity exhausted: %v", c.id, err)
			resp, fatal = appendFrame(nil, f.ID, StCapacity), true
		}
	}()
	switch f.Code {
	case OpGet:
		if v, ok := sess.Get(f.word(0)); ok {
			return appendFrame(nil, f.ID, StOK, v), false
		}
		return appendFrame(nil, f.ID, StNotFound), false
	case OpPut:
		prev, had := sess.Put(f.word(0), f.word(1))
		if had {
			return appendFrame(nil, f.ID, StOK, prev), false
		}
		return appendFrame(nil, f.ID, StNotFound, 0), false
	case OpDel:
		if v, ok := sess.Remove(f.word(0)); ok {
			return appendFrame(nil, f.ID, StOK, v), false
		}
		return appendFrame(nil, f.ID, StNotFound), false
	case OpCAS:
		swapped, found := sess.CompareAndSwap(f.word(0), f.word(1), f.word(2))
		switch {
		case swapped:
			return appendFrame(nil, f.ID, StOK), false
		case found:
			return appendFrame(nil, f.ID, StCASMismatch), false
		default:
			return appendFrame(nil, f.ID, StNotFound), false
		}
	}
	return appendFrame(nil, f.ID, StBadRequest), false
}

// writeLoop batches responses: it greedily drains the window into the
// buffered writer and flushes only when the queue goes empty (or the
// buffer fills), so a pipelining client costs ~one syscall per batch, not
// per response.
func (c *conn) writeLoop() {
	bw := bufio.NewWriterSize(c.nc, 32<<10)
	goaway := c.goaway
	for {
		select {
		case <-goaway:
			goaway = nil
			bw.Write(appendFrame(nil, 0, StGoAway))
			bw.Flush()
			continue
		case b, ok := <-c.out:
			if !ok {
				bw.Flush()
				return
			}
			bw.Write(b)
		}
	drain:
		for {
			select {
			case <-goaway:
				goaway = nil
				bw.Write(appendFrame(nil, 0, StGoAway))
			case b, ok := <-c.out:
				if !ok {
					bw.Flush()
					return
				}
				bw.Write(b)
			default:
				break drain
			}
		}
		if err := bw.Flush(); err != nil {
			// Socket gone: keep draining the window so the reader never
			// blocks on a full channel, but stop writing.
			for range c.out {
			}
			return
		}
	}
}
