package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/kvmap"
	"repro/internal/lease"
	"repro/internal/metrics"
	"repro/internal/mpmc"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/ttlcache"
)

// Config sizes a Server. One of Map or Shards is required; zero values
// elsewhere pick the documented defaults.
type Config struct {
	// Map is the single-structure path: serve one kvmap instance. Kept
	// for existing callers; internally it is wrapped as one shard.
	Map *kvmap.Map
	// Shards is the scale-out path: the keyspace is partitioned across
	// per-core kvmap instances and each request is routed by key hash in
	// the connection's reader goroutine, so each shard sees an
	// independent operation stream. Takes precedence over Map.
	Shards *kvmap.Sharded
	// Cache, when set, layers TTL/LRU cache semantics over the shards on
	// the RESP surface: GET applies lazy expiry, SET takes the cache's
	// default TTL and evicts under pressure instead of failing, and the
	// EXPIRE/TTL/SETEX commands come alive. It must wrap the same
	// sharded map the server serves; when Shards (and Map) are nil the
	// server adopts Cache.Shards(). The binary protocol keeps serving
	// the raw map words underneath.
	Cache *ttlcache.Sharded
	// Window bounds the per-connection in-flight pipeline: responses
	// executed but not yet written. When the writer falls this far behind,
	// the reader stops reading from the socket, so backpressure reaches
	// the client as TCP flow control. Default 256.
	Window int
	// LeaseWait bounds how long a request waits for a free session slot
	// on its target shard before the server answers BUSY. A short wait
	// rides out lease churn from disconnecting peers without stalling the
	// connection. Default 2ms.
	LeaseWait time.Duration
	// DrainTimeout bounds Shutdown: connections whose client has not
	// closed by then are force-closed. Default 5s.
	DrainTimeout time.Duration
	// SlowThreshold is the server-side span duration (route+lease+exec+
	// queue, excluding socket wait) past which a request is recorded in
	// the slow-request ring at /debug/slowlog. Default 1ms.
	SlowThreshold time.Duration
	// SlowLogSize is the slow-request ring's capacity, rounded up to a
	// power of two. Default 256.
	SlowLogSize int
	// SpanSample emits every Nth data request's span into the shard's
	// trace ring (when tracing is enabled); 1 traces every request.
	// Latency histograms and the slow log see every request regardless —
	// sampling only thins the trace timeline. Default 64.
	SpanSample int
	// Inline restores the pre-ring execution model: every binary-protocol
	// request executes in its connection's reader goroutine on a
	// per-(conn,shard) lease. The default (false) is batched mode: readers
	// only parse and route, per-shard executors drain bounded request
	// rings on one long-lived lease each. RESP connections always execute
	// inline (variadic commands touch several shards mid-parse).
	Inline bool
	// RingSize bounds each shard's request ring in batched mode. A full
	// ring is the backpressure signal: producers wait RingWait, then
	// answer BUSY. Default 1024.
	RingSize int
	// RingWait bounds how long a request waits for space on a full shard
	// ring before the server answers BUSY. Defaults to LeaseWait.
	RingWait time.Duration
	// MaxConns caps concurrently registered batched connections (the
	// executor's conn-table size and the ring producer-session registry).
	// Connections past the cap fall back to inline execution. Default 1024.
	MaxConns int
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...any)

	// ExecGate, when set, is called by each executor at the top of every
	// drain pass. In-package tests and cmd/healthsmoke stall an executor
	// here to pin queue-stage attribution, ring-full backpressure and
	// the health engine's ring-saturation rule. Never set in production.
	ExecGate func(shard int)
}

// shardStripe is one cache-padded counter block. The per-request counters
// used to be single shared atomics — three cross-core cache-line bounces
// per request, the kind of hidden serial point sharding exists to remove —
// so they are striped by shard (data ops) and by connection (protocol
// ops), and summed at snapshot time.
type shardStripe struct {
	ops       atomic.Uint64 // data requests routed to this shard
	reqsRead  atomic.Uint64 // requests decoded off sockets
	respsSent atomic.Uint64 // responses handed to writers
	reqsTotal [8]atomic.Uint64
	_         [128 - 11*8]byte // pad the 88 bytes of counters to two cache lines
}

// Server serves the wire protocols over listeners. One Server serves one
// sharded keyspace; connections lease a session per shard on their first
// request touching that shard and hold it until disconnect.
type Server struct {
	cfg    Config
	shards *kvmap.Sharded

	mu     sync.Mutex
	lns    []net.Listener
	conns  map[*conn]struct{}
	closed bool

	nextConnID atomic.Uint64
	draining   atomic.Bool

	// Hot striped counters (one stripe per shard) plus cold shared ones,
	// exported via RegisterObs and the STATS op.
	stripes     []shardStripe
	stripeMask  uint64
	active      atomic.Int64  // open connections
	connsTotal  atomic.Uint64 // connections accepted
	busyTotal   atomic.Uint64 // BUSY responses (lease wait exhausted)
	capTotal    atomic.Uint64 // CAPACITY responses
	badTotal    atomic.Uint64 // BAD_REQUEST / FRAME_TOO_BIG responses
	goawaysSent atomic.Uint64
	forceClosed atomic.Uint64 // conns cut by DrainTimeout

	// lat[op][shard] is the server-side latency histogram for one
	// (command, shard) pair, recorded from the request span for every
	// completed data op (statuses OK/NOT_FOUND/CAS_MISMATCH). Indexed by
	// opcode; only OpGet..OpCAS rows are populated.
	lat     [OpCAS + 1][]metrics.Histogram
	slowlog *slowLog

	// healthFn, when set via SetHealth, supplies the flight recorder's
	// health document; it rides along in STATS bodies and the RESP
	// `INFO health` section. Stored as func() any so the server stays
	// decoupled from the flight package.
	healthFn atomic.Value

	// Batched-mode machinery (nil/empty in inline mode): the shared ring
	// group (one bounded MPMC queue per shard), one executor per shard,
	// and the slot table executors use to find a request's connection.
	rings     *mpmc.Group
	execs     []*executor
	execStop  chan struct{}
	execWG    sync.WaitGroup
	tab       []atomic.Pointer[conn]
	freeSlots []uint32 // guarded by mu
	ringFull  atomic.Uint64
}

var opNames = [8]string{"", "get", "put", "del", "cas", "ping", "stats", "goaway"}

// New builds a Server around cfg.Shards (or cfg.Map, wrapped as one
// shard).
func New(cfg Config) *Server {
	if cfg.Shards == nil && cfg.Map == nil && cfg.Cache != nil {
		cfg.Shards = cfg.Cache.Shards()
	}
	if cfg.Shards == nil {
		if cfg.Map == nil {
			panic("server: Config.Map, Config.Shards or Config.Cache is required")
		}
		cfg.Shards = kvmap.ShardedOf(cfg.Map)
	}
	if cfg.Cache != nil && cfg.Cache.Shards() != cfg.Shards {
		panic("server: Config.Cache must wrap Config.Shards")
	}
	if cfg.Window <= 0 {
		cfg.Window = 256
	}
	if cfg.LeaseWait <= 0 {
		cfg.LeaseWait = 2 * time.Millisecond
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = time.Millisecond
	}
	if cfg.SlowLogSize <= 0 {
		cfg.SlowLogSize = 256
	}
	if cfg.SpanSample <= 0 {
		cfg.SpanSample = 64
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 1024
	}
	if cfg.RingWait <= 0 {
		cfg.RingWait = cfg.LeaseWait
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 1024
	}
	s := &Server{
		cfg:     cfg,
		shards:  cfg.Shards,
		conns:   make(map[*conn]struct{}),
		stripes: make([]shardStripe, cfg.Shards.NumShards()),
		slowlog: newSlowLog(cfg.SlowLogSize),
	}
	s.stripeMask = uint64(len(s.stripes) - 1)
	for op := OpGet; op <= OpCAS; op++ {
		s.lat[op] = make([]metrics.Histogram, cfg.Shards.NumShards())
	}
	if !cfg.Inline {
		s.startExecutors()
	}
	return s
}

// startExecutors builds the batched-mode machinery: the shared ring
// group (producer session per connection + consumer session per
// executor, hence MaxConns+shards contexts), the conn slot table, and
// one executor goroutine per shard, each taking its shard's long-lived
// map lease now — before any connection can compete for it.
func (s *Server) startExecutors() {
	n := s.shards.NumShards()
	s.rings = mpmc.NewGroup(core.Config{MaxThreads: s.cfg.MaxConns + n}, n, s.cfg.RingSize)
	s.tab = make([]atomic.Pointer[conn], s.cfg.MaxConns)
	s.freeSlots = make([]uint32, s.cfg.MaxConns)
	for i := range s.freeSlots {
		s.freeSlots[i] = uint32(s.cfg.MaxConns - 1 - i)
	}
	s.execStop = make(chan struct{})
	s.execs = make([]*executor, n)
	for i := range s.execs {
		e, err := newExecutor(s, i)
		if err != nil {
			// Only possible when a shard's registry cannot spare a single
			// session — a sizing bug worth failing loudly at construction.
			panic("server: cannot lease executor session for shard " +
				strconv.Itoa(i) + ": " + err.Error())
		}
		s.execs[i] = e
		s.execWG.Add(1)
		go e.run()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// NumShards returns how many keyspace shards the server routes across.
func (s *Server) NumShards() int { return len(s.stripes) }

func (s *Server) sumStripes(f func(*shardStripe) uint64) uint64 {
	var n uint64
	for i := range s.stripes {
		n += f(&s.stripes[i])
	}
	return n
}

// RegisterObs registers the server's gauges and counters (oa_server_*)
// with reg. Call once, before Serve.
func (s *Server) RegisterObs(reg *obs.Registry) {
	reg.Gauge("oa_server_connections", "open client connections",
		func() float64 { return float64(s.active.Load()) })
	reg.Counter("oa_server_connections_total", "connections accepted",
		func() uint64 { return s.connsTotal.Load() })
	reg.CounterVec("oa_server_requests_total", "requests served by opcode", "op",
		len(opNames), func(i int) uint64 {
			return s.sumStripes(func(st *shardStripe) uint64 { return st.reqsTotal[i].Load() })
		})
	reg.Gauge("oa_server_shards", "keyspace shards the router spreads over",
		func() float64 { return float64(s.NumShards()) })
	reg.CounterVec("oa_server_shard_ops", "data requests routed to each keyspace shard", "shard",
		len(s.stripes), func(i int) uint64 { return s.stripes[i].ops.Load() })
	reg.GaugeVec("oa_server_shard_sessions_leased", "sessions currently leased per shard", "shard",
		s.shards.NumShards(), func(i int) float64 {
			return float64(s.shards.Shard(i).Manager().Lessor().Leased())
		})
	reg.Counter("oa_server_busy_total", "requests answered BUSY (no free session)",
		func() uint64 { return s.busyTotal.Load() })
	reg.Counter("oa_server_capacity_total", "requests answered CAPACITY",
		func() uint64 { return s.capTotal.Load() })
	reg.Counter("oa_server_goaways_total", "GOAWAY frames sent",
		func() uint64 { return s.goawaysSent.Load() })
	reg.Counter("oa_server_force_closed_total", "connections cut at DrainTimeout",
		func() uint64 { return s.forceClosed.Load() })
	reg.Counter("oa_server_requests_read_total", "requests decoded off sockets",
		func() uint64 { return s.sumStripes(func(st *shardStripe) uint64 { return st.reqsRead.Load() }) })
	reg.Counter("oa_server_responses_sent_total", "responses queued to writers",
		func() uint64 { return s.sumStripes(func(st *shardStripe) uint64 { return st.respsSent.Load() }) })
	reg.Counter("oa_server_bad_requests_total", "requests answered BAD_REQUEST or FRAME_TOO_BIG",
		func() uint64 { return s.badTotal.Load() })
	reg.Counter("oa_server_slow_requests_total", "requests whose server-side span crossed SlowThreshold",
		func() uint64 { return s.slowlog.total() })
	if s.rings != nil {
		reg.GaugeVec("oa_server_ring_depth", "bounded request-ring depth per shard", "shard",
			len(s.execs), func(i int) float64 { return float64(s.rings.Queue(i).Len()) })
		reg.Gauge("oa_server_ring_cap", "bounded request-ring capacity per shard",
			func() float64 { return float64(s.cfg.RingSize) })
		reg.Counter("oa_server_ring_full_total", "requests answered BUSY because the shard ring stayed full past RingWait",
			func() uint64 { return s.ringFull.Load() })
		reg.Counter("oa_server_exec_batches_total", "executor drain batches",
			func() uint64 {
				var n uint64
				for _, e := range s.execs {
					n += e.batches.Load()
				}
				return n
			})
		reg.Counter("oa_server_exec_batched_ops_total", "data requests executed via shard rings",
			func() uint64 {
				var n uint64
				for _, e := range s.execs {
					n += e.ops.Load()
				}
				return n
			})
		reg.Trace(s.rings.Manager().TraceRecorder())
	}
	for op := OpGet; op <= OpCAS; op++ {
		hs := s.lat[op]
		reg.HistogramVec("oa_server_latency_"+opNames[op]+"_seconds",
			"server-side "+opNames[op]+" latency (route+lease+exec+queue, socket wait excluded)",
			"shard", len(hs),
			func(i int) *metrics.Histogram { return &hs[i] })
	}
	reg.Handle("/debug/slowlog", http.HandlerFunc(s.serveSlowLog))
}

// Serve accepts binary-protocol connections on ln until Shutdown (which
// returns nil here) or a listener error. It owns ln and closes it on
// return.
func (s *Server) Serve(ln net.Listener) error { return s.serve(ln, protoBinary) }

// ServeRESP accepts RESP2 connections on ln — the listener off-the-shelf
// Redis tooling (redis-cli, redis-benchmark, memtier) talks to. Both
// listeners share one shard router and one session economy; a Server may
// run both concurrently.
func (s *Server) ServeRESP(ln net.Listener) error { return s.serve(ln, protoRESP) }

func (s *Server) serve(ln net.Listener, proto uint8) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.lns = append(s.lns, ln)
	s.mu.Unlock()
	defer ln.Close()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		c := &conn{
			s:        s,
			id:       s.nextConnID.Add(1),
			proto:    proto,
			nc:       nc,
			sessions: make([]*kvmap.Session, s.shards.NumShards()),
		}
		c.ob.init(s.cfg.Window)
		c.stripe = &s.stripes[c.id&s.stripeMask]
		if proto == protoBinary && s.rings != nil {
			// Batched mode: a table slot (how executors find the conn) and
			// one ring producer session. Exhaustion of either — only possible
			// past MaxConns — degrades this connection to inline execution.
			if !s.register(c) {
				c.inline = true
			}
		} else {
			c.inline = true
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.connsTotal.Add(1)
		s.active.Add(1)
		if s.draining.Load() {
			// Raced with Shutdown's broadcast: deliver the GOAWAY ourselves.
			c.sendGoAway()
		}
		go c.run()
	}
}

// Shutdown drains the server: stop accepting, send GOAWAY everywhere,
// and wait for clients to finish their pipelines and close — up to
// DrainTimeout, after which the stragglers are cut. It reports how many
// connections were force-closed. (RESP has no in-band drain signal; RESP
// connections drain when their client closes, or are cut at the
// timeout.)
func (s *Server) Shutdown() int {
	if s.draining.Swap(true) {
		return 0 // already draining; first caller reports
	}
	s.mu.Lock()
	for _, ln := range s.lns {
		ln.Close()
	}
	for c := range s.conns {
		c.sendGoAway()
	}
	s.mu.Unlock()

	deadline := time.Now().Add(s.cfg.DrainTimeout)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		n := len(s.conns)
		s.mu.Unlock()
		if n == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	var forced int
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.nc.Close()
		forced++
	}
	s.mu.Unlock()
	s.forceClosed.Add(uint64(forced))

	// Wait for the cut connections' goroutines to release their leases.
	for {
		s.mu.Lock()
		n := len(s.conns)
		s.mu.Unlock()
		if n == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Every connection is gone, so every ring entry has been completed
	// and counted (the zero-drop ledger covers the rings). Now stop the
	// executors; each final-drains its ring and releases its leases.
	if s.execStop != nil {
		close(s.execStop)
		s.execWG.Wait()
		s.rings.Close()
	}
	return forced
}

// Snapshot is the server-side counter block of a STATS response.
// Session fields aggregate across shards.
type Snapshot struct {
	Connections   int64    `json:"connections"`
	ConnsTotal    uint64   `json:"connections_total"`
	RequestsRead  uint64   `json:"requests_read"`
	ResponsesSent uint64   `json:"responses_sent"`
	Busy          uint64   `json:"busy"`
	Capacity      uint64   `json:"capacity"`
	BadRequests   uint64   `json:"bad_requests"`
	SlowRequests  uint64   `json:"slow_requests"`
	GoAways       uint64   `json:"goaways"`
	ForceClosed   uint64   `json:"force_closed"`
	Shards        int      `json:"shards"`
	ShardOps      []uint64 `json:"shard_ops"`
	SessionsCap   int      `json:"sessions_cap"`
	SessionsInUse int      `json:"sessions_leased"`
	SessionGrants uint64   `json:"session_grants"`
	// Batched-execution block: zero values in inline mode.
	ExecMode   string `json:"exec_mode"`
	RingCap    int    `json:"ring_cap"`
	RingDepth  []int  `json:"ring_depth"`
	RingFull   uint64 `json:"ring_full"`
	Batches    uint64 `json:"exec_batches"`
	BatchedOps uint64 `json:"exec_batched_ops"`
	MaxBatch   uint64 `json:"exec_max_batch"`
}

func (s *Server) snapshot() Snapshot {
	shardOps := make([]uint64, len(s.stripes))
	for i := range s.stripes {
		shardOps[i] = s.stripes[i].ops.Load()
	}
	mode, ringCap := "inline", 0
	var depth []int
	var batches, batchedOps, maxBatch uint64
	if s.rings != nil {
		mode, ringCap = "batched", s.cfg.RingSize
		depth = make([]int, len(s.execs))
		for i, e := range s.execs {
			depth[i] = s.rings.Queue(i).Len()
			batches += e.batches.Load()
			batchedOps += e.ops.Load()
			if m := e.maxBatch.Load(); m > maxBatch {
				maxBatch = m
			}
		}
	}
	return Snapshot{
		ExecMode:      mode,
		RingCap:       ringCap,
		RingDepth:     depth,
		RingFull:      s.ringFull.Load(),
		Batches:       batches,
		BatchedOps:    batchedOps,
		MaxBatch:      maxBatch,
		Connections:   s.active.Load(),
		ConnsTotal:    s.connsTotal.Load(),
		RequestsRead:  s.sumStripes(func(st *shardStripe) uint64 { return st.reqsRead.Load() }),
		ResponsesSent: s.sumStripes(func(st *shardStripe) uint64 { return st.respsSent.Load() }),
		Busy:          s.busyTotal.Load(),
		Capacity:      s.capTotal.Load(),
		BadRequests:   s.badTotal.Load(),
		SlowRequests:  s.slowlog.total(),
		GoAways:       s.goawaysSent.Load(),
		ForceClosed:   s.forceClosed.Load(),
		Shards:        s.shards.NumShards(),
		ShardOps:      shardOps,
		SessionsCap:   s.shards.SessionsCap(),
		SessionsInUse: s.shards.SessionsLeased(),
		SessionGrants: s.shards.SessionGrants(),
	}
}

// CmdLatency summarizes one command's server-side latency histogram,
// merged across shards. All durations are nanoseconds; quantiles are
// log₂-bucket upper bounds.
type CmdLatency struct {
	Count  uint64 `json:"count"`
	MeanNs uint64 `json:"mean_ns"`
	P50Ns  uint64 `json:"p50_ns"`
	P90Ns  uint64 `json:"p90_ns"`
	P99Ns  uint64 `json:"p99_ns"`
	P999Ns uint64 `json:"p999_ns"`
	MaxNs  uint64 `json:"max_ns"`
}

// latencySnapshot merges each command's per-shard histograms and
// summarizes them. This one snapshot feeds STATS, stats.json's server
// block and the RESP INFO latency section, so the three surfaces cannot
// drift.
func (s *Server) latencySnapshot() map[string]CmdLatency {
	out := make(map[string]CmdLatency, OpCAS)
	for op := OpGet; op <= OpCAS; op++ {
		var merged metrics.Histogram
		for i := range s.lat[op] {
			merged.Merge(&s.lat[op][i])
		}
		snap := merged.Snapshot()
		cl := CmdLatency{Count: snap.Count, MaxNs: snap.Max}
		if snap.Count > 0 {
			cl.MeanNs = snap.Sum / snap.Count
			cl.P50Ns = snap.QuantileNs(0.50)
			cl.P90Ns = snap.QuantileNs(0.90)
			cl.P99Ns = snap.QuantileNs(0.99)
			cl.P999Ns = snap.QuantileNs(0.999)
		}
		out[opNames[op]] = cl
	}
	return out
}

// SetHealth registers the health-document supplier (the flight
// recorder's Status). Call before Serve; the document is embedded in
// every STATS body under "health" and rendered by `INFO health`.
func (s *Server) SetHealth(fn func() any) { s.healthFn.Store(fn) }

// healthDoc returns the current health document, or nil when no
// supplier is registered.
func (s *Server) healthDoc() any {
	if fn, ok := s.healthFn.Load().(func() any); ok && fn != nil {
		return fn()
	}
	return nil
}

// statsBody builds the STATS JSON: server counters, per-command latency
// summaries, the health block when a flight recorder is attached, the
// cache block when the TTL/LRU layer is configured, plus per-shard
// reclamation stats ("map" stays the shard-0 block for pre-sharding
// consumers).
func (s *Server) statsBody() []byte {
	var cacheStats any
	if s.cfg.Cache != nil {
		cacheStats = s.cfg.Cache.Stats()
	}
	b, err := json.Marshal(struct {
		Server  Snapshot              `json:"server"`
		Latency map[string]CmdLatency `json:"latency"`
		Health  any                   `json:"health,omitempty"`
		Cache   any                   `json:"cache,omitempty"`
		Map     any                   `json:"map"`
		Maps    any                   `json:"map_shards"`
	}{s.snapshot(), s.latencySnapshot(), s.healthDoc(), cacheStats, s.shards.Shard(0).Stats(), s.shards.Stats()})
	if err != nil {
		return []byte(`{}`)
	}
	return b
}

// FinalStats returns the STATS JSON document plus a newline — the
// machine-readable shutdown dump commands print on stdout.
func (s *Server) FinalStats() []byte {
	return append(s.statsBody(), '\n')
}

// Wire protocol selector for a connection.
const (
	protoBinary = iota
	protoRESP
)

// conn is one client connection: a reader goroutine that decodes and
// routes (executing inline or enqueueing onto shard rings), a writer
// goroutine that batches and flushes the outbox, and — in batched mode —
// completions arriving from shard executors. sessions holds the lazily
// leased per-shard sessions of the inline path.
type conn struct {
	s        *Server
	id       uint64
	proto    uint8
	nc       net.Conn
	ob       outbox // sequence-ordered in-flight window
	gaOnce   sync.Once
	stripe   *shardStripe // protocol-op counter stripe (by conn id)
	sessions []*kvmap.Session

	// Batched-mode identity: inline falls back to the classic path (RESP,
	// Config.Inline, or conn-table exhaustion). slot indexes the server's
	// conn table; prod is the connection's ring producer session; inflight
	// counts enqueued-but-incomplete requests — the conn's teardown and
	// slot reuse wait for it to drain (a vanished client only retires its
	// own pending entries).
	inline   bool
	slot     uint32
	prod     *mpmc.Session
	inflight atomic.Int64

	// Request-span state, owned by the reader goroutine. sp is the
	// per-request stopwatch, reused across requests; spanSeq drives the
	// 1-in-SpanSample trace emission.
	sp      trace.Span
	spanSeq uint64
	// Per-request attribution filled in by respSession for the RESP
	// loop, whose dispatch routes inside respExecute (variadic commands
	// touch several shards; the span is attributed to the first).
	reqOp   uint8
	reqSess *kvmap.Session
	reqTS   *obs.PerThread
	reqR0   uint64
	reqD0   uint64
	reqShrd int32
}

func (c *conn) sendGoAway() {
	c.gaOnce.Do(func() {
		if c.proto == protoBinary {
			c.s.goawaysSent.Add(1)
		}
		c.ob.pushGoAway()
	})
}

// register assigns c a conn-table slot and a ring producer session.
func (s *Server) register(c *conn) bool {
	s.mu.Lock()
	if len(s.freeSlots) == 0 {
		s.mu.Unlock()
		return false
	}
	slot := s.freeSlots[len(s.freeSlots)-1]
	s.freeSlots = s.freeSlots[:len(s.freeSlots)-1]
	s.mu.Unlock()
	prod, err := s.rings.Acquire()
	if err != nil {
		s.mu.Lock()
		s.freeSlots = append(s.freeSlots, slot)
		s.mu.Unlock()
		return false
	}
	c.slot, c.prod = slot, prod
	s.tab[slot].Store(c)
	return true
}

// unregister frees c's table slot for reuse. Only called after the
// connection's in-flight count drained, so no executor can still route a
// completion to the recycled slot.
func (s *Server) unregister(c *conn) {
	s.tab[c.slot].Store(nil)
	c.prod.Release()
	c.prod = nil
	s.mu.Lock()
	s.freeSlots = append(s.freeSlots, c.slot)
	s.mu.Unlock()
}

func (c *conn) run() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.writeLoop()
	}()
	if c.proto == protoRESP {
		c.respReadLoop()
	} else {
		c.readLoop()
	}
	// Disconnect retires only this connection's pending ring entries:
	// wait for the shard executors to complete them (they count toward
	// the response ledger even when the client vanished mid-batch), then
	// tear the outbox down and recycle the slot.
	for c.inflight.Load() != 0 {
		time.Sleep(20 * time.Microsecond)
	}
	c.releaseSessions()
	c.ob.close()
	wg.Wait()
	c.nc.Close()
	if c.prod != nil {
		c.s.unregister(c)
	}
	c.s.mu.Lock()
	delete(c.s.conns, c)
	c.s.mu.Unlock()
	c.s.active.Add(-1)
}

func (c *conn) releaseSessions() {
	for i, sess := range c.sessions {
		if sess == nil {
			continue
		}
		if trace.Enabled() {
			c.s.shards.Shard(i).Manager().TraceRecorder().Ring(sess.TID()).Record(trace.EvUnlease, c.id)
		}
		sess.Release()
		c.sessions[i] = nil
	}
}

// session returns the connection's leased session on shard, acquiring one
// on first touch. Acquisition waits up to LeaseWait for churn from
// disconnecting peers to free a slot on that shard.
func (c *conn) session(shard int) (*kvmap.Session, error) {
	if sess := c.sessions[shard]; sess != nil {
		return sess, nil
	}
	m := c.s.shards.Shard(shard)
	deadline := time.Now().Add(c.s.cfg.LeaseWait)
	for {
		sess, err := m.Acquire()
		if err == nil {
			if trace.Enabled() {
				m.Manager().TraceRecorder().Ring(sess.TID()).Record(trace.EvLease, c.id)
			}
			c.sessions[shard] = sess
			return sess, nil
		}
		if errors.Is(err, lease.ErrClosed) || time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(20 * time.Microsecond)
	}
}

func (c *conn) readLoop() {
	if c.inline {
		c.readLoopInline()
	} else {
		c.readLoopBatched()
	}
}

func (c *conn) readLoopInline() {
	fr := newFrameReader(c.nc, maxRequestFrame)
	for {
		c.sp.Begin()
		f, err := fr.read()
		if err != nil {
			if errors.Is(err, ErrFrameTooLarge) {
				// The length prefix named an allocation we refuse to make;
				// answer with the typed error, then cut — the stream past a
				// hostile prefix cannot be resynchronized.
				c.s.badTotal.Add(1)
				c.reply(AppendFrame(nil, 0, StFrameTooBig))
			}
			return // EOF: client closed; anything else: cut the pipeline
		}
		c.sp.Mark(trace.StageRead)
		c.stripe.reqsRead.Add(1)
		nargs, known := argWords(f.Code)
		if !known || f.Code == OpGoAway || len(f.Body) != 8*nargs {
			c.s.badTotal.Add(1)
			c.reply(AppendFrame(nil, f.ID, StBadRequest))
			continue
		}
		c.stripe.reqsTotal[f.Code].Add(1)
		switch f.Code {
		case OpPing:
			c.reply(AppendFrame(nil, f.ID, StOK))
			continue
		case OpStats:
			c.reply(appendBytesFrame(nil, f.ID, StOK, c.s.statsBody()))
			continue
		}
		// Route by key hash in this reader goroutine: each shard sees an
		// independent stream, and responses stay in request order because
		// execution is synchronous here regardless of the target shard.
		shard := c.s.shards.ShardIndex(f.word(0))
		c.sp.Mark(trace.StageRoute)
		sess, err := c.session(shard)
		c.sp.Mark(trace.StageLease)
		if err != nil {
			status := uint8(StBusy)
			if errors.Is(err, lease.ErrClosed) {
				status = StClosed
			} else {
				c.s.busyTotal.Add(1)
			}
			c.reply(AppendFrame(nil, f.ID, status))
			c.sp.Mark(trace.StageQueue)
			c.finishSpan(nil, f.Code, status, shard, 0, 0)
			continue
		}
		c.s.stripes[shard].ops.Add(1)
		// Restart/drain deltas around the op attribute reclamation work
		// (scheme-forced restarts, drain passes) to the request that
		// absorbed it — the session is leased to this connection and
		// executes on this goroutine, so the counter block is quiescent
		// outside the execute call.
		ts := c.s.shards.Shard(shard).Manager().ObsStats().At(sess.TID())
		r0, d0 := ts.Load(obs.Restarts), ts.Load(obs.DrainPasses)
		resp, fatal := c.execute(sess, f)
		c.sp.Mark(trace.StageExec)
		status := resp[respStatusOffset]
		c.reply(resp)
		c.sp.Mark(trace.StageQueue)
		c.finishSpan(sess, f.Code, status, shard,
			ts.Load(obs.Restarts)-r0, ts.Load(obs.DrainPasses)-d0)
		if fatal {
			return
		}
	}
}

// respStatusOffset is the status byte's position in an encoded response
// frame: after the u32 length and u64 id.
const respStatusOffset = 12

// finishSpan closes one routed request's span: the per-(command, shard)
// latency histogram sees every completed data op, the slow log sees any
// request (including BUSY) whose server-side time crossed the
// threshold, and 1-in-SpanSample spans are emitted into the routed
// shard's trace ring — the same single-writer ring the session's
// reclamation events go to, because this goroutine holds the session.
func (c *conn) finishSpan(sess *kvmap.Session, op, status uint8, shard int, restarts, drains uint64) {
	serverNs := c.sp.ServerNs()
	if op >= OpGet && op <= OpCAS && status <= StCASMismatch {
		c.s.lat[op][shard].ObserveNs(uint64(serverNs))
	}
	if serverNs >= int64(c.s.cfg.SlowThreshold) {
		c.s.slowlog.record(time.Now().UnixNano(), c.id, op, status, shard,
			serverNs, c.sp.Durations(), restarts, drains)
	}
	if sess != nil && trace.Enabled() {
		c.spanSeq++
		if c.spanSeq%uint64(c.s.cfg.SpanSample) == 0 {
			ring := c.s.shards.Shard(shard).Manager().TraceRecorder().Ring(sess.TID())
			c.sp.Emit(ring, op, status, shard)
		}
	}
}

// reply completes one response in request order: allocate the next
// outbox sequence and fill it immediately. Reader-goroutine only; it
// blocks while the in-flight window is full, which is exactly the
// backpressure contract — the reader stops reading until the writer
// catches up.
func (c *conn) reply(b []byte) {
	c.complete(c.ob.alloc(), b)
}

// complete fills a previously allocated outbox sequence. Safe from any
// goroutine (shard executors complete ring entries here).
func (c *conn) complete(seq uint64, b []byte) {
	c.stripe.respsSent.Add(1)
	c.ob.complete(seq, b)
}

// execute runs one data request on the connection's session for the
// routed shard. A capacity-starved allocator panics with an error
// wrapping lease.ErrCapacityExhausted; that is answered CAPACITY and
// treated as fatal for the connection (the session's protocol state
// cannot be trusted past a mid-operation unwind).
func (c *conn) execute(sess *kvmap.Session, f frame) (resp []byte, fatal bool) {
	defer func() {
		if r := recover(); r != nil {
			err, ok := r.(error)
			if !ok || !errors.Is(err, lease.ErrCapacityExhausted) {
				panic(r)
			}
			c.s.capTotal.Add(1)
			c.s.logf("conn %d: capacity exhausted: %v", c.id, err)
			resp, fatal = AppendFrame(nil, f.ID, StCapacity), true
		}
	}()
	var key, a1, a2 uint64
	if n := len(f.Body) >> 3; n > 0 {
		key = f.word(0)
		if n > 1 {
			a1 = f.word(1)
		}
		if n > 2 {
			a2 = f.word(2)
		}
	}
	return runOp(sess, f.Code, f.ID, key, a1, a2), false
}

// writeLoop batches responses: it takes the contiguous completed run off
// the outbox, writes it into the buffered writer, and flushes only when
// nothing more is immediately releasable (or the buffer fills), so a
// pipelining client costs ~one syscall per batch, not per response. The
// GOAWAY push frame exists only in the binary protocol; RESP2 has no
// server-initiated signal, so RESP connections just observe the drain as
// their eventual close. A dead socket flips the loop into discard mode —
// it keeps consuming completions so neither the reader (window space)
// nor the executors' ledger ever depends on the peer.
func (c *conn) writeLoop() {
	bw := bufio.NewWriterSize(c.nc, 32<<10)
	dead := false
	var frames [][]byte
	for {
		var ga, closed bool
		frames, ga, closed = c.ob.take(frames[:0])
		if ga {
			if c.proto == protoBinary && !dead {
				bw.Write(AppendFrame(nil, 0, StGoAway))
				if bw.Flush() != nil {
					dead = true
				}
			}
			continue
		}
		if !dead {
			for _, b := range frames {
				if _, err := bw.Write(b); err != nil {
					dead = true
					break
				}
			}
		}
		if closed {
			if !dead {
				bw.Flush()
			}
			return
		}
		if !dead && bw.Buffered() > 0 && c.ob.empty() {
			if bw.Flush() != nil {
				dead = true
			}
		}
	}
}
