package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
)

// RESPValue is one decoded RESP2 reply.
type RESPValue struct {
	Type  byte   // '+', '-', ':', '$', '*'
	Str   []byte // simple string, error message or bulk body (copied)
	Int   int64  // integer replies
	Nil   bool   // $-1 / *-1
	Array []RESPValue
}

// IsError reports an -ERR/-BUSY/-OOM style reply.
func (v RESPValue) IsError() bool { return v.Type == '-' }

// RESPClient is a minimal pipelined RESP2 client for the in-repo smokes
// and load generator: Send queues commands, Flush pushes them, Recv reads
// one reply in order. Do round-trips a single command. Not safe for
// concurrent use; pipeline depth is the caller's Send/Recv discipline.
type RESPClient struct {
	nc net.Conn
	bw *bufio.Writer
	br *bufio.Reader
}

// DialRESP connects a RESP client.
func DialRESP(addr string) (*RESPClient, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewRESPClient(nc), nil
}

// NewRESPClient wraps an established connection.
func NewRESPClient(nc net.Conn) *RESPClient {
	return &RESPClient{
		nc: nc,
		bw: bufio.NewWriterSize(nc, 32<<10),
		br: bufio.NewReaderSize(nc, 32<<10),
	}
}

// Send queues one command as an array of bulk strings.
func (c *RESPClient) Send(args ...string) error {
	b := c.bw
	b.WriteByte('*')
	b.WriteString(strconv.Itoa(len(args)))
	b.WriteString("\r\n")
	for _, a := range args {
		b.WriteByte('$')
		b.WriteString(strconv.Itoa(len(a)))
		b.WriteString("\r\n")
		b.WriteString(a)
		b.WriteString("\r\n")
	}
	return nil
}

// Flush pushes queued commands to the socket.
func (c *RESPClient) Flush() error { return c.bw.Flush() }

// Recv reads the next reply (flushing queued commands first).
func (c *RESPClient) Recv() (RESPValue, error) {
	if err := c.bw.Flush(); err != nil {
		return RESPValue{}, err
	}
	return c.readValue()
}

// Do round-trips one command.
func (c *RESPClient) Do(args ...string) (RESPValue, error) {
	if err := c.Send(args...); err != nil {
		return RESPValue{}, err
	}
	return c.Recv()
}

// Close closes the connection.
func (c *RESPClient) Close() error { return c.nc.Close() }

func (c *RESPClient) readLine() ([]byte, error) {
	line, err := c.br.ReadString('\n')
	if err != nil {
		return nil, err
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, fmt.Errorf("resp client: line without CRLF: %q", line)
	}
	return []byte(line[:len(line)-2]), nil
}

func (c *RESPClient) readValue() (RESPValue, error) {
	t, err := c.br.ReadByte()
	if err != nil {
		return RESPValue{}, err
	}
	line, err := c.readLine()
	if err != nil {
		return RESPValue{}, err
	}
	v := RESPValue{Type: t}
	switch t {
	case '+', '-':
		v.Str = line
	case ':':
		v.Int, err = strconv.ParseInt(string(line), 10, 64)
		if err != nil {
			return RESPValue{}, fmt.Errorf("resp client: bad integer %q", line)
		}
	case '$':
		n, err := strconv.Atoi(string(line))
		if err != nil {
			return RESPValue{}, fmt.Errorf("resp client: bad bulk length %q", line)
		}
		if n < 0 {
			v.Nil = true
			return v, nil
		}
		body := make([]byte, n+2)
		if _, err := io.ReadFull(c.br, body); err != nil {
			return RESPValue{}, err
		}
		v.Str = body[:n]
	case '*':
		n, err := strconv.Atoi(string(line))
		if err != nil {
			return RESPValue{}, fmt.Errorf("resp client: bad array length %q", line)
		}
		if n < 0 {
			v.Nil = true
			return v, nil
		}
		for i := 0; i < n; i++ {
			el, err := c.readValue()
			if err != nil {
				return RESPValue{}, err
			}
			v.Array = append(v.Array, el)
		}
	default:
		return RESPValue{}, errors.New("resp client: unknown reply type " + strconv.QuoteRune(rune(t)))
	}
	return v, nil
}
