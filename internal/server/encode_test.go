package server

import (
	"testing"
)

// The wire encoders for both protocols are append-style: with a
// pre-sized destination they must not allocate, because the write loop
// reuses one response buffer per connection and a stray escape would put
// the GC into the per-request path.

func TestFrameAppendDoesNotAllocate(t *testing.T) {
	buf := make([]byte, 0, 256)
	var id uint64
	if avg := testing.AllocsPerRun(2000, func() {
		id++
		buf = AppendFrame(buf[:0], id, StOK, id*3, id*7)
	}); avg > 0.05 {
		t.Fatalf("AppendFrame allocates %.2f objects/op into a sized buffer", avg)
	}
}

func TestRESPEncodeDoesNotAllocate(t *testing.T) {
	buf := make([]byte, 0, 256)
	body := []byte("1234567")
	var n int64
	if avg := testing.AllocsPerRun(2000, func() {
		n++
		buf = AppendRESPSimple(buf[:0], "OK")
		buf = AppendRESPInt(buf, n)
		buf = AppendRESPBulk(buf, body)
		buf = AppendRESPNil(buf)
		buf = AppendRESPError(buf, "ERR wrong number of arguments")
	}); avg > 0.05 {
		t.Fatalf("RESP encoders allocate %.2f objects/op into a sized buffer", avg)
	}
}

func TestValuePackRoundTrip(t *testing.T) {
	cases := [][]byte{
		{}, {0}, {0xFF}, []byte("a"), []byte("abc"), []byte("1234567"),
		{0, 0, 0, 0, 0, 0, 0}, {0xFF, 0xFE, 0, 1, 2, 3, 4},
	}
	for _, v := range cases {
		w, ok := packValue(v)
		if !ok {
			t.Fatalf("packValue(%q) refused", v)
		}
		got := appendUnpacked(nil, w)
		if string(got) != string(v) {
			t.Fatalf("round trip %q -> %#x -> %q", v, w, got)
		}
	}
	if _, ok := packValue([]byte("8bytes!!")); ok {
		t.Fatal("packValue accepted 8 bytes")
	}
}

func BenchmarkFrameAppend(b *testing.B) {
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendFrame(buf[:0], uint64(i), StOK, uint64(i)*3)
	}
	sinkBytes = buf
}

func BenchmarkRESPEncode(b *testing.B) {
	buf := make([]byte, 0, 256)
	body := []byte("1234567")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendRESPBulk(buf[:0], body)
		buf = AppendRESPInt(buf, int64(i))
	}
	sinkBytes = buf
}

var sinkBytes []byte
