package server

// Status-code ↔ sentinel mapping. The wire protocols compress every
// failure into one status byte (binary) or error class (RESP);
// SentinelOf/StatusFor are the single table tying those codes back to
// the package oamem sentinel set, so a client library can surface typed
// errors with errors.Is and a test can pin the round-trip
// (TestStatusSentinelParity).

import (
	"errors"

	"repro/internal/lease"
	"repro/internal/oaerr"
)

// SentinelOf returns the typed sentinel a response status maps onto
// (nil for StOK). The value is the same error instance the library
// returns locally, so errors.Is classification is identical whether an
// operation ran in-process or across the wire.
func SentinelOf(status uint8) error {
	switch status {
	case StOK:
		return nil
	case StNotFound:
		return oaerr.ErrNotFound
	case StCASMismatch:
		return oaerr.ErrCASMismatch
	case StBusy:
		return lease.ErrNoFreeSessions
	case StClosed, StGoAway:
		return lease.ErrClosed
	case StCapacity:
		return lease.ErrCapacityExhausted
	case StFrameTooBig:
		return oaerr.ErrFrameTooLarge
	default:
		return oaerr.ErrBadRequest
	}
}

// StatusFor maps an error onto the response status a server answers for
// it: the inverse of SentinelOf up to the StClosed/StGoAway fold (both
// mean "this server is going away"; StatusFor picks StClosed). Unknown
// errors classify as StBadRequest, matching what the listeners answer
// for malformed input.
func StatusFor(err error) uint8 {
	switch {
	case err == nil:
		return StOK
	case errors.Is(err, oaerr.ErrNotFound):
		return StNotFound
	case errors.Is(err, oaerr.ErrCASMismatch):
		return StCASMismatch
	case errors.Is(err, lease.ErrNoFreeSessions):
		return StBusy
	case errors.Is(err, lease.ErrClosed):
		return StClosed
	case errors.Is(err, lease.ErrCapacityExhausted):
		return StCapacity
	case errors.Is(err, oaerr.ErrFrameTooLarge):
		return StFrameTooBig
	default:
		return StBadRequest
	}
}
