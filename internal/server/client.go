package server

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// ErrGoAway is returned by Client sends after the server announced a
// drain: stop issuing requests, Wait on the outstanding ones, Close.
var ErrGoAway = errors.New("server: connection draining (GOAWAY received)")

// Call is one in-flight pipelined request. Wait flushes the send buffer
// and blocks until the response (or a connection error) arrives.
type Call struct {
	c      *Client
	op     byte
	start  int64 // send timestamp for the optional latency histogram
	done   chan struct{}
	Status byte
	Val    uint64
	Body   []byte // STATS JSON (copied)
	Err    error
}

// Wait blocks for the response. It flushes the client's send buffer
// first, so a lone Wait never deadlocks on its own unsent request; flush
// errors surface through the read loop, which fails pending Calls.
func (ca *Call) Wait() error {
	ca.c.Flush()
	<-ca.done
	return ca.Err
}

// Client is a pipelined protocol client. Sends buffer locally and go out
// on Flush (or when the buffer fills); responses resolve Calls in send
// order (the server guarantees in-order responses per connection). A
// Client is safe for concurrent use; pipelined throughput comes from
// issuing many Calls before Waiting.
type Client struct {
	nc      net.Conn
	mu      sync.Mutex // serializes encode+enqueue so pending stays in wire order
	bw      *bufio.Writer
	nextID  uint64
	pending chan *Call
	goaway  atomic.Bool
	readErr atomic.Value // error
	done    chan struct{}

	// Latency, when set before the first send, records each Call's
	// send→response round trip (including local queueing and the
	// server's batched flush — the client-observed latency a user
	// program experiences). Load generators read the quantiles for
	// their reports.
	Latency *metrics.Histogram
}

// Dial connects a pipelined client. window bounds how many requests may
// be outstanding before sends block (0 = 256, matching the server's
// default in-flight window).
func Dial(addr string, window int) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc, window), nil
}

// NewClient wraps an established connection (useful for in-process tests
// over net.Pipe).
func NewClient(nc net.Conn, window int) *Client {
	if window <= 0 {
		window = 256
	}
	c := &Client{
		nc:      nc,
		bw:      bufio.NewWriterSize(nc, 32<<10),
		pending: make(chan *Call, window),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// GoAway reports whether the server has announced a drain.
func (c *Client) GoAway() bool { return c.goaway.Load() }

func (c *Client) readLoop() {
	defer close(c.done)
	fr := newFrameReader(c.nc, maxResponseFrame)
	for {
		f, err := fr.read()
		if err != nil {
			if err != io.EOF {
				c.readErr.Store(err)
			}
			// Fail whatever is still pending; senders hold no lock here.
			for {
				select {
				case ca := <-c.pending:
					ca.Err = errors.Join(errors.New("server: connection closed before response"), err)
					close(ca.done)
				default:
					return
				}
			}
		}
		if f.ID == 0 && f.Code == StGoAway {
			c.goaway.Store(true)
			continue
		}
		ca := <-c.pending
		ca.Status = f.Code
		if ca.op == OpStats {
			ca.Body = append([]byte(nil), f.Body...)
		} else if len(f.Body) >= 8 {
			ca.Val = f.word(0)
		}
		if c.Latency != nil {
			c.Latency.ObserveNs(uint64(trace.Now() - ca.start))
		}
		close(ca.done)
	}
}

// send encodes one request and registers its Call, preserving wire order.
func (c *Client) send(op byte, args ...uint64) (*Call, error) {
	if c.goaway.Load() {
		return nil, ErrGoAway
	}
	if err, _ := c.readErr.Load().(error); err != nil {
		return nil, err
	}
	ca := &Call{c: c, op: op, start: trace.Now(), done: make(chan struct{})}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	b := AppendFrame(nil, c.nextID, op, args...)
	if _, err := c.bw.Write(b); err != nil {
		return nil, err
	}
	// Enqueue under the lock: pending order must match write order. A
	// full window blocks here — the client-side backpressure mirror of
	// the server's bounded in-flight window.
	c.pending <- ca
	return ca, nil
}

// Flush pushes buffered requests to the socket.
func (c *Client) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bw.Flush()
}

// Get pipelines a GET.
func (c *Client) Get(key uint64) (*Call, error) { return c.send(OpGet, key) }

// Put pipelines a PUT.
func (c *Client) Put(key, val uint64) (*Call, error) { return c.send(OpPut, key, val) }

// Del pipelines a DEL.
func (c *Client) Del(key uint64) (*Call, error) { return c.send(OpDel, key) }

// CAS pipelines a CAS.
func (c *Client) CAS(key, old, new uint64) (*Call, error) { return c.send(OpCAS, key, old, new) }

// Ping round-trips a PING synchronously.
func (c *Client) Ping() error {
	ca, err := c.send(OpPing)
	if err != nil {
		return err
	}
	return ca.Wait()
}

// Stats round-trips a STATS request and returns the JSON body.
func (c *Client) Stats() ([]byte, error) {
	ca, err := c.send(OpStats)
	if err != nil {
		return nil, err
	}
	if err := ca.Wait(); err != nil {
		return nil, err
	}
	return ca.Body, nil
}

// Close flushes and closes the connection, then waits for the read loop
// (which fails any still-pending Calls) to finish.
func (c *Client) Close() error {
	c.mu.Lock()
	c.bw.Flush()
	c.mu.Unlock()
	err := c.nc.Close()
	<-c.done
	return err
}
