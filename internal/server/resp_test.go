package server

import (
	"bytes"
	"net"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/kvmap"
)

// newRESPTestServer serves the RESP listener over a sharded map.
func newRESPTestServer(t *testing.T, threads, shards int, cfg Config) (*Server, string) {
	t.Helper()
	cfg.Shards = kvmap.NewSharded(core.Config{MaxThreads: threads, Capacity: 1 << 16}, 1<<14, shards)
	s := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.ServeRESP(ln) }()
	t.Cleanup(func() {
		s.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("ServeRESP: %v", err)
		}
	})
	return s, ln.Addr().String()
}

func TestRESPRoundTrip(t *testing.T) {
	_, addr := newRESPTestServer(t, 4, 2, Config{})
	c, err := DialRESP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if v, err := c.Do("PING"); err != nil || string(v.Str) != "PONG" {
		t.Fatalf("PING = %q (%v), want PONG", v.Str, err)
	}
	if v, err := c.Do("ECHO", "hello"); err != nil || string(v.Str) != "hello" {
		t.Fatalf("ECHO = %q (%v)", v.Str, err)
	}
	if v, err := c.Do("SET", "foo", "bar"); err != nil || string(v.Str) != "OK" {
		t.Fatalf("SET = %q (%v), want OK", v.Str, err)
	}
	if v, err := c.Do("GET", "foo"); err != nil || string(v.Str) != "bar" {
		t.Fatalf("GET = %q (%v), want bar", v.Str, err)
	}
	if v, err := c.Do("EXISTS", "foo", "nope"); err != nil || v.Int != 1 {
		t.Fatalf("EXISTS = %d (%v), want 1", v.Int, err)
	}
	if v, err := c.Do("DEL", "foo", "nope"); err != nil || v.Int != 1 {
		t.Fatalf("DEL = %d (%v), want 1", v.Int, err)
	}
	if v, err := c.Do("GET", "foo"); err != nil || !v.Nil {
		t.Fatalf("GET after DEL = %+v (%v), want nil", v, err)
	}
	// Empty value round-trips too (len 0 packs to word 0... distinct from
	// absent).
	if v, err := c.Do("SET", "empty", ""); err != nil || string(v.Str) != "OK" {
		t.Fatalf("SET empty = %q (%v)", v.Str, err)
	}
	if v, err := c.Do("GET", "empty"); err != nil || v.Nil || len(v.Str) != 0 {
		t.Fatalf("GET empty = %+v (%v), want present empty bulk", v, err)
	}
	// Max-length and binary-safe values.
	if v, err := c.Do("SET", "bin", "a\x00b\xffc12"); err != nil || string(v.Str) != "OK" {
		t.Fatalf("SET bin = %q (%v)", v.Str, err)
	}
	if v, err := c.Do("GET", "bin"); err != nil || string(v.Str) != "a\x00b\xffc12" {
		t.Fatalf("GET bin = %q (%v)", v.Str, err)
	}
}

func TestRESPCASExtension(t *testing.T) {
	_, addr := newRESPTestServer(t, 2, 1, Config{})
	c, err := DialRESP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if v, _ := c.Do("CAS", "k", "a", "b"); !v.Nil {
		t.Fatalf("CAS on absent key = %+v, want nil", v)
	}
	c.Do("SET", "k", "a")
	if v, _ := c.Do("CAS", "k", "a", "b"); v.Int != 1 {
		t.Fatalf("CAS a->b = %+v, want :1", v)
	}
	if v, _ := c.Do("CAS", "k", "a", "c"); v.Int != 0 {
		t.Fatalf("stale CAS = %+v, want :0", v)
	}
	if v, _ := c.Do("GET", "k"); string(v.Str) != "b" {
		t.Fatalf("GET after CAS = %q, want b", v.Str)
	}
}

func TestRESPErrors(t *testing.T) {
	_, addr := newRESPTestServer(t, 2, 1, Config{})
	c, err := DialRESP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if v, _ := c.Do("SET", "k", "eight-bytes!"); !v.IsError() || !strings.Contains(string(v.Str), "7-byte") {
		t.Fatalf("over-long SET = %+v, want 7-byte limit error", v)
	}
	if v, _ := c.Do("NOSUCH", "x"); !v.IsError() || !strings.Contains(string(v.Str), "unknown command") {
		t.Fatalf("unknown command = %+v", v)
	}
	if v, _ := c.Do("GET"); !v.IsError() || !strings.Contains(string(v.Str), "wrong number") {
		t.Fatalf("GET arity error = %+v", v)
	}
	if v, _ := c.Do("INFO"); v.Type != '$' || !bytes.Contains(v.Str, []byte("oa_server:1")) {
		t.Fatalf("INFO = %+v, want bulk containing oa_server:1", v)
	}
	// Tool-compat probes.
	if v, _ := c.Do("COMMAND", "DOCS"); v.Type != '*' || len(v.Array) != 0 {
		t.Fatalf("COMMAND DOCS = %+v, want empty array", v)
	}
	if v, _ := c.Do("SELECT", "0"); string(v.Str) != "OK" {
		t.Fatalf("SELECT = %+v", v)
	}
}

// TestRESPPipelining issues a deep pipeline before reading any reply and
// checks responses come back in command order.
func TestRESPPipelining(t *testing.T) {
	_, addr := newRESPTestServer(t, 4, 2, Config{Window: 64})
	c, err := DialRESP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 500
	for i := 0; i < n; i++ {
		key := "key:" + strconv.Itoa(i)
		c.Send("SET", key, strconv.Itoa(i))
		c.Send("GET", key)
	}
	c.Flush()
	for i := 0; i < n; i++ {
		set, err := c.Recv()
		if err != nil || string(set.Str) != "OK" {
			t.Fatalf("SET %d = %+v (%v)", i, set, err)
		}
		get, err := c.Recv()
		if err != nil || string(get.Str) != strconv.Itoa(i) {
			t.Fatalf("GET %d = %q (%v), want %d — pipeline out of order", i, get.Str, err, i)
		}
	}
}

// TestRESPInlineCommand drives the inline (space-separated) form a human
// types over nc.
func TestRESPInlineCommand(t *testing.T) {
	_, addr := newRESPTestServer(t, 2, 1, Config{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte("PING\r\nSET ikey ival\r\nGET ikey\r\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	got := ""
	for !strings.Contains(got, "ival") {
		n, err := nc.Read(buf)
		if err != nil {
			t.Fatalf("read: %v (got %q)", err, got)
		}
		got += string(buf[:n])
	}
	want := "+PONG\r\n+OK\r\n$4\r\nival\r\n"
	if got != want {
		t.Fatalf("inline session = %q, want %q", got, want)
	}
}

// TestRESPMalformed checks protocol garbage yields a typed -ERR and a cut
// connection, and a hostile bulk length is refused without the allocation
// it names.
func TestRESPMalformed(t *testing.T) {
	for _, tc := range []struct{ name, payload string }{
		{"bad array header", "*notanumber\r\n"},
		{"hostile bulk length", "*1\r\n$2147483000\r\n"},
		{"over-limit args", "*9999\r\n"},
		{"wrong element type", "*1\r\n:5\r\n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, addr := newRESPTestServer(t, 2, 1, Config{})
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer nc.Close()
			if _, err := nc.Write([]byte(tc.payload)); err != nil {
				t.Fatal(err)
			}
			var got []byte
			buf := make([]byte, 512)
			for {
				n, err := nc.Read(buf)
				got = append(got, buf[:n]...)
				if err != nil {
					break // server must cut the connection after the error
				}
			}
			if !bytes.HasPrefix(got, []byte("-ERR protocol error")) {
				t.Fatalf("reply = %q, want -ERR protocol error prefix", got)
			}
		})
	}
}

// TestRESPBusyOnExhaustion pins the single session slot of the only shard
// from one connection and checks another connection's command is answered
// -BUSY (typed admission control, not a hang).
func TestRESPBusyOnExhaustion(t *testing.T) {
	_, addr := newRESPTestServer(t, 1, 1, Config{Inline: true, LeaseWait: 1e6 /* 1ms */})
	holder, err := DialRESP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	if v, _ := holder.Do("SET", "k", "v"); string(v.Str) != "OK" {
		t.Fatalf("holder SET = %+v", v)
	}
	second, err := DialRESP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	v, err := second.Do("GET", "k")
	if err != nil || !v.IsError() || !bytes.HasPrefix(v.Str, []byte("BUSY")) {
		t.Fatalf("starved GET = %+v (%v), want -BUSY", v, err)
	}
	if v, err := second.Do("PING"); err != nil || string(v.Str) != "PONG" {
		t.Fatalf("PING on starved conn = %+v (%v)", v, err)
	}
}
