package server

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kvmap"
	"repro/internal/trace"
)

// newBatchedServer is newShardedTestServer with the config passed
// through verbatim (the others default Inline for legacy lease-economy
// assertions; here batched mode is the subject under test).
func newBatchedServer(t *testing.T, threads, shards int, cfg Config) (*Server, string) {
	t.Helper()
	cfg.Shards = kvmap.NewSharded(core.Config{MaxThreads: threads, Capacity: 1 << 16}, 1<<14, shards)
	s := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	t.Cleanup(func() {
		s.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return s, ln.Addr().String()
}

// TestBatchedLeaseEconomy is the tentpole's session-economy claim: under
// batched execution the leased population is the executors' — one per
// shard — no matter how many connections are hitting how many shards.
// (Inline would lease conns×shards here.)
func TestBatchedLeaseEconomy(t *testing.T) {
	s, addr := newBatchedServer(t, 8, 4, Config{})

	const conns = 6
	var wg sync.WaitGroup
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr, 32)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			// Stride the keyspace so every connection touches every shard.
			for i := 0; i < 256; i++ {
				ca, err := c.Put(uint64(i), uint64(w))
				if err != nil {
					t.Error(err)
					return
				}
				if i%32 == 31 {
					c.Flush()
				}
				if i == 255 {
					if err := ca.Wait(); err != nil {
						t.Error(err)
					}
				}
			}
			// Leases are checked while this connection is still open.
			if got := s.shards.SessionsLeased(); got > s.shards.NumShards() {
				t.Errorf("sessions leased = %d during load, want <= %d (one per shard)",
					got, s.shards.NumShards())
			}
		}(w)
	}
	wg.Wait()

	snap := s.snapshot()
	if snap.ExecMode != "batched" || snap.RingCap == 0 {
		t.Fatalf("exec mode/ring = %q/%d, want batched with a sized ring", snap.ExecMode, snap.RingCap)
	}
	if snap.SessionsInUse != s.shards.NumShards() {
		t.Fatalf("sessions leased = %d at steady state, want exactly %d (shards, not conns x shards)",
			snap.SessionsInUse, s.shards.NumShards())
	}
	if snap.SessionGrants != uint64(s.shards.NumShards()) {
		t.Fatalf("session grants = %d, want %d: connections must not lease at all",
			snap.SessionGrants, s.shards.NumShards())
	}
	if snap.BatchedOps != uint64(conns*256) {
		t.Fatalf("batched ops = %d, want %d (every data op through the rings)",
			snap.BatchedOps, conns*256)
	}
	if snap.Batches == 0 || snap.Batches > snap.BatchedOps {
		t.Fatalf("batches = %d for %d ops", snap.Batches, snap.BatchedOps)
	}
}

// TestSlowlogQueueStage stalls shard 0's executor and checks the slow
// log attributes the wait to the queue stage — the real ring wait, not
// exec (the regression this PR fixes: inline mode folded the response
// hand-off into queue and had no ring to wait on; batched mode must
// report enqueue→dequeue time under queue, not inflate exec).
func TestSlowlogQueueStage(t *testing.T) {
	stall := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(stall) }) }
	defer release()
	s, addr := newBatchedServer(t, 4, 1, Config{
		SlowThreshold: time.Millisecond,
		ExecGate:      func(int) { <-stall },
	})
	c, err := Dial(addr, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ca, _ := c.Put(1, 1)
	c.Flush()
	time.Sleep(10 * time.Millisecond) // the request sits in the ring
	release()
	if err := ca.Wait(); err != nil {
		t.Fatal(err)
	}

	entries := s.SlowLog()
	if len(entries) == 0 {
		t.Fatal("a 10ms ring wait did not reach the slow log")
	}
	e := entries[0]
	queue := e.Stages["queue"]
	exec := e.Stages["exec"]
	if queue < int64(5*time.Millisecond) {
		t.Fatalf("queue stage = %dns, want >= 5ms of ring wait (stages %v)", queue, e.Stages)
	}
	if exec >= queue {
		t.Fatalf("exec %dns >= queue %dns: ring wait folded into exec", exec, queue)
	}
	if e.ServerNs < queue {
		t.Fatalf("server_ns %d below queue stage %d", e.ServerNs, queue)
	}
}

// TestVanishMidBatch is the disconnect-economy satellite: a client that
// vanishes with requests still queued on shard rings must only retire
// its own pending entries — the executor completes them into the dead
// connection's outbox (discarded by the writer), the ledger stays
// balanced, and the conn slot recycles for the next client.
func TestVanishMidBatch(t *testing.T) {
	stall := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(stall) }) }
	defer release()
	s, addr := newBatchedServer(t, 4, 1, Config{
		ExecGate: func(int) { <-stall },
	})

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	const k = 64
	var buf []byte
	for i := uint64(0); i < k; i++ {
		buf = AppendFrame(buf, i+1, OpPut, i, i)
	}
	if _, err := nc.Write(buf); err != nil {
		t.Fatal(err)
	}
	// Wait until the reader has enqueued everything, then vanish.
	deadline := time.Now().Add(2 * time.Second)
	for s.sumStripes(func(st *shardStripe) uint64 { return st.reqsRead.Load() }) < k {
		if time.Now().After(deadline) {
			t.Fatalf("server read %d/%d requests", s.sumStripes(func(st *shardStripe) uint64 { return st.reqsRead.Load() }), k)
		}
		time.Sleep(time.Millisecond)
	}
	nc.Close()
	release()

	// The connection can only be reaped after the executor completed its
	// pending entries (inflight drains to zero).
	deadline = time.Now().Add(2 * time.Second)
	for s.active.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("vanished connection not reaped")
		}
		time.Sleep(time.Millisecond)
	}
	snap := s.snapshot()
	if snap.RequestsRead != snap.ResponsesSent {
		t.Fatalf("ledger unbalanced after vanish: read=%d sent=%d", snap.RequestsRead, snap.ResponsesSent)
	}
	if snap.SessionsInUse != 1 {
		t.Fatalf("sessions leased = %d after vanish, want 1 (the executor's)", snap.SessionsInUse)
	}
	for i := range snap.RingDepth {
		if snap.RingDepth[i] != 0 {
			t.Fatalf("ring %d still holds %d entries", i, snap.RingDepth[i])
		}
	}

	// The recycled slot serves the next client.
	c, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, _ := c.Get(3)
	if err := got.Wait(); err != nil || got.Status != StOK || got.Val != 3 {
		t.Fatalf("Get after vanish = %d/%d (%v), want OK/3 (the vanished client's write landed)",
			got.Status, got.Val, err)
	}
}

// TestRingFullBusy pins the batched backpressure contract: a full shard
// ring makes the producer wait RingWait, then answer BUSY — and the
// refusals are visible in the ring_full counter.
func TestRingFullBusy(t *testing.T) {
	stall := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(stall) }) }
	defer release()
	s, addr := newBatchedServer(t, 4, 1, Config{
		RingSize: 8,
		RingWait: time.Millisecond,
		ExecGate: func(int) { <-stall },
	})
	c, err := Dial(addr, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 16
	calls := make([]*Call, 0, n)
	for i := uint64(0); i < n; i++ {
		ca, err := c.Put(i, i)
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, ca)
	}
	c.Flush()
	// 8 fill the ring; the rest must come back BUSY while the executor
	// is stalled. Wait for those refusals before releasing.
	deadline := time.Now().Add(2 * time.Second)
	for s.ringFull.Load() < n-8 {
		if time.Now().After(deadline) {
			t.Fatalf("ring_full = %d, want %d", s.ringFull.Load(), n-8)
		}
		time.Sleep(time.Millisecond)
	}
	release()
	var busy, served int
	for i, ca := range calls {
		if err := ca.Wait(); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		switch ca.Status {
		case StBusy:
			busy++
		case StOK, StNotFound:
			served++
		default:
			t.Fatalf("call %d: status %d", i, ca.Status)
		}
	}
	if busy != n-8 || served != 8 {
		t.Fatalf("busy=%d served=%d, want %d/%d", busy, served, n-8, 8)
	}
	if s.busyTotal.Load() < uint64(busy) {
		t.Fatalf("busy_total %d below observed %d", s.busyTotal.Load(), busy)
	}
}

// TestBatchedTraceEvents drives load with tracing on and SpanSample=1
// and checks the new ring/batch event kinds appear on the ring group's
// recorder, alongside per-request spans on the shard ring.
func TestBatchedTraceEvents(t *testing.T) {
	trace.SetEnabled(true)
	defer trace.SetEnabled(false)
	s, addr := newBatchedServer(t, 4, 1, Config{SpanSample: 1})
	c, err := Dial(addr, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := uint64(0); i < 16; i++ {
		ca, _ := c.Put(i, i)
		if err := ca.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	var enq, deq, batch int
	for _, ev := range s.rings.Manager().TraceRecorder().Events() {
		switch ev.Kind {
		case trace.EvRingEnq:
			enq++
		case trace.EvRingDeq:
			deq++
		case trace.EvBatch:
			batch++
			if trace.RingShard(ev.Arg) != 0 || trace.RingValue(ev.Arg) == 0 {
				t.Fatalf("exec_batch payload shard=%d size=%d", trace.RingShard(ev.Arg), trace.RingValue(ev.Arg))
			}
		}
	}
	if enq != 16 || deq != 16 {
		t.Fatalf("ring events enq=%d deq=%d, want 16/16 at SpanSample=1", enq, deq)
	}
	if batch == 0 {
		t.Fatal("no exec_batch events recorded")
	}
	var spans int
	for _, ev := range s.shards.Shard(0).Manager().TraceRecorder().Events() {
		if ev.Kind == trace.EvReqSpan {
			spans++
		}
	}
	if spans != 16 {
		t.Fatalf("executor emitted %d req_span events, want 16", spans)
	}
}
