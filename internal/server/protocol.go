// Package server is a pipelined TCP front end for the OA key-value map:
// the piece that turns the library into a service and exercises session
// leasing the way a real deployment does (dynamic connection populations
// multiplexing onto the fixed SMR thread registry).
//
// # Wire protocol
//
// Length-prefixed binary frames, little-endian, symmetric in both
// directions:
//
//	frame   := len:u32 | id:u64 | code:u8 | body
//	len     counts the bytes after the length field (id+code+body)
//	id      correlates a response to its request (echoed verbatim);
//	        server-initiated frames (GOAWAY) carry id 0
//	code    request opcode or response status
//	body    op-specific u64 words (see below) or, for STATS, JSON
//
// Requests:
//
//	GET   key            → OK val | NOT_FOUND
//	PUT   key val        → OK prev (NOT_FOUND when no previous value)
//	DEL   key            → OK val | NOT_FOUND
//	CAS   key old new    → OK | CAS_MISMATCH cur | NOT_FOUND
//	PING                 → OK
//	STATS                → OK json
//
// Responses may also carry BUSY (no free session after LeaseWait — back
// off and retry, ideally on an existing connection), CLOSED (server
// draining), CAPACITY (node budget exhausted) or BAD_REQUEST. Clients
// pipeline freely: the server executes a connection's requests in order
// and writes responses in the same order.
//
// # Graceful drain
//
// On Shutdown the server stops accepting, pushes a GOAWAY frame to every
// connection, and keeps serving. A conforming client stops issuing new
// requests when it sees GOAWAY, awaits its outstanding responses, and
// closes; the server releases the connection's session lease and exits
// the connection only when the client closes (or DrainTimeout forces it).
// The in-order execute-then-respond pipeline means a cooperative drain
// drops zero in-flight requests.
package server

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/oaerr"
)

// Request opcodes.
const (
	OpGet    = 1
	OpPut    = 2
	OpDel    = 3
	OpCAS    = 4
	OpPing   = 5
	OpStats  = 6
	OpGoAway = 7 // server→client only
)

// Response status codes.
const (
	StOK          = 0
	StNotFound    = 1
	StCASMismatch = 2
	StBusy        = 3
	StClosed      = 4
	StCapacity    = 5
	StBadRequest  = 6
	StGoAway      = 7
	StFrameTooBig = 8
)

// argWords returns how many u64 argument words each opcode carries.
func argWords(op byte) (int, bool) {
	switch op {
	case OpGet, OpDel:
		return 1, true
	case OpPut:
		return 2, true
	case OpCAS:
		return 3, true
	case OpPing, OpStats:
		return 0, true
	default:
		return 0, false
	}
}

// frameOverhead is id+code. maxResponseFrame bounds what a client will
// buffer for one response (it must fit the STATS JSON body, which is well
// under a page); maxRequestFrame bounds what the server will buffer for
// one request — the largest legitimate request is CAS at 9+24 bytes, so
// anything past a small page is a corrupt or hostile length prefix, and
// the server must reply with a typed error rather than trust the prefix
// and attempt the allocation it names.
const (
	frameOverhead    = 9
	maxResponseFrame = 1 << 16
	maxRequestFrame  = 1 << 12
)

// ErrFrameTooLarge reports a frame whose length prefix exceeds the
// reader's limit. The stream past the prefix cannot be trusted, so the
// connection is cut after the typed FRAME_TOO_BIG response. It is the
// shared oaerr sentinel, so errors.Is matches across the package oamem
// surface, this package, and client libraries.
var ErrFrameTooLarge = oaerr.ErrFrameTooLarge

// AppendFrame appends one wire frame to b. Exported so the zero-alloc
// proofs and encode benchmarks exercise the exact production path.
func AppendFrame(b []byte, id uint64, code byte, body ...uint64) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(frameOverhead+8*len(body)))
	b = binary.LittleEndian.AppendUint64(b, id)
	b = append(b, code)
	for _, w := range body {
		b = binary.LittleEndian.AppendUint64(b, w)
	}
	return b
}

// appendBytesFrame appends a frame with a raw byte body (STATS JSON).
func appendBytesFrame(b []byte, id uint64, code byte, body []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(frameOverhead+len(body)))
	b = binary.LittleEndian.AppendUint64(b, id)
	b = append(b, code)
	return append(b, body...)
}

// frame is a decoded wire frame; Body aliases the read buffer and is only
// valid until the next readFrame on the same reader.
type frame struct {
	ID   uint64
	Code byte
	Body []byte
}

// word returns the i-th u64 of the body.
func (f *frame) word(i int) uint64 {
	return binary.LittleEndian.Uint64(f.Body[8*i:])
}

// frameReader decodes frames from a stream, reusing one buffer. max
// bounds the length prefix it will honor: a prefix past it fails with an
// error wrapping ErrFrameTooLarge before any body allocation happens.
type frameReader struct {
	r   io.Reader
	buf []byte
	max uint32
	hdr [4]byte
}

func newFrameReader(r io.Reader, max uint32) *frameReader {
	return &frameReader{r: r, buf: make([]byte, 0, 256), max: max}
}

// read decodes the next frame. io.EOF (clean close between frames) passes
// through untouched so callers can distinguish it from a truncated frame.
func (fr *frameReader) read() (frame, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return frame{}, err
	}
	n := binary.LittleEndian.Uint32(fr.hdr[:])
	if n > fr.max {
		return frame{}, fmt.Errorf("server: frame length %d over the %d-byte limit: %w",
			n, fr.max, ErrFrameTooLarge)
	}
	if n < frameOverhead {
		return frame{}, fmt.Errorf("server: bad frame length %d", n)
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	fr.buf = fr.buf[:n]
	if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return frame{}, err
	}
	return frame{
		ID:   binary.LittleEndian.Uint64(fr.buf),
		Code: fr.buf[8],
		Body: fr.buf[9:],
	}, nil
}
