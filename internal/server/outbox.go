// Per-connection completion outbox. With per-shard executors completing
// requests concurrently with the reader (PING/STATS, errors) the old
// response channel is not enough: the wire contract says responses leave
// in request order, but completions arrive in execution order. The
// outbox is a sequence-indexed reorder buffer: the reader assigns every
// request a dense sequence number at decode time, any goroutine
// completes its slot later, and the writer releases only the contiguous
// prefix — so ordering costs one mutex hop instead of a dedicated
// reorder goroutine.
//
// The buffer doubles as the in-flight window: alloc blocks the reader
// while window responses are unwritten (the old channel-capacity
// backpressure, now explicit), which also guarantees complete never
// blocks — every live sequence has a reserved slot — so executors can
// never be stalled by one slow connection.
package server

import "sync"

type outbox struct {
	mu     sync.Mutex
	filled sync.Cond // writer waits: head-of-line completion, goaway, close
	space  sync.Cond // reader waits: window space
	buf    [][]byte  // frames indexed by seq&mask; nil = not yet completed
	mask   uint64
	limit  uint64 // window: max live sequences (seq - next)
	seq    uint64 // next sequence the reader assigns
	next   uint64 // next sequence the writer releases
	goaway bool   // pending GOAWAY push (binary protocol)
	closed bool
}

func (ob *outbox) init(window int) {
	n := 1
	for n < window {
		n <<= 1
	}
	ob.buf = make([][]byte, n)
	ob.mask = uint64(n - 1)
	ob.limit = uint64(window)
	ob.filled.L = &ob.mu
	ob.space.L = &ob.mu
}

// alloc assigns the next response sequence, blocking while the window is
// full. Only the connection's reader goroutine calls it, so sequences
// are dense and in request order.
func (ob *outbox) alloc() uint64 {
	ob.mu.Lock()
	for ob.seq-ob.next >= ob.limit && !ob.closed {
		ob.space.Wait()
	}
	s := ob.seq
	ob.seq++
	ob.mu.Unlock()
	return s
}

// complete fills sequence seq's slot with its encoded response. Never
// blocks: alloc reserved the slot. Safe from any goroutine.
func (ob *outbox) complete(seq uint64, frame []byte) {
	ob.mu.Lock()
	ob.buf[seq&ob.mask] = frame
	if seq == ob.next {
		ob.filled.Signal()
	}
	ob.mu.Unlock()
}

// take blocks until something is releasable and returns it: a pending
// GOAWAY push (alone, so the writer can flush it promptly), else the
// contiguous run of completed responses, else closed — reported only
// once nothing else is pending, so no completion is ever lost.
func (ob *outbox) take(dst [][]byte) (frames [][]byte, goaway, closed bool) {
	ob.mu.Lock()
	defer ob.mu.Unlock()
	for {
		if ob.goaway {
			ob.goaway = false
			return dst, true, false
		}
		if ob.buf[ob.next&ob.mask] != nil {
			for ob.buf[ob.next&ob.mask] != nil {
				dst = append(dst, ob.buf[ob.next&ob.mask])
				ob.buf[ob.next&ob.mask] = nil
				ob.next++
			}
			ob.space.Signal()
			return dst, false, false
		}
		if ob.closed {
			return dst, false, true
		}
		ob.filled.Wait()
	}
}

// empty reports whether the writer has nothing releasable — the
// flush-on-empty trigger.
func (ob *outbox) empty() bool {
	ob.mu.Lock()
	e := ob.buf[ob.next&ob.mask] == nil && !ob.goaway
	ob.mu.Unlock()
	return e
}

// pushGoAway schedules an out-of-band GOAWAY push.
func (ob *outbox) pushGoAway() {
	ob.mu.Lock()
	ob.goaway = true
	ob.filled.Signal()
	ob.mu.Unlock()
}

// close ends the stream: take drains what remains, then reports closed.
func (ob *outbox) close() {
	ob.mu.Lock()
	ob.closed = true
	ob.filled.Signal()
	ob.space.Signal()
	ob.mu.Unlock()
}
