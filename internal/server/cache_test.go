package server

import (
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/kvmap"
	"repro/internal/lease"
	"repro/internal/oaerr"
	"repro/internal/ttlcache"
)

// TestStatusSentinelParity pins the status-code ↔ sentinel table:
// every status round-trips through SentinelOf → StatusFor (up to the
// documented StGoAway → StClosed fold), and the package's own error
// values classify onto the right codes.
func TestStatusSentinelParity(t *testing.T) {
	for st := uint8(StOK); st <= StFrameTooBig; st++ {
		want := st
		if st == StGoAway {
			want = StClosed // both mean "server going away"
		}
		if got := StatusFor(SentinelOf(st)); got != want {
			t.Errorf("status %d: StatusFor(SentinelOf) = %d, want %d", st, got, want)
		}
	}
	if SentinelOf(StOK) != nil {
		t.Error("SentinelOf(StOK) != nil")
	}
	// The listener errors fold into the shared sentinel set.
	if !errors.Is(ErrRESPProtocol, oaerr.ErrBadRequest) {
		t.Error("ErrRESPProtocol does not wrap oaerr.ErrBadRequest")
	}
	if StatusFor(ErrRESPProtocol) != StBadRequest {
		t.Error("ErrRESPProtocol does not classify as StBadRequest")
	}
	if StatusFor(ErrFrameTooLarge) != StFrameTooBig {
		t.Error("ErrFrameTooLarge does not classify as StFrameTooBig")
	}
	if StatusFor(lease.ErrCapacityExhausted) != StCapacity {
		t.Error("ErrCapacityExhausted does not classify as StCapacity")
	}
	// Unknown statuses and unknown errors both land on BAD_REQUEST.
	if StatusFor(SentinelOf(200)) != StBadRequest {
		t.Error("unknown status does not round-trip to StBadRequest")
	}
}

// newRESPCacheServer serves the RESP listener with the TTL/LRU cache
// layer over a sharded map, on a frozen test clock advanced via the
// returned atomic (milliseconds).
func newRESPCacheServer(t *testing.T, capacity, maxLive int) (*ttlcache.Sharded, *atomic.Int64, string) {
	t.Helper()
	sh := kvmap.NewSharded(core.Config{MaxThreads: 4, Capacity: capacity}, capacity/2, 2)
	clock := new(atomic.Int64)
	clock.Store(1)
	cache := ttlcache.OverSharded(sh, ttlcache.Options{
		MaxLive: maxLive,
		NowMs:   clock.Load, // no sweeper: expiry must be fully lazy
	})
	s := New(Config{Cache: cache})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.ServeRESP(ln) }()
	t.Cleanup(func() {
		s.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("ServeRESP: %v", err)
		}
		cache.Close()
	})
	return cache, clock, ln.Addr().String()
}

// TestRESPCacheTTL drives SETEX/EXPIRE/TTL and lazy expiry end to end
// over the wire, with the clock frozen so every deadline is exact.
func TestRESPCacheTTL(t *testing.T) {
	cache, clock, addr := newRESPCacheServer(t, 1<<14, 0)
	c, err := DialRESP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if v, err := c.Do("SETEX", "k", "5", "val"); err != nil || string(v.Str) != "OK" {
		t.Fatalf("SETEX = %+v (%v)", v, err)
	}
	if v, _ := c.Do("GET", "k"); string(v.Str) != "val" {
		t.Fatalf("GET = %+v, want val", v)
	}
	if v, _ := c.Do("TTL", "k"); v.Int != 5 {
		t.Fatalf("TTL = %d, want 5", v.Int)
	}
	// A plain SET has no default TTL here: TTL answers -1.
	if v, _ := c.Do("SET", "plain", "x"); string(v.Str) != "OK" {
		t.Fatalf("SET = %+v", v)
	}
	if v, _ := c.Do("TTL", "plain"); v.Int != -1 {
		t.Fatalf("TTL plain = %d, want -1", v.Int)
	}
	// EXPIRE arms a deadline on a live key; :0 for a missing one.
	if v, _ := c.Do("EXPIRE", "plain", "3"); v.Int != 1 {
		t.Fatalf("EXPIRE plain = %d, want 1", v.Int)
	}
	if v, _ := c.Do("EXPIRE", "missing", "3"); v.Int != 0 {
		t.Fatalf("EXPIRE missing = %d, want 0", v.Int)
	}
	if v, _ := c.Do("TTL", "plain"); v.Int != 3 {
		t.Fatalf("TTL plain after EXPIRE = %d, want 3", v.Int)
	}

	// Advance past plain's deadline but not k's: expiry is per key and
	// linearizes at the deadline instant, no sweeper involved.
	clock.Add(4_000)
	if v, _ := c.Do("GET", "plain"); !v.Nil {
		t.Fatalf("GET plain after deadline = %+v, want nil", v)
	}
	if v, _ := c.Do("TTL", "plain"); v.Int != -2 {
		t.Fatalf("TTL plain after deadline = %d, want -2", v.Int)
	}
	if v, _ := c.Do("GET", "k"); string(v.Str) != "val" {
		t.Fatalf("GET k at t+4s = %+v, want val (deadline t+5s)", v)
	}
	if v, _ := c.Do("TTL", "k"); v.Int != 1 {
		t.Fatalf("TTL k at t+4s = %d, want 1", v.Int)
	}
	clock.Add(1_001)
	if v, _ := c.Do("GET", "k"); !v.Nil {
		t.Fatalf("GET k past deadline = %+v, want nil", v)
	}
	if v, _ := c.Do("EXISTS", "k"); v.Int != 0 {
		t.Fatalf("EXISTS k past deadline = %d, want 0", v.Int)
	}
	if st := cache.Stats(); st.Expired < 2 {
		t.Fatalf("expired = %d, want >= 2 (%+v)", st.Expired, st)
	}

	// Argument validation.
	if v, _ := c.Do("SETEX", "k", "zero", "v"); !v.IsError() || !strings.Contains(string(v.Str), "invalid expire") {
		t.Fatalf("SETEX bad seconds = %+v", v)
	}
	if v, _ := c.Do("SETEX", "k", "0", "v"); !v.IsError() {
		t.Fatalf("SETEX 0 = %+v, want error", v)
	}
	// EXPIRE with a non-positive ttl deletes the key, as in Redis.
	if v, _ := c.Do("SET", "gone", "x"); string(v.Str) != "OK" {
		t.Fatalf("SET gone = %+v", v)
	}
	if v, _ := c.Do("EXPIRE", "gone", "0"); v.Int != 1 {
		t.Fatalf("EXPIRE gone 0 = %d, want 1", v.Int)
	}
	if v, _ := c.Do("GET", "gone"); !v.Nil {
		t.Fatalf("GET gone = %+v, want nil", v)
	}
}

// TestRESPCacheEviction fills the cache far past its LRU watermark and
// asserts SET keeps succeeding (eviction instead of -OOM) while the
// live count stays near the watermark.
func TestRESPCacheEviction(t *testing.T) {
	cache, _, addr := newRESPCacheServer(t, 1<<13, 512)
	c, err := DialRESP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 3000; i++ {
		key := "key-" + string(rune('a'+i%26)) + "-" + itoa(i)
		if v, err := c.Do("SET", key, "v"); err != nil || string(v.Str) != "OK" {
			t.Fatalf("SET %d = %+v (%v)", i, v, err)
		}
	}
	st := cache.Stats()
	if st.Evicted == 0 {
		t.Fatalf("no evictions: %+v", st)
	}
	// Per-shard watermark is 256 (512 over 2 shards); allow slack for
	// the sampling approximation.
	if st.Live > 700 {
		t.Fatalf("live = %d, want near watermark 512 (%+v)", st.Live, st)
	}
}

// TestRESPCacheCommandsRequireCache pins the typed -ERR when the TTL
// commands are issued against a raw (cache-less) server.
func TestRESPCacheCommandsRequireCache(t *testing.T) {
	_, addr := newRESPTestServer(t, 2, 1, Config{})
	c, err := DialRESP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, cmd := range [][]string{
		{"SETEX", "k", "5", "v"},
		{"EXPIRE", "k", "5"},
		{"TTL", "k"},
	} {
		if v, _ := c.Do(cmd...); !v.IsError() || !strings.Contains(string(v.Str), "requires the cache layer") {
			t.Fatalf("%s without cache = %+v, want cache-layer error", cmd[0], v)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
