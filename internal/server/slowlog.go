// Slow-request log: a fixed-size lock-free ring of the most recent
// requests whose server-side span crossed Config.SlowThreshold, served
// as JSON at /debug/slowlog. The ring answers the operational question
// the latency histograms cannot: not "how slow is p99" but "which
// requests were slow, on which shard, and where did the time go" — each
// entry carries the span's per-stage breakdown plus the restart and
// drain-pass deltas the optimistic-access scheme charged to the request.
package server

import (
	"encoding/json"
	"net/http"
	"sync/atomic"

	"repro/internal/trace"
)

// slowSlot is one seqlock-protected ring slot. Writers (connection
// reader goroutines, one per conn, many per ring) claim a ticket from
// the head counter and publish with an odd-while-writing sequence;
// readers discard slots whose sequence is odd, stale, or changed under
// the read. Every field is an atomic word, so torn reads are impossible
// at the memory level and merely inconsistent entries are rejected by
// the sequence check — no locks on either side.
type slowSlot struct {
	seq      atomic.Uint64 // 2*ticket+1 while writing, 2*ticket+2 published
	unixNano atomic.Int64
	conn     atomic.Uint64
	meta     atomic.Uint64 // op<<24 | status<<16 | shard
	serverNs atomic.Int64
	restarts atomic.Uint64
	drains   atomic.Uint64
	stages   [trace.NumStages]atomic.Int64
}

// slowLog is the ring. head counts every slow request ever recorded
// (the exported oa_server_slow_requests_total); the last len(slots) of
// them are recoverable.
type slowLog struct {
	slots []slowSlot
	mask  uint64
	head  atomic.Uint64
}

func newSlowLog(size int) *slowLog {
	n := 16
	for n < size {
		n <<= 1
	}
	return &slowLog{slots: make([]slowSlot, n), mask: uint64(n - 1)}
}

// total returns how many slow requests have been recorded (including
// entries since overwritten).
func (l *slowLog) total() uint64 { return l.head.Load() }

// record claims the next slot and publishes one entry. Wait-free for
// writers: one atomic add, then plain atomic stores into the claimed
// slot. If the ring wraps onto a slot another writer is still filling,
// the sequence numbers disagree and readers skip the entry — losing one
// ancient entry under extreme pressure, never blocking a request.
func (l *slowLog) record(now int64, conn uint64, op, status uint8, shard int,
	serverNs int64, stages [trace.NumStages]int64, restarts, drains uint64) {
	t := l.head.Add(1) - 1
	s := &l.slots[t&l.mask]
	s.seq.Store(2*t + 1)
	s.unixNano.Store(now)
	s.conn.Store(conn)
	s.meta.Store(uint64(op)<<24 | uint64(status)<<16 | uint64(shard)&0xFFFF)
	s.serverNs.Store(serverNs)
	s.restarts.Store(restarts)
	s.drains.Store(drains)
	for i := range stages {
		s.stages[i].Store(stages[i])
	}
	s.seq.Store(2*t + 2)
}

// SlowEntry is one decoded slow-request record.
type SlowEntry struct {
	UnixNano int64            `json:"unix_nano"`
	Conn     uint64           `json:"conn"`
	Op       string           `json:"op"`
	Status   string           `json:"status"`
	Shard    int              `json:"shard"`
	ServerNs int64            `json:"server_ns"`
	Stages   map[string]int64 `json:"stages"`
	Restarts uint64           `json:"restarts"`
	Drains   uint64           `json:"drain_passes"`
}

var statusNames = [9]string{
	"ok", "not_found", "cas_mismatch", "busy", "closed",
	"capacity", "bad_request", "goaway", "frame_too_big",
}

func statusName(st uint8) string {
	if int(st) < len(statusNames) {
		return statusNames[st]
	}
	return "unknown"
}

// snapshot decodes the published entries, most recent first. Entries
// mid-write or overwritten during the scan fail the sequence check and
// are dropped rather than returned torn.
func (l *slowLog) snapshot() []SlowEntry {
	head := l.head.Load()
	n := head
	if n > uint64(len(l.slots)) {
		n = uint64(len(l.slots))
	}
	out := make([]SlowEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		t := head - 1 - i
		s := &l.slots[t&l.mask]
		s1 := s.seq.Load()
		if s1 != 2*t+2 {
			continue
		}
		var e SlowEntry
		e.UnixNano = s.unixNano.Load()
		e.Conn = s.conn.Load()
		meta := s.meta.Load()
		e.ServerNs = s.serverNs.Load()
		e.Restarts = s.restarts.Load()
		e.Drains = s.drains.Load()
		stages := make(map[string]int64, trace.NumStages)
		for st := trace.Stage(0); st < trace.NumStages; st++ {
			if d := s.stages[st].Load(); d > 0 {
				stages[st.String()] = d
			}
		}
		if s.seq.Load() != s1 {
			continue
		}
		op := uint8(meta >> 24)
		if int(op) >= len(opNames) {
			op = 0
		}
		e.Op = opNames[op]
		e.Status = statusName(uint8(meta >> 16))
		e.Shard = int(meta & 0xFFFF)
		e.Stages = stages
		out = append(out, e)
	}
	return out
}

// SlowLog returns the current slow-request entries, most recent first.
func (s *Server) SlowLog() []SlowEntry { return s.slowlog.snapshot() }

// serveSlowLog renders the slow log as JSON for /debug/slowlog.
func (s *Server) serveSlowLog(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		ThresholdNs int64       `json:"threshold_ns"`
		Size        int         `json:"size"`
		Total       uint64      `json:"total"`
		Entries     []SlowEntry `json:"entries"`
	}{int64(s.cfg.SlowThreshold), len(s.slowlog.slots), s.slowlog.total(), s.slowlog.snapshot()})
}
