package server

import (
	"encoding/json"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kvmap"
)

func newTestServer(t *testing.T, threads int, cfg Config) (*Server, string) {
	t.Helper()
	cfg.Map = kvmap.New(core.Config{MaxThreads: threads, Capacity: 1 << 16}, 1<<14)
	s := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	t.Cleanup(func() {
		s.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return s, ln.Addr().String()
}

func TestRoundTrip(t *testing.T) {
	_, addr := newTestServer(t, 2, Config{})
	c, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	put, _ := c.Put(1, 100)
	if err := put.Wait(); err != nil || put.Status != StNotFound {
		t.Fatalf("first Put: err=%v status=%d, want NOT_FOUND (no previous)", err, put.Status)
	}
	get, _ := c.Get(1)
	if err := get.Wait(); err != nil || get.Status != StOK || get.Val != 100 {
		t.Fatalf("Get = %d/%d (%v), want OK/100", get.Status, get.Val, err)
	}
	cas, _ := c.CAS(1, 100, 200)
	if err := cas.Wait(); err != nil || cas.Status != StOK {
		t.Fatalf("CAS = %d (%v), want OK", cas.Status, err)
	}
	cas2, _ := c.CAS(1, 100, 300)
	if err := cas2.Wait(); err != nil || cas2.Status != StCASMismatch {
		t.Fatalf("stale CAS = %d (%v), want CAS_MISMATCH", cas2.Status, err)
	}
	del, _ := c.Del(1)
	if err := del.Wait(); err != nil || del.Status != StOK || del.Val != 200 {
		t.Fatalf("Del = %d/%d (%v), want OK/200", del.Status, del.Val, err)
	}
	miss, _ := c.Get(1)
	if err := miss.Wait(); err != nil || miss.Status != StNotFound {
		t.Fatalf("Get after Del = %d (%v), want NOT_FOUND", miss.Status, err)
	}

	body, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Server Snapshot `json:"server"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("STATS body %q: %v", body, err)
	}
	if snap.Server.SessionsInUse != 1 || snap.Server.SessionsCap != 2 {
		t.Fatalf("sessions = %d/%d, want 1/2", snap.Server.SessionsInUse, snap.Server.SessionsCap)
	}
}

// TestPipelining issues a deep pipeline before waiting and checks every
// response resolves correctly and in order.
func TestPipelining(t *testing.T) {
	_, addr := newTestServer(t, 2, Config{Window: 64})
	c, err := Dial(addr, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 2000
	calls := make([]*Call, 0, n)
	for i := 0; i < n; i++ {
		ca, err := c.Put(uint64(i%97), uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, ca)
		if len(calls) == cap(calls) || i%64 == 63 {
			c.Flush()
		}
	}
	for i, ca := range calls {
		if err := ca.Wait(); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if ca.Status != StOK && ca.Status != StNotFound {
			t.Fatalf("call %d: status %d", i, ca.Status)
		}
	}
}

// TestLeaseRecycling runs more sequential connections than session slots:
// each connection leases on first request and releases on close, so a
// 2-slot registry must serve all of them.
func TestLeaseRecycling(t *testing.T) {
	s, addr := newTestServer(t, 2, Config{Inline: true})
	for i := 0; i < 10; i++ {
		c, err := Dial(addr, 0)
		if err != nil {
			t.Fatal(err)
		}
		put, _ := c.Put(uint64(i), uint64(i))
		if err := put.Wait(); err != nil {
			t.Fatalf("conn %d: %v", i, err)
		}
		c.Close()
	}
	deadline := time.Now().Add(time.Second)
	for s.cfg.Map.Manager().Lessor().Leased() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("leases not released after disconnects")
		}
		time.Sleep(time.Millisecond)
	}
	if g := s.cfg.Map.Manager().Lessor().Grants(); g < 10 {
		t.Fatalf("grants = %d, want >= 10 (one per connection)", g)
	}
}

// TestBusyWhenExhausted holds the only session slot hostage on one
// connection and checks a second connection's data request is answered
// BUSY (typed backpressure, not a hang or a cut connection).
func TestBusyWhenExhausted(t *testing.T) {
	_, addr := newTestServer(t, 1, Config{Inline: true, LeaseWait: time.Millisecond})
	holder, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	put, _ := holder.Put(1, 1)
	if err := put.Wait(); err != nil {
		t.Fatal(err)
	}

	second, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	busy, _ := second.Get(1)
	if err := busy.Wait(); err != nil || busy.Status != StBusy {
		t.Fatalf("exhausted Get = %d (%v), want BUSY", busy.Status, err)
	}
	// PING needs no session: it must still work on the starved connection.
	if err := second.Ping(); err != nil {
		t.Fatal(err)
	}

	// Free the slot; the starved connection must now be served.
	holder.Close()
	deadline := time.Now().Add(time.Second)
	for {
		got, _ := second.Get(1)
		if err := got.Wait(); err != nil {
			t.Fatal(err)
		}
		if got.Status == StOK && got.Val == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("Get still %d after slot freed", got.Status)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGracefulDrain shuts the server down in the middle of a pipelined
// load and asserts the drain contract: the client sees GOAWAY, every
// request issued before (and racing with) the drain gets its response,
// nothing in flight is dropped, and no connection is force-closed.
func TestGracefulDrain(t *testing.T) {
	s, addr := newTestServer(t, 4, Config{Window: 128, DrainTimeout: 5 * time.Second})

	const clients = 4
	var issued, resolved atomic.Uint64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr, 128)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			<-start
			var calls []*Call
			for i := 0; ; i++ {
				ca, err := c.Put(uint64(w)<<32|uint64(i%1000), uint64(i))
				if err != nil {
					if errors.Is(err, ErrGoAway) {
						break // drain announced: stop issuing
					}
					t.Errorf("client %d: %v", w, err)
					return
				}
				issued.Add(1)
				calls = append(calls, ca)
				if i%32 == 0 {
					c.Flush()
				}
			}
			// Drain phase: every outstanding call must resolve.
			for _, ca := range calls {
				if err := ca.Wait(); err != nil {
					t.Errorf("client %d: dropped in-flight call: %v", w, err)
					return
				}
				resolved.Add(1)
			}
		}(w)
	}
	close(start)
	time.Sleep(50 * time.Millisecond) // let the pipelines build up steam
	forced := s.Shutdown()
	wg.Wait()

	if forced != 0 {
		t.Fatalf("%d connections force-closed; want graceful drain", forced)
	}
	if issued.Load() == 0 {
		t.Fatal("no load issued before drain")
	}
	if issued.Load() != resolved.Load() {
		t.Fatalf("issued %d, resolved %d: in-flight requests dropped", issued.Load(), resolved.Load())
	}
	if got := s.sumStripes(func(st *shardStripe) uint64 { return st.reqsRead.Load() }); got < resolved.Load() {
		t.Fatalf("server read %d < client resolved %d", got, resolved.Load())
	}
	if s.cfg.Map.Manager().Lessor().Leased() != 0 {
		t.Fatalf("%d leases outstanding after drain", s.cfg.Map.Manager().Lessor().Leased())
	}
	t.Logf("drained cleanly: %d requests resolved across %d clients", resolved.Load(), clients)
}

// TestBadRequest checks malformed frames get a typed error, not a cut
// connection.
func TestBadRequest(t *testing.T) {
	_, addr := newTestServer(t, 1, Config{})
	c, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ca, err := c.send(99) // unknown opcode
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.Wait(); err != nil || ca.Status != StBadRequest {
		t.Fatalf("unknown op = %d (%v), want BAD_REQUEST", ca.Status, err)
	}
	if err := c.Ping(); err != nil { // connection survives
		t.Fatal(err)
	}
}
