// Package dstest provides reusable black-box test suites run against every
// (data structure × reclamation scheme) pair in the repository: sequential
// semantics against a model, randomized property tests, and concurrent
// stress with post-hoc consistency checking.
package dstest

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/linearize"
	"repro/internal/smr"
)

// Factory builds a fresh empty set sized for the given worker count.
type Factory func(threads int) smr.Set

// RunSequentialSuite exercises single-threaded set semantics against a
// map-based model.
func RunSequentialSuite(t *testing.T, mk Factory) {
	t.Helper()

	t.Run("EmptySet", func(t *testing.T) {
		s := mk(1).Session(0)
		for _, k := range []uint64{1, 2, 100, 1 << 40} {
			if s.Contains(k) {
				t.Fatalf("empty set contains %d", k)
			}
			if s.Delete(k) {
				t.Fatalf("empty set deleted %d", k)
			}
		}
	})

	t.Run("InsertDeleteBasics", func(t *testing.T) {
		s := mk(1).Session(0)
		if !s.Insert(10) || !s.Insert(5) || !s.Insert(20) {
			t.Fatal("fresh inserts must succeed")
		}
		if s.Insert(10) {
			t.Fatal("duplicate insert must fail")
		}
		for _, k := range []uint64{5, 10, 20} {
			if !s.Contains(k) {
				t.Fatalf("missing %d", k)
			}
		}
		if s.Contains(15) {
			t.Fatal("phantom 15")
		}
		if !s.Delete(10) {
			t.Fatal("delete present must succeed")
		}
		if s.Delete(10) {
			t.Fatal("delete absent must fail")
		}
		if s.Contains(10) {
			t.Fatal("deleted key still present")
		}
		if !s.Contains(5) || !s.Contains(20) {
			t.Fatal("unrelated keys disturbed")
		}
		if !s.Insert(10) {
			t.Fatal("re-insert after delete must succeed")
		}
		if !s.Contains(10) {
			t.Fatal("re-inserted key missing")
		}
	})

	t.Run("SortedNeighborKeys", func(t *testing.T) {
		// Adjacent keys stress ordering logic and sentinel handling.
		s := mk(1).Session(0)
		for k := uint64(1); k <= 64; k++ {
			if !s.Insert(k) {
				t.Fatalf("insert %d", k)
			}
		}
		for k := uint64(2); k <= 64; k += 2 {
			if !s.Delete(k) {
				t.Fatalf("delete %d", k)
			}
		}
		for k := uint64(1); k <= 64; k++ {
			want := k%2 == 1
			if got := s.Contains(k); got != want {
				t.Fatalf("Contains(%d) = %v, want %v", k, got, want)
			}
		}
	})

	t.Run("ExtremeKeys", func(t *testing.T) {
		s := mk(1).Session(0)
		keys := []uint64{1, 1 << 63, ^uint64(0) - 1, 2, ^uint64(0)}
		for _, k := range keys {
			if !s.Insert(k) {
				t.Fatalf("insert %d", k)
			}
		}
		for _, k := range keys {
			if !s.Contains(k) {
				t.Fatalf("contains %d", k)
			}
			if !s.Delete(k) {
				t.Fatalf("delete %d", k)
			}
		}
	})

	t.Run("RandomOpsVsModel", func(t *testing.T) {
		s := mk(1).Session(0)
		model := map[uint64]bool{}
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 20000; i++ {
			k := uint64(rng.Intn(200)) + 1
			switch rng.Intn(3) {
			case 0:
				if got, want := s.Insert(k), !model[k]; got != want {
					t.Fatalf("op %d: Insert(%d) = %v, want %v", i, k, got, want)
				}
				model[k] = true
			case 1:
				if got, want := s.Delete(k), model[k]; got != want {
					t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, want)
				}
				delete(model, k)
			default:
				if got, want := s.Contains(k), model[k]; got != want {
					t.Fatalf("op %d: Contains(%d) = %v, want %v", i, k, got, want)
				}
			}
		}
	})
}

// RunConcurrentSuite hammers the set from many goroutines and checks
// conservation properties that hold under any linearizable execution.
func RunConcurrentSuite(t *testing.T, mk Factory) {
	t.Helper()

	t.Run("DisjointKeyRanges", func(t *testing.T) {
		// Each worker owns a key range: its view must be perfectly
		// sequential even under concurrent structural interference.
		const threads = 8
		set := mk(threads)
		var wg sync.WaitGroup
		for id := 0; id < threads; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				s := set.Session(id)
				base := uint64(id)*1_000_000 + 1
				model := map[uint64]bool{}
				rng := rand.New(rand.NewSource(int64(id)))
				for i := 0; i < 8000; i++ {
					k := base + uint64(rng.Intn(64))
					switch rng.Intn(3) {
					case 0:
						if got, want := s.Insert(k), !model[k]; got != want {
							t.Errorf("thread %d: Insert(%d) = %v, want %v", id, k, got, want)
							return
						}
						model[k] = true
					case 1:
						if got, want := s.Delete(k), model[k]; got != want {
							t.Errorf("thread %d: Delete(%d) = %v, want %v", id, k, got, want)
							return
						}
						delete(model, k)
					default:
						if got, want := s.Contains(k), model[k]; got != want {
							t.Errorf("thread %d: Contains(%d) = %v, want %v", id, k, got, want)
							return
						}
					}
				}
			}(id)
		}
		wg.Wait()
	})

	t.Run("SharedKeysConservation", func(t *testing.T) {
		// All workers fight over a small key space. Count successful
		// inserts/deletes per key; at the end key presence must equal
		// (inserts - deletes) ∈ {0, 1}.
		const threads = 8
		const keys = 32
		set := mk(threads)
		var ins, del [keys + 1]struct {
			n int64
			_ [7]int64 // pad
		}
		var insMu, delMu [keys + 1]sync.Mutex
		var wg sync.WaitGroup
		for id := 0; id < threads; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				s := set.Session(id)
				rng := rand.New(rand.NewSource(int64(1000 + id)))
				for i := 0; i < 12000; i++ {
					k := uint64(rng.Intn(keys)) + 1
					if rng.Intn(2) == 0 {
						if s.Insert(k) {
							insMu[k].Lock()
							ins[k].n++
							insMu[k].Unlock()
						}
					} else {
						if s.Delete(k) {
							delMu[k].Lock()
							del[k].n++
							delMu[k].Unlock()
						}
					}
				}
			}(id)
		}
		wg.Wait()
		probe := set.Session(0)
		for k := uint64(1); k <= keys; k++ {
			diff := ins[k].n - del[k].n
			if diff != 0 && diff != 1 {
				t.Fatalf("key %d: %d inserts, %d deletes — impossible history",
					k, ins[k].n, del[k].n)
			}
			want := diff == 1
			if got := probe.Contains(k); got != want {
				t.Fatalf("key %d: Contains = %v, want %v (ins=%d del=%d)",
					k, got, want, ins[k].n, del[k].n)
			}
		}
	})

	t.Run("HighChurnSingleKey", func(t *testing.T) {
		// Maximum contention: every worker toggles the same key. Checks
		// that pairs of (successful insert, successful delete) alternate
		// globally: successes of each kind differ by at most the live bit.
		const threads = 8
		set := mk(threads)
		var okIns, okDel int64
		var mu sync.Mutex
		var wg sync.WaitGroup
		for id := 0; id < threads; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				s := set.Session(id)
				for i := 0; i < 6000; i++ {
					if i%2 == id%2 {
						if s.Insert(7) {
							mu.Lock()
							okIns++
							mu.Unlock()
						}
					} else {
						if s.Delete(7) {
							mu.Lock()
							okDel++
							mu.Unlock()
						}
					}
				}
			}(id)
		}
		wg.Wait()
		diff := okIns - okDel
		if diff != 0 && diff != 1 {
			t.Fatalf("inserts=%d deletes=%d: impossible", okIns, okDel)
		}
		if want, got := diff == 1, set.Session(0).Contains(7); got != want {
			t.Fatalf("final Contains(7) = %v, want %v", got, want)
		}
	})
}

// RunLinearizability records real concurrent histories through the
// linearize.Recorder and verifies them with the Wing-Gong checker — the
// strongest oracle in the repository. Key spaces are sized so no key
// collects more operations than the checker's exact-search bound.
func RunLinearizability(t *testing.T, mk Factory) {
	t.Helper()
	const (
		threads   = 4
		rounds    = 60
		opsPerRnd = 4 // per thread per round: 16 ops over 4 keys each round
	)
	t.Run("RecordedHistories", func(t *testing.T) {
		for round := 0; round < rounds; round++ {
			rec := linearize.NewRecorder(mk(threads))
			keyBase := uint64(round*100 + 1)
			var wg sync.WaitGroup
			for id := 0; id < threads; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					s := rec.Session(id)
					rng := rand.New(rand.NewSource(int64(round*threads + id)))
					for i := 0; i < opsPerRnd; i++ {
						k := keyBase + uint64(rng.Intn(4))
						switch rng.Intn(3) {
						case 0:
							s.Insert(k)
						case 1:
							s.Delete(k)
						default:
							s.Contains(k)
						}
					}
				}(id)
			}
			wg.Wait()
			if r := linearize.Check(rec.History()); !r.Ok {
				t.Fatalf("round %d: history not linearizable at key %d:\n%v",
					round, r.Key, r.Witness)
			}
		}
	})
}

// RunStats sanity-checks the Stats plumbing after some traffic.
func RunStats(t *testing.T, mk Factory, wantScheme smr.Scheme) {
	t.Helper()
	set := mk(1)
	if set.Scheme() != wantScheme {
		t.Fatalf("Scheme() = %v, want %v", set.Scheme(), wantScheme)
	}
	s := set.Session(0)
	for k := uint64(1); k <= 100; k++ {
		s.Insert(k)
	}
	for k := uint64(1); k <= 100; k++ {
		s.Delete(k)
	}
	st := set.Stats()
	if st.Allocs == 0 {
		t.Fatalf("stats not wired: %+v", st)
	}
}
