// Package ebr implements epoch-based reclamation (Harris 2001, Fraser's
// lockfree-lib), the non-lock-free baseline the paper measures as EBR.
//
// Each thread announces the global epoch when an operation starts and goes
// quiescent when it ends. Retired slots are buffered in per-thread limbo
// lists keyed by epoch modulo 3; once every active thread has observed the
// current epoch, the epoch advances and the generation retired two epochs
// ago is freed — no thread can still hold references into it.
//
// The scheme's known weaknesses, which the paper's evaluation exercises,
// are (a) the per-operation announcement write + fence, which dominates on
// the hash table's extremely short operations (Figure 1), and (b) a stalled
// thread freezes the epoch and stops reclamation entirely — it is not
// lock-free (tested in this package).
package ebr

import (
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/arena"
	"repro/internal/obs"
	"repro/internal/smr"
	"repro/internal/trace"
)

// Config parameterizes a Manager.
type Config struct {
	// MaxThreads is the fixed number of thread contexts.
	MaxThreads int
	// Capacity pre-charges the shared pool.
	Capacity int
	// OpsPerScan is the paper's q: a thread attempts an epoch advance and
	// reclamation every q operations (Figure 3 sets q = 10·δ/threads).
	OpsPerScan int
	// LocalPool is the allocation block-transfer size.
	LocalPool int
}

func (c *Config) fill() {
	if c.MaxThreads <= 0 {
		c.MaxThreads = 1
	}
	if c.OpsPerScan <= 0 {
		c.OpsPerScan = 128
	}
}

// Manager owns the global epoch, pool and thread contexts.
type Manager[T any] struct {
	cfg     Config
	epoch   atomic.Uint64
	pool    *alloc.Pool[T]
	threads []*Thread[T]
	tracer  *trace.Recorder
}

// NewManager builds a manager; reset zeroes a node at allocation.
func NewManager[T any](cfg Config, reset func(*T)) *Manager[T] {
	cfg.fill()
	m := &Manager[T]{
		cfg:    cfg,
		pool:   alloc.New(cfg.Capacity, cfg.LocalPool, reset),
		tracer: trace.NewRecorder(cfg.MaxThreads, 0),
	}
	m.threads = make([]*Thread[T], cfg.MaxThreads)
	for i := range m.threads {
		t := &Thread[T]{mgr: m, id: i, view: m.pool.Arena().View(), ring: m.tracer.Ring(i)}
		t.local.Trace = t.ring
		m.threads[i] = t
	}
	return m
}

// TraceRecorder exposes the per-thread protocol event rings (epoch
// advances, limbo reclaim passes, allocation refills).
func (m *Manager[T]) TraceRecorder() *trace.Recorder { return m.tracer }

// RegisterObs implements obs.Registrar: the scheme's only deep source is
// its event trace (counters flow through smr.Stats).
func (m *Manager[T]) RegisterObs(reg *obs.Registry) { reg.Trace(m.tracer) }

// Arena exposes node storage.
func (m *Manager[T]) Arena() *arena.Arena[T] { return m.pool.Arena() }

// Thread returns thread context id.
func (m *Manager[T]) Thread(id int) *Thread[T] { return m.threads[id] }

// MaxThreads returns the configured thread count.
func (m *Manager[T]) MaxThreads() int { return m.cfg.MaxThreads }

// Epoch returns the global epoch (for tests and stats).
func (m *Manager[T]) Epoch() uint64 { return m.epoch.Load() }

// Stats aggregates counters across threads.
func (m *Manager[T]) Stats() smr.Stats {
	var s smr.Stats
	for _, t := range m.threads {
		s.Add(smr.Stats{
			Allocs:   t.allocs.Load(),
			Retires:  t.retires.Load(),
			Recycled: t.recycled.Load(),
		})
	}
	s.Phases = m.Epoch()
	return s
}

// tryAdvance bumps the global epoch if every active thread has announced
// the current one. Returns the (possibly new) epoch.
func (m *Manager[T]) tryAdvance() uint64 {
	e := m.epoch.Load()
	for _, t := range m.threads {
		w := t.state.Load()
		if w&1 == 1 && w>>1 != e {
			return e // an active thread lags: cannot advance
		}
	}
	m.epoch.CompareAndSwap(e, e+1)
	return m.epoch.Load()
}

// Thread is a per-thread EBR context.
type Thread[T any] struct {
	mgr *Manager[T]
	id  int
	// state packs {epoch:63 | active:1}; written by the owner at operation
	// boundaries, read by epoch advancers.
	state atomic.Uint64
	limbo [3][]uint32 // retired slots by epoch % 3
	local alloc.Local
	view  arena.View[T] // chunk-directory snapshot: atomic-free Node
	ring  *trace.Ring   // protocol event ring (gated on trace.Enabled)
	ops   int

	// Counters are atomic so Stats may aggregate them live (monitoring
	// endpoints, harness snapshots) without stopping the owner thread.
	allocs   atomic.Uint64
	retires  atomic.Uint64
	recycled atomic.Uint64

	_ [5]uint64 // false-sharing pad
}

// ID returns the thread index.
func (t *Thread[T]) ID() int { return t.id }

// Node dereferences a slot handle; legal only between OnOpStart/OnOpEnd for
// slots that were reachable when the operation started. The lookup goes
// through the thread's directory view: two plain loads, no atomics.
func (t *Thread[T]) Node(slot uint32) *T { return t.view.At(slot) }

// OnOpStart announces the current epoch and marks the thread active. Every
// data-structure operation must be bracketed by OnOpStart/OnOpEnd; the
// announcement's atomic store is the fence the paper charges EBR per
// operation.
func (t *Thread[T]) OnOpStart() {
	e := t.mgr.epoch.Load()
	t.state.Store(e<<1 | 1)
}

// OnOpEnd marks the thread quiescent and periodically attempts an epoch
// advance plus reclamation of the safe limbo generation.
func (t *Thread[T]) OnOpEnd() {
	t.state.Store(t.state.Load() &^ 1)
	t.ops++
	if t.ops >= t.mgr.cfg.OpsPerScan {
		t.ops = 0
		t.reclaim()
	}
}

// Retire buffers slot in the limbo generation of the thread's announced
// epoch.
func (t *Thread[T]) Retire(slot uint32) {
	t.retires.Add(1)
	e := t.state.Load() >> 1
	t.limbo[e%3] = append(t.limbo[e%3], slot)
}

// Alloc returns a zeroed slot from the shared pool.
func (t *Thread[T]) Alloc() uint32 {
	t.allocs.Add(1)
	return t.mgr.pool.Alloc(&t.local)
}

// reclaim advances the epoch if possible and frees the generation retired
// two epochs ago: with epoch e current, generation (e+1)%3 ≡ e-2 is safe.
func (t *Thread[T]) reclaim() {
	before := t.mgr.epoch.Load()
	e := t.mgr.tryAdvance()
	if trace.Enabled() && e != before {
		// Attribute the advance to the thread whose reclaim drove it
		// (approximate under concurrent advancers, like the counters).
		t.ring.Record(trace.EvPhase, e)
	}
	g := (e + 1) % 3
	if len(t.limbo[g]) == 0 {
		return
	}
	n := uint64(len(t.limbo[g]))
	for _, slot := range t.limbo[g] {
		t.mgr.pool.Free(&t.local, slot)
	}
	t.recycled.Add(n)
	t.limbo[g] = t.limbo[g][:0]
	t.mgr.pool.Flush(&t.local)
	if trace.Enabled() {
		t.ring.Record(trace.EvDrain, trace.DrainPayload(n, 0))
	}
}

// LimboSize reports how many slots wait in the thread's limbo lists — the
// unbounded leak a stalled thread causes under EBR.
func (t *Thread[T]) LimboSize() int {
	return len(t.limbo[0]) + len(t.limbo[1]) + len(t.limbo[2])
}
