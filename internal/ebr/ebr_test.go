package ebr

import (
	"sync"
	"sync/atomic"
	"testing"
)

type tnode struct {
	key  atomic.Uint64
	next atomic.Uint64
}

func reset(n *tnode) { n.key.Store(0); n.next.Store(0) }

func TestEpochAdvancesWhenQuiescent(t *testing.T) {
	m := NewManager[tnode](Config{MaxThreads: 2, Capacity: 64, OpsPerScan: 1}, reset)
	th := m.Thread(0)
	e0 := m.Epoch()
	for i := 0; i < 10; i++ {
		th.OnOpStart()
		th.OnOpEnd()
	}
	if m.Epoch() <= e0 {
		t.Fatalf("epoch stuck at %d", m.Epoch())
	}
}

func TestGracePeriodBeforeFree(t *testing.T) {
	m := NewManager[tnode](Config{MaxThreads: 1, Capacity: 64, OpsPerScan: 1}, reset)
	th := m.Thread(0)
	th.OnOpStart()
	s := th.Alloc()
	th.Retire(s)
	gen := m.Arena().Gen(s)
	th.OnOpEnd()
	if m.Arena().Gen(s) != gen {
		t.Fatal("slot freed with no grace period")
	}
	// Three epoch turns guarantee the retire generation is freed.
	for i := 0; i < 6; i++ {
		th.OnOpStart()
		th.OnOpEnd()
	}
	if m.Arena().Gen(s) == gen {
		t.Fatal("slot never freed after grace period")
	}
}

// The paper's central criticism of EBR: a stalled thread freezes
// reclamation entirely.
func TestStalledThreadBlocksReclamation(t *testing.T) {
	m := NewManager[tnode](Config{MaxThreads: 2, Capacity: 256, OpsPerScan: 1}, reset)
	stalled, worker := m.Thread(0), m.Thread(1)
	stalled.OnOpStart() // never ends its operation
	e := m.Epoch()
	for i := 0; i < 500; i++ {
		worker.OnOpStart()
		s := worker.Alloc()
		worker.Retire(s)
		worker.OnOpEnd()
	}
	if m.Epoch() > e+1 {
		t.Fatalf("epoch advanced %d -> %d past a stalled thread", e, m.Epoch())
	}
	if got := worker.LimboSize(); got < 400 {
		t.Fatalf("limbo should accumulate behind the stalled thread, got %d", got)
	}
	if m.Stats().Recycled > 100 {
		t.Fatalf("reclamation should be (nearly) frozen, recycled %d", m.Stats().Recycled)
	}
	// Unstall: reclamation resumes.
	stalled.OnOpEnd()
	for i := 0; i < 20; i++ {
		worker.OnOpStart()
		worker.OnOpEnd()
	}
	if m.Stats().Recycled < 400 {
		t.Fatalf("reclamation did not resume: recycled = %d", m.Stats().Recycled)
	}
}

// No slot may be freed while an operation that could have seen it is
// running: stress with an invariant cell per slot.
func TestNoEarlyFreeUnderChurn(t *testing.T) {
	const threads = 6
	m := NewManager[tnode](Config{MaxThreads: threads, Capacity: 4096, OpsPerScan: 16}, reset)
	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := m.Thread(id)
			for i := 0; i < 20000; i++ {
				th.OnOpStart()
				s := th.Alloc()
				n := th.Node(s)
				n.key.Store(uint64(s) ^ 0xABCD)
				// While this op runs, the slot we retired is unreachable to
				// others but must stay intact for us.
				th.Retire(s)
				if got := n.key.Load(); got != uint64(s)^0xABCD {
					t.Errorf("retired slot mutated during its grace period: %#x", got)
					return
				}
				th.OnOpEnd()
			}
		}(id)
	}
	wg.Wait()
	if m.Stats().Recycled == 0 {
		t.Fatal("no recycling under churn")
	}
}

func TestStatsAggregation(t *testing.T) {
	m := NewManager[tnode](Config{MaxThreads: 1, Capacity: 32}, reset)
	th := m.Thread(0)
	th.OnOpStart()
	s := th.Alloc()
	th.Retire(s)
	th.OnOpEnd()
	st := m.Stats()
	if st.Allocs != 1 || st.Retires != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if th.ID() != 0 {
		t.Fatal("ID")
	}
}
