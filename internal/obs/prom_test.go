package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// buildTestRegistry assembles a registry with one of each source kind and
// fully deterministic values.
func buildTestRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("demo_events_total", "events processed", func() uint64 { return 42 })
	reg.Gauge("demo_backlog_slots", "retired but unreclaimed", func() float64 { return 7.5 })
	ts := NewThreadStats(2)
	for c := Counter(0); c < NumCounters; c++ {
		ts.At(0).Add(c, uint64(c)+1)
		ts.At(1).Add(c, 100*(uint64(c)+1))
	}
	ts.At(0).SetLocalRetired(3)
	ts.At(1).SetLocalRetired(4)
	reg.ThreadCounters("demo", ts)
	return reg
}

// The non-histogram output is compared byte-for-byte: the exposition
// format is a wire contract, so a formatting regression must fail loudly.
func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := buildTestRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	want.WriteString(`# HELP demo_events_total events processed
# TYPE demo_events_total counter
demo_events_total 42
# HELP demo_backlog_slots retired but unreclaimed
# TYPE demo_backlog_slots gauge
demo_backlog_slots 7.5
`)
	for c := Counter(0); c < NumCounters; c++ {
		name := "demo_" + c.String() + "_total"
		want.WriteString("# HELP " + name + " per-thread " + c.String() + " counter\n")
		want.WriteString("# TYPE " + name + " counter\n")
		want.WriteString(name + `{thread="0"} ` + strconv.FormatUint(uint64(c)+1, 10) + "\n")
		want.WriteString(name + `{thread="1"} ` + strconv.FormatUint(100*(uint64(c)+1), 10) + "\n")
	}
	want.WriteString(`# HELP demo_local_retired_slots slots buffered in the thread's local retire block
# TYPE demo_local_retired_slots gauge
demo_local_retired_slots{thread="0"} 3
demo_local_retired_slots{thread="1"} 4
`)
	if b.String() != want.String() {
		t.Fatalf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", b.String(), want.String())
	}
}

var sampleRe = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [-+]?([0-9.eE+-]+|Inf|NaN)$`)

// Histograms are validated structurally: every line parses, buckets are
// cumulative and monotonic, +Inf equals _count, and _sum is in seconds.
func TestWritePrometheusHistogram(t *testing.T) {
	reg := NewRegistry()
	var h metrics.Histogram
	h.Observe(100 * time.Nanosecond)
	h.Observe(5 * time.Microsecond)
	h.Observe(3 * time.Millisecond)
	reg.Histogram("demo_pause_seconds", "pause durations", &h)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	var prev uint64
	var bucketLines, infCount int
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleRe.MatchString(line) {
			t.Fatalf("bad sample line %q", line)
		}
		val, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		switch {
		case strings.Contains(line, `le="+Inf"`):
			infCount++
			if err != nil || val != 3 {
				t.Fatalf("+Inf bucket = %q, want 3", line)
			}
		case strings.HasPrefix(line, "demo_pause_seconds_bucket"):
			bucketLines++
			if err != nil || val < prev {
				t.Fatalf("non-cumulative bucket line %q after %d", line, prev)
			}
			prev = val
		case strings.HasPrefix(line, "demo_pause_seconds_count"):
			if err != nil || val != 3 {
				t.Fatalf("_count = %q, want 3", line)
			}
		case strings.HasPrefix(line, "demo_pause_seconds_sum"):
			f, ferr := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
			if ferr != nil || f < 0.003 || f > 0.0031 {
				t.Fatalf("_sum = %q, want ≈ 0.003005 seconds", line)
			}
		}
	}
	if bucketLines != metrics.Buckets-1 || infCount != 1 {
		t.Fatalf("got %d finite buckets + %d inf, want %d + 1", bucketLines, infCount, metrics.Buckets-1)
	}
}

func TestHandlerRoutes(t *testing.T) {
	srv := httptest.NewServer(buildTestRegistry().Handler())
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, rerr := resp.Body.Read(buf)
			b.Write(buf[:n])
			if rerr != nil {
				break
			}
		}
		return resp, b.String()
	}

	resp, body := get("/metrics")
	if resp.StatusCode != 200 || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain; version=0.0.4") {
		t.Fatalf("/metrics: status %d content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(body, "demo_events_total 42") {
		t.Fatalf("/metrics body missing counter:\n%s", body)
	}

	resp, body = get("/stats.json")
	if resp.StatusCode != 200 {
		t.Fatalf("/stats.json: status %d", resp.StatusCode)
	}
	var doc struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/stats.json does not parse: %v", err)
	}
	if doc.Counters["demo_events_total"] != 42 || doc.Counters["demo_ops_total"] != 101 {
		t.Fatalf("unexpected counters: %v", doc.Counters)
	}

	if resp, _ := get("/debug/pprof/cmdline"); resp.StatusCode != 200 {
		t.Fatalf("/debug/pprof/cmdline: status %d", resp.StatusCode)
	}
	if resp, _ := get("/nope"); resp.StatusCode != 404 {
		t.Fatalf("/nope: status %d", resp.StatusCode)
	}
}

func TestHandlerNilRegistry(t *testing.T) {
	srv := httptest.NewServer(HandlerFor(func() *Registry { return nil }))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("nil registry: status %d, want 503", resp.StatusCode)
	}
}

// HistogramVec families render one bucket/sum/count series per label
// value under a single HELP/TYPE header, every line a valid sample.
func TestWritePrometheusHistogramVec(t *testing.T) {
	reg := NewRegistry()
	var hs [2]metrics.Histogram
	hs[0].Observe(100 * time.Nanosecond)
	hs[0].Observe(3 * time.Millisecond)
	hs[1].Observe(5 * time.Microsecond)
	reg.HistogramVec("demo_latency_seconds", "request latency", "shard", 2,
		func(i int) *metrics.Histogram { return &hs[i] })

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if n := strings.Count(out, "# TYPE demo_latency_seconds histogram"); n != 1 {
		t.Fatalf("want exactly one TYPE header, got %d:\n%s", n, out)
	}
	for _, want := range []string{
		`demo_latency_seconds_bucket{shard="0",le="+Inf"} 2`,
		`demo_latency_seconds_bucket{shard="1",le="+Inf"} 1`,
		`demo_latency_seconds_count{shard="0"} 2`,
		`demo_latency_seconds_count{shard="1"} 1`,
		`demo_latency_seconds_sum{shard="0"} `,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleRe.MatchString(line) {
			t.Fatalf("bad sample line %q", line)
		}
	}

	// The JSON snapshot carries the same family as name{label="i"} keys.
	var jb strings.Builder
	if err := reg.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Histograms map[string]struct {
			Count uint64 `json:"count"`
			P99Ns uint64 `json:"p99_ns"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(jb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Histograms[`demo_latency_seconds{shard="0"}`].Count != 2 ||
		doc.Histograms[`demo_latency_seconds{shard="1"}`].Count != 1 {
		t.Fatalf("JSON snapshot families wrong: %v", doc.Histograms)
	}
}

// Registered routes are served by the registry handler before the 404
// fallback and advertised on the index page.
func TestHandlerExtraRoutes(t *testing.T) {
	reg := buildTestRegistry()
	reg.Handle("/debug/slowlog", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"entries":[]}`))
	}))
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 256)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body[:n]), "entries") {
		t.Fatalf("/debug/slowlog: status %d body %q", resp.StatusCode, body[:n])
	}
	if got := reg.Routes(); len(got) != 1 || got[0] != "/debug/slowlog" {
		t.Fatalf("Routes() = %v", got)
	}
	resp, err = http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	n, _ = resp.Body.Read(body)
	resp.Body.Close()
	if !strings.Contains(string(body[:n]), "/debug/slowlog") {
		t.Fatalf("index page does not advertise the extra route: %q", body[:n])
	}
	if resp, err := http.Get(srv.URL + "/nope"); err != nil || resp.StatusCode != 404 {
		t.Fatalf("unregistered path must stay 404")
	}
}
